// Command partitions prints the integer-partition table of paper §6 — the
// number of multiphase algorithm candidates per hypercube dimension — and
// optionally enumerates the partitions themselves.
//
// Usage:
//
//	partitions                      # the p(d) table for d = 1..20
//	partitions -d 7                 # enumerate the 15 partitions of 7
//	partitions -d 7 -m 40           # ...with each candidate's modeled time (§6)
//	partitions -d 7 -m 40 -machine ncube2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/report"
)

func main() {
	d := flag.Int("d", 0, "enumerate the partitions of this dimension (0 = print the p(d) table)")
	m := flag.Int("m", -1, "with -d: also model each candidate's multiphase time for this block size")
	machine := flag.String("machine", "ipsc860",
		"machine model for -m costing: "+strings.Join(model.MachineNames(), " | "))
	optWorkers := flag.Int("opt-workers", 0, "optimizer candidate-costing workers, clamped to GOMAXPROCS (0 = backend default)")
	replayWorkers := flag.Int("replay-workers", 0, "event-engine shards per simulated replay on link-disjoint phases; results stay bit-identical (0 or 1 = serial)")
	flag.Parse()

	if *d < 0 {
		fatal(fmt.Errorf("negative dimension %d", *d))
	}
	if *d > 0 {
		if *d > 40 {
			fatal(fmt.Errorf("d=%d too large to enumerate", *d))
		}
		if *m >= 0 {
			if err := costed(*d, *m, *machine, *optWorkers, *replayWorkers); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Printf("partitions of %d (p(%d) = %d):\n", *d, *d, partition.Count(*d))
		it := partition.NewIterator(*d)
		for D := it.Next(); D != nil; D = it.Next() {
			fmt.Println("  ", D)
		}
		return
	}

	t := report.NewTable("number of multiphase algorithms: p(d) (paper §6)",
		"d", "nodes", "p(d)")
	for dd := 1; dd <= 20; dd++ {
		t.AddRowStrings(
			fmt.Sprintf("%d", dd),
			fmt.Sprintf("%d", 1<<uint(dd)),
			fmt.Sprintf("%d", partition.Count(dd)))
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

// costed prints every partition of d with its modeled multiphase time
// for block size m — the §6 enumeration the optimizer runs, made
// visible. The winner is marked.
func costed(d, m int, machine string, optWorkers, replayWorkers int) error {
	prm, err := model.MachineByName(machine)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("the p(%d) = %d multiphase candidates at m=%dB on %s (§6)",
			d, partition.Count(d), m, machine),
		"partition", "phases", "modeled (µs)", "")
	// Ask the optimizer itself which candidate wins, so the mark always
	// agrees with what mpx and pland serve (tie-breaks included).
	opt := optimize.New(prm)
	opt.SetWorkers(optWorkers)
	opt.SetReplayShards(replayWorkers)
	best, err := opt.Best(d, m)
	if err != nil {
		return err
	}
	it := partition.NewIterator(d)
	for D := it.Next(); D != nil; D = it.Next() {
		tt, _ := prm.Multiphase(m, d, D)
		mark := ""
		if D.Equal(best.Part) {
			mark = "← best"
		}
		t.AddRowStrings(D.String(), fmt.Sprintf("%d", len(D)), report.FormatMicros(tt), mark)
	}
	return t.Write(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partitions:", err)
	os.Exit(1)
}
