// Command partitions prints the integer-partition table of paper §6 — the
// number of multiphase algorithm candidates per hypercube dimension — and
// optionally enumerates the partitions themselves.
//
// Usage:
//
//	partitions            # the p(d) table for d = 1..20
//	partitions -d 7       # enumerate the 15 partitions of 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/partition"
	"repro/internal/report"
)

func main() {
	d := flag.Int("d", 0, "enumerate the partitions of this dimension (0 = print the p(d) table)")
	flag.Parse()

	if *d > 0 {
		if *d > 40 {
			fatal(fmt.Errorf("d=%d too large to enumerate", *d))
		}
		fmt.Printf("partitions of %d (p(%d) = %d):\n", *d, *d, partition.Count(*d))
		it := partition.NewIterator(*d)
		for D := it.Next(); D != nil; D = it.Next() {
			fmt.Println("  ", D)
		}
		return
	}

	t := report.NewTable("number of multiphase algorithms: p(d) (paper §6)",
		"d", "nodes", "p(d)")
	for dd := 1; dd <= 20; dd++ {
		t.AddRowStrings(
			fmt.Sprintf("%d", dd),
			fmt.Sprintf("%d", 1<<uint(dd)),
			fmt.Sprintf("%d", partition.Count(dd)))
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partitions:", err)
	os.Exit(1)
}
