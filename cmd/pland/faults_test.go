package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func post(t *testing.T, url string, body interface{}, v interface{}) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, b)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

// degradedPlanWire mirrors the fault-aware parts of /v1/plan.
type degradedPlanWire struct {
	planWire
	Health   string `json:"health"`
	Degraded bool   `json:"degraded"`
}

// faultMetricsWire mirrors the fault slice of /metrics.
type faultMetricsWire struct {
	Faults struct {
		ActiveFaultSets int   `json:"active_fault_sets"`
		DegradedServes  int64 `json:"degraded_serves"`
		RebuildFailures int64 `json:"rebuild_failures"`
	} `json:"faults"`
	Panics int64 `json:"panics_total"`
}

// Acceptance: when the fabric's faults make re-planning impossible, the
// daemon serves the last-known-good plan flagged degraded, retries the
// rebuild with bounded backoff, and exposes both on /metrics.
func TestDaemonDegradedServing(t *testing.T) {
	base, _ := startDaemon(t, options{
		machine:      "ipsc860",
		rebuildTries: 2,
		rebuildWait:  time.Millisecond,
	})
	planURL := base + "/v1/plan?machine=ipsc860&topology=torus-4x4&m=40"

	var healthy degradedPlanWire
	fetch(t, planURL, &healthy)
	if healthy.Health != "ok" || healthy.Degraded {
		t.Fatalf("healthy serve: health=%q degraded=%v", healthy.Health, healthy.Degraded)
	}

	// Kill a node: the 4x4 torus can no longer host a complete exchange.
	post(t, base+"/v1/faults", map[string]interface{}{
		"topology": "torus-4x4", "action": "down", "nodes": []int{5},
	}, nil)

	var deg degradedPlanWire
	fetch(t, planURL, &deg)
	if !deg.Degraded || deg.Health != "dn=5" {
		t.Fatalf("degraded serve: health=%q degraded=%v, want dn=5/true", deg.Health, deg.Degraded)
	}
	if deg.PredictedUS != healthy.PredictedUS {
		t.Fatalf("degraded serve changed the last-known-good cost %v → %v",
			healthy.PredictedUS, deg.PredictedUS)
	}

	// The bounded rebuild gives up and the counters say so.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var mw faultMetricsWire
		fetch(t, base+"/metrics", &mw)
		if mw.Faults.RebuildFailures >= 1 {
			if mw.Faults.DegradedServes < 1 || mw.Faults.ActiveFaultSets != 1 {
				t.Fatalf("fault metrics = %+v", mw.Faults)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebuild retries never exhausted")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restoring the node heals serving.
	post(t, base+"/v1/faults", map[string]interface{}{
		"topology": "torus-4x4", "action": "restore", "nodes": []int{5},
	}, nil)
	var healed degradedPlanWire
	fetch(t, planURL, &healed)
	if healed.Degraded || healed.Health != "ok" {
		t.Fatalf("after restore: health=%q degraded=%v", healed.Health, healed.Degraded)
	}
}

// A corrupt snapshot must not keep the daemon down: it logs the parse
// error, moves the file to .corrupt, and starts cold.
func TestDaemonCorruptSnapshotStartsCold(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.json")
	if err := os.WriteFile(snap, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, _ := startDaemon(t, options{machine: "ipsc860", snapshotPath: snap})
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot was not moved aside: %v", err)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in place (err=%v)", err)
	}
	var got planWire
	fetch(t, base+"/v1/plan?machine=ipsc860&d=6&m=40", &got)
	if len(got.Partition) == 0 {
		t.Fatal("cold daemon served an empty plan")
	}
}

// Regression: a snapshot truncated mid-JSON (a crash while an external
// tool copied it, disk-full) is handled exactly like corruption.
func TestDaemonTruncatedSnapshotStartsCold(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.json")

	// Produce a genuine snapshot, then cut it off mid-stream.
	base, stop := startDaemon(t, options{machine: "ipsc860", snapshotPath: snap})
	var got planWire
	fetch(t, base+"/v1/plan?machine=ipsc860&d=6&m=40", &got)
	stop()
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 64 || !strings.Contains(string(raw), "\"lines\"") {
		t.Fatalf("unexpected snapshot content (%d bytes)", len(raw))
	}
	if err := os.WriteFile(snap, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	base2, _ := startDaemon(t, options{machine: "ipsc860", snapshotPath: snap})
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Fatalf("truncated snapshot was not moved aside: %v", err)
	}
	var cold metricsWire
	fetch(t, base2+"/metrics", &cold)
	if cold.Cache.Lines != 0 {
		t.Fatalf("daemon restored %d lines from a truncated snapshot, want cold start", cold.Cache.Lines)
	}
	var again planWire
	fetch(t, base2+"/v1/plan?machine=ipsc860&d=6&m=40", &again)
	if again.PredictedUS != got.PredictedUS {
		t.Fatalf("cold rebuild answered %v µs, pre-truncation daemon said %v µs",
			again.PredictedUS, got.PredictedUS)
	}
}
