package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/topology"
)

// startDaemon runs a daemon on a loopback listener and returns its base
// URL plus a stop function that shuts it down gracefully (writing the
// final snapshot) and waits for exit.
func startDaemon(t *testing.T, o options) (baseURL string, stop func()) {
	t.Helper()
	o.logger = slog.New(slog.DiscardHandler)
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, ln) }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
	t.Cleanup(stop)
	return "http://" + ln.Addr().String(), stop
}

func fetch(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// planWire mirrors the service's /v1/plan response.
type planWire struct {
	Machine     string  `json:"machine"`
	Partition   []int   `json:"partition"`
	PredictedUS float64 `json:"predicted_us"`
}

// metricsWire mirrors the parts of /metrics the test asserts on.
type metricsWire struct {
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
		Builds int64 `json:"builds"`
		Lines  int   `json:"lines"`
	} `json:"cache"`
}

// TestDaemonEndToEnd drives the full acceptance path: a served plan
// equals optimize.Best, repeat queries hit the cache without touching
// the optimizer, and the shutdown snapshot restores to a warm cache
// that answers without re-costing.
func TestDaemonEndToEnd(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.json")
	base, stop := startDaemon(t, options{
		machine:      "ipsc860",
		snapshotPath: snap,
	})

	// A served plan equals optimize.Best for the same (machine, d, m).
	ref := optimize.New(model.IPSC860())
	queried := []struct{ d, m int }{{7, 40}, {7, 160}, {6, 8}, {5, 300}}
	for _, q := range queried {
		var got planWire
		fetch(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=%d&m=%d", base, q.d, q.m), &got)
		want, err := ref.Best(q.d, q.m)
		if err != nil {
			t.Fatal(err)
		}
		if !partition.Partition(got.Partition).Equal(want.Part) {
			t.Errorf("d=%d m=%d: served %v, optimize.Best %v", q.d, q.m, got.Partition, want.Part)
		}
		if got.PredictedUS != want.TimeMicro {
			t.Errorf("d=%d m=%d: served %v µs, optimize.Best %v µs", q.d, q.m, got.PredictedUS, want.TimeMicro)
		}
	}

	// Cache hits bypass the optimizer: the three distinct dimensions
	// cost three builds, and further queries move only the hit counter.
	var before metricsWire
	fetch(t, base+"/metrics", &before)
	if before.Cache.Builds != 3 {
		t.Errorf("builds = %d after 3 distinct (machine,d), want 3", before.Cache.Builds)
	}
	for i := 0; i < 10; i++ {
		var got planWire
		fetch(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=7&m=%d", base, i*37), &got)
	}
	var after metricsWire
	fetch(t, base+"/metrics", &after)
	if after.Cache.Builds != before.Cache.Builds || after.Cache.Misses != before.Cache.Misses {
		t.Errorf("hot queries ran builds %d→%d misses %d→%d, want unchanged",
			before.Cache.Builds, after.Cache.Builds, before.Cache.Misses, after.Cache.Misses)
	}
	if after.Cache.Hits < before.Cache.Hits+10 {
		t.Errorf("hits %d→%d, want +10", before.Cache.Hits, after.Cache.Hits)
	}

	// Graceful shutdown writes the snapshot.
	stop()
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("shutdown did not write snapshot: %v", err)
	}

	// A restarted daemon restores warm: it answers identically with
	// zero builds and zero misses.
	base2, stop2 := startDaemon(t, options{
		machine:      "ipsc860",
		snapshotPath: snap,
	})
	defer stop2()
	for _, q := range queried {
		var got planWire
		fetch(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=%d&m=%d", base2, q.d, q.m), &got)
		want, err := ref.Best(q.d, q.m)
		if err != nil {
			t.Fatal(err)
		}
		if !partition.Partition(got.Partition).Equal(want.Part) || got.PredictedUS != want.TimeMicro {
			t.Errorf("restored d=%d m=%d: served %v/%v, want %v/%v",
				q.d, q.m, got.Partition, got.PredictedUS, want.Part, want.TimeMicro)
		}
	}
	var warm metricsWire
	fetch(t, base2+"/metrics", &warm)
	if warm.Cache.Builds != 0 || warm.Cache.Misses != 0 {
		t.Errorf("restored cache ran builds=%d misses=%d, want 0/0 (warm restart)",
			warm.Cache.Builds, warm.Cache.Misses)
	}
	if warm.Cache.Lines != 3 {
		t.Errorf("restored cache holds %d lines, want 3", warm.Cache.Lines)
	}
}

func TestDaemonWarmup(t *testing.T) {
	base, _ := startDaemon(t, options{
		machine:    "hypo",
		warmupDims: "5, 6",
	})
	var m metricsWire
	fetch(t, base+"/metrics", &m)
	wantLines := 2 * len(model.Machines())
	if m.Cache.Lines != wantLines {
		t.Errorf("warmup built %d lines, want %d (2 dims × every machine)", m.Cache.Lines, wantLines)
	}
	// A warmed query is a pure hit: no new miss, no new build.
	var got planWire
	fetch(t, base+"/v1/plan?machine=ncube2&d=6&m=64", &got)
	var after metricsWire
	fetch(t, base+"/metrics", &after)
	if after.Cache.Misses != m.Cache.Misses || after.Cache.Builds != m.Cache.Builds {
		t.Errorf("warmed query moved misses %d→%d builds %d→%d, want unchanged",
			m.Cache.Misses, after.Cache.Misses, m.Cache.Builds, after.Cache.Builds)
	}
	if after.Cache.Hits <= m.Cache.Hits {
		t.Errorf("warmed query did not hit (hits %d→%d)", m.Cache.Hits, after.Cache.Hits)
	}
}

func TestDaemonPeriodicSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.json")
	base, _ := startDaemon(t, options{
		machine:       "hypo",
		snapshotPath:  snap,
		snapshotEvery: 50 * time.Millisecond,
	})
	var got planWire
	fetch(t, base+"/v1/plan?d=6&m=40", &got)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snap); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDaemonRejectsBadOptions(t *testing.T) {
	for _, o := range []options{
		{machine: "cray"},
		{machine: "ipsc860", backend: "quantum"},
		{machine: "ipsc860", warmupDims: "5,x"},
		{machine: "ipsc860", warmupDims: "-3"},
	} {
		o.logger = slog.New(slog.DiscardHandler)
		if _, err := newDaemon(o); err == nil {
			t.Errorf("newDaemon(%+v) succeeded, want error", o)
		}
	}
}

func TestDaemonDefaultMachineFlag(t *testing.T) {
	base, _ := startDaemon(t, options{machine: "hypo"})
	var got planWire
	fetch(t, base+"/v1/plan?d=6&m=24", &got)
	if got.Machine != "hypo" {
		t.Errorf("default machine %q, want hypo", got.Machine)
	}
	want, err := optimize.New(model.Hypothetical()).Best(6, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !partition.Partition(got.Partition).Equal(want.Part) {
		t.Errorf("served %v, want %v", got.Partition, want.Part)
	}
}

// TestDaemonServesTorus drives the topology acceptance path end to end:
// the daemon serves /v1/plan for a torus machine, the answer equals the
// optimizer's own winner for that shape, repeat queries hit the cache
// without new builds, and the torus line survives a snapshot restart.
func TestDaemonServesTorus(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.json")
	base, stop := startDaemon(t, options{
		machine:      "ipsc860",
		snapshotPath: snap,
	})

	ref := optimize.New(model.IPSC860())
	net, err := topology.ParseSpec("torus-4x4x4")
	if err != nil {
		t.Fatal(err)
	}
	type torusWire struct {
		planWire
		Topology string `json:"topology"`
	}
	for _, m := range []int{0, 40, 160} {
		var got torusWire
		fetch(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&topology=torus-4x4x4&m=%d", base, m), &got)
		want, err := ref.BestOn(net, m)
		if err != nil {
			t.Fatal(err)
		}
		if got.Topology != "torus-4x4x4" {
			t.Errorf("m=%d: served topology %q", m, got.Topology)
		}
		if !partition.Partition(got.Partition).Equal(want.Part) || got.PredictedUS != want.TimeMicro {
			t.Errorf("m=%d: served %v/%v µs, optimizer %v/%v µs",
				m, got.Partition, got.PredictedUS, want.Part, want.TimeMicro)
		}
	}

	// One torus line was built; further torus queries are pure hits.
	var before metricsWire
	fetch(t, base+"/metrics", &before)
	if before.Cache.Builds != 1 || before.Cache.Lines != 1 {
		t.Errorf("builds=%d lines=%d after one torus line, want 1/1", before.Cache.Builds, before.Cache.Lines)
	}
	for i := 0; i < 8; i++ {
		var got torusWire
		fetch(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&topology=torus-4x4x4&m=%d", base, i*53), &got)
	}
	var after metricsWire
	fetch(t, base+"/metrics", &after)
	if after.Cache.Builds != before.Cache.Builds || after.Cache.Misses != before.Cache.Misses {
		t.Errorf("torus hits ran builds %d→%d misses %d→%d, want unchanged",
			before.Cache.Builds, after.Cache.Builds, before.Cache.Misses, after.Cache.Misses)
	}
	if after.Cache.Hits < before.Cache.Hits+8 {
		t.Errorf("hits %d→%d, want +8", before.Cache.Hits, after.Cache.Hits)
	}

	// Warm restart keeps the torus line.
	stop()
	base2, stop2 := startDaemon(t, options{machine: "ipsc860", snapshotPath: snap})
	defer stop2()
	var got torusWire
	fetch(t, base2+"/v1/plan?machine=ipsc860&topology=torus-4x4x4&m=40", &got)
	want, err := ref.BestOn(net, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !partition.Partition(got.Partition).Equal(want.Part) {
		t.Errorf("restored torus answer %v, want %v", got.Partition, want.Part)
	}
	var warm metricsWire
	fetch(t, base2+"/metrics", &warm)
	if warm.Cache.Builds != 0 || warm.Cache.Misses != 0 {
		t.Errorf("restored torus cache ran builds=%d misses=%d, want 0/0",
			warm.Cache.Builds, warm.Cache.Misses)
	}
}
