package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// startFleetNode is startDaemon over a pre-reserved listener, so the
// fleet's peer URLs are known before any replica boots.
func startFleetNode(t *testing.T, o options, ln net.Listener) (stop func()) {
	t.Helper()
	o.logger = slog.New(slog.DiscardHandler)
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.run(ctx, ln) }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not shut down")
		}
	}
	t.Cleanup(stop)
	return stop
}

// clusterMetricsWire mirrors the /metrics fields the fleet test asserts.
type clusterMetricsWire struct {
	Cache struct {
		Builds      int64 `json:"builds"`
		PeerImports int64 `json:"peer_imports"`
	} `json:"cache"`
	Cluster struct {
		PeerHits       int64 `json:"peer_hits_total"`
		FallbackBuilds int64 `json:"peer_fallback_builds_total"`
		Peers          []struct {
			URL     string `json:"url"`
			Breaker string `json:"breaker"`
		} `json:"peers"`
	} `json:"cluster"`
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready", base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetEndToEnd is the clustered acceptance path: a non-owner
// serves a line by fetching it from its ring owner (the owner builds
// once, the fetcher imports instead of building), and after the owner
// dies the same fetcher still answers — by local fallback build, within
// one client deadline, with the breaker trip visible on /metrics.
func TestFleetEndToEnd(t *testing.T) {
	const n = 3
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := strings.Join(urls, ",")

	stops := make([]func(), n)
	for i := range lns {
		stops[i] = startFleetNode(t, options{
			machine:          "ipsc860",
			self:             urls[i],
			peers:            peers,
			peerAttempts:     1,
			breakerThreshold: 1,
			probeEvery:       time.Hour, // only the startup sweep: the test owns peer-state timing
		}, lns[i])
	}
	for _, u := range urls {
		waitReady(t, u)
	}

	// Map two hypercube lines to the same owner, and pick a distinct
	// replica as the fetcher.
	ring, err := cluster.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	ownerOf := func(d int) string {
		return ring.Owner(cluster.LineKey("ipsc860", fmt.Sprintf("hypercube-%d", d)))
	}
	owner := ownerOf(3)
	var dims []int
	for d := 3; d <= 20 && len(dims) < 2; d++ {
		if ownerOf(d) == owner {
			dims = append(dims, d)
		}
	}
	if len(dims) < 2 {
		t.Fatalf("no two dims share owner %s", owner)
	}
	var fetcher string
	ownerIdx := -1
	for i, u := range urls {
		if u == owner {
			ownerIdx = i
		} else if fetcher == "" {
			fetcher = u
		}
	}

	// Owner-serve: the non-owner answers by peer fetch. The owner builds
	// the line (once, on demand); the fetcher imports it.
	var plan planWire
	fetch(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=%d&m=40", fetcher, dims[0]), &plan)
	var fm, om clusterMetricsWire
	fetch(t, fetcher+"/metrics", &fm)
	fetch(t, owner+"/metrics", &om)
	if fm.Cluster.PeerHits != 1 || fm.Cache.PeerImports != 1 || fm.Cache.Builds != 0 {
		t.Fatalf("fetcher after peer serve: hits=%d imports=%d builds=%d, want 1/1/0",
			fm.Cluster.PeerHits, fm.Cache.PeerImports, fm.Cache.Builds)
	}
	if om.Cache.Builds != 1 {
		t.Fatalf("owner built %d lines, want exactly 1", om.Cache.Builds)
	}

	// Resident now: a repeat query on the fetcher touches nobody.
	fetch(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=%d&m=80", fetcher, dims[0]), &plan)
	fetch(t, fetcher+"/metrics", &fm)
	if fm.Cluster.PeerHits != 1 {
		t.Fatalf("repeat query re-fetched from the owner (hits %d)", fm.Cluster.PeerHits)
	}

	// Kill the owner. The fleet froze probing (probeEvery is an hour), so
	// the fetcher still believes the owner is up: its next owned-line
	// miss pays one failed fetch, trips the breaker, and falls back to a
	// local build — the request must still succeed, quickly.
	stops[ownerIdx]()
	client := &http.Client{Timeout: 15 * time.Second}
	began := time.Now()
	resp, err := client.Get(fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=%d&m=40", fetcher, dims[1]))
	if err != nil {
		t.Fatalf("request after owner death: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after owner death: %d, want 200 via local fallback", resp.StatusCode)
	}
	if took := time.Since(began); took > 10*time.Second {
		t.Fatalf("fallback took %v — dead peer stalled the request", took)
	}

	fetch(t, fetcher+"/metrics", &fm)
	if fm.Cluster.FallbackBuilds < 1 {
		t.Fatal("peer_fallback_builds_total did not move after owner death")
	}
	if fm.Cache.Builds < 1 {
		t.Fatal("fetcher did not build locally after owner death")
	}
	breaker := ""
	for _, p := range fm.Cluster.Peers {
		if p.URL == owner {
			breaker = p.Breaker
		}
	}
	if breaker != "open" {
		t.Fatalf("dead owner's breaker is %q on the fetcher's /metrics, want open", breaker)
	}
}

// TestFleetFaultForwarding: a fault update accepted by one replica
// reaches the others (marked forwarded, applied, not re-forwarded).
func TestFleetFaultForwarding(t *testing.T) {
	const n = 2
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := strings.Join(urls, ",")
	for i := range lns {
		startFleetNode(t, options{
			machine: "ipsc860",
			self:    urls[i],
			peers:   peers,
		}, lns[i])
	}
	for _, u := range urls {
		waitReady(t, u)
	}

	body := `{"topology":"hypercube-4","action":"slow","links":[[0,1]],"factor":3}`
	resp, err := http.Post(urls[0]+"/v1/faults", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault update: %d", resp.StatusCode)
	}

	// Replica 1 now serves hypercube-4 under the forwarded fault digest.
	type healthWire struct {
		DegradedFabrics []string `json:"degraded_fabrics"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h healthWire
		fetch(t, urls[1]+"/healthz", &h)
		found := false
		for _, f := range h.DegradedFabrics {
			if f == "hypercube-4" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("forwarded fault never reached the peer replica")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
