// Command pland is the plan-serving daemon: it exposes the multiphase
// exchange auto-tuner as an HTTP JSON service backed by the sharded plan
// cache, so choosing the best partition for a (machine, d, m) query is a
// network call answered from O(hull) cached segments instead of a fresh
// enumeration.
//
// Usage:
//
//	pland                                    # iPSC-860 default, :8080
//	pland -machine hypo -addr :9090
//	pland -snapshot plans.json -snapshot-every 1m
//	pland -warmup-dims 5,6,7                 # pre-build every machine's hulls
//
// The daemon restores its cache from -snapshot at startup (if the file
// exists), persists it periodically and again on graceful shutdown
// (SIGINT/SIGTERM), so a restarted daemon answers warm without re-running
// a single partition enumeration.
//
// Fleet mode: -self and -peers turn N replicas into one logical cache.
//
//	pland -addr :8081 -self http://host1:8081 \
//	      -peers http://host1:8081,http://host2:8082,http://host3:8083
//
// Every replica must be given the same -peers set (its own URL may be
// included; it is excluded from its peer list automatically). A
// consistent-hash ring assigns each cache line an owner; misses are
// fetched from the owner with deadlines, retries, and a per-peer
// circuit breaker, and fall back to a local build when the owner is
// unreachable. /readyz turns 200 only after restore, warmup, and the
// ring join's warm fan-out; /healthz stays pure liveness.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/plancache"
	"repro/internal/service"
)

// options collects the daemon's flag values; main parses them and the
// end-to-end test constructs them directly.
type options struct {
	addr          string
	machine       string
	backend       string
	shards        int
	capacity      int
	sweepHi       int
	sweepStep     int
	snapshotPath  string
	snapshotEvery time.Duration
	warmupDims    string
	optWorkers    int
	replayWorkers int
	rebuildTries  int
	rebuildWait   time.Duration

	// Fleet mode (see the package doc): all off when peers is empty.
	self             string
	peers            string
	maxBuilds        int
	peerTimeout      time.Duration
	peerAttempts     int
	probeEvery       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	// Observability: -log-format selects text (default) or json slog
	// output; -debug-addr serves net/http/pprof and /debug/vars on its
	// own listener so profiling never shares a port with production
	// traffic; -trace-capacity bounds the /debug/traces ring.
	logFormat     string
	debugAddr     string
	traceCapacity int

	logger *slog.Logger
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.machine, "machine", "ipsc860", "default machine for requests that omit ?machine=")
	flag.StringVar(&o.backend, "backend", "analytic", "costing backend: analytic | simulated")
	flag.IntVar(&o.shards, "shards", 8, "cache shard count")
	flag.IntVar(&o.capacity, "cache-capacity", 64, "cache lines per shard (LRU beyond)")
	flag.IntVar(&o.sweepHi, "sweep-hi", plancache.DefaultSweepHi, "hull sweep upper block-size bound")
	flag.IntVar(&o.sweepStep, "sweep-step", 1, "hull sweep step")
	flag.StringVar(&o.snapshotPath, "snapshot", "", "cache snapshot file (restored at startup, written periodically and on shutdown)")
	flag.DurationVar(&o.snapshotEvery, "snapshot-every", 5*time.Minute, "periodic snapshot interval (requires -snapshot)")
	flag.StringVar(&o.warmupDims, "warmup-dims", "", "comma-separated dimensions to pre-build for every machine at startup, e.g. \"5,6,7\"")
	flag.IntVar(&o.optWorkers, "opt-workers", 0, "optimizer candidate-costing workers, clamped to GOMAXPROCS (0 = backend default)")
	flag.IntVar(&o.replayWorkers, "replay-workers", 0, "event-engine shards per simulated replay on link-disjoint phases; results stay bit-identical (0 or 1 = serial)")
	flag.IntVar(&o.rebuildTries, "rebuild-attempts", 0, "background degraded-plan rebuild attempts (0 = service default)")
	flag.DurationVar(&o.rebuildWait, "rebuild-backoff", 0, "initial backoff between rebuild attempts, doubled per try (0 = service default)")
	flag.StringVar(&o.self, "self", "", "this replica's advertised base URL (required with -peers)")
	flag.StringVar(&o.peers, "peers", "", "comma-separated replica base URLs forming the fleet (empty = standalone)")
	flag.IntVar(&o.maxBuilds, "max-builds", 0, "concurrent local hull builds before shedding with 503 (0 = unbounded)")
	flag.DurationVar(&o.peerTimeout, "peer-timeout", 0, "per-attempt peer fetch deadline (0 = cluster default)")
	flag.IntVar(&o.peerAttempts, "peer-attempts", 0, "peer fetch attempts before local fallback (0 = cluster default)")
	flag.DurationVar(&o.probeEvery, "probe-every", 0, "peer health-probe interval (0 = cluster default)")
	flag.IntVar(&o.breakerThreshold, "breaker-threshold", 0, "consecutive peer failures before the breaker opens (0 = cluster default)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = cluster default)")
	flag.StringVar(&o.logFormat, "log-format", "text", "log output format: text | json")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "listen address for pprof and /debug/vars (empty = off)")
	flag.IntVar(&o.traceCapacity, "trace-capacity", 0, "request traces retained for /debug/traces (0 = default)")
	flag.Parse()
	logger, err := newLogger(o.logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pland:", err)
		os.Exit(1)
	}
	o.logger = logger

	d, err := newDaemon(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pland:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pland:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := d.run(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "pland:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's slog logger for a -log-format value.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (valid: text, json)", format)
	}
}

// daemon owns the cache, the HTTP server, the optional peer layer, and
// the snapshot lifecycle.
type daemon struct {
	opts  options
	cache *plancache.Cache
	svc   *service.Server
	clu   *cluster.Cluster // nil when standalone
	srv   *http.Server
	log   *slog.Logger
}

// newDaemon validates the options, builds the cache (restoring a
// snapshot if one exists), warms it, and wires the service handler.
func newDaemon(o options) (*daemon, error) {
	if o.logger == nil {
		o.logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	var newOpt func(model.Params) *optimize.Optimizer
	switch o.backend {
	case "analytic", "":
		newOpt = optimize.New
	case "simulated":
		newOpt = optimize.NewSimulated
	default:
		return nil, fmt.Errorf("unknown backend %q (valid: analytic, simulated)", o.backend)
	}
	defaultMachine, err := model.CanonicalName(o.machine)
	if err != nil {
		return nil, err
	}
	// The simulated backend's serving bound (see service.PlanMaxDim
	// below): warming dimensions the server will refuse to serve would
	// be pure startup cost.
	planMaxDim := 20
	if o.backend == "simulated" {
		planMaxDim = 12
	}
	dims, err := parseDims(o.warmupDims)
	if err != nil {
		return nil, err
	}
	for _, dim := range dims {
		if dim > planMaxDim {
			return nil, fmt.Errorf("warmup dimension %d exceeds the serving bound d ≤ %d for the %s backend",
				dim, planMaxDim, o.backend)
		}
	}

	// The peer layer is built before the cache so the cache's miss path
	// can carry the owner-fetch hook from day one.
	var clu *cluster.Cluster
	if o.peers != "" {
		if o.self == "" {
			return nil, fmt.Errorf("-peers requires -self (this replica's advertised URL)")
		}
		clu, err = cluster.New(cluster.Config{
			Self:             o.self,
			Peers:            strings.Split(o.peers, ","),
			FetchAttempts:    o.peerAttempts,
			FetchTimeout:     o.peerTimeout,
			BreakerThreshold: o.breakerThreshold,
			BreakerCooldown:  o.breakerCooldown,
			ProbeInterval:    o.probeEvery,
			Logger:           o.logger,
		})
		if err != nil {
			return nil, err
		}
	}

	cacheCfg := plancache.Config{
		Shards:              o.shards,
		CapacityPerShard:    o.capacity,
		SweepHi:             o.sweepHi,
		SweepStep:           o.sweepStep,
		NewOptimizer:        newOpt,
		OptWorkers:          o.optWorkers,
		ReplayWorkers:       o.replayWorkers,
		MaxConcurrentBuilds: o.maxBuilds,
	}
	if clu != nil {
		cacheCfg.Fetch = clu.FetchLine
	}
	cache := plancache.New(cacheCfg)
	if o.snapshotPath != "" {
		restored, skipped, err := cache.RestoreFile(o.snapshotPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			o.logger.Info("no snapshot, starting cold", "path", o.snapshotPath)
		case err != nil:
			// A corrupt or truncated snapshot (a crash mid-write of an
			// earlier daemon, stray edits) must not keep the daemon down:
			// move it aside for postmortem and start cold. The next
			// periodic snapshot writes a fresh one.
			corrupt := o.snapshotPath + ".corrupt"
			o.logger.Warn("snapshot unreadable, moving aside and starting cold",
				"path", o.snapshotPath, "error", err, "moved_to", corrupt)
			if mvErr := os.Rename(o.snapshotPath, corrupt); mvErr != nil {
				return nil, fmt.Errorf("moving corrupt snapshot aside: %w", mvErr)
			}
		default:
			// Resident can be below restored when the snapshot holds
			// more lines than the configured capacity.
			o.logger.Info("restored cache snapshot", "path", o.snapshotPath,
				"restored", restored, "stale_skipped", skipped, "resident", cache.Stats().Lines)
		}
	}
	for _, dim := range dims {
		for name := range cache.Machines() {
			built, err := cache.Warm(name, dim)
			if err != nil {
				return nil, fmt.Errorf("warmup %s/d=%d: %w", name, dim, err)
			}
			if built {
				o.logger.Info("warmed line", "machine", name, "d", dim)
			}
		}
	}

	// A cache miss on the simulated backend runs a full hull sweep of
	// Best calls — hundreds of compiled replays per build — so the
	// serving bound must match the per-request /v1/cost bound.
	svcCfg := service.Config{
		Cache:           cache,
		DefaultMachine:  defaultMachine,
		PlanMaxDim:      planMaxDim,
		ReplayWorkers:   o.replayWorkers,
		RebuildAttempts: o.rebuildTries,
		RebuildBackoff:  o.rebuildWait,
		Logger:          o.logger,
		Tracer:          obs.NewTracer(o.traceCapacity),
		Cluster:         clu,
	}
	svc, err := service.New(svcCfg)
	if err != nil {
		return nil, err
	}
	return &daemon{
		opts:  o,
		cache: cache,
		svc:   svc,
		clu:   clu,
		srv: &http.Server{
			Handler: svc.Handler(),
			// A public daemon must not let one stalled peer pin a
			// connection forever: bound the header read (slowloris), the
			// whole request read, the response write (covers handler
			// time — generous, a cold simulated-backend hull build is
			// minutes of work), and keep-alive idle.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       1 * time.Minute,
			WriteTimeout:      10 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		},
		log: o.logger,
	}, nil
}

// run serves until ctx is cancelled, then shuts down gracefully and
// writes a final snapshot.
func (d *daemon) run(ctx context.Context, ln net.Listener) error {
	d.log.Info("serving", "addr", ln.Addr().String(),
		"default_machine", d.opts.machine, "backend", d.opts.backend)

	serveErr := make(chan error, 1)
	go func() { serveErr <- d.srv.Serve(ln) }()

	// The debug listener is opt-in and separate from production traffic:
	// pprof endpoints are expensive and unauthenticated, so they never
	// share the serving port. Best effort — a daemon that cannot bind
	// its debug port still serves.
	var debugSrv *http.Server
	if d.opts.debugAddr != "" {
		dln, err := net.Listen("tcp", d.opts.debugAddr)
		if err != nil {
			d.log.Warn("debug listener failed, continuing without it",
				"addr", d.opts.debugAddr, "error", err)
		} else {
			debugSrv = &http.Server{Handler: debugMux()}
			d.log.Info("debug endpoints up", "addr", dln.Addr().String())
			go func() {
				if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
					d.log.Warn("debug server exited", "error", err)
				}
			}()
		}
	}

	// Readiness: restore + warmup already ran in newDaemon. A standalone
	// daemon is ready as soon as it serves; a clustered one first starts
	// health probes and warm-fetches its owned lines from live peers —
	// in the background, because joining a fleet whose peers are still
	// booting must not deadlock startup (they need our /healthz up).
	if d.clu == nil {
		d.svc.SetReady(true)
	} else {
		d.clu.Start(ctx)
		go func() {
			imported, err := d.clu.WarmOwned(ctx, d.cache)
			if err != nil {
				d.log.Warn("warm fan-out incomplete", "component", "cluster",
					"imported", imported, "error", err)
			} else if imported > 0 {
				d.log.Info("warmed owned lines from peers", "component", "cluster",
					"imported", imported)
			}
			d.svc.SetReady(true)
		}()
	}

	snapDone := make(chan struct{})
	if d.opts.snapshotPath != "" && d.opts.snapshotEvery > 0 {
		go d.snapshotLoop(ctx, snapDone)
	} else {
		close(snapDone)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	if err := d.srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-snapDone
	return d.snapshot("final")
}

// snapshotLoop persists the cache every snapshotEvery until ctx ends.
func (d *daemon) snapshotLoop(ctx context.Context, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(d.opts.snapshotEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := d.snapshot("periodic"); err != nil {
				d.log.Warn("periodic snapshot failed", "error", err)
			}
		}
	}
}

func (d *daemon) snapshot(kind string) error {
	if d.opts.snapshotPath == "" {
		return nil
	}
	if err := d.cache.SnapshotFile(d.opts.snapshotPath); err != nil {
		return fmt.Errorf("%s snapshot: %w", kind, err)
	}
	s := d.cache.Stats()
	d.log.Info("snapshot written", "kind", kind, "lines", s.Lines,
		"segments", s.Segments, "path", d.opts.snapshotPath)
	return nil
}

// debugMux routes the opt-in debug endpoints: the standard pprof set
// and expvar's /debug/vars (Go runtime memstats and cmdline).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// parseDims parses a comma-separated dimension list.
func parseDims(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var dims []int
	for _, f := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("warmup dimension %q is not an integer", f)
		}
		if d < 0 {
			return nil, fmt.Errorf("warmup dimension %d is negative", d)
		}
		dims = append(dims, d)
	}
	return dims, nil
}
