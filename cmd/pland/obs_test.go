package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// tracesWire mirrors the /debug/traces fields this test asserts.
type tracesWire struct {
	Traces []struct {
		ID    string `json:"id"`
		Name  string `json:"name"`
		Spans []struct {
			Name  string `json:"name"`
			Attrs []struct {
				Key   string `json:"key"`
				Value string `json:"value"`
			} `json:"attrs"`
		} `json:"spans"`
	} `json:"traces"`
}

// waitTrace polls one replica's /debug/traces until a trace with the
// given request ID commits, returning it.
func waitTrace(t *testing.T, base, id string) tracesWire {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var tw tracesWire
		fetch(t, base+"/debug/traces?id="+id, &tw)
		if len(tw.Traces) > 0 {
			return tw
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never committed a trace for %s", base, id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetRequestIDSpansReplicas is the cross-replica tracing
// acceptance path: one client request ID, supplied to the fetching
// replica, shows up on BOTH sides of a peer-served line — the fetcher's
// trace carries the peer_fetch stage, the owner's trace of the incoming
// line request carries the build, and both are addressable by the same
// ID on their respective /debug/traces.
func TestFleetRequestIDSpansReplicas(t *testing.T) {
	const n = 2
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := strings.Join(urls, ",")
	for i := range lns {
		startFleetNode(t, options{
			machine:    "ipsc860",
			self:       urls[i],
			peers:      peers,
			probeEvery: time.Hour,
		}, lns[i])
	}
	for _, u := range urls {
		waitReady(t, u)
	}

	// Pick a hypercube line owned by replica 0 so replica 1 must fetch.
	ring, err := cluster.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := -1
	for cand := 3; cand <= 20; cand++ {
		if ring.Owner(cluster.LineKey("ipsc860", fmt.Sprintf("hypercube-%d", cand))) == urls[0] {
			d = cand
			break
		}
	}
	if d < 0 {
		t.Fatal("no line owned by replica 0")
	}
	owner, fetcher := urls[0], urls[1]

	const id = "fleet-trace-0001"
	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=%d&m=40", fetcher, d), nil)
	req.Header.Set(obs.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-served plan: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != id {
		t.Fatalf("fetcher echoed request ID %q, want %q", got, id)
	}

	// The fetcher's trace: the plan request with a peer_fetch stage that
	// hit the owner.
	ft := waitTrace(t, fetcher, id)
	var peerOutcome string
	for _, tr := range ft.Traces {
		for _, sp := range tr.Spans {
			if sp.Name != "peer_fetch" {
				continue
			}
			for _, a := range sp.Attrs {
				if a.Key == "outcome" {
					peerOutcome = a.Value
				}
			}
		}
	}
	if peerOutcome != "hit" {
		t.Fatalf("fetcher trace has no successful peer_fetch span (outcome %q)", peerOutcome)
	}

	// The owner's trace: the SAME request ID arrived on the line fetch
	// (propagated via the X-Pland-Request-Id header across the hop) and
	// covers the on-demand build.
	ot := waitTrace(t, owner, id)
	foundLine, foundBuild := false, false
	for _, tr := range ot.Traces {
		if tr.Name == cluster.PeerLinePath {
			foundLine = true
		}
		for _, sp := range tr.Spans {
			if sp.Name == "build" {
				foundBuild = true
			}
		}
	}
	if !foundLine {
		t.Errorf("owner has no %s trace under the client's request ID", cluster.PeerLinePath)
	}
	if !foundBuild {
		t.Error("owner's trace of the peer line request is missing the build span")
	}
}
