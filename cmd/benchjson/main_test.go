package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
BenchmarkPlanCacheHit-8   200000   225.7 ns/op   1.000 hits/op   41 B/op   1 allocs/op
BenchmarkCostingCompiled/figure6_d7_m40-8   20   5890165 ns/op   34823 sim_µs   475853 B/op   738 allocs/op
PASS
ok  repro 1.2s
pkg: repro/internal/simnet
BenchmarkReplay-8   10   123 ns/op
`
	out, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(out.Benchmarks))
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkPlanCacheHit-8" || b.Pkg != "repro" || b.Iterations != 200000 {
		t.Errorf("first benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 225.7 || b.Metrics["allocs/op"] != 1 || b.Metrics["hits/op"] != 1 {
		t.Errorf("metrics: %+v", b.Metrics)
	}
	if out.Benchmarks[1].Metrics["sim_µs"] != 34823 {
		t.Errorf("custom metric lost: %+v", out.Benchmarks[1].Metrics)
	}
	if out.Benchmarks[2].Pkg != "repro/internal/simnet" {
		t.Errorf("pkg tracking: %+v", out.Benchmarks[2])
	}
}

func TestDiffAgainstBaseline(t *testing.T) {
	base := Output{Benchmarks: []Benchmark{
		{Name: "BenchmarkReplaySerial-4", Metrics: map[string]float64{"ns/op": 1000, "sim_µs": 50}},
		{Name: "BenchmarkReplaySharded-4", Metrics: map[string]float64{"ns/op": 400}},
		{Name: "BenchmarkGone-4", Metrics: map[string]float64{"ns/op": 7}},
		{Name: "BenchmarkZeroBase-4", Metrics: map[string]float64{"ns/op": 0}},
	}}
	cur := Output{Benchmarks: []Benchmark{
		{Name: "BenchmarkReplaySerial-4", Metrics: map[string]float64{"ns/op": 1500, "sim_µs": 50, "B/op": 9}},
		{Name: "BenchmarkReplaySharded-4", Metrics: map[string]float64{"ns/op": 300}},
		{Name: "BenchmarkNew-4", Metrics: map[string]float64{"ns/op": 1}},
		{Name: "BenchmarkZeroBase-4", Metrics: map[string]float64{"ns/op": 5}},
	}}
	lines := diff(cur, base)
	if len(lines) != 3 {
		t.Fatalf("diff produced %d lines, want 3: %+v", len(lines), lines)
	}
	// Current-run order, metrics sorted within a benchmark.
	if lines[0].Name != "BenchmarkReplaySerial-4" || lines[0].Metric != "ns/op" || lines[0].DeltaPct != 50 {
		t.Errorf("line 0: %+v", lines[0])
	}
	if lines[1].Metric != "sim_µs" || lines[1].DeltaPct != 0 {
		t.Errorf("line 1: %+v", lines[1])
	}
	if lines[2].Name != "BenchmarkReplaySharded-4" || lines[2].DeltaPct != -25 {
		t.Errorf("line 2: %+v", lines[2])
	}
}

func TestMissingRequired(t *testing.T) {
	out := Output{Benchmarks: []Benchmark{
		{Name: "BenchmarkBestOnPruned/d16-8"},
		{Name: "BenchmarkBuildTableMemoized-8"},
		{Name: "BenchmarkFooBar-8"},
	}}
	if got := missingRequired(out, ""); got != nil {
		t.Errorf("empty require: %v", got)
	}
	if got := missingRequired(out, "BenchmarkBestOnPruned, BenchmarkBuildTableMemoized"); got != nil {
		t.Errorf("both present, got missing %v", got)
	}
	// A prefix must stop at a name boundary: BenchmarkFoo is not
	// satisfied by BenchmarkFooBar.
	got := missingRequired(out, "BenchmarkFoo,BenchmarkBestOnPruned,BenchmarkGone")
	if len(got) != 2 || got[0] != "BenchmarkFoo" || got[1] != "BenchmarkGone" {
		t.Errorf("missing = %v, want [BenchmarkFoo BenchmarkGone]", got)
	}
}
