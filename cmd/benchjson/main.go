// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so CI can upload benchmark numbers as a
// machine-readable artifact and a later job (or benchstat after a
// json-to-text round trip) can track the perf trajectory across commits.
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_smoke.json
//
// The benchmark name keys keep the standard benchstat-compatible
// spelling (name/op including the -N GOMAXPROCS suffix), and every
// "value unit" pair after the iteration count is carried through, so
// custom metrics (sim_µs, hits/op) survive alongside ns/op, B/op and
// allocs/op.
//
// -require is CI's artifact sanity check: a comma-separated list of
// benchmark name prefixes that must each match at least one parsed
// result (sub-benchmark and -N suffixes count as matches), so a renamed
// or silently skipped benchmark fails the smoke step instead of
// producing a hollow artifact.
//
//	benchjson -require BenchmarkBestOnPruned,BenchmarkBuildTableMemoized < BENCH_raw.txt
//
// -baseline diffs the parsed results against a previously committed
// benchjson artifact (BENCH_prN.json): every metric present in both runs
// gets a per-metric delta line on stderr, keyed by benchmark name. With
// -regress P, a ns/op increase beyond P percent on any benchmark shared
// with the baseline exits nonzero, turning the smoke job into a coarse
// perf-regression gate. Iteration counts and machine differences make
// single-shot numbers noisy, so pick P with slack (≥ 20) for CI.
//
//	go test -run '^$' -bench . ./... | benchjson -baseline BENCH_pr10.json -regress 50
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name, e.g. "BenchmarkPlanCacheHit-8".
	Name string `json:"name"`
	// Pkg is the package the result came from ("pkg: …" header lines).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the
	// line: ns/op, B/op, allocs/op, and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the JSON envelope benchjson writes.
type Output struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	require := flag.String("require", "",
		"comma-separated benchmark name prefixes that must appear in the input")
	baseline := flag.String("baseline", "",
		"benchjson artifact to diff against (per-metric delta % on stderr)")
	regress := flag.Float64("regress", 0,
		"with -baseline: exit nonzero when any shared benchmark's ns/op grows by more than this percent (0 = report only)")
	flag.Parse()
	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if missing := missingRequired(out, *require); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: required benchmarks missing from input: %s\n",
			strings.Join(missing, ", "))
		os.Exit(1)
	}
	var regressed []string
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		lines := diff(out, base)
		for _, l := range lines {
			fmt.Fprintf(os.Stderr, "%s\t%s\t%.6g -> %.6g\t%+.1f%%\n",
				l.Name, l.Metric, l.Base, l.Cur, l.DeltaPct)
			if *regress > 0 && l.Metric == "ns/op" && l.DeltaPct > *regress {
				regressed = append(regressed, fmt.Sprintf("%s (+%.1f%%)", l.Name, l.DeltaPct))
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regressed beyond %.1f%% vs %s: %s\n",
			*regress, *baseline, strings.Join(regressed, ", "))
		os.Exit(1)
	}
}

// diffLine is one (benchmark, metric) comparison against the baseline.
type diffLine struct {
	Name     string
	Metric   string
	Base     float64
	Cur      float64
	DeltaPct float64
}

// loadBaseline reads a previously written benchjson artifact.
func loadBaseline(path string) (Output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Output{}, err
	}
	var out Output
	if err := json.Unmarshal(data, &out); err != nil {
		return Output{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

// diff compares every metric present in both runs, keyed by full
// benchmark name; benchmarks or metrics only one side has are skipped
// (a new benchmark cannot regress, a removed one is caught by -require).
// Lines come out in the current run's order, metrics sorted for stable
// output. A zero baseline value is skipped: its delta is undefined.
func diff(cur, base Output) []diffLine {
	baseByName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}
	var lines []diffLine
	for _, c := range cur.Benchmarks {
		b, ok := baseByName[c.Name]
		if !ok {
			continue
		}
		metrics := make([]string, 0, len(c.Metrics))
		for m := range c.Metrics {
			if _, ok := b.Metrics[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			if b.Metrics[m] == 0 {
				continue
			}
			lines = append(lines, diffLine{
				Name:     c.Name,
				Metric:   m,
				Base:     b.Metrics[m],
				Cur:      c.Metrics[m],
				DeltaPct: (c.Metrics[m] - b.Metrics[m]) / b.Metrics[m] * 100,
			})
		}
	}
	return lines
}

// missingRequired returns the -require entries no parsed benchmark name
// starts with. A prefix must end at a name boundary ('/', '-' or end of
// name), so requiring BenchmarkFoo is not satisfied by BenchmarkFooBar.
func missingRequired(out Output, require string) []string {
	var missing []string
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, b := range out.Benchmarks {
			rest, ok := strings.CutPrefix(b.Name, want)
			if ok && (rest == "" || rest[0] == '/' || rest[0] == '-') {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	return missing
}

func parse(sc *bufio.Scanner) (Output, error) {
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out Output
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       fields[0],
			Pkg:        pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	return out, sc.Err()
}
