// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so CI can upload benchmark numbers as a
// machine-readable artifact and a later job (or benchstat after a
// json-to-text round trip) can track the perf trajectory across commits.
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_smoke.json
//
// The benchmark name keys keep the standard benchstat-compatible
// spelling (name/op including the -N GOMAXPROCS suffix), and every
// "value unit" pair after the iteration count is carried through, so
// custom metrics (sim_µs, hits/op) survive alongside ns/op, B/op and
// allocs/op.
//
// -require is CI's artifact sanity check: a comma-separated list of
// benchmark name prefixes that must each match at least one parsed
// result (sub-benchmark and -N suffixes count as matches), so a renamed
// or silently skipped benchmark fails the smoke step instead of
// producing a hollow artifact.
//
//	benchjson -require BenchmarkBestOnPruned,BenchmarkBuildTableMemoized < BENCH_raw.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name, e.g. "BenchmarkPlanCacheHit-8".
	Name string `json:"name"`
	// Pkg is the package the result came from ("pkg: …" header lines).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the
	// line: ns/op, B/op, allocs/op, and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the JSON envelope benchjson writes.
type Output struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	require := flag.String("require", "",
		"comma-separated benchmark name prefixes that must appear in the input")
	flag.Parse()
	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if missing := missingRequired(out, *require); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: required benchmarks missing from input: %s\n",
			strings.Join(missing, ", "))
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// missingRequired returns the -require entries no parsed benchmark name
// starts with. A prefix must end at a name boundary ('/', '-' or end of
// name), so requiring BenchmarkFoo is not satisfied by BenchmarkFooBar.
func missingRequired(out Output, require string) []string {
	var missing []string
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, b := range out.Benchmarks {
			rest, ok := strings.CutPrefix(b.Name, want)
			if ok && (rest == "" || rest[0] == '/' || rest[0] == '-') {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	return missing
}

func parse(sc *bufio.Scanner) (Output, error) {
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out Output
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       fields[0],
			Pkg:        pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	return out, sc.Err()
}
