package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("plan=8,batch=1,cost=1,faults=0")
	if err != nil {
		t.Fatal(err)
	}
	if mix[opPlan] != 8 || mix[opBatch] != 1 || mix[opCost] != 1 || mix[opFaults] != 0 {
		t.Fatalf("mix = %v", mix)
	}
	for _, bad := range []string{"plan", "plan=x", "warp=1", "plan=0,batch=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestPickHonorsZeroWeights(t *testing.T) {
	mix, err := parseMix("plan=1,faults=0")
	if err != nil {
		t.Fatal(err)
	}
	g := &gen{mix: mix}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if k := g.pick(rng); k != opPlan {
			t.Fatalf("zero-weight op %s drawn", opNames[k])
		}
	}
}

func TestReportPercentilesAndCounters(t *testing.T) {
	r := &report{elapsed: 2 * time.Second}
	for i := 1; i <= 100; i++ {
		r.add(sample{us: float64(i * 10), status: 200})
	}
	r.add(sample{status: 0})                   // transport error
	r.add(sample{status: 503, shed: true})     // shed, not a failure
	r.add(sample{status: 200, degraded: true}) // served from last-known-good

	if r.requests != 103 || r.failures != 1 || r.shed != 1 || r.degraded != 1 {
		t.Fatalf("counters: requests=%d failures=%d shed=%d degraded=%d",
			r.requests, r.failures, r.shed, r.degraded)
	}
	if p50 := r.percentile(0.50); p50 < 400 || p50 > 600 {
		t.Errorf("p50 = %v, want ~500", p50)
	}
	if p99 := r.percentile(0.99); p99 < 900 {
		t.Errorf("p99 = %v, want near the top", p99)
	}
	if rps := r.rps(); rps < 51 || rps > 52 {
		t.Errorf("rps = %v, want 51.5", rps)
	}
}

func TestBenchJSONEnvelope(t *testing.T) {
	r := &report{elapsed: time.Second}
	r.add(sample{us: 100, status: 200})
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.writeBenchJSON(path, "fleet-3"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks []struct {
			Name       string             `json:"name"`
			Pkg        string             `json:"pkg"`
			Iterations int                `json:"iterations"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("output is not benchjson-shaped: %v", err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "fleet-3" || doc.Benchmarks[0].Iterations != 1 {
		t.Fatalf("envelope: %+v", doc.Benchmarks)
	}
	if _, ok := doc.Benchmarks[0].Metrics["p50_us"]; !ok {
		t.Error("metrics missing p50_us")
	}
}

func TestPrintOwnersMatchesRing(t *testing.T) {
	// The offline owner report must agree with the cluster's own ring
	// for the same member set — that is its whole point.
	if err := printOwners("ipsc860", []int{5, 6}, []string{"http://b:1", "http://a:1/"}); err != nil {
		t.Fatal(err)
	}
}

func TestParseIntsAndSplit(t *testing.T) {
	dims, err := parseInts(" 5, 6 ,7")
	if err != nil || len(dims) != 3 || dims[2] != 7 {
		t.Fatalf("parseInts: %v %v", dims, err)
	}
	if _, err := parseInts("5,x"); err == nil {
		t.Error("parseInts accepted a non-integer")
	}
	if got := splitTrim("a, ,b,"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("splitTrim: %v", got)
	}
}

func TestNormalizeMembersMatchesClusterRules(t *testing.T) {
	got := normalizeMembers([]string{" http://a:1/ ", "http://b:2", ""})
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("normalizeMembers: %v", got)
	}
	if strings.HasSuffix(got[0], "/") {
		t.Error("trailing slash survived normalization")
	}
}
