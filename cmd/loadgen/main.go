// Command loadgen drives a pland replica set with a mixed workload and
// reports latency, throughput, and degradation counters — the fleet's
// measuring stick. It paces requests at a target rate across one or
// more replicas, mixes plan/batch/cost/fault traffic, and writes a
// benchjson-compatible document so fleet runs land next to the package
// benchmarks in benchmarks/.
//
// Usage:
//
//	loadgen -targets http://localhost:8081,http://localhost:8082 \
//	        -rate 200 -duration 10s -dims 5,6 -out BENCH_pr8.json
//
//	loadgen -print-owners -ring http://a:8081,http://b:8082,http://c:8083 \
//	        -machine hypo -dims 5,6,7,8,9,10
//
// The second form prints the consistent-hash owner of every (machine,
// hypercube-d) cache line for the given ring membership — the cluster
// smoke test uses it to pick a line owned by the replica it is about
// to kill.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/obs"
)

type options struct {
	targets     string
	rate        float64
	duration    time.Duration
	machine     string
	dims        string
	mix         string
	mMax        int
	out         string
	label       string
	seed        int64
	failOnError bool
	timeout     time.Duration
	sloP99      time.Duration

	printOwners bool
	ring        string
}

func main() {
	var o options
	flag.StringVar(&o.targets, "targets", "http://localhost:8080", "comma-separated replica base URLs to drive")
	flag.Float64Var(&o.rate, "rate", 100, "target request rate per second")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "run length")
	flag.StringVar(&o.machine, "machine", "ipsc860", "machine every query names")
	flag.StringVar(&o.dims, "dims", "5,6", "comma-separated hypercube dimensions to query")
	flag.StringVar(&o.mix, "mix", "plan=8,batch=1,cost=1,faults=0", "op weights (plan, batch, cost, faults)")
	flag.IntVar(&o.mMax, "m-max", 512, "upper bound for random block sizes m")
	flag.StringVar(&o.out, "out", "", "write a benchjson document here (empty = stdout summary only)")
	flag.StringVar(&o.label, "label", "loadgen", "benchmark name in the benchjson output")
	flag.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	flag.BoolVar(&o.failOnError, "fail-on-error", false, "exit 1 if any request failed (transport error or 5xx)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request client deadline")
	flag.DurationVar(&o.sloP99, "slo-p99", 0, "exit 1 if the run's p99 latency exceeds this (0 = no gate)")
	flag.BoolVar(&o.printOwners, "print-owners", false, "print the ring owner of every (machine, dim) line and exit")
	flag.StringVar(&o.ring, "ring", "", "comma-separated ring membership for -print-owners (defaults to -targets)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	machine, err := model.CanonicalName(o.machine)
	if err != nil {
		return err
	}
	dims, err := parseInts(o.dims)
	if err != nil || len(dims) == 0 {
		return fmt.Errorf("bad -dims %q: need a comma-separated dimension list", o.dims)
	}
	if o.printOwners {
		members := o.ring
		if members == "" {
			members = o.targets
		}
		return printOwners(machine, dims, strings.Split(members, ","))
	}
	targets := splitTrim(o.targets)
	if len(targets) == 0 {
		return fmt.Errorf("no -targets")
	}
	mix, err := parseMix(o.mix)
	if err != nil {
		return err
	}
	if o.rate <= 0 {
		return fmt.Errorf("-rate must be > 0")
	}

	g := &gen{
		opts:    o,
		machine: machine,
		dims:    dims,
		targets: targets,
		mix:     mix,
		client:  &http.Client{Timeout: o.timeout},
	}
	report := g.drive()
	report.print(os.Stdout, o.label)
	if o.out != "" {
		if err := report.writeBenchJSON(o.out, o.label); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	if o.failOnError && report.failures > 0 {
		return fmt.Errorf("%d of %d requests failed", report.failures, report.requests)
	}
	if o.sloP99 > 0 {
		if p99 := report.percentile(0.99); p99 > float64(o.sloP99.Microseconds()) {
			return fmt.Errorf("p99 latency %.0fµs exceeds the -slo-p99 gate of %v", p99, o.sloP99)
		}
	}
	return nil
}

// printOwners reports line ownership for a membership set. Every
// replica given the same member URLs computes the same owners, so this
// offline report matches what the fleet will actually do.
func printOwners(machine string, dims []int, members []string) error {
	ring, err := cluster.NewRing(normalizeMembers(members), 0)
	if err != nil {
		return err
	}
	for _, d := range dims {
		topo := fmt.Sprintf("hypercube-%d", d)
		fmt.Printf("d=%d topology=%s owner=%s\n", d, topo, ring.Owner(cluster.LineKey(machine, topo)))
	}
	return nil
}

// normalizeMembers applies the cluster's URL normalization (trim,
// strip trailing slash) so the offline ring matches the fleet's.
func normalizeMembers(members []string) []string {
	out := make([]string, 0, len(members))
	for _, m := range members {
		m = strings.TrimRight(strings.TrimSpace(m), "/")
		if m != "" {
			out = append(out, m)
		}
	}
	return out
}

// opKind indexes the mix weights.
type opKind int

const (
	opPlan opKind = iota
	opBatch
	opCost
	opFaults
	numOps
)

var opNames = [numOps]string{"plan", "batch", "cost", "faults"}

// gen owns one load run.
type gen struct {
	opts    options
	machine string
	dims    []int
	targets []string
	mix     [numOps]int
	client  *http.Client
}

// sample is one request's outcome.
type sample struct {
	us       float64
	status   int // 0 = transport error
	degraded bool
	shed     bool
}

// drive paces requests at the target rate until the duration elapses,
// fanning them over a worker pool sized generously enough that pacing,
// not worker starvation, sets the rate.
func (g *gen) drive() *report {
	interval := time.Duration(float64(time.Second) / g.opts.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	workers := int(g.opts.rate/10) + 8
	if workers > 256 {
		workers = 256
	}

	type job struct {
		kind   opKind
		target string
		seq    int
	}
	jobs := make(chan job, workers)
	results := make(chan sample, workers)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- g.do(j.kind, j.target, j.seq)
			}
		}()
	}

	rep := &report{began: time.Now()}
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for s := range results {
			rep.add(s)
		}
	}()

	rng := rand.New(rand.NewSource(g.opts.seed))
	deadline := time.Now().Add(g.opts.duration)
	tick := time.NewTicker(interval)
	seq := 0
	for time.Now().Before(deadline) {
		<-tick.C
		j := job{
			kind:   g.pick(rng),
			target: g.targets[seq%len(g.targets)],
			seq:    rng.Intn(1 << 20),
		}
		select {
		case jobs <- j:
			seq++
		default:
			// All workers busy: the server is slower than the target
			// rate. Count the would-be request as dropped rather than
			// queueing unboundedly (closed-loop collapse would hide the
			// latency the user asked to measure).
			rep.dropped++
		}
	}
	tick.Stop()
	close(jobs)
	wg.Wait()
	close(results)
	<-collectDone
	rep.elapsed = time.Since(rep.began)
	return rep
}

// pick draws an op kind by mix weight.
func (g *gen) pick(rng *rand.Rand) opKind {
	total := 0
	for _, w := range g.mix {
		total += w
	}
	n := rng.Intn(total)
	for k, w := range g.mix {
		if n < w {
			return opKind(k)
		}
		n -= w
	}
	return opPlan
}

// do issues one request and records its outcome.
func (g *gen) do(kind opKind, target string, seq int) sample {
	d := g.dims[seq%len(g.dims)]
	m := 1 + seq%g.opts.mMax
	began := time.Now()
	var (
		status int
		body   []byte
		err    error
	)
	switch kind {
	case opPlan:
		status, body, err = g.get(fmt.Sprintf("%s/v1/plan?machine=%s&d=%d&m=%d", target, g.machine, d, m))
	case opBatch:
		qs := make([]map[string]interface{}, 0, 4)
		for i := 0; i < 4; i++ {
			qs = append(qs, map[string]interface{}{
				"machine": g.machine, "d": g.dims[(seq+i)%len(g.dims)], "m": 1 + (seq+i)%g.opts.mMax,
			})
		}
		status, body, err = g.post(target+"/v1/batch", map[string]interface{}{"queries": qs})
	case opCost:
		cd := d
		if cd > 8 {
			cd = 8 // keep the simulated replay cheap under load
		}
		status, body, err = g.post(target+"/v1/cost", map[string]interface{}{
			"machine": g.machine, "d": cd, "m": m, "partition": []int{cd},
		})
	case opFaults:
		// Alternate a slow link and its restore on the smallest fabric:
		// steady fault churn without ever severing it.
		action := "slow"
		req := map[string]interface{}{
			"topology": fmt.Sprintf("hypercube-%d", g.dims[0]),
			"action":   action,
			"links":    [][2]int{{0, 1}},
			"factor":   2.0,
		}
		if seq%2 == 1 {
			req["action"] = "restore"
			delete(req, "factor")
		}
		status, body, err = g.post(target+"/v1/faults", req)
	}
	s := sample{us: float64(time.Since(began).Microseconds()), status: status}
	if err != nil {
		s.status = 0
		return s
	}
	s.shed = status == http.StatusServiceUnavailable
	s.degraded = bytes.Contains(body, []byte(`"degraded": true`)) ||
		bytes.Contains(body, []byte(`"degraded":true`))
	return s
}

func (g *gen) get(url string) (int, []byte, error) {
	resp, err := g.client.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, body, nil
}

func (g *gen) post(url string, v interface{}) (int, []byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := g.client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, body, nil
}

// report aggregates a run. add is called from one goroutine.
type report struct {
	began   time.Time
	elapsed time.Duration

	latencies []float64 // microseconds, successes only
	hist      obs.Histogram
	requests  int
	failures  int // transport errors + non-shed 5xx
	shed      int
	degraded  int
	dropped   int
}

// add records one sample. A 503 shed is the fleet working as designed
// (bounded builds refusing overload), so it is counted in shed, not
// failures; transport errors and other 5xx are failures.
func (r *report) add(s sample) {
	r.requests++
	switch {
	case s.shed:
		r.shed++
	case s.status == 0 || s.status >= 500:
		r.failures++
	default:
		r.latencies = append(r.latencies, s.us)
		r.hist.Observe(int64(s.us))
		if s.degraded {
			r.degraded++
		}
	}
}

func (r *report) percentile(p float64) float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.latencies...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func (r *report) mean() float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.latencies {
		sum += v
	}
	return sum / float64(len(r.latencies))
}

func (r *report) rps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.requests) / r.elapsed.Seconds()
}

func (r *report) print(w io.Writer, label string) {
	fmt.Fprintf(w, "%s: %d requests in %v (%.1f req/s)\n", label, r.requests, r.elapsed.Round(time.Millisecond), r.rps())
	fmt.Fprintf(w, "  ok %d  failed %d  shed %d  degraded %d  dropped %d\n",
		len(r.latencies), r.failures, r.shed, r.degraded, r.dropped)
	fmt.Fprintf(w, "  latency p50 %.0fus  p99 %.0fus  mean %.0fus\n",
		r.percentile(0.50), r.percentile(0.99), r.mean())
}

// benchJSON mirrors cmd/benchjson's output envelope so fleet runs land
// in the same benchmarks/ document family as the package benchmarks.
type benchJSON struct {
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// LatencyHistogram carries the full log-bucket latency distribution
	// (cumulative counts), not just the summary percentiles above, so a
	// regression in the tail shape is visible without rerunning.
	LatencyHistogram *obs.HistSnapshot `json:"latency_histogram,omitempty"`
}

func (r *report) writeBenchJSON(path, label string) error {
	snap := r.hist.Snapshot()
	doc := benchJSON{Benchmarks: []benchEntry{{
		Name:       label,
		Pkg:        "cmd/loadgen",
		Iterations: r.requests,
		Metrics: map[string]float64{
			"p50_us":    r.percentile(0.50),
			"p90_us":    r.percentile(0.90),
			"p99_us":    r.percentile(0.99),
			"mean_us":   r.mean(),
			"req_per_s": r.rps(),
			"requests":  float64(r.requests),
			"ok":        float64(len(r.latencies)),
			"failed":    float64(r.failures),
			"shed":      float64(r.shed),
			"degraded":  float64(r.degraded),
			"dropped":   float64(r.dropped),
		},
		LatencyHistogram: &snap,
	}}}
	payload, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(payload, '\n'), 0o644)
}

func splitTrim(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitTrim(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseMix parses "plan=8,batch=1,cost=1,faults=0" into weights. Ops
// not named get weight 0; an all-zero mix is an error.
func parseMix(s string) ([numOps]int, error) {
	var mix [numOps]int
	for _, f := range splitTrim(s) {
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			return mix, fmt.Errorf("bad mix entry %q (want op=weight)", f)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return mix, fmt.Errorf("bad mix weight %q", f)
		}
		found := false
		for k, n := range opNames {
			if n == name {
				mix[k] = w
				found = true
			}
		}
		if !found {
			return mix, fmt.Errorf("unknown mix op %q (valid: plan, batch, cost, faults)", name)
		}
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return mix, fmt.Errorf("mix %q has no positive weights", s)
	}
	return mix, nil
}
