// Command hull computes the hull of optimality for a hypercube dimension:
// the best multiphase partition for every block size in a sweep (paper §8,
// the summary read off Figures 4–6).
//
// Usage:
//
//	hull -d 7                 # 0..400 bytes on the iPSC-860 model
//	hull -d 6 -lo 0 -hi 1000 -step 8
//	hull -d 10 -csv           # CSV output for plotting
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/report"
)

func main() {
	d := flag.Int("d", 7, "hypercube dimension")
	lo := flag.Int("lo", 0, "sweep start, bytes")
	hi := flag.Int("hi", 400, "sweep end, bytes")
	step := flag.Int("step", 4, "sweep step, bytes")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	machine := flag.String("machine", "ipsc860",
		"machine model: "+strings.Join(model.MachineNames(), " | "))
	save := flag.String("save", "", "also write the table as JSON to this path (§6: compute once, reuse)")
	load := flag.String("load", "", "load a previously saved table instead of recomputing")
	optWorkers := flag.Int("opt-workers", 0, "optimizer candidate-costing workers, clamped to GOMAXPROCS (0 = backend default)")
	replayWorkers := flag.Int("replay-workers", 0, "event-engine shards per simulated replay on link-disjoint phases; results stay bit-identical (0 or 1 = serial)")
	flag.Parse()

	prm, err := model.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}

	opt := optimize.New(prm)
	opt.SetWorkers(*optWorkers)
	opt.SetReplayShards(*replayWorkers)
	var tbl optimize.Table
	if *load != "" {
		tbl, err = optimize.LoadTableFile(*load, prm)
	} else {
		tbl, err = opt.BuildTable(*d, *lo, *hi, *step)
	}
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		if err := optimize.SaveTableFile(*save, tbl, prm); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hull: table saved to %s\n", *save)
	}
	out := report.NewTable(
		fmt.Sprintf("hull of optimality: d=%d, machine=%s, sweep %d..%d step %d",
			tbl.D, *machine, *lo, *hi, *step),
		"block range (B)", "partition", "time at range start (µs)")
	for _, seg := range tbl.Segments {
		c, err := opt.Best(tbl.D, seg.MinBlock)
		if err != nil {
			fatal(err)
		}
		out.AddRowStrings(
			fmt.Sprintf("%d..%d", seg.MinBlock, seg.MaxBlock),
			seg.Part.String(),
			report.FormatMicros(c.TimeMicro))
	}
	var werr error
	if *csv {
		werr = out.WriteCSV(os.Stdout)
	} else {
		werr = out.Write(os.Stdout)
	}
	if werr != nil {
		fatal(werr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hull:", err)
	os.Exit(1)
}
