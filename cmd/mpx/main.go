// Command mpx runs a single multiphase complete exchange on the simulated
// circuit-switched hypercube and reports predicted vs simulated time.
// Every run executes on the unified fabric, which moves real payloads
// (the complete-exchange postcondition is machine-checked) while the
// discrete-event simulator prices the schedule in virtual time.
//
// Usage:
//
//	mpx -d 7 -m 40                 # auto-tuned partition
//	mpx -d 7 -m 40 -D "{3,4}"      # explicit partition
//	mpx -d 6 -m 24 -machine hypo   # the paper's hypothetical machine
//	mpx -d 5 -m 16 -runtime        # additionally time the goroutine backend
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	d := flag.Int("d", 6, "hypercube dimension (n = 2^d nodes)")
	m := flag.Int("m", 40, "block size in bytes per destination")
	part := flag.String("D", "", "explicit partition, e.g. \"{3,4}\" (default: auto-tune)")
	machine := flag.String("machine", "ipsc860",
		"machine model: "+strings.Join(model.MachineNames(), " | "))
	onRuntime := flag.Bool("runtime", false, "additionally execute the plan on the goroutine runtime fabric and report wall time")
	gantt := flag.Bool("gantt", false, "render a per-node timeline of the simulated run")
	ganttWidth := flag.Int("gantt-width", 100, "timeline width in characters")
	traceOut := flag.String("trace-out", "", "write the simulated timeline as Chrome trace_event JSON to this file (opens in chrome://tracing or Perfetto)")
	replayWorkers := flag.Int("replay-workers", 0, "event-engine shards for the compiled-replay cross-check on link-disjoint phases; results stay bit-identical (0 or 1 = serial)")
	flag.Parse()

	prm, err := model.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	sys, err := core.NewSystem(*d, prm)
	if err != nil {
		fatal(err)
	}

	var res core.Result
	if *part != "" {
		D, err := partition.Parse(*part)
		if err != nil {
			fatal(err)
		}
		res, err = sys.ExchangeWith(*m, D)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err = sys.CompleteExchange(*m)
		if err != nil {
			fatal(err)
		}
	}

	t := report.NewTable(
		fmt.Sprintf("complete exchange: d=%d (%d nodes), block=%dB, machine=%s",
			*d, sys.Nodes(), *m, *machine),
		"quantity", "value")
	t.AddRowStrings("partition", res.Partition.String())
	t.AddRow("predicted (µs)", res.PredictedMicros)
	t.AddRow("simulated (µs)", res.SimulatedMicros)
	t.AddRow("contention stall (µs)", res.ContentionStall)
	t.AddRowStrings("data verified", fmt.Sprintf("%v", res.DataVerified))
	if *replayWorkers > 1 {
		// Cross-check the goroutine fabric's makespan against the
		// compiled-trace replay, sharded across link-disjoint sub-blocks.
		plan, err := sys.Plan(*m, res.Partition)
		if err != nil {
			fatal(err)
		}
		net := simnet.New(sys.Topology(), prm)
		net.SetReplayShards(*replayWorkers)
		replayed, err := plan.Cost(net)
		if err != nil {
			fatal(err)
		}
		t.AddRow("compiled replay (µs)", replayed.Makespan)
		t.AddRowStrings("replay shards", fmt.Sprintf("%d", replayed.ReplayShards))
	}
	if *onRuntime {
		plan, err := sys.Plan(*m, res.Partition)
		if err != nil {
			fatal(err)
		}
		fab, err := fabric.NewRuntime(plan.Nodes())
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if err := plan.RunOn(fab, 2*time.Minute); err != nil {
			fatal(fmt.Errorf("runtime execution failed: %w", err))
		}
		t.AddRow("goroutine wall time (µs)", float64(time.Since(start))/float64(time.Microsecond))
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}

	if *gantt || *traceOut != "" {
		plan, err := sys.Plan(*m, res.Partition)
		if err != nil {
			fatal(err)
		}
		cube, err := topology.New(*d)
		if err != nil {
			fatal(err)
		}
		net := simnet.New(cube, prm)
		net.SetTrace(true)
		traced, err := plan.Simulate(net)
		if err != nil {
			fatal(err)
		}
		if *gantt {
			fmt.Println()
			fmt.Print(trace.Summary(traced))
			fmt.Print(trace.Gantt(traced, *ganttWidth))
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteChrome(f, traced); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d timeline events to %s\n", len(traced.Timeline), *traceOut)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpx:", err)
	os.Exit(1)
}
