// Command figures regenerates every table and figure of the paper's
// evaluation in one run: the §4.3 crossover example (E1), the §5.1 worked
// example (E2), the §6 partition table (E3), Figures 4–6 with their hulls
// of optimality (E4–E6), the synchronization overhead accounting (E7), and
// the contention verification (E8).
//
// Usage:
//
//	figures                  # everything, on the paper's machines
//	figures -only E5         # a single experiment
//	figures -machine ncube2  # re-price the figure sweeps (E4-E6) on another machine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/trace"
)

// experimentIDs is the valid set for -only.
var experimentIDs = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"}

func main() {
	only := flag.String("only", "", "run a single experiment: E1..E8 (default all)")
	plot := flag.Bool("plot", false, "render Figures 4-6 as ASCII charts instead of tables")
	machine := flag.String("machine", "ipsc860",
		"machine model for the figure sweeps E4-E6 (E1/E2/E7/E8 are pinned to the paper's machines): "+
			strings.Join(model.MachineNames(), " | "))
	traceOut := flag.String("trace-out", "", "write one auto-tuned exchange's simulated timeline as Chrome trace_event JSON to this file, then exit")
	traceD := flag.Int("trace-d", 6, "hypercube dimension of the -trace-out exchange")
	traceM := flag.Int("trace-m", 40, "block size of the -trace-out exchange")
	flag.Parse()

	if *traceOut != "" {
		prm, err := model.MachineByName(*machine)
		check(err)
		check(writeExchangeTrace(*traceOut, prm, *traceD, *traceM))
		return
	}

	if *only != "" {
		valid := false
		for _, id := range experimentIDs {
			if strings.EqualFold(*only, id) {
				valid = true
				break
			}
		}
		if !valid {
			check(fmt.Errorf("unknown experiment %q (valid: %s)", *only, strings.Join(experimentIDs, ", ")))
		}
	}
	prm, err := model.MachineByName(*machine)
	check(err)
	machineName := model.DisplayName(*machine)

	want := func(id string) bool {
		return *only == "" || strings.EqualFold(*only, id)
	}

	if want("E1") {
		fmt.Println(experiments.E1Crossover())
	}
	if want("E2") {
		tbl, err := experiments.E2WorkedExample()
		check(err)
		fmt.Println(tbl)
	}
	if want("E3") {
		fmt.Println(experiments.E3PartitionTable())
	}
	for i, d := range []int{5, 6, 7} {
		id := fmt.Sprintf("E%d", 4+i)
		if !want(id) {
			continue
		}
		fig, err := experiments.FigureOn(prm, machineName, d)
		check(err)
		if *plot {
			fmt.Println(fig.Plot(90, 24))
		} else {
			fmt.Println(fig)
		}
		fmt.Println(experiments.HullOn(prm, machineName, d))
		mvp, err := experiments.MeasuredVsPredictedOn(prm, d)
		check(err)
		fmt.Println(mvp)
	}
	if want("E6") {
		tbl, err := experiments.Headline()
		check(err)
		fmt.Println(tbl)
	}
	if want("E7") {
		tbl, err := experiments.E7SyncOverhead()
		check(err)
		fmt.Println(tbl)
	}
	if want("E8") {
		tbl, err := experiments.E8Contention(7)
		check(err)
		fmt.Println(tbl)
	}
}

// writeExchangeTrace auto-tunes one (d, m) exchange, replays it with
// tracing on, and writes the timeline as Chrome trace_event JSON — the
// zoomable counterpart of the paper's Figure 3 phase structure.
func writeExchangeTrace(path string, prm model.Params, d, m int) error {
	plan, err := optimize.New(prm).Plan(d, m)
	if err != nil {
		return err
	}
	cube, err := topology.New(d)
	if err != nil {
		return err
	}
	net := simnet.New(cube, prm)
	net.SetTrace(true)
	traced, err := plan.Simulate(net)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, traced); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d timeline events (d=%d m=%d, makespan %.1f µs) to %s\n",
		len(traced.Timeline), d, m, traced.Makespan, path)
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
