// Command calibrate reproduces the measurement methodology of the paper's
// §7.4 (and its reference [2]) against the simulated machine: it times
// messages, pairwise exchanges, and shuffles of varying sizes and
// distances, fits t = λ + τm + δh by least squares, and prints the
// recovered constants next to the configured ones.
//
// Usage:
//
//	calibrate                  # iPSC-860
//	calibrate -machine ncube2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/calibrate"
	"repro/internal/model"
	"repro/internal/report"
)

func main() {
	machine := flag.String("machine", "ipsc860",
		"machine model: "+strings.Join(model.MachineNames(), " | "))
	d := flag.Int("d", 5, "cube dimension for the measurement runs")
	flag.Parse()

	prm, err := model.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	if *d < 1 || *d > 16 {
		fatal(fmt.Errorf("dimension %d out of range [1,16]: the fits need at least one distance sample and the measurement runs grow with 2^d", *d))
	}

	sizes := []int{0, 16, 64, 256, 1024, 4096}
	dists := make([]int, *d)
	for i := range dists {
		dists[i] = i + 1
	}

	raw := prm
	raw.Exchange = model.ExchangeIdeal
	msgSamples, err := calibrate.MeasureMessages(raw, *d, sizes, dists)
	if err != nil {
		fatal(err)
	}
	msgFit, err := calibrate.FitMessageModel(msgSamples)
	if err != nil {
		fatal(err)
	}
	exSamples, err := calibrate.MeasureExchanges(prm, *d, sizes, dists)
	if err != nil {
		fatal(err)
	}
	exFit, err := calibrate.FitMessageModel(exSamples)
	if err != nil {
		fatal(err)
	}
	rho, err := calibrate.MeasureShuffle(prm, []int{64, 512, 4096, 65536})
	if err != nil {
		fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("calibration against simulated %s (d=%d, %d samples per fit)",
			*machine, *d, len(msgSamples)),
		"constant", "fitted", "configured")
	t.AddRowStrings("λ (µs)", report.FormatMicros(msgFit.Lambda), report.FormatMicros(prm.Lambda))
	t.AddRowStrings("τ (µs/B)", fmt.Sprintf("%.4f", msgFit.Tau), fmt.Sprintf("%.4f", prm.Tau))
	t.AddRowStrings("δ (µs/dim)", report.FormatMicros(msgFit.Delta), report.FormatMicros(prm.Delta))
	t.AddRowStrings("λ_eff (µs)", report.FormatMicros(exFit.Lambda), report.FormatMicros(prm.EffLambda()))
	t.AddRowStrings("τ_eff (µs/B)", fmt.Sprintf("%.4f", exFit.Tau), fmt.Sprintf("%.4f", prm.EffTau()))
	t.AddRowStrings("δ_eff (µs/dim)", report.FormatMicros(exFit.Delta), report.FormatMicros(prm.EffDelta()))
	t.AddRowStrings("ρ (µs/B)", fmt.Sprintf("%.4f", rho), fmt.Sprintf("%.4f", prm.Rho))
	t.AddRowStrings("fit RMS (µs)", fmt.Sprintf("%.2e / %.2e", msgFit.RMS, exFit.RMS), "0 expected")
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
