// Package bitutil provides the bit-manipulation primitives used throughout
// the hypercube simulator and the complete-exchange algorithms: population
// counts, bit-field extraction, Gray codes, and e-cube path expansion.
//
// Hypercube node labels are d-bit integers. Two nodes are adjacent iff
// their labels differ in exactly one bit; dimension i corresponds to bit i.
package bitutil

import "math/bits"

// PopCount returns the number of set bits in x (the Hamming weight).
// For hypercube labels a and b, PopCount(a^b) is the graph distance.
func PopCount(x uint64) int { return bits.OnesCount64(x) }

// Distance returns the hypercube (Hamming) distance between labels a and b.
func Distance(a, b int) int { return bits.OnesCount64(uint64(a) ^ uint64(b)) }

// Bit reports whether bit i of x is set.
func Bit(x, i int) bool { return x&(1<<uint(i)) != 0 }

// SetBit returns x with bit i set.
func SetBit(x, i int) int { return x | 1<<uint(i) }

// ClearBit returns x with bit i cleared.
func ClearBit(x, i int) int { return x &^ (1 << uint(i)) }

// FlipBit returns x with bit i flipped.
func FlipBit(x, i int) int { return x ^ 1<<uint(i) }

// Mask returns a mask with the w low bits set: (1<<w)-1.
func Mask(w int) int {
	if w <= 0 {
		return 0
	}
	return (1 << uint(w)) - 1
}

// Field extracts the bit field of width w starting at bit lo of x
// (bits lo .. lo+w-1), right-justified.
func Field(x, lo, w int) int { return (x >> uint(lo)) & Mask(w) }

// WithField returns x with bits lo..lo+w-1 replaced by the low w bits of v.
func WithField(x, lo, w, v int) int {
	m := Mask(w) << uint(lo)
	return (x &^ m) | ((v << uint(lo)) & m)
}

// LowestSetBit returns the index of the least significant set bit of x,
// or -1 if x is zero. Under e-cube routing, the next hop from s toward t
// flips the lowest set bit of s^t.
func LowestSetBit(x int) int {
	if x == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(x))
}

// HighestSetBit returns the index of the most significant set bit of x,
// or -1 if x is zero.
func HighestSetBit(x int) int {
	if x == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(x))
}

// GrayCode returns the binary-reflected Gray code of x.
func GrayCode(x int) int { return x ^ (x >> 1) }

// GrayToBinary inverts GrayCode.
func GrayToBinary(g int) int {
	b := 0
	for ; g != 0; g >>= 1 {
		b ^= g
	}
	return b
}

// Log2Exact returns log2(n) when n is a power of two, and -1 otherwise.
func Log2Exact(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(n))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// ECubePath returns the ordered sequence of node labels visited by a
// message routed from src to dst under e-cube routing: at each step the
// lowest differing bit is corrected. The returned slice starts with src
// and ends with dst; adjacent entries differ in exactly one bit.
func ECubePath(src, dst int) []int {
	path := make([]int, 0, Distance(src, dst)+1)
	path = append(path, src)
	cur := src
	for cur != dst {
		b := LowestSetBit(cur ^ dst)
		cur = FlipBit(cur, b)
		path = append(path, cur)
	}
	return path
}

// ECubeEdges returns the directed edges (as [2]int{from,to} pairs) used by
// the e-cube route from src to dst. Empty when src == dst.
func ECubeEdges(src, dst int) [][2]int {
	p := ECubePath(src, dst)
	edges := make([][2]int, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		edges = append(edges, [2]int{p[i], p[i+1]})
	}
	return edges
}

// ReverseInts reverses s in place and returns it.
func ReverseInts(s []int) []int {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
	return s
}
