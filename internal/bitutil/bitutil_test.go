package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopCount(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {0xFF, 8}, {1 << 63, 1}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := PopCount(c.x); got != c.want {
			t.Errorf("PopCount(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestDistance(t *testing.T) {
	if got := Distance(0, 31); got != 5 {
		t.Errorf("Distance(0,31) = %d, want 5", got)
	}
	if got := Distance(2, 23); got != 3 {
		t.Errorf("Distance(2,23) = %d, want 3", got)
	}
	if got := Distance(14, 11); got != 2 {
		t.Errorf("Distance(14,11) = %d, want 2", got)
	}
	if got := Distance(9, 9); got != 0 {
		t.Errorf("Distance(9,9) = %d, want 0", got)
	}
}

func TestBitOps(t *testing.T) {
	x := 0b1010
	if !Bit(x, 1) || !Bit(x, 3) || Bit(x, 0) || Bit(x, 2) {
		t.Errorf("Bit pattern wrong for %b", x)
	}
	if got := SetBit(x, 0); got != 0b1011 {
		t.Errorf("SetBit = %b", got)
	}
	if got := ClearBit(x, 1); got != 0b1000 {
		t.Errorf("ClearBit = %b", got)
	}
	if got := FlipBit(x, 3); got != 0b0010 {
		t.Errorf("FlipBit = %b", got)
	}
}

func TestMaskField(t *testing.T) {
	if Mask(0) != 0 || Mask(-3) != 0 {
		t.Error("Mask of nonpositive width must be 0")
	}
	if Mask(5) != 31 {
		t.Errorf("Mask(5) = %d", Mask(5))
	}
	// x = 0b110_10_1: field at lo=1 w=2 is 0b10=2
	x := 0b1101101
	if got := Field(x, 1, 2); got != 0b10 {
		t.Errorf("Field = %b", got)
	}
	if got := WithField(x, 1, 2, 0b01); got != 0b1101011 {
		t.Errorf("WithField = %b", got)
	}
}

func TestWithFieldMasksValue(t *testing.T) {
	// Value wider than the field must be truncated to w bits.
	if got := WithField(0, 2, 2, 0xFF); got != 0b1100 {
		t.Errorf("WithField overflow = %b, want 1100", got)
	}
}

func TestLowestHighestSetBit(t *testing.T) {
	if LowestSetBit(0) != -1 || HighestSetBit(0) != -1 {
		t.Error("zero must give -1")
	}
	if LowestSetBit(0b1010) != 1 {
		t.Errorf("LowestSetBit = %d", LowestSetBit(0b1010))
	}
	if HighestSetBit(0b1010) != 3 {
		t.Errorf("HighestSetBit = %d", HighestSetBit(0b1010))
	}
}

func TestGrayCodeRoundTrip(t *testing.T) {
	f := func(x uint16) bool {
		return GrayToBinary(GrayCode(int(x))) == int(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayCodeAdjacency(t *testing.T) {
	// Successive Gray codes differ in exactly one bit.
	for i := 0; i < 1<<10-1; i++ {
		if Distance(GrayCode(i), GrayCode(i+1)) != 1 {
			t.Fatalf("Gray codes of %d and %d are not adjacent", i, i+1)
		}
	}
}

func TestLog2Exact(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {4, 2}, {1024, 10}, {3, -1}, {0, -1}, {-8, -1}, {6, -1},
	}
	for _, c := range cases {
		if got := Log2Exact(c.n); got != c.want {
			t.Errorf("Log2Exact(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, 1<<20 + 1} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestECubePathPaperExamples(t *testing.T) {
	// Paper §2: path 0→31 has length 5, 2→23 length 3, 14→11 length 2.
	if p := ECubePath(0, 31); len(p)-1 != 5 {
		t.Errorf("path 0→31 length %d, want 5", len(p)-1)
	}
	if p := ECubePath(2, 23); len(p)-1 != 3 {
		t.Errorf("path 2→23 length %d, want 3", len(p)-1)
	}
	if p := ECubePath(14, 11); len(p)-1 != 2 {
		t.Errorf("path 14→11 length %d, want 2", len(p)-1)
	}
}

func TestECubePathCorrectsLowestBitFirst(t *testing.T) {
	// 0 → 31: e-cube corrects bit 0 first, so the second node is 1.
	p := ECubePath(0, 31)
	want := []int{0, 1, 3, 7, 15, 31}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestECubeSharedEdgePaperExample(t *testing.T) {
	// Paper §2: paths 0→31 and 2→23 share edge 3–7.
	has := func(edges [][2]int, a, b int) bool {
		for _, e := range edges {
			if e[0] == a && e[1] == b {
				return true
			}
		}
		return false
	}
	e1 := ECubeEdges(0, 31)
	e2 := ECubeEdges(2, 23)
	if !has(e1, 3, 7) || !has(e2, 3, 7) {
		t.Errorf("paths 0→31 (%v) and 2→23 (%v) must both use edge 3-7", e1, e2)
	}
}

func TestECubeNodeContentionPaperExample(t *testing.T) {
	// Paper §2: paths 0→31 and 14→11 share node 15.
	in := func(p []int, v int) bool {
		for _, x := range p {
			if x == v {
				return true
			}
		}
		return false
	}
	if !in(ECubePath(0, 31), 15) || !in(ECubePath(14, 11), 15) {
		t.Error("paths 0→31 and 14→11 must share node 15")
	}
}

func TestECubePathProperties(t *testing.T) {
	f := func(a, b uint8) bool {
		src, dst := int(a)&127, int(b)&127
		p := ECubePath(src, dst)
		if p[0] != src || p[len(p)-1] != dst {
			return false
		}
		if len(p)-1 != Distance(src, dst) {
			return false // e-cube paths are shortest paths
		}
		for i := 0; i+1 < len(p); i++ {
			if Distance(p[i], p[i+1]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestECubeEdgesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s, d := rng.Intn(256), rng.Intn(256)
		if got := len(ECubeEdges(s, d)); got != Distance(s, d) {
			t.Fatalf("edges(%d,%d) = %d, want %d", s, d, got, Distance(s, d))
		}
	}
}

func TestReverseInts(t *testing.T) {
	s := []int{1, 2, 3, 4}
	ReverseInts(s)
	want := []int{4, 3, 2, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("got %v", s)
		}
	}
	empty := []int{}
	if len(ReverseInts(empty)) != 0 {
		t.Error("reverse of empty must be empty")
	}
}
