package bitutil

import "testing"

// FuzzECubePath checks the shortest-path and adjacency invariants of
// e-cube routes for arbitrary node pairs.
func FuzzECubePath(f *testing.F) {
	f.Add(0, 31)
	f.Add(14, 11)
	f.Fuzz(func(t *testing.T, a, b int) {
		src := a & 0xFFFF
		dst := b & 0xFFFF
		p := ECubePath(src, dst)
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatal("endpoints wrong")
		}
		if len(p)-1 != Distance(src, dst) {
			t.Fatal("not a shortest path")
		}
		for i := 0; i+1 < len(p); i++ {
			if Distance(p[i], p[i+1]) != 1 {
				t.Fatal("non-adjacent hop")
			}
			if LowestSetBit(p[i]^dst) != LowestSetBit(p[i]^p[i+1]) {
				t.Fatal("not lowest-bit-first routing")
			}
		}
	})
}
