package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/plancache"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := New(Config{Cache: plancache.New(plancache.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantCode int, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("GET %s = %d (%s), want %d", url, resp.StatusCode, e.Error, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url string, body interface{}, wantCode int, v interface{}) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s = %d (%s), want %d", url, resp.StatusCode, e.Error, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestPlanEndpointMatchesOptimizer(t *testing.T) {
	ts := newTestServer(t)
	ref := optimize.New(model.IPSC860())
	for _, m := range []int{0, 40, 160, 400} {
		var got PlanResponse
		getJSON(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=7&m=%d", ts.URL, m), http.StatusOK, &got)
		want, err := ref.Best(7, m)
		if err != nil {
			t.Fatal(err)
		}
		if !partition.Partition(got.Partition).Equal(want.Part) {
			t.Errorf("m=%d: served %v, optimizer %v", m, got.Partition, want.Part)
		}
		if got.PredictedUS != want.TimeMicro {
			t.Errorf("m=%d: served %v µs, optimizer %v µs", m, got.PredictedUS, want.TimeMicro)
		}
		var sum float64
		for _, ph := range got.Phases {
			sum += ph.TimeUS
		}
		if len(got.Phases) != len(want.Part) {
			t.Errorf("m=%d: %d phases for partition %v", m, len(got.Phases), want.Part)
		}
	}
}

func TestPlanEndpointValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		query string
		code  int
	}{
		{"machine=ipsc860&d=7&m=40", http.StatusOK},
		{"d=7&m=40", http.StatusOK},              // default machine
		{"machine=ipsc&d=7&m=40", http.StatusOK}, // alias
		{"machine=cray&d=7&m=40", http.StatusBadRequest},
		{"machine=ipsc860&m=40", http.StatusBadRequest},      // missing d
		{"machine=ipsc860&d=7", http.StatusBadRequest},       // missing m
		{"machine=ipsc860&d=x&m=40", http.StatusBadRequest},  // non-integer
		{"machine=ipsc860&d=7&m=-1", http.StatusBadRequest},  // negative m
		{"machine=ipsc860&d=-2&m=40", http.StatusBadRequest}, // negative d
		{"machine=ipsc860&d=99&m=40", http.StatusBadRequest}, // beyond optimizer range
	} {
		resp, err := http.Get(ts.URL + "/v1/plan?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("query %q: status %d, want %d", tc.query, resp.StatusCode, tc.code)
		}
	}
}

func TestUnknownMachineErrorListsValidSet(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/plan?machine=cray&d=7&m=40")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "ipsc860") || !strings.Contains(e.Error, "ncube2") {
		t.Errorf("error %q does not list the valid machine set", e.Error)
	}
}

func TestCostEndpointMatchesCompiledTrace(t *testing.T) {
	ts := newTestServer(t)
	var got CostResponse
	postJSON(t, ts.URL+"/v1/cost",
		CostRequest{Machine: "ipsc860", D: 7, M: 40, Partition: []int{3, 4}},
		http.StatusOK, &got)

	plan, err := exchange.NewPlan(7, 40, partition.Partition{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Cost(simnet.New(topology.MustNew(7), model.IPSC860()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SimulatedUS != res.Makespan {
		t.Errorf("served simulated %v µs, direct %v µs", got.SimulatedUS, res.Makespan)
	}
	pred, _ := model.IPSC860().Multiphase(40, 7, partition.Partition{3, 4})
	if got.PredictedUS != pred {
		t.Errorf("served predicted %v µs, closed form %v µs", got.PredictedUS, pred)
	}
}

func TestCostEndpointValidation(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/cost",
		CostRequest{D: 7, M: 40, Partition: []int{9, 9}}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/cost",
		CostRequest{D: 15, M: 40, Partition: []int{15}}, http.StatusBadRequest, nil) // beyond CostMaxDim
	postJSON(t, ts.URL+"/v1/cost",
		CostRequest{Machine: "cray", D: 7, M: 40, Partition: []int{7}}, http.StatusBadRequest, nil)
	resp, err := http.Post(ts.URL+"/v1/cost", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated body: status %d, want 400", resp.StatusCode)
	}
}

func TestCostEndpointUsesCacheRegistry(t *testing.T) {
	// A server over a restricted registry must refuse /v1/cost for
	// machines it does not serve instead of silently pricing them on
	// the built-in constants.
	cache := plancache.New(plancache.Config{
		Machines: map[string]model.Params{"hypo": model.Hypothetical()},
	})
	srv, err := New(Config{Cache: cache, DefaultMachine: "hypo"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/cost",
		CostRequest{Machine: "ipsc860", D: 6, M: 40, Partition: []int{6}},
		http.StatusBadRequest, nil)
	var got CostResponse
	postJSON(t, ts.URL+"/v1/cost",
		CostRequest{Machine: "hypo", D: 6, M: 40, Partition: []int{6}},
		http.StatusOK, &got)
	pred, _ := model.Hypothetical().Multiphase(40, 6, partition.Partition{6})
	if got.PredictedUS != pred {
		t.Errorf("predicted %v, want hypothetical-machine %v", got.PredictedUS, pred)
	}
}

func TestPlanMaxDimBound(t *testing.T) {
	srv, err := New(Config{Cache: plancache.New(plancache.Config{}), PlanMaxDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	getJSON(t, ts.URL+"/v1/plan?d=8&m=40", http.StatusOK, nil)
	for _, path := range []string{"/v1/plan?d=9&m=40", "/v1/hull?d=9"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (PlanMaxDim=8)", path, resp.StatusCode)
		}
	}
	var batch BatchResponse
	postJSON(t, ts.URL+"/v1/batch",
		BatchRequest{Queries: []BatchQuery{{D: 9, M: 40}}}, http.StatusOK, &batch)
	if batch.Results[0].Error == "" {
		t.Error("batch query beyond PlanMaxDim did not produce a per-item error")
	}
}

func TestBuildFailureIs500(t *testing.T) {
	// A simulated-backend cache accepts d ≤ optimize.MaxSimulatedDim;
	// one past that passes the request-validation bound (PlanMaxDim)
	// but fails inside the line build, which must surface as a server
	// error, not a bad request.
	cache := plancache.New(plancache.Config{NewOptimizer: optimize.NewSimulated})
	srv, err := New(Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(fmt.Sprintf("%s/v1/plan?d=%d&m=40", ts.URL, optimize.MaxSimulatedDim+1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("build failure: status %d, want 500", resp.StatusCode)
	}
}

func TestHullEchoesCanonicalMachine(t *testing.T) {
	ts := newTestServer(t)
	var got HullResponse
	getJSON(t, ts.URL+"/v1/hull?machine=IPSC&d=5", http.StatusOK, &got)
	if got.Machine != "ipsc860" {
		t.Errorf("hull echoed machine %q, want canonical ipsc860", got.Machine)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	ts := newTestServer(t)
	// Valid JSON so the decoder keeps reading until the size cap trips.
	var big bytes.Buffer
	big.WriteString(`{"pad":"`)
	big.Write(bytes.Repeat([]byte("x"), 2<<20))
	big.WriteString(`"}`)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", &big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("2MiB body: status %d, want 413", resp.StatusCode)
	}
}

func TestHullEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var got HullResponse
	getJSON(t, ts.URL+"/v1/hull?machine=ipsc860&d=6", http.StatusOK, &got)
	if got.D != 6 || len(got.Segments) == 0 {
		t.Fatalf("hull = %+v, want d=6 with segments", got)
	}
	// Segment ranges must tile [0, SweepHi] without gaps.
	next := 0
	for _, seg := range got.Segments {
		if seg.MinBlock != next {
			t.Errorf("segment starts at %d, want %d", seg.MinBlock, next)
		}
		next = seg.MaxBlock + 1
	}
	if next != plancache.DefaultSweepHi+1 {
		t.Errorf("hull covers up to %d, want %d", next-1, plancache.DefaultSweepHi)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	req := BatchRequest{}
	for m := 0; m < 64; m++ {
		req.Queries = append(req.Queries, BatchQuery{Machine: "ipsc860", D: 6, M: m * 8})
	}
	req.Queries = append(req.Queries,
		BatchQuery{Machine: "cray", D: 6, M: 40}, // per-item error
		BatchQuery{D: 5, M: 40},                  // default machine
	)
	var got BatchResponse
	postJSON(t, ts.URL+"/v1/batch", req, http.StatusOK, &got)
	if len(got.Results) != len(req.Queries) {
		t.Fatalf("%d results for %d queries", len(got.Results), len(req.Queries))
	}
	ref := optimize.New(model.IPSC860())
	for i := 0; i < 64; i++ {
		item := got.Results[i]
		if item.Error != "" || item.Plan == nil {
			t.Fatalf("query %d failed: %s", i, item.Error)
		}
		want, err := ref.Best(6, i*8)
		if err != nil {
			t.Fatal(err)
		}
		if !partition.Partition(item.Plan.Partition).Equal(want.Part) {
			t.Errorf("query %d: %v, want %v", i, item.Plan.Partition, want.Part)
		}
	}
	if got.Results[64].Error == "" || got.Results[64].Plan != nil {
		t.Error("unknown-machine query did not produce a per-item error")
	}
	if got.Results[65].Plan == nil || got.Results[65].Plan.Machine != "ipsc860" {
		t.Error("default-machine query did not resolve to ipsc860")
	}
}

func TestBatchTooLarge(t *testing.T) {
	srv, err := New(Config{Cache: plancache.New(plancache.Config{}), MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := BatchRequest{Queries: make([]BatchQuery, 5)}
	postJSON(t, ts.URL+"/v1/batch", req, http.StatusRequestEntityTooLarge, nil)
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	var got HealthResponse
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &got)
	if got.Status != "ok" {
		t.Errorf("status %q, want ok", got.Status)
	}
	if len(got.Machines) != len(model.Machines()) {
		t.Errorf("healthz lists %d machines, want %d", len(got.Machines), len(model.Machines()))
	}
}

func TestMetricsCountersMove(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/plan?d=6&m=40", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/plan?d=6&m=80", http.StatusOK, nil)
	resp, _ := http.Get(ts.URL + "/v1/plan?machine=cray&d=6&m=40")
	resp.Body.Close()

	var got MetricsResponse
	getJSON(t, ts.URL+"/metrics", http.StatusOK, &got)
	ep := got.Endpoints["/v1/plan"]
	if ep.Count != 3 {
		t.Errorf("/v1/plan count = %d, want 3", ep.Count)
	}
	if ep.Errors != 1 {
		t.Errorf("/v1/plan errors = %d, want 1", ep.Errors)
	}
	if got.Cache.Hits < 1 || got.Cache.Misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want ≥1 hit and exactly 1 miss",
			got.Cache.Hits, got.Cache.Misses)
	}
	// The one line build above ran hull-sweep enumerations; their
	// optimizer counters must surface on /metrics.
	if got.Optimizer.Evaluations == 0 || got.Optimizer.Evaluated == 0 {
		t.Errorf("optimizer stats did not move: %+v", got.Optimizer)
	}
	if got.Optimizer.MemoMisses == 0 {
		t.Errorf("optimizer memo counters did not move: %+v", got.Optimizer)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/plan = %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodGet {
		t.Errorf("Allow header %q, want GET", resp.Header.Get("Allow"))
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for missing cache")
	}
	if _, err := New(Config{Cache: plancache.New(plancache.Config{}), DefaultMachine: "cray"}); err == nil {
		t.Error("expected error for unknown default machine")
	}
}

func TestDefaultMachineAliasCanonicalized(t *testing.T) {
	srv, err := New(Config{Cache: plancache.New(plancache.Config{}), DefaultMachine: "ipsc"})
	if err != nil {
		t.Fatalf("alias default machine rejected: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var got PlanResponse
	getJSON(t, ts.URL+"/v1/plan?d=6&m=40", http.StatusOK, &got)
	if got.Machine != "ipsc860" {
		t.Errorf("default machine echoed %q, want canonical ipsc860", got.Machine)
	}
}
