package service

import (
	"net/http"
	"sort"

	"repro/internal/obs"
)

// writePrometheus renders every /metrics counter, gauge, and histogram
// in the Prometheus text exposition format (version 0.0.4). Metric
// names are stable API: dashboards and alerts key on them, so renames
// are breaking changes. Durations are exposed in microseconds (the
// unit every JSON field already uses), suffixed _us.
func (s *Server) writePrometheus(w http.ResponseWriter) int {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	p := obs.NewPromWriter(w)

	cs := s.cache.Stats()
	p.Counter("pland_cache_hits_total", "Requests answered from a resident plan line.", nil, float64(cs.Hits))
	p.Counter("pland_cache_misses_total", "Requests that built or waited for a plan line.", nil, float64(cs.Misses))
	p.Counter("pland_cache_evictions_total", "Plan lines dropped by the per-shard LRU bound.", nil, float64(cs.Evictions))
	p.Counter("pland_cache_builds_total", "Completed local line builds.", nil, float64(cs.Builds))
	p.Counter("pland_cache_peer_imports_total", "Misses filled by importing a peer's line.", nil, float64(cs.PeerImports))
	p.Counter("pland_cache_shed_total", "Misses refused because the build bound was reached.", nil, float64(cs.Shed))
	p.Gauge("pland_cache_inflight_builds", "Line builds running right now.", nil, float64(cs.Inflight))
	p.Gauge("pland_cache_lines", "Resident plan lines.", nil, float64(cs.Lines))
	p.Gauge("pland_cache_segments", "Resident hull segments.", nil, float64(cs.Segments))

	os := s.cache.OptimizerStats()
	p.Counter("pland_optimizer_evaluations_total", "Optimizer enumeration passes.", nil, float64(os.Evaluations))
	p.Counter("pland_optimizer_evaluated_total", "Candidate partitions fully costed.", nil, float64(os.Evaluated))
	p.Counter("pland_optimizer_pruned_total", "Candidate partitions cut by the bound.", nil, float64(os.Pruned))
	p.Counter("pland_optimizer_memo_hits_total", "Phase-cost memo hits.", nil, float64(os.MemoHits))
	p.Counter("pland_optimizer_memo_misses_total", "Phase-cost memo misses.", nil, float64(os.MemoMisses))
	p.Counter("pland_optimizer_replays_sharded_total", "Simulated replays that ran on link-disjoint engine shards.", nil, float64(os.ReplaysSharded))
	p.Counter("pland_optimizer_replays_serial_total", "Simulated replays that ran serial (including sharded fallbacks).", nil, float64(os.ReplaysSerial))

	fm := s.faultMetrics()
	p.Gauge("pland_fault_sets_active", "Fabrics currently carrying fault state.", nil, float64(fm.ActiveFaultSets))
	p.Counter("pland_fault_updates_total", "Accepted fault-state updates.", nil, float64(fm.Updates))
	p.Counter("pland_degraded_serves_total", "Plan answers served from last-known-good state.", nil, float64(fm.DegradedServes))
	p.Counter("pland_fault_rebuilds_total", "Plan lines rebuilt under fault state.", nil, float64(fm.Rebuilds))
	p.Counter("pland_fault_rebuild_failures_total", "Rebuild retry budgets exhausted.", nil, float64(fm.RebuildFailures))

	p.Counter("pland_panics_total", "Recovered handler panics.", nil, float64(s.panics.Load()))
	p.Counter("pland_shed_total", "Requests refused with 503 for build overload.", nil, float64(s.shed.Load()))
	p.Counter("pland_early_aborts_total", "Requests whose client disconnected first.", nil, float64(s.earlyAborts.Load()))
	p.Counter("pland_traces_committed_total", "Request traces committed to the debug ring.", nil, float64(s.cfg.Tracer.Committed()))

	if s.cfg.Cluster != nil {
		cm := s.cfg.Cluster.Metrics()
		p.Counter("pland_peer_hits_total", "Misses filled by a successful owner fetch.", nil, float64(cm.PeerHits))
		p.Counter("pland_peer_fetch_failures_total", "Owner fetches that exhausted their budget.", nil, float64(cm.PeerFetchFailures))
		p.Counter("pland_peer_fallback_builds_total", "Local builds forced by a failed owner fetch.", nil, float64(cm.FallbackBuilds))
		p.Counter("pland_fault_forwards_total", "Fault updates forwarded to peers.", nil, float64(cm.FaultForwards))
		p.Counter("pland_fault_forward_failures_total", "Fault forwards that failed.", nil, float64(cm.FaultForwardFailures))
		p.Counter("pland_warmed_lines_total", "Lines imported by startup snapshot fan-out.", nil, float64(cm.WarmedLines))
		p.Header("pland_peer_up", "gauge", "Last health-probe verdict per peer (1 = up).")
		for _, pm := range cm.Peers {
			v := 0.0
			if pm.Up {
				v = 1
			}
			p.Sample("pland_peer_up", map[string]string{"peer": pm.URL}, v)
		}
		p.Header("pland_peer_breaker_trips_total", "counter", "Breaker closed-to-open transitions per peer.")
		for _, pm := range cm.Peers {
			p.Sample("pland_peer_breaker_trips_total", map[string]string{"peer": pm.URL}, float64(pm.BreakerTrips))
		}
		p.Header("pland_peer_consecutive_failures", "gauge", "Current fetch-failure streak per peer.")
		for _, pm := range cm.Peers {
			p.Sample("pland_peer_consecutive_failures", map[string]string{"peer": pm.URL}, float64(pm.ConsecutiveFailures))
		}
	}

	// Per-endpoint request counters and latency histograms. Iterate in
	// sorted order so scrapes diff cleanly.
	type endpointSnap struct {
		name string
		st   *endpointStats
	}
	s.mu.Lock()
	endpoints := make([]endpointSnap, 0, len(s.stats))
	for name, st := range s.stats {
		endpoints = append(endpoints, endpointSnap{name, st})
	}
	s.mu.Unlock()
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i].name < endpoints[j].name })

	p.Header("pland_http_requests_total", "counter", "Requests served per endpoint.")
	for _, e := range endpoints {
		p.Sample("pland_http_requests_total", map[string]string{"endpoint": e.name}, float64(e.st.count.Load()))
	}
	p.Header("pland_http_request_errors_total", "counter", "Requests answered with status >= 400 per endpoint.")
	for _, e := range endpoints {
		p.Sample("pland_http_request_errors_total", map[string]string{"endpoint": e.name}, float64(e.st.errors.Load()))
	}
	p.Header("pland_http_inflight", "gauge", "Requests being served right now per endpoint.")
	for _, e := range endpoints {
		p.Sample("pland_http_inflight", map[string]string{"endpoint": e.name}, float64(e.st.inflight.Load()))
	}
	p.Header("pland_http_request_duration_us", "histogram", "Request latency per endpoint in microseconds.")
	for _, e := range endpoints {
		p.Histogram("pland_http_request_duration_us", map[string]string{"endpoint": e.name}, e.st.hist.Snapshot())
	}

	stages := s.cfg.Tracer.StageStats()
	if len(stages) > 0 {
		names := make([]string, 0, len(stages))
		for name := range stages {
			names = append(names, name)
		}
		sort.Strings(names)
		p.Header("pland_stage_duration_us", "histogram", "Traced stage latency in microseconds.")
		for _, name := range names {
			p.Histogram("pland_stage_duration_us", map[string]string{"stage": name}, stages[name])
		}
	}

	return http.StatusOK
}
