// Package service exposes the plan cache as an HTTP JSON API — the
// serving tier that turns the paper's "compute once, store for repeated
// future use" artifact (§6) into a queryable product:
//
//	GET  /v1/plan?machine=ipsc860&d=7&m=40   best partition + cost breakdown
//	POST /v1/cost                            cost an explicit partition
//	                                         (analytic + compiled-trace simulation)
//	GET  /v1/hull?machine=ipsc860&d=7        the hull-of-optimality table
//	POST /v1/batch                           many plan queries, one round trip
//	GET  /healthz                            liveness
//	GET  /metrics                            cache + per-endpoint latency counters
//
// Request validation maps to proper status codes (400 for bad input with
// the valid machine set listed, 405 for wrong methods, 413 for oversized
// batches); all responses are JSON. The handler is stateless beyond the
// shared plancache.Cache and its counters, so it is safe behind any
// number of listeners.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/plancache"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Config parameterizes a Server. Only Cache is required.
type Config struct {
	// Cache is the shared plan cache (required).
	Cache *plancache.Cache
	// DefaultMachine answers requests that omit ?machine= (default
	// "ipsc860").
	DefaultMachine string
	// BatchWorkers bounds the fan-out of /v1/batch (default GOMAXPROCS).
	BatchWorkers int
	// MaxBatch bounds the query count of one /v1/batch call (default
	// 4096); larger bodies get 413.
	MaxBatch int
	// CostMaxDim bounds the dimension /v1/cost will simulate (default
	// 12). The compiled-trace replay is fast, but its event count grows
	// like 4^d; a serving tier must refuse work that large per request.
	CostMaxDim int
	// ReplayWorkers is the event-engine shard count a /v1/cost replay may
	// split each link-disjoint phase across (simnet sharded replay).
	// Sharded results are bit-identical to serial ones, so this only
	// affects latency. Zero or one keeps replays serial.
	ReplayWorkers int
	// PlanMaxDim bounds the dimension /v1/plan, /v1/hull and /v1/batch
	// accept (default 20, the optimizer's own limit). A daemon whose
	// cache costs hull sweeps by simulation must set this near
	// CostMaxDim: one cache miss runs a full sweep of Best calls, each
	// hundreds of times the work of a single /v1/cost.
	PlanMaxDim int
	// RebuildAttempts bounds the background retry loop that rebuilds a
	// plan line after a degraded-fabric build failure (default 4).
	RebuildAttempts int
	// RebuildBackoff is the initial delay between rebuild attempts,
	// doubled per attempt (default 250ms).
	RebuildBackoff time.Duration
	// Logger receives fault-state transitions, rebuild outcomes, and
	// recovered handler panics (default slog.Default()).
	Logger *slog.Logger
	// Tracer records per-request span trees served at /debug/traces and
	// the per-stage latency histograms on /metrics. Nil gets a default
	// ring of obs.DefaultTraceCapacity traces — tracing is cheap enough
	// to always be on.
	Tracer *obs.Tracer
	// Cluster, when non-nil, is the peer layer this replica belongs to:
	// /metrics and /readyz surface peer up/down/breaker state, and
	// accepted /v1/faults updates are forwarded to all live peers. Nil
	// means a standalone daemon — every clustered behaviour is off and
	// the server is exactly the pre-cluster pland.
	Cluster *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.DefaultMachine == "" {
		c.DefaultMachine = "ipsc860"
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.CostMaxDim <= 0 {
		c.CostMaxDim = 12
	}
	if c.CostMaxDim > optimize.MaxSimulatedDim {
		c.CostMaxDim = optimize.MaxSimulatedDim
	}
	if c.PlanMaxDim <= 0 || c.PlanMaxDim > 20 {
		c.PlanMaxDim = 20 // optimize.Best's own dimension bound
	}
	if c.RebuildAttempts <= 0 {
		c.RebuildAttempts = 4
	}
	if c.RebuildBackoff <= 0 {
		c.RebuildBackoff = 250 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(0)
	}
	return c
}

// endpointStats aggregates one route's latency counters.
type endpointStats struct {
	count    atomic.Int64
	errors   atomic.Int64
	totalUS  atomic.Int64
	maxUS    atomic.Int64
	inflight atomic.Int64
	hist     obs.Histogram
}

// Server is the HTTP facade over a plan cache.
type Server struct {
	cfg   Config
	cache *plancache.Cache
	start time.Time

	mu    sync.Mutex
	stats map[string]*endpointStats

	// Fault state: per-fabric fault sets keyed by base topology name,
	// and the dedup set of in-flight background rebuilds (see faults.go).
	faultMu    sync.Mutex
	faults     map[string]topology.FaultSet
	rebuilding map[string]bool

	faultUpdates, degradedServes atomic.Int64
	rebuilds, rebuildFailures    atomic.Int64
	panics                       atomic.Int64
	shed, earlyAborts            atomic.Int64

	// ready gates /readyz: set by the daemon once snapshot restore,
	// warmup, and cluster join (probe start + warm fan-out) are done, so
	// a load balancer never routes to a cold replica.
	ready atomic.Bool
}

// New returns a server over the given configuration.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Cache == nil {
		return nil, fmt.Errorf("service: Config.Cache is required")
	}
	// Resolve through the cache so aliases work and the stored default
	// is the canonical name every response echoes.
	name, _, err := cfg.Cache.Resolve(cfg.DefaultMachine)
	if err != nil {
		return nil, fmt.Errorf("service: default machine: %w", err)
	}
	cfg.DefaultMachine = name
	return &Server{
		cfg:        cfg,
		cache:      cfg.Cache,
		start:      time.Now(),
		stats:      make(map[string]*endpointStats),
		faults:     make(map[string]topology.FaultSet),
		rebuilding: make(map[string]bool),
	}, nil
}

// Handler returns the routed, instrumented handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.instrument("/v1/plan", http.MethodGet, s.handlePlan))
	mux.HandleFunc("/v1/cost", s.instrument("/v1/cost", http.MethodPost, s.handleCost))
	mux.HandleFunc("/v1/hull", s.instrument("/v1/hull", http.MethodGet, s.handleHull))
	mux.HandleFunc("/v1/batch", s.instrument("/v1/batch", http.MethodPost, s.handleBatch))
	mux.HandleFunc("/v1/faults", s.instrument("/v1/faults", http.MethodPost, s.handleFaults))
	mux.HandleFunc(cluster.PeerLinePath, s.instrument(cluster.PeerLinePath, http.MethodGet, s.handlePeerLine))
	mux.HandleFunc(cluster.PeerSnapshotPath, s.instrument(cluster.PeerSnapshotPath, http.MethodGet, s.handlePeerSnapshot))
	mux.HandleFunc("/healthz", s.instrument("/healthz", http.MethodGet, s.handleHealthz))
	mux.HandleFunc("/readyz", s.instrument("/readyz", http.MethodGet, s.handleReadyz))
	mux.HandleFunc("/metrics", s.instrument("/metrics", http.MethodGet, s.handleMetrics))
	mux.HandleFunc("/debug/traces", s.instrument("/debug/traces", http.MethodGet, s.handleTraces))
	return mux
}

// SetReady flips the /readyz verdict. The daemon calls it with true
// once restore + warmup + ring join have completed (and with false
// never — a live server stays ready; liveness is /healthz's job).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// instrument wraps a handler with request-ID assignment, tracing,
// method enforcement, panic recovery, and latency accounting.
func (s *Server) instrument(name, method string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	st := s.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		// Echo the ID so clients — and the fetching replica on a peer
		// hop — can join their logs to this replica's trace of the same
		// request.
		w.Header().Set(obs.RequestIDHeader, id)
		ctx, root := s.cfg.Tracer.StartRequest(r.Context(), id, name)
		r = r.WithContext(ctx)

		st.inflight.Add(1)
		// A panic that unwinds past recovered (a second panic inside its
		// recovery) still reaches this defer, so the request is counted,
		// its duration recorded, and the in-flight gauge released no
		// matter how the handler dies.
		code := http.StatusInternalServerError
		defer func() {
			us := time.Since(begin).Microseconds()
			st.inflight.Add(-1)
			st.count.Add(1)
			st.totalUS.Add(us)
			st.hist.Observe(us)
			if code >= 400 {
				st.errors.Add(1)
			}
			for {
				old := st.maxUS.Load()
				if us <= old || st.maxUS.CompareAndSwap(old, us) {
					break
				}
			}
			if root != nil {
				root.SetInt("status", int64(code))
				root.End()
			}
		}()
		if r.Method != method {
			w.Header().Set("Allow", method)
			code = http.StatusMethodNotAllowed
			writeError(w, code, fmt.Sprintf("method %s not allowed, use %s", r.Method, method))
			return
		}
		code = s.recovered(h, w, r)
	}
}

// recovered runs one handler with panic recovery: a panicking handler
// costs its request a 500, a panics_total tick, and a stack trace in
// the log — never the whole daemon. If the handler had already written
// its response when it panicked, the late 500 header is a no-op (the
// http package drops it with a log line); the counter still ticks.
func (s *Server) recovered(h func(http.ResponseWriter, *http.Request) int, w http.ResponseWriter, r *http.Request) (code int) {
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			s.cfg.Logger.Error("panic serving request",
				"method", r.Method, "path", r.URL.Path,
				"request_id", obs.RequestID(r.Context()),
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			code = writeError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	return h(w, r)
}

func (s *Server) endpoint(name string) *endpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stats[name]
	if !ok {
		st = &endpointStats{}
		s.stats[name] = st
	}
	return st
}

// --- wire types ---

type errorResponse struct {
	Error string `json:"error"`
}

type phaseJSON struct {
	SubcubeDim int     `json:"subcube_dim"`
	EffBlock   int     `json:"eff_block"`
	Alg        string  `json:"alg"`
	TimeUS     float64 `json:"time_us"`
}

type segmentJSON struct {
	Partition []int `json:"partition"`
	MinBlock  int   `json:"min_block"`
	MaxBlock  int   `json:"max_block"`
}

// PlanResponse is the /v1/plan wire format.
type PlanResponse struct {
	Machine     string      `json:"machine"`
	Topology    string      `json:"topology"`
	D           int         `json:"d"`
	M           int         `json:"m"`
	Partition   []int       `json:"partition"`
	PredictedUS float64     `json:"predicted_us"`
	Phases      []phaseJSON `json:"phases"`
	Segment     segmentJSON `json:"segment"`
	InRange     bool        `json:"in_range"`
	// Health is the fabric's fault digest at answer time ("ok" when
	// healthy). Degraded marks a last-known-good fallback: the fabric
	// carries faults the plan could not be rebuilt under, so this answer
	// ignores them; a background rebuild is in flight.
	Health   string `json:"health"`
	Degraded bool   `json:"degraded,omitempty"`
}

func planResponse(p plancache.Plan) PlanResponse {
	resp := PlanResponse{
		Machine:     p.Machine,
		Topology:    p.Topo,
		D:           p.D,
		M:           p.Block,
		Partition:   append([]int{}, p.Part...),
		PredictedUS: p.TimeMicro,
		Phases:      phasesJSON(p.Phases),
		Segment: segmentJSON{
			Partition: append([]int{}, p.Part...),
			MinBlock:  p.SegMin,
			MaxBlock:  p.SegMax,
		},
		InRange: p.InRange,
	}
	return resp
}

func phasesJSON(phases []model.PhaseBreakdown) []phaseJSON {
	out := make([]phaseJSON, 0, len(phases))
	for _, ph := range phases {
		out = append(out, phaseJSON{
			SubcubeDim: ph.SubcubeDim,
			EffBlock:   ph.EffBlock,
			Alg:        ph.Alg.String(),
			TimeUS:     ph.Time,
		})
	}
	return out
}

// --- handlers; each returns the HTTP status it wrote ---

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) int {
	machine, topo, m, errCode := s.planQuery(w, r)
	if errCode != 0 {
		return errCode
	}
	p, health, degraded, err := s.planFor(r.Context(), machine, topo, m)
	if err != nil {
		return s.writeCacheError(w, r, err)
	}
	resp := planResponse(p)
	resp.Health = health
	resp.Degraded = degraded
	return writeJSON(w, http.StatusOK, resp)
}

// checkPlanDim enforces the server's dimension bound on cache-building
// endpoints; returns an error message for out-of-bound d.
func (s *Server) checkPlanDim(d int) error {
	if d < 0 || d > s.cfg.PlanMaxDim {
		return fmt.Errorf("d=%d out of this server's range [0,%d]", d, s.cfg.PlanMaxDim)
	}
	return nil
}

// resolveTopo turns a request's topology/d pair into a resolved network
// within the server's serving bound: an explicit topology field wins,
// otherwise d selects the hypercube. The bound caps both the node count
// (2^PlanMaxDim — a hull build's cost scales with it) and, for the
// hypercube path, d itself. Handlers pass the returned Network straight
// to the cache's *For entry points, so a request's spec is parsed
// exactly once.
func (s *Server) resolveTopo(topo string, d string) (topology.Network, error) {
	if topo == "" {
		if d == "" {
			return nil, fmt.Errorf("missing required parameter %q (or %q)", "d", "topology")
		}
		dv, err := queryInt(d, "d")
		if err != nil {
			return nil, err
		}
		if err := s.checkPlanDim(dv); err != nil {
			return nil, err
		}
		return topology.New(dv)
	}
	net, err := plancache.ResolveTopology(topo)
	if err != nil {
		return nil, err
	}
	if net.Nodes() > 1<<s.cfg.PlanMaxDim {
		return nil, fmt.Errorf("topology %s has %d nodes, over this server's bound of %d",
			net.Name(), net.Nodes(), 1<<s.cfg.PlanMaxDim)
	}
	return net, nil
}

// statusClientClosedRequest is the (nginx-conventional) status recorded
// when a client disconnects before its answer is built: the write never
// reaches anyone, but the counter and access pattern should say "client
// gave up", not "we failed".
const statusClientClosedRequest = 499

// writeCacheError maps a plancache error to a status: an overloaded
// shed is 503 with Retry-After (come back when a build slot frees), a
// request whose own context ended is 499, build failures are
// server-side (500), everything else is request validation (400).
func (s *Server) writeCacheError(w http.ResponseWriter, r *http.Request, err error) int {
	switch {
	case errors.Is(err, plancache.ErrOverloaded):
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusServiceUnavailable, err.Error())
	case r.Context().Err() != nil && errors.Is(err, r.Context().Err()):
		s.earlyAborts.Add(1)
		return writeError(w, statusClientClosedRequest, "client closed request: "+err.Error())
	}
	var be *plancache.BuildError
	if errors.As(err, &be) {
		return writeError(w, http.StatusInternalServerError, err.Error())
	}
	return writeError(w, http.StatusBadRequest, err.Error())
}

// planQuery parses machine/topology/d/m from the URL query; on failure
// it writes the error response and returns its code (0 on success).
func (s *Server) planQuery(w http.ResponseWriter, r *http.Request) (machine string, topo topology.Network, m, errCode int) {
	q := r.URL.Query()
	machine = q.Get("machine")
	if machine == "" {
		machine = s.cfg.DefaultMachine
	}
	topo, err := s.resolveTopo(q.Get("topology"), q.Get("d"))
	if err != nil {
		return "", nil, 0, writeError(w, http.StatusBadRequest, err.Error())
	}
	m, err = queryInt(q.Get("m"), "m")
	if err != nil {
		return "", nil, 0, writeError(w, http.StatusBadRequest, err.Error())
	}
	return machine, topo, m, 0
}

func queryInt(raw, name string) (int, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %q is not an integer", name, raw)
	}
	return v, nil
}

// CostRequest is the /v1/cost wire format. Topology names a registry
// spec ("torus-4x4x4"); when empty, D selects the hypercube.
type CostRequest struct {
	Machine   string `json:"machine"`
	Topology  string `json:"topology"`
	D         int    `json:"d"`
	M         int    `json:"m"`
	Partition []int  `json:"partition"`
}

// CostResponse reports both cost views of one explicit partition: the
// closed-form prediction and the compiled-trace discrete-event replay.
type CostResponse struct {
	Machine         string      `json:"machine"`
	Topology        string      `json:"topology"`
	D               int         `json:"d"`
	M               int         `json:"m"`
	Partition       []int       `json:"partition"`
	PredictedUS     float64     `json:"predicted_us"`
	SimulatedUS     float64     `json:"simulated_us"`
	ContentionStall float64     `json:"contention_stall_us"`
	Phases          []phaseJSON `json:"phases"`
	// Health is the fabric's fault digest at answer time ("ok" when
	// healthy); both cost views account for the faults.
	Health string `json:"health"`
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) int {
	var req CostRequest
	if code := decodeBody(w, r, &req); code != 0 {
		return code
	}
	if req.Machine == "" {
		req.Machine = s.cfg.DefaultMachine
	}
	machine, prm, err := s.cache.Resolve(req.Machine)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	req.Machine = machine
	var topo topology.Network
	if req.Topology != "" {
		topo, err = plancache.ResolveTopology(req.Topology)
	} else {
		if req.D < 0 || req.D > s.cfg.CostMaxDim {
			return writeError(w, http.StatusBadRequest,
				fmt.Sprintf("d=%d out of this server's simulation bound [0,%d]", req.D, s.cfg.CostMaxDim))
		}
		topo, err = topology.New(req.D)
	}
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if topo.Nodes() > 1<<s.cfg.CostMaxDim {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("topology %s has %d nodes, over this server's simulation bound of %d",
				topo.Name(), topo.Nodes(), 1<<s.cfg.CostMaxDim))
	}
	net, health, err := s.applyFaults(topo)
	if err != nil {
		return writeError(w, http.StatusInternalServerError, err.Error())
	}
	D := partition.Partition(req.Partition)
	plan, err := exchange.NewPlanOn(net, req.M, D)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	costNet := simnet.New(net, prm)
	costNet.SetReplayShards(s.cfg.ReplayWorkers)
	res, err := plan.Cost(costNet)
	if err != nil {
		return writeError(w, http.StatusInternalServerError, err.Error())
	}
	pred, phases, err := prm.MultiphaseOn(net, req.M, D)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	return writeJSON(w, http.StatusOK, CostResponse{
		Machine:         req.Machine,
		Topology:        net.Name(),
		D:               net.NumDims(),
		M:               req.M,
		Partition:       append([]int{}, D...),
		PredictedUS:     pred,
		SimulatedUS:     res.Makespan,
		ContentionStall: res.ContentionStall,
		Phases:          phasesJSON(phases),
		Health:          health,
	})
}

// HullResponse is the /v1/hull wire format.
type HullResponse struct {
	Machine  string        `json:"machine"`
	Topology string        `json:"topology"`
	D        int           `json:"d"`
	Segments []segmentJSON `json:"segments"`
	// Health is the fabric's fault digest at answer time ("ok" when
	// healthy); the hull was enumerated on the degraded fabric when set.
	Health string `json:"health"`
}

func (s *Server) handleHull(w http.ResponseWriter, r *http.Request) int {
	q := r.URL.Query()
	machine := q.Get("machine")
	if machine == "" {
		machine = s.cfg.DefaultMachine
	}
	name, _, err := s.cache.Resolve(machine)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	topo, err := s.resolveTopo(q.Get("topology"), q.Get("d"))
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	net, health, err := s.applyFaults(topo)
	if err != nil {
		return writeError(w, http.StatusInternalServerError, err.Error())
	}
	tbl, err := s.cache.HullForCtx(r.Context(), name, net)
	if err != nil {
		return s.writeCacheError(w, r, err)
	}
	resp := HullResponse{Machine: name, Topology: tbl.Topo, D: tbl.D, Health: health}
	for _, seg := range tbl.Segments {
		resp.Segments = append(resp.Segments, segmentJSON{
			Partition: append([]int{}, seg.Part...),
			MinBlock:  seg.MinBlock,
			MaxBlock:  seg.MaxBlock,
		})
	}
	return writeJSON(w, http.StatusOK, resp)
}

// BatchRequest is the /v1/batch wire format: a slice of plan queries.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchQuery is one (machine, topology, m) plan query; an empty
// Topology selects the D-cube.
type BatchQuery struct {
	Machine  string `json:"machine"`
	Topology string `json:"topology"`
	D        int    `json:"d"`
	M        int    `json:"m"`
}

// BatchItem is one batch result: a plan or a per-query error, never
// both. A bad query does not fail its siblings.
type BatchItem struct {
	Plan  *PlanResponse `json:"plan,omitempty"`
	Error string        `json:"error,omitempty"`
}

// BatchResponse carries the results in query order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// handleBatch fans the queries across a bounded worker pool; results
// come back in request order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	var req BatchRequest
	if code := decodeBody(w, r, &req); code != 0 {
		return code
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		return writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d queries exceeds the limit of %d", len(req.Queries), s.cfg.MaxBatch))
	}
	results := make([]BatchItem, len(req.Queries))
	workers := s.cfg.BatchWorkers
	if workers > len(req.Queries) {
		workers = len(req.Queries)
	}
	ctx := r.Context()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(results) {
					return
				}
				// A disconnected client stops the fan-out: remaining
				// queries are marked cancelled, not computed.
				if err := ctx.Err(); err != nil {
					results[i] = BatchItem{Error: "request cancelled: " + err.Error()}
					continue
				}
				qy := req.Queries[i]
				machine := qy.Machine
				if machine == "" {
					machine = s.cfg.DefaultMachine
				}
				topo, err := s.resolveTopo(qy.Topology, strconv.Itoa(qy.D))
				if err != nil {
					results[i] = BatchItem{Error: err.Error()}
					continue
				}
				p, health, degraded, err := s.planFor(ctx, machine, topo, qy.M)
				if err != nil {
					if errors.Is(err, plancache.ErrOverloaded) {
						s.shed.Add(1)
					}
					results[i] = BatchItem{Error: err.Error()}
					continue
				}
				resp := planResponse(p)
				resp.Health = health
				resp.Degraded = degraded
				results[i] = BatchItem{Plan: &resp}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		s.earlyAborts.Add(1)
		return writeError(w, statusClientClosedRequest, "client closed request: "+err.Error())
	}
	return writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// HealthResponse is the /healthz wire format.
type HealthResponse struct {
	Status   string   `json:"status"`
	UptimeS  float64  `json:"uptime_s"`
	Machines []string `json:"machines"`
	// DegradedFabrics lists topologies currently carrying fault state.
	DegradedFabrics []string `json:"degraded_fabrics,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	machines := s.cache.Machines()
	names := make([]string, 0, len(machines))
	for name := range machines {
		names = append(names, name)
	}
	sort.Strings(names)
	return writeJSON(w, http.StatusOK, HealthResponse{
		Status:          "ok",
		UptimeS:         time.Since(s.start).Seconds(),
		Machines:        names,
		DegradedFabrics: s.FaultTopologies(),
	})
}

// EndpointMetrics is one route's latency accounting. The quantiles are
// derived from a fixed log-bucket histogram, so they are estimates
// bounded by their bucket (and exact at the observed max).
type EndpointMetrics struct {
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	TotalUS  int64   `json:"total_us"`
	MeanUS   float64 `json:"mean_us"`
	MaxUS    int64   `json:"max_us"`
	P50US    float64 `json:"p50_us"`
	P90US    float64 `json:"p90_us"`
	P99US    float64 `json:"p99_us"`
	Inflight int64   `json:"inflight"`
}

// MetricsResponse is the /metrics wire format: the cache counters and
// the aggregated optimizer enumeration counters (candidates evaluated,
// branch-and-bound pruned, memo hits/misses across every per-machine
// optimizer) next to per-endpoint request/latency counters.
type MetricsResponse struct {
	Cache     plancache.Stats `json:"cache"`
	Optimizer optimize.Stats  `json:"optimizer"`
	Faults    FaultMetrics    `json:"faults"`
	Panics    int64           `json:"panics_total"`
	// Shed counts requests refused with 503 because the local build
	// concurrency bound was exhausted; EarlyAborts counts requests whose
	// client disconnected before the answer was built (499).
	Shed        int64 `json:"shed_total"`
	EarlyAborts int64 `json:"early_aborts_total"`
	// Cluster carries peer-layer counters and per-peer up/breaker state;
	// absent on a standalone daemon so the standalone wire format is
	// unchanged.
	Cluster   *cluster.Metrics           `json:"cluster,omitempty"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
	// Stages carries per-stage latency histograms (build, optimizer,
	// replay, peer_fetch, cache, …) aggregated from trace spans; absent
	// until the first traced request exercises a stage.
	Stages map[string]obs.HistSnapshot `json:"stages,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	if r.URL.Query().Get("format") == "prometheus" {
		return s.writePrometheus(w)
	}
	resp := MetricsResponse{
		Cache:       s.cache.Stats(),
		Optimizer:   s.cache.OptimizerStats(),
		Faults:      s.faultMetrics(),
		Panics:      s.panics.Load(),
		Shed:        s.shed.Load(),
		EarlyAborts: s.earlyAborts.Load(),
		Endpoints:   make(map[string]EndpointMetrics),
	}
	if s.cfg.Cluster != nil {
		m := s.cfg.Cluster.Metrics()
		resp.Cluster = &m
	}
	s.mu.Lock()
	for name, st := range s.stats {
		resp.Endpoints[name] = st.metrics()
	}
	s.mu.Unlock()
	if stages := s.cfg.Tracer.StageStats(); len(stages) > 0 {
		resp.Stages = make(map[string]obs.HistSnapshot, len(stages))
		for name, snap := range stages {
			snap.Buckets = nil // quantiles only; buckets live on the Prometheus form
			resp.Stages[name] = snap
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// metrics renders one endpoint's counters for the JSON /metrics form.
func (st *endpointStats) metrics() EndpointMetrics {
	snap := st.hist.Snapshot()
	m := EndpointMetrics{
		Count:    st.count.Load(),
		Errors:   st.errors.Load(),
		TotalUS:  st.totalUS.Load(),
		MaxUS:    st.maxUS.Load(),
		P50US:    snap.P50US,
		P90US:    snap.P90US,
		P99US:    snap.P99US,
		Inflight: st.inflight.Load(),
	}
	if m.Count > 0 {
		m.MeanUS = float64(m.TotalUS) / float64(m.Count)
	}
	return m
}

// TracesResponse is the /debug/traces wire format.
type TracesResponse struct {
	// Committed counts traces committed since boot; the ring retains only
	// the most recent ones.
	Committed int64           `json:"committed_total"`
	Traces    []obs.TraceData `json:"traces"`
}

// handleTraces serves recent request traces: ?id= filters by request ID,
// ?limit= bounds the count, and ?format=chrome renders the Chrome
// trace_event JSON that chrome://tracing and Perfetto open directly.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) int {
	q := r.URL.Query()
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		v, err := queryInt(raw, "limit")
		if err != nil {
			return writeError(w, http.StatusBadRequest, err.Error())
		}
		limit = v
	}
	var traces []obs.TraceData
	if id := q.Get("id"); id != "" {
		traces = s.cfg.Tracer.Find(id)
	} else {
		traces = s.cfg.Tracer.Snapshot(limit)
	}
	if q.Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = obs.WriteChromeTrace(w, obs.ChromeEvents(traces))
		return http.StatusOK
	}
	if traces == nil {
		traces = []obs.TraceData{}
	}
	return writeJSON(w, http.StatusOK, TracesResponse{
		Committed: s.cfg.Tracer.Committed(),
		Traces:    traces,
	})
}

// maxBodyBytes bounds a POST body: the size cap is enforced while
// reading, before any per-query work, so an oversized /v1/batch cannot
// allocate its way past MaxBatch.
const maxBodyBytes = 1 << 20

// decodeBody JSON-decodes a size-limited request body; on failure it
// writes the error response and returns its status code (0 on success).
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) int {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		}
		return writeError(w, http.StatusBadRequest, "decoding request body: "+err.Error())
	}
	return 0
}

// --- response plumbing ---

func writeJSON(w http.ResponseWriter, code int, v interface{}) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return code
}

func writeError(w http.ResponseWriter, code int, msg string) int {
	return writeJSON(w, code, errorResponse{Error: msg})
}
