package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/plancache"
)

// findTrace polls /debug/traces?id= until the trace commits (the root
// span ends in a defer that can race the client seeing the response).
func findTrace(t *testing.T, base, id string) obs.TraceData {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var tr TracesResponse
		getJSON(t, base+"/debug/traces?id="+id, http.StatusOK, &tr)
		if len(tr.Traces) > 0 {
			return tr.Traces[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never committed", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func spanNames(td obs.TraceData) map[string]int {
	names := make(map[string]int)
	for _, sp := range td.Spans {
		names[sp.Name]++
	}
	return names
}

// TestPlanMissTraceStages is the tracing acceptance path: a cache-miss
// /v1/plan on a simulated-backend cache commits a trace whose stages
// cover the whole request — handler root, cache lookup, line build,
// optimizer enumeration, and compiled-trace replay — and a client-
// supplied request ID is echoed and addresses the trace.
func TestPlanMissTraceStages(t *testing.T) {
	cache := plancache.New(plancache.Config{NewOptimizer: optimize.NewSimulated})
	srv, err := New(Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const id = "obs-test-0001"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/plan?machine=ipsc860&d=4&m=40", nil)
	req.Header.Set(obs.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/plan: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != id {
		t.Fatalf("request ID echoed as %q, want %q", got, id)
	}

	td := findTrace(t, ts.URL, id)
	names := spanNames(td)
	for _, stage := range []string{"/v1/plan", "cache", "build", "optimizer", "replay"} {
		if names[stage] == 0 {
			t.Errorf("trace missing stage %q (got %v)", stage, names)
		}
	}
	if td.DurationUS <= 0 {
		t.Errorf("trace duration %v, want > 0", td.DurationUS)
	}

	// A second identical request is a hit: its cache span says so.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/plan?machine=ipsc860&d=4&m=40", nil)
	req2.Header.Set(obs.RequestIDHeader, "obs-test-0002")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	hit := findTrace(t, ts.URL, "obs-test-0002")
	outcome := ""
	for _, sp := range hit.Spans {
		if sp.Name != "cache" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "outcome" {
				outcome = a.Value
			}
		}
	}
	if outcome != "hit" {
		t.Errorf("resident-line cache span outcome %q, want hit", outcome)
	}

	// The stage histograms feed /metrics: build/optimizer/replay must
	// appear with non-zero counts and sane quantiles.
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", http.StatusOK, &m)
	for _, stage := range []string{"build", "optimizer", "replay", "cache"} {
		snap, ok := m.Stages[stage]
		if !ok || snap.Count == 0 {
			t.Errorf("stage %q missing from /metrics stages (%v)", stage, m.Stages)
			continue
		}
		if snap.P99US < snap.P50US {
			t.Errorf("stage %q p99 %v < p50 %v", stage, snap.P99US, snap.P50US)
		}
	}
	ep := m.Endpoints["/v1/plan"]
	if ep.P99US <= 0 || ep.P50US <= 0 {
		t.Errorf("/v1/plan endpoint quantiles p50=%v p99=%v, want > 0", ep.P50US, ep.P99US)
	}
	if ep.Inflight != 0 {
		t.Errorf("idle server reports inflight %d", ep.Inflight)
	}
}

// TestTracesChromeExport: ?format=chrome renders a well-formed Chrome
// trace_event document covering the committed traces.
func TestTracesChromeExport(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/plan?d=4&m=40", http.StatusOK, nil)

	deadline := time.Now().Add(5 * time.Second)
	for {
		var tr TracesResponse
		getJSON(t, ts.URL+"/debug/traces", http.StatusOK, &tr)
		if tr.Committed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no trace committed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/debug/traces?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" || ev.Name == "" || ev.Dur < 0 {
			t.Fatalf("malformed chrome event %+v", ev)
		}
	}
}

// promSample is one parsed Prometheus text-format sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm parses the Prometheus 0.0.4 text format strictly enough to
// pin the exposition: every non-comment line must be name{labels} value.
func parseProm(t *testing.T, body string) []promSample {
	t.Helper()
	var out []promSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: value %q: %v", ln+1, line[sp+1:], err)
		}
		s := promSample{name: line[:sp], labels: map[string]string{}, value: val}
		if i := strings.IndexByte(s.name, '{'); i >= 0 {
			raw := s.name
			if !strings.HasSuffix(raw, "}") {
				t.Fatalf("line %d: unterminated label set %q", ln+1, raw)
			}
			s.name = raw[:i]
			for _, pair := range strings.Split(raw[i+1:len(raw)-1], ",") {
				if pair == "" {
					continue
				}
				eq := strings.IndexByte(pair, '=')
				if eq < 0 || !strings.HasPrefix(pair[eq+1:], `"`) || !strings.HasSuffix(pair, `"`) {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				s.labels[pair[:eq]] = pair[eq+2 : len(pair)-1]
			}
		}
		out = append(out, s)
	}
	return out
}

// TestPrometheusExposition pins /metrics?format=prometheus: every line
// parses, histogram buckets are cumulative and end at +Inf == _count,
// and the request counters reflect served traffic with non-zero
// latency mass.
func TestPrometheusExposition(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/plan?d=5&m=40", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/plan?d=5&m=80", http.StatusOK, nil)
	resp, _ := http.Get(ts.URL + "/v1/plan?machine=cray&d=5&m=40")
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, string(raw))
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}

	find := func(name string, labels map[string]string) (float64, bool) {
		for _, s := range samples {
			if s.name != name {
				continue
			}
			ok := true
			for k, v := range labels {
				if s.labels[k] != v {
					ok = false
				}
			}
			if ok {
				return s.value, true
			}
		}
		return 0, false
	}

	if v, ok := find("pland_http_requests_total", map[string]string{"endpoint": "/v1/plan"}); !ok || v != 3 {
		t.Errorf("pland_http_requests_total{endpoint=/v1/plan} = %v (found %v), want 3", v, ok)
	}
	if v, ok := find("pland_http_request_errors_total", map[string]string{"endpoint": "/v1/plan"}); !ok || v != 1 {
		t.Errorf("pland_http_request_errors_total{endpoint=/v1/plan} = %v, want 1", v)
	}
	if v, ok := find("pland_cache_builds_total", nil); !ok || v < 1 {
		t.Errorf("pland_cache_builds_total = %v, want >= 1", v)
	}

	// Every histogram: le buckets cumulative, +Inf present and equal to
	// _count, _sum consistent with observations.
	type histKey struct{ name, labels string }
	buckets := make(map[histKey][]promSample)
	for _, s := range samples {
		if !strings.HasSuffix(s.name, "_bucket") {
			continue
		}
		rest := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			if k != "le" {
				rest = append(rest, k+"="+v)
			}
		}
		sort.Strings(rest)
		k := histKey{strings.TrimSuffix(s.name, "_bucket"), strings.Join(rest, ",")}
		buckets[k] = append(buckets[k], s)
	}
	if len(buckets) == 0 {
		t.Fatal("no histograms in the exposition")
	}
	for k, bs := range buckets {
		var infCount float64
		prev := -1.0
		prevLE := ""
		for _, b := range bs {
			if b.value < prev {
				t.Errorf("%s{%s}: bucket le=%q count %v below previous le=%q %v — not cumulative",
					k.name, k.labels, b.labels["le"], b.value, prevLE, prev)
			}
			prev, prevLE = b.value, b.labels["le"]
			if b.labels["le"] == "+Inf" {
				infCount = b.value
			}
		}
		if bs[len(bs)-1].labels["le"] != "+Inf" {
			t.Errorf("%s{%s}: last bucket le=%q, want +Inf", k.name, k.labels, bs[len(bs)-1].labels["le"])
		}
		count, ok := find(k.name+"_count", nil)
		if k.labels != "" {
			lbl := map[string]string{}
			for _, pair := range strings.Split(k.labels, ",") {
				eq := strings.IndexByte(pair, '=')
				lbl[pair[:eq]] = pair[eq+1:]
			}
			count, ok = find(k.name+"_count", lbl)
		}
		if !ok || count != infCount {
			t.Errorf("%s{%s}: _count %v != +Inf bucket %v", k.name, k.labels, count, infCount)
		}
	}

	// The acceptance gate: request latency histogram carries mass with a
	// non-zero upper quantile equivalent (sum > 0 over count > 0).
	cnt, _ := find("pland_http_request_duration_us_count", map[string]string{"endpoint": "/v1/plan"})
	sum, _ := find("pland_http_request_duration_us_sum", map[string]string{"endpoint": "/v1/plan"})
	if cnt != 3 || sum <= 0 {
		t.Errorf("/v1/plan duration histogram count=%v sum=%v, want 3 with positive sum", cnt, sum)
	}
}

// TestMetricsJSONLegacyShape: the JSON /metrics consumers from earlier
// PRs must keep working — every pre-observability key survives, and the
// new fields are strictly additive.
func TestMetricsJSONLegacyShape(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/plan?d=4&m=40", http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var top map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cache", "optimizer", "faults", "panics_total", "shed_total", "early_aborts_total", "endpoints"} {
		if _, ok := top[key]; !ok {
			t.Errorf("/metrics lost legacy key %q", key)
		}
	}
	var eps map[string]map[string]json.Number
	if err := json.Unmarshal(top["endpoints"], &eps); err != nil {
		t.Fatal(err)
	}
	ep, ok := eps["/v1/plan"]
	if !ok {
		t.Fatal("endpoints missing /v1/plan")
	}
	for _, key := range []string{"count", "errors", "total_us", "mean_us", "max_us"} {
		if _, ok := ep[key]; !ok {
			t.Errorf("endpoint metrics lost legacy key %q", key)
		}
	}
}

// TestPanicStillAccounted: a panicking handler's request lands in the
// latency counters and histogram, and the in-flight gauge drains — the
// accounting defer runs no matter how the handler dies.
func TestPanicStillAccounted(t *testing.T) {
	srv, err := New(Config{Cache: plancache.New(plancache.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.instrument("/boom", http.MethodGet, func(http.ResponseWriter, *http.Request) int {
		panic("kaboom")
	})
	w := httptest.NewRecorder()
	h(w, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler wrote %d, want 500", w.Code)
	}

	st := srv.endpoint("/boom")
	if st.count.Load() != 1 || st.errors.Load() != 1 {
		t.Fatalf("panicked request not counted: count=%d errors=%d", st.count.Load(), st.errors.Load())
	}
	if st.inflight.Load() != 0 {
		t.Fatalf("inflight gauge leaked: %d", st.inflight.Load())
	}
	if snap := st.hist.Snapshot(); snap.Count != 1 {
		t.Fatalf("histogram missed the panicked request: count=%d", snap.Count)
	}
	if srv.panics.Load() != 1 {
		t.Fatalf("panics_total = %d, want 1", srv.panics.Load())
	}
	if w.Result().Header.Get(obs.RequestIDHeader) == "" {
		t.Error("panicked response lost its request ID header")
	}
}
