package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/plancache"
	"repro/internal/topology"
)

// FaultsRequest is the POST /v1/faults wire format. Topology names the
// base fabric the operation applies to ("torus-4x4" — a spec that
// already carries a fault digest is rejected; fault state is owned by
// the server, not spliced into specs). Links are endpoint pairs that
// must be adjacent in the base topology.
type FaultsRequest struct {
	Topology string `json:"topology"`
	// Action is one of:
	//   down     mark Links and Nodes dead
	//   slow     mark Links degraded by Factor (> 1)
	//   restore  return Links and Nodes to healthy
	//   clear    drop the fabric's whole fault set
	Action string   `json:"action"`
	Links  [][2]int `json:"links,omitempty"`
	Nodes  []int    `json:"nodes,omitempty"`
	Factor float64  `json:"factor,omitempty"`
}

// FaultsResponse reports the fabric's fault state after the operation.
type FaultsResponse struct {
	Topology string `json:"topology"`
	// Health is the canonical fault digest ("ok" when healthy); plans
	// for this fabric are cached under topology + "!" + Health.
	Health string `json:"health"`
	// Operational reports whether the degraded fabric can still host a
	// complete exchange (every node alive, live graph connected). A
	// non-operational fabric serves last-known-good plans flagged
	// degraded until restored.
	Operational bool     `json:"operational"`
	DeadNodes   []int    `json:"dead_nodes,omitempty"`
	DeadLinks   []string `json:"dead_links,omitempty"`
	SlowLinks   []string `json:"slow_links,omitempty"`
	// Invalidated counts cache lines retired because their fault digest
	// was superseded by this update.
	Invalidated int `json:"invalidated_lines"`
	// Forwarded/ForwardFailed count the best-effort fan-out of this
	// update to cluster peers (absent on a standalone daemon and on
	// forwarded copies, which are never re-forwarded).
	Forwarded     int `json:"forwarded_peers,omitempty"`
	ForwardFailed int `json:"forward_failed_peers,omitempty"`
}

// handleFaults mutates one fabric's fault set. The canonicalized set is
// stored under the base topology name; plan requests for that base are
// transparently re-planned on the degraded overlay, and cache lines
// keyed under a superseded digest are retired (the bare line survives
// as last-known-good material).
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) int {
	var req FaultsRequest
	if code := decodeBody(w, r, &req); code != 0 {
		return code
	}
	if req.Topology == "" {
		return writeError(w, http.StatusBadRequest, "missing required field \"topology\"")
	}
	base, err := s.resolveTopo(req.Topology, "")
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if _, isDeg := base.(*topology.Degraded); isDeg {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("topology %q carries a fault digest; address the base fabric and use actions to change fault state", req.Topology))
	}
	name := base.Name()
	links := make([]topology.Link, 0, len(req.Links))
	for _, pair := range req.Links {
		links = append(links, topology.Link{A: pair[0], B: pair[1]})
	}

	s.faultMu.Lock()
	fs := s.faults[name].Clone()
	switch req.Action {
	case "down":
		fs.DeadLinks = append(fs.DeadLinks, links...)
		fs.DeadNodes = append(fs.DeadNodes, req.Nodes...)
	case "slow":
		if len(req.Nodes) != 0 {
			s.faultMu.Unlock()
			return writeError(w, http.StatusBadRequest, "action \"slow\" applies to links, not nodes")
		}
		if !(req.Factor > 1) {
			s.faultMu.Unlock()
			return writeError(w, http.StatusBadRequest,
				fmt.Sprintf("action \"slow\" needs factor > 1, got %g", req.Factor))
		}
		for _, l := range links {
			fs.SlowLinks = append(fs.SlowLinks, topology.SlowLink{Link: l, Factor: req.Factor})
		}
	case "restore":
		fs = restoreFaults(fs, links, req.Nodes)
	case "clear":
		fs = topology.FaultSet{}
	default:
		s.faultMu.Unlock()
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown action %q (valid: down, slow, restore, clear)", req.Action))
	}
	// Overlay canonicalizes and validates the merged set against the
	// base fabric (in-range nodes, adjacent endpoints, sane factors).
	d, err := topology.Overlay(base, fs)
	if err != nil {
		s.faultMu.Unlock()
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	canon := d.Faults()
	digest := d.HealthDigest()
	if canon.Empty() {
		delete(s.faults, name)
	} else {
		s.faults[name] = canon
	}
	s.faultMu.Unlock()
	s.faultUpdates.Add(1)

	// Retire plans computed under a now-superseded fault digest. Bare
	// lines stay: they are the last-known-good fallback and stay correct
	// for the healthy fabric.
	invalidated := s.cache.InvalidateWhere(func(_, topo string) bool {
		b, dg := topology.SplitSpec(topo)
		return b == name && dg != "" && dg != digest
	})

	resp := FaultsResponse{
		Topology:    name,
		Health:      digest,
		Operational: d.Operational() == nil,
		DeadNodes:   canon.DeadNodes,
		Invalidated: invalidated,
	}
	for _, l := range canon.DeadLinks {
		resp.DeadLinks = append(resp.DeadLinks, l.String())
	}
	for _, sl := range canon.SlowLinks {
		resp.SlowLinks = append(resp.SlowLinks, fmt.Sprintf("%d-%d:%g", sl.A, sl.B, sl.Factor))
	}
	s.cfg.Logger.Info("fault state updated", "component", "faults",
		"action", req.Action, "topology", name, "health", digest,
		"operational", resp.Operational, "lines_retired", invalidated)

	// Fan the accepted update out to live peers so digest-keyed
	// invalidation stays fleet-consistent. Forwarded copies carry a
	// loop-guard header and are never re-forwarded; failures are
	// best-effort (logged + counted), never the client's problem.
	if s.cfg.Cluster != nil && r.Header.Get(cluster.ForwardedHeader) == "" {
		body, err := json.Marshal(req)
		if err == nil {
			resp.Forwarded, resp.ForwardFailed = s.cfg.Cluster.ForwardFaults(r.Context(), body)
		} else {
			s.cfg.Logger.Error("cannot marshal fault update for forwarding", "component", "faults", "error", err)
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// restoreFaults removes the named links and nodes from a fault set.
func restoreFaults(fs topology.FaultSet, links []topology.Link, nodes []int) topology.FaultSet {
	linkGone := make(map[[2]int]bool, len(links))
	for _, l := range links {
		lo, hi := l.A, l.B
		if lo > hi {
			lo, hi = hi, lo
		}
		linkGone[[2]int{lo, hi}] = true
	}
	nodeGone := make(map[int]bool, len(nodes))
	for _, p := range nodes {
		nodeGone[p] = true
	}
	out := topology.FaultSet{}
	for _, p := range fs.DeadNodes {
		if !nodeGone[p] {
			out.DeadNodes = append(out.DeadNodes, p)
		}
	}
	for _, l := range fs.DeadLinks {
		if !linkGone[[2]int{l.A, l.B}] {
			out.DeadLinks = append(out.DeadLinks, l)
		}
	}
	for _, sl := range fs.SlowLinks {
		if !linkGone[[2]int{sl.A, sl.B}] {
			out.SlowLinks = append(out.SlowLinks, sl)
		}
	}
	return out
}

// applyFaults wraps base with the fabric's current fault set. A network
// that already is a degraded overlay (the client asked for an explicit
// fault digest) passes through untouched. The returned digest is "ok"
// for a healthy fabric.
func (s *Server) applyFaults(base topology.Network) (topology.Network, string, error) {
	if dg, ok := base.(*topology.Degraded); ok {
		return base, dg.HealthDigest(), nil
	}
	s.faultMu.Lock()
	fs, ok := s.faults[base.Name()]
	s.faultMu.Unlock()
	if !ok || fs.Empty() {
		return base, "ok", nil
	}
	d, err := topology.Overlay(base, fs)
	if err != nil {
		return nil, "", fmt.Errorf("applying fault set to %s: %w", base.Name(), err)
	}
	return d, d.HealthDigest(), nil
}

// planFor answers one plan query under the fabric's current fault
// state. On a healthy fabric it is exactly the cache lookup. Under
// faults it plans on the degraded overlay; if that fails (a severed
// fabric cannot be planned, a build error), it degrades gracefully:
// the healthy base fabric's plan is served flagged degraded — a
// last-known-good answer that ignores the faults — and a bounded-retry
// background rebuild is scheduled.
func (s *Server) planFor(ctx context.Context, machine string, base topology.Network, m int) (p plancache.Plan, health string, degraded bool, err error) {
	net, digest, err := s.applyFaults(base)
	if err != nil {
		return plancache.Plan{}, "", false, err
	}
	p, err = s.cache.GetForCtx(ctx, machine, net, m)
	if err == nil {
		return p, digest, false, nil
	}
	if digest == "ok" || net == base {
		// Healthy fabric, or an explicit degraded spec from the client:
		// no fallback, the error is the answer.
		return plancache.Plan{}, "", false, err
	}
	if ctx.Err() != nil {
		// The client is gone; don't burn a last-known-good lookup or a
		// rebuild on an answer nobody is waiting for.
		return plancache.Plan{}, "", false, err
	}
	lkg, lerr := s.cache.GetForCtx(ctx, machine, base, m)
	if lerr != nil {
		return plancache.Plan{}, "", false, err
	}
	s.degradedServes.Add(1)
	s.scheduleRebuild(machine, base)
	return lkg, digest, true, nil
}

// scheduleRebuild starts (at most one per (machine, fabric)) a
// background goroutine that retries building the degraded plan line
// with exponential backoff. Each attempt re-reads the fabric's current
// fault set, so an operator restoring hardware mid-retry is picked up.
func (s *Server) scheduleRebuild(machine string, base topology.Network) {
	key := machine + "\x00" + base.Name()
	s.faultMu.Lock()
	if s.rebuilding[key] {
		s.faultMu.Unlock()
		return
	}
	s.rebuilding[key] = true
	s.faultMu.Unlock()
	go s.rebuild(key, machine, base)
}

func (s *Server) rebuild(key, machine string, base topology.Network) {
	defer func() {
		s.faultMu.Lock()
		delete(s.rebuilding, key)
		s.faultMu.Unlock()
	}()
	backoff := s.cfg.RebuildBackoff
	var lastErr error
	for attempt := 1; attempt <= s.cfg.RebuildAttempts; attempt++ {
		if attempt > 1 {
			time.Sleep(backoff)
			backoff *= 2
		}
		net, digest, err := s.applyFaults(base)
		if err != nil {
			lastErr = err
			continue
		}
		if digest == "ok" {
			// Faults were cleared while we were backing off; the bare
			// line is the right answer again.
			return
		}
		if _, err := s.cache.WarmFor(machine, net); err != nil {
			lastErr = err
			continue
		}
		s.rebuilds.Add(1)
		s.cfg.Logger.Info("rebuilt degraded line", "component", "faults",
			"machine", machine, "topology", net.Name(), "attempts", attempt)
		return
	}
	s.rebuildFailures.Add(1)
	s.cfg.Logger.Warn("giving up rebuilding degraded line", "component", "faults",
		"machine", machine, "topology", base.Name(),
		"attempts", s.cfg.RebuildAttempts, "error", lastErr)
}

// FaultMetrics is the fault-handling slice of /metrics.
type FaultMetrics struct {
	// ActiveFaultSets counts fabrics currently carrying faults.
	ActiveFaultSets int `json:"active_fault_sets"`
	// Updates counts accepted POST /v1/faults operations.
	Updates int64 `json:"updates"`
	// DegradedServes counts plan answers served from last-known-good
	// state because the degraded fabric could not be planned.
	DegradedServes int64 `json:"degraded_serves"`
	// Rebuilds and RebuildFailures count background rebuild outcomes:
	// lines successfully rebuilt under fault state, and retry budgets
	// exhausted without one.
	Rebuilds        int64 `json:"rebuilds"`
	RebuildFailures int64 `json:"rebuild_failures"`
}

func (s *Server) faultMetrics() FaultMetrics {
	s.faultMu.Lock()
	active := len(s.faults)
	s.faultMu.Unlock()
	return FaultMetrics{
		ActiveFaultSets: active,
		Updates:         s.faultUpdates.Load(),
		DegradedServes:  s.degradedServes.Load(),
		Rebuilds:        s.rebuilds.Load(),
		RebuildFailures: s.rebuildFailures.Load(),
	}
}

// FaultTopologies lists the fabrics currently carrying fault state, for
// /healthz visibility.
func (s *Server) FaultTopologies() []string {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	out := make([]string, 0, len(s.faults))
	for name := range s.faults {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
