package service

import (
	"context"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/plancache"
)

// Peer-serving endpoints: the cluster layer's server side. A replica
// answers line fetches and snapshot fan-outs from its own cache; the
// handlers are registered unconditionally (they are harmless and
// useful for debugging standalone), but only cluster.FetchLine and
// cluster.WarmOwned are intended clients.

// handlePeerLine serves one cache line as plancache.LineData:
// GET /v1/peer/line?machine=...&topology=...
//
// The owner builds the line on demand when it is not resident — that
// is the point of ownership: the build happens once, here, instead of
// once per replica. The build runs detached from the request context:
// a fetcher whose per-attempt deadline fires mid-build must not abort
// the build, because its retry (or the next fetcher) then finds the
// line resident and serves in microseconds.
func (s *Server) handlePeerLine(w http.ResponseWriter, r *http.Request) int {
	q := r.URL.Query()
	machine := q.Get("machine")
	if machine == "" {
		machine = s.cfg.DefaultMachine
	}
	name, _, err := s.cache.Resolve(machine)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	spec := q.Get("topology")
	if spec == "" {
		return writeError(w, http.StatusBadRequest, "missing required parameter \"topology\"")
	}
	net, err := s.resolveTopo(spec, "")
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if ld, ok := s.cache.ExportLine(name, net.Name()); ok {
		return writeJSON(w, http.StatusOK, ld)
	}
	if _, err := s.cache.WarmForCtx(context.WithoutCancel(r.Context()), name, net); err != nil {
		return s.writeCacheError(w, r, err)
	}
	ld, ok := s.cache.ExportLine(name, net.Name())
	if !ok {
		// Built and evicted between the two calls — possible only under
		// extreme cache pressure; the fetcher's local fallback covers it.
		return writeError(w, http.StatusNotFound, "line not resident")
	}
	return writeJSON(w, http.StatusOK, ld)
}

// handlePeerSnapshot serves every resident line (degraded-overlay
// lines included) for a joining replica's warm fan-out.
func (s *Server) handlePeerSnapshot(w http.ResponseWriter, _ *http.Request) int {
	return writeJSON(w, http.StatusOK, plancache.Snapshot{
		Version: plancache.SnapshotVersion,
		Lines:   s.cache.ExportLines(),
	})
}

// ReadyResponse is the /readyz wire format.
type ReadyResponse struct {
	// Status is "ready" or "starting".
	Status  string  `json:"status"`
	UptimeS float64 `json:"uptime_s"`
	// Peers carries per-peer up/breaker state on a clustered daemon.
	Peers []cluster.PeerMetrics `json:"peers,omitempty"`
}

// handleReadyz reports readiness: 200 only after the daemon finished
// snapshot restore, warmup, and (when clustered) ring join + warm
// fan-out. /healthz stays pure liveness — a starting replica is alive
// (peers may probe it) but not yet a good routing target.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) int {
	resp := ReadyResponse{UptimeS: time.Since(s.start).Seconds()}
	if s.cfg.Cluster != nil {
		resp.Peers = s.cfg.Cluster.PeerStates()
	}
	if !s.ready.Load() {
		resp.Status = "starting"
		w.Header().Set("Retry-After", "1")
		return writeJSON(w, http.StatusServiceUnavailable, resp)
	}
	resp.Status = "ready"
	return writeJSON(w, http.StatusOK, resp)
}
