package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/plancache"
	"repro/internal/topology"
)

// /v1/plan with a topology field must serve the optimizer's winner for
// that shape, echo the canonical spec, and answer later hits from cache.
func TestPlanEndpointTorus(t *testing.T) {
	ts := newTestServer(t)
	ref := optimize.New(model.IPSC860())
	net := topology.MustParseSpec("torus-4x4x4")
	for _, m := range []int{0, 40, 400} {
		var got PlanResponse
		getJSON(t, fmt.Sprintf("%s/v1/plan?machine=ipsc860&topology=torus-4x4x4&m=%d", ts.URL, m),
			http.StatusOK, &got)
		want, err := ref.BestOn(net, m)
		if err != nil {
			t.Fatal(err)
		}
		if got.Topology != "torus-4x4x4" || got.D != 3 {
			t.Errorf("m=%d: echoed topology %q d=%d", m, got.Topology, got.D)
		}
		if !partition.Partition(got.Partition).Equal(want.Part) {
			t.Errorf("m=%d: served %v, optimizer %v", m, got.Partition, want.Part)
		}
		if got.PredictedUS != want.TimeMicro {
			t.Errorf("m=%d: served %v µs, optimizer %v µs", m, got.PredictedUS, want.TimeMicro)
		}
	}
	// The hypercube path must keep answering (and declare its topology).
	var cube PlanResponse
	getJSON(t, ts.URL+"/v1/plan?d=6&m=40", http.StatusOK, &cube)
	if cube.Topology != "hypercube-6" {
		t.Errorf("hypercube plan topology = %q", cube.Topology)
	}
}

func TestPlanEndpointTopologyValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, q := range []string{
		"topology=torus-0x4&m=1",       // bad radix
		"topology=ring-9&m=1",          // unknown shape
		"topology=torus-4x4",           // missing m
		"m=1",                          // neither topology nor d
		"topology=torus-9999x9999&m=1", // over the serving bound
	} {
		getJSON(t, ts.URL+"/v1/plan?"+q, http.StatusBadRequest, nil)
	}
}

// /v1/cost with a topology must price an explicit grouping both ways.
func TestCostEndpointTorus(t *testing.T) {
	ts := newTestServer(t)
	var got CostResponse
	postJSON(t, ts.URL+"/v1/cost", CostRequest{
		Machine:   "ipsc860",
		Topology:  "torus-4x4",
		M:         32,
		Partition: []int{1, 1},
	}, http.StatusOK, &got)
	if got.Topology != "torus-4x4" || got.SimulatedUS <= 0 || got.PredictedUS <= 0 {
		t.Errorf("torus cost response: %+v", got)
	}
	// A grouping that does not cover the dimensions is a 400.
	postJSON(t, ts.URL+"/v1/cost", CostRequest{
		Topology: "torus-4x4", M: 32, Partition: []int{3},
	}, http.StatusBadRequest, nil)
	// An oversized torus is a 400 (simulation bound), not a 500.
	postJSON(t, ts.URL+"/v1/cost", CostRequest{
		Topology: "torus-128x128", M: 1, Partition: []int{2},
	}, http.StatusBadRequest, nil)
}

// /v1/hull and /v1/batch must accept topology fields.
func TestHullAndBatchTorus(t *testing.T) {
	ts := newTestServer(t)
	var hull HullResponse
	getJSON(t, ts.URL+"/v1/hull?machine=hypo&topology=torus-3x3", http.StatusOK, &hull)
	if hull.Topology != "torus-3x3" || len(hull.Segments) == 0 {
		t.Errorf("hull: %+v", hull)
	}

	var batch BatchResponse
	postJSON(t, ts.URL+"/v1/batch", BatchRequest{Queries: []BatchQuery{
		{Machine: "hypo", Topology: "torus-3x3", M: 24},
		{Machine: "hypo", D: 4, M: 24},
		{Machine: "hypo", Topology: "moebius-3", M: 24},
	}}, http.StatusOK, &batch)
	if len(batch.Results) != 3 {
		t.Fatalf("%d batch results", len(batch.Results))
	}
	if batch.Results[0].Plan == nil || batch.Results[0].Plan.Topology != "torus-3x3" {
		t.Errorf("batch torus item: %+v", batch.Results[0])
	}
	if batch.Results[1].Plan == nil || batch.Results[1].Plan.Topology != "hypercube-4" {
		t.Errorf("batch cube item: %+v", batch.Results[1])
	}
	if batch.Results[2].Error == "" {
		t.Error("bad topology in batch must carry a per-item error")
	}
}

// The PlanMaxDim bound must apply to non-hypercube topologies through
// their node count.
func TestPlanMaxDimBoundsTopologyNodes(t *testing.T) {
	srv, err := New(Config{Cache: plancache.New(plancache.Config{}), PlanMaxDim: 6})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	// 4x4x4 = 64 nodes = 2^6: exactly at the bound, allowed.
	getJSON(t, ts.URL+"/v1/plan?machine=hypo&topology=torus-4x4x4&m=1", http.StatusOK, nil)
	// 128 nodes: over the bound.
	getJSON(t, ts.URL+"/v1/plan?machine=hypo&topology=torus-8x4x4&m=1", http.StatusBadRequest, nil)
}
