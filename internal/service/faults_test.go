package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/plancache"
	"repro/internal/topology"
)

// newFaultTestServer wires a server with a fast rebuild loop so tests
// can watch the bounded retries finish.
func newFaultTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	// The full default sweep: the replan premise below (m=256 flips
	// grouping under a slow wire) needs the hull built past m=256.
	srv, err := New(Config{
		Cache:           plancache.New(plancache.Config{}),
		RebuildAttempts: 2,
		RebuildBackoff:  time.Millisecond,
		Logger:          slog.New(slog.DiscardHandler),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// A fault update re-plans the fabric: the served partition and cost
// switch to the degraded overlay's optimum, the response carries the
// health digest, and restoring the wire heals everything.
func TestFaultsReplanLifecycle(t *testing.T) {
	_, ts := newFaultTestServer(t)
	const m = 256
	planURL := fmt.Sprintf("%s/v1/plan?machine=ipsc860&topology=torus-4x4&m=%d", ts.URL, m)

	var healthy PlanResponse
	getJSON(t, planURL, http.StatusOK, &healthy)
	if healthy.Health != "ok" || healthy.Degraded {
		t.Fatalf("healthy fabric served health=%q degraded=%v", healthy.Health, healthy.Degraded)
	}

	var fr FaultsResponse
	postJSON(t, ts.URL+"/v1/faults", FaultsRequest{
		Topology: "torus-4x4", Action: "slow", Links: [][2]int{{0, 1}}, Factor: 5,
	}, http.StatusOK, &fr)
	if fr.Health != "sl=0-1:5" || !fr.Operational {
		t.Fatalf("faults response = %+v, want health sl=0-1:5, operational", fr)
	}

	var deg PlanResponse
	getJSON(t, planURL, http.StatusOK, &deg)
	if deg.Health != "sl=0-1:5" || deg.Degraded {
		t.Fatalf("degraded fabric served health=%q degraded=%v (want fresh degraded plan, not fallback)",
			deg.Health, deg.Degraded)
	}
	slow, err := topology.ParseSpec("torus-4x4!sl=0-1:5")
	if err != nil {
		t.Fatal(err)
	}
	want, err := optimize.New(model.IPSC860()).BestOn(slow, m)
	if err != nil {
		t.Fatal(err)
	}
	if !partition.Partition(deg.Partition).Equal(want.Part) || deg.PredictedUS != want.TimeMicro {
		t.Fatalf("degraded plan %v/%v µs, optimizer says %v/%v µs",
			deg.Partition, deg.PredictedUS, want.Part, want.TimeMicro)
	}
	if partition.Partition(deg.Partition).Equal(healthy.Partition) {
		t.Fatalf("slow wire did not change the winning grouping %v (test premise: it must)", deg.Partition)
	}

	// /healthz lists the degraded fabric; restore heals it.
	var hz HealthResponse
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &hz)
	if len(hz.DegradedFabrics) != 1 || hz.DegradedFabrics[0] != "torus-4x4" {
		t.Fatalf("degraded_fabrics = %v, want [torus-4x4]", hz.DegradedFabrics)
	}
	postJSON(t, ts.URL+"/v1/faults", FaultsRequest{
		Topology: "torus-4x4", Action: "restore", Links: [][2]int{{0, 1}},
	}, http.StatusOK, &fr)
	if fr.Health != "ok" {
		t.Fatalf("restore left health %q", fr.Health)
	}
	var healed PlanResponse
	getJSON(t, planURL, http.StatusOK, &healed)
	if healed.Health != "ok" || !partition.Partition(healed.Partition).Equal(healthy.Partition) {
		t.Fatalf("healed plan health=%q partition=%v, want ok/%v", healed.Health, healed.Partition, healthy.Partition)
	}
}

// When the degraded fabric cannot be planned at all (a dead node severs
// the exchange), the server degrades gracefully: the last-known-good
// healthy plan is served flagged degraded, the counters tick, and the
// bounded background rebuild exhausts its retries without taking the
// daemon down.
func TestDegradedFallbackServe(t *testing.T) {
	_, ts := newFaultTestServer(t)
	planURL := ts.URL + "/v1/plan?machine=ipsc860&topology=torus-4x4&m=40"

	var healthy PlanResponse
	getJSON(t, planURL, http.StatusOK, &healthy)

	var fr FaultsResponse
	postJSON(t, ts.URL+"/v1/faults", FaultsRequest{
		Topology: "torus-4x4", Action: "down", Nodes: []int{3},
	}, http.StatusOK, &fr)
	if fr.Operational {
		t.Fatal("fabric with a dead node reported operational")
	}

	var deg PlanResponse
	getJSON(t, planURL, http.StatusOK, &deg)
	if !deg.Degraded || deg.Health != "dn=3" {
		t.Fatalf("fallback serve = degraded=%v health=%q, want degraded dn=3", deg.Degraded, deg.Health)
	}
	if !partition.Partition(deg.Partition).Equal(healthy.Partition) || deg.PredictedUS != healthy.PredictedUS {
		t.Fatalf("fallback plan %v/%v µs, want last-known-good %v/%v µs",
			deg.Partition, deg.PredictedUS, healthy.Partition, healthy.PredictedUS)
	}

	// Batch queries degrade the same way.
	var br BatchResponse
	postJSON(t, ts.URL+"/v1/batch", BatchRequest{Queries: []BatchQuery{
		{Machine: "ipsc860", Topology: "torus-4x4", M: 40},
	}}, http.StatusOK, &br)
	if len(br.Results) != 1 || br.Results[0].Plan == nil || !br.Results[0].Plan.Degraded {
		t.Fatalf("batch under dead node = %+v, want one degraded plan", br.Results)
	}

	// The rebuild retries are bounded: it gives up and says so on
	// /metrics, alongside the degraded-serve count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var mr MetricsResponse
		getJSON(t, ts.URL+"/metrics", http.StatusOK, &mr)
		if mr.Faults.RebuildFailures >= 1 {
			if mr.Faults.DegradedServes < 2 {
				t.Fatalf("degraded_serves = %d, want ≥ 2", mr.Faults.DegradedServes)
			}
			if mr.Faults.ActiveFaultSets != 1 || mr.Faults.Updates != 1 {
				t.Fatalf("fault metrics = %+v", mr.Faults)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background rebuild never exhausted its retries")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restoring the node heals serving immediately.
	postJSON(t, ts.URL+"/v1/faults", FaultsRequest{
		Topology: "torus-4x4", Action: "restore", Nodes: []int{3},
	}, http.StatusOK, &fr)
	var healed PlanResponse
	getJSON(t, planURL, http.StatusOK, &healed)
	if healed.Degraded || healed.Health != "ok" {
		t.Fatalf("after restore: degraded=%v health=%q", healed.Degraded, healed.Health)
	}
}

// A successful background rebuild ticks the rebuilds counter: the first
// degraded serve happens while the overlay line is missing, and once
// the rebuild lands, the next request gets the real degraded plan.
// Forcing that window needs a fabric whose degraded build fails
// transiently — instead we pin the simpler invariant: a plannable
// degraded fabric never serves fallback, and a cleared fault set stops
// the rebuild loop.
func TestRebuildStopsWhenFaultsClear(t *testing.T) {
	srv, ts := newFaultTestServer(t)
	var fr FaultsResponse
	postJSON(t, ts.URL+"/v1/faults", FaultsRequest{
		Topology: "torus-4x4", Action: "down", Nodes: []int{3},
	}, http.StatusOK, &fr)
	getJSON(t, ts.URL+"/v1/plan?machine=ipsc860&topology=torus-4x4&m=40", http.StatusOK, &PlanResponse{})
	postJSON(t, ts.URL+"/v1/faults", FaultsRequest{Topology: "torus-4x4", Action: "clear"}, http.StatusOK, &fr)
	if fr.Health != "ok" {
		t.Fatalf("clear left health %q", fr.Health)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.faultMu.Lock()
		inflight := len(srv.rebuilding)
		srv.faultMu.Unlock()
		if inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebuild goroutine still running after faults cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// /v1/cost and /v1/hull answer on the degraded overlay: a slow wire
// raises both cost views, and the responses carry the digest.
func TestCostAndHullUnderFaults(t *testing.T) {
	_, ts := newFaultTestServer(t)
	req := CostRequest{Machine: "ipsc860", Topology: "torus-4x4", M: 64, Partition: []int{1, 1}}
	var healthy CostResponse
	postJSON(t, ts.URL+"/v1/cost", req, http.StatusOK, &healthy)

	var fr FaultsResponse
	postJSON(t, ts.URL+"/v1/faults", FaultsRequest{
		Topology: "torus-4x4", Action: "slow", Links: [][2]int{{0, 1}}, Factor: 4,
	}, http.StatusOK, &fr)

	var deg CostResponse
	postJSON(t, ts.URL+"/v1/cost", req, http.StatusOK, &deg)
	if deg.Health != "sl=0-1:4" {
		t.Fatalf("cost health = %q", deg.Health)
	}
	if deg.SimulatedUS <= healthy.SimulatedUS || deg.PredictedUS <= healthy.PredictedUS {
		t.Fatalf("slow wire did not raise costs: simulated %v→%v, predicted %v→%v",
			healthy.SimulatedUS, deg.SimulatedUS, healthy.PredictedUS, deg.PredictedUS)
	}

	var hull HullResponse
	getJSON(t, ts.URL+"/v1/hull?machine=ipsc860&topology=torus-4x4", http.StatusOK, &hull)
	if hull.Health != "sl=0-1:4" || hull.Topology != "torus-4x4!sl=0-1:4" {
		t.Fatalf("hull = health %q topology %q", hull.Health, hull.Topology)
	}
}

// Malformed fault operations are request errors, never fault state.
func TestFaultsValidation(t *testing.T) {
	_, ts := newFaultTestServer(t)
	for name, req := range map[string]FaultsRequest{
		"missing topology":  {Action: "down", Links: [][2]int{{0, 1}}},
		"unknown action":    {Topology: "torus-4x4", Action: "wobble"},
		"non-adjacent link": {Topology: "torus-4x4", Action: "down", Links: [][2]int{{0, 5}}},
		"out-of-range node": {Topology: "torus-4x4", Action: "down", Nodes: []int{99}},
		"slow sans factor":  {Topology: "torus-4x4", Action: "slow", Links: [][2]int{{0, 1}}},
		"slow on nodes":     {Topology: "torus-4x4", Action: "slow", Nodes: []int{1}, Factor: 2},
		"digest in spec":    {Topology: "torus-4x4!dl=0-1", Action: "clear"},
	} {
		postJSON(t, ts.URL+"/v1/faults", req, http.StatusBadRequest, nil)
		var mr MetricsResponse
		getJSON(t, ts.URL+"/metrics", http.StatusOK, &mr)
		if mr.Faults.Updates != 0 || mr.Faults.ActiveFaultSets != 0 {
			t.Fatalf("%s: rejected request mutated fault state: %+v", name, mr.Faults)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/faults")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/faults = %d, want 405", resp.StatusCode)
	}
}

// A panicking handler costs one 500 and a panics_total tick, not the
// daemon.
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv, err := New(Config{
		Cache:  plancache.New(plancache.Config{}),
		Logger: slog.New(slog.DiscardHandler),
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := srv.instrument("/boom", http.MethodGet, func(http.ResponseWriter, *http.Request) int {
		panic("handler bug")
	})
	rec := httptest.NewRecorder()
	boom(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", rec.Code)
	}
	if got := srv.panics.Load(); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	// The endpoint's error counter saw it too.
	if e := srv.endpoint("/boom").errors.Load(); e != 1 {
		t.Fatalf("endpoint errors = %d, want 1", e)
	}
}
