package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/plancache"
)

func TestReadyzGatesOnSetReady(t *testing.T) {
	srv, err := New(Config{Cache: plancache.New(plancache.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("starting /readyz missing Retry-After")
	}
	// Liveness must not be gated: a starting replica answers /healthz so
	// peers can probe it.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while starting: %v %v", resp.StatusCode, err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	srv.SetReady(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyResponse
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("/readyz after SetReady: %d %q", resp.StatusCode, ready.Status)
	}
}

func TestPeerLineBuildsOnDemandAndServes(t *testing.T) {
	cache := plancache.New(plancache.Config{})
	srv, err := New(Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func() plancache.LineData {
		t.Helper()
		resp, err := http.Get(ts.URL + cluster.PeerLinePath + "?machine=ipsc860&topology=hypercube-4")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("peer line: %d %s", resp.StatusCode, body)
		}
		var ld plancache.LineData
		if err := json.NewDecoder(resp.Body).Decode(&ld); err != nil {
			t.Fatal(err)
		}
		return ld
	}

	ld := get()
	if ld.Machine != "ipsc860" || ld.Topology != "hypercube-4" || len(ld.Segments) == 0 {
		t.Fatalf("served line %+v", ld)
	}
	if builds := cache.Stats().Builds; builds != 1 {
		t.Fatalf("owner built %d times, want on-demand build of 1", builds)
	}
	get() // resident now: served without another build
	if builds := cache.Stats().Builds; builds != 1 {
		t.Fatalf("resident line rebuilt (%d builds)", builds)
	}

	// The served document round-trips through a second cache's import.
	other := plancache.New(plancache.Config{})
	if err := other.ImportLine(ld); err != nil {
		t.Fatalf("peer-served line rejected by import: %v", err)
	}

	resp, err := http.Get(ts.URL + cluster.PeerLinePath + "?machine=ipsc860")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing topology param: %d, want 400", resp.StatusCode)
	}
}

func TestPeerSnapshotServesResidentLines(t *testing.T) {
	cache := plancache.New(plancache.Config{})
	if _, err := cache.Warm("ipsc860", 3); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + cluster.PeerSnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap plancache.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != plancache.SnapshotVersion {
		t.Fatalf("snapshot version %d, want %d", snap.Version, plancache.SnapshotVersion)
	}
	found := false
	for _, ld := range snap.Lines {
		if ld.Machine == "ipsc860" && ld.Topology == "hypercube-3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("warmed line missing from peer snapshot: %+v", snap.Lines)
	}
}

func TestOverloadMapsTo503WithRetryAfter(t *testing.T) {
	srv, err := New(Config{Cache: plancache.New(plancache.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, "/v1/plan?d=4&m=8", nil)
	code := srv.writeCacheError(w, r, fmt.Errorf("plancache: building x: %w", plancache.ErrOverloaded))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overload mapped to %d, want 503", code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 shed missing Retry-After")
	}
	var m MetricsResponse
	mw := httptest.NewRecorder()
	srv.handleMetrics(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if err := json.NewDecoder(mw.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Shed != 1 {
		t.Fatalf("shed_total = %d, want 1", m.Shed)
	}
}

func TestClientDisconnectMapsTo499(t *testing.T) {
	srv, err := New(Config{Cache: plancache.New(plancache.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	// A request whose context already ended (the client hung up) must
	// not burn a hull build; the cache surfaces ctx.Err() and the
	// handler records a 499, not a 4xx/5xx lie.
	r := httptest.NewRequest(http.MethodGet, "/v1/plan?machine=ipsc860&d=9&m=8", nil)
	ctx, cancel := context.WithCancel(r.Context())
	r = r.WithContext(ctx)
	cancel()
	w := httptest.NewRecorder()
	code := srv.handlePlan(w, r)
	if code != statusClientClosedRequest {
		t.Fatalf("cancelled request mapped to %d, want 499", code)
	}
	if srv.earlyAborts.Load() != 1 {
		t.Fatalf("early_aborts_total = %d, want 1", srv.earlyAborts.Load())
	}
	if builds := srv.cache.Stats().Builds; builds != 0 {
		t.Fatalf("cancelled request still built %d lines", builds)
	}
}

func TestFaultUpdatesForwardToPeers(t *testing.T) {
	type capture struct {
		header string
		body   string
	}
	var got atomic.Pointer[capture]
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/faults" {
			io.WriteString(w, `{"status":"ok"}`) // the health probe
			return
		}
		body, _ := io.ReadAll(r.Body)
		got.Store(&capture{header: r.Header.Get(cluster.ForwardedHeader), body: string(body)})
		io.WriteString(w, `{}`)
	}))
	defer peer.Close()

	clu, err := cluster.New(cluster.Config{Self: "http://self.invalid:1", Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Cache: plancache.New(plancache.Config{}), Cluster: clu})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"topology":"hypercube-3","action":"slow","links":[[0,1]],"factor":2}`
	resp, err := http.Post(ts.URL+"/v1/faults", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var fr FaultsResponse
	json.NewDecoder(resp.Body).Decode(&fr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faults update: %d", resp.StatusCode)
	}
	if fr.Forwarded != 1 || fr.ForwardFailed != 0 {
		t.Fatalf("forward counts (%d, %d), want (1, 0)", fr.Forwarded, fr.ForwardFailed)
	}
	c := got.Load()
	if c == nil || c.header == "" {
		t.Fatal("peer did not receive a loop-guarded forward")
	}
	if !strings.Contains(c.body, `"slow"`) {
		t.Fatalf("forwarded body %q lost the action", c.body)
	}

	// A forwarded copy must apply locally but never re-forward.
	got.Store(nil)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/faults",
		strings.NewReader(`{"topology":"hypercube-3","action":"clear"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var fr2 FaultsResponse
	json.NewDecoder(resp.Body).Decode(&fr2)
	resp.Body.Close()
	if fr2.Forwarded != 0 {
		t.Fatal("forwarded copy was re-forwarded — loop guard broken")
	}
	if got.Load() != nil {
		t.Fatal("peer received a second-hop forward")
	}
}

func TestMetricsCarriesClusterSection(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{}`)
	}))
	defer peer.Close()
	clu, err := cluster.New(cluster.Config{Self: "http://self.invalid:1", Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Cache: plancache.New(plancache.Config{}), Cluster: clu})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var m MetricsResponse
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if m.Cluster == nil {
		t.Fatal("/metrics missing the cluster section on a clustered server")
	}
	if len(m.Cluster.Peers) != 1 || m.Cluster.Peers[0].Breaker != "closed" {
		t.Fatalf("cluster peer states: %+v", m.Cluster.Peers)
	}

	// Standalone: the section must be absent so the pre-cluster wire
	// format is bit-identical.
	alone := newTestServer(t)
	resp, err = http.Get(alone.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Contains(raw, []byte(`"cluster"`)) {
		t.Fatal("standalone /metrics grew a cluster section")
	}
}
