package core

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/plancache"
	"repro/internal/topology"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(-1, model.IPSC860()); err == nil {
		t.Error("negative dim must fail")
	}
	s, err := NewSystem(5, model.IPSC860())
	if err != nil || s.Dim() != 5 || s.Nodes() != 32 {
		t.Fatalf("NewSystem: %v %v", s, err)
	}
	if s.Params().Lambda != 95.0 {
		t.Error("Params accessor")
	}
}

func TestMustNewSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewSystem(-1) must panic")
		}
	}()
	MustNewSystem(-1, model.IPSC860())
}

func TestCompleteExchangeAutoTunes(t *testing.T) {
	s := MustNewSystem(6, model.IPSC860())
	res, err := s.CompleteExchange(40)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 5: at 40 bytes on d=6 the best partition is {3,3}.
	if !res.Partition.Canonical().Equal(partition.Partition{3, 3}) {
		t.Errorf("partition = %v, want {3,3}", res.Partition)
	}
	if res.SimulatedMicros <= 0 || res.PredictedMicros <= 0 {
		t.Error("times must be positive")
	}
	if res.ContentionStall != 0 {
		t.Errorf("paper schedule must be contention-free, stall=%v", res.ContentionStall)
	}
	if !res.DataVerified {
		t.Error("the simulated fabric carries real data, so every exchange is verified")
	}
}

func TestPredictionMatchesSimulation(t *testing.T) {
	s := MustNewSystem(5, model.IPSC860())
	for _, m := range []int{1, 40, 200} {
		res, err := s.CompleteExchange(m)
		if err != nil {
			t.Fatal(err)
		}
		diff := res.SimulatedMicros - res.PredictedMicros
		if diff < -1e-6 || diff > 1e-6 {
			t.Errorf("m=%d: sim %v != pred %v", m, res.SimulatedMicros, res.PredictedMicros)
		}
	}
}

func TestExchangeWithExplicitPartition(t *testing.T) {
	s := MustNewSystem(5, model.IPSC860())
	res, err := s.ExchangeWith(24, partition.Partition{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partition.Equal(partition.Partition{2, 3}) {
		t.Errorf("partition = %v", res.Partition)
	}
	if _, err := s.ExchangeWith(24, partition.Partition{4}); err == nil {
		t.Error("invalid partition must fail")
	}
}

func TestVerifiedExchange(t *testing.T) {
	s := MustNewSystem(4, model.IPSC860())
	res, err := s.VerifiedExchange(8, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DataVerified {
		t.Error("DataVerified must be set")
	}
}

func TestBestPartitionDelegates(t *testing.T) {
	s := MustNewSystem(7, model.IPSC860())
	p, err := s.BestPartition(40)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 6: {3,4} wins at 40 bytes on d=7.
	if !p.Canonical().Equal(partition.Partition{4, 3}) {
		t.Errorf("best = %v, want {3,4}", p)
	}
}

func TestPredictValidation(t *testing.T) {
	s := MustNewSystem(5, model.IPSC860())
	if _, err := s.Predict(10, partition.Partition{9}); err == nil {
		t.Error("bad partition must fail")
	}
	v, err := s.Predict(10, partition.Partition{2, 3})
	if err != nil || v <= 0 {
		t.Errorf("Predict: %v %v", v, err)
	}
}

func TestZeroDimSystem(t *testing.T) {
	s := MustNewSystem(0, model.IPSC860())
	res, err := s.CompleteExchange(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedMicros != 0 || res.PredictedMicros != 0 {
		t.Errorf("0-cube exchange must be free: %+v", res)
	}
	if v, err := s.Predict(5, nil); err != nil || v != 0 {
		t.Errorf("0-cube predict: %v %v", v, err)
	}
}

func TestPlanAccessor(t *testing.T) {
	s := MustNewSystem(5, model.IPSC860())
	p, err := s.Plan(16, partition.Partition{2, 3})
	if err != nil || p.Dim() != 5 {
		t.Fatalf("Plan: %v %v", p, err)
	}
}

func TestErrorPaths(t *testing.T) {
	s := MustNewSystem(3, model.IPSC860())
	// Negative block sizes propagate from the optimizer.
	if _, err := s.CompleteExchange(-1); err == nil {
		t.Error("negative block must fail")
	}
	if _, err := s.VerifiedExchange(-1, time.Second); err == nil {
		t.Error("negative block must fail in VerifiedExchange")
	}
	if _, err := s.BestPartition(-1); err == nil {
		t.Error("negative block must fail in BestPartition")
	}
}

// A torus System must run verified auto-tuned exchanges end-to-end: the
// optimizer picks the grouping, the simulated fabric moves and checks
// real payloads, and the discrete-event replay prices the schedule.
func TestSystemOnTorus(t *testing.T) {
	topo, err := topology.ParseSpec("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemOn(topo, model.IPSC860())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Nodes() != 16 || sys.Dim() != 2 || sys.Topology().Name() != "torus-4x4" {
		t.Fatalf("system basics: %d nodes, %d dims", sys.Nodes(), sys.Dim())
	}
	res, err := sys.CompleteExchange(40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DataVerified || res.SimulatedMicros <= 0 {
		t.Fatalf("torus exchange: %+v", res)
	}
	best, err := optimize.New(model.IPSC860()).BestOn(topo, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partition.Equal(best.Part) {
		t.Errorf("system used %v, optimizer wants %v", res.Partition, best.Part)
	}
	// Explicit groupings run too, and order matters on request.
	for _, D := range []partition.Partition{{2}, {1, 1}} {
		r, err := sys.ExchangeWith(16, D)
		if err != nil {
			t.Fatalf("%v: %v", D, err)
		}
		if !r.DataVerified {
			t.Errorf("%v: not verified", D)
		}
	}
}

// A torus System attached to a shared plan cache must resolve its
// partitions by hull lookup under the torus key.
func TestTorusSystemUsesPlanCache(t *testing.T) {
	topo, err := topology.ParseSpec("torus-3x3")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemOn(topo, model.Hypothetical())
	if err != nil {
		t.Fatal(err)
	}
	pc := plancache.New(plancache.Config{SweepHi: 64})
	if err := sys.UsePlanCache(pc, "hypo"); err != nil {
		t.Fatal(err)
	}
	part, err := sys.BestPartition(24)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pc.LookupOn("hypo", "torus-3x3", 24)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Equal(want) {
		t.Errorf("system %v, cache %v", part, want)
	}
	if s := pc.Stats(); s.Lines != 1 || s.Builds != 1 {
		t.Errorf("cache stats after torus lookups: %+v", s)
	}
}
