package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/plancache"
)

func TestPlanCacheFastPathMatchesOptimizer(t *testing.T) {
	pc := plancache.New(plancache.Config{})
	cached := MustNewSystem(6, model.IPSC860())
	if err := cached.UsePlanCache(pc, "ipsc860"); err != nil {
		t.Fatal(err)
	}
	direct := MustNewSystem(6, model.IPSC860())

	for _, m := range []int{0, 8, 40, 200} {
		want, err := direct.BestPartition(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.BestPartition(m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("m=%d: cached %v, direct %v", m, got, want)
		}
	}

	// The full exchange path works through the cache too.
	res, err := cached.CompleteExchange(40)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := direct.CompleteExchange(40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partition.Equal(ref.Partition) || res.SimulatedMicros != ref.SimulatedMicros {
		t.Errorf("cached exchange %v/%v, direct %v/%v",
			res.Partition, res.SimulatedMicros, ref.Partition, ref.SimulatedMicros)
	}
	if !res.DataVerified {
		t.Error("cached exchange skipped data verification")
	}
}

func TestPlanCacheFastPathSharesLines(t *testing.T) {
	pc := plancache.New(plancache.Config{})
	a := MustNewSystem(6, model.IPSC860())
	b := MustNewSystem(6, model.IPSC860())
	for _, s := range []*System{a, b} {
		if err := s.UsePlanCache(pc, "ipsc860"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.BestPartition(40); err != nil {
		t.Fatal(err)
	}
	if _, err := b.BestPartition(80); err != nil {
		t.Fatal(err)
	}
	if s := pc.Stats(); s.Builds != 1 {
		t.Errorf("two Systems cost %d builds, want 1 shared line", s.Builds)
	}
}

func TestUsePlanCacheRejectsParamMismatch(t *testing.T) {
	pc := plancache.New(plancache.Config{})
	s := MustNewSystem(6, model.Ncube2())
	if err := s.UsePlanCache(pc, "ipsc860"); err == nil {
		t.Error("expected error attaching ipsc860 cache to an Ncube-2 system")
	}
	// A machine the cache cannot serve is rejected at attach time, not
	// on the first request.
	restricted := plancache.New(plancache.Config{
		Machines: map[string]model.Params{"hypo": model.Hypothetical()},
	})
	ipsc := MustNewSystem(6, model.IPSC860())
	if err := ipsc.UsePlanCache(restricted, "ipsc860"); err == nil {
		t.Error("expected error attaching a machine the cache does not serve")
	}
	if err := s.UsePlanCache(pc, "ncube2"); err != nil {
		t.Errorf("matching machine rejected: %v", err)
	}
	// Detach restores the private optimizer path.
	if err := s.UsePlanCache(nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BestPartition(40); err != nil {
		t.Fatal(err)
	}
}
