// Package core is the top-level entry point of the library: it ties the
// machine model, the partition optimizer, the circuit-switched network
// simulator and the executable exchange plans together behind one facade.
//
// Typical use:
//
//	sys := core.NewSystem(6, model.IPSC860())     // 64-node iPSC-860
//	res, err := sys.CompleteExchange(40)           // auto-tuned partition
//	fmt.Println(res.Partition, res.SimulatedMicros)
//
// The System chooses the optimal multiphase partition for each block size
// by enumerating the p(d) partitions of the cube dimension (§6), then
// runs the exchange once on the simulated fabric, which both moves real
// payloads (machine-checking the data movement) and measures the
// virtual-time cost on the discrete-event network simulator.
package core

import (
	"fmt"
	"time"

	"repro/internal/exchange"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/plancache"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// System is a configured machine: an interconnect topology (hypercube,
// torus or mesh) plus performance parameters. It is safe for concurrent
// use.
type System struct {
	dim  int // topology dimension count (the cube dimension on a hypercube)
	prm  model.Params
	opt  *optimize.Optimizer
	topo topology.Network

	// pc, when set, answers partition selection from the shared plan
	// cache (hull-segment lookup) instead of this System's private
	// optimizer. See UsePlanCache.
	pc        *plancache.Cache
	pcMachine string
}

// NewSystem returns a system for a d-dimensional cube with the given
// machine parameters.
func NewSystem(d int, prm model.Params) (*System, error) {
	cube, err := topology.New(d)
	if err != nil {
		return nil, err
	}
	return NewSystemOn(cube, prm)
}

// NewSystemOn returns a system over any topology — the entry point for
// torus and mesh machines, e.g.
//
//	topo, _ := topology.ParseSpec("torus-4x4x4")
//	sys, _ := core.NewSystemOn(topo, model.IPSC860())
func NewSystemOn(topo topology.Network, prm model.Params) (*System, error) {
	if topo == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	if topo.Nodes() > 1<<20 {
		return nil, fmt.Errorf("core: %s exceeds the system limit of 2^20 nodes", topo.Name())
	}
	return &System{dim: topo.NumDims(), prm: prm, opt: optimize.New(prm), topo: topo}, nil
}

// MustNewSystem is NewSystem, panicking on error.
func MustNewSystem(d int, prm model.Params) *System {
	s, err := NewSystem(d, prm)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the number of topology dimensions (the cube dimension on a
// hypercube).
func (s *System) Dim() int { return s.dim }

// Topology returns the system's interconnect.
func (s *System) Topology() topology.Network { return s.topo }

// Nodes returns the node count.
func (s *System) Nodes() int { return s.topo.Nodes() }

// Params returns the machine parameters.
func (s *System) Params() model.Params { return s.prm }

// UsePlanCache routes this System's partition selection through a shared
// plan cache under the given machine name: CompleteExchange,
// VerifiedExchange and BestPartition resolve their block size by hull-
// segment lookup (building the hull once per (machine, d) across every
// System and daemon sharing the cache) instead of enumerating on the
// System's private optimizer. The named machine's parameters must match
// the System's own, otherwise the cached plans would be answers to a
// different question.
func (s *System) UsePlanCache(pc *plancache.Cache, machine string) error {
	if pc == nil {
		s.pc, s.pcMachine = nil, ""
		return nil
	}
	// Resolve through the cache itself, so a machine the cache cannot
	// serve is rejected here rather than on every later request.
	name, prm, err := pc.Resolve(machine)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if prm != s.prm {
		return fmt.Errorf("core: plan cache machine %q has different parameters than this System", machine)
	}
	s.pc, s.pcMachine = pc, name
	return nil
}

// bestPartition picks the partition for a block size: from the shared
// plan cache when attached, else from the private optimizer.
func (s *System) bestPartition(block int) (partition.Partition, error) {
	if s.pc != nil {
		return s.pc.LookupFor(s.pcMachine, s.topo, block)
	}
	c, err := s.opt.BestOn(s.topo, block)
	if err != nil {
		return nil, err
	}
	return c.Part, nil
}

// Result describes one complete exchange.
type Result struct {
	// Block is the per-destination block size in bytes.
	Block int
	// Partition is the multiphase partition used.
	Partition partition.Partition
	// PredictedMicros is the analytic model's time (eq. 3 summed).
	PredictedMicros float64
	// SimulatedMicros is the network simulator's makespan.
	SimulatedMicros float64
	// ContentionStall is the simulator's total circuit wait time; zero
	// for the paper's schedules.
	ContentionStall float64
	// DataVerified reports whether the run also moved real payloads with
	// the complete-exchange postcondition checked on every node. Since
	// the simulated fabric carries both data and time, every successful
	// exchange is verified.
	DataVerified bool
}

// CompleteExchange runs an auto-tuned multiphase complete exchange of the
// given block size: the optimizer picks the best partition, and one run
// on the simulated fabric both verifies the data movement and measures
// the virtual-time cost.
func (s *System) CompleteExchange(block int) (Result, error) {
	part, err := s.bestPartition(block)
	if err != nil {
		return Result{}, err
	}
	return s.ExchangeWith(block, part)
}

// ExchangeWith runs a complete exchange with an explicit partition.
func (s *System) ExchangeWith(block int, D partition.Partition) (Result, error) {
	return s.exchange(block, D, fabric.DefaultSimTimeout)
}

// VerifiedExchange is CompleteExchange with an explicit watchdog timeout
// on the data-movement half of the run. (Historically this was a second,
// separate execution on the goroutine runtime; the unified fabric now
// verifies payloads and measures time in the same run.)
func (s *System) VerifiedExchange(block int, timeout time.Duration) (Result, error) {
	part, err := s.bestPartition(block)
	if err != nil {
		return Result{}, err
	}
	return s.exchange(block, part, timeout)
}

// exchange runs one plan on a fresh simulated fabric: real payloads move
// and are verified while the discrete-event simulator prices the
// schedule.
func (s *System) exchange(block int, D partition.Partition, timeout time.Duration) (Result, error) {
	plan, err := s.newPlan(block, D)
	if err != nil {
		return Result{}, err
	}
	pred, _, err := s.prm.MultiphaseOn(s.topo, block, plan.Partition())
	if err != nil {
		return Result{}, err
	}
	fab := fabric.NewSim(simnet.New(s.topo, s.prm))
	if err := plan.RunOn(fab, timeout); err != nil {
		return Result{}, fmt.Errorf("core: exchange failed: %w", err)
	}
	sim, err := fab.Result()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Block:           block,
		Partition:       plan.Partition(),
		PredictedMicros: pred,
		SimulatedMicros: sim.Makespan,
		ContentionStall: sim.ContentionStall,
		DataVerified:    true,
	}, nil
}

// BestPartition returns the optimizer's choice for a block size (served
// from the shared plan cache when one is attached).
func (s *System) BestPartition(block int) (partition.Partition, error) {
	return s.bestPartition(block)
}

// Plan returns an executable plan for an explicit partition, for callers
// that want direct access to the exchange layer.
func (s *System) Plan(block int, D partition.Partition) (*exchange.Plan, error) {
	return s.newPlan(block, D)
}

func (s *System) newPlan(block int, D partition.Partition) (*exchange.Plan, error) {
	if s.dim == 0 {
		return exchange.NewPlanOn(s.topo, block, nil)
	}
	return exchange.NewPlanOn(s.topo, block, D)
}

// Predict returns the analytic multiphase time for an explicit partition.
func (s *System) Predict(block int, D partition.Partition) (float64, error) {
	if s.dim == 0 {
		return 0, nil
	}
	t, _, err := s.prm.MultiphaseOn(s.topo, block, D)
	if err != nil {
		return 0, fmt.Errorf("core: %v is not a grouping of %s: %w", D, s.topo.Name(), err)
	}
	return t, nil
}
