package collectives

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/topology"
)

var compileMachines = []struct {
	name string
	prm  model.Params
}{
	{"hypothetical", model.Hypothetical()},
	{"ipsc860", model.IPSC860()},
}

// The compiled per-node programs of every collective must be op-for-op
// identical to the programs a live fabric.Sim run records, across
// machines, dimensions, roots and block sizes (including zero-byte
// blocks) — the recorded traces are the compiler's oracle.
func TestCompiledCollectivesMatchRecordedTraces(t *testing.T) {
	kinds := []Kind{Broadcast, Scatter, Gather, AllGather}
	for _, mc := range compileMachines {
		for _, d := range []int{0, 1, 2, 3, 4} {
			n := 1 << uint(d)
			roots := []int{0}
			if n > 1 {
				roots = append(roots, n-1, n/2)
			}
			for _, root := range roots {
				for _, m := range []int{0, 7, 64} {
					for _, k := range kinds {
						fab := fabric.NewSim(simnet.New(topology.MustNew(d), mc.prm))
						if err := RunOn(k, fab, m, root, fabric.DefaultSimTimeout); err != nil {
							t.Fatalf("%s %v d=%d m=%d root=%d: %v", mc.name, k, d, m, root, err)
						}
						compiled, err := Compile(k, d, m, root)
						if err != nil {
							t.Fatal(err)
						}
						recorded := fab.Traces()
						for p := 0; p < n; p++ {
							if len(compiled[p]) != len(recorded[p]) {
								t.Fatalf("%s %v d=%d m=%d root=%d node %d: compiled %d ops, recorded %d\ncompiled %v\nrecorded %v",
									mc.name, k, d, m, root, p,
									len(compiled[p]), len(recorded[p]), compiled[p], recorded[p])
							}
							for i := range recorded[p] {
								if compiled[p][i] != recorded[p][i] {
									t.Fatalf("%s %v d=%d m=%d root=%d node %d op %d: compiled %+v, recorded %+v",
										mc.name, k, d, m, root, p, i, compiled[p][i], recorded[p][i])
								}
							}
						}
					}
				}
			}
		}
	}
}

// Cost (compiled replay) must agree exactly with Simulate (goroutine run
// + recorded-trace replay): identical programs through the same engine.
func TestCostEqualsSimulate(t *testing.T) {
	for _, k := range []Kind{Broadcast, Scatter, Gather, AllGather} {
		net := simnet.New(topology.MustNew(4), model.IPSC860())
		sim, err := Simulate(k, net, 48, 3)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := Cost(k, net, 48, 3)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Makespan != sim.Makespan || cost.Messages != sim.Messages ||
			cost.BytesMoved != sim.BytesMoved {
			t.Errorf("%v: compiled %+v != simulated %+v", k, cost, sim)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(Broadcast, -1, 4, 0); err == nil {
		t.Error("negative dimension must fail")
	}
	if _, err := Compile(Broadcast, 3, -1, 0); err == nil {
		t.Error("negative block size must fail")
	}
	if _, err := Compile(Broadcast, 3, 4, 8); err == nil {
		t.Error("out-of-range root must fail")
	}
	if _, err := Compile(Kind(99), 3, 4, 0); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := Cost(Kind(99), simnet.New(topology.MustNew(2), model.IPSC860()), 4, 0); err == nil {
		t.Error("Cost must propagate compile errors")
	}
}
