package collectives

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Broadcast: "broadcast", Scatter: "scatter", Gather: "gather", AllGather: "allgather",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", int(k), k.String())
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind string must not be empty")
	}
}

func TestJoinBit(t *testing.T) {
	if joinBit(0, 4) != 16 {
		t.Errorf("root join = %d", joinBit(0, 4))
	}
	for r, want := range map[int]int{1: 1, 2: 2, 3: 1, 4: 4, 6: 2, 12: 4} {
		if joinBit(r, 4) != want {
			t.Errorf("joinBit(%d) = %d, want %d", r, joinBit(r, 4), want)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	net := simnet.New(topology.MustNew(3), model.IPSC860Raw())
	if _, err := Simulate(Broadcast, net, 8, 9); err == nil {
		t.Error("root out of cube must fail")
	}
	if _, err := Simulate(Broadcast, net, -1, 0); err == nil {
		t.Error("negative size must fail")
	}
	if _, err := Simulate(Kind(99), net, 8, 0); err == nil {
		t.Error("unknown kind must fail")
	}
}

// Every collective's simulated makespan must match its analytic model on
// an idle network (contention-free trees, lockstep).
func TestSimulateMatchesModel(t *testing.T) {
	for _, prm := range []model.Params{model.IPSC860Raw(), model.Hypothetical()} {
		for d := 1; d <= 6; d++ {
			net := simnet.New(topology.MustNew(d), prm)
			for _, k := range []Kind{Broadcast, Scatter, Gather, AllGather} {
				for _, m := range []int{1, 40, 100} {
					res, err := Simulate(k, net, m, 0)
					if err != nil {
						t.Fatalf("%v d=%d: %v", k, d, err)
					}
					want := Model(k, prm, m, d)
					if !almost(res.Makespan, want, 1e-6) {
						t.Errorf("%v d=%d m=%d: sim %v, model %v",
							k, d, m, res.Makespan, want)
					}
					if res.ContentionStall != 0 {
						t.Errorf("%v d=%d: tree schedule stalled %v",
							k, d, res.ContentionStall)
					}
					if res.DroppedForced != 0 {
						t.Errorf("%v d=%d: %d FORCED messages dropped — receives not pre-posted",
							k, d, res.DroppedForced)
					}
				}
			}
		}
	}
}

// Rooted collectives must cost the same from any root (the tree is a
// relabeling).
func TestRootIndependence(t *testing.T) {
	prm := model.IPSC860Raw()
	net := simnet.New(topology.MustNew(4), prm)
	for _, k := range []Kind{Broadcast, Scatter, Gather} {
		base, err := Simulate(k, net, 32, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, root := range []int{1, 7, 15} {
			res, err := Simulate(k, net, 32, root)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(res.Makespan, base.Makespan, 1e-9) {
				t.Errorf("%v root=%d: %v != %v", k, root, res.Makespan, base.Makespan)
			}
		}
	}
}

// Paper §3/§9: the complete exchange is the densest pattern; its time
// upper-bounds every other collective at the same per-pair block size.
func TestCompleteExchangeUpperBounds(t *testing.T) {
	prm := model.IPSC860()
	for d := 2; d <= 7; d++ {
		net := simnet.New(topology.MustNew(d), prm)
		for _, m := range []int{4, 40, 160} {
			best := math.Inf(1)
			it := partition.NewIterator(d)
			for D := it.Next(); D != nil; D = it.Next() {
				tt, _ := prm.Multiphase(m, d, D)
				if tt < best {
					best = tt
				}
			}
			for _, k := range []Kind{Broadcast, Scatter, Gather, AllGather} {
				res, err := Simulate(k, net, m, 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Makespan > best {
					t.Errorf("d=%d m=%d: %v (%v µs) exceeds best exchange (%v µs)",
						d, m, k, res.Makespan, best)
				}
			}
		}
	}
}

// Message accounting: scatter and gather must move exactly m(n−1) payload
// bytes; broadcast n−1 messages of m; allgather n·d exchanges.
func TestTrafficAccounting(t *testing.T) {
	prm := model.IPSC860Raw()
	d, m := 4, 10
	n := 16
	net := simnet.New(topology.MustNew(d), prm)

	res, err := Simulate(Broadcast, net, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != n-1 || res.BytesMoved != m*(n-1) {
		t.Errorf("broadcast: %d msgs %dB", res.Messages, res.BytesMoved)
	}
	res, err = Simulate(Scatter, net, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != n-1 {
		t.Errorf("scatter messages = %d", res.Messages)
	}
	// Scatter payload: Σ over tree edges of subtree sizes = m·Σ... for a
	// binomial tree this is m·(n/2·1 + n/4·2 + ...) = m·(n−1) only for
	// the root's sends; total over all edges is m·Σ_{levels} n/2 = m·d·n/2.
	if res.BytesMoved != m*d*n/2 {
		t.Errorf("scatter bytes = %d, want %d", res.BytesMoved, m*d*n/2)
	}
	res, err = Simulate(AllGather, net, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != n*d {
		t.Errorf("allgather messages = %d", res.Messages)
	}
}

// Data-movement correctness on the goroutine runtime, all roots, several
// shapes.
func TestRunBroadcastAllRoots(t *testing.T) {
	for d := 0; d <= 4; d++ {
		for root := 0; root < 1<<uint(d); root++ {
			if err := RunBroadcast(d, 9, root, 30*time.Second); err != nil {
				t.Errorf("d=%d root=%d: %v", d, root, err)
			}
		}
	}
}

func TestRunScatterAllRoots(t *testing.T) {
	for d := 0; d <= 4; d++ {
		for root := 0; root < 1<<uint(d); root++ {
			if err := RunScatter(d, 5, root, 30*time.Second); err != nil {
				t.Errorf("d=%d root=%d: %v", d, root, err)
			}
		}
	}
}

func TestRunGatherAllRoots(t *testing.T) {
	for d := 0; d <= 4; d++ {
		for root := 0; root < 1<<uint(d); root++ {
			if err := RunGather(d, 5, root, 30*time.Second); err != nil {
				t.Errorf("d=%d root=%d: %v", d, root, err)
			}
		}
	}
}

func TestRunAllGather(t *testing.T) {
	for d := 0; d <= 5; d++ {
		if err := RunAllGather(d, 7, 30*time.Second); err != nil {
			t.Errorf("d=%d: %v", d, err)
		}
	}
}

func TestRunRootValidation(t *testing.T) {
	if err := RunBroadcast(3, 4, 8, time.Second); err == nil {
		t.Error("broadcast root out of range must fail")
	}
	if err := RunScatter(3, 4, -1, time.Second); err == nil {
		t.Error("scatter root out of range must fail")
	}
	if err := RunGather(3, 4, 100, time.Second); err == nil {
		t.Error("gather root out of range must fail")
	}
}

func TestCollectivesQuick(t *testing.T) {
	f := func(dRaw, rootRaw, mRaw uint8) bool {
		d := int(dRaw)%4 + 1
		root := int(rootRaw) % (1 << uint(d))
		m := int(mRaw)%13 + 1
		return RunBroadcast(d, m, root, 30*time.Second) == nil &&
			RunScatter(d, m, root, 30*time.Second) == nil &&
			RunGather(d, m, root, 30*time.Second) == nil &&
			RunAllGather(d, m, 30*time.Second) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestModelDegenerate(t *testing.T) {
	prm := model.IPSC860()
	for _, k := range []Kind{Broadcast, Scatter, Gather, AllGather, Kind(77)} {
		if Model(k, prm, 100, 0) != 0 {
			t.Errorf("%v on 0-cube must cost 0", k)
		}
	}
	if Model(Kind(77), prm, 100, 3) != 0 {
		t.Error("unknown kind must cost 0")
	}
}

// The tree schedules use only dimension-1 hops, so every simultaneous
// step is trivially edge-contention-free; verify via the step analyzer on
// the broadcast tree levels.
func TestBroadcastLevelsContentionFree(t *testing.T) {
	d := 5
	h := topology.MustNew(d)
	for root := 0; root < 1<<uint(d); root += 7 {
		for i := 0; i < d; i++ {
			bit := 1 << uint(i)
			var step []topology.Transfer
			for r := 0; r < bit; r++ {
				step = append(step, topology.Transfer{Src: r ^ root, Dst: (r + bit) ^ root})
			}
			rep, err := h.AnalyzeStep(step)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.EdgeContentionFree() {
				t.Errorf("root=%d level %d contended", root, i)
			}
		}
	}
	_ = exchange.PayloadByte // payload helper shared with data tests
}
