// Package collectives implements the other hypercube communication
// patterns the paper's conclusion (§9) points at — one-to-all broadcast,
// one-to-all personalized (scatter/gather), and all-to-all broadcast
// (allgather) — with the classical subcube-recursive algorithms of
// Johnsson & Ho (paper reference [8]).
//
// Each collective has exactly one implementation, written against the
// fabric interface (package fabric), so the same code moves real data on
// the goroutine runtime and is costed in virtual time on the
// circuit-switched simulator; Compile additionally lowers each pattern
// straight to the per-node simulator programs such a run would record, so
// pure costing (Cost) needs no goroutines or payloads at all. The paper's observation that the complete
// exchange upper-bounds every pattern ("the time taken by our multiphase
// algorithm is an upper bound on the time required by any of these
// patterns") is enforced by tests.
//
// Tree addressing: all rooted collectives work in relative address space
// r = p XOR root. The scatter/gather binomial tree is defined by the
// lowest set bit: node r ≠ 0 is attached to parent r XOR lsb(r) and owns
// the contiguous relative block range [r, r+lsb(r)). Scatter walks
// dimensions downward (the root first splits off the top half of its
// range), gather walks them upward, broadcast walks upward doubling the
// informed set (its parent is across the highest set bit). Every transfer
// crosses exactly one cube dimension, so no step can suffer edge
// contention. As in the paper's implementation (§7.1), the communication
// pattern is fully known, so receives are posted up front and the
// efficient FORCED message type is used throughout.
package collectives

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/fabric"
	"repro/internal/model"
)

// Kind enumerates the implemented collectives.
type Kind int

const (
	// Broadcast: one root sends one m-byte block to all 2^d−1 others
	// along a binomial tree (d steps, message size m).
	Broadcast Kind = iota
	// Scatter: one root sends a different m-byte block to every node
	// (one-to-all personalized); a binomial tree with halving payloads.
	Scatter
	// Gather: the inverse of Scatter — all blocks converge on the root
	// with doubling payloads.
	Gather
	// AllGather: every node contributes one m-byte block; all nodes end
	// with all 2^d blocks (all-to-all broadcast); recursive doubling
	// with doubling payloads.
	AllGather
)

func (k Kind) String() string {
	switch k {
	case Broadcast:
		return "broadcast"
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case AllGather:
		return "allgather"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Model returns the analytic time of the collective on a d-cube with
// block size m under the machine parameters:
//
//	broadcast:  d(λ + τm + δ)                       (critical path: d hops)
//	scatter:    dλ + τ·m(2^d−1) + dδ                (root transmits m(n−1))
//	gather:     same as scatter (reversed)
//	allgather:  d·λx + τx·m(2^d−1) + d·δx           (exchange constants)
//
// Scatter/gather/broadcast steps are one-sided sends at distance 1;
// allgather steps are pairwise exchanges, so the effective exchange
// constants λx, τx, δx of the parameter set apply.
func Model(k Kind, prm model.Params, m, d int) float64 {
	if d <= 0 {
		return 0
	}
	df := float64(d)
	mf := float64(m)
	full := float64(int(1)<<uint(d) - 1)
	switch k {
	case Broadcast:
		return df * (prm.Lambda + prm.Tau*mf + prm.Delta)
	case Scatter, Gather:
		return df*prm.Lambda + prm.Tau*mf*full + df*prm.Delta
	case AllGather:
		return df*prm.EffLambda() + prm.EffTau()*mf*full + df*prm.EffDelta()
	default:
		return 0
	}
}

// joinBit returns the tree level at which relative address r is attached:
// lsb(r) for r ≠ 0, and 2^d (above every level) for the root.
func joinBit(r, d int) int {
	if r == 0 {
		return 1 << uint(d)
	}
	return 1 << uint(bitutil.LowestSetBit(r))
}

// nodeDim returns d for a 2^d-node fabric node.
func nodeDim(nd fabric.Node) (int, error) {
	d := bitutil.Log2Exact(nd.N())
	if d < 0 {
		return 0, fmt.Errorf("collectives: fabric size %d is not a power of two", nd.N())
	}
	return d, nil
}

func checkRoot(root, n int) error {
	if root < 0 || root >= n {
		return fmt.Errorf("collectives: root %d outside cube of %d nodes", root, n)
	}
	return nil
}

// BroadcastOn executes a binomial-tree broadcast of root's data on one
// fabric node; every node returns the payload. Ascending levels: at level
// bit, informed nodes (r < bit) send the block to r+bit; the doubling
// tree's parent is across the *highest* set bit of r.
func BroadcastOn(nd fabric.Node, root int, data []byte) ([]byte, error) {
	d, err := nodeDim(nd)
	if err != nil {
		return nil, err
	}
	if err := checkRoot(root, nd.N()); err != nil {
		return nil, err
	}
	p := nd.ID()
	r := p ^ root
	var have []byte
	if r == 0 {
		have = append([]byte(nil), data...)
	} else {
		nd.PostRecv(p ^ (1 << uint(bitutil.HighestSetBit(r))))
	}
	for i := 0; i < d; i++ {
		bit := 1 << uint(i)
		switch {
		case r < bit:
			nd.Send(p^bit, have)
		case r < bit*2:
			have = nd.Recv(p ^ bit)
		}
	}
	return have, nil
}

// ScatterOn executes a binomial-tree scatter on one fabric node: the root
// provides blocks[i] for rank i (uniform length; other nodes pass nil)
// and every node returns exactly its own block. Descending levels: a node
// holding the relative range [r, r+2·bit) sends the upper half — m·bit
// bytes — to r+bit; a node participates as sender at levels below its
// join bit and receives exactly at its join bit.
func ScatterOn(nd fabric.Node, root int, blocks [][]byte) ([]byte, error) {
	d, err := nodeDim(nd)
	if err != nil {
		return nil, err
	}
	n := nd.N()
	if err := checkRoot(root, n); err != nil {
		return nil, err
	}
	p := nd.ID()
	r := p ^ root
	join := joinBit(r, d)
	// held[j] is the block for relative address r+j (j < current range
	// width). The root starts with the full range [0, n).
	var held [][]byte
	if r == 0 {
		if len(blocks) != n {
			return nil, fmt.Errorf("collectives: scatter of %d blocks on %d nodes", len(blocks), n)
		}
		m := len(blocks[0])
		held = make([][]byte, n)
		for j := 0; j < n; j++ {
			if len(blocks[j^root]) != m {
				return nil, fmt.Errorf("collectives: scatter blocks must be uniform length")
			}
			held[j] = blocks[j^root] // held is indexed by relative address
		}
	} else {
		nd.PostRecv(p ^ join)
	}
	for i := d - 1; i >= 0; i-- {
		bit := 1 << uint(i)
		switch {
		case bit < join:
			// Send the upper half [r+bit, r+2bit) of my range.
			var msg []byte
			for j := bit; j < 2*bit && j < len(held); j++ {
				msg = append(msg, held[j]...)
			}
			nd.Send(p^bit, msg)
			if len(held) > bit {
				held = held[:bit]
			}
		case bit == join:
			msg := nd.Recv(p ^ bit)
			m := len(msg) / bit
			held = make([][]byte, bit)
			for j := 0; j < bit; j++ {
				held[j] = append([]byte(nil), msg[j*m:(j+1)*m]...)
			}
		}
	}
	if len(held) == 0 {
		return nil, fmt.Errorf("collectives: scatter node %d received nothing", p)
	}
	return held[0], nil
}

// GatherOn executes the inverse of scatter on one fabric node: every node
// contributes its block; the root returns all 2^d blocks (slot i = node
// i's block), other nodes return nil. Ascending levels: receive
// children's ranges, then send the accumulated [r, r+join) to the parent
// at the join level; all child receives are posted before any traffic.
func GatherOn(nd fabric.Node, root int, block []byte) ([][]byte, error) {
	d, err := nodeDim(nd)
	if err != nil {
		return nil, err
	}
	n := nd.N()
	if err := checkRoot(root, n); err != nil {
		return nil, err
	}
	p := nd.ID()
	r := p ^ root
	join := joinBit(r, d)
	for i := 0; i < d; i++ {
		if bit := 1 << uint(i); bit < join {
			nd.PostRecv(p ^ bit)
		}
	}
	// held[j] = block from relative address r+j; grows as children report
	// in, then is shipped whole to the parent.
	held := [][]byte{append([]byte(nil), block...)}
	for i := 0; i < d; i++ {
		bit := 1 << uint(i)
		switch {
		case bit < join:
			msg := nd.Recv(p ^ bit)
			m := len(msg) / bit
			for j := 0; j < bit; j++ {
				held = append(held, append([]byte(nil), msg[j*m:(j+1)*m]...))
			}
		case bit == join:
			var msg []byte
			for _, blk := range held {
				msg = append(msg, blk...)
			}
			nd.Send(p^bit, msg)
		}
	}
	if r != 0 {
		return nil, nil
	}
	// held[j] is the block of relative address j; reindex to absolute.
	out := make([][]byte, n)
	for j := 0; j < n; j++ {
		out[j^root] = held[j]
	}
	return out, nil
}

// AllGatherOn executes recursive-doubling allgather on one fabric node:
// every node contributes one block and returns all 2^d blocks (slot i =
// node i's block). Step i exchanges the accumulated m·2^i bytes across
// dimension i.
func AllGatherOn(nd fabric.Node, block []byte) ([][]byte, error) {
	d, err := nodeDim(nd)
	if err != nil {
		return nil, err
	}
	n := nd.N()
	p := nd.ID()
	m := len(block)
	blocks := make([][]byte, n)
	// Blocks are kept non-nil even when m = 0 so the missing-block check
	// below stays meaningful for zero-byte collectives.
	blocks[p] = append([]byte{}, block...)
	for i := 0; i < d; i++ {
		bit := 1 << uint(i)
		peer := p ^ bit
		// I currently hold the 2^i blocks whose labels agree with mine
		// above bit i; pack them in ascending label order.
		var msg []byte
		for q := 0; q < n; q++ {
			if q&^(bit-1) == p&^(bit-1) {
				if blocks[q] == nil {
					return nil, fmt.Errorf("collectives: node %d missing block %d at step %d", p, q, i)
				}
				msg = append(msg, blocks[q]...)
			}
		}
		in := nd.Exchange(peer, msg)
		if len(in) != bit*m {
			return nil, fmt.Errorf("collectives: node %d expected %dB, got %d (mismatched block sizes?)",
				p, bit*m, len(in))
		}
		idx := 0
		for q := 0; q < n; q++ {
			if q&^(bit-1) == peer&^(bit-1) {
				blocks[q] = append([]byte{}, in[idx*m:(idx+1)*m]...)
				idx++
			}
		}
	}
	return blocks, nil
}

// ReduceOn applies fn pairwise up the gather tree and returns the
// reduction of all nodes' values at the root (nil elsewhere). fn must be
// associative and commutative over the byte-slice encoding.
func ReduceOn(nd fabric.Node, root int, value []byte, fn func(a, b []byte) []byte) ([]byte, error) {
	d, err := nodeDim(nd)
	if err != nil {
		return nil, err
	}
	if err := checkRoot(root, nd.N()); err != nil {
		return nil, err
	}
	p := nd.ID()
	r := p ^ root
	join := joinBit(r, d)
	for i := 0; i < d; i++ {
		if bit := 1 << uint(i); bit < join {
			nd.PostRecv(p ^ bit)
		}
	}
	acc := append([]byte(nil), value...)
	for i := 0; i < d; i++ {
		bit := 1 << uint(i)
		switch {
		case bit < join:
			acc = fn(acc, nd.Recv(p^bit))
		case bit == join:
			nd.Send(p^bit, acc)
		}
	}
	if r != 0 {
		return nil, nil
	}
	return acc, nil
}
