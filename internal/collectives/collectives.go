// Package collectives implements the other hypercube communication
// patterns the paper's conclusion (§9) points at — one-to-all broadcast,
// one-to-all personalized (scatter/gather), and all-to-all broadcast
// (allgather) — with the classical subcube-recursive algorithms of
// Johnsson & Ho (paper reference [8]).
//
// Each collective, like the complete exchange, runs on both backends:
// real data movement on the goroutine runtime (data.go) and virtual-time
// costing on the circuit-switched simulator. The paper's observation that
// the complete exchange upper-bounds every pattern ("the time taken by
// our multiphase algorithm is an upper bound on the time required by any
// of these patterns") is enforced by tests.
//
// Tree addressing: all rooted collectives work in relative address space
// r = p XOR root. The binomial tree is defined by the lowest set bit:
// node r ≠ 0 is attached to parent r XOR lsb(r) and owns the contiguous
// relative block range [r, r+lsb(r)). Scatter walks dimensions downward
// (the root first splits off the top half of its range), gather walks
// them upward, broadcast walks upward doubling the informed set. Every
// transfer crosses exactly one cube dimension, so no step can suffer edge
// contention.
package collectives

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/model"
	"repro/internal/simnet"
)

// Kind enumerates the implemented collectives.
type Kind int

const (
	// Broadcast: one root sends one m-byte block to all 2^d−1 others
	// along a binomial tree (d steps, message size m).
	Broadcast Kind = iota
	// Scatter: one root sends a different m-byte block to every node
	// (one-to-all personalized); a binomial tree with halving payloads.
	Scatter
	// Gather: the inverse of Scatter — all blocks converge on the root
	// with doubling payloads.
	Gather
	// AllGather: every node contributes one m-byte block; all nodes end
	// with all 2^d blocks (all-to-all broadcast); recursive doubling
	// with doubling payloads.
	AllGather
)

func (k Kind) String() string {
	switch k {
	case Broadcast:
		return "broadcast"
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case AllGather:
		return "allgather"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Model returns the analytic time of the collective on a d-cube with
// block size m under the machine parameters:
//
//	broadcast:  d(λ + τm + δ)                       (critical path: d hops)
//	scatter:    dλ + τ·m(2^d−1) + dδ                (root transmits m(n−1))
//	gather:     same as scatter (reversed)
//	allgather:  d·λx + τx·m(2^d−1) + d·δx           (exchange constants)
//
// Scatter/gather/broadcast steps are one-sided sends at distance 1;
// allgather steps are pairwise exchanges, so the effective exchange
// constants λx, τx, δx of the parameter set apply.
func Model(k Kind, prm model.Params, m, d int) float64 {
	if d <= 0 {
		return 0
	}
	df := float64(d)
	mf := float64(m)
	full := float64(int(1)<<uint(d) - 1)
	switch k {
	case Broadcast:
		return df * (prm.Lambda + prm.Tau*mf + prm.Delta)
	case Scatter, Gather:
		return df*prm.Lambda + prm.Tau*mf*full + df*prm.Delta
	case AllGather:
		return df*prm.EffLambda() + prm.EffTau()*mf*full + df*prm.EffDelta()
	default:
		return 0
	}
}

// joinBit returns the tree level at which relative address r is attached:
// lsb(r) for r ≠ 0, and 2^d (above every level) for the root.
func joinBit(r, d int) int {
	if r == 0 {
		return 1 << uint(d)
	}
	return 1 << uint(bitutil.LowestSetBit(r))
}

// Programs generates per-node simnet programs for the collective with the
// given root (must be 0 ≤ root < 2^d; AllGather ignores it).
func Programs(k Kind, d, m, root int) ([]simnet.Program, error) {
	n := 1 << uint(d)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("collectives: root %d outside %d-cube", root, d)
	}
	if m < 0 {
		return nil, fmt.Errorf("collectives: negative block size %d", m)
	}
	progs := make([]simnet.Program, n)
	for p := 0; p < n; p++ {
		r := p ^ root
		join := joinBit(r, d)
		var prog simnet.Program
		// As in the paper's implementation (§7.1), the communication
		// pattern is fully known, so receives are posted up front and
		// the efficient FORCED message type is used throughout.
		switch k {
		case Broadcast:
			// Ascending levels: at level bit, informed nodes (r < bit)
			// send the block to r+bit. Unlike the scatter/gather tree
			// (parent across the lowest set bit), the doubling tree's
			// parent is across the *highest* set bit of r.
			if r != 0 {
				parent := p ^ (1 << uint(bitutil.HighestSetBit(r)))
				prog = append(prog, simnet.PostRecv(parent))
			}
			for i := 0; i < d; i++ {
				bit := 1 << uint(i)
				switch {
				case r < bit:
					prog = append(prog, simnet.Send(p^bit, m, simnet.Forced))
				case r < bit*2:
					prog = append(prog, simnet.WaitRecv(p^bit))
				}
			}
		case Scatter:
			// Descending levels: a node holding [r, r+2·bit) sends the
			// upper half [r+bit, r+2·bit) — m·bit bytes — to r+bit. A
			// node participates as sender at levels below its join bit
			// and receives exactly at its join bit.
			if r != 0 {
				prog = append(prog, simnet.PostRecv(p^join))
			}
			for i := d - 1; i >= 0; i-- {
				bit := 1 << uint(i)
				switch {
				case bit < join:
					prog = append(prog, simnet.Send(p^bit, m*bit, simnet.Forced))
				case bit == join:
					prog = append(prog, simnet.WaitRecv(p^bit))
				}
			}
		case Gather:
			// Ascending levels: receive children's ranges, then send
			// the accumulated [r, r+join) to the parent at the join
			// level. All child receives are posted before any traffic.
			for i := 0; i < d; i++ {
				if bit := 1 << uint(i); bit < join {
					prog = append(prog, simnet.PostRecv(p^bit))
				}
			}
			for i := 0; i < d; i++ {
				bit := 1 << uint(i)
				switch {
				case bit < join:
					prog = append(prog, simnet.WaitRecv(p^bit))
				case bit == join:
					prog = append(prog, simnet.Send(p^bit, m*bit, simnet.Forced))
				}
			}
		case AllGather:
			// Recursive doubling: exchange the accumulated m·2^i bytes
			// across dimension i.
			for i := 0; i < d; i++ {
				prog = append(prog, simnet.Exchange(p^(1<<uint(i)), m<<uint(i)))
			}
		default:
			return nil, fmt.Errorf("collectives: unknown kind %v", k)
		}
		progs[p] = prog
	}
	return progs, nil
}

// Simulate runs the collective on a simulated d-cube and returns the
// result.
func Simulate(k Kind, net *simnet.Network, m, root int) (simnet.Result, error) {
	progs, err := Programs(k, net.Cube().Dim(), m, root)
	if err != nil {
		return simnet.Result{}, err
	}
	return net.Run(progs)
}
