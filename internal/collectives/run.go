package collectives

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/bitutil"
	"repro/internal/exchange"
	"repro/internal/fabric"
	"repro/internal/simnet"
)

// payload returns the canonical test block "node src's contribution for
// destination dst" (dst = −1 for single-payload patterns).
func payload(src, dst, m int) []byte {
	out := make([]byte, m)
	for i := range out {
		out[i] = exchange.PayloadByte(src, dst+1, i)
	}
	return out
}

// RunOn executes the collective on the given fabric with canonical
// payloads and verifies the pattern's postcondition at every node: each
// block must arrive intact exactly where the collective says it belongs.
// The same call works on the runtime fabric (pure data check) and on the
// simulated fabric (data check plus virtual-time costing).
func RunOn(k Kind, fab fabric.Fabric, m, root int, timeout time.Duration) error {
	n := fab.N()
	d := bitutil.Log2Exact(n)
	if d < 0 {
		return fmt.Errorf("collectives: fabric size %d is not a power of two", n)
	}
	if err := checkRoot(root, n); err != nil {
		return err
	}
	if m < 0 {
		return fmt.Errorf("collectives: negative block size %d", m)
	}
	return fab.Run(func(nd fabric.Node) error {
		p := nd.ID()
		switch k {
		case Broadcast:
			var in []byte
			if p == root {
				in = payload(root, -1, m)
			}
			got, err := BroadcastOn(nd, root, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload(root, -1, m)) {
				return fmt.Errorf("collectives: node %d received wrong broadcast", p)
			}
		case Scatter:
			var blocks [][]byte
			if p == root {
				blocks = make([][]byte, n)
				for i := range blocks {
					blocks[i] = payload(root, i, m)
				}
			}
			got, err := ScatterOn(nd, root, blocks)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload(root, p, m)) {
				return fmt.Errorf("collectives: node %d got wrong scatter block", p)
			}
		case Gather:
			all, err := GatherOn(nd, root, payload(p, root, m))
			if err != nil {
				return err
			}
			if p == root {
				if len(all) != n {
					return fmt.Errorf("collectives: root holds %d blocks, want %d", len(all), n)
				}
				for i := 0; i < n; i++ {
					if !bytes.Equal(all[i], payload(i, root, m)) {
						return fmt.Errorf("collectives: root got wrong block from %d", i)
					}
				}
			}
		case AllGather:
			all, err := AllGatherOn(nd, payload(p, -1, m))
			if err != nil {
				return err
			}
			for q := 0; q < n; q++ {
				if !bytes.Equal(all[q], payload(q, -1, m)) {
					return fmt.Errorf("collectives: node %d ended with wrong block from %d", p, q)
				}
			}
		default:
			return fmt.Errorf("collectives: unknown kind %v", k)
		}
		return nil
	}, timeout)
}

// runData executes the collective on a fresh goroutine-runtime fabric.
func runData(k Kind, d, m, root int, timeout time.Duration) error {
	fab, err := fabric.NewRuntime(1 << uint(d))
	if err != nil {
		return err
	}
	return RunOn(k, fab, m, root, timeout)
}

// RunBroadcast executes a binomial-tree broadcast of an m-byte block from
// root on a goroutine cluster of 2^d nodes and verifies every node
// received it intact.
func RunBroadcast(d, m, root int, timeout time.Duration) error {
	return runData(Broadcast, d, m, root, timeout)
}

// RunScatter executes a binomial-tree scatter from root with canonical
// per-destination payloads; every node must end with exactly its block.
func RunScatter(d, m, root int, timeout time.Duration) error {
	return runData(Scatter, d, m, root, timeout)
}

// RunGather executes the inverse of scatter: every node contributes its
// canonical block; the root must end with all 2^d blocks, each verified.
func RunGather(d, m, root int, timeout time.Duration) error {
	return runData(Gather, d, m, root, timeout)
}

// RunAllGather executes recursive-doubling allgather: every node
// contributes its canonical block and must end with all 2^d blocks.
func RunAllGather(d, m int, timeout time.Duration) error {
	return runData(AllGather, d, m, 0, timeout)
}

// Simulate runs the collective on a simulated fabric over the given
// network — moving and verifying real data and costing the schedule in
// virtual time — and returns the discrete-event result.
func Simulate(k Kind, net *simnet.Network, m, root int) (simnet.Result, error) {
	fab := fabric.NewSim(net)
	if err := RunOn(k, fab, m, root, fabric.DefaultSimTimeout); err != nil {
		return simnet.Result{}, err
	}
	return fab.Result()
}
