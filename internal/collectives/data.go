package collectives

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/exchange"
	"repro/internal/runtime"
)

// payload returns the canonical test block "node src's contribution for
// destination dst" (dst = −1 for single-payload patterns).
func payload(src, dst, m int) []byte {
	out := make([]byte, m)
	for i := range out {
		out[i] = exchange.PayloadByte(src, dst+1, i)
	}
	return out
}

// RunBroadcast executes a binomial-tree broadcast of an m-byte block from
// root on a goroutine cluster of 2^d nodes and verifies every node
// received it intact.
func RunBroadcast(d, m, root int, timeout time.Duration) error {
	n := 1 << uint(d)
	if root < 0 || root >= n {
		return fmt.Errorf("collectives: root %d outside %d-cube", root, d)
	}
	want := payload(root, -1, m)
	c, err := runtime.NewCluster(n)
	if err != nil {
		return err
	}
	return c.Run(func(nd *runtime.Node) error {
		p := nd.ID()
		r := p ^ root
		var have []byte
		if r == 0 {
			have = append([]byte(nil), want...)
		}
		for i := 0; i < d; i++ {
			bit := 1 << uint(i)
			switch {
			case r < bit:
				nd.Send(p^bit, have)
			case r < bit*2:
				have = nd.Recv(p ^ bit)
			}
		}
		if !bytes.Equal(have, want) {
			return fmt.Errorf("collectives: node %d received wrong broadcast", p)
		}
		return nil
	}, timeout)
}

// RunScatter executes a binomial-tree scatter from root: the root starts
// with one m-byte block per destination; every node must end with exactly
// its own block. Each tree node owns the contiguous *relative* range
// [r, r+joinBit(r)) and forwards the upper half of its current range at
// every level below its join level. Payloads are canonical and verified.
func RunScatter(d, m, root int, timeout time.Duration) error {
	n := 1 << uint(d)
	if root < 0 || root >= n {
		return fmt.Errorf("collectives: root %d outside %d-cube", root, d)
	}
	c, err := runtime.NewCluster(n)
	if err != nil {
		return err
	}
	return c.Run(func(nd *runtime.Node) error {
		p := nd.ID()
		r := p ^ root
		join := joinBit(r, d)
		// held[j] is the block for relative address r+j (j < current
		// range width). The root starts with the full range [0, n).
		var held [][]byte
		if r == 0 {
			held = make([][]byte, n)
			for j := 0; j < n; j++ {
				held[j] = payload(root, j^root, m)
			}
		}
		for i := d - 1; i >= 0; i-- {
			bit := 1 << uint(i)
			switch {
			case bit < join:
				// Send the upper half [r+bit, r+2bit) of my range.
				var msg []byte
				for j := bit; j < 2*bit && j < len(held); j++ {
					msg = append(msg, held[j]...)
				}
				nd.Send(p^bit, msg)
				if len(held) > bit {
					held = held[:bit]
				}
			case bit == join:
				msg := nd.Recv(p ^ bit)
				if len(msg) != bit*m {
					return fmt.Errorf("collectives: node %d expected %dB, got %d",
						p, bit*m, len(msg))
				}
				held = make([][]byte, bit)
				for j := 0; j < bit; j++ {
					held[j] = append([]byte(nil), msg[j*m:(j+1)*m]...)
				}
			}
		}
		if len(held) < 1 || !bytes.Equal(held[0], payload(root, p, m)) {
			return fmt.Errorf("collectives: node %d got wrong scatter block", p)
		}
		return nil
	}, timeout)
}

// RunGather executes the inverse of scatter: every node contributes its
// canonical block; the root must end with all 2^d blocks, each verified.
func RunGather(d, m, root int, timeout time.Duration) error {
	n := 1 << uint(d)
	if root < 0 || root >= n {
		return fmt.Errorf("collectives: root %d outside %d-cube", root, d)
	}
	c, err := runtime.NewCluster(n)
	if err != nil {
		return err
	}
	return c.Run(func(nd *runtime.Node) error {
		p := nd.ID()
		r := p ^ root
		join := joinBit(r, d)
		// held[j] = block from relative address r+j; grows as children
		// report in, then is shipped whole to the parent.
		held := [][]byte{payload(p, root, m)}
		for i := 0; i < d; i++ {
			bit := 1 << uint(i)
			switch {
			case bit < join:
				msg := nd.Recv(p ^ bit)
				if len(msg) != bit*m {
					return fmt.Errorf("collectives: node %d expected %dB, got %d",
						p, bit*m, len(msg))
				}
				for j := 0; j < bit; j++ {
					held = append(held, append([]byte(nil), msg[j*m:(j+1)*m]...))
				}
			case bit == join:
				var msg []byte
				for _, blk := range held {
					msg = append(msg, blk...)
				}
				nd.Send(p^bit, msg)
			}
		}
		if r == 0 {
			if len(held) != n {
				return fmt.Errorf("collectives: root holds %d blocks, want %d", len(held), n)
			}
			for j := 0; j < n; j++ {
				if !bytes.Equal(held[j], payload(j^root, root, m)) {
					return fmt.Errorf("collectives: root got wrong block from %d", j^root)
				}
			}
		}
		return nil
	}, timeout)
}

// RunAllGather executes recursive-doubling allgather: every node
// contributes its canonical block and must end with all 2^d blocks.
func RunAllGather(d, m int, timeout time.Duration) error {
	n := 1 << uint(d)
	c, err := runtime.NewCluster(n)
	if err != nil {
		return err
	}
	return c.Run(func(nd *runtime.Node) error {
		p := nd.ID()
		blocks := make([][]byte, n)
		blocks[p] = payload(p, -1, m)
		for i := 0; i < d; i++ {
			bit := 1 << uint(i)
			peer := p ^ bit
			// I currently hold the 2^i blocks whose labels agree with
			// mine above bit i; pack them in ascending label order.
			var msg []byte
			for q := 0; q < n; q++ {
				if q&^(bit-1) == p&^(bit-1) {
					if blocks[q] == nil {
						return fmt.Errorf("collectives: node %d missing %d at step %d", p, q, i)
					}
					msg = append(msg, blocks[q]...)
				}
			}
			in := nd.Exchange(peer, msg)
			if len(in) != bit*m {
				return fmt.Errorf("collectives: node %d expected %dB, got %d", p, bit*m, len(in))
			}
			idx := 0
			for q := 0; q < n; q++ {
				if q&^(bit-1) == peer&^(bit-1) {
					blocks[q] = append([]byte(nil), in[idx*m:(idx+1)*m]...)
					idx++
				}
			}
		}
		for q := 0; q < n; q++ {
			if !bytes.Equal(blocks[q], payload(q, -1, m)) {
				return fmt.Errorf("collectives: node %d ended with wrong block from %d", p, q)
			}
		}
		return nil
	}, timeout)
}
