package collectives

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Compile lowers one collective on a d-cube with block size m and the
// given root to per-node simnet programs — exactly the traces a live
// fabric.Sim run of the collective records, derived without goroutines,
// mailboxes or payload bytes. Receives are posted up front and consumed
// as waits, and every transfer uses the FORCED message type, matching the
// §7.1 protocol the implementations follow; fabric.Sim's recorded traces
// are the oracle the compiler is tested against. AllGather ignores root
// (the pattern is symmetric).
func Compile(k Kind, d, m, root int) ([]simnet.Program, error) {
	if d < 0 || d > 24 {
		return nil, fmt.Errorf("collectives: dimension %d out of range [0,24]", d)
	}
	if m < 0 {
		return nil, fmt.Errorf("collectives: negative block size %d", m)
	}
	n := 1 << uint(d)
	if err := checkRoot(root, n); err != nil {
		return nil, err
	}
	progs := make([]simnet.Program, n)
	for p := 0; p < n; p++ {
		switch k {
		case Broadcast:
			progs[p] = compileBroadcast(d, m, root, p)
		case Scatter:
			progs[p] = compileScatter(d, m, root, p)
		case Gather:
			progs[p] = compileGather(d, m, root, p)
		case AllGather:
			progs[p] = compileAllGather(d, m, p)
		default:
			return nil, fmt.Errorf("collectives: unknown kind %v", k)
		}
	}
	return progs, nil
}

// compileBroadcast mirrors BroadcastOn: a non-root posts its receive from
// the parent across the highest set bit of its relative address, then at
// ascending levels receives once (at its join level) and forwards the
// m-byte block to every subtree partner above it.
func compileBroadcast(d, m, root, p int) simnet.Program {
	r := p ^ root
	var prog simnet.Program
	if r != 0 {
		prog = append(prog, simnet.PostRecv(p^(1<<uint(bitutil.HighestSetBit(r)))))
	}
	for i := 0; i < d; i++ {
		bit := 1 << uint(i)
		switch {
		case r < bit:
			prog = append(prog, simnet.Send(p^bit, m, simnet.Forced))
		case r < bit*2:
			prog = append(prog, simnet.WaitRecv(p^bit))
		}
	}
	return prog
}

// compileScatter mirrors ScatterOn: a non-root posts the receive from its
// parent at the join level, waits for its m·join-byte range there, and at
// each lower level ships the upper half of its range (m·2^i bytes) down
// the tree; the root only sends.
func compileScatter(d, m, root, p int) simnet.Program {
	r := p ^ root
	join := joinBit(r, d)
	var prog simnet.Program
	if r != 0 {
		prog = append(prog, simnet.PostRecv(p^join))
	}
	for i := d - 1; i >= 0; i-- {
		bit := 1 << uint(i)
		switch {
		case bit < join:
			prog = append(prog, simnet.Send(p^bit, m*bit, simnet.Forced))
		case bit == join:
			prog = append(prog, simnet.WaitRecv(p^bit))
		}
	}
	return prog
}

// compileGather mirrors GatherOn: every node posts all child receives up
// front, consumes them at ascending levels (m·2^i bytes from the child
// across bit i), and a non-root finally ships its accumulated m·join
// bytes to the parent.
func compileGather(d, m, root, p int) simnet.Program {
	r := p ^ root
	join := joinBit(r, d)
	var prog simnet.Program
	for i := 0; i < d; i++ {
		if bit := 1 << uint(i); bit < join {
			prog = append(prog, simnet.PostRecv(p^bit))
		}
	}
	for i := 0; i < d; i++ {
		bit := 1 << uint(i)
		switch {
		case bit < join:
			prog = append(prog, simnet.WaitRecv(p^bit))
		case bit == join:
			prog = append(prog, simnet.Send(p^bit, m*bit, simnet.Forced))
		}
	}
	return prog
}

// compileAllGather mirrors AllGatherOn: recursive doubling, step i
// exchanging the accumulated m·2^i bytes across dimension i.
func compileAllGather(d, m, p int) simnet.Program {
	var prog simnet.Program
	for i := 0; i < d; i++ {
		bit := 1 << uint(i)
		prog = append(prog, simnet.Exchange(p^bit, m*bit))
	}
	return prog
}

// Cost replays the compiled collective through the discrete-event
// simulator and returns the virtual-time result. Unlike Simulate it moves
// no payload bytes and spawns no goroutines — the fast path for sweeps;
// use Simulate when the data movement itself should be machine-checked.
// The binomial-tree addressing is defined on label bits, so the network
// must be a hypercube.
func Cost(k Kind, net *simnet.Network, m, root int) (simnet.Result, error) {
	cube, ok := net.Topo().(*topology.Hypercube)
	if !ok {
		return simnet.Result{}, fmt.Errorf("collectives: tree collectives need a hypercube, not %s",
			net.Topo().Name())
	}
	progs, err := Compile(k, cube.Dim(), m, root)
	if err != nil {
		return simnet.Result{}, err
	}
	return net.Run(progs)
}
