package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/plancache"
)

// testLine builds a LineData the default registry's cache will accept.
func testLine(t *testing.T, machine, topo string, d int) plancache.LineData {
	t.Helper()
	prm, ok := model.Machines()[machine]
	if !ok {
		t.Fatalf("unknown test machine %q", machine)
	}
	return plancache.LineData{
		Machine:   machine,
		Params:    prm,
		Topology:  topo,
		D:         d,
		SweepLo:   0,
		SweepHi:   plancache.DefaultSweepHi,
		SweepStep: 1,
		Segments: []plancache.SegmentData{
			{Partition: []int{d}, MinBlock: 0, MaxBlock: plancache.DefaultSweepHi},
		},
	}
}

// cubeOwnedBy finds a hypercube dimension whose line key the given
// member owns under the ring.
func cubeOwnedBy(t *testing.T, r *Ring, machine, member string) (string, int) {
	t.Helper()
	for d := 2; d <= 40; d++ {
		topo := fmt.Sprintf("hypercube-%d", d)
		if r.Owner(LineKey(machine, topo)) == member {
			return topo, d
		}
	}
	t.Fatalf("no hypercube line owned by %s in 40 tries", member)
	return "", 0
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1/"}}); err == nil {
		t.Error("self-only peer set accepted")
	}
	if _, err := New(Config{Self: "ftp://a:1", Peers: []string{"http://b:1"}}); err == nil {
		t.Error("non-http self URL accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"not a url://"}}); err == nil {
		t.Error("bad peer URL accepted")
	}
	c, err := New(Config{Self: "http://a:1/", Peers: []string{"http://b:1/", "http://b:1", "http://a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "http://a:1" {
		t.Errorf("self not normalized: %q", c.Self())
	}
	if members := c.Ring().Members(); len(members) != 2 {
		t.Errorf("dup/self peers not deduped: ring members %v", members)
	}
}

func TestFetchLineDeclinesSelfOwnedKeys(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := cubeOwnedBy(t, c.Ring(), "ipsc860", "http://a:1")
	ld, err := c.FetchLine(context.Background(), "ipsc860", topo)
	if ld != nil || err != nil {
		t.Fatalf("self-owned key: got (%v, %v), want (nil, nil) decline", ld, err)
	}
	if m := c.Metrics(); m.PeerHits != 0 || m.PeerFetchFailures != 0 {
		t.Fatalf("decline moved counters: %+v", m)
	}
}

func TestFetchRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	var served plancache.LineData
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PeerLinePath {
			http.NotFound(w, r)
			return
		}
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		served = testLine(t, "ipsc860", r.URL.Query().Get("topology"), 3)
		json.NewEncoder(w).Encode(served)
	}))
	defer peer.Close()

	c, err := New(Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{peer.URL},
		FetchAttempts: 3,
		FetchBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := cubeOwnedBy(t, c.Ring(), "ipsc860", peer.URL)
	ld, err := c.FetchLine(context.Background(), "ipsc860", topo)
	if err != nil {
		t.Fatalf("fetch failed despite a retry budget of 3: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", calls.Load())
	}
	if ld.Topology != served.Topology || ld.Machine != "ipsc860" {
		t.Fatalf("fetched line %+v does not match served %+v", ld, served)
	}
	m := c.Metrics()
	if m.PeerHits != 1 || m.PeerFetchFailures != 0 || m.FallbackBuilds != 0 {
		t.Fatalf("counters after retried success: %+v", m)
	}
	if st := c.PeerStates(); st[0].Breaker != breakerClosed {
		t.Fatalf("breaker %s after success, want closed", st[0].Breaker)
	}
}

func TestFetchExhaustionTripsBreakerThenRecovers(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			http.Error(w, "broken", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(testLine(t, "ipsc860", r.URL.Query().Get("topology"), 3))
	}))
	defer peer.Close()

	clk := &fakeClock{t: time.Unix(0, 0)}
	c, err := New(Config{
		Self:             "http://self.invalid:1",
		Peers:            []string{peer.URL},
		FetchAttempts:    2,
		FetchBackoff:     time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		now:              clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := cubeOwnedBy(t, c.Ring(), "ipsc860", peer.URL)

	if _, err := c.FetchLine(context.Background(), "ipsc860", topo); err == nil {
		t.Fatal("fetch from a broken peer succeeded")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want the full 2-attempt budget", got)
	}
	if st := c.PeerStates(); st[0].Breaker != breakerOpen || st[0].BreakerTrips != 1 {
		t.Fatalf("breaker %+v after exhausted budget, want open with 1 trip", st[0])
	}

	// While open, fetches fail instantly without touching the peer.
	if _, err := c.FetchLine(context.Background(), "ipsc860", topo); err == nil ||
		!strings.Contains(err.Error(), "breaker is open") {
		t.Fatalf("open breaker did not fail fast: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("open breaker let a request through (%d calls)", got)
	}
	m := c.Metrics()
	if m.PeerFetchFailures != 2 || m.FallbackBuilds != 2 {
		t.Fatalf("failure counters: %+v", m)
	}

	// Cooldown over + peer fixed: the half-open probe closes it again.
	healthy.Store(true)
	clk.advance(2 * time.Minute)
	if _, err := c.FetchLine(context.Background(), "ipsc860", topo); err != nil {
		t.Fatalf("half-open probe against a healed peer failed: %v", err)
	}
	if st := c.PeerStates(); st[0].Breaker != breakerClosed {
		t.Fatalf("breaker %s after successful probe, want closed", st[0].Breaker)
	}
}

func TestFetchSkipsProbedDownPeer(t *testing.T) {
	var calls atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
	}))
	defer peer.Close()
	c, err := New(Config{Self: "http://self.invalid:1", Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	c.peers[peer.URL].up.Store(false) // what the health prober does
	topo, _ := cubeOwnedBy(t, c.Ring(), "ipsc860", peer.URL)
	if _, err := c.FetchLine(context.Background(), "ipsc860", topo); err == nil ||
		!strings.Contains(err.Error(), "down") {
		t.Fatalf("fetch from down peer: %v, want a down error", err)
	}
	if calls.Load() != 0 {
		t.Fatal("down peer was contacted")
	}
}

func TestFetchHonorsCallerDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer peer.Close()
	c, err := New(Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{peer.URL},
		FetchAttempts: 5,
		FetchTimeout:  10 * time.Second,
		FetchBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := cubeOwnedBy(t, c.Ring(), "ipsc860", peer.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	began := time.Now()
	if _, err := c.FetchLine(ctx, "ipsc860", topo); err == nil {
		t.Fatal("fetch with an expired caller context succeeded")
	}
	if took := time.Since(began); took > 5*time.Second {
		t.Fatalf("fetch ignored the caller deadline for %v", took)
	}
}

func TestProbeFlipsPeerState(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "dead", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, `{"status":"ok"}`)
	}))
	defer peer.Close()
	c, err := New(Config{Self: "http://self.invalid:1", Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	p := c.peers[peer.URL]
	p.breaker.failure() // leftover failure streak from the peer's past life

	c.probe(context.Background(), p)
	if !p.up.Load() {
		t.Fatal("healthy peer probed down")
	}
	healthy.Store(false)
	c.probe(context.Background(), p)
	if p.up.Load() {
		t.Fatal("broken peer probed up")
	}
	healthy.Store(true)
	c.probe(context.Background(), p)
	if !p.up.Load() {
		t.Fatal("healed peer probed down")
	}
	if _, fails, _ := p.breaker.snapshot(); fails != 0 {
		t.Fatalf("down→up transition did not reset the breaker (fails %d)", fails)
	}
}

func TestForwardFaultsMarksAndSkips(t *testing.T) {
	type seen struct {
		header string
		body   string
	}
	var got atomic.Pointer[seen]
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got.Store(&seen{header: r.Header.Get(ForwardedHeader), body: string(body)})
		io.WriteString(w, `{}`)
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("down peer received a forward")
	}))
	defer dead.Close()

	c, err := New(Config{Self: "http://self.invalid:1", Peers: []string{live.URL, dead.URL}})
	if err != nil {
		t.Fatal(err)
	}
	c.peers[dead.URL].up.Store(false)

	body := []byte(`{"topology":"hypercube-3","action":"clear"}`)
	forwarded, failed := c.ForwardFaults(context.Background(), body)
	if forwarded != 1 || failed != 1 {
		t.Fatalf("ForwardFaults = (%d, %d), want (1, 1)", forwarded, failed)
	}
	s := got.Load()
	if s == nil || s.header == "" {
		t.Fatal("forward missing the loop-guard header")
	}
	if s.body != string(body) {
		t.Fatalf("forward body %q, want %q", s.body, body)
	}
	m := c.Metrics()
	if m.FaultForwards != 1 || m.FaultForwardFailures != 1 {
		t.Fatalf("forward counters: %+v", m)
	}
}

func TestWarmOwnedImportsOnlyOwnedLines(t *testing.T) {
	var self string // filled once the cluster is built
	// The peer serves two lines; only the self-owned one must import.
	var ownedTopo, peerTopo string
	var ownedD, peerD int
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PeerSnapshotPath {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(plancache.Snapshot{
			Version: plancache.SnapshotVersion,
			Lines: []plancache.LineData{
				testLine(t, "ipsc860", ownedTopo, ownedD),
				testLine(t, "ipsc860", peerTopo, peerD),
			},
		})
	}))
	defer peer.Close()

	self = "http://self.invalid:1"
	c, err := New(Config{Self: self, Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ownedTopo, ownedD = cubeOwnedBy(t, c.Ring(), "ipsc860", self)
	peerTopo, peerD = cubeOwnedBy(t, c.Ring(), "ipsc860", peer.URL)

	cache := plancache.New(plancache.Config{})
	imported, err := c.WarmOwned(context.Background(), cache)
	if err != nil {
		t.Fatalf("WarmOwned: %v", err)
	}
	if imported != 1 {
		t.Fatalf("imported %d lines, want exactly the self-owned one", imported)
	}
	if _, ok := cache.ExportLine("ipsc860", ownedTopo); !ok {
		t.Errorf("owned line %s not resident after warm", ownedTopo)
	}
	if _, ok := cache.ExportLine("ipsc860", peerTopo); ok {
		t.Errorf("peer-owned line %s imported — ownership filter not applied", peerTopo)
	}
	if m := c.Metrics(); m.WarmedLines != 1 {
		t.Fatalf("warmed_lines_total = %d, want 1", m.WarmedLines)
	}
}
