package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/plancache"
)

// Peer endpoint paths. The service layer registers the handlers; the
// cluster layer is their only intended client.
const (
	// PeerLinePath serves one plan-cache line as plancache.LineData:
	// GET /v1/peer/line?machine=...&topology=...
	PeerLinePath = "/v1/peer/line"
	// PeerSnapshotPath serves every resident line (degraded included) as
	// a plancache.Snapshot document for warm fan-out.
	PeerSnapshotPath = "/v1/peer/snapshot"
	// healthPath is the liveness endpoint the prober polls.
	healthPath = "/healthz"
	// faultsPath is the fault-update endpoint forwards replay against.
	faultsPath = "/v1/faults"
)

// ForwardedHeader marks a fault update as a fleet forward so the
// receiving replica applies it locally without forwarding again —
// one hop, never a storm.
const ForwardedHeader = "X-Pland-Fault-Forwarded"

// Config parameterizes a Cluster. Self and Peers are required.
type Config struct {
	// Self is this replica's advertised base URL. It must appear
	// verbatim in every peer's Peers list: the ring is built over the
	// sorted union {Self} ∪ Peers, and only identical URL sets give
	// identical ownership on every replica.
	Self string
	// Peers are the other replicas' base URLs.
	Peers []string
	// VirtualNodes is the per-member virtual-node count (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// FetchAttempts bounds tries per peer fetch (default 3).
	FetchAttempts int
	// FetchTimeout is the per-attempt deadline (default 2s). A resident
	// line serves in microseconds; the deadline exists for the cold-owner
	// case, where the owner builds the line before answering.
	FetchTimeout time.Duration
	// FetchBackoff is the delay before the second attempt, doubled per
	// further attempt with up to 50% added jitter (default 50ms).
	FetchBackoff time.Duration
	// BreakerThreshold trips a peer's breaker after this many
	// consecutive fetch failures (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker refuses fetches
	// before admitting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// ProbeInterval is the health-poll period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health poll (default 1s).
	ProbeTimeout time.Duration
	// HTTPClient overrides the transport (default: a dedicated client;
	// per-call contexts carry the deadlines).
	HTTPClient *http.Client
	// Logger receives peer state transitions and forward failures
	// (default slog.Default()).
	Logger *slog.Logger

	// now is injected by tests; nil means time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.FetchAttempts <= 0 {
		c.FetchAttempts = 3
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Second
	}
	if c.FetchBackoff <= 0 {
		c.FetchBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// peer is one remote replica's serving state.
type peer struct {
	url     string
	breaker *breaker
	// up is 1 while the last health probe succeeded. Peers start up:
	// optimism costs at most one fast failed fetch, while pessimism
	// would cost guaranteed local builds until the first probe.
	up atomic.Bool
}

// Cluster is the peer layer over a static replica set. Safe for
// concurrent use.
type Cluster struct {
	cfg   Config
	ring  *Ring
	self  string
	peers map[string]*peer // keyed by base URL
	order []string         // stable iteration order (sorted)

	peerHits, peerFetchFailures, fallbackBuilds atomic.Int64
	faultForwards, faultForwardFailures         atomic.Int64
	warmedLines                                 atomic.Int64
}

// New builds the peer layer. Self must be non-empty and is excluded
// from its own peer set if listed.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	members := []string{self}
	peers := make(map[string]*peer)
	var order []string
	for _, p := range cfg.Peers {
		u, err := normalizeURL(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if u == self {
			continue
		}
		if _, dup := peers[u]; dup {
			continue
		}
		peers[u] = &peer{
			url:     u,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		}
		peers[u].up.Store(true)
		members = append(members, u)
		order = append(order, u)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("cluster: no peers besides self %s", self)
	}
	ring, err := NewRing(members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	sort.Strings(order)
	return &Cluster{cfg: cfg, ring: ring, self: self, peers: peers, order: order}, nil
}

// normalizeURL validates a base URL and strips any trailing slash so
// the same replica spelled two ways still dedups to one ring member.
func normalizeURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("base URL %q must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("base URL %q has no host", raw)
	}
	return raw, nil
}

// Self returns this replica's normalized advertised URL.
func (c *Cluster) Self() string { return c.self }

// Ring exposes the membership ring (the fleet e2e test and the load
// generator's owner report use it to predict placements).
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the replica URL owning a line key.
func (c *Cluster) Owner(machine, topo string) string {
	return c.ring.Owner(LineKey(machine, topo))
}

// FetchLine implements plancache.Config.Fetch: on a local miss, fetch
// the line from its ring owner. It declines (nil, nil) when this
// replica owns the key — the local build is the right move, not a
// fallback. Any error return means the caller will fall back to a
// local build, which is exactly what the fallback counter records.
func (c *Cluster) FetchLine(ctx context.Context, machine, topo string) (*plancache.LineData, error) {
	owner := c.Owner(machine, topo)
	if owner == c.self {
		return nil, nil
	}
	p := c.peers[owner]
	if p == nil {
		// A ring member that is not in the peer map cannot happen with a
		// consistent configuration; treat it as a decline.
		return nil, nil
	}
	sp := obs.StartSpan(ctx, "peer_fetch")
	sp.SetAttr("peer", owner)
	sp.SetAttr("machine", machine)
	sp.SetAttr("topology", topo)
	ld, err := c.fetchFrom(ctx, p, machine, topo)
	if err != nil {
		c.peerFetchFailures.Add(1)
		c.fallbackBuilds.Add(1)
		sp.SetAttr("outcome", "fallback_build")
		sp.End()
		return nil, err
	}
	c.peerHits.Add(1)
	sp.SetAttr("outcome", "hit")
	sp.End()
	return ld, nil
}

// fetchFrom runs the guarded fetch loop against one peer: skip if the
// peer is probed-down or its breaker refuses, otherwise up to
// FetchAttempts tries, each under its own deadline, with exponential
// backoff plus jitter between attempts.
func (c *Cluster) fetchFrom(ctx context.Context, p *peer, machine, topo string) (*plancache.LineData, error) {
	if !p.up.Load() {
		return nil, fmt.Errorf("cluster: peer %s is down", p.url)
	}
	if !p.breaker.allow() {
		return nil, fmt.Errorf("cluster: peer %s breaker is open", p.url)
	}
	backoff := c.cfg.FetchBackoff
	var lastErr error
	for attempt := 0; attempt < c.cfg.FetchAttempts; attempt++ {
		if attempt > 0 {
			// Full jitter on the upper half: backoff/2 .. backoff, so a
			// thundering herd of retriers decorrelates.
			d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				p.breaker.failure()
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		ld, err := c.fetchOnce(ctx, p.url, machine, topo)
		if err == nil {
			p.breaker.success()
			return ld, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller is gone; this says nothing about the peer, but
			// the attempt still failed.
			p.breaker.failure()
			return nil, ctx.Err()
		}
	}
	p.breaker.failure()
	return nil, fmt.Errorf("cluster: fetching %s/%s from %s: %w", machine, topo, p.url, lastErr)
}

// fetchOnce is one attempt under one deadline.
func (c *Cluster) fetchOnce(ctx context.Context, base, machine, topo string) (*plancache.LineData, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	q := url.Values{"machine": {machine}, "topology": {topo}}
	req, err := http.NewRequestWithContext(actx, http.MethodGet, base+PeerLinePath+"?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	// Propagate the originating request's ID so the owner's trace for
	// this line carries the same ID as the fetcher's.
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("peer answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var ld plancache.LineData
	if err := json.NewDecoder(resp.Body).Decode(&ld); err != nil {
		return nil, fmt.Errorf("decoding peer line: %w", err)
	}
	return &ld, nil
}

// Start launches the health-probe loop; it stops when ctx ends. An
// immediate first sweep runs before the ticker so /readyz reflects real
// peer state within one probe timeout of boot.
func (c *Cluster) Start(ctx context.Context) {
	go func() {
		c.probeAll(ctx)
		tick := time.NewTicker(c.cfg.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				c.probeAll(ctx)
			}
		}
	}()
}

// probeAll polls every peer's /healthz concurrently.
func (c *Cluster) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, u := range c.order {
		p := c.peers[u]
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.probe(ctx, p)
		}()
	}
	wg.Wait()
}

func (c *Cluster) probe(ctx context.Context, p *peer) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, p.url+healthPath, nil)
	if err != nil {
		return
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	up := err == nil && resp.StatusCode == http.StatusOK
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	was := p.up.Swap(up)
	if was != up {
		if up {
			// A restarted peer answers liveness again: clean slate.
			p.breaker.reset()
			c.cfg.Logger.Info("peer is up", "component", "cluster", "peer", p.url)
		} else {
			c.cfg.Logger.Warn("peer is down", "component", "cluster", "peer", p.url)
		}
	}
}

// WarmOwned fan-fetches snapshots from every live peer and imports the
// lines this replica owns — the warm-restart path: a replica joining a
// running fleet starts with its share of the fleet's resident lines
// instead of rebuilding them. Peers that fail are skipped (best
// effort); the import count and the last error are returned.
func (c *Cluster) WarmOwned(ctx context.Context, cache *plancache.Cache) (imported int, err error) {
	for _, u := range c.order {
		p := c.peers[u]
		if !p.up.Load() {
			continue
		}
		lines, ferr := c.fetchSnapshot(ctx, p.url)
		if ferr != nil {
			err = ferr
			continue
		}
		for _, ld := range lines {
			if c.ring.Owner(LineKey(ld.Machine, ld.Topology)) != c.self {
				continue
			}
			if ierr := cache.ImportLine(ld); ierr != nil {
				c.cfg.Logger.Warn("skipping warm line", "component", "cluster", "peer", p.url, "error", ierr)
				continue
			}
			imported++
		}
	}
	c.warmedLines.Add(int64(imported))
	return imported, err
}

func (c *Cluster) fetchSnapshot(ctx context.Context, base string) ([]plancache.LineData, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, base+PeerSnapshotPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s snapshot answered %d", base, resp.StatusCode)
	}
	var snap plancache.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("cluster: decoding peer %s snapshot: %w", base, err)
	}
	if snap.Version != plancache.SnapshotVersion {
		return nil, fmt.Errorf("cluster: peer %s snapshot version %d, want %d",
			base, snap.Version, plancache.SnapshotVersion)
	}
	return snap.Lines, nil
}

// ForwardFaults replays one fault-update body against every live peer
// (marked with ForwardedHeader so it is applied, not re-forwarded).
// Best effort: failures are counted, logged, and reported, never fatal
// — a partitioned peer re-converges on its next fault update or
// restart, and until then serves under its own digest.
func (c *Cluster) ForwardFaults(ctx context.Context, body []byte) (forwarded, failed int) {
	for _, u := range c.order {
		p := c.peers[u]
		if !p.up.Load() {
			failed++
			c.cfg.Logger.Warn("not forwarding faults to down peer", "component", "cluster", "peer", p.url)
			continue
		}
		if err := c.forwardOnce(ctx, p.url, body); err != nil {
			failed++
			c.cfg.Logger.Warn("forwarding faults failed", "component", "cluster", "peer", p.url, "error", err)
			continue
		}
		forwarded++
	}
	c.faultForwards.Add(int64(forwarded))
	c.faultForwardFailures.Add(int64(failed))
	return forwarded, failed
}

func (c *Cluster) forwardOnce(ctx context.Context, base string, body []byte) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, base+faultsPath, strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("peer answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// PeerMetrics is one peer's serving state on /metrics and /readyz.
type PeerMetrics struct {
	URL string `json:"url"`
	// Up is the last health-probe verdict.
	Up bool `json:"up"`
	// Breaker is "closed", "open", or "half-open".
	Breaker string `json:"breaker"`
	// ConsecutiveFailures is the current fetch-failure streak.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// BreakerTrips counts closed→open transitions.
	BreakerTrips int64 `json:"breaker_trips"`
}

// Metrics is the cluster slice of /metrics.
type Metrics struct {
	Self  string        `json:"self"`
	Peers []PeerMetrics `json:"peers"`
	// PeerHits counts misses filled by a successful owner fetch.
	PeerHits int64 `json:"peer_hits_total"`
	// PeerFetchFailures counts owner fetches that exhausted their
	// deadline/retry/breaker budget.
	PeerFetchFailures int64 `json:"peer_fetch_failures_total"`
	// FallbackBuilds counts local builds forced by a failed owner fetch
	// — the degraded-but-served path.
	FallbackBuilds int64 `json:"peer_fallback_builds_total"`
	// FaultForwards / FaultForwardFailures count per-peer fault-update
	// forward outcomes.
	FaultForwards        int64 `json:"fault_forwards_total"`
	FaultForwardFailures int64 `json:"fault_forward_failures_total"`
	// WarmedLines counts lines imported by startup snapshot fan-out.
	WarmedLines int64 `json:"warmed_lines_total"`
}

// Metrics returns a point-in-time snapshot.
func (c *Cluster) Metrics() Metrics {
	m := Metrics{
		Self:                 c.self,
		PeerHits:             c.peerHits.Load(),
		PeerFetchFailures:    c.peerFetchFailures.Load(),
		FallbackBuilds:       c.fallbackBuilds.Load(),
		FaultForwards:        c.faultForwards.Load(),
		FaultForwardFailures: c.faultForwardFailures.Load(),
		WarmedLines:          c.warmedLines.Load(),
	}
	m.Peers = c.PeerStates()
	return m
}

// PeerStates returns every peer's up/breaker state, sorted by URL.
func (c *Cluster) PeerStates() []PeerMetrics {
	out := make([]PeerMetrics, 0, len(c.order))
	for _, u := range c.order {
		p := c.peers[u]
		state, fails, trips := p.breaker.snapshot()
		out = append(out, PeerMetrics{
			URL:                 p.url,
			Up:                  p.up.Load(),
			Breaker:             state,
			ConsecutiveFailures: fails,
			BreakerTrips:        trips,
		})
	}
	return out
}
