// Package cluster turns N pland replicas into one logical plan cache.
//
// A consistent-hash ring with virtual nodes assigns every plan-cache
// line key — the digest-carrying (machine, topology name) pair — to an
// owner replica. On a local miss a non-owner first fetches the line
// from its owner over the internal /v1/peer/line endpoint, guarded by a
// per-attempt deadline, bounded retries with exponential backoff and
// jitter, and a per-peer circuit breaker (consecutive-failure trip,
// half-open probes); only when that fails does it fall back to a local
// singleflight build. A dead or slow peer must never make a request
// fail — only cost more.
//
// Membership is a static peer list plus lightweight health probing
// (/healthz polls drive peer up/down state, surfaced with breaker state
// on /metrics and /readyz). On startup a replica warm-fetches the lines
// it owns from any live peer (snapshot fan-out over /v1/peer/snapshot),
// and fault-set updates are forwarded to all live peers best-effort so
// digest-keyed invalidation stays fleet-consistent.
//
// The idiom follows Kohring's implicit simulations over messaging
// protocols: the paper's compute-once tables served over real IP
// messaging, where peers are slow, lossy, and restartable — so every
// cross-replica hop carries a deadline, a retry budget, and a local
// fallback rather than trust.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual-node count. 64 points
// per member keeps the ownership split of a small static fleet within a
// few percent of even while the ring stays tiny (3 replicas = 192
// points, one binary search per key).
const DefaultVirtualNodes = 64

// LineKey is the canonical ring key for one plan-cache line. Every
// layer — peer fetch, warm fan-out, the load generator's owner report —
// must hash the same bytes, so the composition lives here.
func LineKey(machine, topo string) string {
	return machine + "\x1f" + topo
}

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash  uint64
	owner int // index into members
}

// Ring is an immutable consistent-hash ring over a static member set.
// Construction sorts and dedups the members, so every replica that was
// given the same URL set — in any order — builds the identical ring and
// computes the identical owner for every key.
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing builds a ring over the given members with vnodes virtual
// nodes each (DefaultVirtualNodes when vnodes <= 0). Members are
// deduplicated; an empty member set is an error.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", m, v)),
				owner: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		// Hash collisions between virtual nodes are astronomically rare
		// but must still order deterministically across replicas.
		return p.owner < q.owner
	})
	return r, nil
}

// Members returns the sorted, deduplicated member set.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash position.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is a circle
	}
	return r.members[r.points[i].owner]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 avalanche finalizer. FNV-1a alone is not
// enough here: virtual-node labels differ only in a trailing counter
// ("host#0", "host#1", …), and FNV maps such strings to hashes that
// agree in nearly all high bits — every virtual node of a member
// collapses into one arc and the ring degenerates to one giant range
// per member. The finalizer avalanches every input bit across the
// word, spreading the points (and the keys) over the whole circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
