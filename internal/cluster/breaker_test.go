package cluster

import (
	"testing"
	"time"
)

// fakeClock is an adjustable time source for breaker tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Minute, clk.now)

	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused fetch %d", i)
		}
		b.failure()
	}
	if state, fails, trips := b.snapshot(); state != breakerClosed || fails != 2 || trips != 0 {
		t.Fatalf("below threshold: got (%s, %d, %d)", state, fails, trips)
	}
	b.failure() // third consecutive failure: trip
	if state, _, trips := b.snapshot(); state != breakerOpen || trips != 1 {
		t.Fatalf("at threshold: got state %s, trips %d", state, trips)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a fetch before cooldown")
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Minute, clk.now)
	b.failure()
	if state, _, _ := b.snapshot(); state != breakerOpen {
		t.Fatalf("threshold-1 breaker not open after one failure: %s", state)
	}

	clk.advance(59 * time.Second)
	if b.allow() {
		t.Fatal("breaker admitted a probe before cooldown elapsed")
	}
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.allow() {
		t.Fatal("second concurrent half-open probe admitted")
	}

	// Failed probe: straight back to open, another full cooldown.
	b.failure()
	if state, _, trips := b.snapshot(); state != breakerOpen || trips != 2 {
		t.Fatalf("failed probe: got state %s, trips %d", state, trips)
	}
	clk.advance(2 * time.Minute)
	if !b.allow() {
		t.Fatal("breaker refused probe after second cooldown")
	}
	b.success()
	if state, fails, _ := b.snapshot(); state != breakerClosed || fails != 0 {
		t.Fatalf("successful probe: got state %s, fails %d", state, fails)
	}
	if !b.allow() {
		t.Fatal("re-closed breaker refused a fetch")
	}
}

func TestBreakerReset(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Hour, clk.now)
	b.failure()
	if b.allow() {
		t.Fatal("open breaker admitted a fetch")
	}
	b.reset() // the health prober saw the peer come back
	if !b.allow() {
		t.Fatal("reset breaker refused a fetch")
	}
	if state, fails, _ := b.snapshot(); state != breakerClosed || fails != 0 {
		t.Fatalf("after reset: got state %s, fails %d", state, fails)
	}
}
