package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministicAcrossMemberOrder(t *testing.T) {
	members := []string{"http://c:1", "http://a:1", "http://b:1"}
	shuffled := []string{"http://b:1", "http://c:1", "http://a:1", "http://a:1"} // dup too
	r1, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := LineKey("ipsc860", fmt.Sprintf("hypercube-%d", i))
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("key %q: owner %q under one order, %q under another", key, o1, o2)
		}
	}
}

func TestRingDistributesKeys(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(LineKey("hypo", fmt.Sprintf("torus-%dx%d", i, i)))]++
	}
	for _, m := range members {
		if counts[m] < n/10 {
			t.Errorf("member %s owns only %d of %d keys — virtual nodes not spreading", m, counts[m], n)
		}
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"http://only:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("key-%d", i)); got != "http://only:1" {
			t.Fatalf("single-member ring returned %q", got)
		}
	}
}

func TestRingRejectsBadMemberSets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty member set accepted")
	}
	if _, err := NewRing([]string{"http://a:1", ""}, 0); err == nil {
		t.Error("empty member string accepted")
	}
}

func TestRingMembersSortedDeduped(t *testing.T) {
	r, err := NewRing([]string{"b", "a", "b"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Members()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members() = %v, want [a b]", got)
	}
}
