package cluster

import (
	"sync"
	"time"
)

// Breaker states. The JSON spellings are part of the /metrics and
// /readyz wire formats.
const (
	// breakerClosed: the peer is trusted; fetches flow.
	breakerClosed = "closed"
	// breakerOpen: too many consecutive failures; fetches are refused
	// locally (fast fallback to a local build) until the cooldown ends.
	breakerOpen = "open"
	// breakerHalfOpen: the cooldown ended and exactly one probe fetch is
	// allowed through; its outcome closes or re-opens the breaker.
	breakerHalfOpen = "half-open"
)

// breaker is one peer's circuit breaker: consecutive fetch failures
// trip it open, a cooldown later a single half-open probe is let
// through, and that probe's outcome decides between closed and another
// open period. While open, every would-be fetch fails instantly — the
// caller pays a local build instead of a deadline wait on a peer that
// has been failing anyway.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injected for tests

	mu       sync.Mutex
	state    string
	fails    int // consecutive failures
	openedAt time.Time
	trips    int64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		state:     breakerClosed,
	}
}

// allow reports whether a fetch may proceed. An open breaker whose
// cooldown has elapsed transitions to half-open and admits this one
// caller as the probe; further callers are refused until the probe
// reports back.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// success records a completed fetch: the breaker closes and the failure
// streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// failure records a failed fetch: a failed half-open probe re-opens
// immediately, a closed breaker opens once the streak reaches the
// threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// reset force-closes the breaker (a down→up health-probe transition:
// the peer restarted and answers /healthz again, so give it a clean
// slate rather than waiting out a cooldown from its previous life).
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// snapshot returns the state, consecutive-failure count, and trip total.
func (b *breaker) snapshot() (state string, fails int, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// An open breaker past its cooldown is reported open until a fetch
	// actually probes it; that is the truthful serving state.
	return b.state, b.fails, b.trips
}
