package comm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func newComm(t *testing.T, d int) *Communicator {
	t.Helper()
	c, err := New(d, model.IPSC860())
	if err != nil {
		t.Fatal(err)
	}
	c.SetTimeout(time.Minute)
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, model.IPSC860()); err == nil {
		t.Error("negative dim must fail")
	}
	if _, err := New(11, model.IPSC860()); err == nil {
		t.Error("dim > 10 must fail")
	}
	c := newComm(t, 3)
	if c.Size() != 8 || c.Dim() != 3 {
		t.Error("accessors wrong")
	}
}

func TestAllToAll(t *testing.T) {
	for _, d := range []int{0, 1, 3, 5} {
		c := newComm(t, d)
		n := c.Size()
		err := c.Run(func(r *Rank) error {
			send := make([][]byte, n)
			for i := range send {
				send[i] = []byte{byte(r.ID()), byte(i), 0xAB}
			}
			got, err := r.AllToAll(send)
			if err != nil {
				return err
			}
			for i := range got {
				want := []byte{byte(i), byte(r.ID()), 0xAB}
				if !bytes.Equal(got[i], want) {
					return fmt.Errorf("rank %d slot %d: %v, want %v", r.ID(), i, got[i], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Errorf("d=%d: %v", d, err)
		}
	}
}

func TestAllToAllValidation(t *testing.T) {
	c := newComm(t, 2)
	err := c.Run(func(r *Rank) error {
		if _, err := r.AllToAll(make([][]byte, 3)); err == nil {
			return fmt.Errorf("wrong block count accepted")
		}
		ragged := [][]byte{{1}, {1, 2}, {1}, {1}}
		if _, err := r.AllToAll(ragged); err == nil {
			return fmt.Errorf("ragged blocks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	c := newComm(t, 4)
	payload := []byte("hello hypercube")
	for _, root := range []int{0, 7, 15} {
		err := c.Run(func(r *Rank) error {
			var in []byte
			if r.ID() == root {
				in = payload
			}
			got, err := r.Bcast(root, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("rank %d got %q", r.ID(), got)
			}
			return nil
		})
		if err != nil {
			t.Errorf("root=%d: %v", root, err)
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	c := newComm(t, 3)
	n := c.Size()
	for _, root := range []int{0, 5} {
		err := c.Run(func(r *Rank) error {
			var blocks [][]byte
			if r.ID() == root {
				blocks = make([][]byte, n)
				for i := range blocks {
					blocks[i] = []byte{byte(i), byte(i * 3)}
				}
			}
			mine, err := r.Scatter(root, blocks)
			if err != nil {
				return err
			}
			if !bytes.Equal(mine, []byte{byte(r.ID()), byte(r.ID() * 3)}) {
				return fmt.Errorf("rank %d scattered %v", r.ID(), mine)
			}
			// Gather the scattered blocks back.
			all, err := r.Gather(root, mine)
			if err != nil {
				return err
			}
			if r.ID() == root {
				for i := range all {
					if !bytes.Equal(all[i], []byte{byte(i), byte(i * 3)}) {
						return fmt.Errorf("gather slot %d = %v", i, all[i])
					}
				}
			} else if all != nil {
				return fmt.Errorf("non-root got gather result")
			}
			return nil
		})
		if err != nil {
			t.Errorf("root=%d: %v", root, err)
		}
	}
}

func TestScatterValidation(t *testing.T) {
	c := newComm(t, 2)
	err := c.Run(func(r *Rank) error {
		if r.ID() != 0 {
			// Participate so the root's errors surface cleanly: the
			// invalid calls below fail at the root before any sends.
			return nil
		}
		if _, err := r.Scatter(9, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		if _, err := r.Scatter(0, make([][]byte, 2)); err == nil {
			return fmt.Errorf("wrong block count accepted")
		}
		if _, err := r.Scatter(0, [][]byte{{1}, {1, 2}, {1}, {1}}); err == nil {
			return fmt.Errorf("ragged blocks accepted")
		}
		return nil
	})
	// The other ranks block in nothing; only root validates. A deadlock
	// would surface as timeout error.
	if err != nil && err.Error() != "runtime: timeout waiting for node programs (deadlock?)" {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllGather(t *testing.T) {
	c := newComm(t, 4)
	err := c.Run(func(r *Rank) error {
		all, err := r.AllGather([]byte{byte(r.ID()), 0x55})
		if err != nil {
			return err
		}
		for i := range all {
			if !bytes.Equal(all[i], []byte{byte(i), 0x55}) {
				return fmt.Errorf("rank %d slot %d = %v", r.ID(), i, all[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	c := newComm(t, 5)
	n := c.Size()
	sum := func(a, b []byte) []byte {
		va := binary.LittleEndian.Uint64(a)
		vb := binary.LittleEndian.Uint64(b)
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, va+vb)
		return out
	}
	for _, root := range []int{0, 13} {
		err := c.Run(func(r *Rank) error {
			v := make([]byte, 8)
			binary.LittleEndian.PutUint64(v, uint64(r.ID()))
			res, err := r.Reduce(root, v, sum)
			if err != nil {
				return err
			}
			if r.ID() == root {
				want := uint64(n * (n - 1) / 2)
				if got := binary.LittleEndian.Uint64(res); got != want {
					return fmt.Errorf("sum = %d, want %d", got, want)
				}
			} else if res != nil {
				return fmt.Errorf("non-root got reduce result")
			}
			return nil
		})
		if err != nil {
			t.Errorf("root=%d: %v", root, err)
		}
	}
}

func TestBarrierAndPointToPoint(t *testing.T) {
	c := newComm(t, 3)
	err := c.Run(func(r *Rank) error {
		// Ring send: rank i → i+1 mod n.
		n := r.Size()
		next := (r.ID() + 1) % n
		prev := (r.ID() + n - 1) % n
		r.Send(next, []byte{byte(r.ID())})
		got := r.Recv(prev)
		if got[0] != byte(prev) {
			return fmt.Errorf("ring got %d from %d", got[0], prev)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllZeroBytes(t *testing.T) {
	c := newComm(t, 2)
	err := c.Run(func(r *Rank) error {
		send := make([][]byte, 4) // all nil = zero-length blocks
		got, err := r.AllToAll(send)
		if err != nil {
			return err
		}
		if len(got) != 4 {
			return fmt.Errorf("got %d slots", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The same ranks program must run unchanged on the simulated fabric, with
// the virtual-time verdict available afterwards — the payoff of the
// backend-parameterized communicator.
func TestCommunicatorOnSimFabric(t *testing.T) {
	const d = 3
	prm := model.IPSC860()
	sim := fabric.NewSim(simnet.New(topology.MustNew(d), prm))
	c, err := NewOn(sim, prm)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTimeout(time.Minute)
	n := c.Size()
	err = c.Run(func(r *Rank) error {
		send := make([][]byte, n)
		for i := range send {
			send[i] = []byte{byte(r.ID()), byte(i), 0xCD}
		}
		got, err := r.AllToAll(send)
		if err != nil {
			return err
		}
		for i := range got {
			want := []byte{byte(i), byte(r.ID()), 0xCD}
			if !bytes.Equal(got[i], want) {
				return fmt.Errorf("rank %d slot %d: %v, want %v", r.ID(), i, got[i], want)
			}
		}
		if r.Clock() <= 0 {
			return fmt.Errorf("rank %d: virtual clock not advanced", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.Messages == 0 {
		t.Errorf("sim result empty: %+v", res)
	}
}

// NewOn must reject fabrics whose size is not a power of two.
func TestNewOnValidation(t *testing.T) {
	fab, err := fabric.NewRuntime(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOn(fab, model.IPSC860()); err == nil {
		t.Error("non-power-of-two fabric must fail")
	}
}

// The §6 auto-tuner is pluggable: costing candidate plans on the network
// simulator must agree with the analytic model on the machines where the
// model is exact, while the chosen plan still executes on the real
// fabric.
func TestSimulatedTunerAgrees(t *testing.T) {
	const d, m = 4, 40
	prm := model.IPSC860()
	c := newComm(t, d)
	c.SetOptimizer(optimize.NewSimulated(prm))
	n := c.Size()
	err := c.Run(func(r *Rank) error {
		send := make([][]byte, n)
		for i := range send {
			send[i] = bytes.Repeat([]byte{byte(r.ID())}, m)
		}
		_, err := r.AllToAll(send)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	simChoice, err := optimize.NewSimulated(prm).Best(d, m)
	if err != nil {
		t.Fatal(err)
	}
	anaChoice, err := optimize.New(prm).Best(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if !simChoice.Part.Canonical().Equal(anaChoice.Part.Canonical()) {
		t.Errorf("simulated tuner picked %v, analytic %v", simChoice.Part, anaChoice.Part)
	}
}

func TestBcastBadRoot(t *testing.T) {
	c := newComm(t, 2)
	err := c.Run(func(r *Rank) error {
		if _, err := r.Bcast(-1, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
