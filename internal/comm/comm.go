// Package comm is the high-level message-passing interface of the
// library — the API a downstream application would program against, in
// the style of the MPI collectives this paper's algorithm fed into
// (MPI_Alltoall et al.). A Communicator wraps the goroutine runtime, the
// partition optimizer, and the collective algorithms:
//
//	c, _ := comm.New(5, model.IPSC860())      // 32 ranks
//	c.Run(func(r *comm.Rank) error {
//	    out := r.AllToAll(myBlocks)           // multiphase, auto-tuned
//	    all := r.AllGather(myBlock)
//	    r.Barrier()
//	    ...
//	})
//
// AllToAll picks the best multiphase partition for the block size via the
// §6 enumeration and executes the paper's algorithm; the tree collectives
// use the binomial/recursive-doubling schedules of package collectives.
package comm

import (
	"fmt"
	"time"

	"repro/internal/bitutil"
	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/runtime"
)

// Communicator is a group of 2^d ranks over the goroutine runtime with an
// auto-tuning all-to-all.
type Communicator struct {
	dim     int
	cluster *runtime.Cluster
	opt     *optimize.Optimizer
	timeout time.Duration
}

// New returns a communicator over a d-cube with the given machine model
// (used by the optimizer to choose multiphase partitions).
func New(d int, prm model.Params) (*Communicator, error) {
	if d < 0 || d > 10 {
		return nil, fmt.Errorf("comm: dimension %d out of range [0,10]", d)
	}
	cl, err := runtime.NewCluster(1 << uint(d))
	if err != nil {
		return nil, err
	}
	return &Communicator{
		dim:     d,
		cluster: cl,
		opt:     optimize.New(prm),
		timeout: 2 * time.Minute,
	}, nil
}

// SetTimeout overrides the watchdog for Run (default two minutes;
// non-positive means wait forever).
func (c *Communicator) SetTimeout(d time.Duration) { c.timeout = d }

// Size returns the number of ranks.
func (c *Communicator) Size() int { return 1 << uint(c.dim) }

// Dim returns the cube dimension.
func (c *Communicator) Dim() int { return c.dim }

// Rank is the per-goroutine handle inside Run.
type Rank struct {
	nd *runtime.Node
	c  *Communicator
}

// Run executes fn on every rank concurrently.
func (c *Communicator) Run(fn func(r *Rank) error) error {
	return c.cluster.Run(func(nd *runtime.Node) error {
		return fn(&Rank{nd: nd, c: c})
	}, c.timeout)
}

// ID returns this rank's id in [0, Size).
func (r *Rank) ID() int { return r.nd.ID() }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.c.Size() }

// Barrier blocks until every rank reaches it.
func (r *Rank) Barrier() { r.nd.Barrier() }

// Send and Recv expose raw point-to-point messaging.
func (r *Rank) Send(dst int, data []byte) { r.nd.Send(dst, data) }

// Recv blocks for the next message from src.
func (r *Rank) Recv(src int) []byte { return r.nd.Recv(src) }

// AllToAll performs the complete exchange: send[i] goes to rank i, and
// the result's slot j holds rank j's block for this rank. All blocks must
// have equal length (the paper's uniform block size m); the multiphase
// partition is chosen by the optimizer for that m. len(send) must equal
// Size.
func (r *Rank) AllToAll(send [][]byte) ([][]byte, error) {
	n := r.Size()
	if len(send) != n {
		return nil, fmt.Errorf("comm: AllToAll with %d blocks on %d ranks", len(send), n)
	}
	m := 0
	if n > 0 {
		m = len(send[0])
	}
	for i, b := range send {
		if len(b) != m {
			return nil, fmt.Errorf("comm: AllToAll block %d has %d bytes, want uniform %d",
				i, len(b), m)
		}
	}
	plan, err := r.c.plan(m)
	if err != nil {
		return nil, err
	}
	buf, err := exchange.NewBuffer(r.c.dim, m)
	if err != nil {
		return nil, err
	}
	for i, b := range send {
		copy(buf.Block(i), b)
	}
	if err := plan.Execute(r.nd, buf); err != nil {
		return nil, err
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = append([]byte(nil), buf.Block(i)...)
	}
	return out, nil
}

// plan returns the cached best plan for block size m (safe to call from
// every rank concurrently: the optimizer is concurrency-safe and the plan
// is deterministic, so all ranks agree).
func (c *Communicator) plan(m int) (*exchange.Plan, error) {
	return c.opt.Plan(c.dim, m)
}

// Bcast broadcasts root's data to every rank along the binomial tree;
// every rank returns the payload.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	n := r.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("comm: Bcast root %d out of range", root)
	}
	p := r.ID()
	rel := p ^ root
	var have []byte
	if rel == 0 {
		have = append([]byte(nil), data...)
	}
	for i := 0; i < r.c.dim; i++ {
		bit := 1 << uint(i)
		switch {
		case rel < bit:
			r.nd.Send(p^bit, have)
		case rel < bit*2:
			have = r.nd.Recv(p ^ bit)
		}
	}
	return have, nil
}

// Scatter delivers blocks[i] (given at the root) to rank i. Blocks must
// be uniform length; non-root ranks pass nil.
func (r *Rank) Scatter(root int, blocks [][]byte) ([]byte, error) {
	n := r.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("comm: Scatter root %d out of range", root)
	}
	p := r.ID()
	rel := p ^ root
	join := 1 << uint(r.c.dim)
	if rel != 0 {
		join = 1 << uint(bitutil.LowestSetBit(rel))
	}
	var held [][]byte
	if rel == 0 {
		if len(blocks) != n {
			return nil, fmt.Errorf("comm: Scatter with %d blocks on %d ranks", len(blocks), n)
		}
		m := len(blocks[0])
		held = make([][]byte, n)
		for j := 0; j < n; j++ {
			if len(blocks[j^root]) != m {
				return nil, fmt.Errorf("comm: Scatter blocks must be uniform")
			}
			held[j] = blocks[j^root] // held is indexed by relative address
		}
	}
	for i := r.c.dim - 1; i >= 0; i-- {
		bit := 1 << uint(i)
		switch {
		case bit < join:
			var msg []byte
			for j := bit; j < 2*bit && j < len(held); j++ {
				msg = append(msg, held[j]...)
			}
			r.nd.Send(p^bit, msg)
			if len(held) > bit {
				held = held[:bit]
			}
		case bit == join:
			msg := r.nd.Recv(p ^ bit)
			m := len(msg) / bit
			held = make([][]byte, bit)
			for j := 0; j < bit; j++ {
				held[j] = append([]byte(nil), msg[j*m:(j+1)*m]...)
			}
		}
	}
	if len(held) == 0 {
		return nil, fmt.Errorf("comm: Scatter rank %d received nothing", p)
	}
	return held[0], nil
}

// Gather collects every rank's block at the root; the root's result slot
// i holds rank i's block, other ranks return nil.
func (r *Rank) Gather(root int, block []byte) ([][]byte, error) {
	n := r.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("comm: Gather root %d out of range", root)
	}
	p := r.ID()
	rel := p ^ root
	join := 1 << uint(r.c.dim)
	if rel != 0 {
		join = 1 << uint(bitutil.LowestSetBit(rel))
	}
	held := [][]byte{append([]byte(nil), block...)}
	for i := 0; i < r.c.dim; i++ {
		bit := 1 << uint(i)
		switch {
		case bit < join:
			msg := r.nd.Recv(p ^ bit)
			m := len(msg) / bit
			for j := 0; j < bit; j++ {
				held = append(held, append([]byte(nil), msg[j*m:(j+1)*m]...))
			}
		case bit == join:
			var msg []byte
			for _, b := range held {
				msg = append(msg, b...)
			}
			r.nd.Send(p^bit, msg)
		}
	}
	if rel != 0 {
		return nil, nil
	}
	// held[j] is the block of relative address j; reindex to absolute.
	out := make([][]byte, n)
	for j := 0; j < n; j++ {
		out[j^root] = held[j]
	}
	return out, nil
}

// AllGather gives every rank every rank's block (slot i = rank i's
// block), via recursive doubling.
func (r *Rank) AllGather(block []byte) ([][]byte, error) {
	n := r.Size()
	p := r.ID()
	blocks := make([][]byte, n)
	blocks[p] = append([]byte(nil), block...)
	m := len(block)
	for i := 0; i < r.c.dim; i++ {
		bit := 1 << uint(i)
		peer := p ^ bit
		var msg []byte
		for q := 0; q < n; q++ {
			if q&^(bit-1) == p&^(bit-1) {
				if blocks[q] == nil {
					return nil, fmt.Errorf("comm: AllGather missing block %d at step %d", q, i)
				}
				msg = append(msg, blocks[q]...)
			}
		}
		in := r.nd.Exchange(peer, msg)
		if len(in) != bit*m {
			return nil, fmt.Errorf("comm: AllGather rank %d got %dB, want %d (mismatched block sizes?)",
				p, len(in), bit*m)
		}
		idx := 0
		for q := 0; q < n; q++ {
			if q&^(bit-1) == peer&^(bit-1) {
				blocks[q] = append([]byte(nil), in[idx*m:(idx+1)*m]...)
				idx++
			}
		}
	}
	return blocks, nil
}

// Reduce applies fn pairwise up the gather tree and returns the reduction
// of all ranks' values at the root (nil elsewhere). fn must be
// associative and commutative over the byte-slice encoding.
func (r *Rank) Reduce(root int, value []byte, fn func(a, b []byte) []byte) ([]byte, error) {
	n := r.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("comm: Reduce root %d out of range", root)
	}
	p := r.ID()
	rel := p ^ root
	join := 1 << uint(r.c.dim)
	if rel != 0 {
		join = 1 << uint(bitutil.LowestSetBit(rel))
	}
	acc := append([]byte(nil), value...)
	for i := 0; i < r.c.dim; i++ {
		bit := 1 << uint(i)
		switch {
		case bit < join:
			acc = fn(acc, r.nd.Recv(p^bit))
		case bit == join:
			r.nd.Send(p^bit, acc)
		}
	}
	if rel != 0 {
		return nil, nil
	}
	return acc, nil
}
