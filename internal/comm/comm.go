// Package comm is the high-level message-passing interface of the
// library — the API a downstream application would program against, in
// the style of the MPI collectives this paper's algorithm fed into
// (MPI_Alltoall et al.). A Communicator wraps a fabric backend, the
// partition optimizer, and the collective algorithms:
//
//	c, _ := comm.New(5, model.IPSC860())      // 32 ranks, real execution
//	c.Run(func(r *comm.Rank) error {
//	    out := r.AllToAll(myBlocks)           // multiphase, auto-tuned
//	    all := r.AllGather(myBlock)
//	    r.Barrier()
//	    ...
//	})
//
// AllToAll picks the best multiphase partition for the block size via the
// §6 enumeration and executes the paper's algorithm; the tree collectives
// use the binomial/recursive-doubling schedules of package collectives.
//
// The backend is pluggable: New targets the goroutine runtime (real data
// movement), while NewOn accepts any fabric — in particular a fabric.Sim,
// on which the same ranks program runs with virtual-time costing. The
// auto-tuner is equally pluggable via SetOptimizer: installing
// optimize.NewSimulated costs candidate plans on the network simulator
// before the chosen plan executes on the real fabric.
package comm

import (
	"fmt"
	"time"

	"repro/internal/bitutil"
	"repro/internal/collectives"
	"repro/internal/exchange"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/optimize"
)

// Communicator is a group of 2^d ranks over a fabric backend with an
// auto-tuning all-to-all.
type Communicator struct {
	dim     int
	fab     fabric.Fabric
	opt     *optimize.Optimizer
	timeout time.Duration
}

// New returns a communicator over a d-cube on the goroutine runtime with
// the given machine model (used by the optimizer to choose multiphase
// partitions).
func New(d int, prm model.Params) (*Communicator, error) {
	if d < 0 || d > 10 {
		return nil, fmt.Errorf("comm: dimension %d out of range [0,10]", d)
	}
	fab, err := fabric.NewRuntime(1 << uint(d))
	if err != nil {
		return nil, err
	}
	return newOn(d, fab, prm), nil
}

// NewOn returns a communicator over an existing fabric, which must have a
// power-of-two node count. Passing a fabric.Sim runs every rank program
// in the discrete-event machine's virtual time.
func NewOn(fab fabric.Fabric, prm model.Params) (*Communicator, error) {
	d := bitutil.Log2Exact(fab.N())
	if d < 0 {
		return nil, fmt.Errorf("comm: fabric size %d is not a power of two", fab.N())
	}
	return newOn(d, fab, prm), nil
}

func newOn(d int, fab fabric.Fabric, prm model.Params) *Communicator {
	return &Communicator{
		dim:     d,
		fab:     fab,
		opt:     optimize.New(prm),
		timeout: 2 * time.Minute,
	}
}

// SetTimeout overrides the watchdog for Run (default two minutes;
// non-positive means wait forever).
func (c *Communicator) SetTimeout(d time.Duration) { c.timeout = d }

// SetOptimizer replaces the plan auto-tuner; install
// optimize.NewSimulated(prm) to cost candidate partitions on the network
// simulator instead of the closed-form model.
func (c *Communicator) SetOptimizer(o *optimize.Optimizer) { c.opt = o }

// Fabric returns the backend the ranks execute on.
func (c *Communicator) Fabric() fabric.Fabric { return c.fab }

// Size returns the number of ranks.
func (c *Communicator) Size() int { return 1 << uint(c.dim) }

// Dim returns the cube dimension.
func (c *Communicator) Dim() int { return c.dim }

// Rank is the per-node handle inside Run.
type Rank struct {
	nd fabric.Node
	c  *Communicator
}

// Run executes fn on every rank concurrently.
func (c *Communicator) Run(fn func(r *Rank) error) error {
	return c.fab.Run(func(nd fabric.Node) error {
		return fn(&Rank{nd: nd, c: c})
	}, c.timeout)
}

// ID returns this rank's id in [0, Size).
func (r *Rank) ID() int { return r.nd.ID() }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.nd.N() }

// Clock returns the rank's current time in µs — wall clock on the
// runtime backend, virtual time on the simulated one.
func (r *Rank) Clock() float64 { return r.nd.Clock() }

// Barrier blocks until every rank reaches it.
func (r *Rank) Barrier() { r.nd.Barrier() }

// Send and Recv expose raw point-to-point messaging.
func (r *Rank) Send(dst int, data []byte) { r.nd.Send(dst, data) }

// PostRecv declares an upcoming receive from src ahead of the traffic
// (the §7.1 FORCED protocol; a costing backend prices it, the runtime
// ignores it).
func (r *Rank) PostRecv(src int) { r.nd.PostRecv(src) }

// Recv blocks for the next message from src.
func (r *Rank) Recv(src int) []byte { return r.nd.Recv(src) }

// AllToAll performs the complete exchange: send[i] goes to rank i, and
// the result's slot j holds rank j's block for this rank. All blocks must
// have equal length (the paper's uniform block size m); the multiphase
// partition is chosen by the optimizer for that m. len(send) must equal
// Size.
func (r *Rank) AllToAll(send [][]byte) ([][]byte, error) {
	n := r.Size()
	if len(send) != n {
		return nil, fmt.Errorf("comm: AllToAll with %d blocks on %d ranks", len(send), n)
	}
	m := 0
	if n > 0 {
		m = len(send[0])
	}
	for i, b := range send {
		if len(b) != m {
			return nil, fmt.Errorf("comm: AllToAll block %d has %d bytes, want uniform %d",
				i, len(b), m)
		}
	}
	plan, err := r.c.plan(m)
	if err != nil {
		return nil, err
	}
	buf, err := exchange.NewBuffer(r.c.dim, m)
	if err != nil {
		return nil, err
	}
	for i, b := range send {
		copy(buf.Block(i), b)
	}
	if err := plan.Execute(r.nd, buf); err != nil {
		return nil, err
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = append([]byte(nil), buf.Block(i)...)
	}
	return out, nil
}

// plan returns the cached best plan for block size m (safe to call from
// every rank concurrently: the optimizer is concurrency-safe and the plan
// is deterministic, so all ranks agree).
func (c *Communicator) plan(m int) (*exchange.Plan, error) {
	return c.opt.Plan(c.dim, m)
}

// Bcast broadcasts root's data to every rank along the binomial tree;
// every rank returns the payload.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	return collectives.BroadcastOn(r.nd, root, data)
}

// Scatter delivers blocks[i] (given at the root) to rank i. Blocks must
// be uniform length; non-root ranks pass nil.
func (r *Rank) Scatter(root int, blocks [][]byte) ([]byte, error) {
	return collectives.ScatterOn(r.nd, root, blocks)
}

// Gather collects every rank's block at the root; the root's result slot
// i holds rank i's block, other ranks return nil.
func (r *Rank) Gather(root int, block []byte) ([][]byte, error) {
	return collectives.GatherOn(r.nd, root, block)
}

// AllGather gives every rank every rank's block (slot i = rank i's
// block), via recursive doubling.
func (r *Rank) AllGather(block []byte) ([][]byte, error) {
	return collectives.AllGatherOn(r.nd, block)
}

// Reduce applies fn pairwise up the gather tree and returns the reduction
// of all ranks' values at the root (nil elsewhere). fn must be
// associative and commutative over the byte-slice encoding.
func (r *Rank) Reduce(root int, value []byte, fn func(a, b []byte) []byte) ([]byte, error) {
	return collectives.ReduceOn(r.nd, root, value, fn)
}
