package circuit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/topology"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRouteOrders(t *testing.T) {
	// 0→31 differs in bits 0..4.
	lo := ECubeOrder(0, 31)
	hi := HighFirstOrder(0, 31)
	for i := 0; i < 5; i++ {
		if lo[i] != i {
			t.Errorf("ECubeOrder = %v", lo)
			break
		}
		if hi[i] != 4-i {
			t.Errorf("HighFirstOrder = %v", hi)
			break
		}
	}
	if len(ECubeOrder(5, 5)) != 0 {
		t.Error("self route must have no dims")
	}
	if MixedOrder(0, 3)[0] != 0 || MixedOrder(1, 30)[0] != 4 {
		t.Error("MixedOrder policy wrong")
	}
}

func TestRunValidation(t *testing.T) {
	n := New(topology.MustNew(3), model.IPSC860Raw(), nil)
	if _, err := n.Run([]Message{{Src: 0, Dst: 9}}); err == nil {
		t.Error("out-of-cube must fail")
	}
	if _, err := n.Run([]Message{{Src: 0, Dst: 1, Bytes: -1}}); err == nil {
		t.Error("negative size must fail")
	}
	if _, err := n.Run([]Message{{Src: 0, Dst: 1, Start: -2}}); err == nil {
		t.Error("negative start must fail")
	}
}

// Uncontended latency must reduce to λ + τm + δh — the same law the
// path-level simulator and the analytic model use.
func TestUncontendedLatencyMatchesModel(t *testing.T) {
	prm := model.IPSC860Raw()
	n := New(topology.MustNew(5), prm, nil)
	for _, m := range []Message{
		{Src: 0, Dst: 31, Bytes: 100},
		{Src: 3, Dst: 3, Bytes: 64},
		{Src: 7, Dst: 8, Bytes: 0},
	} {
		res, err := n.Run([]Message{m})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked || !res.Completions[0].Done {
			t.Fatalf("message did not complete: %+v", res)
		}
		want := n.Latency(m)
		if !almost(res.Completions[0].Finish, want, 1e-9) {
			t.Errorf("%d→%d: finish %v, want %v", m.Src, m.Dst,
				res.Completions[0].Finish, want)
		}
		h := n.topo.Distance(m.Src, m.Dst)
		wantModel := prm.Delta*float64(h) + prm.Lambda + prm.Tau*float64(m.Bytes)
		if !almost(want, wantModel, 1e-9) {
			t.Errorf("Latency disagrees with model: %v vs %v", want, wantModel)
		}
	}
}

// Edge contention serializes: two messages over a shared link finish
// sequentially, and the second's delay equals the first's holding time of
// the shared prefix.
func TestSharedLinkSerializes(t *testing.T) {
	prm := model.IPSC860Raw()
	n := New(topology.MustNew(2), prm, nil)
	// 0→3 routes 0→1→3; 1→3 routes 1→3: both need link 1→3.
	res, err := n.Run([]Message{
		{Src: 0, Dst: 3, Bytes: 100},
		{Src: 1, Dst: 3, Bytes: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	f0 := res.Completions[0].Finish
	f1 := res.Completions[1].Finish
	if f0 == f1 {
		t.Error("shared-link messages cannot finish simultaneously")
	}
	// The later one must finish at least a full transmission after the
	// earlier one started streaming.
	later := math.Max(f0, f1)
	earlier := math.Min(f0, f1)
	if later-earlier < prm.Lambda {
		t.Errorf("serialization too small: %v", later-earlier)
	}
}

// The four-message cycle on a 2-cube: under mixed routing orders each
// circuit acquires its first link and waits for the next in a cycle —
// deadlock. Under e-cube the same batch completes.
func TestMixedOrderDeadlocksECubeDoesNot(t *testing.T) {
	prm := model.IPSC860Raw()
	// Four circuits around the 4-node ring 0→1→3→2→0, each holding one
	// ring link and wanting the next — the canonical hold-and-wait
	// cycle. The route orders are chosen per source to build the cycle.
	adversarial := func(src, dst int) []int {
		switch src {
		case 0: // 0→3: bit0 then bit1: 0→1→3
			return []int{0, 1}
		case 1: // 1→2: bit1 then bit0: 1→3→2
			return []int{1, 0}
		case 3: // 3→0: bit0 then bit1: 3→2→0
			return []int{0, 1}
		default: // 2→1: bit1 then bit0: 2→0→1
			return []int{1, 0}
		}
	}
	batch := []Message{
		{Src: 0, Dst: 3, Bytes: 10},
		{Src: 1, Dst: 2, Bytes: 10},
		{Src: 3, Dst: 0, Bytes: 10},
		{Src: 2, Dst: 1, Bytes: 10},
	}
	adv := New(topology.MustNew(2), prm, adversarial)
	res, err := adv.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("adversarial orders must deadlock")
	}
	stuck := 0
	for _, c := range res.Completions {
		if !c.Done {
			stuck++
			if len(c.PathHeld) == 0 {
				t.Error("deadlocked circuit must report held links")
			}
		}
	}
	if stuck != 4 {
		t.Errorf("%d circuits stuck, want all 4", stuck)
	}

	// Same batch under e-cube: completes.
	ec := New(topology.MustNew(2), prm, nil)
	res, err = ec.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("e-cube must not deadlock")
	}
	for i, c := range res.Completions {
		if !c.Done {
			t.Errorf("message %d incomplete under e-cube", i)
		}
	}
}

// The classical theorem, tested empirically: e-cube routing never
// deadlocks, for any random batch.
func TestECubeDeadlockFreedom(t *testing.T) {
	prm := model.IPSC860Raw()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		d := rng.Intn(4) + 2
		h := topology.MustNew(d)
		n := New(h, prm, nil)
		k := rng.Intn(40) + 2
		msgs := make([]Message, k)
		for i := range msgs {
			msgs[i] = Message{
				Src:   rng.Intn(h.Nodes()),
				Dst:   rng.Intn(h.Nodes()),
				Bytes: rng.Intn(500),
				Start: float64(rng.Intn(100)),
			}
		}
		res, err := n.Run(msgs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("trial %d: e-cube deadlocked on %v", trial, msgs)
		}
		for i, c := range res.Completions {
			if !c.Done {
				t.Fatalf("trial %d: message %d incomplete", trial, i)
			}
			if c.Finish < msgs[i].Start {
				t.Fatalf("trial %d: finish before start", trial)
			}
		}
	}
}

// Any single fixed order is deadlock-free too (high-first included).
func TestHighFirstAloneDeadlockFree(t *testing.T) {
	prm := model.IPSC860Raw()
	rng := rand.New(rand.NewSource(7))
	h := topology.MustNew(4)
	n := New(h, prm, HighFirstOrder)
	msgs := make([]Message, 30)
	for i := range msgs {
		msgs[i] = Message{Src: rng.Intn(16), Dst: rng.Intn(16), Bytes: 64}
	}
	res, err := n.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("uniform high-first order must be deadlock-free")
	}
}

// The XOR schedule, run as raw circuits, stays contention-free: every
// message of a step finishes in exactly the uncontended latency.
func TestXORStepAtHopLevel(t *testing.T) {
	prm := model.IPSC860Raw()
	h := topology.MustNew(4)
	n := New(h, prm, nil)
	for mask := 1; mask < 16; mask++ {
		msgs := make([]Message, 0, 16)
		for p := 0; p < 16; p++ {
			msgs = append(msgs, Message{Src: p, Dst: p ^ mask, Bytes: 64})
		}
		res, err := n.Run(msgs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("mask %d deadlocked", mask)
		}
		want := n.Latency(msgs[0])
		for i, c := range res.Completions {
			if !almost(c.Finish, want, 1e-9) {
				t.Errorf("mask %d msg %d: finish %v, want %v (contention-free)",
					mask, i, c.Finish, want)
			}
		}
	}
}

// Dimension-ordered routing without wraparound acquires links in a
// fixed global order, so mesh batches always complete under hop-level
// hold-and-wait.
func TestMeshBatchesComplete(t *testing.T) {
	prm := model.IPSC860Raw()
	for _, spec := range []string{"mesh-3x3", "mesh-4x2x2"} {
		net := topology.MustParseSpec(spec)
		n := New(net, prm, nil)
		rng := rand.New(rand.NewSource(7))
		var msgs []Message
		for i := 0; i < 30; i++ {
			msgs = append(msgs, Message{
				Src:   rng.Intn(net.Nodes()),
				Dst:   rng.Intn(net.Nodes()),
				Bytes: 64,
				Start: float64(rng.Intn(100)),
			})
		}
		res, err := n.Run(msgs)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if res.Deadlocked {
			t.Errorf("%s: dimension-ordered mesh batch deadlocked", spec)
		}
	}
	// An explicit bit order on a non-hypercube is rejected.
	tor := topology.MustParseSpec("torus-3x3")
	if _, err := New(tor, prm, ECubeOrder).Run([]Message{{Src: 0, Dst: 4}}); err == nil {
		t.Error("explicit routing order on a torus must fail")
	}
}

// Torus wraparound reintroduces the circular-wait hazard even under
// dimension-ordered routing — the classical reason k-ary n-cubes need
// virtual channels. Four same-direction circuits around a 4-ring each
// hold one link and wait for the next; the hop-level walker must report
// the deadlock, while the same traffic completes when injections are
// staggered enough to drain.
func TestTorusWrapCycleDeadlocks(t *testing.T) {
	prm := model.IPSC860Raw()
	ring := topology.MustParseSpec("torus-4")
	cycle := []Message{
		{Src: 0, Dst: 2, Bytes: 64},
		{Src: 1, Dst: 3, Bytes: 64},
		{Src: 2, Dst: 0, Bytes: 64},
		{Src: 3, Dst: 1, Bytes: 64},
	}
	res, err := New(ring, prm, nil).Run(cycle)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("simultaneous wrap cycle should deadlock under hold-and-wait")
	}
	// Staggered injection lets each circuit complete before the next
	// needs its links.
	staggered := make([]Message, len(cycle))
	copy(staggered, cycle)
	for i := range staggered {
		staggered[i].Start = float64(i) * 10000
	}
	res, err = New(ring, prm, nil).Run(staggered)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("staggered wrap traffic must complete")
	}
}
