// Package circuit is a hop-level model of circuit-switched communication,
// one level below package simnet. Where simnet reserves a whole e-cube
// path atomically, this simulator walks the header through the network
// the way §2 describes the hardware: the probe advances one link at a
// time (δ per dimension), *holding every link acquired so far* while it
// waits for the next one. Partial-path holding is the real hazard of
// circuit switching: with inconsistent routing orders, circuits can
// hold-and-wait in a cycle and deadlock.
//
// The package exists to demonstrate two classical facts the paper relies
// on implicitly:
//
//   - dimension-ordered (e-cube) routing is deadlock-free: any batch of
//     messages completes (tests exercise random batches);
//   - mixed routing orders can deadlock: a four-message cycle on a
//     2-cube deadlocks under adversarial orders and completes under
//     e-cube (the tests construct it).
//
// For uncontended traffic the end-to-end latency reduces to the model's
// λ + τ·m + δ·h, so the hop-level and path-level simulators agree.
package circuit

import (
	"fmt"
	"sort"

	"repro/internal/bitutil"
	"repro/internal/event"
	"repro/internal/model"
	"repro/internal/topology"
)

// RouteOrder returns the order (as a list of dimension indices) in which
// a message from src to dst corrects its differing bits.
type RouteOrder func(src, dst int) []int

// ECubeOrder corrects the lowest differing bit first — the machine's
// fixed routing (§2), which is deadlock-free.
func ECubeOrder(src, dst int) []int {
	var dims []int
	for diff := src ^ dst; diff != 0; {
		b := bitutil.LowestSetBit(diff)
		dims = append(dims, b)
		diff &^= 1 << uint(b)
	}
	return dims
}

// HighFirstOrder corrects the highest differing bit first. Any *fixed*
// dimension order is deadlock-free; this one exists to combine with
// ECubeOrder for the mixed-order deadlock demonstration.
func HighFirstOrder(src, dst int) []int {
	dims := ECubeOrder(src, dst)
	bitutil.ReverseInts(dims)
	return dims
}

// MixedOrder routes even-labelled sources lowest-bit-first and odd ones
// highest-bit-first — an adversarial (non-uniform) policy that admits
// hold-and-wait cycles.
func MixedOrder(src, dst int) []int {
	if src%2 == 0 {
		return ECubeOrder(src, dst)
	}
	return HighFirstOrder(src, dst)
}

// Message is one transfer injected into the network.
type Message struct {
	Src, Dst int
	Bytes    int
	Start    float64 // injection time, µs
}

// Completion records the fate of one message.
type Completion struct {
	Msg      Message
	Finish   float64 // µs; meaningful only when Done
	Done     bool
	PathHeld []topology.Edge // links held when the run ended (deadlock diagnosis)
}

// Result is the outcome of one Run.
type Result struct {
	Completions []Completion
	Makespan    float64
	// Deadlocked reports that some circuits could not complete because
	// of a hold-and-wait cycle (or starvation); their Completions have
	// Done == false and list the links they held.
	Deadlocked bool
}

// Network is the hop-level simulator.
type Network struct {
	topo  topology.Network
	prm   model.Params
	order RouteOrder
}

// New returns a hop-level network over any topology. order overrides the
// routing policy with an explicit bit-correction order — it is defined
// on label bits, so a non-nil order requires a hypercube (Run reports an
// error otherwise); nil means the topology's own dimension-ordered
// routing, which works on every shape.
func New(t topology.Network, prm model.Params, order RouteOrder) *Network {
	return &Network{topo: t, prm: prm, order: order}
}

// path returns the node sequence message m's header will walk.
func (n *Network) path(m Message) ([]int, error) {
	if n.order == nil {
		return n.topo.Route(m.Src, m.Dst)
	}
	if _, ok := n.topo.(*topology.Hypercube); !ok {
		return nil, fmt.Errorf("circuit: explicit routing orders are bit-based and need a hypercube, not %s",
			n.topo.Name())
	}
	p := []int{m.Src}
	cur := m.Src
	for _, dim := range n.order(m.Src, m.Dst) {
		cur = bitutil.FlipBit(cur, dim)
		p = append(p, cur)
	}
	if cur != m.Dst {
		return nil, fmt.Errorf("circuit: routing order for %d→%d ends at %d", m.Src, m.Dst, cur)
	}
	return p, nil
}

type link struct {
	owner   *circuitState
	waiters []*circuitState // FIFO
}

type circuitState struct {
	idx  int // index into messages
	msg  Message
	path []int // remaining nodes the header must visit
	at   int   // current node of the header
	held []topology.Edge
	done bool
}

// Run injects the messages and simulates until completion or quiescence.
// Quiescence with incomplete circuits is reported as deadlock rather than
// as an error: callers inspect Result.Deadlocked.
func (n *Network) Run(messages []Message) (Result, error) {
	paths := make([][]int, len(messages))
	for i, m := range messages {
		if !n.topo.Contains(m.Src) || !n.topo.Contains(m.Dst) {
			return Result{}, fmt.Errorf("circuit: message %d→%d outside %s",
				m.Src, m.Dst, n.topo.Name())
		}
		if m.Bytes < 0 || m.Start < 0 {
			return Result{}, fmt.Errorf("circuit: negative size or start time")
		}
		p, err := n.path(m)
		if err != nil {
			return Result{}, err
		}
		paths[i] = p[1:] // the header starts at src
	}
	eng := event.New()
	links := make(map[topology.Edge]*link)
	res := Result{Completions: make([]Completion, len(messages))}
	for i, m := range messages {
		res.Completions[i] = Completion{Msg: m}
	}

	getLink := func(e topology.Edge) *link {
		l, ok := links[e]
		if !ok {
			l = &link{}
			links[e] = l
		}
		return l
	}

	var advance func(cs *circuitState, now event.Time)

	// release frees every link the circuit holds and hands each to its
	// next waiter.
	release := func(cs *circuitState, now event.Time) {
		held := cs.held
		cs.held = nil
		for _, e := range held {
			l := getLink(e)
			l.owner = nil
			if len(l.waiters) > 0 {
				next := l.waiters[0]
				l.waiters = l.waiters[1:]
				l.owner = next
				next.held = append(next.held, e)
				// The granted circuit crosses the link now; the hop it
				// was retrying (kept at the front of path) is consumed.
				next.path = next.path[1:]
				nc := next
				eng.At(now+event.Time(n.prm.Delta), func(t event.Time) {
					nc.at = e.To
					advance(nc, t)
				})
			}
		}
	}

	advance = func(cs *circuitState, now event.Time) {
		if cs.done {
			return
		}
		if cs.at == cs.msg.Dst {
			// Path complete: stream the payload, then tear down.
			dur := n.prm.Lambda + n.prm.Tau*float64(cs.msg.Bytes)
			eng.At(now+event.Time(dur), func(t event.Time) {
				cs.done = true
				res.Completions[cs.idx].Done = true
				res.Completions[cs.idx].Finish = float64(t)
				if float64(t) > res.Makespan {
					res.Makespan = float64(t)
				}
				release(cs, t)
			})
			return
		}
		// Next link of the precomputed dimension-ordered path.
		e := topology.Edge{From: cs.at, To: cs.path[0]}
		l := getLink(e)
		if l.owner == nil {
			l.owner = cs
			cs.held = append(cs.held, e)
			cs.path = cs.path[1:]
			eng.At(now+event.Time(n.prm.Delta), func(t event.Time) {
				cs.at = e.To
				advance(cs, t)
			})
			return
		}
		// Hold-and-wait: keep everything we have, queue on the link; the
		// pending hop stays at the front of path until granted.
		l.waiters = append(l.waiters, cs)
	}

	states := make([]*circuitState, len(messages))
	for i, m := range messages {
		cs := &circuitState{idx: i, msg: m, at: m.Src, path: paths[i]}
		states[i] = cs
		eng.At(event.Time(m.Start), func(t event.Time) { advance(cs, t) })
	}
	if !eng.RunLimit(10_000_000) {
		return res, fmt.Errorf("circuit: event budget exhausted")
	}
	for _, cs := range states {
		if !cs.done {
			res.Deadlocked = true
			held := append([]topology.Edge(nil), cs.held...)
			sort.Slice(held, func(i, j int) bool {
				if held[i].From != held[j].From {
					return held[i].From < held[j].From
				}
				return held[i].To < held[j].To
			})
			res.Completions[cs.idx].PathHeld = held
		}
	}
	return res, nil
}

// Latency returns the uncontended end-to-end latency of one message under
// the hop model: δ·h header walk + λ + τ·m streaming.
func (n *Network) Latency(m Message) float64 {
	h := n.topo.Distance(m.Src, m.Dst)
	return n.prm.Delta*float64(h) + n.prm.Lambda + n.prm.Tau*float64(m.Bytes)
}
