package model

import (
	"strings"
	"testing"
)

func TestMachinesRegistry(t *testing.T) {
	reg := Machines()
	want := map[string]Params{
		"ipsc860":        IPSC860(),
		"ipsc860-raw":    IPSC860Raw(),
		"ipsc860-nosync": IPSC860NoSync(),
		"ncube2":         Ncube2(),
		"hypo":           Hypothetical(),
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d machines, want %d", len(reg), len(want))
	}
	for name, p := range want {
		got, ok := reg[name]
		if !ok {
			t.Fatalf("registry missing %q", name)
		}
		if got != p {
			t.Errorf("registry[%q] = %+v, want %+v", name, got, p)
		}
	}
}

func TestMachineByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Params
	}{
		{"ipsc860", IPSC860()},
		{"ipsc", IPSC860()},              // alias
		{"IPSC860", IPSC860()},           // case-insensitive
		{" ncube2 ", Ncube2()},           // trimmed
		{"ipsc-nosync", IPSC860NoSync()}, // alias
		{"hypo", Hypothetical()},
	} {
		got, err := MachineByName(tc.name)
		if err != nil {
			t.Fatalf("MachineByName(%q): %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("MachineByName(%q) = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestMachineByNameUnknownListsValidSet(t *testing.T) {
	_, err := MachineByName("cray")
	if err == nil {
		t.Fatal("expected error for unknown machine")
	}
	for _, name := range MachineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid machine %q", err, name)
		}
	}
}

func TestMachineNamesSorted(t *testing.T) {
	names := MachineNames()
	if len(names) != len(Machines()) {
		t.Fatalf("MachineNames has %d entries, registry %d", len(names), len(Machines()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
