package model

import (
	"fmt"

	"repro/internal/partition"
)

// StandardExchange returns the modeled time in µs of the Standard Exchange
// algorithm on a d-cube with block size m — paper eq. (1):
//
//	t_s(m,d) = d·(λ + m(τ+2ρ)·2^(d-1) + δ)
//
// The d transmissions are nearest-neighbour (distance 1) and each carries
// 2^(d-1) blocks; each step is followed by a shuffle of the 2^d resident
// blocks, accounted as 2ρ·m·2^(d-1) per step.
//
// Synchronization modeling follows Params: each of the d steps is a
// pairwise exchange, so the effective λ, τ, δ of the exchange mode are
// used, and with GlobalSyncPerPhase a single global synchronization is
// charged for the posting of all receives up front (§7.3).
func (p Params) StandardExchange(m, d int) float64 {
	if d == 0 {
		return 0
	}
	half := float64(int(1) << uint(d-1))
	t := float64(d) * (p.EffLambda() + float64(m)*(p.EffTau()+2*p.Rho)*half + p.EffDelta())
	if p.GlobalSyncPerPhase {
		t += p.GlobalSync(d)
	}
	return t
}

// OptimalCircuitSwitched returns the modeled time in µs of the Optimal
// Circuit-Switched algorithm on a d-cube with block size m — paper eq. (2):
//
//	t_o(m,d) = (2^d−1)·(λ + τm + δ·d·2^(d-1)/(2^d−1))
//
// There are 2^d−1 pairwise exchanges of one block each; at step i every
// processor exchanges with its XOR-partner, and the sum of path lengths
// over all steps equals d·2^(d-1) (the total weight of all nonzero XOR
// masks), giving the average-distance term.
func (p Params) OptimalCircuitSwitched(m, d int) float64 {
	if d == 0 {
		return 0
	}
	steps := float64(int(1)<<uint(d) - 1)
	totalDist := float64(d) * float64(int(1)<<uint(d-1))
	t := steps*(p.EffLambda()+p.EffTau()*float64(m)) + p.EffDelta()*totalDist
	if p.GlobalSyncPerPhase {
		t += p.GlobalSync(d)
	}
	return t
}

// EffectiveBlockSize returns the superblock size m·2^(d−di) moved during a
// partial exchange of subcube dimension di within a d-cube (§5.2).
func EffectiveBlockSize(m, d, di int) int {
	return m * (1 << uint(d-di))
}

// PhaseCost returns the modeled time in µs of one partial exchange of
// subcube dimension di within a d-cube, block size m, using the
// circuit-switched algorithm inside the subcube — the structure of paper
// eq. (3):
//
//	(2^di−1)·(λ_eff + τ·m_i + δ_eff·di·2^(di-1)/(2^di−1)) + ρ·2^d·m + Γd
//
// where m_i = m·2^(d−di) is the effective block size, the shuffle term
// ρ·2^d·m is omitted when di == d (a d-shuffle of 2^d blocks is the
// identity, §7.4), and Γd is the per-phase global synchronization when
// enabled.
func (p Params) PhaseCost(m, d, di int) float64 {
	if di <= 0 {
		return 0
	}
	mi := float64(EffectiveBlockSize(m, d, di))
	steps := float64(int(1)<<uint(di) - 1)
	totalDist := float64(di) * float64(int(1)<<uint(di-1))
	t := steps*(p.EffLambda()+p.EffTau()*mi) + p.EffDelta()*totalDist
	if di != d {
		t += p.ShuffleTime(m, d)
	}
	if p.GlobalSyncPerPhase {
		t += p.GlobalSync(d)
	}
	return t
}

// PhaseCostStandard returns the modeled time of one partial exchange of
// subcube dimension di performed with the Standard Exchange algorithm
// *inside* the subcube: di nearest-neighbour transmissions each carrying
// half of the subcube-relevant superblocks (di·m_i·2^(di−1) bytes total),
// with internal shuffles, plus the cross-phase shuffle. Used when the
// optimizer is allowed to pick the per-phase algorithm (§6).
func (p Params) PhaseCostStandard(m, d, di int) float64 {
	if di <= 0 {
		return 0
	}
	mi := float64(EffectiveBlockSize(m, d, di))
	half := float64(int(1) << uint(di-1))
	t := float64(di) * (p.EffLambda() + mi*(p.EffTau()+2*p.Rho)*half + p.EffDelta())
	if di != d {
		t += p.ShuffleTime(m, d)
	}
	if p.GlobalSyncPerPhase {
		t += p.GlobalSync(d)
	}
	return t
}

// PhaseAlg identifies the algorithm used within one phase's subcubes.
type PhaseAlg int

const (
	// PhaseCS runs the phase with the circuit-switched pairwise schedule.
	PhaseCS PhaseAlg = iota
	// PhaseSE runs the phase with standard exchange inside each subcube.
	PhaseSE
)

func (a PhaseAlg) String() string {
	switch a {
	case PhaseCS:
		return "CS"
	case PhaseSE:
		return "SE"
	default:
		return fmt.Sprintf("PhaseAlg(%d)", int(a))
	}
}

// PhaseBreakdown describes the modeled cost of a single phase.
type PhaseBreakdown struct {
	SubcubeDim int      // di
	EffBlock   int      // m·2^(d−di) bytes
	Alg        PhaseAlg // algorithm used inside the subcubes
	Time       float64  // µs, including shuffle and per-phase sync
}

// Multiphase returns the modeled total time in µs of the multiphase
// complete exchange with partition D on a d-cube with block size m, with
// every phase using the circuit-switched algorithm (as in the paper's
// iPSC-860 implementation). The per-phase breakdown is also returned.
func (p Params) Multiphase(m, d int, D partition.Partition) (float64, []PhaseBreakdown) {
	total := 0.0
	phases := make([]PhaseBreakdown, 0, len(D))
	for _, di := range D {
		t := p.PhaseCost(m, d, di)
		total += t
		phases = append(phases, PhaseBreakdown{
			SubcubeDim: di,
			EffBlock:   EffectiveBlockSize(m, d, di),
			Alg:        PhaseCS,
			Time:       t,
		})
	}
	return total, phases
}

// MultiphaseBestAlg returns the modeled total time with the cheaper of the
// two per-phase algorithms chosen independently for every phase (§6: "For
// each partition D we select the best algorithm at each phase").
func (p Params) MultiphaseBestAlg(m, d int, D partition.Partition) (float64, []PhaseBreakdown) {
	total := 0.0
	phases := make([]PhaseBreakdown, 0, len(D))
	for _, di := range D {
		cs := p.PhaseCost(m, d, di)
		se := p.PhaseCostStandard(m, d, di)
		alg, t := PhaseCS, cs
		if se < cs {
			alg, t = PhaseSE, se
		}
		total += t
		phases = append(phases, PhaseBreakdown{
			SubcubeDim: di,
			EffBlock:   EffectiveBlockSize(m, d, di),
			Alg:        alg,
			Time:       t,
		})
	}
	return total, phases
}

// CrossoverBlockSize returns the block size below which the Standard
// Exchange algorithm is faster than the Optimal Circuit-Switched algorithm
// on a d-cube (paper §4.3):
//
//	m < [ (2^d−d−1)λ + d(2^(d-1)−1)δ ] / [ (d·2^(d-1)−2^d+1)τ + d·2^d·ρ ]
//
// computed with the effective λ and δ of the parameter set. For d ≤ 1 the
// two algorithms coincide and 0 is returned.
func (p Params) CrossoverBlockSize(d int) float64 {
	if d <= 1 {
		return 0
	}
	n := float64(int(1) << uint(d))
	half := n / 2
	num := (n-float64(d)-1)*p.EffLambda() + float64(d)*(half-1)*p.EffDelta()
	den := (float64(d)*half-n+1)*p.EffTau() + float64(d)*n*p.Rho
	if den == 0 {
		return 0
	}
	return num / den
}
