package model

import (
	"fmt"
	"sync"

	"repro/internal/partition"
	"repro/internal/topology"
)

// This file generalizes the §4.3/§7.4 closed forms from the binary
// hypercube to any topology.Network. A phase over a dimension group of
// span S (the product of the group's radices) runs S−1 steps moving
// superblocks of m·n/S bytes. On an all-radix-2 group the steps are the
// XOR pairwise schedule and the total routed distance over the steps is
// w·2^(w−1), exactly eq. (3); on mixed-radix groups the steps are cyclic
// field shifts and the distance term is the sum over steps of the
// worst-case routed distance within a sub-block, computed once per
// (topology, field) and memoized.

// shiftDistKey memoizes phaseDistTotal per (topology name, field).
type shiftDistKey struct {
	name  string
	lo, w int
}

var shiftDistMemo sync.Map // shiftDistKey -> float64

// exactShiftDistSpan bounds the field span for which the worst-case
// shift distances are computed by exact O(span²) enumeration. Larger
// fields use the O(Σ radices) per-dimension closed form below — a
// serving tier must never run an enumeration quadratic in an
// attacker-chosen span (a single /v1/plan for a big torus would
// otherwise pin a CPU for hours).
const exactShiftDistSpan = 4096

// phaseDistTotal returns the total routed distance charged to one phase
// over the dimension field [lo, lo+w): Σ_j max_f dist(f, f+j) for cyclic
// phases, w·2^(w−1) for XOR phases (where every step's distance is
// uniform, popcount(j)). Beyond exactShiftDistSpan the cyclic term is
// the per-dimension worst-case closed form: adding j to a field shifts
// digit i by j_i plus at most one carry, so the step's distance is at
// most Σ_i M_i(j_i) with M_i(v) the worst per-dimension digit distance
// over the carry cases; summed over j, each digit value occurs span/r_i
// times, giving Σ_i (span/r_i)·Σ_v M_i(v) − Σ_i M_i(0).
func phaseDistTotal(net topology.Network, lo, w int) float64 {
	dims := net.Dims()
	xor := true
	span := 1
	for i := lo; i < lo+w; i++ {
		span *= dims[i]
		if dims[i] != 2 {
			xor = false
		}
	}
	if xor {
		return float64(w) * float64(span/2)
	}
	key := shiftDistKey{name: net.Name(), lo: lo, w: w}
	if v, ok := shiftDistMemo.Load(key); ok {
		return v.(float64)
	}
	var total float64
	if span <= exactShiftDistSpan {
		// Distances between nodes differing only inside the field are
		// field-local, so the sub-block anchored at label 0 is
		// representative: node(f) = f·stride. (Faults break this
		// symmetry; degraded phases are priced by phaseMetricsDegraded,
		// never here.)
		stride := net.Stride(lo)
		for j := 1; j < span; j++ {
			maxDist := 0
			for f := 0; f < span; f++ {
				if d := net.Distance(f*stride, ((f+j)%span)*stride); d > maxDist {
					maxDist = d
				}
			}
			total += float64(maxDist)
		}
	} else {
		// Torus fields wrap; any other shape is priced with the
		// open-boundary max(w, r−w), the pessimistic upper bound. A
		// healthy Degraded overlay wraps exactly like its base.
		baseNet := net
		if dg, ok := net.(*topology.Degraded); ok {
			baseNet = dg.Base()
		}
		_, wrap := baseNet.(*topology.Torus)
		for i := lo; i < lo+w; i++ {
			r := dims[i]
			sum, zero := 0, 0
			for v := 0; v < r; v++ {
				m := digitShiftMax(r, v, wrap)
				sum += m
				if v == 0 {
					zero = m
				}
			}
			total += float64(span/r)*float64(sum) - float64(zero)
		}
	}
	shiftDistMemo.Store(key, total)
	return total
}

// digitShiftMax returns the worst-case routed distance of one dimension
// when its digit shifts by v with an optional incoming carry: the new
// digit is (a+v+c) mod r for c ∈ {0,1}, so the digit difference is
// w = (v+c) mod r — distance min(w, r−w) on a torus, and on a mesh
// either w or r−w depending on whether the addition wrapped, both
// reachable, so the max of the two.
func digitShiftMax(r, v int, wrap bool) int {
	best := 0
	for c := 0; c <= 1; c++ {
		w := (v + c) % r
		var d int
		if w == 0 {
			d = 0
		} else if wrap {
			d = min(w, r-w)
		} else {
			d = max(w, r-w)
		}
		if d > best {
			best = d
		}
	}
	return best
}

// degradedPhaseMetrics carries the params-independent per-step worst
// cases of one phase on one faulty overlay: dist[j-1] is the worst
// fault-aware routed distance of step j, slow[j-1] the worst per-wire
// speed factor among step j's routes.
type degradedPhaseMetrics struct {
	dist []float64
	slow []float64
}

var degradedPhaseMemo sync.Map // shiftDistKey -> *degradedPhaseMetrics

// degradedExactWork bounds the route enumerations (nodes × steps) spent
// computing exact degraded phase metrics; beyond it the phase is priced
// by the healthy closed form plus a pessimistic detour surcharge. A
// serving tier must never run an enumeration quadratic in an
// attacker-chosen span.
const degradedExactWork = 1 << 22

// phaseMetricsDegraded computes the per-step metrics of the phase over
// [lo, lo+w) on a faulty overlay. Faults break the sub-block symmetry
// the healthy closed forms rely on (the XOR uniform distance and the
// block-0 representative), so every sub-block is enumerated with the
// actual step family — XOR pairing f^j on all-radix-2 fields, cyclic
// shifts f+j elsewhere — through fault-aware routing. Past the work cap
// the fallback charges the healthy distance total plus a two-hop detour
// allowance per dead wire per step, at the overlay's worst slow factor.
func phaseMetricsDegraded(d *topology.Degraded, lo, w int) (*degradedPhaseMetrics, error) {
	key := shiftDistKey{name: d.Name(), lo: lo, w: w}
	if v, ok := degradedPhaseMemo.Load(key); ok {
		return v.(*degradedPhaseMetrics), nil
	}
	span, err := topology.SpanSize(d, lo, w)
	if err != nil {
		return nil, err
	}
	dims := d.Dims()
	xor := true
	for i := lo; i < lo+w; i++ {
		if dims[i] != 2 {
			xor = false
		}
	}
	pm := &degradedPhaseMetrics{
		dist: make([]float64, span-1),
		slow: make([]float64, span-1),
	}
	n := d.Nodes()
	if uint64(n)*uint64(span-1) <= degradedExactWork {
		blocks, err := topology.SubBlocks(d, lo, w)
		if err != nil {
			return nil, err
		}
		for j := 1; j < span; j++ {
			maxDist, maxSlow := 0, 1.0
			for _, block := range blocks {
				for f, src := range block {
					var dst int
					if xor {
						dst = block[f^j]
					} else {
						dst = block[(f+j)%span]
					}
					h, s, err := d.RouteMetrics(src, dst)
					if err != nil {
						return nil, err
					}
					if h > maxDist {
						maxDist = h
					}
					if s > maxSlow {
						maxSlow = s
					}
				}
			}
			pm.dist[j-1] = float64(maxDist)
			pm.slow[j-1] = maxSlow
		}
	} else {
		total := phaseDistTotal(d.Base(), lo, w)
		fs := d.Faults()
		perStep := total/float64(span-1) + 2*float64(len(fs.DeadLinks))
		for j := range pm.dist {
			pm.dist[j] = perStep
			pm.slow[j] = d.MaxSlowFactor()
		}
	}
	degradedPhaseMemo.Store(key, pm)
	return pm, nil
}

// PhaseCostOn returns the modeled time in µs of one partial exchange
// over the dimension field [lo, lo+w) of the given topology with block
// size m — the mixed-radix generalization of PhaseCost:
//
//	(S−1)·(λ_eff + τ_eff·m·n/S) + δ_eff·dist + ρ·n·m + Γ·diameter
//
// where S is the field's span, dist the phase's total routed distance
// (see phaseDistTotal), the shuffle term is omitted when the phase spans
// the whole machine, and the per-phase global synchronization is charged
// when enabled, weighted by the topology's diameter (§7.3; the
// hypercube's diameter is its dimension, recovering eq. 3 exactly). An
// out-of-range field is an error, never a zero cost — a zero would win
// any minimization it leaked into.
//
// On a faulty topology.Degraded overlay the phase is priced per step
// with fault-aware metrics: step j charges
// (λ_eff + τ_eff·mi + δ_eff·dist_j)·slow_j, where dist_j is the step's
// worst detoured distance and slow_j the worst speed factor among its
// routes (the step waits for its slowest node, and a circuit runs at
// the speed of its slowest wire) — the worst-case upper bound matching
// the simulator's per-circuit fault scaling. A non-operational overlay
// (dead node, severed partition) is an error wrapping
// topology.ErrUnroutable, never a cost.
func (p Params) PhaseCostOn(net topology.Network, m, lo, w int) (float64, error) {
	if w <= 0 {
		return 0, fmt.Errorf("model: nonpositive phase width %d", w)
	}
	span, err := topology.SpanSize(net, lo, w)
	if err != nil {
		return 0, err
	}
	n := net.Nodes()
	mi := float64(m) * float64(n/span)
	if dg, ok := net.(*topology.Degraded); ok && !dg.Healthy() {
		if err := dg.Operational(); err != nil {
			return 0, err
		}
		pm, err := phaseMetricsDegraded(dg, lo, w)
		if err != nil {
			return 0, err
		}
		t := 0.0
		for i := range pm.dist {
			t += (p.EffLambda() + p.EffTau()*mi + p.EffDelta()*pm.dist[i]) * pm.slow[i]
		}
		if span != n {
			t += p.Rho * float64(m) * float64(n)
		}
		if p.GlobalSyncPerPhase {
			t += p.GlobalSync(net.Diameter())
		}
		return t, nil
	}
	steps := float64(span - 1)
	t := steps*(p.EffLambda()+p.EffTau()*mi) + p.EffDelta()*phaseDistTotal(net, lo, w)
	if span != n {
		t += p.Rho * float64(m) * float64(n)
	}
	if p.GlobalSyncPerPhase {
		t += p.GlobalSync(net.Diameter())
	}
	return t, nil
}

// MultiphaseOn returns the modeled total time in µs of the multiphase
// complete exchange with dimension grouping D on any topology with block
// size m, every phase using the circuit-switched schedule inside its
// sub-blocks. On a hypercube this agrees exactly with Multiphase. The
// per-phase breakdown is also returned.
func (p Params) MultiphaseOn(net topology.Network, m int, D partition.Partition) (float64, []PhaseBreakdown, error) {
	if net.NumDims() == 0 {
		if len(D) != 0 {
			return 0, nil, fmt.Errorf("model: nonempty grouping %v for single-node topology", D)
		}
		return 0, nil, nil
	}
	if h, ok := topology.AsHypercube(net); ok {
		// Radix-2 fast path: eq. (3) directly, no field layout to derive
		// (also taken by fault-free Degraded overlays, which behave
		// identically to their base by construction). Keeps the serving
		// tier's hot Get as cheap as before the topology generalization.
		d := h.Dim()
		sum := 0
		for _, di := range D {
			if di <= 0 {
				return 0, nil, fmt.Errorf("model: nonpositive phase group %d", di)
			}
			sum += di
		}
		if sum != d {
			return 0, nil, fmt.Errorf("model: phase groups sum to %d, want %d dimensions", sum, d)
		}
		t, phases := p.Multiphase(m, d, D)
		return t, phases, nil
	}
	fields, err := topology.PhaseFields(net, D)
	if err != nil {
		return 0, nil, err
	}
	n := net.Nodes()
	total := 0.0
	phases := make([]PhaseBreakdown, 0, len(D))
	for i, f := range fields {
		lo, w := f[0], f[1]
		span, _ := topology.SpanSize(net, lo, w)
		t, err := p.PhaseCostOn(net, m, lo, w)
		if err != nil {
			return 0, nil, err
		}
		total += t
		phases = append(phases, PhaseBreakdown{
			SubcubeDim: D[i],
			EffBlock:   m * (n / span),
			Alg:        PhaseCS,
			Time:       t,
		})
	}
	return total, phases, nil
}
