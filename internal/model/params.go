// Package model implements the paper's analytic performance model for
// complete-exchange algorithms on a circuit-switched hypercube (§4.3, §7.4).
//
// The model is parameterized by four machine constants:
//
//	λ (Lambda)  message startup latency            µs
//	τ (Tau)     transmission cost                  µs per byte
//	δ (Delta)   distance impact                    µs per dimension crossed
//	ρ (Rho)     data permutation (shuffle) cost    µs per byte
//
// A message of m bytes crossing h dimensions costs λ + τ·m + δ·h; shuffling
// m bytes in memory costs ρ·m. From these the paper derives closed forms
// for the Standard Exchange algorithm (eq. 1), the Optimal Circuit-Switched
// algorithm (eq. 2), and the per-phase cost of the multiphase algorithm on
// the iPSC-860 (eq. 3).
package model

import "fmt"

// Params holds the machine performance constants of §4.3 together with the
// implementation details of §7 (pairwise and global synchronization).
type Params struct {
	// Lambda is the message startup latency in µs.
	Lambda float64
	// Tau is the per-byte transmission cost in µs/byte.
	Tau float64
	// Delta is the per-dimension distance impact in µs/dimension.
	Delta float64
	// Rho is the per-byte data-permutation (shuffle) cost in µs/byte.
	Rho float64

	// LambdaZero is the startup latency of a zero-byte message in µs
	// (used for pairwise synchronization; 82.5 µs on the iPSC-860).
	LambdaZero float64
	// GlobalSyncPerDim is the cost of a global synchronization in µs per
	// cube dimension (150 µs/dim measured on the iPSC-860).
	GlobalSyncPerDim float64

	// Exchange selects how a pairwise exchange behaves (§7.2).
	Exchange ExchangeMode

	// GlobalSyncPerPhase, when true, charges one global synchronization
	// (GlobalSyncPerDim·d) per multiphase phase, as in eq. (3).
	GlobalSyncPerPhase bool

	// UnforcedThreshold is the message size in bytes beyond which an
	// UNFORCED-type message incurs a reserve-acknowledge round trip
	// (§7.1: 100 bytes on the iPSC-860). Only consulted by the UNFORCED
	// cost variants; the paper's implementation uses FORCED messages.
	UnforcedThreshold int
}

// ExchangeMode describes the concurrency behaviour of a pairwise exchange
// on the modeled machine.
type ExchangeMode int

const (
	// ExchangeIdeal: the two transfers of an exchange proceed
	// concurrently with no extra cost — the assumption behind the
	// theoretical equations (1) and (2) of §4.3.
	ExchangeIdeal ExchangeMode = iota
	// ExchangeSynced: the iPSC-860 implementation of §7.2 — a zero-byte
	// pairwise synchronization round precedes the exchange, after which
	// the transfers run concurrently. Raises the effective startup to
	// λ+λ0 and doubles the effective distance impact (§7.4: λ_eff =
	// 177.5 µs, δ_eff = 20.6 µs/dim).
	ExchangeSynced
	// ExchangeSerialized: no synchronization is performed and (per the
	// measurements of Seidel et al.) the two transfers of the exchange
	// serialize: 2(λ + τm + δh). The ablation the paper argues against.
	ExchangeSerialized
)

func (m ExchangeMode) String() string {
	switch m {
	case ExchangeIdeal:
		return "ideal"
	case ExchangeSynced:
		return "synced"
	case ExchangeSerialized:
		return "serialized"
	default:
		return fmt.Sprintf("ExchangeMode(%d)", int(m))
	}
}

// EffLambda returns the effective per-exchange startup latency: λ, plus
// the zero-byte synchronization message under ExchangeSynced, or doubled
// under ExchangeSerialized.
func (p Params) EffLambda() float64 {
	switch p.Exchange {
	case ExchangeSynced:
		return p.Lambda + p.LambdaZero
	case ExchangeSerialized:
		return 2 * p.Lambda
	default:
		return p.Lambda
	}
}

// EffDelta returns the effective distance impact per dimension: δ, doubled
// under ExchangeSynced (the sync messages traverse the same path) and
// under ExchangeSerialized (two sequential traversals).
func (p Params) EffDelta() float64 {
	switch p.Exchange {
	case ExchangeSynced, ExchangeSerialized:
		return 2 * p.Delta
	default:
		return p.Delta
	}
}

// EffTau returns the effective per-byte cost: τ, doubled under
// ExchangeSerialized (the payload crosses the wire twice as long in
// wall-clock terms because the two directions do not overlap).
func (p Params) EffTau() float64 {
	if p.Exchange == ExchangeSerialized {
		return 2 * p.Tau
	}
	return p.Tau
}

// GlobalSync returns the cost in µs of one global synchronization on a
// hypercube of dimension d.
func (p Params) GlobalSync(d int) float64 { return p.GlobalSyncPerDim * float64(d) }

// IPSC860 returns the measured parameters of the Intel iPSC-860 from §7.4,
// configured the way the paper's implementation ran: FORCED messages,
// pairwise synchronization before every exchange, and one global
// synchronization per phase (eq. 3).
func IPSC860() Params {
	return Params{
		Lambda:             95.0,
		Tau:                0.394,
		Delta:              10.3,
		Rho:                0.54,
		LambdaZero:         82.5,
		GlobalSyncPerDim:   150,
		Exchange:           ExchangeSynced,
		GlobalSyncPerPhase: true,
		UnforcedThreshold:  100,
	}
}

// IPSC860Raw returns the iPSC-860 constants with ideal exchanges and no
// global synchronization — the raw per-message model of §7.4, useful for
// per-message timing checks and ablations.
func IPSC860Raw() Params {
	p := IPSC860()
	p.Exchange = ExchangeIdeal
	p.GlobalSyncPerPhase = false
	return p
}

// IPSC860NoSync returns the iPSC-860 configured without pairwise
// synchronization: exchanges serialize (§7.2). This is the configuration
// the paper rejects; it exists for the ablation benchmarks.
func IPSC860NoSync() Params {
	p := IPSC860()
	p.Exchange = ExchangeSerialized
	return p
}

// Ncube2 returns a synthetic parameter set for the Ncube-2, the other
// commercial circuit-switched hypercube the paper names (§1, §9: "a
// practical issue of interest is to evaluate the performance of the
// multiphase approach on the Ncube-2"). No measured constants appear in
// the paper, so these are plausible published-era values (slower links
// than the iPSC-860, lower startup): they exist to exercise the machine-
// independence of the method, not to make absolute claims. DESIGN.md
// records the substitution.
func Ncube2() Params {
	return Params{
		Lambda:             160.0, // µs startup
		Tau:                0.57,  // µs/byte (~1.75 MB/s links)
		Delta:              5.0,   // µs/dimension
		Rho:                0.80,  // µs/byte software copy
		LambdaZero:         110.0,
		GlobalSyncPerDim:   120,
		Exchange:           ExchangeSynced,
		GlobalSyncPerPhase: true,
		UnforcedThreshold:  100,
	}
}

// Hypothetical returns the hypothetical dimension-6 machine of §4.3:
// τ = ρ = 1 µs/byte, λ = 200 µs, δ = 20 µs/dim, and no synchronization
// overheads. On this machine Standard Exchange beats the Optimal
// Circuit-Switched algorithm exactly when the block size is below 30 bytes.
func Hypothetical() Params {
	return Params{Lambda: 200, Tau: 1, Delta: 20, Rho: 1}
}

// MessageTime returns the modeled time in µs for a single m-byte message
// crossing h dimensions: λ_eff + τ·m + δ_eff·h.
func (p Params) MessageTime(m, h int) float64 {
	return p.EffLambda() + p.Tau*float64(m) + p.EffDelta()*float64(h)
}

// RawMessageTime is MessageTime without synchronization effects:
// λ + τ·m + δ·h. This is the latency of one wire transfer.
func (p Params) RawMessageTime(m, h int) float64 {
	return p.Lambda + p.Tau*float64(m) + p.Delta*float64(h)
}

// ExchangeTime returns the duration of one pairwise exchange of m bytes
// between nodes h dimensions apart, from the instant both parties are
// ready, under the configured exchange mode (§7.2, §7.4):
//
//	synced:     a zero-byte sync round (λ0 + δh), then both transfers
//	            run concurrently: λ + τm + δh;
//	serialized: no synchronization — the two transfers serialize (the
//	            iPSC-860 behaviour Seidel et al. measured when the
//	            transmissions do not start simultaneously): 2(λ+τm+δh);
//	ideal:      both transfers fully concurrent: λ + τm + δh.
//
// This is the single source of the exchange arithmetic, shared by the
// discrete-event simulator and the simulated fabric's online node clocks.
func (p Params) ExchangeTime(m, h int) float64 {
	data := p.RawMessageTime(m, h)
	switch p.Exchange {
	case ExchangeSynced:
		return p.LambdaZero + p.Delta*float64(h) + data
	case ExchangeSerialized:
		return 2 * data
	default: // ExchangeIdeal
		return data
	}
}

// UnforcedMessageTime models an UNFORCED-type message (§7.1): identical to
// a FORCED message below the threshold, and preceded by a reserve/
// acknowledge zero-byte round trip above it.
func (p Params) UnforcedMessageTime(m, h int) float64 {
	t := p.RawMessageTime(m, h)
	if m > p.UnforcedThreshold {
		// Reserve and acknowledge: two zero-byte messages over the
		// same path.
		t += 2 * (p.LambdaZero + p.Delta*float64(h))
	}
	return t
}

// ShuffleTime returns the modeled time in µs to permute the full local
// buffer once: ρ bytes/µs over 2^d blocks of m bytes.
func (p Params) ShuffleTime(m, d int) float64 {
	return p.Rho * float64(m) * float64(int(1)<<uint(d))
}
