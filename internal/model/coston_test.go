package model

import (
	"math"
	"testing"
	"time"

	"repro/internal/partition"
	"repro/internal/topology"
)

// MultiphaseOn on a hypercube must agree exactly with the original
// eq.-(3) closed form, for every machine, partition and block size.
func TestMultiphaseOnMatchesMultiphaseOnHypercube(t *testing.T) {
	for name, prm := range Machines() {
		for _, d := range []int{1, 3, 5, 7} {
			h := topology.MustNew(d)
			for _, D := range partition.All(d) {
				for _, m := range []int{0, 1, 40, 400} {
					want, wantPhases := prm.Multiphase(m, d, D)
					got, gotPhases, err := prm.MultiphaseOn(h, m, D)
					if err != nil {
						t.Fatalf("%s d=%d %v: %v", name, d, D, err)
					}
					if got != want {
						t.Fatalf("%s d=%d %v m=%d: MultiphaseOn %v, Multiphase %v",
							name, d, D, m, got, want)
					}
					if len(gotPhases) != len(wantPhases) {
						t.Fatalf("%s d=%d %v: phase count differs", name, d, D)
					}
				}
			}
		}
	}
}

// The hypercube fast path must still validate groupings.
func TestMultiphaseOnValidation(t *testing.T) {
	prm := IPSC860()
	h := topology.MustNew(4)
	if _, _, err := prm.MultiphaseOn(h, 10, partition.Partition{3}); err == nil {
		t.Error("short grouping must fail")
	}
	if _, _, err := prm.MultiphaseOn(h, 10, partition.Partition{5, -1}); err == nil {
		t.Error("negative group must fail")
	}
	tor := topology.MustParseSpec("torus-4x4")
	if _, _, err := prm.MultiphaseOn(tor, 10, partition.Partition{3}); err == nil {
		t.Error("short torus grouping must fail")
	}
	if _, _, err := prm.MultiphaseOn(topology.MustNew(0), 10, nil); err != nil {
		t.Error("single-node topology with empty grouping must cost 0")
	}
}

// Torus phase costs must be structurally sane: a single-phase plan pays
// no shuffle, multi-phase plans pay one per phase, and the distance term
// reflects wraparound (a torus phase is never costlier than the same
// mesh phase).
func TestPhaseCostOnStructure(t *testing.T) {
	prm := IPSC860()
	tor := topology.MustParseSpec("torus-4x4")
	mesh := topology.MustParseSpec("mesh-4x4")

	single, phases, err := prm.MultiphaseOn(tor, 32, partition.Partition{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 || single <= 0 {
		t.Fatalf("single phase: %v %v", single, phases)
	}
	two, phases2, err := prm.MultiphaseOn(tor, 32, partition.Partition{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases2) != 2 {
		t.Fatalf("two phases: %v", phases2)
	}
	// Each single-dimension phase moves superblocks of m·n/r bytes.
	if phases2[0].EffBlock != 32*16/4 {
		t.Errorf("EffBlock = %d", phases2[0].EffBlock)
	}

	tSingleTor, err := prm.PhaseCostOn(tor, 32, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	tSingleMesh, err := prm.PhaseCostOn(mesh, 32, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tSingleTor > tSingleMesh {
		t.Errorf("torus phase (%v) costlier than mesh phase (%v): wraparound should not hurt",
			tSingleTor, tSingleMesh)
	}
	if math.IsNaN(single) || math.IsNaN(two) {
		t.Error("NaN phase cost")
	}
}

// The memoized shift-distance term must equal a direct enumeration of
// the cyclic schedule's worst-case step distances.
func TestPhaseDistTotalMatchesEnumeration(t *testing.T) {
	net := topology.MustParseSpec("torus-5x3")
	lo, w := 0, 2
	span := 15
	want := 0.0
	for j := 1; j < span; j++ {
		maxDist := 0
		for f := 0; f < span; f++ {
			if d := net.Distance(f, (f+j)%span); d > maxDist {
				maxDist = d
			}
		}
		want += float64(maxDist)
	}
	if got := phaseDistTotal(net, lo, w); got != want {
		t.Errorf("phaseDistTotal = %v, enumeration %v", got, want)
	}
	// Second call must hit the memo and agree.
	if got := phaseDistTotal(net, lo, w); got != want {
		t.Errorf("memoized phaseDistTotal = %v, want %v", got, want)
	}
}

// An out-of-range field must be an error, never a zero cost.
func TestPhaseCostOnRejectsBadField(t *testing.T) {
	prm := IPSC860()
	tor := topology.MustParseSpec("torus-4x4")
	if _, err := prm.PhaseCostOn(tor, 10, 1, 2); err == nil {
		t.Error("field past the last dimension must fail")
	}
	if _, err := prm.PhaseCostOn(tor, 10, 0, 0); err == nil {
		t.Error("zero-width field must fail")
	}
}

// Beyond exactShiftDistSpan the distance term switches to the
// per-dimension closed form: it must return promptly for huge tori and
// upper-bound the exact enumeration on a span just past the cutoff.
func TestPhaseDistTotalLargeSpanClosedForm(t *testing.T) {
	big := topology.MustParseSpec("torus-1024x1024")
	start := time.Now()
	total, _, err := IPSC860().MultiphaseOn(big, 40, partition.Partition{2})
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Error("non-positive large-torus cost")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("large-torus analytic cost took %v: the O(span²) path leaked back in", elapsed)
	}

	// On a span just over the cutoff, the closed form must dominate the
	// exact worst-case enumeration (it is an upper bound).
	net := topology.MustParseSpec("torus-84x84") // span 7056 > exactShiftDistSpan
	closed := phaseDistTotal(net, 0, 2)
	span := 84 * 84
	exact := 0.0
	for j := 1; j < span; j++ {
		maxDist := 0
		for f := 0; f < span; f += 97 { // sampled f, still a lower bound on the max
			if d := net.Distance(f, (f+j)%span); d > maxDist {
				maxDist = d
			}
		}
		exact += float64(maxDist)
	}
	if closed < exact {
		t.Errorf("closed form %v below sampled exact lower bound %v", closed, exact)
	}
}
