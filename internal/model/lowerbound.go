package model

import (
	"fmt"
	"sync"

	"repro/internal/topology"
)

// This file provides the admissible lower bound the optimizer's
// branch-and-bound pruning rests on. The discrete-event simulator charges
// every phase a global barrier (unconditionally — the compiled plans post
// their FORCED receives behind an OpBarrier), then Span−1 steps, then the
// ρ·m·n shuffle when the phase does not span the whole machine.
// Contention and rendezvous waiting can only delay a node beyond the
// serial sum of its own transmissions, so the makespan of one simulated
// phase is bounded from below by the busiest node's serial work:
//
//	XOR field:    (S−1)·(λ_eff + τ_eff·m_i) + δ_eff·w·S/2 — every node's
//	              exchange durations sum identically (the step-j exchange
//	              crosses popcount(j) dimensions), so this is the exact
//	              zero-contention makespan;
//	cyclic field: (S−1)·(λ + τ·m_i) + δ·max_f Σ_j dist(f, f+j) with the
//	              RAW message constants — the simulator's FORCED sends
//	              cost λ + τ·m + δ·h each, with no pairwise sync round.
//
// Both are provable lower bounds on the simulated phase makespan, never
// above it, which is exactly what admissible pruning requires: a
// candidate whose per-phase bounds already sum past the incumbent's
// simulated time cannot win.

// shiftLBKey memoizes maxNodeShiftDist per (topology name, field).
type shiftLBKey struct {
	name  string
	lo, w int
}

var shiftLBMemo sync.Map // shiftLBKey -> float64

// maxNodeShiftDist returns max_f Σ_{j=1}^{span−1} dist(f, (f+j) mod span)
// over the dimension field [lo, lo+w): the total routed distance of the
// busiest node's sends across a cyclic phase. Distances between nodes
// differing only inside the field are sub-block-local, so the sub-block
// anchored at label 0 is representative. Beyond exactShiftDistSpan the
// O(span²) maximum is replaced by the f = 0 row sum — weaker, but still
// admissible (the maximum dominates every single row).
func maxNodeShiftDist(net topology.Network, lo, w, span int) float64 {
	key := shiftLBKey{name: net.Name(), lo: lo, w: w}
	if v, ok := shiftLBMemo.Load(key); ok {
		return v.(float64)
	}
	stride := net.Stride(lo)
	var total float64
	if span <= exactShiftDistSpan {
		for f := 0; f < span; f++ {
			sum := 0
			for j := 1; j < span; j++ {
				sum += net.Distance(f*stride, ((f+j)%span)*stride)
			}
			if s := float64(sum); s > total {
				total = s
			}
		}
	} else {
		sum := 0
		for j := 1; j < span; j++ {
			sum += net.Distance(0, j*stride)
		}
		total = float64(sum)
	}
	shiftLBMemo.Store(key, total)
	return total
}

// PhaseLowerBoundOn returns an admissible lower bound in µs on the
// simulated makespan of the single phase over the dimension field
// [lo, lo+w) at block size m: the barrier's GlobalSync(diameter) — the
// simulator charges it on every phase regardless of GlobalSyncPerPhase —
// plus the busiest node's serial transmission time, plus the ρ·m·n
// shuffle when the phase spans less than the whole machine. The bound
// never exceeds the value exchange fragment replay produces for the same
// field, so pruning on it never discards a potential winner.
func (p Params) PhaseLowerBoundOn(net topology.Network, m, lo, w int) (float64, error) {
	if w <= 0 {
		return 0, fmt.Errorf("model: nonpositive phase width %d", w)
	}
	span, err := topology.SpanSize(net, lo, w)
	if err != nil {
		return 0, err
	}
	dims := net.Dims()
	xor := true
	for i := lo; i < lo+w; i++ {
		if dims[i] != 2 {
			xor = false
		}
	}
	n := net.Nodes()
	mi := float64(m) * float64(n/span)
	steps := float64(span - 1)
	var t float64
	if xor {
		t = steps*(p.EffLambda()+p.EffTau()*mi) + p.EffDelta()*float64(w)*float64(span/2)
	} else {
		t = steps*(p.Lambda+p.Tau*mi) + p.Delta*maxNodeShiftDist(net, lo, w, span)
	}
	if span != n {
		t += p.Rho * float64(m) * float64(n)
	}
	t += p.GlobalSync(net.Diameter())
	return t, nil
}
