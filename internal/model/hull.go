package model

import (
	"math"

	"repro/internal/partition"
)

// Plan is the result of optimizing over all partitions of d for one block
// size: the winning partition, its per-phase algorithm choices, and the
// modeled time.
type Plan struct {
	D      int
	Block  int
	Part   partition.Partition
	Phases []PhaseBreakdown
	Time   float64
}

// BestPartition enumerates all p(d) partitions of d (§6) and returns the
// plan with the minimal modeled time for block size m. When bestAlg is
// true the per-phase algorithm is chosen freely (CS vs SE inside each
// phase); otherwise every phase uses the circuit-switched algorithm.
// Ties are broken toward fewer phases, then lexicographically larger first
// parts, so results are deterministic.
func (p Params) BestPartition(m, d int, bestAlg bool) Plan {
	best := Plan{D: d, Block: m, Time: math.Inf(1)}
	it := partition.NewIterator(d)
	for D := it.Next(); D != nil; D = it.Next() {
		var t float64
		var phases []PhaseBreakdown
		if bestAlg {
			t, phases = p.MultiphaseBestAlg(m, d, D)
		} else {
			t, phases = p.Multiphase(m, d, D)
		}
		if t < best.Time || (t == best.Time && betterTie(D, best.Part)) {
			best.Part = D
			best.Phases = phases
			best.Time = t
		}
	}
	return best
}

// betterTie prefers fewer phases, then larger leading parts.
func betterTie(a, b partition.Partition) bool {
	if b == nil {
		return true
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}

// HullSegment is one face of the hull of optimality: the partition that is
// optimal for every block size in [MinBlock, MaxBlock].
type HullSegment struct {
	Part     partition.Partition
	MinBlock int
	MaxBlock int
}

// Hull sweeps block sizes mLo..mHi (step ≥ 1) and returns the hull of
// optimality (§8): the sequence of partitions that are optimal over
// consecutive block-size ranges. Adjacent block sizes won by the same
// partition are merged into one segment.
func (p Params) Hull(d, mLo, mHi, step int, bestAlg bool) []HullSegment {
	if step < 1 {
		step = 1
	}
	var hull []HullSegment
	for m := mLo; m <= mHi; m += step {
		plan := p.BestPartition(m, d, bestAlg)
		if n := len(hull); n > 0 && hull[n-1].Part.Equal(plan.Part) {
			hull[n-1].MaxBlock = m
			continue
		}
		hull = append(hull, HullSegment{Part: plan.Part, MinBlock: m, MaxBlock: m})
	}
	return hull
}

// HullPartitions returns the distinct partitions appearing on the hull, in
// order of first appearance (increasing block size).
func HullPartitions(hull []HullSegment) []partition.Partition {
	var out []partition.Partition
	for _, seg := range hull {
		dup := false
		for _, q := range out {
			if q.Equal(seg.Part) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, seg.Part)
		}
	}
	return out
}

// SwitchPoint returns the smallest block size in [mLo, mHi] at which
// partition "to" first becomes at least as fast as partition "from", or -1
// if it never does. Used to locate crossovers such as "{d} optimal beyond
// ≈160 bytes".
func (p Params) SwitchPoint(d, mLo, mHi int, from, to partition.Partition) int {
	for m := mLo; m <= mHi; m++ {
		tf, _ := p.Multiphase(m, d, from)
		tt, _ := p.Multiphase(m, d, to)
		if tt <= tf {
			return m
		}
	}
	return -1
}

// Series evaluates the modeled multiphase time for one partition across a
// sweep of block sizes; used to regenerate the curves of Figures 4-6.
func (p Params) Series(d int, D partition.Partition, blocks []int) []float64 {
	out := make([]float64, len(blocks))
	for i, m := range blocks {
		out[i], _ = p.Multiphase(m, d, D)
	}
	return out
}
