package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/partition"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Paper §4.3: on the hypothetical machine (d=6, τ=ρ=1, λ=200, δ=20) the
// Standard Exchange algorithm is better for blocks of size less than 30.
func TestHypotheticalCrossover(t *testing.T) {
	p := Hypothetical()
	x := p.CrossoverBlockSize(6)
	if !(x > 29 && x < 30) {
		t.Errorf("crossover = %v, want in (29,30)", x)
	}
	// Direct comparison must agree with the closed form.
	for m := 1; m <= 29; m++ {
		if p.StandardExchange(m, 6) >= p.OptimalCircuitSwitched(m, 6) {
			t.Errorf("m=%d: SE should beat OCS below crossover", m)
		}
	}
	for m := 30; m <= 100; m++ {
		if p.StandardExchange(m, 6) <= p.OptimalCircuitSwitched(m, 6) {
			t.Errorf("m=%d: OCS should beat SE above crossover", m)
		}
	}
}

// Paper §5.1: on the hypothetical machine, SE at m=24 takes 15144 µs.
func TestHypotheticalStandardExchange24(t *testing.T) {
	p := Hypothetical()
	if got := p.StandardExchange(24, 6); !almost(got, 15144, 1e-9) {
		t.Errorf("t_s(24,6) = %v, want 15144", got)
	}
}

// Paper §5.1 worked example: the phase on dimension-2 subcubes with
// effective block size 384 takes 1832 µs with the circuit-switched
// algorithm; the shuffle overhead is ρ·m·2^d = 1536 µs per phase (the
// paper quotes 3072 µs for the two shuffles together).
func TestHypotheticalTwoPhaseExample(t *testing.T) {
	p := Hypothetical()
	if got := EffectiveBlockSize(24, 6, 2); got != 384 {
		t.Fatalf("effective block (d1=2) = %d, want 384", got)
	}
	// Bare exchange time of the d1=2 phase (no shuffle: compare eq. 2 on
	// the subcube with the effective block size).
	bare := p.OptimalCircuitSwitched(384, 2)
	if !almost(bare, 1832, 0.5) {
		t.Errorf("phase-1 exchange = %v, want ≈1832", bare)
	}
	if got := p.ShuffleTime(24, 6); !almost(got, 1536, 1e-9) {
		t.Errorf("shuffle = %v, want 1536", got)
	}
	// PhaseCost = exchange + shuffle for a non-full-cube phase.
	if got := p.PhaseCost(24, 6, 2); !almost(got, bare+1536, 1e-9) {
		t.Errorf("PhaseCost(24,6,2) = %v, want %v", got, bare+1536)
	}
	// The full two-phase {2,4} multiphase must beat SE's 15144 µs.
	total, phases := p.Multiphase(24, 6, partition.Partition{2, 4})
	if len(phases) != 2 {
		t.Fatalf("want 2 phases, got %d", len(phases))
	}
	if total >= 15144 {
		t.Errorf("two-phase total %v must beat SE 15144", total)
	}
	// Note: the paper's printed total is 10944 µs using a phase-2
	// effective block of 160 bytes; with the paper's own formula
	// m_i = m·2^(d−di) the phase-2 block is 96 bytes and the total is
	// 9984 µs. We assert our internally consistent value.
	if !almost(total, 9984, 1.0) {
		t.Errorf("two-phase total = %v, want ≈9984", total)
	}
}

// Degenerate cases (§5.2): partition {1,1,...,1} must cost the same as the
// Standard Exchange structure with per-phase sync, and {d} must equal the
// Optimal Circuit-Switched algorithm.
func TestMultiphaseDegeneratesToOCS(t *testing.T) {
	for _, p := range []Params{Hypothetical(), IPSC860(), IPSC860Raw()} {
		for d := 1; d <= 7; d++ {
			for _, m := range []int{1, 16, 100, 400} {
				got, _ := p.Multiphase(m, d, partition.Partition{d})
				want := p.OptimalCircuitSwitched(m, d)
				if !almost(got, want, 1e-6) {
					t.Errorf("d=%d m=%d: {d} multiphase %v != OCS %v", d, m, got, want)
				}
			}
		}
	}
}

func TestMultiphaseAllOnesMatchesSEStructure(t *testing.T) {
	// With all di = 1: each phase is 1 transmission of m·2^(d-1) bytes at
	// distance 1 plus a shuffle — exactly eq. (1)'s per-step cost. The
	// only difference is per-phase global sync (d syncs vs 1).
	// d starts at 2: at d=1 the single phase has di=d, so the (identity)
	// shuffle is skipped, while eq. (1) charges it unconditionally.
	p := Hypothetical() // no sync, so must match exactly
	for d := 2; d <= 7; d++ {
		ones := make(partition.Partition, d)
		for i := range ones {
			ones[i] = 1
		}
		for _, m := range []int{1, 24, 200} {
			got, _ := p.Multiphase(m, d, ones)
			want := p.StandardExchange(m, d)
			if !almost(got, want, 1e-6) {
				t.Errorf("d=%d m=%d: {1..1} %v != SE %v", d, m, got, want)
			}
		}
	}
}

func TestEffectiveBlockSize(t *testing.T) {
	// Figure 3: d=3, partition {2,1}: superblocks of size 2 then 4 blocks.
	if EffectiveBlockSize(1, 3, 2) != 2 {
		t.Error("phase d1=2 superblock must be 2 blocks")
	}
	if EffectiveBlockSize(1, 3, 1) != 4 {
		t.Error("phase d2=1 superblock must be 4 blocks")
	}
	if EffectiveBlockSize(24, 6, 6) != 24 {
		t.Error("full-cube phase keeps original block size")
	}
}

// §7.4: with FORCED messages and pre-posted receives λ=95.0, τ=0.394,
// δ=10.3; pairwise sync gives effective λ=177.5 and δ=20.6.
func TestIPSC860EffectiveParams(t *testing.T) {
	p := IPSC860()
	if !almost(p.EffLambda(), 177.5, 1e-9) {
		t.Errorf("effective lambda = %v, want 177.5", p.EffLambda())
	}
	if !almost(p.EffDelta(), 20.6, 1e-9) {
		t.Errorf("effective delta = %v, want 20.6", p.EffDelta())
	}
	raw := IPSC860Raw()
	if !almost(raw.EffLambda(), 95.0, 1e-9) || !almost(raw.EffDelta(), 10.3, 1e-9) {
		t.Error("raw params must not include sync overhead")
	}
	if !almost(p.GlobalSync(6), 900, 1e-9) {
		t.Errorf("global sync d=6 = %v, want 900", p.GlobalSync(6))
	}
}

func TestMessageTimeLinearity(t *testing.T) {
	p := IPSC860Raw()
	if got := p.MessageTime(0, 0); !almost(got, 95.0, 1e-9) {
		t.Errorf("zero message = %v", got)
	}
	if got := p.MessageTime(1000, 3); !almost(got, 95.0+394.0+30.9, 1e-6) {
		t.Errorf("MessageTime = %v", got)
	}
}

func TestUnforcedMessageTime(t *testing.T) {
	p := IPSC860Raw()
	// At or below 100 bytes, identical to a raw FORCED message.
	if p.UnforcedMessageTime(100, 2) != p.RawMessageTime(100, 2) {
		t.Error("UNFORCED ≤100B must equal FORCED")
	}
	// Above 100 bytes, strictly more expensive (reserve-ack round trip).
	if p.UnforcedMessageTime(101, 2) <= p.RawMessageTime(101, 2) {
		t.Error("UNFORCED >100B must cost more")
	}
	want := p.RawMessageTime(101, 2) + 2*(82.5+10.3*2)
	if got := p.UnforcedMessageTime(101, 2); !almost(got, want, 1e-9) {
		t.Errorf("UnforcedMessageTime = %v, want %v", got, want)
	}
}

func TestPhaseCostZeroDim(t *testing.T) {
	p := IPSC860()
	if p.PhaseCost(100, 6, 0) != 0 || p.PhaseCostStandard(100, 6, 0) != 0 {
		t.Error("zero-dimension phase must cost 0")
	}
	if p.StandardExchange(10, 0) != 0 || p.OptimalCircuitSwitched(10, 0) != 0 {
		t.Error("d=0 exchange must cost 0")
	}
}

func TestPhaseAlgString(t *testing.T) {
	if PhaseCS.String() != "CS" || PhaseSE.String() != "SE" {
		t.Error("PhaseAlg strings wrong")
	}
	if PhaseAlg(9).String() == "" {
		t.Error("unknown PhaseAlg must not be empty")
	}
}

// Property: multiphase cost over any valid partition is positive and
// monotonically nondecreasing in m.
func TestMultiphaseMonotoneInBlockSize(t *testing.T) {
	p := IPSC860()
	f := func(seed uint8, m1, m2 uint8) bool {
		d := int(seed)%6 + 2
		parts := partition.All(d)
		D := parts[int(seed)%len(parts)]
		a, b := int(m1), int(m2)
		if a > b {
			a, b = b, a
		}
		ta, _ := p.Multiphase(a, d, D)
		tb, _ := p.Multiphase(b, d, D)
		return ta > 0 && ta <= tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: MultiphaseBestAlg never does worse than Multiphase (it can
// only pick a cheaper per-phase algorithm).
func TestBestAlgNeverWorse(t *testing.T) {
	p := IPSC860()
	for d := 2; d <= 7; d++ {
		for _, D := range partition.All(d) {
			for _, m := range []int{1, 8, 40, 160, 400} {
				cs, _ := p.Multiphase(m, d, D)
				ba, _ := p.MultiphaseBestAlg(m, d, D)
				if ba > cs+1e-9 {
					t.Errorf("d=%d D=%v m=%d: bestAlg %v > CS-only %v", d, D, m, ba, cs)
				}
			}
		}
	}
}

func TestShuffleSkippedForFullCubePhase(t *testing.T) {
	p := Hypothetical()
	// {d} phase must contain no shuffle: equals eq. (2) exactly.
	d, m := 5, 50
	got := p.PhaseCost(m, d, d)
	want := p.OptimalCircuitSwitched(m, d)
	if !almost(got, want, 1e-9) {
		t.Errorf("full-cube phase %v != OCS %v", got, want)
	}
	// A sub-cube phase of the same dimension must include the shuffle.
	sub := p.PhaseCost(m, d+1, d)
	if sub <= got {
		t.Error("subcube phase must include shuffle cost")
	}
}

func TestCrossoverDegenerate(t *testing.T) {
	p := Hypothetical()
	if p.CrossoverBlockSize(0) != 0 || p.CrossoverBlockSize(1) != 0 {
		t.Error("crossover for d<=1 must be 0")
	}
}
