package model

import (
	"fmt"
	"sort"
	"strings"
)

// builtinMachines is the immutable registry backing Machines(),
// CanonicalName and MachineByName; built once at init so the per-request
// resolution paths never reconstruct parameter sets.
var builtinMachines = map[string]Params{
	"ipsc860":        IPSC860(),
	"ipsc860-raw":    IPSC860Raw(),
	"ipsc860-nosync": IPSC860NoSync(),
	"ncube2":         Ncube2(),
	"hypo":           Hypothetical(),
}

// builtinNames is the sorted canonical name list, computed once.
var builtinNames = func() []string {
	names := make([]string, 0, len(builtinMachines))
	for name := range builtinMachines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}()

// machineAliases maps historical flag spellings to canonical registry
// names, so existing scripts keep working.
var machineAliases = map[string]string{
	"ipsc":         "ipsc860",
	"ipsc-raw":     "ipsc860-raw",
	"ipsc-nosync":  "ipsc860-nosync",
	"hypothetical": "hypo",
}

// machineDisplayNames maps canonical registry keys to the spellings the
// paper uses in prose and figure titles.
var machineDisplayNames = map[string]string{
	"ipsc860":        "iPSC-860",
	"ipsc860-raw":    "iPSC-860 (raw)",
	"ipsc860-nosync": "iPSC-860 (no sync)",
	"ncube2":         "Ncube-2",
	"hypo":           "hypothetical",
}

// Machines returns the built-in machine registry: every parameter set the
// repository knows, keyed by its canonical name. The service layer and
// the cmd/ binaries all resolve -machine flags and request parameters
// through this single table, so adding a machine here makes it available
// everywhere at once. The map is a fresh copy on every call; callers may
// mutate their copy.
func Machines() map[string]Params {
	out := make(map[string]Params, len(builtinMachines))
	for name, p := range builtinMachines {
		out[name] = p
	}
	return out
}

// MachineNames returns the canonical registry names, sorted.
func MachineNames() []string {
	return append([]string(nil), builtinNames...)
}

// CanonicalName resolves a machine name (canonical or alias,
// case-insensitive, whitespace-tolerant) to its canonical registry key.
// Unknown names produce an error that lists the valid set. This is the
// single alias-resolution rule; the plan cache, the daemon and the cmd
// binaries all go through it.
func CanonicalName(name string) (string, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := machineAliases[key]; ok {
		key = canon
	}
	if _, ok := builtinMachines[key]; ok {
		return key, nil
	}
	return "", fmt.Errorf("unknown machine %q (valid: %s)",
		name, strings.Join(builtinNames, ", "))
}

// MachineByName resolves a machine name (canonical or alias,
// case-insensitive) to its parameters. Unknown names produce an error
// that lists the valid set.
func MachineByName(name string) (Params, error) {
	key, err := CanonicalName(name)
	if err != nil {
		return Params{}, err
	}
	return builtinMachines[key], nil
}

// DisplayName returns the human-facing spelling of a machine name
// ("iPSC-860" for "ipsc860"), falling back to the input for names
// outside the registry.
func DisplayName(name string) string {
	key := name
	if canon, err := CanonicalName(name); err == nil {
		key = canon
	}
	if pretty, ok := machineDisplayNames[key]; ok {
		return pretty
	}
	return name
}
