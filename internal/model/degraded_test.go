package model

import (
	"errors"
	"testing"

	"repro/internal/topology"
)

func degradedNet(t *testing.T, spec string, fs topology.FaultSet) *topology.Degraded {
	t.Helper()
	d, err := topology.Overlay(topology.MustParseSpec(spec), fs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Degraded phase costs dominate the healthy closed forms: slow wires
// scale the steps that cross them, dead wires stretch routes by their
// detours, and a healthy overlay prices exactly like the bare network.
func TestPhaseCostOnDegradedDominatesHealthy(t *testing.T) {
	p := IPSC860()
	bare := topology.MustParseSpec("torus-4x4")
	healthyCost := func(lo, w int) float64 {
		c, err := p.PhaseCostOn(bare, 64, lo, w)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	zero := degradedNet(t, "torus-4x4", topology.FaultSet{})
	slow := degradedNet(t, "torus-4x4", topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 3}},
	})
	dead := degradedNet(t, "torus-4x4", topology.FaultSet{
		DeadLinks: []topology.Link{{A: 0, B: 1}},
	})
	for _, f := range [][2]int{{0, 1}, {1, 1}, {0, 2}} {
		lo, w := f[0], f[1]
		h := healthyCost(lo, w)
		z, err := p.PhaseCostOn(zero, 64, lo, w)
		if err != nil {
			t.Fatal(err)
		}
		if z != h {
			t.Fatalf("field [%d,%d): zero-fault overlay cost %v != bare %v", lo, lo+w, z, h)
		}
		s, err := p.PhaseCostOn(slow, 64, lo, w)
		if err != nil {
			t.Fatal(err)
		}
		d, err := p.PhaseCostOn(dead, 64, lo, w)
		if err != nil {
			t.Fatal(err)
		}
		// The slow wire sits in dimension 0 (nodes 0 and 1); fields that
		// route over it must cost strictly more, none may cost less.
		if s < h || d < h {
			t.Fatalf("field [%d,%d): degraded costs (slow %v, dead %v) below healthy %v", lo, lo+w, s, d, h)
		}
		if lo == 0 && (s <= h || d <= h) {
			t.Fatalf("field [%d,%d) crosses the fault but costs (slow %v, dead %v) ≤ healthy %v",
				lo, lo+w, s, d, h)
		}
	}
}

// A non-operational overlay is an error wrapping ErrUnroutable, never a
// cost.
func TestPhaseCostOnNonOperational(t *testing.T) {
	p := IPSC860()
	dead := degradedNet(t, "torus-4x4", topology.FaultSet{DeadNodes: []int{3}})
	if _, err := p.PhaseCostOn(dead, 64, 0, 1); !errors.Is(err, topology.ErrUnroutable) {
		t.Fatalf("PhaseCostOn with dead node: %v, want ErrUnroutable", err)
	}
	if _, _, err := p.MultiphaseOn(dead, 64, []int{1, 1}); !errors.Is(err, topology.ErrUnroutable) {
		t.Fatalf("MultiphaseOn with dead node: %v, want ErrUnroutable", err)
	}
}

// The admissible lower bound stays below the degraded phase cost —
// detours and slow factors only push the cost up, so the healthy-form
// bound keeps its pruning guarantee on faulty overlays.
func TestLowerBoundAdmissibleOnDegraded(t *testing.T) {
	p := IPSC860()
	slow := degradedNet(t, "torus-4x4", topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 7}},
		DeadLinks: []topology.Link{{A: 4, B: 8}},
	})
	for _, f := range [][2]int{{0, 1}, {1, 1}, {0, 2}} {
		lo, w := f[0], f[1]
		for _, m := range []int{0, 16, 256} {
			lb, err := p.PhaseLowerBoundOn(slow, m, lo, w)
			if err != nil {
				t.Fatal(err)
			}
			cost, err := p.PhaseCostOn(slow, m, lo, w)
			if err != nil {
				t.Fatal(err)
			}
			syncAdjust := 0.0
			if !p.GlobalSyncPerPhase {
				// The bound charges the simulator's unconditional
				// per-phase barrier; the analytic cost only charges it
				// when GlobalSyncPerPhase is set.
				syncAdjust = p.GlobalSync(slow.Diameter())
			}
			if lb-syncAdjust > cost {
				t.Fatalf("field [%d,%d) m=%d: lower bound %v above degraded cost %v",
					lo, lo+w, m, lb, cost)
			}
		}
	}
}
