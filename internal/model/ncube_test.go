package model

import (
	"testing"

	"repro/internal/partition"
)

// §9: the multiphase approach should carry over to the Ncube-2. With our
// synthetic Ncube-2 constants the qualitative structure must hold: some
// interior partition beats both classical algorithms over a nonempty
// block range, and the single-phase algorithm wins for large blocks.
func TestNcube2MultiphaseStillWins(t *testing.T) {
	prm := Ncube2()
	d := 6
	won := false
	for m := 1; m <= 200; m++ {
		plan := prm.BestPartition(m, d, false)
		if k := len(plan.Part); k > 1 && k < d {
			won = true
			break
		}
	}
	if !won {
		t.Error("no interior partition ever optimal on Ncube-2 constants")
	}
	// Large blocks: single phase must win eventually.
	plan := prm.BestPartition(100000, d, false)
	if !plan.Part.Equal(partition.Partition{d}) {
		t.Errorf("huge blocks pick %v, want {6}", plan.Part)
	}
}

func TestNcube2HullStructure(t *testing.T) {
	prm := Ncube2()
	hull := prm.Hull(7, 0, 400, 8, false)
	parts := HullPartitions(hull)
	if len(parts) < 2 {
		t.Fatalf("Ncube-2 hull has %d faces; expect a crossover structure", len(parts))
	}
	// The last face must be the coarsest partition seen (largest first
	// part), mirroring the iPSC behaviour.
	last := parts[len(parts)-1]
	for _, p := range parts[:len(parts)-1] {
		if p[0] > last[0] {
			t.Errorf("hull coarsens out of order: %v before %v", p, last)
		}
	}
}

func TestNcube2SyncedLikeIPSC(t *testing.T) {
	prm := Ncube2()
	if prm.Exchange != ExchangeSynced {
		t.Error("Ncube-2 preset should model synchronized exchanges")
	}
	if prm.EffLambda() != prm.Lambda+prm.LambdaZero {
		t.Error("effective lambda must include sync message")
	}
}

func TestExchangeModeStrings(t *testing.T) {
	for m, want := range map[ExchangeMode]string{
		ExchangeIdeal: "ideal", ExchangeSynced: "synced", ExchangeSerialized: "serialized",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if ExchangeMode(9).String() == "" {
		t.Error("unknown mode string")
	}
}

func TestSerializedModeEffParams(t *testing.T) {
	prm := IPSC860NoSync()
	if prm.EffLambda() != 2*prm.Lambda {
		t.Errorf("serialized eff lambda = %v", prm.EffLambda())
	}
	if prm.EffTau() != 2*prm.Tau {
		t.Errorf("serialized eff tau = %v", prm.EffTau())
	}
	if prm.EffDelta() != 2*prm.Delta {
		t.Errorf("serialized eff delta = %v", prm.EffDelta())
	}
	// Synced/ideal: tau unchanged.
	if IPSC860().EffTau() != IPSC860().Tau || IPSC860Raw().EffTau() != IPSC860Raw().Tau {
		t.Error("non-serialized eff tau must equal tau")
	}
}
