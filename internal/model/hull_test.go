package model

import (
	"testing"

	"repro/internal/partition"
)

func TestBestPartitionIsTrueMinimum(t *testing.T) {
	p := IPSC860()
	for d := 2; d <= 7; d++ {
		for _, m := range []int{1, 10, 40, 100, 200, 400} {
			plan := p.BestPartition(m, d, false)
			if !plan.Part.IsValid(d) {
				t.Fatalf("d=%d m=%d: invalid best partition %v", d, m, plan.Part)
			}
			for _, D := range partition.All(d) {
				tt, _ := p.Multiphase(m, d, D)
				if tt < plan.Time-1e-9 {
					t.Errorf("d=%d m=%d: %v (%v) beats reported best %v (%v)",
						d, m, D, tt, plan.Part, plan.Time)
				}
			}
		}
	}
}

// Figure 4 (d=5): the hull of optimality is made up of two faces, {2,3}
// and {5}, with {2,3} optimal below ≈100 bytes; {1,1,1,1,1} never optimal.
func TestHullD5MatchesFigure4(t *testing.T) {
	p := IPSC860()
	hull := p.Hull(5, 4, 400, 4, false)
	parts := HullPartitions(hull)
	if len(parts) != 2 {
		t.Fatalf("d=5 hull has %d faces (%v), want 2", len(parts), parts)
	}
	if !parts[0].Equal(partition.Partition{2, 3}) && !parts[0].Equal(partition.Partition{3, 2}) {
		t.Errorf("first face = %v, want {2,3}", parts[0])
	}
	if !parts[len(parts)-1].Equal(partition.Partition{5}) {
		t.Errorf("last face = %v, want {5}", parts[len(parts)-1])
	}
	sw := p.SwitchPoint(5, 4, 400, partition.Partition{2, 3}, partition.Partition{5})
	if sw < 60 || sw > 160 {
		t.Errorf("{2,3}→{5} switch at %d bytes, paper reports ≈100", sw)
	}
}

// Figure 5 (d=6): optimal partitions are {2,2,2}, {3,3} and {6}, with {6}
// optimal beyond about 140 bytes.
func TestHullD6MatchesFigure5(t *testing.T) {
	p := IPSC860()
	hull := p.Hull(6, 2, 400, 2, false)
	parts := HullPartitions(hull)
	want := []partition.Partition{{2, 2, 2}, {3, 3}, {6}}
	if len(parts) != len(want) {
		t.Fatalf("d=6 hull = %v, want %v", parts, want)
	}
	for i := range want {
		if !parts[i].Canonical().Equal(want[i]) {
			t.Errorf("face %d = %v, want %v", i, parts[i], want[i])
		}
	}
	sw := p.SwitchPoint(6, 2, 400, partition.Partition{3, 3}, partition.Partition{6})
	if sw < 100 || sw > 200 {
		t.Errorf("{3,3}→{6} switch at %d bytes, paper reports ≈140", sw)
	}
}

// Figure 6 (d=7): optimal partitions are {2,2,3}, {3,4} and {7}, with {7}
// optimal beyond about 160 bytes and {2,2,3} optimal for 0–12 bytes.
func TestHullD7MatchesFigure6(t *testing.T) {
	p := IPSC860()
	hull := p.Hull(7, 2, 400, 2, false)
	parts := HullPartitions(hull)
	want := []partition.Partition{{3, 2, 2}, {4, 3}, {7}}
	if len(parts) != len(want) {
		t.Fatalf("d=7 hull = %v, want canonical %v", parts, want)
	}
	for i := range want {
		if !parts[i].Canonical().Equal(want[i]) {
			t.Errorf("face %d = %v, want %v", i, parts[i], want[i])
		}
	}
	// {2,2,3} optimal only for very small blocks (paper: 0–12 bytes).
	if hull[0].MaxBlock > 30 {
		t.Errorf("{2,2,3} face extends to %d bytes, paper reports ≈12", hull[0].MaxBlock)
	}
	sw := p.SwitchPoint(7, 2, 400, partition.Partition{4, 3}, partition.Partition{7})
	if sw < 120 || sw > 220 {
		t.Errorf("{3,4}→{7} switch at %d bytes, paper reports ≈160", sw)
	}
}

// Figure 6 headline: at m=40, d=7 the multiphase {3,4} is more than twice
// as fast as both the Standard Exchange and the Optimal Circuit-Switched
// algorithms (0.016 s vs 0.037 s measured).
func TestD7Block40FactorOfTwo(t *testing.T) {
	p := IPSC860()
	mp, _ := p.Multiphase(40, 7, partition.Partition{4, 3})
	se := p.StandardExchange(40, 7)
	ocs := p.OptimalCircuitSwitched(40, 7)
	// The paper's 2× is measured; its model (like ours) predicts slightly
	// less for SE (the paper notes "the agreement is not perfect"). We
	// assert a ≥1.7× modeled win over both classics.
	if !(mp*1.7 < se && mp*1.7 < ocs) {
		t.Errorf("m=40 d=7: multiphase %.0fµs vs SE %.0fµs OCS %.0fµs — want ≈2× win",
			mp, se, ocs)
	}
	// Absolute scale sanity: paper measures 0.016s for {3,4} and 0.037s
	// for the classics; our model should land in the same decade.
	if mp < 8000 || mp > 32000 {
		t.Errorf("multiphase time %.0fµs out of range of paper's 16000µs", mp)
	}
	if se < 18000 || se > 74000 {
		t.Errorf("SE time %.0fµs out of range of paper's 37000µs", se)
	}
}

// The Standard Exchange partition {1,1,...} is never on the hull for
// d = 5,6,7 on the iPSC-860 (paper §8).
func TestAllOnesNeverOptimalOnIPSC(t *testing.T) {
	p := IPSC860()
	for d := 5; d <= 7; d++ {
		ones := make(partition.Partition, d)
		for i := range ones {
			ones[i] = 1
		}
		for m := 1; m <= 400; m += 7 {
			plan := p.BestPartition(m, d, false)
			if plan.Part.Equal(ones) {
				t.Errorf("d=%d m=%d: {1,...} on the hull, paper says never", d, m)
			}
		}
	}
}

func TestHullSegmentsAreContiguous(t *testing.T) {
	p := IPSC860()
	hull := p.Hull(6, 2, 400, 2, false)
	if len(hull) == 0 {
		t.Fatal("empty hull")
	}
	for i := 1; i < len(hull); i++ {
		if hull[i].MinBlock != hull[i-1].MaxBlock+2 {
			t.Errorf("hull gap between %v and %v", hull[i-1], hull[i])
		}
	}
	if hull[0].MinBlock != 2 || hull[len(hull)-1].MaxBlock != 400 {
		t.Error("hull must span the sweep range")
	}
}

func TestHullStepClamped(t *testing.T) {
	p := Hypothetical()
	hull := p.Hull(3, 1, 5, 0, false) // step 0 → clamped to 1
	total := 0
	for _, s := range hull {
		total += s.MaxBlock - s.MinBlock + 1
	}
	if total != 5 {
		t.Errorf("clamped-step hull covers %d sizes, want 5", total)
	}
}

func TestSwitchPointNever(t *testing.T) {
	p := IPSC860()
	// {7} never beats {2,2,3} in 1..8 bytes.
	if got := p.SwitchPoint(7, 1, 8, partition.Partition{2, 2, 3}, partition.Partition{7}); got != -1 {
		t.Errorf("unexpected switch at %d", got)
	}
}

func TestSeries(t *testing.T) {
	p := IPSC860()
	blocks := []int{10, 20, 40}
	s := p.Series(5, partition.Partition{2, 3}, blocks)
	if len(s) != 3 {
		t.Fatalf("series length %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Error("series must increase with block size")
		}
	}
	want, _ := p.Multiphase(20, 5, partition.Partition{2, 3})
	if s[1] != want {
		t.Errorf("series[1] = %v, want %v", s[1], want)
	}
}

func TestBestPartitionWithBestAlg(t *testing.T) {
	p := IPSC860()
	// bestAlg=true must never be slower than bestAlg=false.
	for _, m := range []int{1, 40, 200} {
		a := p.BestPartition(m, 6, false)
		b := p.BestPartition(m, 6, true)
		if b.Time > a.Time+1e-9 {
			t.Errorf("m=%d: bestAlg plan %v slower than CS-only %v", m, b.Time, a.Time)
		}
	}
}

func TestHullPartitionsDedup(t *testing.T) {
	segs := []HullSegment{
		{Part: partition.Partition{2, 3}, MinBlock: 0, MaxBlock: 10},
		{Part: partition.Partition{5}, MinBlock: 11, MaxBlock: 20},
		{Part: partition.Partition{2, 3}, MinBlock: 21, MaxBlock: 30},
	}
	parts := HullPartitions(segs)
	if len(parts) != 2 {
		t.Errorf("dedup failed: %v", parts)
	}
}
