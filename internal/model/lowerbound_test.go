package model_test

import (
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func TestPhaseLowerBoundErrors(t *testing.T) {
	net := topology.MustNew(4)
	for _, w := range []int{0, -1} {
		if _, err := model.IPSC860().PhaseLowerBoundOn(net, 8, 0, w); err == nil {
			t.Errorf("w=%d: no error", w)
		}
	}
}

// On the contention-free hypercube the XOR bound is the exact
// zero-contention phase makespan: the step-j exchange crosses popcount(j)
// dimensions and Σ popcount(j) over a w-bit field is w·2^(w−1), so the
// bound must match a standalone fragment replay to float noise.
func TestPhaseLowerBoundExactOnHypercube(t *testing.T) {
	for _, prm := range []model.Params{model.IPSC860(), model.Hypothetical()} {
		net := topology.MustNew(6)
		for _, m := range []int{0, 8, 100} {
			for _, D := range []partition.Partition{{2, 4}, {3, 3}, {6}} {
				plan, err := exchange.NewPlan(6, m, D)
				if err != nil {
					t.Fatal(err)
				}
				sim := simnet.New(net, prm)
				fields, err := topology.PhaseFields(net, D)
				if err != nil {
					t.Fatal(err)
				}
				for i, f := range fields {
					lb, err := prm.PhaseLowerBoundOn(net, m, f[0], f[1])
					if err != nil {
						t.Fatal(err)
					}
					res, err := sim.RunSource(plan.CompilePhase(i))
					if err != nil {
						t.Fatal(err)
					}
					if diff := lb - res.Makespan; diff > 1e-9*res.Makespan+1e-9 || -diff > 1e-9*res.Makespan+1e-9 {
						t.Errorf("%v m=%d field %v: bound %v, fragment %v", D, m, f, lb, res.Makespan)
					}
				}
			}
		}
	}
}

// The memoized max-shift-distance path must be deterministic: repeated
// calls return the identical bound, and the bound is monotone in m.
func TestPhaseLowerBoundMemoDeterministic(t *testing.T) {
	prm := model.IPSC860()
	net := topology.MustParseSpec("torus-8x2x2")
	first, err := prm.PhaseLowerBoundOn(net, 8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	again, err := prm.PhaseLowerBoundOn(net, 8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("memoized bound changed: %v then %v", first, again)
	}
	bigger, err := prm.PhaseLowerBoundOn(net, 80, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bigger <= first {
		t.Errorf("bound not monotone in m: m=8 %v, m=80 %v", first, bigger)
	}
}
