package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders the Prometheus text exposition format (version
// 0.0.4). It is a thin formatting helper: callers walk their own
// counters and histograms and emit stable metric names; the writer
// handles label escaping, HELP/TYPE headers, and the cumulative-bucket
// convention.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer over w. Errors are sticky and
// surfaced by Err.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header emits the # HELP and # TYPE lines for a metric. typ is
// "counter", "gauge", or "histogram".
func (p *PromWriter) Header(name, typ, help string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line. labels may be nil; pairs are emitted
// sorted by key so the exposition is deterministic.
func (p *PromWriter) Sample(name string, labels map[string]string, value float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// Counter emits Header + one sample for a single-valued counter.
func (p *PromWriter) Counter(name, help string, labels map[string]string, value float64) {
	p.Header(name, "counter", help)
	p.Sample(name, labels, value)
}

// Gauge emits Header + one sample for a single-valued gauge.
func (p *PromWriter) Gauge(name, help string, labels map[string]string, value float64) {
	p.Header(name, "gauge", help)
	p.Sample(name, labels, value)
}

// Histogram emits one histogram series (buckets with cumulative counts
// and an le label, then _sum and _count) under the given base name and
// labels. The snapshot's bucket bounds are µs; le values are emitted as
// plain integers with "+Inf" for the overflow bucket. The caller emits
// Header(name, "histogram", …) once before any series of that name.
func (p *PromWriter) Histogram(name string, labels map[string]string, s HistSnapshot) {
	for _, b := range s.Buckets {
		bl := cloneLabels(labels)
		if b.LEUS < 0 {
			bl["le"] = "+Inf"
		} else {
			bl["le"] = strconv.FormatInt(b.LEUS, 10)
		}
		p.printf("%s_bucket%s %d\n", name, formatLabels(bl), b.Count)
	}
	p.printf("%s_sum%s %d\n", name, formatLabels(labels), s.SumUS)
	p.printf("%s_count%s %d\n", name, formatLabels(labels), s.Count)
}

func cloneLabels(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	return out
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
