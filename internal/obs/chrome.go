package obs

import (
	"encoding/json"
	"io"
)

// ChromeEvent is one complete ("ph":"X") event of the Chrome
// trace_event format — the JSON that chrome://tracing, Perfetto, and
// speedscope all open directly. Timestamps and durations are in µs.
type ChromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the format (the array flavor
// is also valid, but the object form carries displayTimeUnit).
type chromeDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events as one trace_event JSON document.
func WriteChromeTrace(w io.Writer, events []ChromeEvent) error {
	if events == nil {
		events = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ChromeEvents converts request traces to trace_event form: each trace
// becomes one thread (tid = its index), spans become complete events
// offset from the earliest trace start so concurrent requests line up
// on one clock, and attrs ride along as args.
func ChromeEvents(traces []TraceData) []ChromeEvent {
	var events []ChromeEvent
	if len(traces) == 0 {
		return events
	}
	base := traces[0].Start
	for _, td := range traces {
		if td.Start.Before(base) {
			base = td.Start
		}
	}
	for tid, td := range traces {
		off := float64(td.Start.Sub(base).Microseconds())
		for _, sp := range td.Spans {
			ev := ChromeEvent{
				Name:  sp.Name,
				Cat:   "pland",
				Phase: "X",
				TS:    off + sp.StartUS,
				Dur:   sp.DurUS,
				PID:   1,
				TID:   tid,
			}
			ev.Args = map[string]string{"request_id": td.ID}
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
			events = append(events, ev)
		}
	}
	return events
}
