// Package obs is the fleet's zero-dependency observability layer:
// request correlation IDs carried through contexts and across peer
// hops, named spans recorded into a bounded lock-sharded trace ring
// (exportable as Chrome trace_event JSON), allocation-free log-bucket
// latency histograms with derived quantiles, and a Prometheus text
// exposition writer. The serving tier threads a trace through handler →
// cache lookup → singleflight build → optimizer → compiled-trace
// replay, so one slow /v1/plan opens directly in a trace viewer; the
// same histogram and exposition primitives back /metrics in both its
// JSON and Prometheus forms. Everything here is standard library only
// and safe for concurrent use.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader is the HTTP header carrying a request's correlation
// ID. The serving tier echoes it on every response and the cluster
// layer forwards it on peer fetches and fault forwards, so one request
// leaves the same ID on every replica it touches.
const RequestIDHeader = "X-Pland-Request-Id"

type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceKey
)

// NewRequestID returns a fresh 16-hex-char correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a valid (if non-unique) correlation token.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns ctx carrying the correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the correlation ID carried by ctx ("" when none).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Detach returns a context that carries ctx's observability values
// (request ID, active trace) but none of its cancellation: the shape
// background fills want — work detached from any single request's
// lifetime whose spans still land on the trace of the request that
// initiated it.
func Detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}
