package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of every latency histogram:
// upper bounds 1, 2, 4, … 2^26 µs (~67 s) plus one overflow (+Inf)
// bucket. Fixed log buckets keep Observe allocation-free and make the
// Prometheus exposition's bucket set stable across restarts.
const HistBuckets = 28

// histBound returns bucket i's upper bound in µs (-1 for +Inf).
func histBound(i int) int64 {
	if i >= HistBuckets-1 {
		return -1
	}
	return 1 << uint(i)
}

// Histogram is a fixed log-bucket latency histogram over microsecond
// values. All updates are single atomic adds: safe for concurrent use
// and allocation-free, so it can sit on the per-request hot path.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
}

// Observe records one duration in microseconds. Negative values clamp
// to zero.
func (h *Histogram) Observe(us int64) {
	if us < 0 {
		us = 0
	}
	i := 0
	if us > 1 {
		i = bits.Len64(uint64(us - 1)) // smallest i with us <= 2^i
	}
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		old := h.maxUS.Load()
		if us <= old || h.maxUS.CompareAndSwap(old, us) {
			return
		}
	}
}

// HistBucket is one cumulative bucket of a snapshot: Count observations
// were <= LEUS µs (LEUS -1 means +Inf).
type HistBucket struct {
	LEUS  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time view of a histogram with derived
// quantiles. Buckets are cumulative, in ascending bound order, and
// trimmed past the last occupied finite bucket (the +Inf bucket is
// always last).
type HistSnapshot struct {
	Count int64   `json:"count"`
	SumUS int64   `json:"sum_us"`
	MaxUS int64   `json:"max_us"`
	P50US float64 `json:"p50_us"`
	P90US float64 `json:"p90_us"`
	P99US float64 `json:"p99_us"`
	// Buckets is omitted from the JSON /metrics endpoint sections to
	// keep the legacy document compact; the Prometheus exposition and
	// /debug consumers read it.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot returns a consistent-enough view for serving: counters are
// read once each, so a snapshot taken under concurrent writes may be
// off by in-flight observations but never torn per counter.
func (h *Histogram) Snapshot() HistSnapshot {
	var raw [HistBuckets]int64
	for i := range raw {
		raw[i] = h.buckets[i].Load()
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		SumUS: h.sumUS.Load(),
		MaxUS: h.maxUS.Load(),
	}
	// Cumulative counts; remember the last occupied finite bucket so the
	// wire form stays short for fast endpoints.
	lastUsed := -1
	cum := int64(0)
	var cums [HistBuckets]int64
	for i := range raw {
		cum += raw[i]
		cums[i] = cum
		if raw[i] > 0 && i < HistBuckets-1 {
			lastUsed = i
		}
	}
	total := cum
	for i := 0; i <= lastUsed; i++ {
		s.Buckets = append(s.Buckets, HistBucket{LEUS: histBound(i), Count: cums[i]})
	}
	s.Buckets = append(s.Buckets, HistBucket{LEUS: -1, Count: total})
	s.P50US = quantile(cums[:], total, s.MaxUS, 0.50)
	s.P90US = quantile(cums[:], total, s.MaxUS, 0.90)
	s.P99US = quantile(cums[:], total, s.MaxUS, 0.99)
	return s
}

// quantile estimates the p-quantile from cumulative bucket counts by
// linear interpolation inside the answering bucket; the overflow bucket
// answers with the observed maximum.
func quantile(cums []int64, total, maxUS int64, p float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total))) // nearest-rank
	if rank < 1 {
		rank = 1
	}
	for i, c := range cums {
		if c < rank {
			continue
		}
		if histBound(i) < 0 {
			return float64(maxUS)
		}
		lo := 0.0
		if i > 0 {
			lo = float64(histBound(i - 1))
		}
		hi := float64(histBound(i))
		if maxUS >= 0 && hi > float64(maxUS) {
			hi = float64(maxUS) // never report past the observed max
			if hi < lo {
				return lo
			}
		}
		prev := int64(0)
		if i > 0 {
			prev = cums[i-1]
		}
		inBucket := c - prev
		frac := 1.0
		if inBucket > 0 {
			frac = float64(rank-prev) / float64(inBucket)
		}
		return lo + frac*(hi-lo)
	}
	return float64(maxUS)
}
