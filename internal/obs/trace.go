package obs

import (
	"context"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpansPerTrace bounds one trace's span list: a hull build sweeping
// hundreds of block sizes must not turn one request's trace into an
// unbounded allocation. Spans past the bound are dropped and counted.
const MaxSpansPerTrace = 128

// DefaultTraceCapacity is the trace-ring size NewTracer uses when given
// a non-positive capacity.
const DefaultTraceCapacity = 256

// Attr is one span attribute. Values are strings; SetInt formats
// integers for callers recording counters.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one named stage of a trace. A nil *Span is a valid no-op
// (StartSpan returns nil when ctx carries no trace), so instrumented
// code never branches on whether tracing is active.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	end   time.Time
	attrs []Attr
	root  bool
}

// SetAttr records a string attribute (no-op on a nil or dropped span).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// End closes the span, feeding its duration into the tracer's per-stage
// histogram. Ending a root span also commits the whole trace to the
// ring. Safe to call on nil; must be called at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.mu.Lock()
	s.end = now
	s.tr.mu.Unlock()
	if !s.root {
		s.tr.tracer.stageHist(s.name).Observe(now.Sub(s.start).Microseconds())
	} else {
		s.tr.tracer.commit(s.tr)
	}
}

// Trace is one request's span collection. It is created by
// Tracer.StartRequest, carried by context, and committed to the ring
// when its root span ends; spans recorded after the commit (a build
// that outlives the request that initiated it) still attach to it.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time

	mu      sync.Mutex
	spans   []*Span
	dropped int
}

// SpanData is one span on the /debug/traces wire: offsets are µs from
// the trace start.
type SpanData struct {
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Attrs   []Attr  `json:"attrs,omitempty"`
}

// TraceData is one trace on the /debug/traces wire.
type TraceData struct {
	ID           string     `json:"id"`
	Name         string     `json:"name"`
	Start        time.Time  `json:"start"`
	DurationUS   float64    `json:"duration_us"`
	Spans        []SpanData `json:"spans"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
}

// snapshot renders the trace for serving. Open spans report the
// duration so far.
func (t *Trace) snapshot() TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	td := TraceData{ID: t.id, Name: t.name, Start: t.start, DroppedSpans: t.dropped}
	for _, s := range t.spans {
		end := s.end
		if end.IsZero() {
			end = now
		}
		sd := SpanData{
			Name:    s.name,
			StartUS: float64(s.start.Sub(t.start)) / float64(time.Microsecond),
			DurUS:   float64(end.Sub(s.start)) / float64(time.Microsecond),
		}
		if len(s.attrs) > 0 {
			sd.Attrs = append([]Attr(nil), s.attrs...)
		}
		td.Spans = append(td.Spans, sd)
		if s.root {
			td.DurationUS = sd.DurUS
		}
	}
	return td
}

// traceShard is one lock domain of the ring.
type traceShard struct {
	mu   sync.Mutex
	ring []*Trace
	next int
}

// Tracer records request traces into a bounded lock-sharded ring buffer
// and aggregates per-stage duration histograms keyed by span name.
type Tracer struct {
	shards   []traceShard
	perShard int

	histMu sync.Mutex
	hists  map[string]*Histogram

	committed atomic.Int64
}

// NewTracer returns a tracer retaining roughly the given number of most
// recent traces (default DefaultTraceCapacity), spread over 8 shards.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	const nShards = 8
	per := (capacity + nShards - 1) / nShards
	t := &Tracer{
		shards:   make([]traceShard, nShards),
		perShard: per,
		hists:    make(map[string]*Histogram),
	}
	for i := range t.shards {
		t.shards[i].ring = make([]*Trace, 0, per)
	}
	return t
}

// StartRequest opens a trace for one request: the returned context
// carries the request ID and the trace (so StartSpan works anywhere
// downstream), and the returned root span commits the trace to the ring
// when ended. A nil tracer returns ctx unchanged and a nil span.
func (t *Tracer) StartRequest(ctx context.Context, id, name string) (context.Context, *Span) {
	if t == nil {
		return WithRequestID(ctx, id), nil
	}
	tr := &Trace{tracer: t, id: id, name: name, start: time.Now()}
	root := &Span{tr: tr, name: name, start: tr.start, root: true}
	tr.spans = append(tr.spans, root)
	ctx = WithRequestID(ctx, id)
	ctx = context.WithValue(ctx, traceKey, tr)
	return ctx, root
}

// StartSpan opens a named span on the trace carried by ctx; it returns
// nil (a valid no-op span) when ctx carries none or the trace's span
// budget is spent.
func StartSpan(ctx context.Context, name string) *Span {
	tr, _ := ctx.Value(traceKey).(*Trace)
	if tr == nil {
		return nil
	}
	s := &Span{tr: tr, name: name, start: time.Now()}
	tr.mu.Lock()
	if len(tr.spans) >= MaxSpansPerTrace {
		tr.dropped++
		tr.mu.Unlock()
		return nil
	}
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return s
}

// commit stores a finished trace in its ring shard, evicting the oldest
// entry past capacity.
func (t *Tracer) commit(tr *Trace) {
	h := fnv.New32a()
	h.Write([]byte(tr.id))
	sh := &t.shards[h.Sum32()%uint32(len(t.shards))]
	sh.mu.Lock()
	if len(sh.ring) < t.perShard {
		sh.ring = append(sh.ring, tr)
	} else {
		sh.ring[sh.next] = tr
		sh.next = (sh.next + 1) % t.perShard
	}
	sh.mu.Unlock()
	t.committed.Add(1)
}

// Committed returns how many traces have been committed since start
// (the ring retains only the most recent ones).
func (t *Tracer) Committed() int64 { return t.committed.Load() }

// Snapshot returns up to limit committed traces, most recent first
// (limit <= 0 means all retained).
func (t *Tracer) Snapshot(limit int) []TraceData {
	var all []TraceData
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, tr := range sh.ring {
			all = append(all, tr.snapshot())
		}
		sh.mu.Unlock()
	}
	sortTracesByStartDesc(all)
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}

// Find returns the committed traces carrying the given request ID,
// most recent first.
func (t *Tracer) Find(id string) []TraceData {
	var out []TraceData
	for _, td := range t.Snapshot(0) {
		if td.ID == id {
			out = append(out, td)
		}
	}
	return out
}

// stageHist returns (creating once) the histogram for a span name.
func (t *Tracer) stageHist(name string) *Histogram {
	t.histMu.Lock()
	defer t.histMu.Unlock()
	h, ok := t.hists[name]
	if !ok {
		h = &Histogram{}
		t.hists[name] = h
	}
	return h
}

// StageStats snapshots the per-stage duration histograms, keyed by span
// name (e.g. "build", "optimizer", "replay", "peer_fetch").
func (t *Tracer) StageStats() map[string]HistSnapshot {
	if t == nil {
		return nil
	}
	t.histMu.Lock()
	names := make([]string, 0, len(t.hists))
	hists := make([]*Histogram, 0, len(t.hists))
	for name, h := range t.hists {
		names = append(names, name)
		hists = append(hists, h)
	}
	t.histMu.Unlock()
	out := make(map[string]HistSnapshot, len(names))
	for i, name := range names {
		out[name] = hists[i].Snapshot()
	}
	return out
}

func sortTracesByStartDesc(ts []TraceData) {
	// Insertion sort: the ring is small (hundreds) and mostly ordered.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Start.After(ts[j-1].Start); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
