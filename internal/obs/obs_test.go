package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestIDRoundTrip(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Fatalf("NewRequestID() = %q, want 16 hex chars", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Fatalf("two fresh IDs collided: %q", id)
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestID(ctx); got != id {
		t.Fatalf("RequestID = %q, want %q", got, id)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on bare ctx = %q, want empty", got)
	}
}

func TestDetachKeepsValuesDropsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(WithRequestID(context.Background(), "abc"))
	d := Detach(ctx)
	cancel()
	if err := d.Err(); err != nil {
		t.Fatalf("detached ctx cancelled: %v", err)
	}
	if got := RequestID(d); got != "abc" {
		t.Fatalf("detached ctx lost the request ID: %q", got)
	}
}

func TestTracerRecordsSpansAndCommits(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartRequest(context.Background(), "req-1", "/v1/plan")
	sp := StartSpan(ctx, "build")
	sp.SetAttr("topology", "hypercube-4")
	sp.SetInt("segments", 7)
	sp.End()
	if got := tr.Committed(); got != 0 {
		t.Fatalf("trace committed before root end: %d", got)
	}
	root.SetInt("status", 200)
	root.End()
	if got := tr.Committed(); got != 1 {
		t.Fatalf("committed = %d, want 1", got)
	}

	got := tr.Find("req-1")
	if len(got) != 1 {
		t.Fatalf("Find returned %d traces, want 1", len(got))
	}
	td := got[0]
	if td.Name != "/v1/plan" || len(td.Spans) != 2 {
		t.Fatalf("trace %+v: want root + build spans", td)
	}
	var build *SpanData
	for i := range td.Spans {
		if td.Spans[i].Name == "build" {
			build = &td.Spans[i]
		}
	}
	if build == nil {
		t.Fatal("build span missing")
	}
	var topo string
	for _, a := range build.Attrs {
		if a.Key == "topology" {
			topo = a.Value
		}
	}
	if topo != "hypercube-4" {
		t.Fatalf("build span attrs %+v missing topology", build.Attrs)
	}
	if td.DurationUS < build.DurUS {
		t.Fatalf("root duration %.1f < child %.1f", td.DurationUS, build.DurUS)
	}

	// Stage histograms aggregate child spans by name; roots are counted
	// by the serving tier's own endpoint histograms, not here.
	stages := tr.StageStats()
	if stages["build"].Count != 1 {
		t.Fatalf("stage build count = %d, want 1", stages["build"].Count)
	}
	if _, ok := stages["/v1/plan"]; ok {
		t.Fatal("root span leaked into stage histograms")
	}
}

func TestNilTracerAndNilSpansAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartRequest(context.Background(), "id", "x")
	if root != nil {
		t.Fatal("nil tracer returned a span")
	}
	if got := RequestID(ctx); got != "id" {
		t.Fatal("nil tracer dropped the request ID")
	}
	sp := StartSpan(context.Background(), "anything")
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.End() // must not panic
	root.End()
}

func TestSpanBudgetDropsAndCounts(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartRequest(context.Background(), "big", "sweep")
	for i := 0; i < MaxSpansPerTrace+10; i++ {
		StartSpan(ctx, "point").End()
	}
	root.End()
	td := tr.Find("big")[0]
	if len(td.Spans) != MaxSpansPerTrace {
		t.Fatalf("%d spans retained, want %d", len(td.Spans), MaxSpansPerTrace)
	}
	if td.DroppedSpans != 11 { // root occupies one slot
		t.Fatalf("dropped = %d, want 11", td.DroppedSpans)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(8) // 1 per shard
	for i := 0; i < 100; i++ {
		_, root := tr.StartRequest(context.Background(), "id", "x")
		root.End()
	}
	if n := len(tr.Snapshot(0)); n > 8 {
		t.Fatalf("ring retained %d traces, capacity 8", n)
	}
	if tr.Committed() != 100 {
		t.Fatalf("committed = %d, want 100", tr.Committed())
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartRequest(context.Background(), NewRequestID(), "/v1/plan")
				sp := StartSpan(ctx, "cache")
				sp.SetAttr("outcome", "hit")
				sp.End()
				root.End()
				tr.Snapshot(4)
			}
		}()
	}
	wg.Wait()
	if tr.Committed() != 400 {
		t.Fatalf("committed = %d, want 400", tr.Committed())
	}
}

func TestHistogramQuantilesAndBuckets(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.MaxUS != 1000 {
		t.Fatalf("count %d max %d", s.Count, s.MaxUS)
	}
	if s.SumUS != 500500 {
		t.Fatalf("sum = %d", s.SumUS)
	}
	// Log buckets bound the quantile estimate to its bucket: p50 of
	// 1..1000 is 500, inside (256, 512].
	if s.P50US <= 256 || s.P50US > 512 {
		t.Fatalf("p50 = %.1f, want in (256, 512]", s.P50US)
	}
	if s.P99US <= 512 || s.P99US > 1000 {
		t.Fatalf("p99 = %.1f, want in (512, 1000]", s.P99US)
	}
	// Buckets are cumulative and end with +Inf at the total.
	last := int64(-1)
	for _, b := range s.Buckets {
		if b.Count < last {
			t.Fatalf("bucket counts not cumulative: %+v", s.Buckets)
		}
		last = b.Count
	}
	inf := s.Buckets[len(s.Buckets)-1]
	if inf.LEUS != -1 || inf.Count != 1000 {
		t.Fatalf("+Inf bucket %+v, want count 1000", inf)
	}
}

func TestHistogramOverflowAndZero(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1 << 30) // past the last finite bound
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0].LEUS != 1 || s.Buckets[0].Count != 2 {
		t.Fatalf("first bucket %+v, want le=1 count=2", s.Buckets[0])
	}
	if s.P99US != float64(int64(1<<30)) {
		t.Fatalf("overflow p99 = %.0f, want observed max", s.P99US)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50US != 0 || s.P99US != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].LEUS != -1 {
		t.Fatalf("empty snapshot buckets %+v, want just +Inf", s.Buckets)
	}
}

func TestPromWriterFormats(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("pland_panics_total", "Recovered handler panics.", nil, 3)
	p.Gauge("pland_http_inflight", "In-flight requests.", map[string]string{"endpoint": "/v1/plan"}, 2)
	var h Histogram
	h.Observe(3)
	h.Observe(300)
	p.Header("pland_http_request_duration_us", "histogram", "Request latency.")
	p.Histogram("pland_http_request_duration_us", map[string]string{"endpoint": "/v1/plan"}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pland_panics_total counter",
		"pland_panics_total 3",
		`pland_http_inflight{endpoint="/v1/plan"} 2`,
		`pland_http_request_duration_us_bucket{endpoint="/v1/plan",le="4"} 1`,
		`pland_http_request_duration_us_bucket{endpoint="/v1/plan",le="+Inf"} 2`,
		`pland_http_request_duration_us_sum{endpoint="/v1/plan"} 303`,
		`pland_http_request_duration_us_count{endpoint="/v1/plan"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Sample("m", map[string]string{"k": "a\"b\\c\nd"}, 1)
	want := `m{k="a\"b\\c\nd"} 1` + "\n"
	if buf.String() != want {
		t.Fatalf("escaped sample %q, want %q", buf.String(), want)
	}
}

func TestChromeExport(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartRequest(context.Background(), "c1", "/v1/plan")
	sp := StartSpan(ctx, "build")
	time.Sleep(time.Millisecond)
	sp.End()
	root.End()

	events := ChromeEvents(tr.Snapshot(0))
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "build" {
			found = true
			if ev.Ph != "X" || ev.Dur <= 0 {
				t.Fatalf("build event %+v", ev)
			}
			if ev.Args["request_id"] != "c1" {
				t.Fatalf("build event lost the request ID: %+v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("build event missing from export")
	}
}
