package trace

import (
	"strings"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func tracedRun(t *testing.T, d, m int, D partition.Partition) simnet.Result {
	t.Helper()
	plan, err := exchange.NewPlan(d, m, D)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(topology.MustNew(d), model.IPSC860())
	net.SetTrace(true)
	res, err := plan.Simulate(net)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimelineRecorded(t *testing.T) {
	res := tracedRun(t, 3, 16, partition.Partition{2, 1})
	if len(res.Timeline) == 0 {
		t.Fatal("no intervals recorded")
	}
	// Per node: 2 barriers + 3+1 exchanges + 1 shuffle... phase 1 (d1=2):
	// barrier + 3 exchanges + shuffle; phase 2 (d2=1): barrier + 1
	// exchange + shuffle skipped? d2=1 != d=3 so shuffle present.
	// 8 nodes × (1+3+1 + 1+1+1) = 64 intervals.
	if len(res.Timeline) != 64 {
		t.Errorf("timeline has %d intervals, want 64", len(res.Timeline))
	}
	for _, iv := range res.Timeline {
		if iv.End < iv.Start {
			t.Fatalf("negative interval %+v", iv)
		}
		if iv.End > res.Makespan+1e-9 {
			t.Fatalf("interval beyond makespan: %+v", iv)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	plan, _ := exchange.NewPlan(2, 8, partition.Partition{2})
	net := simnet.New(topology.MustNew(2), model.IPSC860())
	res, err := plan.Simulate(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 0 {
		t.Error("timeline must be empty without SetTrace")
	}
}

func TestAnalyzeBreakdown(t *testing.T) {
	res := tracedRun(t, 4, 32, partition.Partition{2, 2})
	st := Analyze(res)
	if st.Nodes != 16 || st.Makespan != res.Makespan {
		t.Fatalf("stats header wrong: %+v", st)
	}
	// All nodes run identical programs in lockstep: equal busy times.
	for i := 1; i < st.Nodes; i++ {
		if st.Busy[i] != st.Busy[0] {
			t.Errorf("node %d busy %v != node 0 %v", i, st.Busy[i], st.Busy[0])
		}
	}
	// Exchange + shuffle + barrier shares must sum to ~1 (only kinds
	// present in a multiphase program).
	sum := st.KindShare(simnet.OpExchange) + st.KindShare(simnet.OpShuffle) +
		st.KindShare(simnet.OpBarrier)
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v", sum)
	}
	if st.KindShare(simnet.OpExchange) <= 0 || st.KindShare(simnet.OpShuffle) <= 0 {
		t.Error("exchange and shuffle shares must be positive")
	}
	// Lockstep plans: utilization ≈ 1.
	if u := st.Utilization(0); u < 0.999 || u > 1.001 {
		t.Errorf("utilization = %v", u)
	}
}

func TestKindShareEmpty(t *testing.T) {
	if (Stats{}).KindShare(simnet.OpExchange) != 0 {
		t.Error("empty stats share must be 0")
	}
	s := Stats{Makespan: 0, Busy: []float64{0}}
	if s.Utilization(0) != 0 {
		t.Error("zero-makespan utilization must be 0")
	}
}

func TestGanttRendering(t *testing.T) {
	res := tracedRun(t, 3, 16, partition.Partition{2, 1})
	g := Gantt(res, 80)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 9 { // header + 8 nodes
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	for _, glyph := range []string{"X", "#", "|"} {
		if !strings.Contains(g, glyph) {
			t.Errorf("gantt missing %q:\n%s", glyph, g)
		}
	}
	// Row width must be the requested width.
	row := lines[1]
	bar := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if len(bar) != 80 {
		t.Errorf("bar width %d", len(bar))
	}
}

func TestGanttEmptyAndClamped(t *testing.T) {
	if !strings.Contains(Gantt(simnet.Result{}, 40), "empty") {
		t.Error("empty timeline must render placeholder")
	}
	res := tracedRun(t, 2, 8, partition.Partition{2})
	if g := Gantt(res, 0); !strings.Contains(g, "node") {
		t.Error("width clamp failed")
	}
}

func TestSummary(t *testing.T) {
	res := tracedRun(t, 3, 16, partition.Partition{1, 1, 1})
	s := Summary(res)
	for _, want := range []string{"makespan", "exchange", "shuffle", "barrier", "%"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestGanttGlyphCoverage(t *testing.T) {
	// A synthetic timeline exercising every op kind, including ones the
	// exchange plans never emit (send, postrecv, compute, unknown).
	res := simnet.Result{
		Makespan:   100,
		NodeFinish: make([]float64, 2),
		Timeline: []simnet.Interval{
			{Node: 0, Kind: simnet.OpSend, Start: 0, End: 10},
			{Node: 0, Kind: simnet.OpRecv, Start: 10, End: 20},
			{Node: 0, Kind: simnet.OpWaitRecv, Start: 20, End: 30},
			{Node: 0, Kind: simnet.OpPostRecv, Start: 30, End: 40},
			{Node: 0, Kind: simnet.OpCompute, Start: 40, End: 50},
			{Node: 1, Kind: simnet.OpKind(99), Start: 0, End: 100},
			{Node: 7, Kind: simnet.OpSend, Start: 0, End: 5}, // out of range: ignored
		},
	}
	g := Gantt(res, 50)
	for _, glyph := range []string{"s", "r", "p", "c", "?"} {
		if !strings.Contains(g, glyph) {
			t.Errorf("gantt missing glyph %q:\n%s", glyph, g)
		}
	}
	st := Analyze(res)
	if st.Busy[1] != 100 {
		t.Errorf("node 1 busy = %v", st.Busy[1])
	}
	if st.KindShare(simnet.OpSend) <= 0 {
		t.Error("send share must count")
	}
}
