// Package trace analyzes and renders the per-node timelines recorded by
// the network simulator (simnet.Network.SetTrace). It computes occupancy
// breakdowns — how much of the run each node spent exchanging, shuffling,
// or waiting at barriers — and renders a text Gantt chart, the visual
// counterpart of the phase structure in the paper's Figure 3.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simnet"
)

// Stats is the per-node occupancy breakdown of one simulated run.
type Stats struct {
	Nodes    int
	Makespan float64
	// ByKind[node][kind] is the total µs node spent inside ops of kind.
	ByKind []map[simnet.OpKind]float64
	// Busy[node] is the total op occupancy of the node in µs.
	Busy []float64
}

// Analyze computes occupancy statistics from a traced result.
func Analyze(res simnet.Result) Stats {
	n := len(res.NodeFinish)
	st := Stats{
		Nodes:    n,
		Makespan: res.Makespan,
		ByKind:   make([]map[simnet.OpKind]float64, n),
		Busy:     make([]float64, n),
	}
	for i := range st.ByKind {
		st.ByKind[i] = make(map[simnet.OpKind]float64)
	}
	for _, iv := range res.Timeline {
		if iv.Node < 0 || iv.Node >= n {
			continue
		}
		dur := iv.End - iv.Start
		st.ByKind[iv.Node][iv.Kind] += dur
		st.Busy[iv.Node] += dur
	}
	return st
}

// KindShare returns the fraction of total occupancy across all nodes
// spent in the given op kind (0 when the run is empty).
func (s Stats) KindShare(k simnet.OpKind) float64 {
	var kind, total float64
	for i := range s.ByKind {
		kind += s.ByKind[i][k]
		total += s.Busy[i]
	}
	if total == 0 {
		return 0
	}
	return kind / total
}

// Utilization returns node's busy fraction of the makespan (0 when the
// makespan is zero).
func (s Stats) Utilization(node int) float64 {
	if s.Makespan == 0 {
		return 0
	}
	return s.Busy[node] / s.Makespan
}

// kindGlyph maps op kinds to Gantt glyphs.
func kindGlyph(k simnet.OpKind) byte {
	switch k {
	case simnet.OpExchange:
		return 'X'
	case simnet.OpSend:
		return 's'
	case simnet.OpRecv, simnet.OpWaitRecv:
		return 'r'
	case simnet.OpPostRecv:
		return 'p'
	case simnet.OpShuffle:
		return '#'
	case simnet.OpCompute:
		return 'c'
	case simnet.OpBarrier:
		return '|'
	default:
		return '?'
	}
}

// Gantt renders the timeline as a text chart: one row per node, width
// columns across the makespan. Later-starting ops overwrite earlier ones
// within a cell; idle time is '.'.
//
//	node  0 |####XXXX||XXXX....|
func Gantt(res simnet.Result, width int) string {
	if width < 1 {
		width = 60
	}
	n := len(res.NodeFinish)
	if n == 0 || res.Makespan <= 0 {
		return "(empty timeline)\n"
	}
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	intervals := append([]simnet.Interval(nil), res.Timeline...)
	sort.Slice(intervals, func(i, j int) bool { return intervals[i].Start < intervals[j].Start })
	scale := float64(width) / res.Makespan
	for _, iv := range intervals {
		if iv.Node < 0 || iv.Node >= n {
			continue
		}
		lo := int(iv.Start * scale)
		hi := int(iv.End * scale)
		if hi == lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		g := kindGlyph(iv.Kind)
		for x := lo; x < hi; x++ {
			rows[iv.Node][x] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %.1f µs  (X exchange, s send, r recv, # shuffle, | barrier, c compute, . idle)\n",
		res.Makespan)
	for i, row := range rows {
		fmt.Fprintf(&b, "node %3d |%s|\n", i, row)
	}
	return b.String()
}

// Summary renders the aggregate occupancy shares as one line per kind.
func Summary(res simnet.Result) string {
	s := Analyze(res)
	kinds := []simnet.OpKind{
		simnet.OpExchange, simnet.OpSend, simnet.OpRecv, simnet.OpWaitRecv,
		simnet.OpShuffle, simnet.OpBarrier, simnet.OpCompute,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.1f µs over %d nodes\n", s.Makespan, s.Nodes)
	for _, k := range kinds {
		if share := s.KindShare(k); share > 0 {
			fmt.Fprintf(&b, "  %-9s %5.1f%%\n", k, share*100)
		}
	}
	return b.String()
}
