package trace

import (
	"io"
	"strconv"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// ChromeEvents converts a traced simulation timeline to Chrome
// trace_event form: one thread per node, one complete event per op
// interval, with the peer and byte count riding along as args. The
// export opens directly in chrome://tracing, Perfetto, or speedscope —
// a zoomable version of the text Gantt chart.
func ChromeEvents(res simnet.Result) []obs.ChromeEvent {
	events := make([]obs.ChromeEvent, 0, len(res.Timeline))
	for _, iv := range res.Timeline {
		ev := obs.ChromeEvent{
			Name:  iv.Kind.String(),
			Cat:   "simnet",
			Phase: "X",
			TS:    iv.Start,
			Dur:   iv.End - iv.Start,
			PID:   1,
			TID:   iv.Node,
			Args: map[string]string{
				"node": strconv.Itoa(iv.Node),
			},
		}
		if iv.Peer >= 0 {
			ev.Args["peer"] = strconv.Itoa(iv.Peer)
		}
		if iv.Bytes > 0 {
			ev.Args["bytes"] = strconv.Itoa(iv.Bytes)
		}
		events = append(events, ev)
	}
	return events
}

// WriteChrome writes a traced result as one trace_event JSON document.
func WriteChrome(w io.Writer, res simnet.Result) error {
	return obs.WriteChromeTrace(w, ChromeEvents(res))
}
