package calibrate

import (
	"math"
	"testing"

	"repro/internal/model"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

var sizes = []int{0, 16, 64, 256, 1024}
var dists = []int{1, 2, 3, 4, 5}

// The calibration loop must recover the simulator's configured constants
// exactly: this is the §7.4 measurement table reproduced against our
// virtual iPSC-860.
func TestFitRecoversRawConstants(t *testing.T) {
	prm := model.IPSC860Raw()
	samples, err := MeasureMessages(prm, 5, sizes, dists)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitMessageModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Lambda, 95.0, 1e-6) {
		t.Errorf("λ = %v, want 95.0", fit.Lambda)
	}
	if !almost(fit.Tau, 0.394, 1e-9) {
		t.Errorf("τ = %v, want 0.394", fit.Tau)
	}
	if !almost(fit.Delta, 10.3, 1e-6) {
		t.Errorf("δ = %v, want 10.3", fit.Delta)
	}
	if fit.RMS > 1e-6 {
		t.Errorf("RMS = %v, model should be exact", fit.RMS)
	}
}

// Exchange calibration must recover the *effective* constants of §7.4:
// λ_eff = 177.5, δ_eff = 20.6 under pairwise synchronization.
func TestFitRecoversEffectiveConstants(t *testing.T) {
	prm := model.IPSC860()
	samples, err := MeasureExchanges(prm, 5, sizes, dists)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitMessageModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Lambda, 177.5, 1e-6) {
		t.Errorf("effective λ = %v, want 177.5", fit.Lambda)
	}
	if !almost(fit.Delta, 20.6, 1e-6) {
		t.Errorf("effective δ = %v, want 20.6", fit.Delta)
	}
	if !almost(fit.Tau, 0.394, 1e-9) {
		t.Errorf("τ = %v, want 0.394 (sync does not touch bandwidth)", fit.Tau)
	}
}

// Serialized exchanges double both startup and bandwidth terms.
func TestFitSerializedMode(t *testing.T) {
	prm := model.IPSC860NoSync()
	samples, err := MeasureExchanges(prm, 5, sizes, dists)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitMessageModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Lambda, 190.0, 1e-6) || !almost(fit.Tau, 0.788, 1e-9) || !almost(fit.Delta, 20.6, 1e-6) {
		t.Errorf("serialized fit = %+v, want 2λ, 2τ, 2δ", fit)
	}
}

func TestMeasureShuffleRecoversRho(t *testing.T) {
	prm := model.IPSC860()
	rho, err := MeasureShuffle(prm, []int{64, 128, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rho, 0.54, 1e-9) {
		t.Errorf("ρ = %v, want 0.54", rho)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := FitMessageModel(nil); err == nil {
		t.Error("no samples must fail")
	}
	// Degenerate design: all samples identical → singular system.
	same := []Sample{{10, 1, 5}, {10, 1, 5}, {10, 1, 5}, {10, 1, 5}}
	if _, err := FitMessageModel(same); err == nil {
		t.Error("degenerate design must fail")
	}
}

func TestMeasureValidation(t *testing.T) {
	prm := model.IPSC860()
	if _, err := MeasureMessages(prm, 3, []int{8}, []int{4}); err == nil {
		t.Error("distance beyond cube must fail")
	}
	if _, err := MeasureExchanges(prm, 3, []int{8}, []int{0}); err == nil {
		t.Error("distance 0 must fail")
	}
	if _, err := MeasureShuffle(prm, nil); err == nil {
		t.Error("no sizes must fail")
	}
	if _, err := MeasureShuffle(prm, []int{0}); err == nil {
		t.Error("all-zero sizes must fail")
	}
}

func TestFitWithNoise(t *testing.T) {
	// A noisy but consistent dataset: fit must land near the truth with
	// small RMS reported honestly.
	var samples []Sample
	noise := []float64{0.5, -0.5, 0.25, -0.25}
	i := 0
	for _, m := range sizes {
		for _, h := range dists {
			truth := 100 + 0.5*float64(m) + 12*float64(h)
			samples = append(samples, Sample{m, h, truth + noise[i%len(noise)]})
			i++
		}
	}
	fit, err := FitMessageModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Lambda, 100, 1) || !almost(fit.Tau, 0.5, 0.01) || !almost(fit.Delta, 12, 0.5) {
		t.Errorf("noisy fit = %+v", fit)
	}
	if fit.RMS <= 0 || fit.RMS > 1 {
		t.Errorf("RMS = %v", fit.RMS)
	}
}
