// Package calibrate recovers machine performance constants from timing
// experiments, reproducing the measurement methodology behind the paper's
// §7.4 table (and its reference [2], "Communication overheads on the
// Intel iPSC-860"): send messages of varying size m across varying
// distances h, record the times, and fit
//
//	t(m, h) = λ + τ·m + δ·h
//
// by linear least squares. Running the fit against the network simulator
// closes the loop: the recovered (λ, τ, δ) must equal the constants the
// simulator was configured with, which the tests assert to numerical
// precision. The same harness can calibrate the shuffle cost ρ and the
// per-exchange synchronization overhead.
package calibrate

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Sample is one timing observation: an m-byte transfer across h
// dimensions took Micros µs.
type Sample struct {
	Bytes  int
	Dims   int
	Micros float64
}

// Fit holds the least-squares estimate of the message-time model.
type Fit struct {
	Lambda float64 // µs
	Tau    float64 // µs/byte
	Delta  float64 // µs/dimension
	// RMS is the root-mean-square residual of the fit in µs.
	RMS float64
}

// FitMessageModel solves min Σ (λ + τ·mᵢ + δ·hᵢ − tᵢ)² by the normal
// equations of the 3-parameter linear model. It needs at least three
// samples with nondegenerate (m, h) variation.
func FitMessageModel(samples []Sample) (Fit, error) {
	if len(samples) < 3 {
		return Fit{}, fmt.Errorf("calibrate: need ≥3 samples, have %d", len(samples))
	}
	// Normal equations A·x = b for x = (λ, τ, δ) with rows (1, m, h).
	var a [3][3]float64
	var b [3]float64
	for _, s := range samples {
		row := [3]float64{1, float64(s.Bytes), float64(s.Dims)}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * s.Micros
		}
	}
	x, err := solve3(a, b)
	if err != nil {
		return Fit{}, err
	}
	fit := Fit{Lambda: x[0], Tau: x[1], Delta: x[2]}
	var ss float64
	for _, s := range samples {
		r := fit.Lambda + fit.Tau*float64(s.Bytes) + fit.Delta*float64(s.Dims) - s.Micros
		ss += r * r
	}
	fit.RMS = sqrt(ss / float64(len(samples)))
	return fit, nil
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if abs(a[r][col]) > abs(a[p][col]) {
				p = r
			}
		}
		if abs(a[p][col]) < 1e-12 {
			return [3]float64{}, fmt.Errorf("calibrate: degenerate sample design (singular system)")
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for r := 2; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < 3; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for reporting purposes.
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// MeasureMessages runs one-sided FORCED sends of every (bytes × dims)
// combination on a simulated d-cube and returns the samples. This is the
// ping benchmark of [2] run against our virtual machine.
func MeasureMessages(prm model.Params, d int, sizes, dists []int) ([]Sample, error) {
	h, err := topology.New(d)
	if err != nil {
		return nil, err
	}
	net := simnet.New(h, prm)
	var out []Sample
	for _, m := range sizes {
		for _, hd := range dists {
			if hd < 1 || hd > d {
				return nil, fmt.Errorf("calibrate: distance %d out of 1..%d", hd, d)
			}
			dst := (1 << uint(hd)) - 1 // node at distance hd from 0
			progs := make([]simnet.Program, h.Nodes())
			progs[dst] = simnet.Program{simnet.PostRecv(0), simnet.WaitRecv(0)}
			progs[0] = simnet.Program{simnet.Send(dst, m, simnet.Forced)}
			res, err := net.Run(progs)
			if err != nil {
				return nil, err
			}
			out = append(out, Sample{Bytes: m, Dims: hd, Micros: res.Makespan})
		}
	}
	return out, nil
}

// MeasureExchanges runs pairwise exchanges and fits the *effective*
// constants (the paper's λ=177.5, δ=20.6 row): under ExchangeSynced the
// fitted λ must come out λ+λ0 and the fitted δ must double.
func MeasureExchanges(prm model.Params, d int, sizes, dists []int) ([]Sample, error) {
	h, err := topology.New(d)
	if err != nil {
		return nil, err
	}
	net := simnet.New(h, prm)
	var out []Sample
	for _, m := range sizes {
		for _, hd := range dists {
			if hd < 1 || hd > d {
				return nil, fmt.Errorf("calibrate: distance %d out of 1..%d", hd, d)
			}
			dst := (1 << uint(hd)) - 1
			progs := make([]simnet.Program, h.Nodes())
			progs[0] = simnet.Program{simnet.Exchange(dst, m)}
			progs[dst] = simnet.Program{simnet.Exchange(0, m)}
			res, err := net.Run(progs)
			if err != nil {
				return nil, err
			}
			out = append(out, Sample{Bytes: m, Dims: hd, Micros: res.Makespan})
		}
	}
	return out, nil
}

// MeasureShuffle estimates ρ by timing local shuffles of growing size on
// the simulator and fitting t = ρ·bytes through the origin.
func MeasureShuffle(prm model.Params, sizes []int) (float64, error) {
	if len(sizes) == 0 {
		return 0, fmt.Errorf("calibrate: no sizes")
	}
	h, err := topology.New(0)
	if err != nil {
		return 0, err
	}
	net := simnet.New(h, prm)
	var num, den float64
	for _, m := range sizes {
		progs := []simnet.Program{{simnet.Shuffle(m)}}
		res, err := net.Run(progs)
		if err != nil {
			return 0, err
		}
		num += float64(m) * res.Makespan
		den += float64(m) * float64(m)
	}
	if den == 0 {
		return 0, fmt.Errorf("calibrate: all sizes zero")
	}
	return num / den, nil
}
