package plancache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/topology"
)

// wireLine builds a LineData this cache's default configuration accepts.
func wireLine(t *testing.T, machine string, d int) LineData {
	t.Helper()
	prm, ok := model.Machines()[machine]
	if !ok {
		t.Fatalf("unknown machine %q", machine)
	}
	return LineData{
		Machine:   machine,
		Params:    prm,
		Topology:  fmt.Sprintf("hypercube-%d", d),
		D:         d,
		SweepLo:   0,
		SweepHi:   DefaultSweepHi,
		SweepStep: 1,
		Segments:  []SegmentData{{Partition: []int{d}, MinBlock: 0, MaxBlock: DefaultSweepHi}},
	}
}

func TestFetchHookFillsMissWithoutBuilding(t *testing.T) {
	var fetches atomic.Int64
	c := New(Config{
		Fetch: func(_ context.Context, machine, topo string) (*LineData, error) {
			fetches.Add(1)
			ld := wireLine(t, machine, 4)
			if ld.Topology != topo {
				t.Errorf("fetch hook asked for %q, expected hypercube-4", topo)
			}
			return &ld, nil
		},
	})
	p, err := c.Get("ipsc860", 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Part) != 1 || p.Part[0] != 4 {
		t.Fatalf("plan did not come from the imported line: partition %v", p.Part)
	}
	s := c.Stats()
	if fetches.Load() != 1 || s.PeerImports != 1 || s.Builds != 0 {
		t.Fatalf("fetches %d, imports %d, builds %d — want the hook to fill the miss",
			fetches.Load(), s.PeerImports, s.Builds)
	}
	// A resident line never consults the hook again.
	if _, err := c.Get("ipsc860", 4, 64); err != nil {
		t.Fatal(err)
	}
	if fetches.Load() != 1 {
		t.Fatal("hit consulted the fetch hook")
	}
}

func TestFetchFailureFallsBackToLocalBuild(t *testing.T) {
	c := New(Config{
		Fetch: func(context.Context, string, string) (*LineData, error) {
			return nil, errors.New("owner unreachable")
		},
	})
	if _, err := c.Get("ipsc860", 4, 32); err != nil {
		t.Fatalf("failed fetch was not recovered by a local build: %v", err)
	}
	s := c.Stats()
	if s.Builds != 1 || s.PeerImports != 0 {
		t.Fatalf("builds %d, imports %d — want exactly one fallback build", s.Builds, s.PeerImports)
	}
}

func TestFetchInvalidPayloadFallsBackToLocalBuild(t *testing.T) {
	c := New(Config{
		Fetch: func(_ context.Context, machine, _ string) (*LineData, error) {
			ld := wireLine(t, machine, 4)
			ld.Params.Lambda *= 2 // a peer running different constants
			return &ld, nil
		},
	})
	if _, err := c.Get("ipsc860", 4, 32); err != nil {
		t.Fatalf("invalid peer payload was not recovered by a local build: %v", err)
	}
	if s := c.Stats(); s.Builds != 1 || s.PeerImports != 0 {
		t.Fatalf("builds %d, imports %d — a stale peer line must not import", s.Builds, s.PeerImports)
	}
}

// TestCancelledFillDoesNotPoisonKey is the no-poison guarantee: a
// caller whose context ends mid-fill gets its context error, the
// abandoned fill is cancelled and retired, and the NEXT caller for the
// same key starts a fresh fill and succeeds.
func TestCancelledFillDoesNotPoisonKey(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	c := New(Config{
		Fetch: func(ctx context.Context, _, _ string) (*LineData, error) {
			if calls.Add(1) == 1 {
				close(release) // the first caller is now inside the fill
				<-ctx.Done()   // block until the abandoned flight is cancelled
				return nil, ctx.Err()
			}
			return nil, nil // decline: build locally
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.GetForCtx(ctx, "ipsc860", mustCube(t, 5), 32)
		errc <- err
	}()
	<-release
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller got %v, want context.Canceled", err)
	}

	// The key must not be poisoned: a fresh caller succeeds.
	done := make(chan error, 1)
	go func() {
		_, err := c.Get("ipsc860", 5, 32)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fresh caller after cancelled fill: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fresh caller hung — cancelled fill poisoned the key")
	}
	if s := c.Stats(); s.Builds != 1 {
		t.Fatalf("builds %d, want 1 (the fresh caller's)", s.Builds)
	}
}

// TestJoinerSurvivesInitiatorCancel: the initiating caller departs but
// a second waiter remains — the fill must keep running and answer the
// survivor.
func TestJoinerSurvivesInitiatorCancel(t *testing.T) {
	inFetch := make(chan struct{})
	release := make(chan struct{})
	c := New(Config{
		Fetch: func(ctx context.Context, _, _ string) (*LineData, error) {
			close(inFetch)
			select {
			case <-release:
				return nil, nil // decline: build locally
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})

	initiatorCtx, cancelInitiator := context.WithCancel(context.Background())
	initiatorErr := make(chan error, 1)
	go func() {
		_, err := c.GetForCtx(initiatorCtx, "ipsc860", mustCube(t, 5), 32)
		initiatorErr <- err
	}()
	<-inFetch

	joinerErr := make(chan error, 1)
	go func() {
		_, err := c.GetForCtx(context.Background(), "ipsc860", mustCube(t, 5), 32)
		joinerErr <- err
	}()
	// Give the joiner a moment to join the in-progress flight, then
	// abandon it from the initiator's side.
	time.Sleep(20 * time.Millisecond)
	cancelInitiator()
	if err := <-initiatorErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("initiator got %v, want context.Canceled", err)
	}
	close(release)
	if err := <-joinerErr; err != nil {
		t.Fatalf("joiner was killed by the initiator's cancel: %v", err)
	}
}

func TestShedBeyondBuildBound(t *testing.T) {
	c := New(Config{MaxConcurrentBuilds: 1})
	// Occupy the single build slot as a stuck build would.
	c.buildSem <- struct{}{}
	_, err := c.Get("ipsc860", 4, 32)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("miss beyond the build bound: %v, want ErrOverloaded", err)
	}
	if s := c.Stats(); s.Shed != 1 {
		t.Fatalf("shed counter %d, want 1", s.Shed)
	}
	// Slot frees: the same miss now builds.
	<-c.buildSem
	if _, err := c.Get("ipsc860", 4, 32); err != nil {
		t.Fatalf("miss after the slot freed: %v", err)
	}
}

// TestInvalidateWarmGetChurn exercises InvalidateWhere and WarmFor
// racing against Get traffic — run under -race this is the regression
// net for shard-lock discipline.
func TestInvalidateWarmGetChurn(t *testing.T) {
	c := New(Config{Shards: 2, CapacityPerShard: 2, SweepHi: 32})
	nets := []topology.Network{mustCube(t, 3), mustCube(t, 4), mustCube(t, 5)}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				net := nets[(i+w)%len(nets)]
				if _, err := c.GetFor("ipsc860", net, 16); err != nil {
					t.Errorf("GetFor under churn: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.WarmFor("ipsc860", nets[i%len(nets)]); err != nil {
				t.Errorf("WarmFor under churn: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			victim := nets[i%len(nets)].Name()
			c.InvalidateWhere(func(_, topo string) bool { return topo == victim })
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func mustCube(t *testing.T, d int) topology.Network {
	t.Helper()
	net, err := topology.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return net
}
