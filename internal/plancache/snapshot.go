package plancache

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/topology"
)

// SnapshotVersion is the wire-format version Snapshot writes and Restore
// requires. Version 1 keyed lines on (machine, d) with the hypercube
// assumed; version 2 keys them on (machine, topology), so a pre-bump
// snapshot must be rejected as stale rather than restored under the
// wrong key space.
const SnapshotVersion = 2

// SegmentData is the JSON form of one hull segment.
type SegmentData struct {
	Partition []int `json:"partition"`
	MinBlock  int   `json:"min_block"`
	MaxBlock  int   `json:"max_block"`
}

// LineData is the JSON form of one cache line, tagged with the machine
// parameters it was computed against so a restore into a cache with
// different constants rejects it as stale rather than serving wrong
// plans. It is both the snapshot element and the peer-serving wire
// format: a clustered replica answers GET /v1/peer/line with exactly
// this document, and the fetcher imports it through ImportLine under
// the same staleness rules a snapshot restore applies.
type LineData struct {
	Machine string       `json:"machine"`
	Params  model.Params `json:"params"`
	// Topology is the network registry spec the hull was enumerated for
	// ("hypercube-7", "torus-4x4x4", possibly carrying a fault digest);
	// D is its dimension count, kept for human readability.
	Topology  string        `json:"topology"`
	D         int           `json:"d"`
	SweepLo   int           `json:"sweep_lo"`
	SweepHi   int           `json:"sweep_hi"`
	SweepStep int           `json:"sweep_step"`
	Segments  []SegmentData `json:"segments"`
}

// Snapshot is the JSON envelope SnapshotTo writes, Restore reads, and
// the peer snapshot fan-out endpoint serves.
type Snapshot struct {
	Version int        `json:"version"`
	Lines   []LineData `json:"lines"`
}

// exportLocked converts a resident line to its wire form. The owning
// shard's mutex must be held.
func (c *Cache) exportLocked(ln *line) (LineData, bool) {
	prm, ok := c.cfg.Machines[ln.key.machine]
	if !ok {
		return LineData{}, false
	}
	sl := LineData{
		Machine:   ln.key.machine,
		Params:    prm,
		Topology:  ln.key.topo,
		D:         ln.net.NumDims(),
		SweepLo:   ln.sweepLo,
		SweepHi:   ln.sweepHi,
		SweepStep: ln.sweepStep,
	}
	for _, seg := range ln.table.Segments {
		sl.Segments = append(sl.Segments, SegmentData{
			Partition: append([]int(nil), seg.Part...),
			MinBlock:  seg.MinBlock,
			MaxBlock:  seg.MaxBlock,
		})
	}
	return sl, true
}

// Export collects every resident line as wire data, most recently used
// first. Lines built for degraded overlays (a fault digest in the
// topology name) are skipped when withDegraded is false: fault state is
// ephemeral runtime state, and a snapshot restore should come up
// planning for healthy fabrics, not resurrect last week's failures.
func (c *Cache) export(withDegraded bool) []LineData {
	var lines []LineData
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			ln := el.Value.(*line)
			if _, digest := topology.SplitSpec(ln.key.topo); digest != "" && !withDegraded {
				continue
			}
			if sl, ok := c.exportLocked(ln); ok {
				lines = append(lines, sl)
			}
		}
		sh.mu.Unlock()
	}
	return lines
}

// ExportLines returns every resident line as wire data, most recently
// used first, degraded-overlay lines included — the peer snapshot
// fan-out document. Unlike Snapshot, digest-keyed lines are kept: a
// replica joining a fleet mid-incident should warm the lines the fleet
// is actually serving.
func (c *Cache) ExportLines() []LineData {
	return c.export(true)
}

// ExportLine returns one resident line as wire data, bumping its LRU
// recency (a peer fetch is a use). ok is false when the line is not
// resident or its machine has left the registry.
func (c *Cache) ExportLine(machine, topo string) (LineData, bool) {
	key := lineKey{machine: machine, topo: topo}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.lines[key]
	if !ok {
		return LineData{}, false
	}
	sh.lru.MoveToFront(el)
	return c.exportLocked(el.Value.(*line))
}

// ImportLine validates one wire line against this cache's registry and
// sweep configuration and inserts it as resident. The staleness rules
// are those of Restore — unknown machine, changed parameters, or a
// mismatched sweep are errors, not silent acceptance — so a peer
// running different constants can never poison this cache.
func (c *Cache) ImportLine(sl LineData) error {
	prm, ok := c.cfg.Machines[sl.Machine]
	if !ok {
		return fmt.Errorf("plancache: import line for unknown machine %q", sl.Machine)
	}
	if prm != sl.Params {
		return fmt.Errorf("plancache: import line for %s/%s computed under different machine parameters",
			sl.Machine, sl.Topology)
	}
	if sl.SweepLo != 0 || sl.SweepHi != c.cfg.SweepHi || sl.SweepStep != c.cfg.SweepStep {
		return fmt.Errorf("plancache: import line for %s/%s swept [%d,%d] step %d, want [0,%d] step %d",
			sl.Machine, sl.Topology, sl.SweepLo, sl.SweepHi, sl.SweepStep, c.cfg.SweepHi, c.cfg.SweepStep)
	}
	ln, err := restoreLine(sl)
	if err != nil {
		return err
	}
	sh := c.shardFor(ln.key)
	sh.mu.Lock()
	c.insertLocked(sh, ln)
	sh.mu.Unlock()
	return nil
}

// Snapshot writes every resident non-degraded line as JSON, most
// recently used first. Counters are not serialized: a restored cache
// starts cold on stats but warm on content.
func (c *Cache) Snapshot(w io.Writer) error {
	snap := Snapshot{Version: SnapshotVersion, Lines: c.export(false)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Restore loads lines written by Snapshot into the cache. A snapshot
// from a different schema version — including the pre-topology version 1
// — is rejected outright as stale. Lines whose machine is unknown to
// this cache's registry, whose recorded parameters differ from the
// registry's (a recalibrated machine), or whose sweep does not match
// this cache's configured sweep (a line built at a different resolution
// or range would shadow the promised answers) are skipped as stale;
// malformed lines are an error. It returns how many lines were accepted
// and how many were skipped; when the snapshot holds more lines than the
// cache's capacity, accepted lines beyond it are LRU-evicted during the
// restore (Stats().Lines reports what stayed resident).
func (c *Cache) Restore(r io.Reader) (restored, skipped int, err error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return 0, 0, fmt.Errorf("plancache: decoding snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return 0, 0, fmt.Errorf("plancache: stale snapshot version %d (want %d; rebuild or delete the snapshot)",
			snap.Version, SnapshotVersion)
	}
	// Insert in reverse so the snapshot's MRU-first order is preserved
	// by the front-insertion LRU.
	for i := len(snap.Lines) - 1; i >= 0; i-- {
		sl := snap.Lines[i]
		prm, ok := c.cfg.Machines[sl.Machine]
		if !ok || prm != sl.Params {
			skipped++
			continue
		}
		if sl.SweepLo != 0 || sl.SweepHi != c.cfg.SweepHi || sl.SweepStep != c.cfg.SweepStep {
			skipped++
			continue
		}
		ln, err := restoreLine(sl)
		if err != nil {
			return restored, skipped, err
		}
		sh := c.shardFor(ln.key)
		sh.mu.Lock()
		c.insertLocked(sh, ln)
		sh.mu.Unlock()
		restored++
	}
	return restored, skipped, nil
}

// restoreLine validates and rebuilds one line.
func restoreLine(sl LineData) (*line, error) {
	net, err := ResolveTopology(sl.Topology)
	if err != nil {
		return nil, fmt.Errorf("plancache: snapshot line for machine %s: %w", sl.Machine, err)
	}
	k := net.NumDims()
	tbl := optimize.Table{Topo: net.Name(), D: k}
	prevMax := -1
	for _, seg := range sl.Segments {
		D := partition.Partition(append([]int(nil), seg.Partition...))
		if sum := D.Sum(); sum != k || (k > 0 && len(D) == 0) {
			return nil, fmt.Errorf("plancache: snapshot grouping %v invalid for %s", D, net.Name())
		}
		for _, di := range D {
			if di <= 0 {
				return nil, fmt.Errorf("plancache: snapshot grouping %v invalid for %s", D, net.Name())
			}
		}
		if seg.MinBlock > seg.MaxBlock || seg.MinBlock <= prevMax {
			return nil, fmt.Errorf("plancache: snapshot segment range [%d,%d] out of order",
				seg.MinBlock, seg.MaxBlock)
		}
		prevMax = seg.MaxBlock
		tbl.Segments = append(tbl.Segments, model.HullSegment{
			Part:     D,
			MinBlock: seg.MinBlock,
			MaxBlock: seg.MaxBlock,
		})
	}
	return &line{
		key:       lineKey{machine: sl.Machine, topo: net.Name()},
		net:       net,
		table:     tbl,
		sweepLo:   sl.SweepLo,
		sweepHi:   sl.SweepHi,
		sweepStep: sl.SweepStep,
	}, nil
}

// SnapshotFile writes the snapshot atomically: to a temp file in the
// target directory, then renamed over the destination, so a crash
// mid-write never truncates the previous snapshot.
func (c *Cache) SnapshotFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".plancache-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := c.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RestoreFile loads a snapshot from a file path.
func (c *Cache) RestoreFile(path string) (restored, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return c.Restore(f)
}
