package plancache

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/topology"
)

// SnapshotVersion is the wire-format version Snapshot writes and Restore
// requires. Version 1 keyed lines on (machine, d) with the hypercube
// assumed; version 2 keys them on (machine, topology), so a pre-bump
// snapshot must be rejected as stale rather than restored under the
// wrong key space.
const SnapshotVersion = 2

// snapSegment is the JSON form of one hull segment.
type snapSegment struct {
	Partition []int `json:"partition"`
	MinBlock  int   `json:"min_block"`
	MaxBlock  int   `json:"max_block"`
}

// snapLine is the JSON form of one cache line, tagged with the machine
// parameters it was computed against so a restore into a cache with
// different constants rejects it as stale rather than serving wrong
// plans.
type snapLine struct {
	Machine string       `json:"machine"`
	Params  model.Params `json:"params"`
	// Topology is the network registry spec the hull was enumerated for
	// ("hypercube-7", "torus-4x4x4"); D is its dimension count, kept for
	// human readability.
	Topology  string        `json:"topology"`
	D         int           `json:"d"`
	SweepLo   int           `json:"sweep_lo"`
	SweepHi   int           `json:"sweep_hi"`
	SweepStep int           `json:"sweep_step"`
	Segments  []snapSegment `json:"segments"`
}

// snapshot is the JSON envelope.
type snapshot struct {
	Version int        `json:"version"`
	Lines   []snapLine `json:"lines"`
}

// Snapshot writes every resident line as JSON, most recently used first.
// Counters are not serialized: a restored cache starts cold on stats but
// warm on content. Lines built for degraded overlays (a fault digest in
// the topology name) are skipped: fault state is ephemeral runtime
// state, and a restart should come up planning for healthy fabrics, not
// resurrect last week's failures.
func (c *Cache) Snapshot(w io.Writer) error {
	snap := snapshot{Version: SnapshotVersion}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			ln := el.Value.(*line)
			prm, ok := c.cfg.Machines[ln.key.machine]
			if !ok {
				continue
			}
			if _, digest := topology.SplitSpec(ln.key.topo); digest != "" {
				continue
			}
			sl := snapLine{
				Machine:   ln.key.machine,
				Params:    prm,
				Topology:  ln.key.topo,
				D:         ln.net.NumDims(),
				SweepLo:   ln.sweepLo,
				SweepHi:   ln.sweepHi,
				SweepStep: ln.sweepStep,
			}
			for _, seg := range ln.table.Segments {
				sl.Segments = append(sl.Segments, snapSegment{
					Partition: append([]int(nil), seg.Part...),
					MinBlock:  seg.MinBlock,
					MaxBlock:  seg.MaxBlock,
				})
			}
			snap.Lines = append(snap.Lines, sl)
		}
		sh.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Restore loads lines written by Snapshot into the cache. A snapshot
// from a different schema version — including the pre-topology version 1
// — is rejected outright as stale. Lines whose machine is unknown to
// this cache's registry, whose recorded parameters differ from the
// registry's (a recalibrated machine), or whose sweep does not match
// this cache's configured sweep (a line built at a different resolution
// or range would shadow the promised answers) are skipped as stale;
// malformed lines are an error. It returns how many lines were accepted
// and how many were skipped; when the snapshot holds more lines than the
// cache's capacity, accepted lines beyond it are LRU-evicted during the
// restore (Stats().Lines reports what stayed resident).
func (c *Cache) Restore(r io.Reader) (restored, skipped int, err error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return 0, 0, fmt.Errorf("plancache: decoding snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return 0, 0, fmt.Errorf("plancache: stale snapshot version %d (want %d; rebuild or delete the snapshot)",
			snap.Version, SnapshotVersion)
	}
	// Insert in reverse so the snapshot's MRU-first order is preserved
	// by the front-insertion LRU.
	for i := len(snap.Lines) - 1; i >= 0; i-- {
		sl := snap.Lines[i]
		prm, ok := c.cfg.Machines[sl.Machine]
		if !ok || prm != sl.Params {
			skipped++
			continue
		}
		if sl.SweepLo != 0 || sl.SweepHi != c.cfg.SweepHi || sl.SweepStep != c.cfg.SweepStep {
			skipped++
			continue
		}
		ln, err := restoreLine(sl)
		if err != nil {
			return restored, skipped, err
		}
		sh := c.shardFor(ln.key)
		sh.mu.Lock()
		c.insertLocked(sh, ln)
		sh.mu.Unlock()
		restored++
	}
	return restored, skipped, nil
}

// restoreLine validates and rebuilds one line.
func restoreLine(sl snapLine) (*line, error) {
	net, err := ResolveTopology(sl.Topology)
	if err != nil {
		return nil, fmt.Errorf("plancache: snapshot line for machine %s: %w", sl.Machine, err)
	}
	k := net.NumDims()
	tbl := optimize.Table{Topo: net.Name(), D: k}
	prevMax := -1
	for _, seg := range sl.Segments {
		D := partition.Partition(append([]int(nil), seg.Partition...))
		if sum := D.Sum(); sum != k || (k > 0 && len(D) == 0) {
			return nil, fmt.Errorf("plancache: snapshot grouping %v invalid for %s", D, net.Name())
		}
		for _, di := range D {
			if di <= 0 {
				return nil, fmt.Errorf("plancache: snapshot grouping %v invalid for %s", D, net.Name())
			}
		}
		if seg.MinBlock > seg.MaxBlock || seg.MinBlock <= prevMax {
			return nil, fmt.Errorf("plancache: snapshot segment range [%d,%d] out of order",
				seg.MinBlock, seg.MaxBlock)
		}
		prevMax = seg.MaxBlock
		tbl.Segments = append(tbl.Segments, model.HullSegment{
			Part:     D,
			MinBlock: seg.MinBlock,
			MaxBlock: seg.MaxBlock,
		})
	}
	return &line{
		key:       lineKey{machine: sl.Machine, topo: net.Name()},
		net:       net,
		table:     tbl,
		sweepLo:   sl.SweepLo,
		sweepHi:   sl.SweepHi,
		sweepStep: sl.SweepStep,
	}, nil
}

// SnapshotFile writes the snapshot atomically: to a temp file in the
// target directory, then renamed over the destination, so a crash
// mid-write never truncates the previous snapshot.
func (c *Cache) SnapshotFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".plancache-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := c.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RestoreFile loads a snapshot from a file path.
func (c *Cache) RestoreFile(path string) (restored, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return c.Restore(f)
}
