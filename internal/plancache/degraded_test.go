package plancache

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/topology"
)

func overlayPC(t *testing.T, spec string, fs topology.FaultSet) *topology.Degraded {
	t.Helper()
	d, err := topology.Overlay(topology.MustParseSpec(spec), fs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// A degraded overlay gets its own cache line: the health digest in its
// Name() separates it from the bare fabric's line, and both answers
// reflect their own network — the degraded one costs more.
func TestDegradedLineKeyedSeparately(t *testing.T) {
	c := New(Config{SweepHi: 64})
	bare, err := c.GetOn("ipsc860", "torus-4x4", 32)
	if err != nil {
		t.Fatal(err)
	}
	slow := overlayPC(t, "torus-4x4", topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 4}},
	})
	deg, err := c.GetFor("ipsc860", slow, 32)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Topo == bare.Topo {
		t.Fatalf("degraded plan reused the bare topology key %q", bare.Topo)
	}
	if !strings.Contains(deg.Topo, "sl=0-1:4") {
		t.Fatalf("degraded plan key %q lacks the fault digest", deg.Topo)
	}
	if deg.TimeMicro <= bare.TimeMicro {
		t.Fatalf("degraded plan %v µs not above healthy %v µs", deg.TimeMicro, bare.TimeMicro)
	}
	if st := c.Stats(); st.Lines != 2 {
		t.Fatalf("resident lines = %d, want 2 (bare + degraded)", st.Lines)
	}
	// A zero-fault overlay hits the bare line: same key, no third build.
	clean := overlayPC(t, "torus-4x4", topology.FaultSet{})
	same, err := c.GetFor("ipsc860", clean, 32)
	if err != nil {
		t.Fatal(err)
	}
	if same.Topo != bare.Topo || same.TimeMicro != bare.TimeMicro {
		t.Fatalf("zero-fault overlay answered (%q, %v), want the bare line (%q, %v)",
			same.Topo, same.TimeMicro, bare.Topo, bare.TimeMicro)
	}
	if st := c.Stats(); st.Lines != 2 {
		t.Fatalf("zero-fault overlay built a third line (lines = %d)", st.Lines)
	}
}

// WarmFor builds a line for an already-constructed overlay, and
// InvalidateWhere retires exactly the matching lines.
func TestWarmForAndInvalidateWhere(t *testing.T) {
	c := New(Config{SweepHi: 64})
	dead := overlayPC(t, "torus-4x4", topology.FaultSet{
		DeadLinks: []topology.Link{{A: 0, B: 1}},
	})
	built, err := c.WarmFor("ipsc860", dead)
	if err != nil {
		t.Fatal(err)
	}
	if !built {
		t.Fatal("WarmFor on a cold cache did not build")
	}
	if built, err = c.WarmFor("ipsc860", dead); err != nil || built {
		t.Fatalf("second WarmFor = (%v, %v), want resident hit", built, err)
	}
	if _, err := c.WarmOn("ipsc860", "torus-4x4"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Lines != 2 {
		t.Fatalf("resident lines = %d, want 2", st.Lines)
	}
	// Retire only the fault-digest line; the bare line survives.
	n := c.InvalidateWhere(func(machine, topo string) bool {
		_, digest := topology.SplitSpec(topo)
		return digest != ""
	})
	if n != 1 {
		t.Fatalf("InvalidateWhere removed %d lines, want 1", n)
	}
	if st := c.Stats(); st.Lines != 1 {
		t.Fatalf("after invalidation lines = %d, want 1", st.Lines)
	}
	if _, err := c.GetOn("ipsc860", "torus-4x4", 16); err != nil {
		t.Fatalf("bare line gone after degraded invalidation: %v", err)
	}
	hitsBefore := c.Stats().Builds
	if built, err = c.WarmFor("ipsc860", dead); err != nil || !built {
		t.Fatalf("WarmFor after invalidation = (%v, %v), want a rebuild", built, err)
	}
	if c.Stats().Builds != hitsBefore+1 {
		t.Fatal("invalidated line was not rebuilt")
	}
	if c.InvalidateWhere(func(string, string) bool { return false }) != 0 {
		t.Fatal("never-matching predicate removed lines")
	}
}

// Snapshots hold only healthy-fabric lines: degraded overlays are
// runtime state, never restart-warm content.
func TestSnapshotSkipsDegradedLines(t *testing.T) {
	c := New(Config{SweepHi: 64})
	if _, err := c.WarmOn("ipsc860", "torus-4x4"); err != nil {
		t.Fatal(err)
	}
	slow := overlayPC(t, "torus-4x4", topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 2}},
	})
	if _, err := c.WarmFor("ipsc860", slow); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "sl=0-1") {
		t.Fatal("snapshot serialized a degraded line")
	}
	fresh := New(Config{SweepHi: 64})
	restored, skipped, err := fresh.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 || skipped != 0 {
		t.Fatalf("restore = (%d restored, %d skipped), want (1, 0)", restored, skipped)
	}
	if st := fresh.Stats(); st.Lines != 1 {
		t.Fatalf("restored cache holds %d lines, want only the bare fabric", st.Lines)
	}
}
