package plancache

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/optimize"
)

// A version-1 snapshot (pre-topology keys) must be rejected as stale —
// its lines were keyed on (machine, d) with the hypercube assumed, so
// restoring them under the topology-keyed schema could mis-serve.
func TestStaleV1SnapshotRejected(t *testing.T) {
	v1 := `{
  "version": 1,
  "lines": [
    {
      "machine": "hypo",
      "params": {"Lambda": 200, "Tau": 1, "Delta": 20, "Rho": 1},
      "d": 3,
      "sweep_lo": 0,
      "sweep_hi": 512,
      "sweep_step": 1,
      "segments": [{"partition": [3], "min_block": 0, "max_block": 512}]
    }
  ]
}`
	c := New(Config{})
	restored, skipped, err := c.Restore(strings.NewReader(v1))
	if err == nil {
		t.Fatalf("v1 snapshot restored without error (%d restored, %d skipped)", restored, skipped)
	}
	if !strings.Contains(err.Error(), "stale snapshot version 1") {
		t.Errorf("error should identify the stale version: %v", err)
	}
	if s := c.Stats(); s.Lines != 0 {
		t.Errorf("stale snapshot left %d resident lines", s.Lines)
	}
}

// Torus lines must survive a snapshot/restore cycle: the restored cache
// answers identically with zero builds.
func TestTorusLineSnapshotRoundTrip(t *testing.T) {
	cfg := Config{SweepHi: 64, NewOptimizer: optimize.New}
	src := New(cfg)
	want, err := src.GetOn("hypo", "torus-3x3", 24)
	if err != nil {
		t.Fatal(err)
	}
	if want.Topo != "torus-3x3" || want.D != 2 {
		t.Fatalf("unexpected plan: %+v", want)
	}
	if _, err := src.Get("hypo", 4, 24); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(cfg)
	restored, skipped, err := dst.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil || restored != 2 || skipped != 0 {
		t.Fatalf("restore: %d restored, %d skipped, %v", restored, skipped, err)
	}
	got, err := dst.GetOn("hypo", "torus-3x3", 24)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Part.Equal(want.Part) || got.TimeMicro != want.TimeMicro || got.Topo != want.Topo {
		t.Errorf("restored answer differs: %+v vs %+v", got, want)
	}
	if s := dst.Stats(); s.Builds != 0 {
		t.Errorf("restored cache ran %d builds", s.Builds)
	}
}

// The torus answer must be the optimizer's own winner, and hits must
// bypass the optimizer entirely.
func TestTorusLineMatchesOptimizerAndHitsBypass(t *testing.T) {
	prm := model.Hypothetical()
	opt := optimize.New(prm)
	c := New(Config{SweepHi: 64})
	topoName := "torus-4x4"

	p, err := c.GetOn("hypo", topoName, 40)
	if err != nil {
		t.Fatal(err)
	}
	net, err := ResolveTopology(topoName)
	if err != nil {
		t.Fatal(err)
	}
	best, err := opt.BestOn(net, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Part.Equal(best.Part) {
		t.Errorf("cache served %v, optimizer wants %v", p.Part, best.Part)
	}
	if p.TimeMicro != best.TimeMicro {
		t.Errorf("cache priced %v, optimizer %v", p.TimeMicro, best.TimeMicro)
	}

	before := c.Stats()
	for m := 0; m <= 64; m++ {
		if _, err := c.GetOn("hypo", topoName, m); err != nil {
			t.Fatal(err)
		}
	}
	after := c.Stats()
	if after.Builds != before.Builds {
		t.Errorf("hits triggered %d extra builds", after.Builds-before.Builds)
	}
	if after.Hits-before.Hits != 65 {
		t.Errorf("expected 65 hits, got %d", after.Hits-before.Hits)
	}

	// Distinct topologies must be distinct lines even at equal node count.
	if _, err := c.GetOn("hypo", "hypercube-4", 40); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Lines != 2 {
		t.Errorf("expected 2 resident lines (torus-4x4, hypercube-4), got %d", s.Lines)
	}
}

// Bad topology specs must surface as request-validation errors, not
// build failures (the service maps them to 400 vs 500).
func TestBadTopologySpecIsRequestError(t *testing.T) {
	c := New(Config{})
	_, err := c.GetOn("hypo", "torus-0x4", 10)
	if err == nil {
		t.Fatal("bad spec must fail")
	}
	var be *BuildError
	if errors.As(err, &be) {
		t.Errorf("bad spec classified as a build failure: %v", err)
	}
	if _, err := c.GetOn("hypo", "klein-bottle-4", 10); err == nil {
		t.Error("unknown shape must fail")
	}
}

// Unequal-radix topologies with many dimensions enumerate 2^(k−1)
// compositions per Best call; the serving tier must refuse them at
// request validation rather than scheduling an exponential hull build.
func TestMixedRadixDimensionBound(t *testing.T) {
	c := New(Config{})
	// 19 unequal-radix dims, 786432 nodes — inside the node bound, but
	// 2^18 compositions per sweep point.
	spec := "torus-3x2x2x2x2x2x2x2x2x2x2x2x2x2x2x2x2x2x2"
	_, err := c.GetOn("hypo", spec, 1)
	if err == nil {
		t.Fatal("oversized mixed-radix topology must be rejected")
	}
	var be *BuildError
	if errors.As(err, &be) {
		t.Errorf("mixed-radix bound classified as a build failure: %v", err)
	}
	// A uniform shape of the same dimension count stays servable (p(k)
	// candidates, not 2^(k−1)).
	if _, err := c.GetOn("hypo", "hypercube-19", 1); err != nil {
		t.Errorf("uniform 19-dim shape must serve: %v", err)
	}
}
