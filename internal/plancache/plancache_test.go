package plancache

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/optimize"
)

func TestGetMatchesOptimizerBest(t *testing.T) {
	c := New(Config{})
	ref := optimize.New(model.IPSC860())
	for _, m := range []int{0, 1, 16, 40, 159, 160, 161, 400, 512} {
		got, err := c.Get("ipsc860", 7, m)
		if err != nil {
			t.Fatalf("Get(ipsc860,7,%d): %v", m, err)
		}
		want, err := ref.Best(7, m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Part.Equal(want.Part) {
			t.Errorf("m=%d: cache partition %v, optimizer %v", m, got.Part, want.Part)
		}
		if got.TimeMicro != want.TimeMicro {
			t.Errorf("m=%d: cache time %v, optimizer %v", m, got.TimeMicro, want.TimeMicro)
		}
		if !got.InRange {
			t.Errorf("m=%d: expected in-range resolution", m)
		}
		if m < got.SegMin || m > got.SegMax {
			t.Errorf("m=%d outside reported segment [%d,%d]", m, got.SegMin, got.SegMax)
		}
	}
}

func TestBlockAxisCollapsesToOneLine(t *testing.T) {
	// Capture the cache's optimizer so the bypass claim is checked at
	// the source: hits must not add enumerations.
	var opt *optimize.Optimizer
	c := New(Config{NewOptimizer: func(p model.Params) *optimize.Optimizer {
		opt = optimize.New(p)
		return opt
	}})
	for m := 0; m <= 512; m += 3 {
		if _, err := c.Get("ipsc860", 6, m); err != nil {
			t.Fatal(err)
		}
	}
	evalsAfterBuild := opt.Evaluations()
	if evalsAfterBuild != 513 {
		t.Errorf("line build ran %d enumerations, want 513 (one per swept m)", evalsAfterBuild)
	}
	for m := 0; m <= 512; m += 7 {
		if _, err := c.Get("ipsc860", 6, m); err != nil {
			t.Fatal(err)
		}
	}
	if got := opt.Evaluations(); got != evalsAfterBuild {
		t.Errorf("cache hits drove the optimizer: evaluations %d → %d", evalsAfterBuild, got)
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one line build serves every m)", s.Misses)
	}
	if s.Builds != 1 || s.Lines != 1 {
		t.Errorf("builds=%d lines=%d, want 1/1", s.Builds, s.Lines)
	}
	if s.Hits < 100 {
		t.Errorf("hits = %d, want the rest of the sweep", s.Hits)
	}
	if s.Segments == 0 || s.Segments > 64 {
		t.Errorf("segments = %d, want a small hull", s.Segments)
	}
}

func TestOutOfRangeClampsToNearestSegment(t *testing.T) {
	c := New(Config{SweepHi: 200})
	p, err := c.Get("ipsc860", 7, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.InRange {
		t.Error("m=1e6 reported in-range for a 200-byte sweep")
	}
	hull, err := c.Hull("ipsc860", 7)
	if err != nil {
		t.Fatal(err)
	}
	last := hull.Segments[len(hull.Segments)-1]
	if !p.Part.Equal(last.Part) {
		t.Errorf("clamp answered %v, want last segment %v", p.Part, last.Part)
	}
}

func TestUnknownMachineListsValidSet(t *testing.T) {
	c := New(Config{})
	_, err := c.Get("cray", 6, 40)
	if err == nil {
		t.Fatal("expected error for unknown machine")
	}
	if got := err.Error(); !bytes.Contains([]byte(got), []byte("ipsc860")) {
		t.Errorf("error %q does not list valid machines", got)
	}
}

func TestAliasResolvesToCanonicalLine(t *testing.T) {
	c := New(Config{})
	if _, err := c.Get("ipsc", 6, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("ipsc860", 6, 80); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Lines != 1 {
		t.Errorf("alias created a second line: %d resident", s.Lines)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Shards: 1, CapacityPerShard: 2})
	for _, d := range []int{4, 5, 6} {
		if _, err := c.Get("hypo", d, 40); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Lines != 2 {
		t.Errorf("lines = %d, want capacity 2", s.Lines)
	}
	// d=4 was least recently used; touching it again must rebuild.
	if _, err := c.Get("hypo", 4, 40); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Builds != 4 {
		t.Errorf("builds = %d, want 4 (evicted line rebuilt)", s.Builds)
	}
}

func TestSingleflightCollapsesConcurrentBuilds(t *testing.T) {
	c := New(Config{})
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Get("ncube2", 7, 40+i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Builds != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", s.Builds)
	}
	if s := c.Stats(); s.Inflight != 0 {
		t.Errorf("inflight gauge = %d after quiescence", s.Inflight)
	}
}

func TestSnapshotRestoreWarm(t *testing.T) {
	c := New(Config{})
	for _, d := range []int{5, 6, 7} {
		if _, err := c.Get("ipsc860", d, 40); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	warm := New(Config{})
	restored, skipped, err := warm.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 || skipped != 0 {
		t.Fatalf("restored %d skipped %d, want 3/0", restored, skipped)
	}
	for _, d := range []int{5, 6, 7} {
		got, err := warm.Get("ipsc860", d, 40)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Get("ipsc860", d, 40)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Part.Equal(want.Part) || got.TimeMicro != want.TimeMicro {
			t.Errorf("d=%d: restored plan %v/%v, want %v/%v",
				d, got.Part, got.TimeMicro, want.Part, want.TimeMicro)
		}
	}
	if s := warm.Stats(); s.Builds != 0 || s.Misses != 0 {
		t.Errorf("restored cache ran builds=%d misses=%d, want 0/0 (warm)", s.Builds, s.Misses)
	}
}

func TestRestoreSkipsStaleParams(t *testing.T) {
	c := New(Config{})
	if _, err := c.Get("ipsc860", 6, 40); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// A registry whose iPSC constants changed must reject the line.
	changed := model.IPSC860()
	changed.Lambda++
	warm := New(Config{Machines: map[string]model.Params{"ipsc860": changed}})
	restored, skipped, err := warm.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || skipped != 1 {
		t.Errorf("restored %d skipped %d, want 0/1 for recalibrated machine", restored, skipped)
	}
}

func TestRestoreSkipsMismatchedSweep(t *testing.T) {
	coarse := New(Config{SweepHi: 128, SweepStep: 8})
	if _, err := coarse.Get("ipsc860", 6, 40); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := coarse.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// A cache promising step-1 answers over [0,512] must not adopt a
	// line built at step 8 over [0,128].
	fine := New(Config{})
	restored, skipped, err := fine.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || skipped != 1 {
		t.Errorf("restored %d skipped %d, want 0/1 for mismatched sweep", restored, skipped)
	}
}

func TestRestoreRejectsMalformedSnapshot(t *testing.T) {
	warm := New(Config{})
	if _, _, err := warm.Restore(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("expected error for truncated JSON")
	}
	bad := []byte(`{"version":1,"lines":[{"machine":"ipsc860","params":` +
		mustParamsJSON(t) + `,"d":6,"sweep_lo":0,"sweep_hi":512,"sweep_step":1,` +
		`"segments":[{"partition":[9,9],"min_block":0,"max_block":10}]}]}`)
	if _, _, err := warm.Restore(bytes.NewReader(bad)); err == nil {
		t.Error("expected error for invalid stored partition")
	}
}

func mustParamsJSON(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	c := New(Config{})
	if _, err := c.Get("ipsc860", 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Lines []struct {
			Params interface{} `json:"params"`
		} `json:"lines"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(snap.Lines[0].Params)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestWarm(t *testing.T) {
	c := New(Config{})
	built, err := c.Warm("hypo", 6)
	if err != nil {
		t.Fatal(err)
	}
	if !built {
		t.Error("first Warm did not build")
	}
	built, err = c.Warm("hypo", 6)
	if err != nil {
		t.Fatal(err)
	}
	if built {
		t.Error("second Warm rebuilt a resident line")
	}
	if _, err := c.Warm("hypo", -1); err == nil {
		t.Error("expected error for negative dimension")
	}
}

func TestZeroDimension(t *testing.T) {
	c := New(Config{})
	p, err := c.Get("hypo", 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Part) != 0 || p.TimeMicro != 0 || len(p.Phases) != 0 {
		t.Errorf("d=0 plan = %+v, want empty partition and zero time", p)
	}
}
