// Package plancache is a sharded, concurrency-safe cache of optimal
// exchange plans keyed by (machine, dimension, block size) — the serving
// tier the paper's §6 observation calls for: the partition enumeration
// "needs to be done only once and the optimal combination stored for
// repeated future use".
//
// The cache does not store one entry per block size. A cache line holds
// the hull-of-optimality table for one (machine, d) pair — built once via
// optimize.BuildTable — and every block size resolves through
// Table.LookupSegment to one of its O(hull) segments, so millions of
// distinct m values collapse onto a handful of cached partitions. The
// per-request cost for a resident line is a binary search plus the
// closed-form time for the exact m asked.
//
// Concurrency: lines live in fixed shards (mutex + LRU list each); a
// missing line is built exactly once per cache — concurrent requests for
// the same (machine, d) wait on a single in-flight build, and the build's
// Best sweeps ride optimize.Optimizer's own singleflight underneath.
// Capacity is bounded per shard with least-recently-used eviction, and
// hit/miss/evict/inflight counters expose the cache's behaviour to the
// service layer's /metrics.
//
// Snapshot/Restore serialize resident lines as JSON, tagged with the
// machine parameters they were computed for, so a restarted daemon
// answers from a warm cache without re-running a single enumeration.
package plancache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/topology"
)

// DefaultSweepHi is the upper block-size bound of the hull sweep a line
// is built over. Queries above it clamp to the last hull segment, which
// for every machine in the registry has converged to the asymptotically
// optimal partition well before this bound.
const DefaultSweepHi = 512

// Config parameterizes a Cache. The zero value is usable: all machines
// from model.Machines, 8 shards of 64 lines, analytic costing, a
// [0, DefaultSweepHi] step-1 sweep.
type Config struct {
	// Machines is the name → parameters registry requests resolve
	// against. Nil means model.Machines().
	Machines map[string]model.Params
	// Shards is the number of independent lock domains (default 8).
	Shards int
	// CapacityPerShard bounds resident lines per shard; the least
	// recently used line is evicted beyond it (default 64).
	CapacityPerShard int
	// SweepHi and SweepStep control the hull sweep a line is built over:
	// block sizes [0, SweepHi] in steps of SweepStep (defaults
	// DefaultSweepHi and 1). Step 1 makes a resident line's answer exact
	// for every in-range m, not just the swept grid.
	SweepHi   int
	SweepStep int
	// NewOptimizer builds the per-machine optimizer (default
	// optimize.New, the analytic backend).
	NewOptimizer func(model.Params) *optimize.Optimizer
	// OptWorkers is passed to each optimizer's SetWorkers: the candidate-
	// costing worker-pool size, clamped to GOMAXPROCS. Zero keeps the
	// optimizer's own default.
	OptWorkers int
	// ReplayWorkers is passed to each optimizer's SetReplayShards: the
	// event-engine shard count a simulated replay may split each
	// link-disjoint phase across. Sharded replays are bit-identical to
	// serial ones, so this only affects build latency, never answers.
	// Zero or one keeps replays serial.
	ReplayWorkers int
	// Fetch, when non-nil, is consulted inside the per-key singleflight
	// before a missing line is built locally — the cluster peer-fetch
	// hook. It may return (nil, nil) to decline (this replica owns the
	// key, or no peers are configured), a validated-importable LineData
	// on success, or an error after its own deadline/retry budget; any
	// error or invalid payload falls back to the local build, so a dead
	// or slow peer can never fail a request, only make it cost a build.
	Fetch func(ctx context.Context, machine, topo string) (*LineData, error)
	// MaxConcurrentBuilds bounds how many local hull builds may run at
	// once. Beyond the bound a miss is shed with ErrOverloaded instead
	// of queueing unboundedly (the service layer maps it to 503 +
	// Retry-After). Zero means unbounded — the pre-cluster behaviour.
	MaxConcurrentBuilds int
}

func (c Config) withDefaults() Config {
	if c.Machines == nil {
		c.Machines = model.Machines()
	} else {
		// Snapshot the caller's map: the cache reads it unlocked from
		// every shard, so later caller mutation must not be visible.
		reg := make(map[string]model.Params, len(c.Machines))
		for name, p := range c.Machines {
			reg[name] = p
		}
		c.Machines = reg
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.CapacityPerShard <= 0 {
		c.CapacityPerShard = 64
	}
	if c.SweepHi <= 0 {
		c.SweepHi = DefaultSweepHi
	}
	if c.SweepStep <= 0 {
		c.SweepStep = 1
	}
	if c.NewOptimizer == nil {
		c.NewOptimizer = optimize.New
	}
	return c
}

// Plan is one served answer: the optimal partition for (Machine,
// Topology, Block) together with its modeled time and per-phase
// breakdown, plus the hull segment the block size resolved through.
type Plan struct {
	Machine string
	// Topo is the topology registry name the plan answers for; D is its
	// dimension count (the cube dimension on a hypercube).
	Topo      string
	D         int
	Block     int
	Part      partition.Partition
	TimeMicro float64
	Phases    []model.PhaseBreakdown
	// SegMin and SegMax bound the hull segment that answered: every
	// block size in [SegMin, SegMax] shares this partition.
	SegMin, SegMax int
	// InRange reports whether Block lay inside the answering segment;
	// false means the nearest segment answered — for blocks outside the
	// line's sweep (the clamping extrapolation, exact beyond the hull's
	// convergence) or, on a coarse-step sweep (SweepStep > 1), for
	// blocks falling in a gap between swept grid points.
	InRange bool
}

// Stats is a point-in-time counter snapshot. The JSON names are part of
// the service's /metrics wire format.
type Stats struct {
	// Hits counts requests answered from a resident line.
	Hits int64 `json:"hits"`
	// Misses counts requests that had to build (or wait for) a line.
	Misses int64 `json:"misses"`
	// Evictions counts lines dropped by the per-shard LRU bound.
	Evictions int64 `json:"evictions"`
	// Inflight is the number of line builds running right now.
	Inflight int64 `json:"inflight"`
	// Builds counts completed line builds (restores not included).
	Builds int64 `json:"builds"`
	// PeerImports counts misses filled by the Fetch hook (a peer line
	// imported instead of built locally).
	PeerImports int64 `json:"peer_imports"`
	// Shed counts misses refused with ErrOverloaded because the
	// concurrent-build bound was reached.
	Shed int64 `json:"shed"`
	// Lines and Segments are the resident totals.
	Lines    int `json:"lines"`
	Segments int `json:"segments"`
}

// lineKey identifies one cache line: the machine's parameter set and the
// network shape the hull was enumerated for.
type lineKey struct {
	machine string
	topo    string
}

// line is one resident hull table.
type line struct {
	key              lineKey
	net              topology.Network
	table            optimize.Table
	sweepLo, sweepHi int
	sweepStep        int
}

// flight is one in-progress line fill (peer fetch, then local build);
// latecomers join it and wait on done. The fill runs in its own
// goroutine under its own context: a joiner whose request context ends
// departs immediately without disturbing the others, and only when the
// LAST waiter departs is the fill's context cancelled — so one
// disconnected client aborts nothing for anyone else, a fully
// abandoned fill stops at its next checkpoint, and a fill that
// completes anyway still inserts its line for future callers.
type flight struct {
	done    chan struct{}
	line    *line
	err     error
	built   bool // a local build ran (as opposed to a peer import)
	waiters atomic.Int64
	cancel  context.CancelFunc
}

type shard struct {
	mu     sync.Mutex
	lines  map[lineKey]*list.Element // value: *line
	lru    *list.List                // front = most recent
	flight map[lineKey]*flight
}

// Cache is the sharded plan cache. Safe for concurrent use.
type Cache struct {
	cfg    Config
	shards []*shard

	// buildSem bounds concurrent local hull builds (nil = unbounded).
	buildSem chan struct{}

	optMu sync.Mutex
	opts  map[string]*optimize.Optimizer

	hits, misses, evictions, inflight, builds atomic.Int64
	peerImports, shed                         atomic.Int64
}

// New returns a cache with the given configuration (zero value ok).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, opts: make(map[string]*optimize.Optimizer)}
	if cfg.MaxConcurrentBuilds > 0 {
		c.buildSem = make(chan struct{}, cfg.MaxConcurrentBuilds)
	}
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = &shard{
			lines:  make(map[lineKey]*list.Element),
			lru:    list.New(),
			flight: make(map[lineKey]*flight),
		}
	}
	return c
}

// Machines returns a copy of the registry the cache resolves machine
// names against; mutating it does not affect the cache.
func (c *Cache) Machines() map[string]model.Params {
	out := make(map[string]model.Params, len(c.cfg.Machines))
	for name, p := range c.cfg.Machines {
		out[name] = p
	}
	return out
}

// Resolve canonicalizes a machine name against the cache's registry: an
// exact registry key wins, otherwise the global alias/case rules
// (model.CanonicalName) are applied and the canonical spelling is looked
// up. The service layer resolves every request through this, so a cache
// built over a custom registry never silently falls back to the built-in
// constants.
func (c *Cache) Resolve(machine string) (string, model.Params, error) {
	return c.resolve(machine)
}

func (c *Cache) resolve(machine string) (string, model.Params, error) {
	if p, ok := c.cfg.Machines[machine]; ok {
		return machine, p, nil
	}
	if canon, err := model.CanonicalName(machine); err == nil {
		if p, ok := c.cfg.Machines[canon]; ok {
			return canon, p, nil
		}
	}
	// List this cache's registry, not the global one: a custom-registry
	// cache serves exactly these names.
	names := make([]string, 0, len(c.cfg.Machines))
	for name := range c.cfg.Machines {
		names = append(names, name)
	}
	sort.Strings(names)
	return "", model.Params{}, fmt.Errorf("unknown machine %q (valid: %s)",
		machine, strings.Join(names, ", "))
}

func (c *Cache) shardFor(key lineKey) *shard {
	h := fnv.New32a()
	h.Write([]byte(key.machine))
	h.Write([]byte{0})
	h.Write([]byte(key.topo))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// MaxTopologyNodes bounds the networks a cache will build hulls for —
// the optimizer's own enumeration limit, enforced here at request
// validation time so an oversized topology is a caller error, not a
// build failure.
const MaxTopologyNodes = 1 << 20

// ResolveTopology validates a topology registry spec for serving:
// parse errors and oversized networks come back as request-validation
// errors (the service layer maps them to 400).
func ResolveTopology(spec string) (topology.Network, error) {
	net, err := topology.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := checkServable(net); err != nil {
		return nil, err
	}
	return net, nil
}

// MaxMixedRadixDims bounds unequal-radix topologies at request
// validation: their optimizer enumeration is over 2^(k−1) ordered
// compositions, re-run for each of the ~SweepHi block sizes of a hull
// build, so the node-count bound alone would let one request schedule
// an exponential amount of work. 12 dimensions cap a build at
// 2^11 · sweep candidates. Uniform-radix shapes (hypercubes, square
// tori) enumerate only p(k) partitions and are not restricted.
const MaxMixedRadixDims = 12

// checkServable enforces the enumeration-cost bounds on every request
// path — including the dimension-based Get, which never goes through a
// spec string — so an oversized topology is always a caller error,
// never a BuildError-classified (500-mapped) hull failure.
func checkServable(net topology.Network) error {
	if net.Nodes() > MaxTopologyNodes {
		return fmt.Errorf("plancache: %s exceeds the serving limit of %d nodes",
			net.Name(), MaxTopologyNodes)
	}
	if _, ok := net.(*topology.Hypercube); ok {
		return nil // uniform radix 2 by construction; keep the hot Get allocation-free
	}
	dims := net.Dims()
	uniform := true
	for _, r := range dims {
		if r != dims[0] {
			uniform = false
			break
		}
	}
	if !uniform && len(dims) > MaxMixedRadixDims {
		return fmt.Errorf("plancache: %s has %d unequal-radix dimensions, over the serving limit of %d",
			net.Name(), len(dims), MaxMixedRadixDims)
	}
	return nil
}

// hypercubeSpec names the d-cube line the dimension-based API uses.
func hypercubeSpec(d int) string { return fmt.Sprintf("hypercube-%d", d) }

// optimizer returns (creating once) the per-machine optimizer.
func (c *Cache) optimizer(name string, p model.Params) *optimize.Optimizer {
	c.optMu.Lock()
	defer c.optMu.Unlock()
	if o, ok := c.opts[name]; ok {
		return o
	}
	o := c.cfg.NewOptimizer(p)
	if c.cfg.OptWorkers > 0 {
		o.SetWorkers(c.cfg.OptWorkers)
	}
	if c.cfg.ReplayWorkers > 1 {
		o.SetReplayShards(c.cfg.ReplayWorkers)
	}
	c.opts[name] = o
	return o
}

// OptimizerStats aggregates the enumeration counters — evaluations,
// evaluated/pruned candidates, memo hits/misses — across every
// per-machine optimizer the cache has created. The service layer exposes
// the sum on /metrics next to the cache counters.
func (c *Cache) OptimizerStats() optimize.Stats {
	c.optMu.Lock()
	defer c.optMu.Unlock()
	var sum optimize.Stats
	for _, o := range c.opts {
		sum.Add(o.Stats())
	}
	return sum
}

// Get answers one (machine, d, m) hypercube query with the full plan
// detail. This is the serving hot path: the shared hypercube instance
// resolves without parsing or allocation.
func (c *Cache) Get(machine string, d, m int) (Plan, error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return Plan{}, err
	}
	net, err := topology.New(d)
	if err != nil {
		return Plan{}, err
	}
	return c.getOn(context.Background(), name, prm, net, m)
}

// GetOn answers one (machine, topology, m) query with the full plan
// detail; topo is a topology registry spec such as "torus-4x4x4".
func (c *Cache) GetOn(machine, topo string, m int) (Plan, error) {
	net, err := ResolveTopology(topo)
	if err != nil {
		return Plan{}, err
	}
	return c.GetFor(machine, net, m)
}

// GetFor is GetOn with an already-resolved topology — the form the
// service layer uses so a request's spec is parsed exactly once.
func (c *Cache) GetFor(machine string, net topology.Network, m int) (Plan, error) {
	return c.GetForCtx(context.Background(), machine, net, m)
}

// GetForCtx is GetFor bounded by a request context: when ctx ends the
// caller returns ctx.Err() immediately while any in-flight line fill it
// initiated or joined continues for its remaining waiters (and is
// cancelled only when fully abandoned). The serving tier passes each
// request's context here so a disconnected client stops paying for a
// hull build it will never read.
func (c *Cache) GetForCtx(ctx context.Context, machine string, net topology.Network, m int) (Plan, error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return Plan{}, err
	}
	return c.getOn(ctx, name, prm, net, m)
}

func (c *Cache) getOn(ctx context.Context, name string, prm model.Params, net topology.Network, m int) (Plan, error) {
	if err := checkServable(net); err != nil {
		return Plan{}, err
	}
	if m < 0 {
		return Plan{}, fmt.Errorf("plancache: negative block size %d", m)
	}
	ln, _, err := c.lineFor(ctx, name, prm, net)
	if err != nil {
		return Plan{}, err
	}
	return c.answer(name, prm, ln, m)
}

// Lookup is the fast path: the optimal partition for (machine, d, m) on
// a d-cube with no per-request breakdown. The returned slice is shared
// with the cache line and must be treated as read-only.
func (c *Cache) Lookup(machine string, d, m int) (partition.Partition, error) {
	return c.LookupOn(machine, hypercubeSpec(d), m)
}

// LookupOn is Lookup for any topology registry spec.
func (c *Cache) LookupOn(machine, topo string, m int) (partition.Partition, error) {
	net, err := ResolveTopology(topo)
	if err != nil {
		return nil, err
	}
	return c.LookupFor(machine, net, m)
}

// LookupFor is LookupOn with an already-resolved topology — the form
// core.System uses so its own topology handle is never re-parsed.
func (c *Cache) LookupFor(machine string, net topology.Network, m int) (partition.Partition, error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return nil, err
	}
	if err := checkServable(net); err != nil {
		return nil, err
	}
	if m < 0 {
		return nil, fmt.Errorf("plancache: negative block size %d", m)
	}
	ln, _, err := c.lineFor(context.Background(), name, prm, net)
	if err != nil {
		return nil, err
	}
	return ln.table.Lookup(m), nil
}

// Hull returns the resident hull table for (machine, d) on a d-cube,
// building the line if needed.
func (c *Cache) Hull(machine string, d int) (optimize.Table, error) {
	return c.HullOn(machine, hypercubeSpec(d))
}

// HullOn is Hull for any topology registry spec.
func (c *Cache) HullOn(machine, topo string) (optimize.Table, error) {
	net, err := ResolveTopology(topo)
	if err != nil {
		return optimize.Table{}, err
	}
	return c.HullFor(machine, net)
}

// HullFor is HullOn with an already-resolved topology.
func (c *Cache) HullFor(machine string, net topology.Network) (optimize.Table, error) {
	return c.HullForCtx(context.Background(), machine, net)
}

// HullForCtx is HullFor bounded by a request context (see GetForCtx).
func (c *Cache) HullForCtx(ctx context.Context, machine string, net topology.Network) (optimize.Table, error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return optimize.Table{}, err
	}
	if err := checkServable(net); err != nil {
		return optimize.Table{}, err
	}
	ln, _, err := c.lineFor(ctx, name, prm, net)
	if err != nil {
		return optimize.Table{}, err
	}
	return ln.table, nil
}

// Warm pre-builds the line for (machine, d) on a d-cube, so the first
// query pays no enumeration. It reports whether a build actually ran
// (false when the line was already resident or another caller's build
// was joined).
func (c *Cache) Warm(machine string, d int) (built bool, err error) {
	return c.WarmOn(machine, hypercubeSpec(d))
}

// WarmOn is Warm for any topology registry spec.
func (c *Cache) WarmOn(machine, topo string) (built bool, err error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return false, err
	}
	net, err := ResolveTopology(topo)
	if err != nil {
		return false, err
	}
	_, built, err = c.lineFor(context.Background(), name, prm, net)
	return built, err
}

// answer resolves m through a resident line.
func (c *Cache) answer(name string, prm model.Params, ln *line, m int) (Plan, error) {
	seg, inRange := ln.table.LookupSegment(m)
	t, phases, err := prm.MultiphaseOn(ln.net, m, seg.Part)
	if err != nil {
		return Plan{}, fmt.Errorf("plancache: pricing %s/%s m=%d: %w", name, ln.key.topo, m, err)
	}
	return Plan{
		Machine:   name,
		Topo:      ln.key.topo,
		D:         ln.net.NumDims(),
		Block:     m,
		Part:      seg.Part,
		TimeMicro: t,
		Phases:    phases,
		SegMin:    seg.MinBlock,
		SegMax:    seg.MaxBlock,
		InRange:   inRange,
	}, nil
}

// ErrOverloaded marks a miss shed because the concurrent-build bound
// (Config.MaxConcurrentBuilds) was reached: the line is not resident
// and the cache refused to queue another hull build. The serving tier
// maps it to 503 with Retry-After.
var ErrOverloaded = errors.New("build capacity exhausted")

// lineFor returns the resident line for (name, topology), filling it
// under a per-key singleflight on a miss (peer fetch first when a Fetch
// hook is configured, local build otherwise). built is true only for
// the caller that initiated a fill that ran a local build (not for
// hits, joined waiters, or peer imports).
//
// ctx bounds this caller's WAIT, not the fill: when ctx ends the
// caller gets ctx.Err() immediately while the fill keeps running for
// the remaining waiters — and when the last waiter departs the fill is
// cancelled at its next checkpoint. Either way the flight entry is
// removed when the fill goroutine finishes, so a cancelled fill never
// poisons the key: the next caller simply starts a fresh one.
func (c *Cache) lineFor(ctx context.Context, name string, prm model.Params, net topology.Network) (ln *line, built bool, err error) {
	key := lineKey{machine: name, topo: net.Name()}
	sh := c.shardFor(key)

	outcome := "hit"
	sp := obs.StartSpan(ctx, "cache")
	sp.SetAttr("machine", name)
	sp.SetAttr("topology", key.topo)
	defer func() {
		if err != nil {
			sp.SetAttr("error", "true")
		}
		sp.SetAttr("outcome", outcome)
		sp.End()
	}()

	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		sh.mu.Lock()
		if el, ok := sh.lines[key]; ok {
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			return el.Value.(*line), false, nil
		}
		if f, ok := sh.flight[key]; ok {
			f.waiters.Add(1)
			sh.mu.Unlock()
			c.misses.Add(1)
			outcome = "join"
			ln, err, retry := c.awaitFlight(ctx, f)
			if retry {
				// We joined a fill that was abandoned (every earlier
				// waiter departed before we arrived and it was cancelled
				// at a checkpoint). Our context is still live, so start
				// over; the dead flight is removed before done closes,
				// so the retry finds a clean slate.
				continue
			}
			return ln, false, err
		}
		// Detach drops the initiating request's cancellation (the fill
		// must outlive any one waiter) but keeps its values, so spans
		// recorded inside the fill land on that request's trace.
		fctx, cancel := context.WithCancel(obs.Detach(ctx))
		f := &flight{done: make(chan struct{}), cancel: cancel}
		f.waiters.Add(1)
		sh.flight[key] = f
		sh.mu.Unlock()
		c.misses.Add(1)
		c.inflight.Add(1)
		outcome = "miss"
		go c.runFlight(fctx, f, sh, key, name, prm, net)
		ln, err, retry := c.awaitFlight(ctx, f)
		if retry {
			continue
		}
		// f.built is only safe to read once the fill has published; a
		// caller departing early (ctx end) reports built=false.
		built := err == nil && flightDone(f) && f.built
		if err == nil {
			if built {
				outcome = "build"
			} else {
				outcome = "peer"
			}
		}
		return ln, built, err
	}
}

// awaitFlight waits for a joined flight to finish or the caller's
// context to end, whichever is first, and maintains the flight's waiter
// count: the departing last waiter cancels the fill. retry is true when
// the flight died of its own cancellation while THIS caller is still
// live — the caller should start over rather than surface an error it
// did not cause.
func (c *Cache) awaitFlight(ctx context.Context, f *flight) (ln *line, err error, retry bool) {
	defer func() {
		if f.waiters.Add(-1) == 0 {
			f.cancel()
		}
	}()
	select {
	case <-f.done:
		if f.err != nil && errors.Is(f.err, context.Canceled) && ctx.Err() == nil {
			return nil, nil, true
		}
		return f.line, f.err, false
	case <-ctx.Done():
		return nil, ctx.Err(), false
	}
}

// flightDone reports whether f has published its result, making its
// line/err/built fields safe to read.
func flightDone(f *flight) bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// runFlight performs one fill: peer fetch (when configured), then local
// build, publishing the result and retiring the flight entry. It runs
// detached from any single request so one disconnected client cannot
// abort work others are waiting on.
func (c *Cache) runFlight(ctx context.Context, f *flight, sh *shard, key lineKey, name string, prm model.Params, net topology.Network) {
	f.line, f.built, f.err = c.fill(ctx, name, prm, net)

	sh.mu.Lock()
	if f.err == nil {
		c.insertLocked(sh, f.line)
		if f.built {
			c.builds.Add(1)
		} else {
			c.peerImports.Add(1)
		}
	}
	delete(sh.flight, key)
	sh.mu.Unlock()
	c.inflight.Add(-1)
	f.cancel()
	close(f.done)
}

// fill obtains one line: from the owning peer when the Fetch hook
// accepts the key, by a bounded local build otherwise. A fetch error or
// an invalid peer payload falls back to the local build — a dead peer
// costs time, never correctness.
func (c *Cache) fill(ctx context.Context, name string, prm model.Params, net topology.Network) (*line, bool, error) {
	if c.cfg.Fetch != nil {
		ld, err := c.cfg.Fetch(ctx, name, net.Name())
		if err == nil && ld != nil {
			if ln, ierr := c.lineFromPeer(*ld, name, prm, net); ierr == nil {
				return ln, false, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	if c.buildSem != nil {
		select {
		case c.buildSem <- struct{}{}:
			defer func() { <-c.buildSem }()
		default:
			c.shed.Add(1)
			return nil, false, fmt.Errorf("plancache: building %s/%s: %w", name, net.Name(), ErrOverloaded)
		}
	}
	sp := obs.StartSpan(ctx, "build")
	sp.SetAttr("machine", name)
	sp.SetAttr("topology", net.Name())
	ln, err := c.build(ctx, name, prm, net)
	if err != nil {
		sp.SetAttr("error", "true")
	}
	sp.End()
	return ln, err == nil, err
}

// lineFromPeer validates a fetched peer line against this request and
// this cache's configuration before accepting it in place of a build.
func (c *Cache) lineFromPeer(ld LineData, name string, prm model.Params, net topology.Network) (*line, error) {
	if ld.Machine != name || ld.Topology != net.Name() {
		return nil, fmt.Errorf("plancache: peer line is for %s/%s, want %s/%s",
			ld.Machine, ld.Topology, name, net.Name())
	}
	if ld.Params != prm {
		return nil, fmt.Errorf("plancache: peer line for %s/%s computed under different machine parameters",
			name, net.Name())
	}
	if ld.SweepLo != 0 || ld.SweepHi != c.cfg.SweepHi || ld.SweepStep != c.cfg.SweepStep {
		return nil, fmt.Errorf("plancache: peer line for %s/%s swept [%d,%d] step %d, want [0,%d] step %d",
			name, net.Name(), ld.SweepLo, ld.SweepHi, ld.SweepStep, c.cfg.SweepHi, c.cfg.SweepStep)
	}
	return restoreLine(ld)
}

// BuildError marks a failure inside a line build (the hull sweep), as
// opposed to request-validation failures: a serving tier maps the former
// to 500 and the latter to 400.
type BuildError struct {
	Machine string
	Topo    string
	Err     error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("plancache: building %s/%s: %v", e.Machine, e.Topo, e.Err)
}

func (e *BuildError) Unwrap() error { return e.Err }

// build runs the hull sweep for one line. ctx is the fill's context: a
// fully abandoned fill aborts between sweep points (context errors pass
// through unwrapped so the flight machinery can classify them).
func (c *Cache) build(ctx context.Context, name string, prm model.Params, net topology.Network) (*line, error) {
	opt := c.optimizer(name, prm)
	tbl, err := opt.BuildTableOnCtx(ctx, net, 0, c.cfg.SweepHi, c.cfg.SweepStep)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &BuildError{Machine: name, Topo: net.Name(), Err: err}
	}
	return &line{
		key:       lineKey{machine: name, topo: net.Name()},
		net:       net,
		table:     tbl,
		sweepLo:   0,
		sweepHi:   c.cfg.SweepHi,
		sweepStep: c.cfg.SweepStep,
	}, nil
}

// insertLocked adds a line to its shard and evicts past capacity. The
// shard mutex must be held.
func (c *Cache) insertLocked(sh *shard, ln *line) {
	if el, ok := sh.lines[ln.key]; ok {
		el.Value = ln
		sh.lru.MoveToFront(el)
		return
	}
	sh.lines[ln.key] = sh.lru.PushFront(ln)
	for sh.lru.Len() > c.cfg.CapacityPerShard {
		back := sh.lru.Back()
		victim := back.Value.(*line)
		sh.lru.Remove(back)
		delete(sh.lines, victim.key)
		c.evictions.Add(1)
	}
}

// WarmFor is WarmOn with an already-resolved topology — the form the
// service layer's fault paths use, where the network is a degraded
// overlay it has already built rather than a registry spec.
func (c *Cache) WarmFor(machine string, net topology.Network) (built bool, err error) {
	return c.WarmForCtx(context.Background(), machine, net)
}

// WarmForCtx is WarmFor bounded by a request context (see GetForCtx).
// The peer-serving endpoint uses it to build a line it owns on demand.
func (c *Cache) WarmForCtx(ctx context.Context, machine string, net topology.Network) (built bool, err error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return false, err
	}
	if err := checkServable(net); err != nil {
		return false, err
	}
	_, built, err = c.lineFor(ctx, name, prm, net)
	return built, err
}

// InvalidateWhere drops every resident line whose (machine, topology
// name) matches pred and returns how many were removed. In-flight
// builds are not cancelled — a build that completes after its key was
// invalidated re-inserts, so callers racing fault updates should
// invalidate after the fault state changes, which this serving tier's
// fault handler does. The service layer uses it to retire plans keyed
// under a superseded health digest when a fabric's fault set changes.
func (c *Cache) InvalidateWhere(pred func(machine, topo string) bool) int {
	removed := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; {
			next := el.Next()
			ln := el.Value.(*line)
			if pred(ln.key.machine, ln.key.topo) {
				sh.lru.Remove(el)
				delete(sh.lines, ln.key)
				removed++
			}
			el = next
		}
		sh.mu.Unlock()
	}
	return removed
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Inflight:    c.inflight.Load(),
		Builds:      c.builds.Load(),
		PeerImports: c.peerImports.Load(),
		Shed:        c.shed.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Lines += sh.lru.Len()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			s.Segments += len(el.Value.(*line).table.Segments)
		}
		sh.mu.Unlock()
	}
	return s
}
