// Package plancache is a sharded, concurrency-safe cache of optimal
// exchange plans keyed by (machine, dimension, block size) — the serving
// tier the paper's §6 observation calls for: the partition enumeration
// "needs to be done only once and the optimal combination stored for
// repeated future use".
//
// The cache does not store one entry per block size. A cache line holds
// the hull-of-optimality table for one (machine, d) pair — built once via
// optimize.BuildTable — and every block size resolves through
// Table.LookupSegment to one of its O(hull) segments, so millions of
// distinct m values collapse onto a handful of cached partitions. The
// per-request cost for a resident line is a binary search plus the
// closed-form time for the exact m asked.
//
// Concurrency: lines live in fixed shards (mutex + LRU list each); a
// missing line is built exactly once per cache — concurrent requests for
// the same (machine, d) wait on a single in-flight build, and the build's
// Best sweeps ride optimize.Optimizer's own singleflight underneath.
// Capacity is bounded per shard with least-recently-used eviction, and
// hit/miss/evict/inflight counters expose the cache's behaviour to the
// service layer's /metrics.
//
// Snapshot/Restore serialize resident lines as JSON, tagged with the
// machine parameters they were computed for, so a restarted daemon
// answers from a warm cache without re-running a single enumeration.
package plancache

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/topology"
)

// DefaultSweepHi is the upper block-size bound of the hull sweep a line
// is built over. Queries above it clamp to the last hull segment, which
// for every machine in the registry has converged to the asymptotically
// optimal partition well before this bound.
const DefaultSweepHi = 512

// Config parameterizes a Cache. The zero value is usable: all machines
// from model.Machines, 8 shards of 64 lines, analytic costing, a
// [0, DefaultSweepHi] step-1 sweep.
type Config struct {
	// Machines is the name → parameters registry requests resolve
	// against. Nil means model.Machines().
	Machines map[string]model.Params
	// Shards is the number of independent lock domains (default 8).
	Shards int
	// CapacityPerShard bounds resident lines per shard; the least
	// recently used line is evicted beyond it (default 64).
	CapacityPerShard int
	// SweepHi and SweepStep control the hull sweep a line is built over:
	// block sizes [0, SweepHi] in steps of SweepStep (defaults
	// DefaultSweepHi and 1). Step 1 makes a resident line's answer exact
	// for every in-range m, not just the swept grid.
	SweepHi   int
	SweepStep int
	// NewOptimizer builds the per-machine optimizer (default
	// optimize.New, the analytic backend).
	NewOptimizer func(model.Params) *optimize.Optimizer
	// OptWorkers is passed to each optimizer's SetWorkers: the candidate-
	// costing worker-pool size, clamped to GOMAXPROCS. Zero keeps the
	// optimizer's own default.
	OptWorkers int
}

func (c Config) withDefaults() Config {
	if c.Machines == nil {
		c.Machines = model.Machines()
	} else {
		// Snapshot the caller's map: the cache reads it unlocked from
		// every shard, so later caller mutation must not be visible.
		reg := make(map[string]model.Params, len(c.Machines))
		for name, p := range c.Machines {
			reg[name] = p
		}
		c.Machines = reg
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.CapacityPerShard <= 0 {
		c.CapacityPerShard = 64
	}
	if c.SweepHi <= 0 {
		c.SweepHi = DefaultSweepHi
	}
	if c.SweepStep <= 0 {
		c.SweepStep = 1
	}
	if c.NewOptimizer == nil {
		c.NewOptimizer = optimize.New
	}
	return c
}

// Plan is one served answer: the optimal partition for (Machine,
// Topology, Block) together with its modeled time and per-phase
// breakdown, plus the hull segment the block size resolved through.
type Plan struct {
	Machine string
	// Topo is the topology registry name the plan answers for; D is its
	// dimension count (the cube dimension on a hypercube).
	Topo      string
	D         int
	Block     int
	Part      partition.Partition
	TimeMicro float64
	Phases    []model.PhaseBreakdown
	// SegMin and SegMax bound the hull segment that answered: every
	// block size in [SegMin, SegMax] shares this partition.
	SegMin, SegMax int
	// InRange reports whether Block lay inside the answering segment;
	// false means the nearest segment answered — for blocks outside the
	// line's sweep (the clamping extrapolation, exact beyond the hull's
	// convergence) or, on a coarse-step sweep (SweepStep > 1), for
	// blocks falling in a gap between swept grid points.
	InRange bool
}

// Stats is a point-in-time counter snapshot. The JSON names are part of
// the service's /metrics wire format.
type Stats struct {
	// Hits counts requests answered from a resident line.
	Hits int64 `json:"hits"`
	// Misses counts requests that had to build (or wait for) a line.
	Misses int64 `json:"misses"`
	// Evictions counts lines dropped by the per-shard LRU bound.
	Evictions int64 `json:"evictions"`
	// Inflight is the number of line builds running right now.
	Inflight int64 `json:"inflight"`
	// Builds counts completed line builds (restores not included).
	Builds int64 `json:"builds"`
	// Lines and Segments are the resident totals.
	Lines    int `json:"lines"`
	Segments int `json:"segments"`
}

// lineKey identifies one cache line: the machine's parameter set and the
// network shape the hull was enumerated for.
type lineKey struct {
	machine string
	topo    string
}

// line is one resident hull table.
type line struct {
	key              lineKey
	net              topology.Network
	table            optimize.Table
	sweepLo, sweepHi int
	sweepStep        int
}

// flight is one in-progress line build; latecomers wait on done.
type flight struct {
	done chan struct{}
	line *line
	err  error
}

type shard struct {
	mu     sync.Mutex
	lines  map[lineKey]*list.Element // value: *line
	lru    *list.List                // front = most recent
	flight map[lineKey]*flight
}

// Cache is the sharded plan cache. Safe for concurrent use.
type Cache struct {
	cfg    Config
	shards []*shard

	optMu sync.Mutex
	opts  map[string]*optimize.Optimizer

	hits, misses, evictions, inflight, builds atomic.Int64
}

// New returns a cache with the given configuration (zero value ok).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, opts: make(map[string]*optimize.Optimizer)}
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = &shard{
			lines:  make(map[lineKey]*list.Element),
			lru:    list.New(),
			flight: make(map[lineKey]*flight),
		}
	}
	return c
}

// Machines returns a copy of the registry the cache resolves machine
// names against; mutating it does not affect the cache.
func (c *Cache) Machines() map[string]model.Params {
	out := make(map[string]model.Params, len(c.cfg.Machines))
	for name, p := range c.cfg.Machines {
		out[name] = p
	}
	return out
}

// Resolve canonicalizes a machine name against the cache's registry: an
// exact registry key wins, otherwise the global alias/case rules
// (model.CanonicalName) are applied and the canonical spelling is looked
// up. The service layer resolves every request through this, so a cache
// built over a custom registry never silently falls back to the built-in
// constants.
func (c *Cache) Resolve(machine string) (string, model.Params, error) {
	return c.resolve(machine)
}

func (c *Cache) resolve(machine string) (string, model.Params, error) {
	if p, ok := c.cfg.Machines[machine]; ok {
		return machine, p, nil
	}
	if canon, err := model.CanonicalName(machine); err == nil {
		if p, ok := c.cfg.Machines[canon]; ok {
			return canon, p, nil
		}
	}
	// List this cache's registry, not the global one: a custom-registry
	// cache serves exactly these names.
	names := make([]string, 0, len(c.cfg.Machines))
	for name := range c.cfg.Machines {
		names = append(names, name)
	}
	sort.Strings(names)
	return "", model.Params{}, fmt.Errorf("unknown machine %q (valid: %s)",
		machine, strings.Join(names, ", "))
}

func (c *Cache) shardFor(key lineKey) *shard {
	h := fnv.New32a()
	h.Write([]byte(key.machine))
	h.Write([]byte{0})
	h.Write([]byte(key.topo))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// MaxTopologyNodes bounds the networks a cache will build hulls for —
// the optimizer's own enumeration limit, enforced here at request
// validation time so an oversized topology is a caller error, not a
// build failure.
const MaxTopologyNodes = 1 << 20

// ResolveTopology validates a topology registry spec for serving:
// parse errors and oversized networks come back as request-validation
// errors (the service layer maps them to 400).
func ResolveTopology(spec string) (topology.Network, error) {
	net, err := topology.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := checkServable(net); err != nil {
		return nil, err
	}
	return net, nil
}

// MaxMixedRadixDims bounds unequal-radix topologies at request
// validation: their optimizer enumeration is over 2^(k−1) ordered
// compositions, re-run for each of the ~SweepHi block sizes of a hull
// build, so the node-count bound alone would let one request schedule
// an exponential amount of work. 12 dimensions cap a build at
// 2^11 · sweep candidates. Uniform-radix shapes (hypercubes, square
// tori) enumerate only p(k) partitions and are not restricted.
const MaxMixedRadixDims = 12

// checkServable enforces the enumeration-cost bounds on every request
// path — including the dimension-based Get, which never goes through a
// spec string — so an oversized topology is always a caller error,
// never a BuildError-classified (500-mapped) hull failure.
func checkServable(net topology.Network) error {
	if net.Nodes() > MaxTopologyNodes {
		return fmt.Errorf("plancache: %s exceeds the serving limit of %d nodes",
			net.Name(), MaxTopologyNodes)
	}
	if _, ok := net.(*topology.Hypercube); ok {
		return nil // uniform radix 2 by construction; keep the hot Get allocation-free
	}
	dims := net.Dims()
	uniform := true
	for _, r := range dims {
		if r != dims[0] {
			uniform = false
			break
		}
	}
	if !uniform && len(dims) > MaxMixedRadixDims {
		return fmt.Errorf("plancache: %s has %d unequal-radix dimensions, over the serving limit of %d",
			net.Name(), len(dims), MaxMixedRadixDims)
	}
	return nil
}

// hypercubeSpec names the d-cube line the dimension-based API uses.
func hypercubeSpec(d int) string { return fmt.Sprintf("hypercube-%d", d) }

// optimizer returns (creating once) the per-machine optimizer.
func (c *Cache) optimizer(name string, p model.Params) *optimize.Optimizer {
	c.optMu.Lock()
	defer c.optMu.Unlock()
	if o, ok := c.opts[name]; ok {
		return o
	}
	o := c.cfg.NewOptimizer(p)
	if c.cfg.OptWorkers > 0 {
		o.SetWorkers(c.cfg.OptWorkers)
	}
	c.opts[name] = o
	return o
}

// OptimizerStats aggregates the enumeration counters — evaluations,
// evaluated/pruned candidates, memo hits/misses — across every
// per-machine optimizer the cache has created. The service layer exposes
// the sum on /metrics next to the cache counters.
func (c *Cache) OptimizerStats() optimize.Stats {
	c.optMu.Lock()
	defer c.optMu.Unlock()
	var sum optimize.Stats
	for _, o := range c.opts {
		sum.Add(o.Stats())
	}
	return sum
}

// Get answers one (machine, d, m) hypercube query with the full plan
// detail. This is the serving hot path: the shared hypercube instance
// resolves without parsing or allocation.
func (c *Cache) Get(machine string, d, m int) (Plan, error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return Plan{}, err
	}
	net, err := topology.New(d)
	if err != nil {
		return Plan{}, err
	}
	return c.getOn(name, prm, net, m)
}

// GetOn answers one (machine, topology, m) query with the full plan
// detail; topo is a topology registry spec such as "torus-4x4x4".
func (c *Cache) GetOn(machine, topo string, m int) (Plan, error) {
	net, err := ResolveTopology(topo)
	if err != nil {
		return Plan{}, err
	}
	return c.GetFor(machine, net, m)
}

// GetFor is GetOn with an already-resolved topology — the form the
// service layer uses so a request's spec is parsed exactly once.
func (c *Cache) GetFor(machine string, net topology.Network, m int) (Plan, error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return Plan{}, err
	}
	return c.getOn(name, prm, net, m)
}

func (c *Cache) getOn(name string, prm model.Params, net topology.Network, m int) (Plan, error) {
	if err := checkServable(net); err != nil {
		return Plan{}, err
	}
	if m < 0 {
		return Plan{}, fmt.Errorf("plancache: negative block size %d", m)
	}
	ln, _, err := c.lineFor(name, prm, net)
	if err != nil {
		return Plan{}, err
	}
	return c.answer(name, prm, ln, m)
}

// Lookup is the fast path: the optimal partition for (machine, d, m) on
// a d-cube with no per-request breakdown. The returned slice is shared
// with the cache line and must be treated as read-only.
func (c *Cache) Lookup(machine string, d, m int) (partition.Partition, error) {
	return c.LookupOn(machine, hypercubeSpec(d), m)
}

// LookupOn is Lookup for any topology registry spec.
func (c *Cache) LookupOn(machine, topo string, m int) (partition.Partition, error) {
	net, err := ResolveTopology(topo)
	if err != nil {
		return nil, err
	}
	return c.LookupFor(machine, net, m)
}

// LookupFor is LookupOn with an already-resolved topology — the form
// core.System uses so its own topology handle is never re-parsed.
func (c *Cache) LookupFor(machine string, net topology.Network, m int) (partition.Partition, error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return nil, err
	}
	if err := checkServable(net); err != nil {
		return nil, err
	}
	if m < 0 {
		return nil, fmt.Errorf("plancache: negative block size %d", m)
	}
	ln, _, err := c.lineFor(name, prm, net)
	if err != nil {
		return nil, err
	}
	return ln.table.Lookup(m), nil
}

// Hull returns the resident hull table for (machine, d) on a d-cube,
// building the line if needed.
func (c *Cache) Hull(machine string, d int) (optimize.Table, error) {
	return c.HullOn(machine, hypercubeSpec(d))
}

// HullOn is Hull for any topology registry spec.
func (c *Cache) HullOn(machine, topo string) (optimize.Table, error) {
	net, err := ResolveTopology(topo)
	if err != nil {
		return optimize.Table{}, err
	}
	return c.HullFor(machine, net)
}

// HullFor is HullOn with an already-resolved topology.
func (c *Cache) HullFor(machine string, net topology.Network) (optimize.Table, error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return optimize.Table{}, err
	}
	if err := checkServable(net); err != nil {
		return optimize.Table{}, err
	}
	ln, _, err := c.lineFor(name, prm, net)
	if err != nil {
		return optimize.Table{}, err
	}
	return ln.table, nil
}

// Warm pre-builds the line for (machine, d) on a d-cube, so the first
// query pays no enumeration. It reports whether a build actually ran
// (false when the line was already resident or another caller's build
// was joined).
func (c *Cache) Warm(machine string, d int) (built bool, err error) {
	return c.WarmOn(machine, hypercubeSpec(d))
}

// WarmOn is Warm for any topology registry spec.
func (c *Cache) WarmOn(machine, topo string) (built bool, err error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return false, err
	}
	net, err := ResolveTopology(topo)
	if err != nil {
		return false, err
	}
	_, built, err = c.lineFor(name, prm, net)
	return built, err
}

// answer resolves m through a resident line.
func (c *Cache) answer(name string, prm model.Params, ln *line, m int) (Plan, error) {
	seg, inRange := ln.table.LookupSegment(m)
	t, phases, err := prm.MultiphaseOn(ln.net, m, seg.Part)
	if err != nil {
		return Plan{}, fmt.Errorf("plancache: pricing %s/%s m=%d: %w", name, ln.key.topo, m, err)
	}
	return Plan{
		Machine:   name,
		Topo:      ln.key.topo,
		D:         ln.net.NumDims(),
		Block:     m,
		Part:      seg.Part,
		TimeMicro: t,
		Phases:    phases,
		SegMin:    seg.MinBlock,
		SegMax:    seg.MaxBlock,
		InRange:   inRange,
	}, nil
}

// lineFor returns the resident line for (name, topology), building it
// under a per-key singleflight on a miss. built is true only for the
// caller that ran the build itself (not for hits or joined waiters).
func (c *Cache) lineFor(name string, prm model.Params, net topology.Network) (ln *line, built bool, err error) {
	key := lineKey{machine: name, topo: net.Name()}
	sh := c.shardFor(key)

	sh.mu.Lock()
	if el, ok := sh.lines[key]; ok {
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*line), false, nil
	}
	if f, ok := sh.flight[key]; ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		<-f.done
		return f.line, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flight[key] = f
	sh.mu.Unlock()
	c.misses.Add(1)
	c.inflight.Add(1)

	f.line, f.err = c.build(name, prm, net)

	sh.mu.Lock()
	if f.err == nil {
		c.insertLocked(sh, f.line)
		c.builds.Add(1)
	}
	delete(sh.flight, key)
	sh.mu.Unlock()
	c.inflight.Add(-1)
	close(f.done)
	return f.line, f.err == nil, f.err
}

// BuildError marks a failure inside a line build (the hull sweep), as
// opposed to request-validation failures: a serving tier maps the former
// to 500 and the latter to 400.
type BuildError struct {
	Machine string
	Topo    string
	Err     error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("plancache: building %s/%s: %v", e.Machine, e.Topo, e.Err)
}

func (e *BuildError) Unwrap() error { return e.Err }

// build runs the hull sweep for one line.
func (c *Cache) build(name string, prm model.Params, net topology.Network) (*line, error) {
	opt := c.optimizer(name, prm)
	tbl, err := opt.BuildTableOn(net, 0, c.cfg.SweepHi, c.cfg.SweepStep)
	if err != nil {
		return nil, &BuildError{Machine: name, Topo: net.Name(), Err: err}
	}
	return &line{
		key:       lineKey{machine: name, topo: net.Name()},
		net:       net,
		table:     tbl,
		sweepLo:   0,
		sweepHi:   c.cfg.SweepHi,
		sweepStep: c.cfg.SweepStep,
	}, nil
}

// insertLocked adds a line to its shard and evicts past capacity. The
// shard mutex must be held.
func (c *Cache) insertLocked(sh *shard, ln *line) {
	if el, ok := sh.lines[ln.key]; ok {
		el.Value = ln
		sh.lru.MoveToFront(el)
		return
	}
	sh.lines[ln.key] = sh.lru.PushFront(ln)
	for sh.lru.Len() > c.cfg.CapacityPerShard {
		back := sh.lru.Back()
		victim := back.Value.(*line)
		sh.lru.Remove(back)
		delete(sh.lines, victim.key)
		c.evictions.Add(1)
	}
}

// WarmFor is WarmOn with an already-resolved topology — the form the
// service layer's fault paths use, where the network is a degraded
// overlay it has already built rather than a registry spec.
func (c *Cache) WarmFor(machine string, net topology.Network) (built bool, err error) {
	name, prm, err := c.resolve(machine)
	if err != nil {
		return false, err
	}
	if err := checkServable(net); err != nil {
		return false, err
	}
	_, built, err = c.lineFor(name, prm, net)
	return built, err
}

// InvalidateWhere drops every resident line whose (machine, topology
// name) matches pred and returns how many were removed. In-flight
// builds are not cancelled — a build that completes after its key was
// invalidated re-inserts, so callers racing fault updates should
// invalidate after the fault state changes, which this serving tier's
// fault handler does. The service layer uses it to retire plans keyed
// under a superseded health digest when a fabric's fault set changes.
func (c *Cache) InvalidateWhere(pred func(machine, topo string) bool) int {
	removed := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; {
			next := el.Next()
			ln := el.Value.(*line)
			if pred(ln.key.machine, ln.key.topo) {
				sh.lru.Remove(el)
				delete(sh.lines, ln.key)
				removed++
			}
			el = next
		}
		sh.mu.Unlock()
	}
	return removed
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Inflight:  c.inflight.Load(),
		Builds:    c.builds.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Lines += sh.lru.Len()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			s.Segments += len(el.Value.(*line).table.Segments)
		}
		sh.mu.Unlock()
	}
	return s
}
