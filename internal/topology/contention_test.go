package topology

import "testing"

// Paper §2 example: simultaneous paths 0→31 and 2→23 share edge 3-7;
// paths 0→31 and 14→11 share node 15.
func TestAnalyzeStepPaperExample(t *testing.T) {
	h := MustNew(5)
	r, err := h.AnalyzeStep([]Transfer{{0, 31}, {2, 23}, {14, 11}})
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeContentionFree() {
		t.Error("step must have edge contention")
	}
	if got := r.EdgeLoad[Edge{3, 7}]; got != 2 {
		t.Errorf("edge 3-7 load = %d, want 2", got)
	}
	if got := r.NodeLoad[15]; got < 2 {
		t.Errorf("node 15 load = %d, want ≥2", got)
	}
	ce := r.ContendedEdges()
	if len(ce) != 1 || ce[0] != (Edge{3, 7}) {
		t.Errorf("contended edges = %v, want [3-7]", ce)
	}
}

func TestAnalyzeStepIgnoresSelf(t *testing.T) {
	h := MustNew(3)
	r, err := h.AnalyzeStep([]Transfer{{2, 2}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.EdgeLoad) != 0 || r.MaxEdgeLoad != 0 {
		t.Error("self transfers must not load edges")
	}
}

func TestAnalyzeStepErrors(t *testing.T) {
	h := MustNew(3)
	if _, err := h.AnalyzeStep([]Transfer{{0, 99}}); err == nil {
		t.Error("out-of-cube transfer must fail")
	}
}

// The paper's central scheduling claim (§4.2): the XOR schedule is
// edge-contention-free at every step, for every cube dimension.
func TestXORScheduleContentionFree(t *testing.T) {
	for d := 1; d <= 8; d++ {
		h := MustNew(d)
		bad, err := h.VerifyXORScheduleContentionFree()
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Errorf("d=%d: XOR step %d has edge contention", d, bad)
		}
	}
}

func TestXORStepIsPairwise(t *testing.T) {
	h := MustNew(6)
	for i := 1; i < h.Nodes(); i++ {
		step := h.XORStep(i)
		// Every node appears exactly once as src; dst of p is p^i, and
		// the relation is an involution (pairwise exchange property that
		// the iPSC implementation depends on, §7.2).
		for _, tr := range step {
			if tr.Dst != tr.Src^i {
				t.Fatalf("step %d: %d→%d not XOR partner", i, tr.Src, tr.Dst)
			}
			if (tr.Dst ^ i) != tr.Src {
				t.Fatalf("step %d not an involution", i)
			}
		}
		if len(step) != h.Nodes() {
			t.Fatalf("step %d has %d transfers", i, len(step))
		}
	}
}

// Every node must receive from every other node exactly once across the
// full XOR schedule — the complete-exchange property.
func TestXORScheduleIsCompleteExchange(t *testing.T) {
	h := MustNew(5)
	n := h.Nodes()
	got := make(map[[2]int]int)
	for i := 1; i < n; i++ {
		for _, tr := range h.XORStep(i) {
			got[[2]int{tr.Src, tr.Dst}]++
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if got[[2]int{s, d}] != 1 {
				t.Fatalf("pair %d→%d served %d times", s, d, got[[2]int{s, d}])
			}
		}
	}
}

// The naive all-into-one schedule must exhibit edge contention on cubes of
// dimension ≥ 2 — the contrast that motivates careful scheduling on
// circuit-switched machines.
func TestNaiveScheduleHasContention(t *testing.T) {
	for d := 2; d <= 7; d++ {
		h := MustNew(d)
		found := false
		for i := 0; i < h.Nodes() && !found; i++ {
			r, err := h.AnalyzeStep(h.NaiveStep(i))
			if err != nil {
				t.Fatal(err)
			}
			if !r.EdgeContentionFree() {
				found = true
			}
		}
		if !found {
			t.Errorf("d=%d: naive schedule unexpectedly contention-free", d)
		}
	}
}

// Cyclic shifts are edge-contention-free under e-cube routing — a useful
// (and at first surprising) baseline fact.
func TestShiftScheduleContentionFree(t *testing.T) {
	for d := 1; d <= 7; d++ {
		h := MustNew(d)
		for i := 1; i < h.Nodes(); i++ {
			r, err := h.AnalyzeStep(h.ShiftStep(i))
			if err != nil {
				t.Fatal(err)
			}
			if !r.EdgeContentionFree() {
				t.Errorf("d=%d shift %d: unexpected contention", d, i)
			}
		}
	}
}

// Node contention exists in the XOR schedule even though edge contention
// does not (paper: node contention costs nothing on the iPSC-860).
func TestXORScheduleHasNodePassThroughs(t *testing.T) {
	h := MustNew(5)
	sawPassThrough := false
	for i := 1; i < h.Nodes(); i++ {
		r, err := h.AnalyzeStep(h.XORStep(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxNodeLoad > 0 {
			sawPassThrough = true
		}
	}
	if !sawPassThrough {
		t.Error("expected some multi-hop steps with pass-through nodes")
	}
}

// Every XOR step's transfers all cross the same distance (the weight of
// the mask), which is what makes the per-step distance accounting of
// eq. (2) exact.
func TestXORStepUniformDistance(t *testing.T) {
	h := MustNew(6)
	for i := 1; i < h.Nodes(); i++ {
		step := h.XORStep(i)
		want := h.Distance(step[0].Src, step[0].Dst)
		for _, tr := range step {
			if h.Distance(tr.Src, tr.Dst) != want {
				t.Fatalf("step %d: nonuniform distances", i)
			}
		}
	}
}

func TestContendedEdgesSorted(t *testing.T) {
	h := MustNew(4)
	// Force contention: many transfers into node 0 along shared low-dim
	// edges.
	r, err := h.AnalyzeStep([]Transfer{{15, 0}, {14, 0}, {13, 0}, {7, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ce := r.ContendedEdges()
	for i := 1; i < len(ce); i++ {
		if ce[i-1].From > ce[i].From ||
			(ce[i-1].From == ce[i].From && ce[i-1].To >= ce[i].To) {
			t.Error("contended edges not sorted")
		}
	}
}
