package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec resolves a topology registry name to a Network:
//
//	hypercube-7  (alias cube-7)   binary hypercube, 2^7 nodes
//	torus-4x4x4                   mixed-radix torus, radices low dim first
//	mesh-8x8                      open-boundary mesh
//
// A "!"-separated fault suffix yields a Degraded overlay — dn= dead
// nodes, dl= dead a-b wires, sl= slow a-b:factor wires:
//
//	torus-4x4x4!dn=3,5!dl=0-1,8-9!sl=2-6:2.5
//
// Names are case-insensitive and whitespace-tolerant; Network.Name()
// round-trips through ParseSpec (degraded names re-parse to an
// equivalent overlay). Malformed specs return an error suited to
// request validation (the service layer maps it to 400).
func ParseSpec(spec string) (Network, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	if base, digest, ok := strings.Cut(s, "!"); ok {
		net, err := ParseSpec(base)
		if err != nil {
			return nil, err
		}
		fs, err := parseFaultDigest(digest)
		if err != nil {
			return nil, fmt.Errorf("topology: bad fault suffix in %q: %w", spec, err)
		}
		return Overlay(net, fs)
	}
	kind, arg, ok := strings.Cut(s, "-")
	if !ok || arg == "" {
		return nil, specError(spec)
	}
	switch kind {
	case "hypercube", "cube":
		d, err := strconv.Atoi(arg)
		if err != nil {
			return nil, specError(spec)
		}
		return New(d)
	case "torus", "mesh":
		fields := strings.Split(arg, "x")
		radices := make([]int, 0, len(fields))
		for _, f := range fields {
			r, err := strconv.Atoi(f)
			if err != nil {
				return nil, specError(spec)
			}
			radices = append(radices, r)
		}
		if kind == "torus" {
			return NewTorus(radices...)
		}
		return NewMesh(radices...)
	default:
		return nil, specError(spec)
	}
}

func specError(spec string) error {
	return fmt.Errorf("topology: bad spec %q (want hypercube-<d>, torus-<r>x<r>x…, or mesh-<r>x<r>x…)", spec)
}

// MustParseSpec is ParseSpec, panicking on error; for tests and
// fixed-shape tools only.
func MustParseSpec(spec string) Network {
	net, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return net
}
