package topology

import (
	"fmt"
	"strings"
)

// grid is the shared mixed-radix coordinate machine behind Torus and
// Mesh: k dimensions of radices r_0..r_{k-1}, node labels in mixed-radix
// digit order (dimension 0 least significant), dimension-ordered routing
// correcting dimension 0 first. wrap selects torus (wraparound links,
// shorter direction per dimension, ties toward +) or mesh (open
// boundaries, monotone walks).
type grid struct {
	radices  []int
	strides  []int
	n        int
	degree   int
	diameter int
	wrap     bool
	name     string
}

// Torus is a mixed-radix k-dimensional torus with wraparound links and
// dimension-ordered shortest-wrap routing. A radix-2 dimension has a
// single full-duplex wire between its two nodes (both wrap directions
// coincide), which LinkSlot canonicalizes to the + direction.
type Torus struct{ grid }

// Mesh is the open-boundary variant of Torus: no wraparound links, so
// routes walk monotonically toward the destination in every dimension.
type Mesh struct{ grid }

// maxGridNodes bounds constructed networks, matching the hypercube's
// label-arithmetic comfort zone.
const maxGridNodes = 1 << 24

func newGrid(radices []int, wrap bool, kind string) (grid, error) {
	if len(radices) == 0 {
		return grid{}, fmt.Errorf("topology: %s needs at least one dimension", kind)
	}
	if len(radices) > 24 {
		return grid{}, fmt.Errorf("topology: %s with %d dimensions exceeds the limit of 24", kind, len(radices))
	}
	g := grid{
		radices: append([]int(nil), radices...),
		strides: make([]int, len(radices)),
		n:       1,
		degree:  2 * len(radices),
		wrap:    wrap,
	}
	var b strings.Builder
	b.WriteString(kind)
	b.WriteByte('-')
	for i, r := range radices {
		if r < 2 {
			return grid{}, fmt.Errorf("topology: %s radix %d in dimension %d (want ≥ 2)", kind, r, i)
		}
		g.strides[i] = g.n
		if g.n > maxGridNodes/r {
			return grid{}, fmt.Errorf("topology: %s exceeds %d nodes", kind, maxGridNodes)
		}
		g.n *= r
		if wrap {
			g.diameter += r / 2
		} else {
			g.diameter += r - 1
		}
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	g.name = b.String()
	return g, nil
}

// NewTorus returns a torus with the given per-dimension radices (each
// ≥ 2), dimension 0 being the least significant label digit.
func NewTorus(radices ...int) (*Torus, error) {
	g, err := newGrid(radices, true, "torus")
	if err != nil {
		return nil, err
	}
	return &Torus{g}, nil
}

// NewMesh returns an open-boundary mesh with the given per-dimension
// radices (each ≥ 2).
func NewMesh(radices ...int) (*Mesh, error) {
	g, err := newGrid(radices, false, "mesh")
	if err != nil {
		return nil, err
	}
	return &Mesh{g}, nil
}

func (g *grid) Name() string        { return g.name }
func (g *grid) Nodes() int          { return g.n }
func (g *grid) Contains(p int) bool { return p >= 0 && p < g.n }
func (g *grid) NumDims() int        { return len(g.radices) }
func (g *grid) Dims() []int         { return append([]int(nil), g.radices...) }
func (g *grid) Stride(i int) int    { return g.strides[i] }
func (g *grid) Degree() int         { return g.degree }
func (g *grid) Diameter() int       { return g.diameter }

// digit returns coordinate i of label p.
func (g *grid) digit(p, i int) int { return (p / g.strides[i]) % g.radices[i] }

// dimDist returns the routed distance between two coordinates of
// dimension i.
func (g *grid) dimDist(a, b, i int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if g.wrap {
		if wd := g.radices[i] - d; wd < d {
			return wd
		}
	}
	return d
}

// Distance returns the routed hop count: the sum of per-dimension
// distances.
func (g *grid) Distance(a, b int) int {
	total := 0
	for i := range g.radices {
		total += g.dimDist(g.digit(a, i), g.digit(b, i), i)
	}
	return total
}

// step returns the neighbor of p one unit along dimension i in direction
// dir (+1 or -1), wrapping on a torus; ok is false for a mesh boundary.
func (g *grid) step(p, i, dir int) (int, bool) {
	c := g.digit(p, i)
	nc := c + dir
	r := g.radices[i]
	if nc < 0 || nc >= r {
		if !g.wrap {
			return 0, false
		}
		nc = (nc + r) % r
	}
	return p + (nc-c)*g.strides[i], true
}

// Neighbors returns the distinct adjacent nodes in dimension order
// (+ before − within a dimension).
func (g *grid) Neighbors(p int) []int {
	out := make([]int, 0, g.degree)
	for i, r := range g.radices {
		up, upOK := g.step(p, i, +1)
		if upOK {
			out = append(out, up)
		}
		if down, ok := g.step(p, i, -1); ok && !(g.wrap && r == 2) && !(upOK && down == up) {
			out = append(out, down)
		}
	}
	return out
}

// dimDir returns the routing direction (+1 or -1) for correcting
// dimension i from coordinate a to b: the shorter wrap direction on a
// torus (ties toward +), the monotone direction on a mesh.
func (g *grid) dimDir(a, b, i int) int {
	if !g.wrap {
		if b > a {
			return +1
		}
		return -1
	}
	r := g.radices[i]
	delta := ((b-a)%r + r) % r
	if 2*delta <= r {
		return +1
	}
	return -1
}

// AppendRoute appends the dimension-ordered route src..dst (both
// endpoints included) into buf.
func (g *grid) AppendRoute(buf []int, src, dst int) []int {
	buf = append(buf[:0], src)
	cur := src
	for i := range g.radices {
		a, b := g.digit(cur, i), g.digit(dst, i)
		if a == b {
			continue
		}
		dir := g.dimDir(a, b, i)
		for a != b {
			cur, _ = g.step(cur, i, dir)
			a = g.digit(cur, i)
			buf = append(buf, cur)
		}
	}
	return buf
}

// Route returns the dimension-ordered route from src to dst.
func (g *grid) Route(src, dst int) ([]int, error) {
	if !g.Contains(src) || !g.Contains(dst) {
		return nil, fmt.Errorf("topology: route %d→%d outside %s", src, dst, g.name)
	}
	return g.AppendRoute(nil, src, dst), nil
}

// RouteEdges returns the directed edges of the route from src to dst.
func (g *grid) RouteEdges(src, dst int) ([]Edge, error) {
	p, err := g.Route(src, dst)
	if err != nil {
		return nil, err
	}
	edges := make([]Edge, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		edges = append(edges, Edge{From: p[i], To: p[i+1]})
	}
	return edges, nil
}

// LinkSlot returns the directed-link slot of the hop from → to:
// from·Degree() + 2·dim + dir, with dir 0 for + and 1 for −. On a
// radix-2 torus dimension both directions reach the same neighbor over
// the same wire, canonicalized to dir 0 so the two logical directions
// contend for the one physical link.
func (g *grid) LinkSlot(from, to int) int {
	for i, r := range g.radices {
		af, at := g.digit(from, i), g.digit(to, i)
		if af == at {
			continue
		}
		dir := 0
		if g.wrap {
			if r > 2 && ((at-af+r)%r) == r-1 {
				dir = 1
			}
		} else if at < af {
			dir = 1
		}
		return from*g.degree + 2*i + dir
	}
	panic(fmt.Sprintf("topology: LinkSlot(%d,%d): nodes are not adjacent in %s", from, to, g.name))
}

// TotalLinks returns the number of usable directed links.
func (g *grid) TotalLinks() int {
	total := 0
	for _, r := range g.radices {
		perDim := 0
		switch {
		case g.wrap && r == 2:
			// One out-link per node covers both directions of the wire.
			perDim = g.n
		case g.wrap:
			perDim = 2 * g.n
		default:
			// Each of the n/r rows of the dimension has r−1 wires, each
			// full-duplex.
			perDim = g.n / r * (r - 1) * 2
		}
		total += perDim
	}
	return total
}

// AveragePathLength returns the mean routed distance over ordered node
// pairs with src ≠ dst. Per-dimension digit distances are independent,
// so the total over all ordered pairs is Σ_i (n/r_i)²·S_i with S_i the
// all-pairs digit-distance sum of dimension i.
func (g *grid) AveragePathLength() float64 {
	if g.n <= 1 {
		return 0
	}
	total := 0.0
	for i, r := range g.radices {
		s := 0
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				s += g.dimDist(a, b, i)
			}
		}
		pairs := g.n / r
		total += float64(pairs) * float64(pairs) * float64(s)
	}
	return total / float64(g.n) / float64(g.n-1)
}
