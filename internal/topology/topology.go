// Package topology models circuit-switched interconnection networks:
// the hypercube of §2 (node labels, links, e-cube routes, subcube
// decompositions) generalized behind the Network interface to
// mixed-radix Torus and Mesh machines, plus the edge/node contention
// analysis that motivates the circuit-switched schedules. Registry
// specs ("hypercube-7", "torus-4x4x4", "mesh-8x8") resolve through
// ParseSpec; every shape routes dimension-ordered (see Network for the
// per-shape deadlock properties under hold-and-wait acquisition).
package topology

import (
	"fmt"

	"repro/internal/bitutil"
)

// Hypercube describes a d-dimensional binary hypercube with 2^d nodes —
// the all-radix-2 special case of Network, with bit-trick fast paths for
// routing and distance.
type Hypercube struct {
	dim  int
	n    int
	name string
}

// Hypercube is the radix-2 Network; Torus and Mesh are the mixed-radix
// ones.
var (
	_ Network = (*Hypercube)(nil)
	_ Network = (*Torus)(nil)
	_ Network = (*Mesh)(nil)
)

// cubes shares one immutable instance per dimension, so hot request
// paths (the plan cache's Get) resolve a hypercube without allocating.
var cubes = func() [31]*Hypercube {
	var out [31]*Hypercube
	for d := range out {
		out[d] = &Hypercube{dim: d, n: 1 << uint(d), name: fmt.Sprintf("hypercube-%d", d)}
	}
	return out
}()

// New returns a hypercube of dimension d (0 ≤ d ≤ 30). Hypercubes are
// immutable and shared: repeated calls return the same instance.
func New(d int) (*Hypercube, error) {
	if d < 0 || d > 30 {
		return nil, fmt.Errorf("topology: dimension %d out of range [0,30]", d)
	}
	return cubes[d], nil
}

// Name returns the canonical spec, e.g. "hypercube-7".
func (h *Hypercube) Name() string { return h.name }

// NumDims returns d: one routing dimension per label bit.
func (h *Hypercube) NumDims() int { return h.dim }

// Dims returns d radices of 2.
func (h *Hypercube) Dims() []int {
	out := make([]int, h.dim)
	for i := range out {
		out[i] = 2
	}
	return out
}

// Stride returns 2^i, the label stride of bit i.
func (h *Hypercube) Stride(i int) int { return 1 << uint(i) }

// Degree returns d, the directed-link slots per node.
func (h *Hypercube) Degree() int { return h.dim }

// Diameter returns d, the maximum Hamming distance.
func (h *Hypercube) Diameter() int { return h.dim }

// AppendRoute appends the e-cube route src..dst (both endpoints
// included) into buf without validation or allocation beyond buf growth.
func (h *Hypercube) AppendRoute(buf []int, src, dst int) []int {
	buf = append(buf[:0], src)
	cur := src
	for diff := src ^ dst; diff != 0; diff &= diff - 1 {
		cur ^= diff & -diff
		buf = append(buf, cur)
	}
	return buf
}

// LinkSlot returns from·d + i for the link crossing dimension i.
func (h *Hypercube) LinkSlot(from, to int) int {
	return from*h.dim + bitutil.LowestSetBit(from^to)
}

// MustNew is New, panicking on error; for tests and fixed-size tools.
func MustNew(d int) *Hypercube {
	h, err := New(d)
	if err != nil {
		panic(err)
	}
	return h
}

// Dim returns the dimension d.
func (h *Hypercube) Dim() int { return h.dim }

// Nodes returns the node count n = 2^d.
func (h *Hypercube) Nodes() int { return h.n }

// Contains reports whether label p names a node of the cube.
func (h *Hypercube) Contains(p int) bool { return p >= 0 && p < h.n }

// Neighbor returns the neighbour of p across dimension i.
func (h *Hypercube) Neighbor(p, i int) (int, error) {
	if !h.Contains(p) {
		return 0, fmt.Errorf("topology: node %d not in %d-cube", p, h.dim)
	}
	if i < 0 || i >= h.dim {
		return 0, fmt.Errorf("topology: dimension %d not in [0,%d)", i, h.dim)
	}
	return bitutil.FlipBit(p, i), nil
}

// Neighbors returns all d neighbours of p in dimension order.
func (h *Hypercube) Neighbors(p int) []int {
	out := make([]int, h.dim)
	for i := 0; i < h.dim; i++ {
		out[i] = bitutil.FlipBit(p, i)
	}
	return out
}

// Distance returns the Hamming distance between two node labels.
func (h *Hypercube) Distance(a, b int) int { return bitutil.Distance(a, b) }

// Edge is a directed communication link between adjacent nodes. The
// iPSC-class machines have full-duplex links, so the two directions of a
// physical wire are distinct resources; two circuits contend only when
// they use the same direction of the same wire (paper §2, [2]).
type Edge struct {
	From, To int
}

// Dim returns the dimension the edge crosses.
func (e Edge) Dim() int { return bitutil.LowestSetBit(e.From ^ e.To) }

func (e Edge) String() string { return fmt.Sprintf("%d-%d", e.From, e.To) }

// Route returns the e-cube route from src to dst as the sequence of nodes
// visited, beginning with src and ending with dst.
func (h *Hypercube) Route(src, dst int) ([]int, error) {
	if !h.Contains(src) || !h.Contains(dst) {
		return nil, fmt.Errorf("topology: route %d→%d outside %d-cube", src, dst, h.dim)
	}
	return bitutil.ECubePath(src, dst), nil
}

// RouteEdges returns the directed edges of the e-cube route from src to dst.
func (h *Hypercube) RouteEdges(src, dst int) ([]Edge, error) {
	p, err := h.Route(src, dst)
	if err != nil {
		return nil, err
	}
	edges := make([]Edge, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		edges = append(edges, Edge{From: p[i], To: p[i+1]})
	}
	return edges, nil
}

// TotalLinks returns the number of directed links: d·2^d.
func (h *Hypercube) TotalLinks() int { return h.dim * h.n }

// AveragePathLength returns the mean e-cube path length over all ordered
// pairs with src ≠ dst: d·2^(d-1)/(2^d−1), the distance term of eq. (2).
func (h *Hypercube) AveragePathLength() float64 {
	if h.dim == 0 {
		return 0
	}
	return float64(h.dim) * float64(h.n/2) / float64(h.n-1)
}

// Subcube identifies one subcube of dimension w within the cube: the set
// of nodes whose labels agree outside bit positions lo..lo+w-1. The paper
// (§5.2) decomposes phases over the subcubes determined by consecutive
// bit ranges of the node label.
type Subcube struct {
	Lo    int // lowest bit position of the subcube's label field
	Width int // subcube dimension
	Fixed int // the fixed bits outside the field (field bits zeroed)
}

// Nodes lists the subcube's 2^Width member labels in increasing order of
// the field value.
func (s Subcube) Nodes() []int {
	out := make([]int, 1<<uint(s.Width))
	for v := range out {
		out[v] = bitutil.WithField(s.Fixed, s.Lo, s.Width, v)
	}
	return out
}

// Contains reports whether node p belongs to the subcube.
func (s Subcube) Contains(p int) bool {
	return bitutil.WithField(p, s.Lo, s.Width, 0) == s.Fixed
}

// Rank returns p's index within the subcube (its field value).
func (s Subcube) Rank(p int) int { return bitutil.Field(p, s.Lo, s.Width) }

// Member returns the node with the given rank within the subcube.
func (s Subcube) Member(rank int) int {
	return bitutil.WithField(s.Fixed, s.Lo, s.Width, rank)
}

func (s Subcube) String() string {
	return fmt.Sprintf("subcube[bits %d..%d of %0b]", s.Lo, s.Lo+s.Width-1, s.Fixed)
}

// Subcubes returns all 2^(d−w) subcubes of width w anchored at bit lo,
// partitioning the node set. Phase j of the multiphase algorithm operates
// simultaneously on all subcubes returned here for its bit range.
func (h *Hypercube) Subcubes(lo, w int) ([]Subcube, error) {
	if w < 0 || lo < 0 || lo+w > h.dim {
		return nil, fmt.Errorf("topology: bit field [%d,%d) not in %d-cube", lo, lo+w, h.dim)
	}
	count := 1 << uint(h.dim-w)
	out := make([]Subcube, 0, count)
	seen := make(map[int]bool, count)
	for p := 0; p < h.n; p++ {
		fixed := bitutil.WithField(p, lo, w, 0)
		if !seen[fixed] {
			seen[fixed] = true
			out = append(out, Subcube{Lo: lo, Width: w, Fixed: fixed})
		}
	}
	return out, nil
}

// PhaseFields returns the bit ranges (lo, width) used by each phase of a
// multiphase exchange with the given subcube dimensions, in phase order.
// Per §5.2 the j-th partial exchange uses bits Σ_{i≤j}d_i − d_j .. Σ_{i≤j}d_i − 1
// counting down from the top of the label.
func (h *Hypercube) PhaseFields(dims []int) ([][2]int, error) {
	sum := 0
	for _, di := range dims {
		if di <= 0 {
			return nil, fmt.Errorf("topology: nonpositive phase dimension %d", di)
		}
		sum += di
	}
	if sum != h.dim {
		return nil, fmt.Errorf("topology: phase dimensions sum to %d, want %d", sum, h.dim)
	}
	out := make([][2]int, len(dims))
	start := h.dim - 1
	for j, dj := range dims {
		stop := start - dj + 1
		out[j] = [2]int{stop, dj}
		start = stop - 1
	}
	return out, nil
}
