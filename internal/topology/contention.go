package topology

import (
	"fmt"
	"sort"
)

// Transfer is one point-to-point message in a communication step.
type Transfer struct {
	Src, Dst int
}

// ContentionReport summarizes the link and node sharing of one
// communication step in which all transfers are in flight simultaneously
// under e-cube routing.
type ContentionReport struct {
	// EdgeLoad maps each directed edge to the number of circuits using it.
	EdgeLoad map[Edge]int
	// NodeLoad maps each node to the number of circuits passing *through*
	// it (excluding endpoints). Paper §2: node contention has no
	// measurable cost on the iPSC-860, but we report it anyway.
	NodeLoad map[int]int
	// MaxEdgeLoad is the maximum circuit count over any directed edge;
	// 1 means the step is edge-contention-free.
	MaxEdgeLoad int
	// MaxNodeLoad is the maximum pass-through count over any node.
	MaxNodeLoad int
}

// EdgeContentionFree reports whether no directed link carries more than
// one circuit.
func (r ContentionReport) EdgeContentionFree() bool { return r.MaxEdgeLoad <= 1 }

// ContendedEdges returns the edges shared by ≥2 circuits, sorted for
// deterministic output.
func (r ContentionReport) ContendedEdges() []Edge {
	var out []Edge
	for e, c := range r.EdgeLoad {
		if c > 1 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// AnalyzeStep computes the contention report for a set of simultaneous
// transfers. Transfers with Src == Dst are ignored.
func (h *Hypercube) AnalyzeStep(step []Transfer) (ContentionReport, error) {
	r := ContentionReport{
		EdgeLoad: make(map[Edge]int),
		NodeLoad: make(map[int]int),
	}
	for _, tr := range step {
		if tr.Src == tr.Dst {
			continue
		}
		route, err := h.Route(tr.Src, tr.Dst)
		if err != nil {
			return r, fmt.Errorf("transfer %d→%d: %w", tr.Src, tr.Dst, err)
		}
		for i := 0; i+1 < len(route); i++ {
			e := Edge{From: route[i], To: route[i+1]}
			r.EdgeLoad[e]++
			if c := r.EdgeLoad[e]; c > r.MaxEdgeLoad {
				r.MaxEdgeLoad = c
			}
		}
		for _, v := range route[1 : len(route)-1] {
			r.NodeLoad[v]++
			if c := r.NodeLoad[v]; c > r.MaxNodeLoad {
				r.MaxNodeLoad = c
			}
		}
	}
	return r, nil
}

// XORStep returns the transfer set of step i of the Schmiermund–Seidel
// schedule: every node p exchanges with p XOR i. The schedule is the
// paper's Optimal Circuit-Switched algorithm (§4.2): for i = 1..2^d−1 the
// steps are pairwise exchanges and each step is edge-contention-free.
func (h *Hypercube) XORStep(i int) []Transfer {
	step := make([]Transfer, 0, h.n)
	for p := 0; p < h.n; p++ {
		step = append(step, Transfer{Src: p, Dst: p ^ i})
	}
	return step
}

// VerifyXORScheduleContentionFree checks that every step i = 1..2^d−1 of
// the XOR schedule is edge-contention-free under e-cube routing, returning
// the first offending step or 0 if all are clean.
func (h *Hypercube) VerifyXORScheduleContentionFree() (int, error) {
	for i := 1; i < h.n; i++ {
		r, err := h.AnalyzeStep(h.XORStep(i))
		if err != nil {
			return i, err
		}
		if !r.EdgeContentionFree() {
			return i, nil
		}
	}
	return 0, nil
}

// NaiveStep returns the transfer set of step i of the naive
// complete-exchange schedule in which every node simultaneously sends its
// i-th block to node i. All n−1 circuits converge on one destination, so
// the step suffers heavy edge contention for d ≥ 2 — the contrast that
// motivates the carefully scheduled algorithms of §4.2.
func (h *Hypercube) NaiveStep(i int) []Transfer {
	step := make([]Transfer, 0, h.n-1)
	for p := 0; p < h.n; p++ {
		if p != i {
			step = append(step, Transfer{Src: p, Dst: i})
		}
	}
	return step
}

// ShiftStep returns the transfer set in which node p sends to (p+i) mod n.
// Cyclic shifts are, perhaps surprisingly, edge-contention-free under
// e-cube routing; they are provided for schedule experiments.
func (h *Hypercube) ShiftStep(i int) []Transfer {
	step := make([]Transfer, 0, h.n)
	for p := 0; p < h.n; p++ {
		step = append(step, Transfer{Src: p, Dst: (p + i) & (h.n - 1)})
	}
	return step
}
