package topology

import (
	"testing"
)

func TestGridConstructionErrors(t *testing.T) {
	if _, err := NewTorus(); err == nil {
		t.Error("zero-dimension torus must fail")
	}
	if _, err := NewTorus(4, 1); err == nil {
		t.Error("radix 1 must fail")
	}
	if _, err := NewMesh(0, 4); err == nil {
		t.Error("radix 0 must fail")
	}
	if _, err := NewTorus(1<<13, 1<<13); err == nil {
		t.Error("oversized torus must fail")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{"hypercube-0", "hypercube-7", "torus-4x4x4", "torus-3", "mesh-5x3", "mesh-2x2x2"} {
		net, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if net.Name() != spec {
			t.Errorf("ParseSpec(%q).Name() = %q", spec, net.Name())
		}
		again, err := ParseSpec(net.Name())
		if err != nil || again.Name() != spec {
			t.Errorf("%s does not round-trip: %v", spec, err)
		}
	}
	// Aliases and case-insensitivity.
	if net, err := ParseSpec(" Cube-3 "); err != nil || net.Name() != "hypercube-3" {
		t.Errorf("cube alias: %v", err)
	}
	for _, bad := range []string{"", "torus", "torus-", "torus-4y4", "ring-9", "hypercube-x", "mesh-4x-2", "hypercube-31"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) must fail", bad)
		}
	}
}

func TestGridBasics(t *testing.T) {
	tor := MustParseSpec("torus-4x4x4")
	if tor.Nodes() != 64 || tor.NumDims() != 3 || tor.Diameter() != 6 {
		t.Fatalf("torus-4x4x4 basics wrong: %d nodes, %d dims, diameter %d",
			tor.Nodes(), tor.NumDims(), tor.Diameter())
	}
	if tor.Stride(0) != 1 || tor.Stride(1) != 4 || tor.Stride(2) != 16 {
		t.Error("strides wrong")
	}
	if tor.TotalLinks() != 64*6 {
		t.Errorf("torus-4x4x4 TotalLinks = %d, want %d", tor.TotalLinks(), 64*6)
	}

	mesh := MustParseSpec("mesh-3x3")
	if mesh.Diameter() != 4 {
		t.Errorf("mesh-3x3 diameter = %d", mesh.Diameter())
	}
	// 2·(r−1) directed links per row, 3 rows per dimension, 2 dimensions.
	if mesh.TotalLinks() != 2*2*3*2 {
		t.Errorf("mesh-3x3 TotalLinks = %d", mesh.TotalLinks())
	}
	// Corner, edge and center degrees.
	if got := len(mesh.Neighbors(0)); got != 2 {
		t.Errorf("corner degree %d", got)
	}
	if got := len(mesh.Neighbors(1)); got != 3 {
		t.Errorf("edge degree %d", got)
	}
	if got := len(mesh.Neighbors(4)); got != 4 {
		t.Errorf("center degree %d", got)
	}
	// Torus degree is uniform 2k for radices > 2.
	for p := 0; p < tor.Nodes(); p++ {
		if got := len(tor.Neighbors(p)); got != 6 {
			t.Fatalf("torus node %d degree %d", p, got)
		}
	}
	// A radix-2 torus dimension contributes one distinct neighbor.
	t22 := MustParseSpec("torus-2x2")
	if got := len(t22.Neighbors(0)); got != 2 {
		t.Errorf("torus-2x2 degree %d, want 2", got)
	}
}

// Distance must be a metric consistent with shortest paths: symmetric,
// triangle-inequality-respecting, and equal to the route length.
func TestGridDistanceIsRouteLength(t *testing.T) {
	for _, spec := range []string{"torus-5x3", "mesh-4x4", "torus-2x3x2"} {
		net := MustParseSpec(spec)
		n := net.Nodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if net.Distance(a, b) != net.Distance(b, a) {
					t.Fatalf("%s: asymmetric distance %d,%d", spec, a, b)
				}
				r, err := net.Route(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if len(r)-1 != net.Distance(a, b) {
					t.Fatalf("%s: route %d→%d length %d, distance %d",
						spec, a, b, len(r)-1, net.Distance(a, b))
				}
			}
		}
	}
}

// Every directed link slot must be unique per directed link, in range,
// and the usable-slot census must match TotalLinks.
func TestLinkSlotsUniqueAndCounted(t *testing.T) {
	for _, spec := range []string{"hypercube-4", "torus-4x4", "torus-2x3", "mesh-3x3", "torus-2x2"} {
		net := MustParseSpec(spec)
		seen := make(map[int]bool)
		for p := 0; p < net.Nodes(); p++ {
			for _, q := range net.Neighbors(p) {
				slot := net.LinkSlot(p, q)
				if slot < 0 || slot >= net.Nodes()*net.Degree() {
					t.Fatalf("%s: slot %d out of range", spec, slot)
				}
				if seen[slot] {
					t.Fatalf("%s: duplicate slot %d for %d→%d", spec, slot, p, q)
				}
				seen[slot] = true
			}
		}
		if len(seen) != net.TotalLinks() {
			t.Errorf("%s: %d distinct link slots, TotalLinks says %d", spec, len(seen), net.TotalLinks())
		}
	}
}

func TestAveragePathLengthMatchesEnumeration(t *testing.T) {
	for _, spec := range []string{"hypercube-4", "torus-4x3", "mesh-3x2x2"} {
		net := MustParseSpec(spec)
		n := net.Nodes()
		total, pairs := 0, 0
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					total += net.Distance(a, b)
					pairs++
				}
			}
		}
		want := float64(total) / float64(pairs)
		if got := net.AveragePathLength(); got < want-1e-9 || got > want+1e-9 {
			t.Errorf("%s: AveragePathLength %v, enumeration %v", spec, got, want)
		}
	}
}

// SubBlocks must partition the node set into spans of agreeing outer
// digits, generalizing Hypercube.Subcubes.
func TestSubBlocksPartition(t *testing.T) {
	net := MustParseSpec("torus-3x2x4")
	blocks, err := SubBlocks(net, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	span, _ := SpanSize(net, 1, 2)
	if span != 8 {
		t.Fatalf("span = %d", span)
	}
	seen := make(map[int]bool)
	for _, blk := range blocks {
		if len(blk) != span {
			t.Fatalf("block size %d, want %d", len(blk), span)
		}
		for _, p := range blk {
			if seen[p] {
				t.Fatalf("node %d in two blocks", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != net.Nodes() {
		t.Fatalf("blocks cover %d of %d nodes", len(seen), net.Nodes())
	}
	if _, err := SubBlocks(net, 2, 2); err == nil {
		t.Error("out-of-range field must fail")
	}
}

// PhaseFields on a hypercube must agree with the original bit-range
// method.
func TestPhaseFieldsMatchesHypercube(t *testing.T) {
	h := MustNew(7)
	for _, groups := range [][]int{{7}, {3, 4}, {1, 2, 4}, {1, 1, 1, 1, 1, 1, 1}} {
		want, err := h.PhaseFields(groups)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PhaseFields(h, groups)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %v vs %v", groups, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: %v vs %v", groups, got, want)
			}
		}
	}
	if _, err := PhaseFields(h, []int{3, 3}); err == nil {
		t.Error("bad grouping must fail")
	}
}

// The generalized contention analyzer must agree with the hypercube
// method, and cyclic shifts within a torus must stay inside their
// sub-block.
func TestAnalyzeOnGrids(t *testing.T) {
	h := MustNew(4)
	step := h.XORStep(5)
	want, err := h.AnalyzeStep(step)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Analyze(h, step)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxEdgeLoad != want.MaxEdgeLoad || len(got.EdgeLoad) != len(want.EdgeLoad) {
		t.Error("Analyze disagrees with AnalyzeStep")
	}

	tor := MustParseSpec("torus-4x4")
	r, err := Analyze(tor, ShiftStep(tor, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxEdgeLoad < 1 {
		t.Error("shift step must use links")
	}
	if n, err := Analyze(tor, NaiveStep(tor, 0)); err != nil || n.MaxEdgeLoad <= r.MaxEdgeLoad {
		t.Errorf("naive step should contend harder than a shift: %d vs %d (%v)",
			n.MaxEdgeLoad, r.MaxEdgeLoad, err)
	}
}

// Routes between nodes that differ only inside a dimension field must
// stay inside the field's sub-block — the property the multiphase
// exchange planner relies on.
func TestRoutesStayInSubBlock(t *testing.T) {
	net := MustParseSpec("torus-3x4x2")
	blocks, err := SubBlocks(net, 1, 1) // the radix-4 middle dimension
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range blocks {
		members := make(map[int]bool, len(blk))
		for _, p := range blk {
			members[p] = true
		}
		for _, a := range blk {
			for _, b := range blk {
				route, err := net.Route(a, b)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range route {
					if !members[v] {
						t.Fatalf("route %d→%d leaves its sub-block at %d", a, b, v)
					}
				}
			}
		}
	}
}
