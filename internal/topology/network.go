package topology

import "fmt"

// Network is the abstract interconnect every layer above routing is
// written against: a set of nodes labelled by mixed-radix coordinates
// with deterministic dimension-ordered routing. The three concrete
// implementations are Hypercube (all radices 2, bit-trick fast paths),
// Torus (wraparound mixed-radix grid) and Mesh (open boundaries).
//
// Node labels are integers in [0, Nodes()): label p decomposes into
// digits p = Σ c_i·Stride(i) with 0 ≤ c_i < Dims()[i], dimension 0 being
// the least significant. On a hypercube the digits are the label bits.
//
// Routing is dimension-ordered ("e-cube" on the hypercube): a route
// corrects the lowest differing dimension first, one link per hop; on a
// torus each dimension takes the shorter wrap direction (ties toward
// increasing coordinates). Under hop-level hold-and-wait acquisition,
// dimension-ordered routing is deadlock-free on hypercubes and meshes
// (links are acquired in a fixed global order), but torus wraparound
// reintroduces cyclic waits within a ring — the classical result that
// k-ary n-cubes need virtual channels; package circuit demonstrates
// both behaviours. The path-level simulator (package simnet) reserves
// whole circuits atomically, so it is deadlock-free on every shape. A
// route between nodes differing only inside a dimension group never
// leaves that group's sub-block — the property the multiphase exchange
// planner relies on.
type Network interface {
	// Name returns the canonical registry spelling, e.g. "hypercube-7",
	// "torus-4x4x4", "mesh-8x8". ParseSpec(Name()) round-trips.
	Name() string
	// Nodes returns the node count.
	Nodes() int
	// Contains reports whether label p names a node.
	Contains(p int) bool
	// NumDims returns the number of coordinate dimensions.
	NumDims() int
	// Dims returns the per-dimension radices, dimension 0 first. The
	// returned slice is a fresh copy.
	Dims() []int
	// Stride returns the label stride of dimension i: Π_{j<i} radix j.
	Stride(i int) int
	// Degree returns the directed-link slot stride per node: LinkSlot
	// values fall in [0, Nodes()·Degree()). Some slots may be unused
	// (mesh boundaries, radix-2 rings).
	Degree() int
	// Neighbors returns the distinct nodes one link away from p, in
	// dimension order.
	Neighbors(p int) []int
	// Distance returns the routed hop count between two node labels.
	Distance(a, b int) int
	// Diameter returns the maximum Distance over all node pairs — the
	// weight of a global synchronization (150·Diameter µs on the
	// iPSC-860 model, §7.3; the hypercube's diameter is its dimension).
	Diameter() int
	// Route returns the dimension-ordered route from src to dst as the
	// node sequence visited, beginning with src and ending with dst.
	Route(src, dst int) ([]int, error)
	// AppendRoute is Route appending into buf (contents discarded,
	// storage reused) without validation — the allocation-free form the
	// simulator's hot loops use. Both endpoints must be valid nodes.
	AppendRoute(buf []int, src, dst int) []int
	// RouteEdges returns the directed edges of the route from src to dst.
	RouteEdges(src, dst int) ([]Edge, error)
	// LinkSlot returns the directed-link slot id of the link from one
	// node to an adjacent one, unique per directed link, in
	// [0, Nodes()·Degree()). from and to must be neighbors.
	LinkSlot(from, to int) int
	// TotalLinks returns the number of usable directed links.
	TotalLinks() int
	// AveragePathLength returns the mean routed distance over all
	// ordered node pairs with src ≠ dst.
	AveragePathLength() float64
}

// NumDims-related helpers shared by the exchange planner.

// PhaseFields returns the dimension ranges (lo, width) used by each phase
// of a multiphase exchange whose grouping has the given group sizes, in
// phase order. Groups consume dimensions from the top down — phase 1 uses
// the highest g_1 dimensions — generalizing the §5.2 bit-field layout to
// mixed-radix coordinate blocks (on a hypercube, dimensions are bits and
// this is exactly Hypercube.PhaseFields).
func PhaseFields(net Network, groups []int) ([][2]int, error) {
	k := net.NumDims()
	sum := 0
	for _, g := range groups {
		if g <= 0 {
			return nil, fmt.Errorf("topology: nonpositive phase group %d", g)
		}
		sum += g
	}
	if sum != k {
		return nil, fmt.Errorf("topology: phase groups sum to %d, want %d dimensions", sum, k)
	}
	out := make([][2]int, len(groups))
	start := k - 1
	for j, g := range groups {
		lo := start - g + 1
		out[j] = [2]int{lo, g}
		start = lo - 1
	}
	return out, nil
}

// SpanSize returns the number of nodes in one sub-block of the dimension
// field [lo, lo+w): the product of the radices of those dimensions (2^w
// on a hypercube).
func SpanSize(net Network, lo, w int) (int, error) {
	if w < 0 || lo < 0 || lo+w > net.NumDims() {
		return 0, fmt.Errorf("topology: dimension field [%d,%d) not in %s", lo, lo+w, net.Name())
	}
	span := 1
	dims := net.Dims()
	for i := lo; i < lo+w; i++ {
		span *= dims[i]
	}
	return span, nil
}

// SubBlocks partitions the node set into the sub-blocks of the dimension
// field [lo, lo+w): each block lists, in increasing field value, the
// nodes that agree on every digit outside the field. This generalizes
// Hypercube.Subcubes to mixed-radix coordinate blocks; phase j of the
// multiphase exchange operates simultaneously on all blocks of its field.
func SubBlocks(net Network, lo, w int) ([][]int, error) {
	span, err := SpanSize(net, lo, w)
	if err != nil {
		return nil, err
	}
	stride := net.Stride(lo)
	n := net.Nodes()
	outer := n / (stride * span)
	blocks := make([][]int, 0, n/span)
	for hi := 0; hi < outer; hi++ {
		for low := 0; low < stride; low++ {
			fixed := hi*stride*span + low
			block := make([]int, span)
			for v := 0; v < span; v++ {
				block[v] = fixed + v*stride
			}
			blocks = append(blocks, block)
		}
	}
	return blocks, nil
}

// Analyze computes the contention report for a set of simultaneous
// transfers routed on any network — the generalization of
// Hypercube.AnalyzeStep. Transfers with Src == Dst are ignored.
func Analyze(net Network, step []Transfer) (ContentionReport, error) {
	r := ContentionReport{
		EdgeLoad: make(map[Edge]int),
		NodeLoad: make(map[int]int),
	}
	for _, tr := range step {
		if tr.Src == tr.Dst {
			continue
		}
		route, err := net.Route(tr.Src, tr.Dst)
		if err != nil {
			return r, fmt.Errorf("transfer %d→%d: %w", tr.Src, tr.Dst, err)
		}
		for i := 0; i+1 < len(route); i++ {
			e := Edge{From: route[i], To: route[i+1]}
			r.EdgeLoad[e]++
			if c := r.EdgeLoad[e]; c > r.MaxEdgeLoad {
				r.MaxEdgeLoad = c
			}
		}
		for _, v := range route[1 : len(route)-1] {
			r.NodeLoad[v]++
			if c := r.NodeLoad[v]; c > r.MaxNodeLoad {
				r.MaxNodeLoad = c
			}
		}
	}
	return r, nil
}

// ShiftStep returns the transfer set in which node p sends to
// (p+i) mod n — the cyclic-shift step family the generalized multiphase
// schedule uses on non-binary radices.
func ShiftStep(net Network, i int) []Transfer {
	n := net.Nodes()
	step := make([]Transfer, 0, n)
	for p := 0; p < n; p++ {
		step = append(step, Transfer{Src: p, Dst: (p + i) % n})
	}
	return step
}

// NaiveStep returns the transfer set of step i of the naive
// complete-exchange schedule: every node simultaneously sends to node i.
func NaiveStep(net Network, i int) []Transfer {
	n := net.Nodes()
	step := make([]Transfer, 0, n-1)
	for p := 0; p < n; p++ {
		if p != i {
			step = append(step, Transfer{Src: p, Dst: i})
		}
	}
	return step
}
