package topology

import (
	"errors"
	"reflect"
	"testing"
)

func mustOverlay(t *testing.T, base Network, fs FaultSet) *Degraded {
	t.Helper()
	d, err := Overlay(base, fs)
	if err != nil {
		t.Fatalf("Overlay(%s, %+v): %v", base.Name(), fs, err)
	}
	return d
}

// A zero-fault overlay must be observationally identical to its base:
// same name (so every memoization key collides with the bare network's),
// same routes, same metrics.
func TestDegradedZeroFaultTransparent(t *testing.T) {
	for _, spec := range []string{"hypercube-5", "torus-4x4x4", "mesh-5x3"} {
		base := MustParseSpec(spec)
		d := mustOverlay(t, base, FaultSet{})
		if !d.Healthy() {
			t.Fatalf("%s: zero-fault overlay not Healthy", spec)
		}
		if d.Name() != base.Name() {
			t.Fatalf("%s: zero-fault Name() = %q, want base name", spec, d.Name())
		}
		if d.HealthDigest() != "ok" {
			t.Fatalf("%s: HealthDigest = %q, want ok", spec, d.HealthDigest())
		}
		if err := CheckOperational(d); err != nil {
			t.Fatalf("%s: CheckOperational: %v", spec, err)
		}
		if d.Diameter() != base.Diameter() || d.TotalLinks() != base.TotalLinks() ||
			d.AveragePathLength() != base.AveragePathLength() {
			t.Fatalf("%s: zero-fault metrics differ from base", spec)
		}
		n := base.Nodes()
		for src := 0; src < n; src++ {
			if !reflect.DeepEqual(d.Neighbors(src), base.Neighbors(src)) {
				t.Fatalf("%s: Neighbors(%d) differ", spec, src)
			}
			for dst := 0; dst < n; dst += 3 {
				want, _ := base.Route(src, dst)
				got, err := d.Route(src, dst)
				if err != nil || !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: Route(%d,%d) = %v, %v; want %v", spec, src, dst, got, err, want)
				}
				if d.Distance(src, dst) != base.Distance(src, dst) {
					t.Fatalf("%s: Distance(%d,%d) differs", spec, src, dst)
				}
			}
		}
	}
}

func TestAsHypercube(t *testing.T) {
	h := MustNew(4)
	if got, ok := AsHypercube(h); !ok || got != h {
		t.Fatalf("AsHypercube(bare) = %v, %v", got, ok)
	}
	if got, ok := AsHypercube(mustOverlay(t, h, FaultSet{})); !ok || got != h {
		t.Fatalf("AsHypercube(zero-fault overlay) = %v, %v", got, ok)
	}
	faulty := mustOverlay(t, h, FaultSet{DeadLinks: []Link{{A: 0, B: 1}}})
	if _, ok := AsHypercube(faulty); ok {
		t.Fatal("AsHypercube(faulty overlay) must refuse the fast path")
	}
	if _, ok := AsHypercube(MustParseSpec("torus-4x4")); ok {
		t.Fatal("AsHypercube(torus) = true")
	}
}

// One dead wire on a torus: unaffected pairs keep the exact base route;
// broken pairs detour over a live shortest path.
func TestDegradedDetourTorus(t *testing.T) {
	base := MustParseSpec("torus-4x4")
	d := mustOverlay(t, base, FaultSet{DeadLinks: []Link{{A: 0, B: 1}}})

	if d.Healthy() {
		t.Fatal("overlay with a dead link reports Healthy")
	}
	if got, want := d.Name(), "torus-4x4!dl=0-1"; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	if got, want := d.HealthDigest(), "dl=0-1"; got != want {
		t.Fatalf("HealthDigest = %q, want %q", got, want)
	}
	if err := d.Operational(); err != nil {
		t.Fatalf("one dead wire on a torus must stay operational: %v", err)
	}

	// The wire is dead in both directions and gone from Neighbors.
	for _, nb := range d.Neighbors(0) {
		if nb == 1 {
			t.Fatal("dead wire 0-1 still in Neighbors(0)")
		}
	}
	if d.LinkAlive(0, 1) || d.LinkAlive(1, 0) {
		t.Fatal("dead wire reports LinkAlive")
	}

	n := base.Nodes()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			route, err := d.Route(src, dst)
			if err != nil {
				t.Fatalf("route %d→%d: %v", src, dst, err)
			}
			for i := 0; i+1 < len(route); i++ {
				if !d.LinkAlive(route[i], route[i+1]) {
					t.Fatalf("route %d→%d crosses dead wire at hop %d→%d: %v",
						src, dst, route[i], route[i+1], route)
				}
				if base.Distance(route[i], route[i+1]) != 1 {
					t.Fatalf("route %d→%d hop %d→%d is not a link", src, dst, route[i], route[i+1])
				}
			}
			baseRoute, _ := base.Route(src, dst)
			clean := true
			for i := 0; i+1 < len(baseRoute); i++ {
				if !d.wireUp(baseRoute[i], baseRoute[i+1]) {
					clean = false
					break
				}
			}
			if clean && !reflect.DeepEqual(route, baseRoute) {
				t.Fatalf("unaffected pair %d→%d changed route: %v vs %v", src, dst, route, baseRoute)
			}
			if !clean && len(route)-1 != d.Distance(src, dst) {
				t.Fatalf("detour %d→%d hops %d != Distance %d", src, dst, len(route)-1, d.Distance(src, dst))
			}
		}
	}
	// 4x4 torus has 64 directed links; one dead wire removes 2.
	if got, want := d.TotalLinks(), base.TotalLinks()-2; got != want {
		t.Fatalf("TotalLinks = %d, want %d", got, want)
	}
}

func TestDegradedUnroutable(t *testing.T) {
	// A 1-D mesh severed in the middle partitions the line.
	base := MustParseSpec("mesh-6")
	d := mustOverlay(t, base, FaultSet{DeadLinks: []Link{{A: 2, B: 3}}})
	if _, err := d.Route(0, 5); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("Route across severed mesh: %v, want ErrUnroutable", err)
	}
	if err := d.Connected(); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("Connected on severed mesh: %v, want ErrUnroutable", err)
	}
	if err := CheckOperational(d); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("CheckOperational on severed mesh: %v, want ErrUnroutable", err)
	}
	// Same side of the cut still routes.
	if _, err := d.Route(0, 2); err != nil {
		t.Fatalf("Route within live partition: %v", err)
	}

	// A dead node makes a complete exchange impossible even though the
	// survivors stay connected.
	d2 := mustOverlay(t, MustParseSpec("torus-4x4"), FaultSet{DeadNodes: []int{5}})
	if err := d2.Connected(); err != nil {
		t.Fatalf("torus minus one node must stay connected: %v", err)
	}
	if err := d2.Operational(); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("Operational with dead node: %v, want ErrUnroutable", err)
	}
	if _, err := d2.Route(5, 0); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("Route from dead node: %v, want ErrUnroutable", err)
	}
}

func TestDegradedSlowLinks(t *testing.T) {
	base := MustParseSpec("torus-4x4")
	d := mustOverlay(t, base, FaultSet{SlowLinks: []SlowLink{{Link: Link{A: 0, B: 1}, Factor: 2.5}}})
	if !d.HasSlowLinks() || d.MaxSlowFactor() != 2.5 {
		t.Fatalf("slow-link state wrong: has=%v max=%v", d.HasSlowLinks(), d.MaxSlowFactor())
	}
	if got := d.SlowFactor(base.LinkSlot(0, 1)); got != 2.5 {
		t.Fatalf("SlowFactor(0→1) = %v, want 2.5", got)
	}
	if got := d.SlowFactor(base.LinkSlot(1, 0)); got != 2.5 {
		t.Fatalf("SlowFactor(1→0) = %v, want 2.5 (both directions)", got)
	}
	if got := d.SlowFactor(base.LinkSlot(1, 2)); got != 1 {
		t.Fatalf("SlowFactor(healthy) = %v, want 1", got)
	}
	// Slow links do not change routes, only speeds.
	want, _ := base.Route(0, 1)
	got, err := d.Route(0, 1)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("slow wire changed route: %v, %v", got, err)
	}
	dist, slow, err := d.RouteMetrics(0, 1)
	if err != nil || dist != 1 || slow != 2.5 {
		t.Fatalf("RouteMetrics(0,1) = %d, %v, %v; want 1, 2.5", dist, slow, err)
	}
	if err := d.Operational(); err != nil {
		t.Fatalf("slow links must stay operational: %v", err)
	}
}

func TestFaultSetCanonicalization(t *testing.T) {
	base := MustParseSpec("torus-4x4")
	d := mustOverlay(t, base, FaultSet{
		DeadNodes: []int{7, 3, 7},
		DeadLinks: []Link{{A: 1, B: 0}, {A: 0, B: 1}, {A: 8, B: 12}},
		SlowLinks: []SlowLink{
			{Link: Link{A: 1, B: 0}, Factor: 2}, // dropped: that wire is dead
			{Link: Link{A: 6, B: 2}, Factor: 2},
			{Link: Link{A: 2, B: 6}, Factor: 3}, // duplicate, keeps max
		},
	})
	fs := d.Faults()
	if !reflect.DeepEqual(fs.DeadNodes, []int{3, 7}) {
		t.Fatalf("DeadNodes = %v", fs.DeadNodes)
	}
	if !reflect.DeepEqual(fs.DeadLinks, []Link{{A: 0, B: 1}, {A: 8, B: 12}}) {
		t.Fatalf("DeadLinks = %v", fs.DeadLinks)
	}
	if !reflect.DeepEqual(fs.SlowLinks, []SlowLink{{Link: Link{A: 2, B: 6}, Factor: 3}}) {
		t.Fatalf("SlowLinks = %v", fs.SlowLinks)
	}
	if got, want := d.HealthDigest(), "dn=3,7!dl=0-1,8-12!sl=2-6:3"; got != want {
		t.Fatalf("HealthDigest = %q, want %q", got, want)
	}

	// Validation failures.
	for _, bad := range []FaultSet{
		{DeadNodes: []int{99}},
		{DeadLinks: []Link{{A: 0, B: 5}}}, // not adjacent in torus-4x4
		{DeadLinks: []Link{{A: 0, B: 0}}},
		{SlowLinks: []SlowLink{{Link: Link{A: 0, B: 1}, Factor: 0.5}}},
		{SlowLinks: []SlowLink{{Link: Link{A: 0, B: 1}, Factor: 1}}},
	} {
		if _, err := Overlay(base, bad); err == nil {
			t.Fatalf("Overlay(%+v) accepted invalid fault set", bad)
		}
	}
	if _, err := Overlay(d, FaultSet{}); err == nil {
		t.Fatal("Overlay over an already degraded network must be rejected")
	}
}

// Degraded names round-trip through ParseSpec to an equivalent overlay.
func TestDegradedSpecRoundTrip(t *testing.T) {
	d := mustOverlay(t, MustParseSpec("torus-4x4x4"), FaultSet{
		DeadNodes: []int{3, 5},
		DeadLinks: []Link{{A: 0, B: 1}, {A: 8, B: 9}},
		SlowLinks: []SlowLink{{Link: Link{A: 2, B: 6}, Factor: 2.5}},
	})
	net, err := ParseSpec(d.Name())
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", d.Name(), err)
	}
	d2, ok := net.(*Degraded)
	if !ok {
		t.Fatalf("ParseSpec(%q) = %T, want *Degraded", d.Name(), net)
	}
	if d2.Name() != d.Name() || !reflect.DeepEqual(d2.Faults(), d.Faults()) {
		t.Fatalf("round-trip mismatch: %q vs %q", d2.Name(), d.Name())
	}
	base, digest := SplitSpec(d.Name())
	if base != "torus-4x4x4" || digest != "dn=3,5!dl=0-1,8-9!sl=2-6:2.5" {
		t.Fatalf("SplitSpec = %q, %q", base, digest)
	}

	for _, bad := range []string{
		"torus-4x4!dl=0-5",     // not adjacent
		"torus-4x4!xx=1",       // unknown group
		"torus-4x4!dn=",        // empty value
		"torus-4x4!sl=0-1:0.5", // factor ≤ 1
		"torus-4x4!dl=0",       // malformed link
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted a bad degraded spec", bad)
		}
	}
}

// HealthDigestOf and SplitSpec on plain networks.
func TestHealthDigestOfPlain(t *testing.T) {
	if got := HealthDigestOf(MustNew(3)); got != "ok" {
		t.Fatalf("HealthDigestOf(hypercube) = %q", got)
	}
	base, digest := SplitSpec("hypercube-3")
	if base != "hypercube-3" || digest != "" {
		t.Fatalf("SplitSpec(plain) = %q, %q", base, digest)
	}
}
