package topology

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrUnroutable is the sentinel wrapped by every routing or planning
// failure caused by faults severing the network: a pair of live nodes
// with no path through the live links, or a complete exchange requested
// on a fabric with dead nodes. Callers test it with errors.Is.
var ErrUnroutable = errors.New("unroutable: faults sever the network")

// Link names one undirected wire by its two adjacent endpoints. The two
// directed LinkSlot resources of the wire fail together: a dead link is
// dead in both directions, a slow link is slow in both.
type Link struct {
	A, B int
}

// canon returns the link with endpoints ordered A < B.
func (l Link) canon() Link {
	if l.B < l.A {
		l.A, l.B = l.B, l.A
	}
	return l
}

func (l Link) String() string { return fmt.Sprintf("%d-%d", l.A, l.B) }

// SlowLink is one wire running at reduced speed: transmissions crossing
// it take Factor times longer (Factor > 1).
type SlowLink struct {
	Link
	Factor float64
}

// FaultSet is the declarative fault state of one network: which nodes
// are down, which wires are severed, and which wires are slow. The zero
// value means fully healthy. Overlay canonicalizes a set (sorted,
// deduplicated, dead wires dominate slow entries), so two FaultSets
// describing the same faults yield the same HealthDigest.
type FaultSet struct {
	DeadNodes []int
	DeadLinks []Link
	SlowLinks []SlowLink
}

// Empty reports whether the set carries no faults at all.
func (fs FaultSet) Empty() bool {
	return len(fs.DeadNodes) == 0 && len(fs.DeadLinks) == 0 && len(fs.SlowLinks) == 0
}

// Clone returns a deep copy.
func (fs FaultSet) Clone() FaultSet {
	return FaultSet{
		DeadNodes: append([]int(nil), fs.DeadNodes...),
		DeadLinks: append([]Link(nil), fs.DeadLinks...),
		SlowLinks: append([]SlowLink(nil), fs.SlowLinks...),
	}
}

// canonicalize validates fs against base and returns the canonical form:
// nodes and link endpoints in range, link endpoints adjacent, slow
// factors > 1 and finite; everything sorted and deduplicated, slow
// entries for dead wires dropped (the dead wire dominates), duplicate
// slow entries collapsed to the worst factor.
func (fs FaultSet) canonicalize(base Network) (FaultSet, error) {
	var out FaultSet
	seenNode := make(map[int]bool)
	for _, p := range fs.DeadNodes {
		if !base.Contains(p) {
			return out, fmt.Errorf("topology: dead node %d not in %s", p, base.Name())
		}
		if !seenNode[p] {
			seenNode[p] = true
			out.DeadNodes = append(out.DeadNodes, p)
		}
	}
	sort.Ints(out.DeadNodes)

	checkLink := func(l Link, kind string) error {
		if !base.Contains(l.A) || !base.Contains(l.B) {
			return fmt.Errorf("topology: %s link %s not in %s", kind, l, base.Name())
		}
		if l.A == l.B || base.Distance(l.A, l.B) != 1 {
			return fmt.Errorf("topology: %s link %s: nodes are not adjacent in %s", kind, l, base.Name())
		}
		return nil
	}
	seenDead := make(map[Link]bool)
	for _, l := range fs.DeadLinks {
		l = l.canon()
		if err := checkLink(l, "dead"); err != nil {
			return out, err
		}
		if !seenDead[l] {
			seenDead[l] = true
			out.DeadLinks = append(out.DeadLinks, l)
		}
	}
	sort.Slice(out.DeadLinks, func(i, j int) bool {
		a, b := out.DeadLinks[i], out.DeadLinks[j]
		return a.A < b.A || (a.A == b.A && a.B < b.B)
	})

	slow := make(map[Link]float64)
	for _, sl := range fs.SlowLinks {
		l := sl.canon()
		if err := checkLink(l, "slow"); err != nil {
			return out, err
		}
		if !(sl.Factor > 1) || sl.Factor > 1e12 {
			return out, fmt.Errorf("topology: slow link %s factor %v (want a finite factor > 1)", l, sl.Factor)
		}
		if seenDead[l] {
			continue // a dead wire has no speed
		}
		if sl.Factor > slow[l] {
			slow[l] = sl.Factor
		}
	}
	for l, f := range slow {
		out.SlowLinks = append(out.SlowLinks, SlowLink{Link: l, Factor: f})
	}
	sort.Slice(out.SlowLinks, func(i, j int) bool {
		a, b := out.SlowLinks[i], out.SlowLinks[j]
		return a.A < b.A || (a.A == b.A && a.B < b.B)
	})
	return out, nil
}

// digest renders the canonical fault suffix: "!"-joined groups of dead
// nodes (dn), dead links (dl) and slow links (sl), empty for no faults.
// The format is part of the spec grammar — ParseSpec parses it back.
func (fs FaultSet) digest() string {
	var groups []string
	if len(fs.DeadNodes) > 0 {
		parts := make([]string, len(fs.DeadNodes))
		for i, p := range fs.DeadNodes {
			parts[i] = strconv.Itoa(p)
		}
		groups = append(groups, "dn="+strings.Join(parts, ","))
	}
	if len(fs.DeadLinks) > 0 {
		parts := make([]string, len(fs.DeadLinks))
		for i, l := range fs.DeadLinks {
			parts[i] = l.String()
		}
		groups = append(groups, "dl="+strings.Join(parts, ","))
	}
	if len(fs.SlowLinks) > 0 {
		parts := make([]string, len(fs.SlowLinks))
		for i, sl := range fs.SlowLinks {
			parts[i] = fmt.Sprintf("%s:%s", sl.Link, strconv.FormatFloat(sl.Factor, 'g', -1, 64))
		}
		groups = append(groups, "sl="+strings.Join(parts, ","))
	}
	return strings.Join(groups, "!")
}

// Degraded overlays a fault state on any Network: dead nodes, dead
// wires, and per-wire speed factors. It implements Network itself, so
// every layer above routing — the simulator, the cost model, the
// optimizer, the plan cache — prices and plans the degraded fabric
// through the same interface as a healthy one.
//
// Routing is fault-aware: a pair whose dimension-ordered base route only
// crosses live links keeps that exact route (so a zero-fault overlay is
// observationally identical to its base network), and a pair whose base
// route is broken detours over a breadth-first shortest path through the
// live graph, memoized per pair. When no live path exists, Route returns
// an error wrapping ErrUnroutable; AppendRoute — the allocation-free
// contract without an error return — panics with that error, so planning
// layers must gate on CheckOperational/Connected before replaying.
//
// Node labels are unchanged: Nodes(), Contains() and the LinkSlot space
// still describe the full fabric, with dead elements marked, not
// removed. A Degraded overlay is immutable after Overlay returns and
// safe for concurrent use; to change the fault state, build a new
// overlay from the base network.
type Degraded struct {
	base   Network
	fs     FaultSet
	name   string
	digest string

	deadNode []bool          // nil when no dead nodes
	linkDown []bool          // by base LinkSlot, both directions; nil when no dead links
	slowSlot map[int]float64 // by base LinkSlot, both directions; nil when no slow links
	maxSlow  float64

	detours sync.Map // int64(src)<<32 | dst → []int, only for broken base routes

	connOnce sync.Once
	connErr  error

	diamOnce sync.Once
	diam     int

	aplOnce sync.Once
	apl     float64

	linksOnce sync.Once
	links     int
}

var _ Network = (*Degraded)(nil)

// Overlay wraps base with the given fault set. The set is canonicalized
// and validated (see FaultSet.canonicalize); wrapping an already
// degraded network is an error — merge fault sets against the bare base
// instead, so the canonical digest stays unique.
func Overlay(base Network, fs FaultSet) (*Degraded, error) {
	if _, ok := base.(*Degraded); ok {
		return nil, fmt.Errorf("topology: cannot overlay faults on already degraded %s; overlay the base network", base.Name())
	}
	cfs, err := fs.canonicalize(base)
	if err != nil {
		return nil, err
	}
	d := &Degraded{base: base, fs: cfs, digest: cfs.digest()}
	if d.digest == "" {
		d.name = base.Name()
	} else {
		d.name = base.Name() + "!" + d.digest
	}
	if len(cfs.DeadNodes) > 0 {
		d.deadNode = make([]bool, base.Nodes())
		for _, p := range cfs.DeadNodes {
			d.deadNode[p] = true
		}
	}
	if len(cfs.DeadLinks) > 0 {
		d.linkDown = make([]bool, base.Nodes()*base.Degree())
		for _, l := range cfs.DeadLinks {
			d.linkDown[base.LinkSlot(l.A, l.B)] = true
			d.linkDown[base.LinkSlot(l.B, l.A)] = true
		}
	}
	if len(cfs.SlowLinks) > 0 {
		d.slowSlot = make(map[int]float64, 2*len(cfs.SlowLinks))
		d.maxSlow = 1
		for _, sl := range cfs.SlowLinks {
			d.slowSlot[base.LinkSlot(sl.A, sl.B)] = sl.Factor
			d.slowSlot[base.LinkSlot(sl.B, sl.A)] = sl.Factor
			if sl.Factor > d.maxSlow {
				d.maxSlow = sl.Factor
			}
		}
	}
	return d, nil
}

// Base returns the wrapped healthy network.
func (d *Degraded) Base() Network { return d.base }

// Faults returns a copy of the canonical fault set.
func (d *Degraded) Faults() FaultSet { return d.fs.Clone() }

// Healthy reports whether the overlay carries no faults at all — in
// which case every method delegates to the base network and Name()
// returns the base name unchanged, so memoization keys collide (by
// design) with the bare network's.
func (d *Degraded) Healthy() bool { return d.fs.Empty() }

// HealthDigest returns the canonical fault summary: "ok" when healthy,
// otherwise the "!"-joined dn/dl/sl groups that also suffix Name().
// Equal digests mean equal fault states; serving tiers key cached plans
// on it so a fault report invalidates exactly the affected entries.
func (d *Degraded) HealthDigest() string {
	if d.digest == "" {
		return "ok"
	}
	return d.digest
}

// Name returns the base spec when healthy, or the base spec with the
// canonical fault suffix ("torus-4x4!dl=0-1"). ParseSpec round-trips
// either form.
func (d *Degraded) Name() string { return d.name }

// NodeAlive reports whether node p is up.
func (d *Degraded) NodeAlive(p int) bool { return d.deadNode == nil || !d.deadNode[p] }

// LinkAlive reports whether the directed link from → to (which must be
// adjacent) and both its endpoints are usable.
func (d *Degraded) LinkAlive(from, to int) bool {
	return d.NodeAlive(from) && d.NodeAlive(to) && d.wireUp(from, to)
}

// wireUp reports whether the wire between two adjacent nodes is intact
// (ignoring node health).
func (d *Degraded) wireUp(from, to int) bool {
	return d.linkDown == nil || !d.linkDown[d.base.LinkSlot(from, to)]
}

// SlowFactor returns the speed factor of the directed-link slot (as
// returned by LinkSlot): 1 for full-speed links, > 1 for slow ones. The
// simulator scales circuit durations by the worst factor on the route.
func (d *Degraded) SlowFactor(slot int) float64 {
	if f, ok := d.slowSlot[slot]; ok {
		return f
	}
	return 1
}

// HasSlowLinks reports whether any wire runs below full speed.
func (d *Degraded) HasSlowLinks() bool { return len(d.slowSlot) > 0 }

// MaxSlowFactor returns the worst per-wire speed factor (1 when none).
func (d *Degraded) MaxSlowFactor() float64 {
	if d.maxSlow < 1 {
		return 1
	}
	return d.maxSlow
}

// Nodes, Contains and the digit geometry describe the full label space —
// dead elements are marked, not removed.
func (d *Degraded) Nodes() int          { return d.base.Nodes() }
func (d *Degraded) Contains(p int) bool { return d.base.Contains(p) }
func (d *Degraded) NumDims() int        { return d.base.NumDims() }
func (d *Degraded) Dims() []int         { return d.base.Dims() }
func (d *Degraded) Stride(i int) int    { return d.base.Stride(i) }
func (d *Degraded) Degree() int         { return d.base.Degree() }

// Neighbors returns the live nodes reachable from p over live wires, in
// base dimension order; nil when p itself is down.
func (d *Degraded) Neighbors(p int) []int {
	if d.Healthy() {
		return d.base.Neighbors(p)
	}
	if !d.NodeAlive(p) {
		return nil
	}
	all := d.base.Neighbors(p)
	out := all[:0]
	for _, q := range all {
		if d.LinkAlive(p, q) {
			out = append(out, q)
		}
	}
	return out
}

// LinkSlot and TotalLinks keep the base slot space; TotalLinks counts
// only the usable directed links that remain.
func (d *Degraded) LinkSlot(from, to int) int { return d.base.LinkSlot(from, to) }

func (d *Degraded) TotalLinks() int {
	if d.Healthy() {
		return d.base.TotalLinks()
	}
	d.linksOnce.Do(func() {
		seen := make(map[int]bool)
		for p := 0; p < d.base.Nodes(); p++ {
			if !d.NodeAlive(p) {
				continue
			}
			for _, q := range d.base.Neighbors(p) {
				if d.LinkAlive(p, q) {
					seen[d.base.LinkSlot(p, q)] = true
				}
			}
		}
		d.links = len(seen)
	})
	return d.links
}

// detourKey packs an ordered pair into the memo key.
func detourKey(src, dst int) int64 { return int64(src)<<32 | int64(uint32(dst)) }

// routeClean reports whether every hop of route crosses a live wire and
// every node on it is alive.
func (d *Degraded) routeClean(route []int) bool {
	for i, v := range route {
		if !d.NodeAlive(v) {
			return false
		}
		if i > 0 && !d.wireUp(route[i-1], v) {
			return false
		}
	}
	return true
}

// detour returns the memoized BFS shortest path src→dst through the live
// graph, or an ErrUnroutable-wrapping error. Only pairs whose base route
// is broken reach here, so the memo stays proportional to the damage,
// not to n². The returned slice is shared and must not be mutated.
func (d *Degraded) detour(src, dst int) ([]int, error) {
	if v, ok := d.detours.Load(detourKey(src, dst)); ok {
		if v == nil {
			return nil, d.unroutable(src, dst)
		}
		return v.([]int), nil
	}
	// BFS over live neighbors in base dimension order: deterministic,
	// shortest, and biased toward the base dimension-ordered style.
	n := d.base.Nodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int32(src)
	queue := []int{src}
	found := false
	for len(queue) > 0 && !found {
		p := queue[0]
		queue = queue[1:]
		for _, q := range d.Neighbors(p) {
			if parent[q] != -1 {
				continue
			}
			parent[q] = int32(p)
			if q == dst {
				found = true
				break
			}
			queue = append(queue, q)
		}
	}
	if !found {
		d.detours.Store(detourKey(src, dst), nil)
		return nil, d.unroutable(src, dst)
	}
	var rev []int
	for v := dst; ; v = int(parent[v]) {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	route := make([]int, len(rev))
	for i, v := range rev {
		route[len(rev)-1-i] = v
	}
	d.detours.Store(detourKey(src, dst), route)
	return route, nil
}

func (d *Degraded) unroutable(src, dst int) error {
	return fmt.Errorf("topology: %d→%d in %s: %w", src, dst, d.name, ErrUnroutable)
}

// routeFor resolves the fault-aware route src→dst into buf: the base
// dimension-ordered route when it is fully live, the memoized BFS detour
// otherwise.
func (d *Degraded) routeFor(buf []int, src, dst int) ([]int, error) {
	buf = d.base.AppendRoute(buf, src, dst)
	if d.routeClean(buf) {
		return buf, nil
	}
	if !d.NodeAlive(src) || !d.NodeAlive(dst) {
		return buf, fmt.Errorf("topology: %d→%d in %s: dead endpoint: %w", src, dst, d.name, ErrUnroutable)
	}
	det, err := d.detour(src, dst)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], det...), nil
}

// Route returns the fault-aware route from src to dst, or an error
// wrapping ErrUnroutable when the faults sever the pair.
func (d *Degraded) Route(src, dst int) ([]int, error) {
	if !d.Contains(src) || !d.Contains(dst) {
		return nil, fmt.Errorf("topology: route %d→%d outside %s", src, dst, d.name)
	}
	if d.Healthy() {
		return d.base.Route(src, dst)
	}
	return d.routeFor(nil, src, dst)
}

// AppendRoute is the allocation-free form; unroutable pairs panic with
// the ErrUnroutable-wrapping error, so replay layers must run behind a
// Connected/CheckOperational gate (the planners do).
func (d *Degraded) AppendRoute(buf []int, src, dst int) []int {
	if d.Healthy() {
		return d.base.AppendRoute(buf, src, dst)
	}
	out, err := d.routeFor(buf, src, dst)
	if err != nil {
		panic(err)
	}
	return out
}

// RouteEdges returns the directed edges of the fault-aware route.
func (d *Degraded) RouteEdges(src, dst int) ([]Edge, error) {
	p, err := d.Route(src, dst)
	if err != nil {
		return nil, err
	}
	edges := make([]Edge, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		edges = append(edges, Edge{From: p[i], To: p[i+1]})
	}
	return edges, nil
}

// Distance returns the fault-aware routed hop count. Unroutable pairs
// panic like AppendRoute; gate on Connected/CheckOperational first.
func (d *Degraded) Distance(a, b int) int {
	if d.Healthy() {
		return d.base.Distance(a, b)
	}
	if a == b {
		return 0
	}
	buf := d.base.AppendRoute(make([]int, 0, 16), a, b)
	if d.routeClean(buf) {
		return len(buf) - 1
	}
	det, err := d.detour(a, b)
	if err != nil {
		panic(err)
	}
	return len(det) - 1
}

// RouteMetrics returns the fault-aware routed hop count and the worst
// per-wire slow factor along that route (1 when it only crosses
// full-speed links). Unlike Distance it reports severed pairs as an
// error — the form the cost model uses.
func (d *Degraded) RouteMetrics(src, dst int) (dist int, slow float64, err error) {
	slow = 1
	if src == dst {
		return 0, 1, nil
	}
	route, err := d.routeFor(make([]int, 0, 16), src, dst)
	if err != nil {
		return 0, 1, err
	}
	if d.slowSlot != nil {
		for i := 0; i+1 < len(route); i++ {
			if f := d.SlowFactor(d.base.LinkSlot(route[i], route[i+1])); f > slow {
				slow = f
			}
		}
	}
	return len(route) - 1, slow, nil
}

// maxExactMetricNodes bounds the network size for which Diameter and
// AveragePathLength are recomputed exactly over the live graph; larger
// degraded networks fall back to documented pessimistic estimates
// (serving tiers never ask beyond reports and barrier weights).
const maxExactMetricNodes = 4096

// Diameter returns the maximum fault-aware distance over live routable
// pairs. Small networks (≤ maxExactMetricNodes) compute it exactly by
// BFS over the live graph; larger ones return the base diameter plus a
// two-hop detour allowance per dead wire — an upper estimate used only
// as the global-sync weight, consistently by both the model and the
// simulator (they see the same Network).
func (d *Degraded) Diameter() int {
	if d.Healthy() {
		return d.base.Diameter()
	}
	d.diamOnce.Do(func() {
		n := d.base.Nodes()
		if n > maxExactMetricNodes {
			d.diam = d.base.Diameter() + 2*len(d.fs.DeadLinks)
			return
		}
		dist := make([]int32, n)
		var queue []int
		for s := 0; s < n; s++ {
			if !d.NodeAlive(s) {
				continue
			}
			for i := range dist {
				dist[i] = -1
			}
			dist[s] = 0
			queue = append(queue[:0], s)
			for len(queue) > 0 {
				p := queue[0]
				queue = queue[1:]
				for _, q := range d.Neighbors(p) {
					if dist[q] == -1 {
						dist[q] = dist[p] + 1
						if int(dist[q]) > d.diam {
							d.diam = int(dist[q])
						}
						queue = append(queue, q)
					}
				}
			}
		}
	})
	return d.diam
}

// AveragePathLength returns the mean fault-aware routed distance over
// ordered live routable pairs; exact up to maxExactMetricNodes, the base
// value beyond (reports only).
func (d *Degraded) AveragePathLength() float64 {
	if d.Healthy() {
		return d.base.AveragePathLength()
	}
	d.aplOnce.Do(func() {
		n := d.base.Nodes()
		if n > maxExactMetricNodes {
			d.apl = d.base.AveragePathLength()
			return
		}
		total, pairs := 0.0, 0
		dist := make([]int32, n)
		var queue []int
		for s := 0; s < n; s++ {
			if !d.NodeAlive(s) {
				continue
			}
			for i := range dist {
				dist[i] = -1
			}
			dist[s] = 0
			queue = append(queue[:0], s)
			for len(queue) > 0 {
				p := queue[0]
				queue = queue[1:]
				for _, q := range d.Neighbors(p) {
					if dist[q] == -1 {
						dist[q] = dist[p] + 1
						queue = append(queue, q)
					}
				}
			}
			for t := 0; t < n; t++ {
				if t != s && dist[t] > 0 {
					total += float64(dist[t])
					pairs++
				}
			}
		}
		if pairs > 0 {
			d.apl = total / float64(pairs)
		}
	})
	return d.apl
}

// Connected reports (as nil) whether every pair of live nodes is
// routable over the live links; a severed partition returns an error
// wrapping ErrUnroutable. Computed once per overlay.
func (d *Degraded) Connected() error {
	d.connOnce.Do(func() {
		n := d.base.Nodes()
		live, first := 0, -1
		for p := 0; p < n; p++ {
			if d.NodeAlive(p) {
				live++
				if first < 0 {
					first = p
				}
			}
		}
		if live <= 1 {
			return
		}
		seen := make([]bool, n)
		seen[first] = true
		reached := 1
		queue := []int{first}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, q := range d.Neighbors(p) {
				if !seen[q] {
					seen[q] = true
					reached++
					queue = append(queue, q)
				}
			}
		}
		if reached != live {
			d.connErr = fmt.Errorf("topology: %s: %d of %d live nodes unreachable: %w",
				d.name, live-reached, live, ErrUnroutable)
		}
	})
	return d.connErr
}

// Operational reports (as nil) whether the fabric can host a complete
// exchange: every node alive and the live graph connected. A dead node
// or a severed partition returns an error wrapping ErrUnroutable — the
// signal the serving tier's graceful-degradation path keys on.
func (d *Degraded) Operational() error {
	if len(d.fs.DeadNodes) > 0 {
		return fmt.Errorf("topology: %s: %d dead node(s), complete exchange impossible: %w",
			d.name, len(d.fs.DeadNodes), ErrUnroutable)
	}
	return d.Connected()
}

// AsHypercube returns the bit-trick hypercube behind net when every fast
// path may be used: net is a *Hypercube, or a fault-free Degraded
// overlay of one (a zero-fault overlay routes, prices and replays
// identically to its base by construction). Faulty overlays return
// false — their routing must consult the fault state.
func AsHypercube(net Network) (*Hypercube, bool) {
	switch t := net.(type) {
	case *Hypercube:
		return t, true
	case *Degraded:
		if t.Healthy() {
			return AsHypercube(t.base)
		}
	}
	return nil, false
}

// CheckOperational reports whether net can host a complete exchange:
// plain networks always can; a Degraded overlay must have no dead nodes
// and a connected live graph. The error wraps ErrUnroutable.
func CheckOperational(net Network) error {
	if d, ok := net.(*Degraded); ok {
		return d.Operational()
	}
	return nil
}

// HealthDigestOf returns the canonical health digest of any network:
// "ok" for plain (always healthy) networks, the overlay's digest for
// degraded ones.
func HealthDigestOf(net Network) string {
	if d, ok := net.(*Degraded); ok {
		return d.HealthDigest()
	}
	return "ok"
}

// SplitSpec splits a (possibly degraded) spec or Name() string into the
// base spec and the fault digest ("" when none). It is purely textual —
// no validation.
func SplitSpec(spec string) (base, digest string) {
	base, digest, _ = strings.Cut(spec, "!")
	return base, digest
}

// parseFaultDigest parses the "!"-joined dn/dl/sl groups of a degraded
// spec suffix into a FaultSet.
func parseFaultDigest(digest string) (FaultSet, error) {
	var fs FaultSet
	parseLink := func(s string) (Link, error) {
		as, bs, ok := strings.Cut(s, "-")
		if !ok {
			return Link{}, fmt.Errorf("bad link %q (want a-b)", s)
		}
		a, err1 := strconv.Atoi(as)
		b, err2 := strconv.Atoi(bs)
		if err1 != nil || err2 != nil {
			return Link{}, fmt.Errorf("bad link %q (want a-b)", s)
		}
		return Link{A: a, B: b}, nil
	}
	for _, group := range strings.Split(digest, "!") {
		key, val, ok := strings.Cut(group, "=")
		if !ok || val == "" {
			return fs, fmt.Errorf("bad fault group %q (want dn=…, dl=… or sl=…)", group)
		}
		switch key {
		case "dn":
			for _, s := range strings.Split(val, ",") {
				p, err := strconv.Atoi(s)
				if err != nil {
					return fs, fmt.Errorf("bad dead node %q", s)
				}
				fs.DeadNodes = append(fs.DeadNodes, p)
			}
		case "dl":
			for _, s := range strings.Split(val, ",") {
				l, err := parseLink(s)
				if err != nil {
					return fs, err
				}
				fs.DeadLinks = append(fs.DeadLinks, l)
			}
		case "sl":
			for _, s := range strings.Split(val, ",") {
				ls, factor, ok := strings.Cut(s, ":")
				if !ok {
					return fs, fmt.Errorf("bad slow link %q (want a-b:factor)", s)
				}
				l, err := parseLink(ls)
				if err != nil {
					return fs, err
				}
				f, err := strconv.ParseFloat(factor, 64)
				if err != nil {
					return fs, fmt.Errorf("bad slow factor %q", factor)
				}
				fs.SlowLinks = append(fs.SlowLinks, SlowLink{Link: l, Factor: f})
			}
		default:
			return fs, fmt.Errorf("bad fault group %q (want dn=…, dl=… or sl=…)", group)
		}
	}
	return fs, nil
}
