package topology

import (
	"errors"
	"testing"
)

// routeDim returns the dimension a single hop crosses on net, or -1 if
// the nodes are not adjacent in exactly one dimension.
func routeDim(net Network, from, to int) int {
	dim := -1
	k := net.NumDims()
	dims := net.Dims()
	for i := 0; i < k; i++ {
		stride := net.Stride(i)
		af := (from / stride) % dims[i]
		at := (to / stride) % dims[i]
		if af == at {
			continue
		}
		if dim != -1 {
			return -1
		}
		dim = i
	}
	return dim
}

// FuzzRoute drives dimension-ordered routing on all three topology
// shapes with fuzzer-chosen endpoints and checks the routing contract:
// the route starts at src and ends at dst, every consecutive pair is one
// hop apart, the dimensions are corrected in monotone (non-decreasing)
// order, and the hop count equals Distance.
func FuzzRoute(f *testing.F) {
	f.Add(uint8(0), 0, 0)
	f.Add(uint8(1), 3, 61)
	f.Add(uint8(2), 7, 12)
	f.Add(uint8(5), 100, 2)
	f.Fuzz(func(t *testing.T, which uint8, src, dst int) {
		nets := []Network{
			MustNew(6),
			MustParseSpec("torus-4x4x4"),
			MustParseSpec("mesh-5x3"),
			MustParseSpec("torus-3x2x2"),
			MustParseSpec("mesh-2x2"),
			MustParseSpec("torus-7"),
		}
		net := nets[int(which)%len(nets)]
		n := net.Nodes()
		src, dst = ((src%n)+n)%n, ((dst%n)+n)%n

		route, err := net.Route(src, dst)
		if err != nil {
			t.Fatalf("%s: route %d→%d: %v", net.Name(), src, dst, err)
		}
		if len(route) == 0 || route[0] != src || route[len(route)-1] != dst {
			t.Fatalf("%s: route %d→%d endpoints wrong: %v", net.Name(), src, dst, route)
		}
		if hops, dist := len(route)-1, net.Distance(src, dst); hops != dist {
			t.Fatalf("%s: route %d→%d has %d hops, Distance says %d", net.Name(), src, dst, hops, dist)
		}
		prevDim := -1
		for i := 0; i+1 < len(route); i++ {
			from, to := route[i], route[i+1]
			if net.Distance(from, to) != 1 {
				t.Fatalf("%s: hop %d→%d is not a link", net.Name(), from, to)
			}
			found := false
			for _, nb := range net.Neighbors(from) {
				if nb == to {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: hop %d→%d not among Neighbors(%d) = %v",
					net.Name(), from, to, from, net.Neighbors(from))
			}
			dim := routeDim(net, from, to)
			if dim < 0 {
				t.Fatalf("%s: hop %d→%d crosses multiple dimensions", net.Name(), from, to)
			}
			if dim < prevDim {
				t.Fatalf("%s: route %d→%d corrects dim %d after dim %d (not dimension-ordered)",
					net.Name(), src, dst, dim, prevDim)
			}
			prevDim = dim
			// The allocation-free form and LinkSlot must agree with the
			// validated route.
			if slot := net.LinkSlot(from, to); slot < 0 || slot >= net.Nodes()*net.Degree() {
				t.Fatalf("%s: LinkSlot(%d,%d) = %d out of range", net.Name(), from, to, slot)
			}
		}
		buf := net.AppendRoute(make([]int, 0, 8), src, dst)
		if len(buf) != len(route) {
			t.Fatalf("%s: AppendRoute length %d, Route length %d", net.Name(), len(buf), len(route))
		}
		for i := range buf {
			if buf[i] != route[i] {
				t.Fatalf("%s: AppendRoute disagrees with Route at %d: %v vs %v",
					net.Name(), i, buf, route)
			}
		}
	})
}

// FuzzDegradedRoute drives fault-aware routing with fuzzer-chosen dead
// wire sets and checks the degraded contract: every returned route
// avoids all dead wires and matches Distance, or the pair reports
// ErrUnroutable — never a route through a fault, never a panic from the
// error-returning form.
func FuzzDegradedRoute(f *testing.F) {
	f.Add(uint8(0), 0, 0, uint64(0))
	f.Add(uint8(1), 3, 61, uint64(0x9e3779b97f4a7c15))
	f.Add(uint8(2), 7, 12, uint64(1))
	f.Add(uint8(4), 5, 2, uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, which uint8, src, dst int, kills uint64) {
		nets := []Network{
			MustNew(4),
			MustParseSpec("torus-4x4"),
			MustParseSpec("mesh-5x3"),
			MustParseSpec("torus-3x2x2"),
			MustParseSpec("mesh-2x2"),
			MustParseSpec("torus-7"),
		}
		base := nets[int(which)%len(nets)]
		n := base.Nodes()
		src, dst = ((src%n)+n)%n, ((dst%n)+n)%n

		// Derive a dead-wire set from the kill mask: enumerate each
		// node's wires in deterministic order and kill wire i when bit
		// i%64 of a rotating mask is set, capped so some fabric is left.
		var fs FaultSet
		bit, killed := 0, 0
		for p := 0; p < n && killed < 6; p++ {
			for _, q := range base.Neighbors(p) {
				if q < p {
					continue // one decision per undirected wire
				}
				if kills&(1<<(bit%64)) != 0 {
					fs.DeadLinks = append(fs.DeadLinks, Link{A: p, B: q})
					killed++
					if killed >= 6 {
						break
					}
				}
				bit = (bit + 7) % 64
			}
		}
		d, err := Overlay(base, fs)
		if err != nil {
			t.Fatalf("%s: Overlay(%v): %v", base.Name(), fs, err)
		}

		route, err := d.Route(src, dst)
		if err != nil {
			if !errors.Is(err, ErrUnroutable) {
				t.Fatalf("%s: Route(%d,%d) unexpected error kind: %v", d.Name(), src, dst, err)
			}
			// Unroutable must be real: BFS over live wires from src must
			// not reach dst.
			seen := make([]bool, n)
			seen[src] = true
			queue := []int{src}
			for len(queue) > 0 {
				p := queue[0]
				queue = queue[1:]
				for _, q := range d.Neighbors(p) {
					if !seen[q] {
						seen[q] = true
						queue = append(queue, q)
					}
				}
			}
			if seen[dst] {
				t.Fatalf("%s: Route(%d,%d) says unroutable but a live path exists", d.Name(), src, dst)
			}
			return
		}
		if len(route) == 0 || route[0] != src || route[len(route)-1] != dst {
			t.Fatalf("%s: route %d→%d endpoints wrong: %v", d.Name(), src, dst, route)
		}
		if hops := len(route) - 1; hops != d.Distance(src, dst) {
			t.Fatalf("%s: route %d→%d has %d hops, Distance says %d",
				d.Name(), src, dst, hops, d.Distance(src, dst))
		}
		for i := 0; i+1 < len(route); i++ {
			from, to := route[i], route[i+1]
			if base.Distance(from, to) != 1 {
				t.Fatalf("%s: hop %d→%d is not a link", d.Name(), from, to)
			}
			if !d.LinkAlive(from, to) {
				t.Fatalf("%s: route %d→%d crosses dead wire %d→%d: %v",
					d.Name(), src, dst, from, to, route)
			}
		}
	})
}
