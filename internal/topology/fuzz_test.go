package topology

import (
	"testing"
)

// routeDim returns the dimension a single hop crosses on net, or -1 if
// the nodes are not adjacent in exactly one dimension.
func routeDim(net Network, from, to int) int {
	dim := -1
	k := net.NumDims()
	dims := net.Dims()
	for i := 0; i < k; i++ {
		stride := net.Stride(i)
		af := (from / stride) % dims[i]
		at := (to / stride) % dims[i]
		if af == at {
			continue
		}
		if dim != -1 {
			return -1
		}
		dim = i
	}
	return dim
}

// FuzzRoute drives dimension-ordered routing on all three topology
// shapes with fuzzer-chosen endpoints and checks the routing contract:
// the route starts at src and ends at dst, every consecutive pair is one
// hop apart, the dimensions are corrected in monotone (non-decreasing)
// order, and the hop count equals Distance.
func FuzzRoute(f *testing.F) {
	f.Add(uint8(0), 0, 0)
	f.Add(uint8(1), 3, 61)
	f.Add(uint8(2), 7, 12)
	f.Add(uint8(5), 100, 2)
	f.Fuzz(func(t *testing.T, which uint8, src, dst int) {
		nets := []Network{
			MustNew(6),
			MustParseSpec("torus-4x4x4"),
			MustParseSpec("mesh-5x3"),
			MustParseSpec("torus-3x2x2"),
			MustParseSpec("mesh-2x2"),
			MustParseSpec("torus-7"),
		}
		net := nets[int(which)%len(nets)]
		n := net.Nodes()
		src, dst = ((src%n)+n)%n, ((dst%n)+n)%n

		route, err := net.Route(src, dst)
		if err != nil {
			t.Fatalf("%s: route %d→%d: %v", net.Name(), src, dst, err)
		}
		if len(route) == 0 || route[0] != src || route[len(route)-1] != dst {
			t.Fatalf("%s: route %d→%d endpoints wrong: %v", net.Name(), src, dst, route)
		}
		if hops, dist := len(route)-1, net.Distance(src, dst); hops != dist {
			t.Fatalf("%s: route %d→%d has %d hops, Distance says %d", net.Name(), src, dst, hops, dist)
		}
		prevDim := -1
		for i := 0; i+1 < len(route); i++ {
			from, to := route[i], route[i+1]
			if net.Distance(from, to) != 1 {
				t.Fatalf("%s: hop %d→%d is not a link", net.Name(), from, to)
			}
			found := false
			for _, nb := range net.Neighbors(from) {
				if nb == to {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: hop %d→%d not among Neighbors(%d) = %v",
					net.Name(), from, to, from, net.Neighbors(from))
			}
			dim := routeDim(net, from, to)
			if dim < 0 {
				t.Fatalf("%s: hop %d→%d crosses multiple dimensions", net.Name(), from, to)
			}
			if dim < prevDim {
				t.Fatalf("%s: route %d→%d corrects dim %d after dim %d (not dimension-ordered)",
					net.Name(), src, dst, dim, prevDim)
			}
			prevDim = dim
			// The allocation-free form and LinkSlot must agree with the
			// validated route.
			if slot := net.LinkSlot(from, to); slot < 0 || slot >= net.Nodes()*net.Degree() {
				t.Fatalf("%s: LinkSlot(%d,%d) = %d out of range", net.Name(), from, to, slot)
			}
		}
		buf := net.AppendRoute(make([]int, 0, 8), src, dst)
		if len(buf) != len(route) {
			t.Fatalf("%s: AppendRoute length %d, Route length %d", net.Name(), len(buf), len(route))
		}
		for i := range buf {
			if buf[i] != route[i] {
				t.Fatalf("%s: AppendRoute disagrees with Route at %d: %v vs %v",
					net.Name(), i, buf, route)
			}
		}
	})
}
