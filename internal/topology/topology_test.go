package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/bitutil"
)

func TestNewBounds(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("New(-1) must fail")
	}
	if _, err := New(31); err == nil {
		t.Error("New(31) must fail")
	}
	h, err := New(5)
	if err != nil || h.Dim() != 5 || h.Nodes() != 32 {
		t.Errorf("New(5) = %v, %v", h, err)
	}
	if h := MustNew(0); h.Nodes() != 1 {
		t.Error("0-cube must have one node")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(-1) must panic")
		}
	}()
	MustNew(-1)
}

func TestNeighbor(t *testing.T) {
	h := MustNew(4)
	n, err := h.Neighbor(0b0101, 1)
	if err != nil || n != 0b0111 {
		t.Errorf("Neighbor = %b, %v", n, err)
	}
	if _, err := h.Neighbor(99, 0); err == nil {
		t.Error("out-of-cube node must fail")
	}
	if _, err := h.Neighbor(0, 4); err == nil {
		t.Error("out-of-range dimension must fail")
	}
	if _, err := h.Neighbor(0, -1); err == nil {
		t.Error("negative dimension must fail")
	}
}

func TestNeighborsAllAdjacent(t *testing.T) {
	h := MustNew(5)
	for p := 0; p < h.Nodes(); p++ {
		ns := h.Neighbors(p)
		if len(ns) != 5 {
			t.Fatalf("node %d has %d neighbours", p, len(ns))
		}
		seen := map[int]bool{}
		for i, q := range ns {
			if h.Distance(p, q) != 1 {
				t.Errorf("neighbour %d of %d not adjacent", q, p)
			}
			if bitutil.LowestSetBit(p^q) != i {
				t.Errorf("neighbour %d of %d crosses wrong dimension", q, p)
			}
			if seen[q] {
				t.Errorf("duplicate neighbour %d", q)
			}
			seen[q] = true
		}
	}
}

func TestRouteErrors(t *testing.T) {
	h := MustNew(3)
	if _, err := h.Route(0, 8); err == nil {
		t.Error("route to node outside cube must fail")
	}
	if _, err := h.RouteEdges(-1, 0); err == nil {
		t.Error("route from negative node must fail")
	}
}

func TestRouteSelf(t *testing.T) {
	h := MustNew(3)
	p, err := h.Route(5, 5)
	if err != nil || len(p) != 1 || p[0] != 5 {
		t.Errorf("self route = %v, %v", p, err)
	}
	es, err := h.RouteEdges(5, 5)
	if err != nil || len(es) != 0 {
		t.Errorf("self route edges = %v", es)
	}
}

func TestEdgeDim(t *testing.T) {
	e := Edge{From: 0b0100, To: 0b0000}
	if e.Dim() != 2 {
		t.Errorf("Edge.Dim = %d", e.Dim())
	}
	if e.String() != "4-0" {
		t.Errorf("Edge.String = %q", e.String())
	}
}

func TestTotalLinks(t *testing.T) {
	if got := MustNew(5).TotalLinks(); got != 160 {
		t.Errorf("32-node cube has %d directed links, want 160", got)
	}
}

func TestAveragePathLength(t *testing.T) {
	// eq. (2) distance term: d·2^(d-1)/(2^d−1). For d=5: 80/31.
	h := MustNew(5)
	want := 80.0 / 31.0
	if got := h.AveragePathLength(); got != want {
		t.Errorf("avg path length = %v, want %v", got, want)
	}
	if MustNew(0).AveragePathLength() != 0 {
		t.Error("0-cube average path length must be 0")
	}
	// Cross-check by brute force for d=4.
	h4 := MustNew(4)
	sum, cnt := 0, 0
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if a != b {
				sum += h4.Distance(a, b)
				cnt++
			}
		}
	}
	if got, want := h4.AveragePathLength(), float64(sum)/float64(cnt); got != want {
		t.Errorf("d=4 avg = %v, brute force %v", got, want)
	}
}

func TestSubcubesPartitionNodes(t *testing.T) {
	h := MustNew(5)
	for lo := 0; lo <= 3; lo++ {
		for w := 1; lo+w <= 5; w++ {
			subs, err := h.Subcubes(lo, w)
			if err != nil {
				t.Fatal(err)
			}
			if len(subs) != 1<<uint(5-w) {
				t.Fatalf("lo=%d w=%d: %d subcubes", lo, w, len(subs))
			}
			seen := map[int]int{}
			for _, s := range subs {
				for _, p := range s.Nodes() {
					seen[p]++
					if !s.Contains(p) {
						t.Errorf("%v does not contain own member %d", s, p)
					}
					if s.Member(s.Rank(p)) != p {
						t.Errorf("rank/member roundtrip failed for %d in %v", p, s)
					}
				}
			}
			for p := 0; p < 32; p++ {
				if seen[p] != 1 {
					t.Errorf("lo=%d w=%d: node %d covered %d times", lo, w, p, seen[p])
				}
			}
		}
	}
}

func TestSubcubesErrors(t *testing.T) {
	h := MustNew(4)
	for _, c := range [][2]int{{-1, 2}, {0, -1}, {3, 2}, {0, 5}} {
		if _, err := h.Subcubes(c[0], c[1]); err == nil {
			t.Errorf("Subcubes(%d,%d) must fail", c[0], c[1])
		}
	}
}

func TestSubcubeString(t *testing.T) {
	s := Subcube{Lo: 1, Width: 2, Fixed: 0b1000}
	if s.String() == "" {
		t.Error("empty String")
	}
}

// Paper §5.2 and Figure 3: for d=3 with partition {2,1}, the first partial
// exchange uses bits 2,1 and the second uses bit 0.
func TestPhaseFieldsFigure3(t *testing.T) {
	h := MustNew(3)
	fields, err := h.PhaseFields([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if fields[0] != [2]int{1, 2} {
		t.Errorf("phase 1 field = %v, want bits 1..2", fields[0])
	}
	if fields[1] != [2]int{0, 1} {
		t.Errorf("phase 2 field = %v, want bit 0", fields[1])
	}
}

func TestPhaseFieldsCoverAllBits(t *testing.T) {
	h := MustNew(7)
	for _, dims := range [][]int{{7}, {3, 4}, {2, 2, 3}, {1, 1, 1, 1, 1, 1, 1}, {4, 3}} {
		fields, err := h.PhaseFields(dims)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, f := range fields {
			covered |= bitutil.Mask(f[1]) << uint(f[0])
		}
		if covered != 127 {
			t.Errorf("dims %v cover bits %b, want all 7", dims, covered)
		}
	}
}

func TestPhaseFieldsErrors(t *testing.T) {
	h := MustNew(5)
	if _, err := h.PhaseFields([]int{2, 2}); err == nil {
		t.Error("wrong sum must fail")
	}
	if _, err := h.PhaseFields([]int{6}); err == nil {
		t.Error("oversized phase must fail")
	}
	if _, err := h.PhaseFields([]int{5, 0}); err == nil {
		t.Error("zero phase must fail")
	}
	if _, err := h.PhaseFields([]int{-2, 7}); err == nil {
		t.Error("negative phase must fail")
	}
}

func TestRouteMatchesBitutil(t *testing.T) {
	h := MustNew(7)
	f := func(a, b uint8) bool {
		s, d := int(a)&127, int(b)&127
		route, err := h.Route(s, d)
		if err != nil {
			return false
		}
		want := bitutil.ECubePath(s, d)
		if len(route) != len(want) {
			return false
		}
		for i := range want {
			if route[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
