package runtime

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("size 0 must fail")
	}
	if _, err := NewCluster(-2); err == nil {
		t.Error("negative size must fail")
	}
	c, err := NewCluster(4)
	if err != nil || c.N() != 4 {
		t.Fatalf("NewCluster: %v %v", c, err)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	c, _ := NewCluster(2)
	err := c.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			nd.Send(1, []byte("hello"))
			return nil
		}
		got := nd.Recv(0)
		if string(got) != "hello" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	c, _ := NewCluster(2)
	err := c.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			buf := []byte{1, 2, 3}
			nd.Send(1, buf)
			buf[0] = 99 // must not affect the delivered message
			nd.Send(1, []byte{0})
			return nil
		}
		first := nd.Recv(0)
		nd.Recv(0)
		if first[0] != 1 {
			return fmt.Errorf("message aliased sender buffer: %v", first)
		}
		return nil
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSender(t *testing.T) {
	c, _ := NewCluster(2)
	const k = 50
	err := c.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			for i := 0; i < k; i++ {
				nd.Send(1, []byte{byte(i)})
			}
			return nil
		}
		for i := 0; i < k; i++ {
			if got := nd.Recv(0); got[0] != byte(i) {
				return fmt.Errorf("out of order: got %d want %d", got[0], i)
			}
		}
		return nil
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchange(t *testing.T) {
	c, _ := NewCluster(8)
	err := c.Run(func(nd *Node) error {
		// Everyone exchanges with XOR-partner under mask 5.
		peer := nd.ID() ^ 5
		got := nd.Exchange(peer, []byte{byte(nd.ID())})
		if got[0] != byte(peer) {
			return fmt.Errorf("node %d: got %d from %d", nd.ID(), got[0], peer)
		}
		return nil
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeSelf(t *testing.T) {
	c, _ := NewCluster(1)
	err := c.Run(func(nd *Node) error {
		data := []byte{7, 8}
		got := nd.Exchange(0, data)
		if !bytes.Equal(got, []byte{7, 8}) {
			return fmt.Errorf("self exchange got %v", got)
		}
		// Ownership round-trips on a self-exchange: the caller
		// relinquished data and owns the returned slice, so the backend
		// may (and does) hand the same buffer back without a copy.
		return nil
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSeparatesPhases(t *testing.T) {
	c, _ := NewCluster(16)
	var phase1 int32
	err := c.Run(func(nd *Node) error {
		atomic.AddInt32(&phase1, 1)
		nd.Barrier()
		if n := atomic.LoadInt32(&phase1); n != 16 {
			return fmt.Errorf("node %d passed barrier with %d arrivals", nd.ID(), n)
		}
		return nil
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	c, _ := NewCluster(8)
	var counter int32
	err := c.Run(func(nd *Node) error {
		for round := 1; round <= 10; round++ {
			atomic.AddInt32(&counter, 1)
			nd.Barrier()
			if n := atomic.LoadInt32(&counter); n != int32(8*round) {
				return fmt.Errorf("round %d: counter %d", round, n)
			}
			nd.Barrier()
		}
		return nil
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReturnsFirstError(t *testing.T) {
	c, _ := NewCluster(4)
	err := c.Run(func(nd *Node) error {
		if nd.ID() == 2 {
			return fmt.Errorf("boom-%d", nd.ID())
		}
		return nil
	}, 5*time.Second)
	if err == nil || err.Error() != "boom-2" {
		t.Errorf("err = %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	c, _ := NewCluster(2)
	err := c.Run(func(nd *Node) error {
		if nd.ID() == 1 {
			panic("kaboom")
		}
		return nil
	}, 5*time.Second)
	if err == nil {
		t.Error("panic must surface as error")
	}
}

func TestRunTimeoutOnDeadlock(t *testing.T) {
	c, _ := NewCluster(2)
	err := c.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			nd.Recv(1) // never sent
		}
		return nil
	}, 100*time.Millisecond)
	if err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestSendInvalidDestPanics(t *testing.T) {
	c, _ := NewCluster(2)
	err := c.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			nd.Send(7, nil)
		}
		return nil
	}, 5*time.Second)
	if err == nil {
		t.Error("invalid destination must error via panic recovery")
	}
}

func TestRecvInvalidSrcPanics(t *testing.T) {
	c, _ := NewCluster(2)
	err := c.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			nd.Recv(-1)
		}
		return nil
	}, 5*time.Second)
	if err == nil {
		t.Error("invalid source must error via panic recovery")
	}
}

// All-pairs stress: every node sends a tagged message to every other node;
// everything must arrive exactly once with correct content.
func TestAllToAllStress(t *testing.T) {
	const n = 32
	c, _ := NewCluster(n)
	err := c.Run(func(nd *Node) error {
		for dst := 0; dst < n; dst++ {
			if dst != nd.ID() {
				nd.Send(dst, []byte{byte(nd.ID()), byte(dst)})
			}
		}
		for src := 0; src < n; src++ {
			if src == nd.ID() {
				continue
			}
			got := nd.Recv(src)
			if got[0] != byte(src) || got[1] != byte(nd.ID()) {
				return fmt.Errorf("node %d: bad message %v from %d", nd.ID(), got, src)
			}
		}
		return nil
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNodeAccessors(t *testing.T) {
	c, _ := NewCluster(4)
	err := c.Run(func(nd *Node) error {
		if nd.N() != 4 {
			return fmt.Errorf("N() = %d", nd.N())
		}
		if nd.ID() < 0 || nd.ID() >= 4 {
			return fmt.Errorf("ID() = %d", nd.ID())
		}
		return nil
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunNoTimeoutCompletes(t *testing.T) {
	c, _ := NewCluster(2)
	if err := c.Run(func(nd *Node) error { return nil }, 0); err != nil {
		t.Fatal(err)
	}
}
