// Package runtime is a goroutine-based message-passing runtime standing in
// for the iPSC-860's NX processes: one goroutine per hypercube node,
// point-to-point byte-slice messages over channels, pairwise exchange, and
// a reusable global barrier.
//
// Where package simnet models *time* (circuits, contention, latencies),
// this package executes algorithms for real and moves *data*, so tests can
// assert that every block of a complete exchange lands in the right slot
// of the right node. The paper's algorithms are run on both backends.
package runtime

import (
	"fmt"
	"sync"
	"time"
)

// Cluster is a set of n communicating nodes.
type Cluster struct {
	n       int
	queues  []chan []byte // queues[src*n+dst]
	barrier *Barrier
	start   time.Time // set by Run; basis for Node.Clock
}

// NewCluster returns a cluster of n nodes (n ≥ 1). Per-pair queues are
// buffered so that the send side of a pairwise exchange never blocks.
func NewCluster(n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("runtime: cluster size %d < 1", n)
	}
	c := &Cluster{
		n:       n,
		queues:  make([]chan []byte, n*n),
		barrier: NewBarrier(n),
	}
	for i := range c.queues {
		// Capacity n: enough for every phase pattern the exchange
		// algorithms generate (at most one outstanding message per
		// ordered pair per step, with slack for pipelined steps).
		c.queues[i] = make(chan []byte, n)
	}
	return c, nil
}

// N returns the cluster size.
func (c *Cluster) N() int { return c.n }

// Node is the per-goroutine handle passed to node programs.
type Node struct {
	id int
	c  *Cluster
}

// ID returns this node's label.
func (nd *Node) ID() int { return nd.id }

// N returns the cluster size.
func (nd *Node) N() int { return nd.c.n }

// Send delivers a copy of data to dst's queue from this node. It panics on
// an out-of-range destination (programming error, as on the real machine).
func (nd *Node) Send(dst int, data []byte) {
	if dst < 0 || dst >= nd.c.n {
		panic(fmt.Sprintf("runtime: node %d sending to invalid node %d", nd.id, dst))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	nd.c.queues[nd.id*nd.c.n+dst] <- buf
}

// Recv blocks until a message from src arrives and returns it. Messages
// from one sender are received in send order.
func (nd *Node) Recv(src int) []byte {
	if src < 0 || src >= nd.c.n {
		panic(fmt.Sprintf("runtime: node %d receiving from invalid node %d", nd.id, src))
	}
	return <-nd.c.queues[src*nd.c.n+nd.id]
}

// Exchange performs a pairwise exchange with peer: sends data and returns
// the peer's message. Ownership transfers both ways (the fabric contract):
// data is handed to the peer without a copy — the channel send/receive
// pair orders the hand-off — and the returned slice was relinquished by
// the peer, so the caller owns it outright.
func (nd *Node) Exchange(peer int, data []byte) []byte {
	if peer == nd.id {
		return data
	}
	if peer < 0 || peer >= nd.c.n {
		panic(fmt.Sprintf("runtime: node %d exchanging with invalid node %d", nd.id, peer))
	}
	nd.c.queues[nd.id*nd.c.n+peer] <- data
	return nd.Recv(peer)
}

// Barrier blocks until every node in the cluster has called Barrier. It is
// reusable: successive barriers are distinct synchronization points.
func (nd *Node) Barrier() { nd.c.barrier.Await() }

// PostRecv declares that a receive from src will follow. The runtime's
// queues are buffered, so posting is a no-op here; it exists so node
// programs written against the fabric interface can declare their receives
// up front, which the simulated backend prices as the iPSC-860's FORCED
// message protocol (§7.1).
func (nd *Node) PostRecv(src int) {}

// Shuffle accounts for a local data permutation of the given byte count.
// On this backend the permutation is performed for real by the caller
// (gather/scatter of actual blocks), so no extra work is done; the
// simulated backend charges ρ·bytes of virtual time instead.
func (nd *Node) Shuffle(bytes int) {}

// Compute accounts for local computation of the given duration. Real
// computation happens in the node program itself, so this is a no-op; the
// simulated backend advances virtual time instead.
func (nd *Node) Compute(micros float64) {}

// Clock returns the wall-clock microseconds elapsed since the cluster run
// started — the real-time analogue of the simulated backend's virtual
// node clock.
func (nd *Node) Clock() float64 {
	return float64(time.Since(nd.c.start)) / float64(time.Microsecond)
}

// Program is the code run by each node.
type Program func(nd *Node) error

// ErrTimeout is returned by Run when the program does not finish in time
// (almost always a communication deadlock in the algorithm under test).
var ErrTimeout = fmt.Errorf("runtime: timeout waiting for node programs (deadlock?)")

// Run executes fn on every node concurrently and waits for completion. If
// any node returns an error, the first (lowest node id) is returned. A
// non-positive timeout means wait forever.
func (c *Cluster) Run(fn Program, timeout time.Duration) error {
	c.start = time.Now()
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	wg.Add(c.n)
	for i := 0; i < c.n; i++ {
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[id] = fmt.Errorf("runtime: node %d panicked: %v", id, r)
				}
			}()
			errs[id] = fn(&Node{id: id, c: c})
		}(i)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
			return ErrTimeout
		}
	} else {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Barrier is a reusable n-party barrier, exported so other backends (the
// simulated fabric) can synchronize their node goroutines the same way the
// cluster does.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

// NewBarrier returns a reusable barrier for n parties.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all n parties have called Await; successive rounds
// are distinct synchronization points.
func (b *Barrier) Await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}
