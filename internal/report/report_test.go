package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("title", "a", "longheader")
	tbl.AddRow(1, "x")
	tbl.AddRow(22222, "y")
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	if lines[0] != "title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a    ") {
		t.Errorf("header misaligned: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Errorf("missing rule: %q", lines[2])
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "h")
	tbl.AddRow("v")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("empty title must not emit a blank line")
	}
}

func TestFormatMicrosRanges(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{12.3456, "12.346"},
		{123.456, "123.5"},
		{123456.7, "123457"},
	}
	for _, c := range cases {
		if got := FormatMicros(c.in); got != c.want {
			t.Errorf("FormatMicros(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFloatCellsUseMicrosFormat(t *testing.T) {
	tbl := NewTable("", "t")
	tbl.AddRow(1234.5678)
	if !strings.Contains(tbl.String(), "1234.6") {
		t.Errorf("float formatting: %q", tbl.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRowStrings("plain", `with,comma "and quotes"`)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with,comma ""and quotes"""`) {
		t.Errorf("CSV escaping wrong: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
}

func TestFigureRendering(t *testing.T) {
	f := Figure{
		Title:  "Figure 4",
		XLabel: "block",
		YLabel: "µs",
		Curves: []Series{
			{Name: "{2,3}", X: []int{10, 20}, Y: []float64{100, 200}},
			{Name: "{5}", X: []int{10, 20}, Y: []float64{150, 180}},
		},
	}
	s := f.String()
	for _, want := range []string{"Figure 4", "block", "{2,3}", "{5}", "10", "20", "100.0", "180.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure output missing %q:\n%s", want, s)
		}
	}
}

func TestFigureRaggedCurves(t *testing.T) {
	f := Figure{
		XLabel: "x",
		Curves: []Series{
			{Name: "a", X: []int{1, 2, 3}, Y: []float64{1, 2, 3}},
			{Name: "b", X: []int{1, 2, 3}, Y: []float64{9}},
		},
	}
	s := f.String()
	if !strings.Contains(s, "9.000") {
		t.Errorf("short curve not rendered: %q", s)
	}
}

func TestEmptyFigure(t *testing.T) {
	f := Figure{Title: "empty", XLabel: "x"}
	if !strings.Contains(f.String(), "empty") {
		t.Error("empty figure must still render title")
	}
}

func TestPlotRendering(t *testing.T) {
	f := Figure{
		Title:  "Figure 4",
		XLabel: "block",
		YLabel: "µs",
		Curves: []Series{
			{Name: "{2,3}", X: []int{0, 100, 200}, Y: []float64{100, 200, 300}},
			{Name: "{5}", X: []int{0, 100, 200}, Y: []float64{400, 410, 420}},
		},
	}
	s := f.Plot(60, 12)
	if !strings.Contains(s, "Figure 4") || !strings.Contains(s, "[1] {2,3}") ||
		!strings.Contains(s, "[2] {5}") {
		t.Errorf("plot header wrong:\n%s", s)
	}
	if !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Errorf("plot missing curve glyphs:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title + legend + top axis + 12 rows + bottom axis + 2 x labels
	if len(lines) != 18 {
		t.Errorf("plot has %d lines:\n%s", len(lines), s)
	}
	// Curve 2 is higher than curve 1 everywhere: glyph '2' must appear
	// on an earlier (higher) line than the first '1'.
	first1, first2 := -1, -1
	for i, l := range lines[3:15] {
		if strings.Contains(l, "1") && first1 < 0 {
			first1 = i
		}
		if strings.Contains(l, "2") && first2 < 0 {
			first2 = i
		}
	}
	if first2 == -1 || first1 == -1 || first2 > first1 {
		t.Errorf("curve ordering wrong: first1=%d first2=%d\n%s", first1, first2, s)
	}
}

func TestPlotDegenerate(t *testing.T) {
	if !strings.Contains((&Figure{}).Plot(40, 10), "no curves") {
		t.Error("empty figure must render placeholder")
	}
	f := Figure{Curves: []Series{{Name: "flat", X: []int{5}, Y: []float64{0}}}}
	if f.Plot(0, 0) == "" {
		t.Error("degenerate sizes must still render")
	}
}
