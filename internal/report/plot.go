package report

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders a Figure as an ASCII chart — the textual counterpart of
// the paper's Figures 4–6 (time vs block size, one glyph per curve).
// Curves are drawn over a width×height grid with linear axes; each curve
// uses the glyph at its index ('a'+i unless a label glyph is provided via
// the first rune of its name's content inside braces, e.g. "{2,3}" → '2').
func (f *Figure) Plot(width, height int) string {
	if width < 16 {
		width = 64
	}
	if height < 4 {
		height = 20
	}
	if len(f.Curves) == 0 || len(f.Curves[0].X) == 0 {
		return "(no curves)\n"
	}
	// Axis ranges over all curves.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	for _, c := range f.Curves {
		for i := range c.X {
			x := float64(c.X[i])
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if i < len(c.Y) && c.Y[i] > ymax {
				ymax = c.Y[i]
			}
		}
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte("123456789abcdef")
	for ci, c := range f.Curves {
		g := glyphs[ci%len(glyphs)]
		for i := range c.X {
			if i >= len(c.Y) {
				break
			}
			col := int((float64(c.X[i]) - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((c.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
	}

	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	for i, c := range f.Curves {
		fmt.Fprintf(&b, "  [%c] %s", glyphs[i%len(glyphs)], c.Name)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%10.0f +%s\n", ymax, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s |%s\n", "", row)
	}
	fmt.Fprintf(&b, "%10.0f +%s\n", ymin, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-10.0f%s%10.0f\n", f.YLabel, xmin,
		strings.Repeat(" ", max(0, width-20)), xmax)
	fmt.Fprintf(&b, "%10s  (%s)\n", "", f.XLabel)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
