// Package report renders experiment results as aligned text tables and CSV
// — the formats used by the cmd/ tools and the benchmark harness to
// regenerate the paper's tables and figure series.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatMicros(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowStrings appends a preformatted row.
func (t *Table) AddRowStrings(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// FormatMicros renders a µs quantity with sensible precision.
func FormatMicros(us float64) string {
	switch {
	case us >= 100000:
		return fmt.Sprintf("%.0f", us)
	case us >= 100:
		return fmt.Sprintf("%.1f", us)
	default:
		return fmt.Sprintf("%.3f", us)
	}
}

// Write renders the table to w with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

// WriteCSV renders the table as CSV (no quoting needed for our content,
// but commas in cells are escaped by quoting).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Series is a named sequence of (x, y) points — one curve of a figure.
type Series struct {
	Name string
	X    []int
	Y    []float64
}

// Figure is a set of curves over a common x-axis, mirroring one plot of
// the paper (time vs block size, one curve per partition).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Curves []Series
}

// Write renders the figure as a column table: x, then one y column per
// curve. Curves must share the x grid.
func (f *Figure) Write(w io.Writer) error {
	headers := []string{f.XLabel}
	for _, c := range f.Curves {
		headers = append(headers, c.Name)
	}
	t := NewTable(f.Title, headers...)
	if len(f.Curves) > 0 {
		for i, x := range f.Curves[0].X {
			row := []string{fmt.Sprintf("%d", x)}
			for _, c := range f.Curves {
				if i < len(c.Y) {
					row = append(row, FormatMicros(c.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			t.AddRowStrings(row...)
		}
	}
	return t.Write(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	_ = f.Write(&b)
	return b.String()
}
