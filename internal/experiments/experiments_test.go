package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/partition"
)

func TestE1CrossoverTable(t *testing.T) {
	s := E1Crossover().String()
	for _, want := range []string{"24", "15144", "SE", "OCS", "29.4"} {
		if !strings.Contains(s, want) {
			t.Errorf("E1 missing %q:\n%s", want, s)
		}
	}
}

func TestE2WorkedExample(t *testing.T) {
	tbl, err := E2WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, want := range []string{"1832", "3072", "15144", "9984", "10944"} {
		if !strings.Contains(s, want) {
			t.Errorf("E2 missing %q:\n%s", want, s)
		}
	}
}

func TestE3PartitionTable(t *testing.T) {
	s := E3PartitionTable().String()
	for _, want := range []string{"42", "176", "627"} {
		if !strings.Contains(s, want) {
			t.Errorf("E3 missing %q:\n%s", want, s)
		}
	}
}

func TestFigureCurvesHullMembers(t *testing.T) {
	for d, want := range map[int][]string{
		5: {"{2,3}", "{5}"},
		6: {"{2,2,2}", "{3,3}", "{6}"},
		7: {"{2,2,3}", "{3,4}", "{7}"},
	} {
		var names []string
		for _, D := range FigureCurves(d) {
			names = append(names, D.String())
		}
		joined := strings.Join(names, " ")
		for _, w := range want {
			if !strings.Contains(joined, w) {
				t.Errorf("d=%d curves %v missing %s", d, names, w)
			}
		}
	}
	if len(FigureCurves(3)) != 2 {
		t.Error("default curve set must be {1..} and {d}")
	}
}

func TestFigureGeneration(t *testing.T) {
	fig, err := Figure(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		if len(c.Y) != len(BlockSweep()) {
			t.Fatalf("curve %s has %d points", c.Name, len(c.Y))
		}
		for i := 1; i < len(c.Y); i++ {
			if c.Y[i] < c.Y[i-1] {
				t.Errorf("curve %s not monotone at %d", c.Name, i)
			}
		}
	}
	// At 400 bytes {5} must be the fastest of the plotted curves
	// (Figure 4: OCS optimal for large blocks).
	last := len(BlockSweep()) - 1
	ocs := fig.Curves[2]
	if ocs.Name != "{5}" {
		t.Fatalf("curve order: %v", ocs.Name)
	}
	for _, c := range fig.Curves[:2] {
		if ocs.Y[last] >= c.Y[last] {
			t.Errorf("{5} must win at 400B: %v vs %s %v", ocs.Y[last], c.Name, c.Y[last])
		}
	}
}

func TestHullTables(t *testing.T) {
	for d, wants := range map[int][]string{
		5: {"{3,2}", "{5}"},
		6: {"{2,2,2}", "{3,3}", "{6}"},
		7: {"{3,2,2}", "{4,3}", "{7}"},
	} {
		s := Hull(d).String()
		for _, w := range wants {
			if !strings.Contains(s, w) {
				t.Errorf("hull d=%d missing %s:\n%s", d, w, s)
			}
		}
	}
}

func TestE7SyncOverhead(t *testing.T) {
	tbl, err := E7SyncOverhead()
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, want := range []string{"177.5", "20.6", "synced", "unsynced", "ideal"} {
		if !strings.Contains(s, want) {
			t.Errorf("E7 missing %q:\n%s", want, s)
		}
	}
}

func TestE8Contention(t *testing.T) {
	tbl, err := E8Contention(5)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Every data row must report 0 contended multiphase steps and a
	// naive load > 1 for d ≥ 2.
	for _, line := range lines[3:] { // skip title, header, rule
		fields := strings.Fields(line)
		if len(fields) < 4 {
			t.Fatalf("bad row %q", line)
		}
		if fields[2] != "0" {
			t.Errorf("contended steps nonzero: %q", line)
		}
	}
	if !strings.Contains(lines[len(lines)-1], " 5 ") && !strings.HasPrefix(lines[len(lines)-1], "5") {
		t.Errorf("last row should be d=5: %q", lines[len(lines)-1])
	}
}

func TestHeadline(t *testing.T) {
	tbl, err := Headline()
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, want := range []string{"{3,4}", "{7}", "standard exchange"} {
		if !strings.Contains(s, want) {
			t.Errorf("headline missing %q:\n%s", want, s)
		}
	}
}

func TestBlockSweepShape(t *testing.T) {
	sweep := BlockSweep()
	if sweep[0] != 0 || sweep[len(sweep)-1] != 400 {
		t.Errorf("sweep endpoints: %d..%d", sweep[0], sweep[len(sweep)-1])
	}
	if len(sweep) != 51 {
		t.Errorf("sweep length %d", len(sweep))
	}
}

func TestFigureCurvesAreValidPartitions(t *testing.T) {
	for d := 1; d <= 8; d++ {
		for _, D := range FigureCurves(d) {
			if !D.Canonical().IsValid(d) {
				t.Errorf("d=%d: invalid curve partition %v", d, D)
			}
		}
	}
	_ = partition.Count // keep import honest if asserts change
}

func TestMeasuredVsPredicted(t *testing.T) {
	tbl, err := MeasuredVsPredicted(5)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3+len(FigureCurves(5)) {
		t.Fatalf("rows = %d:\n%s", len(lines), s)
	}
	// ±5% jitter: RMS must be positive but comfortably below 5%, and
	// the max single deviation below ~6%.
	for _, line := range lines[3:] {
		fields := strings.Fields(line)
		var rms, maxDev float64
		if _, err := fmt.Sscanf(fields[len(fields)-2], "%f", &rms); err != nil {
			t.Fatalf("bad row %q", line)
		}
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%f", &maxDev); err != nil {
			t.Fatalf("bad row %q", line)
		}
		if rms <= 0 || rms > 5 {
			t.Errorf("RMS %.2f%% out of expected band: %q", rms, line)
		}
		if maxDev <= 0 || maxDev > 6 {
			t.Errorf("max dev %.2f%% out of expected band: %q", maxDev, line)
		}
	}
}
