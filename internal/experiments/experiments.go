// Package experiments regenerates every table and figure of the paper's
// evaluation, one function per artifact (the experiment index E1–E8 of
// README.md). Each returns a report.Table or report.Figure with the same
// rows/series the paper plots, with the comparison pinned by tests here.
//
// The figure sweeps cost their schedules on the trace-compiled path
// (exchange.Plan.Cost): each plan is lowered directly to per-node simnet
// programs and replayed — no goroutines, no payload bytes — which is
// op-for-op identical to (and much faster than) the goroutine-backed
// Simulate and therefore produces the same virtual times to the bit.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// BlockSweep returns the block sizes used for the figure sweeps
// (0–400 bytes as in Figures 4–6; zero included, step 8).
func BlockSweep() []int {
	var out []int
	for m := 0; m <= 400; m += 8 {
		out = append(out, m)
	}
	return out
}

// E1Crossover reproduces the §4.3 example: on the hypothetical d=6
// machine, Standard Exchange beats Optimal Circuit-Switched exactly below
// 30 bytes. Rows: block size, t_s, t_o, winner.
func E1Crossover() *report.Table {
	prm := model.Hypothetical()
	t := report.NewTable(
		"E1 (§4.3): SE vs OCS crossover on hypothetical d=6 machine (τ=ρ=1, λ=200, δ=20)",
		"block", "t_SE(µs)", "t_OCS(µs)", "winner")
	for _, m := range []int{1, 10, 20, 24, 29, 30, 31, 40, 60, 100} {
		ts := prm.StandardExchange(m, 6)
		to := prm.OptimalCircuitSwitched(m, 6)
		w := "SE"
		if to < ts {
			w = "OCS"
		}
		t.AddRow(m, ts, to, w)
	}
	t.AddRowStrings("crossover", fmt.Sprintf("m < %.2f", prm.CrossoverBlockSize(6)), "", "paper: m < 30")
	return t
}

// E2WorkedExample reproduces the §5.1 worked example: d=6, m=24,
// partition {2,4} on the hypothetical machine, phase by phase, both from
// the analytic model and from the network simulator.
func E2WorkedExample() (*report.Table, error) {
	prm := model.Hypothetical()
	d, m := 6, 24
	D := partition.Partition{2, 4}
	t := report.NewTable(
		"E2 (§5.1): two-phase exchange d=6 m=24 {2,4} on hypothetical machine",
		"quantity", "model(µs)", "simulated(µs)", "paper(µs)")

	total, phases := prm.Multiphase(m, d, D)
	plan, err := exchange.NewPlan(d, m, D)
	if err != nil {
		return nil, err
	}
	cube, err := topology.New(d)
	if err != nil {
		return nil, err
	}
	res, err := plan.Cost(simnet.New(cube, prm))
	if err != nil {
		return nil, err
	}
	// Phase 1 (d1=2, 384B): paper quotes 1832 µs for the bare exchange.
	bare1 := prm.OptimalCircuitSwitched(phases[0].EffBlock, 2)
	t.AddRow("phase1 exchange (eff 384B)", bare1, "", 1832.0)
	bare2 := prm.OptimalCircuitSwitched(phases[1].EffBlock, 4)
	t.AddRow(fmt.Sprintf("phase2 exchange (eff %dB)", phases[1].EffBlock), bare2, "", 6040.0)
	t.AddRow("shuffles (2×ρm2^d)", 2*prm.ShuffleTime(m, d), "", 3072.0)
	t.AddRow("total multiphase", total, res.Makespan, 10944.0)
	se, err := exchange.NewStandardPlan(d, m)
	if err != nil {
		return nil, err
	}
	seRes, err := se.Cost(simnet.New(cube, prm))
	if err != nil {
		return nil, err
	}
	t.AddRow("standard exchange", prm.StandardExchange(m, d), seRes.Makespan, 15144.0)
	return t, nil
}

// E3PartitionTable reproduces the §6 table of p(d) together with the
// values quoted in the abstract.
func E3PartitionTable() *report.Table {
	t := report.NewTable("E3 (§6): number of partitions p(d)", "d", "p(d)", "paper")
	paper := map[int]string{5: "7", 7: "15", 10: "42", 15: "176", 20: "627"}
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 20} {
		ref := paper[d]
		if ref == "" {
			ref = "-"
		}
		t.AddRowStrings(fmt.Sprintf("%d", d), fmt.Sprintf("%d", partition.Count(d)), ref)
	}
	return t
}

// FigureCurves returns the partitions plotted for one of Figures 4–6: the
// paper's hull members plus the Standard Exchange for comparison.
func FigureCurves(d int) []partition.Partition {
	ones := make(partition.Partition, d)
	for i := range ones {
		ones[i] = 1
	}
	switch d {
	case 5:
		return []partition.Partition{ones, {2, 3}, {5}}
	case 6:
		return []partition.Partition{ones, {2, 2, 2}, {3, 3}, {6}}
	case 7:
		return []partition.Partition{ones, {2, 2, 3}, {3, 4}, {7}}
	default:
		return []partition.Partition{ones, {d}}
	}
}

// Figure generates the Figure-4/5/6 data for dimension d on the measured
// iPSC-860 parameters: simulated time vs block size, one curve per
// partition (simulated values; the analytic model coincides for these
// contention-free schedules, mirroring the paper's dashed-vs-solid
// agreement).
func Figure(d int) (*report.Figure, error) {
	return FigureOn(model.IPSC860(), "iPSC-860", d)
}

// FigureOn is Figure on an arbitrary machine parameter set — the same
// sweep the paper ran, re-priced for another machine from the registry.
func FigureOn(prm model.Params, machine string, d int) (*report.Figure, error) {
	sweep := BlockSweep()
	fig := &report.Figure{
		Title:  fmt.Sprintf("Figure %d: multiphase exchange on %d-node %s (d=%d)", d-1, 1<<uint(d), machine, d),
		XLabel: "block(B)",
		YLabel: "µs",
	}
	cube, err := topology.New(d)
	if err != nil {
		return nil, err
	}
	net := simnet.New(cube, prm)
	for _, D := range FigureCurves(d) {
		s := report.Series{Name: D.String(), X: sweep}
		for _, m := range sweep {
			plan, err := exchange.NewPlan(d, m, D)
			if err != nil {
				return nil, err
			}
			res, err := plan.Cost(net)
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, res.Makespan)
		}
		fig.Curves = append(fig.Curves, s)
	}
	return fig, nil
}

// Hull computes the hull of optimality for dimension d over the figure
// sweep — the "best partition per block size" summary the paper reads off
// each figure.
func Hull(d int) *report.Table {
	return HullOn(model.IPSC860(), "iPSC-860", d)
}

// HullOn is Hull on an arbitrary machine parameter set.
func HullOn(prm model.Params, machine string, d int) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Hull of optimality, d=%d (%s model)", d, machine),
		"blocks", "partition")
	segs := prm.Hull(d, 0, 400, 4, false)
	for _, s := range segs {
		t.AddRowStrings(fmt.Sprintf("%d..%d", s.MinBlock, s.MaxBlock), s.Part.String())
	}
	return t
}

// MeasuredVsPredicted reproduces the §8 solid-vs-dashed comparison of
// Figures 4–6: the "measured" machine (simulator with ±5% deterministic
// transmission jitter) against the analytic prediction, for every hull
// partition of dimension d across the block sweep. The paper reports
// "good agreement between the predicted and observed run times... not
// perfect"; the table quantifies the same with a relative RMS per curve.
func MeasuredVsPredicted(d int) (*report.Table, error) {
	return MeasuredVsPredictedOn(model.IPSC860(), d)
}

// MeasuredVsPredictedOn is MeasuredVsPredicted on an arbitrary machine
// parameter set.
func MeasuredVsPredictedOn(prm model.Params, d int) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("§8 measured (±5%% jitter) vs predicted, d=%d", d),
		"partition", "rel RMS (%)", "max dev (%)")
	cube, err := topology.New(d)
	if err != nil {
		return nil, err
	}
	net := simnet.New(cube, prm)
	net.SetJitter(0.05, 1991)
	for _, D := range FigureCurves(d) {
		var ss, maxDev float64
		count := 0
		for _, m := range BlockSweep() {
			plan, err := exchange.NewPlan(d, m, D)
			if err != nil {
				return nil, err
			}
			res, err := plan.Cost(net)
			if err != nil {
				return nil, err
			}
			pred, _ := prm.Multiphase(m, d, D)
			if pred <= 0 {
				continue
			}
			rel := (res.Makespan - pred) / pred
			ss += rel * rel
			if a := math.Abs(rel); a > maxDev {
				maxDev = a
			}
			count++
		}
		rms := 0.0
		if count > 0 {
			rms = math.Sqrt(ss / float64(count))
		}
		t.AddRowStrings(D.String(),
			fmt.Sprintf("%.2f", rms*100),
			fmt.Sprintf("%.2f", maxDev*100))
	}
	return t, nil
}

// E7SyncOverhead reproduces the §7.2/§7.4 synchronization accounting: the
// effective λ and δ under pairwise sync, and the simulated cost of one
// exchange under the three exchange modes.
func E7SyncOverhead() (*report.Table, error) {
	t := report.NewTable(
		"E7 (§7.2/§7.4): pairwise synchronization overhead, one 100B exchange at distance 1",
		"mode", "λ_eff", "δ_eff", "simulated(µs)")
	for _, cfg := range []struct {
		name string
		prm  model.Params
	}{
		{"synced (paper)", model.IPSC860()},
		{"unsynced (serializes)", model.IPSC860NoSync()},
		{"ideal (theory)", model.IPSC860Raw()},
	} {
		cube, err := topology.New(1)
		if err != nil {
			return nil, err
		}
		net := simnet.New(cube, cfg.prm)
		progs := []simnet.Program{
			{simnet.Exchange(1, 100)},
			{simnet.Exchange(0, 100)},
		}
		res, err := net.Run(progs)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.name, cfg.prm.EffLambda(), cfg.prm.EffDelta(), res.Makespan)
	}
	return t, nil
}

// E8Contention verifies the scheduling claims: every step of every
// multiphase plan is edge-contention-free for d ≤ dmax, while the naive
// all-into-one schedule is not.
func E8Contention(dmax int) (*report.Table, error) {
	t := report.NewTable(
		"E8 (§2/§4.2): edge contention under e-cube routing",
		"d", "multiphase steps", "contended", "naive max edge load")
	for d := 1; d <= dmax; d++ {
		h, err := topology.New(d)
		if err != nil {
			return nil, err
		}
		steps, contended := 0, 0
		for _, D := range partition.All(d) {
			plan, err := exchange.NewPlan(d, 1, D)
			if err != nil {
				return nil, err
			}
			for _, step := range plan.Steps() {
				steps++
				r, err := h.AnalyzeStep(step)
				if err != nil {
					return nil, err
				}
				if !r.EdgeContentionFree() {
					contended++
				}
			}
		}
		naiveMax := 0
		for i := 0; i < h.Nodes(); i++ {
			r, err := h.AnalyzeStep(h.NaiveStep(i))
			if err != nil {
				return nil, err
			}
			if r.MaxEdgeLoad > naiveMax {
				naiveMax = r.MaxEdgeLoad
			}
		}
		t.AddRow(d, steps, contended, naiveMax)
	}
	return t, nil
}

// Headline reproduces the Figure 6 headline numbers: d=7, m=40 — the
// multiphase {3,4} versus the two classical algorithms.
func Headline() (*report.Table, error) {
	prm := model.IPSC860()
	d, m := 7, 40
	t := report.NewTable(
		"Figure 6 headline: d=7, block 40B (paper: SE=OCS=0.037s, {3,4}=0.016s)",
		"algorithm", "model(µs)", "simulated(µs)")
	cube, err := topology.New(d)
	if err != nil {
		return nil, err
	}
	net := simnet.New(cube, prm)
	for _, row := range []struct {
		name string
		D    partition.Partition
	}{
		{"standard exchange {1×7}", partition.Partition{1, 1, 1, 1, 1, 1, 1}},
		{"optimal CS {7}", partition.Partition{7}},
		{"multiphase {3,4}", partition.Partition{3, 4}},
	} {
		plan, err := exchange.NewPlan(d, m, row.D)
		if err != nil {
			return nil, err
		}
		res, err := plan.Cost(net)
		if err != nil {
			return nil, err
		}
		pred, _ := prm.Multiphase(m, d, row.D)
		t.AddRow(row.name, pred, res.Makespan)
	}
	return t, nil
}
