package exchange

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/bitutil"
)

func TestNewBufferValidation(t *testing.T) {
	if _, err := NewBuffer(-1, 4); err == nil {
		t.Error("negative dim must fail")
	}
	if _, err := NewBuffer(25, 4); err == nil {
		t.Error("oversized dim must fail")
	}
	if _, err := NewBuffer(3, -1); err == nil {
		t.Error("negative block size must fail")
	}
	b, err := NewBuffer(3, 16)
	if err != nil || b.Blocks() != 8 || b.BlockSize() != 16 {
		t.Fatalf("NewBuffer: %+v %v", b, err)
	}
	if len(b.Bytes()) != 128 {
		t.Errorf("storage = %d bytes", len(b.Bytes()))
	}
}

func TestZeroByteBlocks(t *testing.T) {
	b, err := NewBuffer(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Block(3)) != 0 {
		t.Error("zero-size blocks must be empty")
	}
	b.FillOutgoing(2)
	if err := b.VerifyIncoming(2); err == nil {
		// With m=0 there is nothing to verify; both must be consistent.
		_ = err
	}
}

func TestBlockBoundsPanic(t *testing.T) {
	b, _ := NewBuffer(2, 4)
	for _, idx := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Block(%d) must panic", idx)
				}
			}()
			b.Block(idx)
		}()
	}
}

func TestBlockViewsAreDisjoint(t *testing.T) {
	b, _ := NewBuffer(2, 4)
	b.Block(1)[0] = 0xAA
	for _, other := range []int{0, 2, 3} {
		if b.Block(other)[0] == 0xAA {
			t.Errorf("write to block 1 leaked into block %d", other)
		}
	}
	// Appending to a block view must not clobber the neighbour (full
	// slice expression caps capacity).
	blk := b.Block(0)
	_ = append(blk, 0xFF)
	if b.Block(1)[0] == 0xFF {
		t.Error("append to block 0 view overwrote block 1")
	}
}

func TestFillVerifyRoundTrip(t *testing.T) {
	b, _ := NewBuffer(3, 8)
	b.FillOutgoing(5)
	// Outgoing layout is NOT the incoming postcondition (except the
	// self block), so verification must fail before an exchange...
	if err := b.VerifyIncoming(5); err == nil {
		t.Error("unexchanged buffer must fail verification")
	}
	// ...unless d = 0, where src == dst.
	b0, _ := NewBuffer(0, 8)
	b0.FillOutgoing(0)
	if err := b0.VerifyIncoming(0); err != nil {
		t.Errorf("0-cube buffer: %v", err)
	}
}

func TestPayloadByteDiscriminates(t *testing.T) {
	// Different (src,dst,i) triples should rarely collide; check the
	// specific collisions that matter: swapping src/dst and shifting i.
	if PayloadByte(1, 2, 0) == PayloadByte(2, 1, 0) &&
		PayloadByte(1, 2, 1) == PayloadByte(2, 1, 1) &&
		PayloadByte(1, 2, 2) == PayloadByte(2, 1, 2) {
		t.Error("payload does not distinguish src/dst swap")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	b, _ := NewBuffer(3, 4)
	b.FillOutgoing(1)
	positions := []int{1, 4, 6}
	msg := b.Gather(positions)
	if len(msg) != 12 {
		t.Fatalf("gather length %d", len(msg))
	}
	if !bytes.Equal(msg[0:4], b.Block(1)) || !bytes.Equal(msg[4:8], b.Block(4)) {
		t.Error("gather order wrong")
	}
	// Scatter into a second buffer and compare the selected blocks.
	b2, _ := NewBuffer(3, 4)
	if err := b2.Scatter(positions, msg); err != nil {
		t.Fatal(err)
	}
	for _, p := range positions {
		if !bytes.Equal(b2.Block(p), b.Block(p)) {
			t.Errorf("block %d mismatch after scatter", p)
		}
	}
	// Untouched blocks remain zero.
	if !bytes.Equal(b2.Block(0), make([]byte, 4)) {
		t.Error("scatter touched unrelated block")
	}
}

func TestScatterLengthMismatch(t *testing.T) {
	b, _ := NewBuffer(2, 4)
	if err := b.Scatter([]int{0, 1}, make([]byte, 7)); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestFieldPositions(t *testing.T) {
	// d=3, field = bits 1..2 (lo=1, w=2), val=1 → t with Field==1:
	// t = 010 (2) and 011 (3).
	got := FieldPositions(3, 1, 2, 1)
	want := []int{2, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("FieldPositions = %v, want %v", got, want)
	}
	// Width d field: singleton position.
	if got := FieldPositions(3, 0, 3, 5); len(got) != 1 || got[0] != 5 {
		t.Errorf("full-field positions = %v", got)
	}
	// Zero-width field: all positions.
	if got := FieldPositions(3, 0, 0, 0); len(got) != 8 {
		t.Errorf("empty-field positions = %v", got)
	}
}

func TestFieldPositionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range field must panic")
		}
	}()
	FieldPositions(3, 2, 2, 0)
}

func TestFieldPositionsPartitionProperty(t *testing.T) {
	// For any field, the position sets over all vals partition 0..2^d-1.
	f := func(dRaw, loRaw, wRaw uint8) bool {
		d := int(dRaw)%6 + 1
		w := int(wRaw)%d + 1
		lo := int(loRaw) % (d - w + 1)
		seen := make([]int, 1<<uint(d))
		for val := 0; val < 1<<uint(w); val++ {
			ps := FieldPositions(d, lo, w, val)
			if len(ps) != 1<<uint(d-w) {
				return false
			}
			for _, p := range ps {
				seen[p]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// AppendFieldPositions composes positions arithmetically; it must agree
// with a straight scan of all labels, in the same increasing order, and
// reuse the storage it is handed.
func TestAppendFieldPositionsMatchesScan(t *testing.T) {
	scan := func(d, lo, w, val int) []int {
		var out []int
		for p := 0; p < 1<<uint(d); p++ {
			if bitutil.Field(p, lo, w) == val {
				out = append(out, p)
			}
		}
		return out
	}
	var scratch []int
	for d := 1; d <= 6; d++ {
		for w := 1; w <= d; w++ {
			for lo := 0; lo+w <= d; lo++ {
				for val := 0; val < 1<<uint(w); val++ {
					scratch = AppendFieldPositions(scratch, d, lo, w, val)
					want := scan(d, lo, w, val)
					if len(scratch) != len(want) {
						t.Fatalf("d=%d lo=%d w=%d val=%d: %v, want %v", d, lo, w, val, scratch, want)
					}
					for i := range want {
						if scratch[i] != want[i] {
							t.Fatalf("d=%d lo=%d w=%d val=%d: %v, want %v", d, lo, w, val, scratch, want)
						}
					}
				}
			}
		}
	}
	// Out-of-range field values match no label.
	if got := AppendFieldPositions(scratch, 3, 1, 2, 4); len(got) != 0 {
		t.Errorf("val ≥ 2^w must match nothing, got %v", got)
	}
}

func TestGatherIntoReusesStorage(t *testing.T) {
	b, err := NewBuffer(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.FillOutgoing(5)
	positions := []int{1, 3, 6}
	want := b.Gather(positions)
	scratch := make([]byte, 0, len(positions)*4)
	got := b.GatherInto(scratch, positions)
	if !bytes.Equal(got, want) {
		t.Errorf("GatherInto = %v, want %v", got, want)
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("GatherInto must reuse the scratch backing array when it fits")
	}
	// Undersized scratch grows transparently.
	if small := b.GatherInto(make([]byte, 0, 1), positions); !bytes.Equal(small, want) {
		t.Errorf("undersized scratch: %v, want %v", small, want)
	}
}
