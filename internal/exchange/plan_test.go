package exchange

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/topology"
)

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(-1, 4, partition.Partition{1}); err == nil {
		t.Error("negative dim must fail")
	}
	if _, err := NewPlan(3, -4, partition.Partition{3}); err == nil {
		t.Error("negative block size must fail")
	}
	if _, err := NewPlan(3, 4, partition.Partition{2, 2}); err == nil {
		t.Error("wrong partition sum must fail")
	}
	if _, err := NewPlan(3, 4, partition.Partition{3, 0}); err == nil {
		t.Error("zero part must fail")
	}
	if _, err := NewPlan(0, 4, partition.Partition{1}); err == nil {
		t.Error("nonempty partition for 0-cube must fail")
	}
	if _, err := NewPlan(0, 4, nil); err != nil {
		t.Errorf("0-cube plan: %v", err)
	}
	if _, err := NewStandardPlan(-1, 4); err == nil {
		t.Error("negative dim standard plan must fail, not panic")
	}
	if _, err := NewOptimalPlan(-1, 4); err == nil {
		t.Error("negative dim optimal plan must fail")
	}
}

func TestNewPlanAcceptsUnsortedPartition(t *testing.T) {
	// The paper's figures label partitions {2,3} — phase order matters
	// for the bit fields but any order is legal (§5 footnote).
	p, err := NewPlan(5, 10, partition.Partition{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	phases := p.Phases()
	if phases[0].SubcubeDim != 2 || phases[0].Lo != 3 {
		t.Errorf("phase 0 = %+v, want dim 2 over bits 3..4", phases[0])
	}
	if phases[1].SubcubeDim != 3 || phases[1].Lo != 0 {
		t.Errorf("phase 1 = %+v, want dim 3 over bits 0..2", phases[1])
	}
}

func TestPhaseLayoutFigure3(t *testing.T) {
	// d=3, {2,1}: phase 1 on bits 2,1 moving superblocks of 2 blocks;
	// phase 2 on bit 0 moving superblocks of 4 blocks.
	p, err := NewPlan(3, 1, partition.Partition{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	ph := p.Phases()
	if ph[0].Lo != 1 || ph[0].EffBlocks != 2 {
		t.Errorf("phase 1 = %+v", ph[0])
	}
	if ph[1].Lo != 0 || ph[1].EffBlocks != 4 {
		t.Errorf("phase 2 = %+v", ph[1])
	}
}

func TestDegeneratePlans(t *testing.T) {
	se, err := NewStandardPlan(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if se.TotalMessages() != 4 {
		t.Errorf("SE messages = %d, want d=4", se.TotalMessages())
	}
	if se.TotalTraffic() != 4*8*8 {
		// d transmissions of m·2^(d-1) bytes.
		t.Errorf("SE traffic = %d, want %d", se.TotalTraffic(), 4*8*8)
	}
	ocs, err := NewOptimalPlan(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ocs.TotalMessages() != 15 {
		t.Errorf("OCS messages = %d, want 2^d−1", ocs.TotalMessages())
	}
	if ocs.TotalTraffic() != 15*8 {
		t.Errorf("OCS traffic = %d, want %d", ocs.TotalTraffic(), 15*8)
	}
}

func TestOptimalPlanZeroDim(t *testing.T) {
	p, err := NewOptimalPlan(0, 8)
	if err != nil || p.TotalMessages() != 0 {
		t.Errorf("0-cube optimal plan: %v %v", p, err)
	}
}

func TestPlanAccessors(t *testing.T) {
	p, _ := NewPlan(5, 10, partition.Partition{2, 3})
	if p.Dim() != 5 || p.BlockSize() != 10 || p.Nodes() != 32 {
		t.Error("accessors wrong")
	}
	part := p.Partition()
	part[0] = 99
	if p.Partition()[0] == 99 {
		t.Error("Partition must return a copy")
	}
	if p.String() != "multiphase{2,3} hypercube-5 m=10" {
		t.Errorf("String = %q", p.String())
	}
}

// The number of steps and their sizes must satisfy the paper's counting:
// Σ(2^di − 1) exchanges of m·2^(d−di) bytes.
func TestStepCounts(t *testing.T) {
	for d := 1; d <= 7; d++ {
		for _, D := range partition.All(d) {
			p, err := NewPlan(d, 4, D)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for _, di := range D {
				want += 1<<uint(di) - 1
			}
			if got := len(p.Steps()); got != want {
				t.Errorf("d=%d %v: %d steps, want %d", d, D, got, want)
			}
			if p.TotalMessages() != want {
				t.Errorf("d=%d %v: TotalMessages=%d", d, D, p.TotalMessages())
			}
		}
	}
}

// Every step of every multiphase plan must be a perfect matching (pairwise
// exchanges) and edge-contention-free under e-cube routing — the property
// that makes the circuit-switched schedule "optimal" (§4.2) and extends to
// subcube-restricted phases (§5).
func TestAllPlansContentionFree(t *testing.T) {
	for d := 1; d <= 7; d++ {
		h := topology.MustNew(d)
		for _, D := range partition.All(d) {
			p, err := NewPlan(d, 1, D)
			if err != nil {
				t.Fatal(err)
			}
			for k, step := range p.Steps() {
				// Perfect matching: dst of src is an involution.
				for _, tr := range step {
					if tr.Src == tr.Dst {
						t.Fatalf("d=%d %v step %d: self transfer", d, D, k)
					}
				}
				r, err := h.AnalyzeStep(step)
				if err != nil {
					t.Fatal(err)
				}
				if !r.EdgeContentionFree() {
					t.Errorf("d=%d %v step %d: edge contention %v",
						d, D, k, r.ContendedEdges())
				}
			}
		}
	}
}

// Transfers of one phase must stay within their subcube: partner differs
// from the node only within the phase's bit field.
func TestPhaseLocality(t *testing.T) {
	p, _ := NewPlan(6, 4, partition.Partition{2, 3, 1})
	phases := p.Phases()
	idx := 0
	for _, ph := range phases {
		mask := ((1 << uint(ph.SubcubeDim)) - 1) << uint(ph.Lo)
		for j := 1; j <= (1<<uint(ph.SubcubeDim))-1; j++ {
			for _, tr := range p.Steps()[idx] {
				if (tr.Src^tr.Dst)&^mask != 0 {
					t.Fatalf("phase lo=%d step %d: transfer %d→%d leaves subcube",
						ph.Lo, j, tr.Src, tr.Dst)
				}
			}
			idx++
		}
	}
}

func TestTotalTrafficInvariant(t *testing.T) {
	// Whatever the partition, the *useful* payload is m(2^d −...) but
	// multiphase moves more: traffic = Σ steps·effbytes = m·Σ(2^di−1)·2^(d−di).
	// For {d} this is the minimum m(2^d−1); every refinement moves more.
	d, m := 6, 10
	ocs, _ := NewOptimalPlan(d, m)
	min := ocs.TotalTraffic()
	for _, D := range partition.All(d) {
		p, _ := NewPlan(d, m, D)
		if p.TotalTraffic() < min {
			t.Errorf("%v moves %d bytes, less than OCS %d", D, p.TotalTraffic(), min)
		}
	}
}
