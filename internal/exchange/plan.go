package exchange

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/partition"
	"repro/internal/topology"
)

// Phase describes one partial exchange of a multiphase plan: the bit field
// of the node label it operates on and the derived sizes.
type Phase struct {
	// SubcubeDim is d_i, the dimension of the subcubes of this phase.
	SubcubeDim int
	// Lo is the lowest bit of the label field the phase exchanges over.
	Lo int
	// EffBlocks is the superblock size in blocks, 2^(d−d_i).
	EffBlocks int
	// EffBytes is the superblock size in bytes, m·2^(d−d_i).
	EffBytes int
}

// Plan is a fully specified multiphase complete exchange on a d-cube with
// block size m and subcube partition D (paper §5.2). The two classical
// algorithms are the extreme plans {1,1,...,1} (Standard Exchange) and
// {d} (Optimal Circuit-Switched).
type Plan struct {
	d, m   int
	part   partition.Partition
	phases []Phase
}

// NewPlan validates (d, m, D) and precomputes the phase layout. Phases
// consume label bits from the top down, as in the paper's pseudocode: the
// first phase uses the highest d_1 bits, and so on.
func NewPlan(d, m int, D partition.Partition) (*Plan, error) {
	if d < 0 || d > 24 {
		return nil, fmt.Errorf("exchange: dimension %d out of range [0,24]", d)
	}
	if m < 0 {
		return nil, fmt.Errorf("exchange: negative block size %d", m)
	}
	if d == 0 {
		if len(D) != 0 {
			return nil, fmt.Errorf("exchange: nonempty partition %v for 0-cube", D)
		}
		return &Plan{d: d, m: m}, nil
	}
	if !D.IsValid(d) && !D.Canonical().IsValid(d) {
		return nil, fmt.Errorf("exchange: %v is not a partition of %d", D, d)
	}
	sum := 0
	for _, di := range D {
		if di <= 0 {
			return nil, fmt.Errorf("exchange: nonpositive phase dimension %d", di)
		}
		sum += di
	}
	if sum != d {
		return nil, fmt.Errorf("exchange: partition %v sums to %d, want %d", D, sum, d)
	}
	p := &Plan{d: d, m: m, part: D.Clone()}
	start := d - 1
	for _, di := range D {
		lo := start - di + 1
		p.phases = append(p.phases, Phase{
			SubcubeDim: di,
			Lo:         lo,
			EffBlocks:  1 << uint(d-di),
			EffBytes:   m << uint(d-di),
		})
		start = lo - 1
	}
	return p, nil
}

// NewStandardPlan returns the Standard Exchange algorithm (§4.1) as the
// degenerate plan {1,1,...,1}.
func NewStandardPlan(d, m int) (*Plan, error) {
	if d < 0 {
		return nil, fmt.Errorf("exchange: dimension %d out of range [0,24]", d)
	}
	ones := make(partition.Partition, d)
	for i := range ones {
		ones[i] = 1
	}
	return NewPlan(d, m, ones)
}

// NewOptimalPlan returns the Optimal Circuit-Switched algorithm (§4.2) as
// the degenerate plan {d}.
func NewOptimalPlan(d, m int) (*Plan, error) {
	if d == 0 {
		return NewPlan(0, m, nil)
	}
	return NewPlan(d, m, partition.Partition{d})
}

// Dim returns the cube dimension.
func (p *Plan) Dim() int { return p.d }

// BlockSize returns the per-destination block size m in bytes.
func (p *Plan) BlockSize() int { return p.m }

// Partition returns a copy of the subcube partition.
func (p *Plan) Partition() partition.Partition { return p.part.Clone() }

// Phases returns the phase layout.
func (p *Plan) Phases() []Phase {
	out := make([]Phase, len(p.phases))
	copy(out, p.phases)
	return out
}

// Nodes returns 2^d.
func (p *Plan) Nodes() int { return 1 << uint(p.d) }

// String formats the plan, e.g. "multiphase{3,4} d=7 m=40".
func (p *Plan) String() string {
	return fmt.Sprintf("multiphase%v d=%d m=%d", p.part, p.d, p.m)
}

// partner returns the peer of node p in step j of the given phase:
// p XOR (j << lo), the subcube-restricted Schmiermund–Seidel schedule.
func (ph Phase) partner(p, j int) int { return p ^ (j << uint(ph.Lo)) }

// steps returns 2^d_i − 1, the number of pairwise-exchange steps in the
// phase.
func (ph Phase) steps() int { return 1<<uint(ph.SubcubeDim) - 1 }

// Steps returns the complete transfer schedule of the plan, phase-major:
// element [k] is the set of simultaneous transfers of global step k. Every
// step is a perfect matching of exchange partners; package topology can
// verify each step edge-contention-free under e-cube routing.
func (p *Plan) Steps() [][]topology.Transfer {
	var out [][]topology.Transfer
	n := p.Nodes()
	for _, ph := range p.phases {
		for j := 1; j <= ph.steps(); j++ {
			step := make([]topology.Transfer, 0, n)
			for node := 0; node < n; node++ {
				step = append(step, topology.Transfer{Src: node, Dst: ph.partner(node, j)})
			}
			out = append(out, step)
		}
	}
	return out
}

// sendPositions returns the block positions node holds that must travel to
// partner q during a phase: those whose label field matches q's field.
func (p *Plan) sendPositions(ph Phase, q int) []int {
	return p.appendSendPositions(nil, ph, q)
}

// appendSendPositions is sendPositions reusing dst's storage — the form
// the Execute hot loop uses so no position list is allocated per step.
func (p *Plan) appendSendPositions(dst []int, ph Phase, q int) []int {
	return AppendFieldPositions(dst, p.d, ph.Lo, ph.SubcubeDim,
		bitutil.Field(q, ph.Lo, ph.SubcubeDim))
}

// TotalMessages returns the number of pairwise exchanges each node
// performs: Σ (2^d_i − 1).
func (p *Plan) TotalMessages() int {
	total := 0
	for _, ph := range p.phases {
		total += ph.steps()
	}
	return total
}

// TotalTraffic returns the bytes each node transmits over the whole plan:
// Σ (2^d_i − 1)·m·2^(d−d_i).
func (p *Plan) TotalTraffic() int {
	total := 0
	for _, ph := range p.phases {
		total += ph.steps() * ph.EffBytes
	}
	return total
}
