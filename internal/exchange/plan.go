package exchange

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/topology"
)

// Phase describes one partial exchange of a multiphase plan: the
// dimension field of the node label it operates on and the derived sizes.
// On a hypercube the field is a bit range; on a torus or mesh it is a
// mixed-radix digit range.
type Phase struct {
	// SubcubeDim is d_i, the number of topology dimensions in the
	// phase's group (the subcube dimension on a hypercube).
	SubcubeDim int
	// Lo is the lowest dimension index of the field the phase exchanges
	// over (the lowest bit on a hypercube).
	Lo int
	// Span is the sub-block size: the product of the group's radices
	// (2^d_i on a hypercube). The phase runs Span−1 steps.
	Span int
	// Stride is the node-label stride of dimension Lo.
	Stride int
	// XOR reports that every radix in the group is 2, so the phase uses
	// the pairwise XOR schedule of §4.2; otherwise steps are cyclic
	// shifts of the field (send to f+j, receive from f−j, mod Span).
	XOR bool
	// EffBlocks is the superblock size in blocks, Nodes/Span.
	EffBlocks int
	// EffBytes is the superblock size in bytes, m·Nodes/Span.
	EffBytes int
}

// Plan is a fully specified multiphase complete exchange on a topology
// with block size m and dimension grouping D (paper §5.2, generalized to
// mixed-radix coordinate fields). On a d-cube the two classical
// algorithms are the extreme plans {1,1,...,1} (Standard Exchange) and
// {d} (Optimal Circuit-Switched).
type Plan struct {
	topo   topology.Network
	m      int
	part   partition.Partition
	phases []Phase
}

// NewPlanOn validates (topo, m, D) and precomputes the phase layout: D
// groups the topology's dimensions into consecutive fields consumed from
// the top down, as in the paper's pseudocode — the first phase uses the
// highest d_1 dimensions, and so on.
func NewPlanOn(topo topology.Network, m int, D partition.Partition) (*Plan, error) {
	if topo.Nodes() > 1<<24 {
		return nil, fmt.Errorf("exchange: %s exceeds the plan limit of 2^24 nodes", topo.Name())
	}
	if m < 0 {
		return nil, fmt.Errorf("exchange: negative block size %d", m)
	}
	// A complete exchange needs every node alive and the live graph
	// connected; gating here keeps the replay core's panic-free
	// contract (fault-aware AppendRoute panics on severed pairs).
	if err := topology.CheckOperational(topo); err != nil {
		return nil, fmt.Errorf("exchange: %s cannot host a complete exchange: %w", topo.Name(), err)
	}
	k := topo.NumDims()
	if k == 0 {
		if len(D) != 0 {
			return nil, fmt.Errorf("exchange: nonempty partition %v for single-node topology", D)
		}
		return &Plan{topo: topo, m: m}, nil
	}
	sum := 0
	for _, di := range D {
		if di <= 0 {
			return nil, fmt.Errorf("exchange: nonpositive phase dimension %d", di)
		}
		sum += di
	}
	if sum != k {
		return nil, fmt.Errorf("exchange: partition %v sums to %d, want %d", D, sum, k)
	}
	p := &Plan{topo: topo, m: m, part: D.Clone()}
	dims := topo.Dims()
	n := topo.Nodes()
	start := k - 1
	for _, di := range D {
		lo := start - di + 1
		span, xor := 1, true
		for i := lo; i <= start; i++ {
			span *= dims[i]
			if dims[i] != 2 {
				xor = false
			}
		}
		p.phases = append(p.phases, Phase{
			SubcubeDim: di,
			Lo:         lo,
			Span:       span,
			Stride:     topo.Stride(lo),
			XOR:        xor,
			EffBlocks:  n / span,
			EffBytes:   m * (n / span),
		})
		start = lo - 1
	}
	return p, nil
}

// NewPlan validates (d, m, D) on a binary hypercube and precomputes the
// phase layout.
func NewPlan(d, m int, D partition.Partition) (*Plan, error) {
	if d < 0 || d > 24 {
		return nil, fmt.Errorf("exchange: dimension %d out of range [0,24]", d)
	}
	if d > 0 && !D.IsValid(d) && !D.Canonical().IsValid(d) {
		return nil, fmt.Errorf("exchange: %v is not a partition of %d", D, d)
	}
	cube, err := topology.New(d)
	if err != nil {
		return nil, err
	}
	if d == 0 {
		if len(D) != 0 {
			return nil, fmt.Errorf("exchange: nonempty partition %v for 0-cube", D)
		}
		return NewPlanOn(cube, m, nil)
	}
	return NewPlanOn(cube, m, D)
}

// NewStandardPlan returns the Standard Exchange algorithm (§4.1) as the
// degenerate plan {1,1,...,1}.
func NewStandardPlan(d, m int) (*Plan, error) {
	if d < 0 {
		return nil, fmt.Errorf("exchange: dimension %d out of range [0,24]", d)
	}
	ones := make(partition.Partition, d)
	for i := range ones {
		ones[i] = 1
	}
	return NewPlan(d, m, ones)
}

// NewOptimalPlan returns the Optimal Circuit-Switched algorithm (§4.2) as
// the degenerate plan {d}.
func NewOptimalPlan(d, m int) (*Plan, error) {
	if d == 0 {
		return NewPlan(0, m, nil)
	}
	return NewPlan(d, m, partition.Partition{d})
}

// Topology returns the network the plan is laid out for.
func (p *Plan) Topology() topology.Network { return p.topo }

// Dim returns the number of topology dimensions (the cube dimension d on
// a hypercube).
func (p *Plan) Dim() int { return p.topo.NumDims() }

// BlockSize returns the per-destination block size m in bytes.
func (p *Plan) BlockSize() int { return p.m }

// Partition returns a copy of the dimension grouping.
func (p *Plan) Partition() partition.Partition { return p.part.Clone() }

// Phases returns the phase layout.
func (p *Plan) Phases() []Phase {
	out := make([]Phase, len(p.phases))
	copy(out, p.phases)
	return out
}

// Nodes returns the topology's node count.
func (p *Plan) Nodes() int { return p.topo.Nodes() }

// String formats the plan, e.g. "multiphase{3,4} hypercube-7 m=40".
func (p *Plan) String() string {
	return fmt.Sprintf("multiphase%v %s m=%d", p.part, p.topo.Name(), p.m)
}

// field returns node p's digit value in the phase's dimension field.
func (ph Phase) field(p int) int { return (p / ph.Stride) % ph.Span }

// withField returns p with its field value replaced by f.
func (ph Phase) withField(p, f int) int { return p + (f-ph.field(p))*ph.Stride }

// partner returns the peer of node p in step j of an XOR phase: the
// subcube-restricted Schmiermund–Seidel schedule f ← f XOR j (p XOR
// (j·2^lo) on the hypercube).
func (ph Phase) partner(p, j int) int { return ph.withField(p, ph.field(p)^j) }

// sendPeer returns the node p sends to in step j of a cyclic phase:
// field f+j mod Span.
func (ph Phase) sendPeer(p, j int) int {
	return ph.withField(p, (ph.field(p)+j)%ph.Span)
}

// recvPeer returns the node p receives from in step j of a cyclic phase:
// field f−j mod Span.
func (ph Phase) recvPeer(p, j int) int {
	return ph.withField(p, (ph.field(p)-j+ph.Span)%ph.Span)
}

// steps returns Span−1, the number of exchange steps in the phase.
func (ph Phase) steps() int { return ph.Span - 1 }

// Steps returns the complete transfer schedule of the plan, phase-major:
// element [k] is the set of simultaneous transfers of global step k. XOR
// phases are perfect matchings of exchange partners; cyclic phases are
// sub-block shift permutations. Package topology can analyze each step
// for contention under dimension-ordered routing.
func (p *Plan) Steps() [][]topology.Transfer {
	var out [][]topology.Transfer
	n := p.Nodes()
	for _, ph := range p.phases {
		for j := 1; j <= ph.steps(); j++ {
			step := make([]topology.Transfer, 0, n)
			for node := 0; node < n; node++ {
				dst := ph.partner(node, j)
				if !ph.XOR {
					dst = ph.sendPeer(node, j)
				}
				step = append(step, topology.Transfer{Src: node, Dst: dst})
			}
			out = append(out, step)
		}
	}
	return out
}

// sendPositions returns the block positions node holds that must travel
// to partner q during a phase: those whose label field matches q's field.
func (p *Plan) sendPositions(ph Phase, q int) []int {
	return p.appendFieldPositions(nil, ph, q)
}

// appendFieldPositions is sendPositions reusing dst's storage — the form
// the Execute hot loop uses so no position list is allocated per step.
func (p *Plan) appendFieldPositions(dst []int, ph Phase, q int) []int {
	return AppendDigitPositions(dst, p.Nodes(), ph.Stride, ph.Span, ph.field(q))
}

// TotalMessages returns the number of point-to-point transmissions each
// node performs: Σ (Span_i − 1).
func (p *Plan) TotalMessages() int {
	total := 0
	for _, ph := range p.phases {
		total += ph.steps()
	}
	return total
}

// TotalTraffic returns the bytes each node transmits over the whole plan:
// Σ (Span_i − 1)·m·N/Span_i.
func (p *Plan) TotalTraffic() int {
	total := 0
	for _, ph := range p.phases {
		total += ph.steps() * ph.EffBytes
	}
	return total
}
