package exchange

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/partition"
	"repro/internal/runtime"
)

// TestFigure3IntermediateState pins the paper's Figure 3 exactly: on a
// dimension-3 cube with partition {2,1}, after the first partial exchange
// (bits 2,1; superblocks of 2), node 000's column must read
//
//	0:0, 0:1, 2:0, 2:1, 4:0, 4:1, 6:0, 6:1
//
// (block s:t = the block source s addressed to destination t), and node
// 010's column must read 0:2, 0:3, 2:2, 2:3, 4:2, 4:3, 6:2, 6:3. The
// second partial exchange (bit 0; superblocks of 4) must then complete
// the exchange.
func TestFigure3IntermediateState(t *testing.T) {
	const d, m = 3, 4
	plan, err := NewPlan(d, m, partition.Partition{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	phases := plan.Phases()

	// Expected (src, dst) tag per position after phase 1, per Figure 3.
	// Node p's position t should hold the block from source
	// s = (t with bit 0 replaced by p's bit 0) addressed to destination
	// u = (p's bits 2,1 with t's bit 0).
	wantAfterPhase1 := func(p, t int) (src, dst int) {
		src = (t &^ 1) | (p & 1)
		dst = (p &^ 1) | (t & 1)
		return
	}
	// Spot-check the helper against the literal Figure 3 columns.
	for t0, want := range [][2]int{{0, 0}, {0, 1}, {2, 0}, {2, 1}, {4, 0}, {4, 1}, {6, 0}, {6, 1}} {
		s, u := wantAfterPhase1(0, t0)
		if s != want[0] || u != want[1] {
			t.Fatalf("figure-3 oracle wrong at node 0 pos %d: %d:%d want %d:%d",
				t0, s, u, want[0], want[1])
		}
	}
	for t0, want := range [][2]int{{0, 2}, {0, 3}, {2, 2}, {2, 3}, {4, 2}, {4, 3}, {6, 2}, {6, 3}} {
		s, u := wantAfterPhase1(2, t0)
		if s != want[0] || u != want[1] {
			t.Fatalf("figure-3 oracle wrong at node 2 pos %d: %d:%d want %d:%d",
				t0, s, u, want[0], want[1])
		}
	}

	c, err := runtime.NewCluster(plan.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(nd *runtime.Node) error {
		p := nd.ID()
		buf, err := NewBuffer(d, m)
		if err != nil {
			return err
		}
		buf.FillOutgoing(p)

		runPhase := func(ph Phase) error {
			for j := 1; j <= (1<<uint(ph.SubcubeDim))-1; j++ {
				q := p ^ (j << uint(ph.Lo))
				positions := FieldPositions(d, ph.Lo, ph.SubcubeDim,
					(q>>uint(ph.Lo))&((1<<uint(ph.SubcubeDim))-1))
				in := nd.Exchange(q, buf.Gather(positions))
				if err := buf.Scatter(positions, in); err != nil {
					return err
				}
			}
			return nil
		}

		// Phase 1 (bits 2,1), then check the Figure 3 layout.
		nd.Barrier()
		if err := runPhase(phases[0]); err != nil {
			return err
		}
		for pos := 0; pos < buf.Blocks(); pos++ {
			src, dst := wantAfterPhase1(p, pos)
			blk := buf.Block(pos)
			for i := range blk {
				if blk[i] != PayloadByte(src, dst, i) {
					return fmt.Errorf("node %d pos %d byte %d: not block %d:%d",
						p, pos, i, src, dst)
				}
			}
		}
		// Phase 2 (bit 0) finishes the exchange.
		nd.Barrier()
		if err := runPhase(phases[1]); err != nil {
			return err
		}
		return buf.VerifyIncoming(p)
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}
