package exchange

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// machines are the two example parameter sets the compiler is verified
// against.
var machines = []struct {
	name string
	prm  model.Params
}{
	{"hypothetical", model.Hypothetical()},
	{"ipsc860", model.IPSC860()},
}

func comparePrograms(t *testing.T, label string, got, want []simnet.Program) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d programs, want %d", label, len(got), len(want))
	}
	for p := range want {
		if len(got[p]) != len(want[p]) {
			t.Fatalf("%s: node %d has %d ops, want %d\ngot  %v\nwant %v",
				label, p, len(got[p]), len(want[p]), got[p], want[p])
		}
		for i := range want[p] {
			if got[p][i] != want[p][i] {
				t.Fatalf("%s: node %d op %d = %+v, want %+v",
					label, p, i, got[p][i], want[p][i])
			}
		}
	}
}

// The tentpole invariant: the compiled per-node programs must be
// op-for-op identical to the programs a live fabric.Sim run records, for
// multiphase plans across machines and partitions — the recorded traces
// are the oracle the compiler is checked against.
func TestCompiledMatchesRecordedTraces(t *testing.T) {
	cases := []struct {
		d, m int
		D    partition.Partition
	}{
		{0, 8, nil},
		{1, 16, partition.Partition{1}},
		{3, 16, partition.Partition{1, 1, 1}},
		{3, 0, partition.Partition{3}},
		{4, 8, partition.Partition{2, 2}},
		{4, 40, partition.Partition{1, 3}},
		{5, 24, partition.Partition{2, 3}},
		{5, 5, partition.Partition{5}},
	}
	for _, mc := range machines {
		for _, c := range cases {
			plan, err := NewPlan(c.d, c.m, c.D)
			if err != nil {
				t.Fatal(err)
			}
			fab := fabric.NewSim(simnet.New(topology.MustNew(c.d), mc.prm))
			if err := plan.RunOn(fab, fabric.DefaultSimTimeout); err != nil {
				t.Fatalf("%s d=%d m=%d %v: %v", mc.name, c.d, c.m, c.D, err)
			}
			label := mc.name + " " + plan.String()
			comparePrograms(t, label, plan.Compile().Programs(), fab.Traces())
		}
	}
}

// Cost (compiled replay) and Simulate (goroutine run + recorded-trace
// replay) must agree exactly: same programs through the same simulator.
func TestCostEqualsSimulate(t *testing.T) {
	for _, mc := range machines {
		for _, c := range []struct {
			d, m int
			D    partition.Partition
		}{
			{4, 32, partition.Partition{2, 2}},
			{5, 40, partition.Partition{2, 3}},
			{5, 0, partition.Partition{5}},
		} {
			plan, err := NewPlan(c.d, c.m, c.D)
			if err != nil {
				t.Fatal(err)
			}
			net := simnet.New(topology.MustNew(c.d), mc.prm)
			sim, err := plan.Simulate(net)
			if err != nil {
				t.Fatal(err)
			}
			cost, err := plan.Cost(net)
			if err != nil {
				t.Fatal(err)
			}
			if cost.Makespan != sim.Makespan || cost.Messages != sim.Messages ||
				cost.BytesMoved != sim.BytesMoved || cost.Barriers != sim.Barriers ||
				cost.ContentionStall != sim.ContentionStall {
				t.Errorf("%s d=%d m=%d %v: compiled %+v != simulated %+v",
					mc.name, c.d, c.m, c.D, cost, sim)
			}
		}
	}
}

// Cost must also agree under jitter: the compiled source replays through
// the same engine with the same per-Run noise stream.
func TestCostEqualsSimulateWithJitter(t *testing.T) {
	plan, err := NewPlan(4, 64, partition.Partition{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(topology.MustNew(4), model.IPSC860())
	net.SetJitter(0.05, 42)
	sim, err := plan.Simulate(net)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := plan.Cost(net)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Makespan != sim.Makespan {
		t.Errorf("jittered compiled %v != simulated %v", cost.Makespan, sim.Makespan)
	}
}

// The compact Source view and the materialized programs must agree.
func TestCompiledSourceMatchesPrograms(t *testing.T) {
	plan, err := NewPlan(4, 24, partition.Partition{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	c := plan.Compile()
	progs := c.Programs()
	if c.NumNodes() != len(progs) || c.NumNodes() != 16 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	total := 0
	for p := range progs {
		if c.NumOps(p) != len(progs[p]) {
			t.Fatalf("node %d: NumOps %d != len %d", p, c.NumOps(p), len(progs[p]))
		}
		for i := range progs[p] {
			if c.Op(p, i) != progs[p][i] {
				t.Fatalf("node %d op %d mismatch", p, i)
			}
		}
		total += len(progs[p])
	}
	if c.Ops() != total {
		t.Errorf("Ops() = %d, want %d", c.Ops(), total)
	}
}

func TestCostDimensionMismatch(t *testing.T) {
	plan, err := NewPlan(3, 8, partition.Partition{3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Cost(simnet.New(topology.MustNew(4), model.IPSC860())); err == nil {
		t.Error("dimension mismatch must fail")
	}
}

// CompilePhase must emit exactly the corresponding slice of Compile's
// row table: concatenating every phase fragment reproduces the whole
// plan's rows, and a single-phase plan's fragment replay is bit-identical
// to its whole-plan Cost.
func TestCompilePhaseMatchesCompile(t *testing.T) {
	cases := []struct {
		spec string
		m    int
		D    partition.Partition
	}{
		{"hypercube-5", 24, partition.Partition{2, 3}},
		{"hypercube-4", 8, partition.Partition{1, 1, 2}},
		{"torus-4x4", 40, partition.Partition{1, 1}},
		{"torus-8x2x2", 8, partition.Partition{1, 2}},
		{"mesh-3x3", 16, partition.Partition{2}},
	}
	for _, tc := range cases {
		topo := topology.MustParseSpec(tc.spec)
		plan, err := NewPlanOn(topo, tc.m, tc.D)
		if err != nil {
			t.Fatal(err)
		}
		whole := plan.Compile()
		var stitched []compiledOp
		for i := 0; i < plan.NumPhases(); i++ {
			frag := plan.CompilePhase(i)
			if frag.n != whole.n || frag.m != whole.m || frag.topo != whole.topo {
				t.Fatalf("%s %v phase %d: fragment header %+v differs from whole plan", tc.spec, tc.D, i, frag)
			}
			stitched = append(stitched, frag.rows...)
		}
		if len(stitched) != len(whole.rows) {
			t.Fatalf("%s %v: %d stitched rows, want %d", tc.spec, tc.D, len(stitched), len(whole.rows))
		}
		for i := range whole.rows {
			if stitched[i] != whole.rows[i] {
				t.Fatalf("%s %v row %d: fragment %+v, whole %+v", tc.spec, tc.D, i, stitched[i], whole.rows[i])
			}
		}
	}

	// Single-phase plan: fragment replay ≡ whole-plan Cost, bit-exact.
	topo := topology.MustParseSpec("torus-4x4x4")
	plan, err := NewPlanOn(topo, 40, partition.Partition{3})
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(topo, model.IPSC860())
	whole, err := plan.Cost(net)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := net.RunSource(plan.CompilePhase(0))
	if err != nil {
		t.Fatal(err)
	}
	if frag.Makespan != whole.Makespan {
		t.Fatalf("single-phase fragment %v µs, whole plan %v µs", frag.Makespan, whole.Makespan)
	}
}
