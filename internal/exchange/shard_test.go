package exchange_test

import (
	"reflect"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// costOn replays src on a fresh network over topo with the given jitter
// and shard count and returns the result.
func costOn(t *testing.T, topo topology.Network, src simnet.Source, jitterFrac float64, shards int) simnet.Result {
	t.Helper()
	net := simnet.New(topo, model.IPSC860())
	net.SetJitter(jitterFrac, 7)
	net.SetReplayShards(shards)
	res, err := net.RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireBitIdentical asserts every Result field except ReplayShards
// matches bit-for-bit — the sharded replay mode's core contract.
func requireBitIdentical(t *testing.T, label string, serial, sharded simnet.Result) {
	t.Helper()
	serial.ReplayShards, sharded.ReplayShards = 0, 0
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("%s: sharded ≠ serial\nserial:  %+v\nsharded: %+v", label, serial, sharded)
	}
}

// The equivalence matrix: compiled multiphase plans on all three topology
// families, with jitter off and on, replayed serially and across several
// shard counts — Time, Messages, BytesMoved, ContentionStall and
// MaxEdgeQueue must agree bit-for-bit, and the sharded path must actually
// have engaged (no silent fallback).
func TestShardedReplayEquivalence(t *testing.T) {
	cases := []struct {
		spec string
		m    int
		D    partition.Partition
	}{
		{"hypercube-6", 16, partition.Partition{3, 2, 1}},
		{"hypercube-6", 8, partition.Partition{2, 2, 2}},
		{"hypercube-4", 40, partition.Partition{1, 1, 1, 1}},
		{"torus-4x4x4", 24, partition.Partition{2, 1}},
		{"torus-4x4", 8, partition.Partition{1, 1}},
		{"mesh-4x4", 8, partition.Partition{1, 1}},
		{"mesh-8x2", 16, partition.Partition{1, 1}},
	}
	for _, tc := range cases {
		topo := topology.MustParseSpec(tc.spec)
		plan, err := exchange.NewPlanOn(topo, tc.m, tc.D)
		if err != nil {
			t.Fatalf("%s %v: %v", tc.spec, tc.D, err)
		}
		src := plan.Compile()
		for _, jitter := range []float64{0, 0.05} {
			serial := costOn(t, topo, src, jitter, 1)
			if serial.ReplayShards != 1 {
				t.Fatalf("%s: serial ReplayShards = %d", tc.spec, serial.ReplayShards)
			}
			for _, w := range []int{2, 3, 4} {
				label := tc.spec + "/" + tc.D.String()
				sharded := costOn(t, topo, src, jitter, w)
				if sharded.ReplayShards < 2 {
					t.Fatalf("%s w=%d jitter=%v: sharded replay fell back (ReplayShards=%d)",
						label, w, jitter, sharded.ReplayShards)
				}
				requireBitIdentical(t, label, serial, sharded)
			}
		}
	}
}

// Single-phase fragments — the optimizer's memoized costing unit — must
// shard equivalently too.
func TestShardedFragmentEquivalence(t *testing.T) {
	topo := topology.MustParseSpec("hypercube-6")
	plan, err := exchange.NewPlanOn(topo, 16, partition.Partition{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for pi := 0; pi < plan.NumPhases(); pi++ {
		frag := plan.CompilePhase(pi)
		serial := costOn(t, topo, frag, 0, 1)
		sharded := costOn(t, topo, frag, 0, 4)
		if sharded.ReplayShards < 2 {
			t.Fatalf("phase %d: fragment fell back (ReplayShards=%d)", pi, sharded.ReplayShards)
		}
		requireBitIdentical(t, "fragment", serial, sharded)
	}
}

// PhaseSpans is the compiled plan's sharding metadata: one span per
// phase, row counts covering the whole table, and fragment compilation
// reproducing the corresponding whole-plan entry.
func TestCompiledPlanPhaseSpans(t *testing.T) {
	topo := topology.MustParseSpec("hypercube-6")
	plan, err := exchange.NewPlanOn(topo, 16, partition.Partition{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	c := plan.Compile()
	spans := c.PhaseSpans()
	if len(spans) != plan.NumPhases() {
		t.Fatalf("PhaseSpans has %d entries for %d phases", len(spans), plan.NumPhases())
	}
	total := 0
	for i, sp := range spans {
		if sp.Rows < 1 || sp.Span < 2 || sp.Stride < 1 {
			t.Fatalf("span %d malformed: %+v", i, sp)
		}
		total += sp.Rows
	}
	if total != c.NumOps(0) {
		t.Fatalf("span rows sum to %d, op table has %d rows", total, c.NumOps(0))
	}
	for i := 0; i < plan.NumPhases(); i++ {
		frag := plan.CompilePhase(i)
		fs := frag.PhaseSpans()
		if len(fs) != 1 {
			t.Fatalf("fragment %d has %d spans", i, len(fs))
		}
		if fs[0] != spans[i] {
			t.Fatalf("fragment %d span %+v ≠ whole-plan span %+v", i, fs[0], spans[i])
		}
		if fs[0].Rows != frag.NumOps(0) {
			t.Fatalf("fragment %d span covers %d of %d rows", i, fs[0].Rows, frag.NumOps(0))
		}
	}
}

// A slow-wire-only overlay keeps base routes, so sharding still engages
// and stays bit-identical: per-circuit slow factors are pure functions of
// the route.
func TestShardedDegradedSlowWiresStillShard(t *testing.T) {
	base := topology.MustParseSpec("hypercube-5")
	slow, err := topology.Overlay(base, topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := exchange.NewPlanOn(slow, 16, partition.Partition{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	src := plan.Compile()
	serial := costOn(t, slow, src, 0, 1)
	sharded := costOn(t, slow, src, 0, 4)
	if sharded.ReplayShards < 2 {
		t.Fatalf("slow-only overlay fell back (ReplayShards=%d)", sharded.ReplayShards)
	}
	requireBitIdentical(t, "slow overlay", serial, sharded)
}

// phaseIndexWithStride locates the compiled phase whose sub-block field
// has the given stride — plans order their phases by the partition's
// dimension grouping, so tests select phases structurally, not by index.
func phaseIndexWithStride(t *testing.T, plan *exchange.Plan, stride int) int {
	t.Helper()
	spans := plan.Compile().PhaseSpans()
	for i, sp := range spans {
		if sp.Stride == stride {
			return i
		}
	}
	t.Fatalf("no phase with stride %d among %+v", stride, spans)
	return -1
}

// A dead wire makes fault-aware routing detour through links that belong
// to other sub-blocks: the partitioner must detect the cross-span
// coverage and take the serial fallback path — and the fallback must
// still produce the serial result exactly.
func TestShardedDegradedDetourFallsBackToSerial(t *testing.T) {
	base := topology.MustParseSpec("hypercube-3")
	// Kill a dimension-2 wire. The stride-4 phase pairs 0↔4 directly
	// across it, so its detour has to borrow wires owned by the other
	// pair groups ({1,5}, {2,6}, {3,7}) — cross-shard coverage.
	dead, err := topology.Overlay(base, topology.FaultSet{
		DeadLinks: []topology.Link{{A: 0, B: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := exchange.NewPlanOn(dead, 8, partition.Partition{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	frag := plan.CompilePhase(phaseIndexWithStride(t, plan, 4))
	serial := costOn(t, dead, frag, 0, 1)
	sharded := costOn(t, dead, frag, 0, 4)
	if sharded.ReplayShards != 1 {
		t.Fatalf("detour-crossed fragment did not fall back: ReplayShards=%d", sharded.ReplayShards)
	}
	requireBitIdentical(t, "detour fallback", serial, sharded)

	// The whole plan still replays equivalently whatever mix of sharded
	// and fallback phases it ends up with.
	whole := plan.Compile()
	requireBitIdentical(t, "degraded whole plan",
		costOn(t, dead, whole, 0, 1), costOn(t, dead, whole, 0, 4))
}

// A timed FaultPlan whose faulted wires are touched by a single shard
// keeps sharding (that shard resolves the faults exactly as serial
// replay would); wires spread across two shards force the phase serial.
func TestShardedFaultPlanConfinement(t *testing.T) {
	topo := topology.MustParseSpec("hypercube-3")
	plan, err := exchange.NewPlanOn(topo, 8, partition.Partition{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	src := plan.Compile()

	runWith := func(fp simnet.FaultPlan, shards int) (simnet.Result, error) {
		net := simnet.New(topo, model.IPSC860())
		net.SetReplayShards(shards)
		if err := net.SetFaultPlan(fp); err != nil {
			t.Fatal(err)
		}
		return net.RunSource(src)
	}

	// Confined: one slowed wire whose slots only the stride-1 phase's
	// {4..7} sub-block ever touches.
	confined := simnet.FaultPlan{Links: []simnet.LinkFault{{A: 4, B: 5, At: 0, Factor: 3}}}
	serial, err := runWith(confined, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := runWith(confined, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.ReplayShards < 2 {
		t.Fatalf("confined fault plan fell back (ReplayShards=%d)", sharded.ReplayShards)
	}
	requireBitIdentical(t, "confined fault", serial, sharded)

	// Unconfined: wires 0–1 and 4–5 land in the stride-1 phase's two
	// different sub-blocks ({0..3} and {4..7}), so two shards touch
	// faulted slots and that phase must run serial.
	spread := simnet.FaultPlan{Links: []simnet.LinkFault{
		{A: 0, B: 1, At: 0, Factor: 3},
		{A: 4, B: 5, At: 0, Factor: 5},
	}}
	serial2, err := runWith(spread, 1)
	if err != nil {
		t.Fatal(err)
	}
	frag := plan.CompilePhase(phaseIndexWithStride(t, plan, 1))
	net := simnet.New(topo, model.IPSC860())
	net.SetReplayShards(4)
	if err := net.SetFaultPlan(spread); err != nil {
		t.Fatal(err)
	}
	fres, err := net.RunSource(frag)
	if err != nil {
		t.Fatal(err)
	}
	if fres.ReplayShards != 1 {
		t.Fatalf("spread fault plan kept sharding (ReplayShards=%d)", fres.ReplayShards)
	}
	sharded2, err := runWith(spread, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "spread fault", serial2, sharded2)

	// A confined down wire fails the sharded run with the serial error.
	down := simnet.FaultPlan{Links: []simnet.LinkFault{{A: 4, B: 5, At: 0, Factor: 0}}}
	_, serialErr := runWith(down, 1)
	_, shardedErr := runWith(down, 4)
	if serialErr == nil || shardedErr == nil {
		t.Fatalf("down wire did not fail: serial=%v sharded=%v", serialErr, shardedErr)
	}
	if serialErr.Error() != shardedErr.Error() {
		t.Fatalf("down-wire errors differ:\nserial:  %v\nsharded: %v", serialErr, shardedErr)
	}
}
