// Package exchange implements the paper's complete-exchange algorithms for
// a circuit-switched hypercube: the Standard Exchange algorithm (§4.1),
// the Optimal Circuit-Switched algorithm (§4.2), and the unified
// multiphase algorithm (§5) that subsumes both as the extreme partitions
// {1,1,...,1} and {d}.
//
// A Plan fixes (d, m, partition) and has exactly one executable
// implementation, Execute, written against the fabric interface (package
// fabric). Run on the runtime fabric it moves real bytes, so correctness
// — every block landing in the right slot of the right node — is
// machine-checked; run on the simulated fabric it additionally records
// and replays the op schedule through the discrete-event simulator
// (package simnet), so the virtual-time cost under circuit-switched
// contention, pairwise sync, and global sync is measured and compared
// against the analytic model (package model).
package exchange

import "fmt"

// Buffer is one node's block storage for a complete exchange: one block
// of m bytes per node. Before the exchange, block t holds the data this
// node sends to node t; afterwards block s holds the data received from
// node s.
type Buffer struct {
	n, m int
	data []byte
}

// NewBuffer allocates a buffer for a d-cube exchange with block size m.
// m may be zero (the paper's curves start at zero-byte blocks).
func NewBuffer(d, m int) (*Buffer, error) {
	if d < 0 || d > 24 {
		return nil, fmt.Errorf("exchange: dimension %d out of range [0,24]", d)
	}
	return NewBufferN(1<<uint(d), m)
}

// NewBufferN allocates a buffer of n blocks of m bytes — the general
// form for non-power-of-two topologies.
func NewBufferN(n, m int) (*Buffer, error) {
	if n < 1 || n > 1<<24 {
		return nil, fmt.Errorf("exchange: block count %d out of range [1,2^24]", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("exchange: negative block size %d", m)
	}
	return &Buffer{n: n, m: m, data: make([]byte, n*m)}, nil
}

// BlockSize returns m, the bytes per block.
func (b *Buffer) BlockSize() int { return b.m }

// Blocks returns the number of blocks.
func (b *Buffer) Blocks() int { return b.n }

// Block returns the t-th block as a mutable slice view.
func (b *Buffer) Block(t int) []byte {
	if t < 0 || t >= b.Blocks() {
		panic(fmt.Sprintf("exchange: block index %d out of range [0,%d)", t, b.Blocks()))
	}
	return b.data[t*b.m : (t+1)*b.m : (t+1)*b.m]
}

// Bytes returns the whole underlying storage.
func (b *Buffer) Bytes() []byte { return b.data }

// Gather copies the blocks at the given positions, in order, into a single
// contiguous message. This is the data-permutation work the paper charges
// at ρ µs/byte.
func (b *Buffer) Gather(positions []int) []byte {
	return b.GatherInto(nil, positions)
}

// GatherInto is Gather reusing dst's backing storage (contents are
// discarded): the hot-loop form Plan.Execute uses so a superblock is not
// allocated on every step.
func (b *Buffer) GatherInto(dst []byte, positions []int) []byte {
	if cap(dst) < len(positions)*b.m {
		dst = make([]byte, 0, len(positions)*b.m)
	}
	dst = dst[:0]
	for _, t := range positions {
		dst = append(dst, b.Block(t)...)
	}
	return dst
}

// Scatter copies a contiguous message back into the blocks at the given
// positions, in order. The message length must be len(positions)·m.
func (b *Buffer) Scatter(positions []int, msg []byte) error {
	if len(msg) != len(positions)*b.m {
		return fmt.Errorf("exchange: scatter of %d bytes into %d blocks of %d",
			len(msg), len(positions), b.m)
	}
	for i, t := range positions {
		copy(b.Block(t), msg[i*b.m:(i+1)*b.m])
	}
	return nil
}

// PayloadByte is the canonical test payload: byte i of the block sent from
// src to dst. It mixes src, dst and the offset so misplaced or torn blocks
// are detected.
func PayloadByte(src, dst, i int) byte {
	x := uint32(src)*2654435761 + uint32(dst)*40503 + uint32(i)*97
	x ^= x >> 15
	return byte(x)
}

// FillOutgoing initializes the buffer of node src for a complete exchange:
// block t gets the canonical payload for src→t.
func (b *Buffer) FillOutgoing(src int) {
	for t := 0; t < b.Blocks(); t++ {
		blk := b.Block(t)
		for i := range blk {
			blk[i] = PayloadByte(src, t, i)
		}
	}
}

// VerifyIncoming checks that the buffer of node dst holds, in block s, the
// canonical payload for s→dst — the postcondition of a complete exchange.
func (b *Buffer) VerifyIncoming(dst int) error {
	for s := 0; s < b.Blocks(); s++ {
		blk := b.Block(s)
		for i := range blk {
			if blk[i] != PayloadByte(s, dst, i) {
				return fmt.Errorf("exchange: node %d block %d byte %d = %#x, want %#x",
					dst, s, i, blk[i], PayloadByte(s, dst, i))
			}
		}
	}
	return nil
}

// FieldPositions returns, in increasing order, the block indices t of a
// d-cube buffer whose bit field [lo, lo+w) equals val. These are the
// positions exchanged with the partner whose label has that field value
// during a partial exchange (§5.2); there are 2^(d−w) of them, forming
// one effective block of m·2^(d−w) bytes.
func FieldPositions(d, lo, w, val int) []int {
	return AppendFieldPositions(nil, d, lo, w, val)
}

// AppendFieldPositions is FieldPositions appending into dst (contents are
// discarded, storage reused). It composes each position from its low and
// high free bits directly — 2^(d−w) iterations rather than a scan of all
// 2^d labels — so the per-step cost of Plan.Execute stays proportional to
// the data actually moved.
func AppendFieldPositions(dst []int, d, lo, w, val int) []int {
	if lo < 0 || w < 0 || lo+w > d {
		panic(fmt.Sprintf("exchange: field [%d,%d) out of a %d-cube label", lo, lo+w, d))
	}
	return AppendDigitPositions(dst, 1<<uint(d), 1<<uint(lo), 1<<uint(w), val)
}

// AppendDigitPositions is the mixed-radix generalization of
// AppendFieldPositions: it appends, in increasing order, the labels
// t ∈ [0, n) whose digit field of the given stride and span equals val —
// (t/stride) mod span == val. There are n/span of them, forming one
// effective block of m·n/span bytes. Contents of dst are discarded and
// its storage reused.
func AppendDigitPositions(dst []int, n, stride, span, val int) []int {
	dst = dst[:0]
	if val < 0 || val >= span {
		return dst // no label carries this field value
	}
	mid := val * stride
	outer := n / (stride * span)
	for hi := 0; hi < outer; hi++ {
		base := hi*stride*span + mid
		for t := base; t < base+stride; t++ {
			dst = append(dst, t)
		}
	}
	return dst
}
