package exchange

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/simnet"
)

// Execute runs the plan's phases on one node of any fabric. On entry buf
// must hold the node's outgoing blocks (block t = data for node t); on
// return block s holds the data received from node s.
//
// This is the paper's Multiphase procedure (§5.2), written once against
// the fabric interface and generalized to mixed-radix dimension fields.
// Each phase is preceded by a global synchronization (the posting of
// FORCED receives, §7.3) and — except when the phase spans the whole
// machine — followed by the shuffle charge ρ·m·n for the data
// permutation the gather/scatter performs. A step of an XOR phase
// exchanges one effective block (the gathered superblock) with partner
// f ⊕ j; a step of a cyclic phase sends the superblock for field f+j and
// receives the one from field f−j (mod Span), with all receives posted
// up front as on the iPSC-860 (§7.1).
func (p *Plan) Execute(nd fabric.Node, buf *Buffer) error {
	if nd.N() != p.Nodes() {
		return fmt.Errorf("exchange: plan for %d nodes on fabric of %d", p.Nodes(), nd.N())
	}
	if buf.Blocks() != p.Nodes() || buf.BlockSize() != p.m {
		return fmt.Errorf("exchange: buffer (n=%d,m=%d) does not match plan (n=%d,m=%d)",
			buf.Blocks(), buf.BlockSize(), p.Nodes(), p.m)
	}
	me := nd.ID()
	shuffleBytes := p.m * p.Nodes()
	// The superblock scratch circulates through Exchange's ownership
	// hand-off: each step gathers into the buffer received on the
	// previous step, so the whole plan allocates O(1) superblocks per
	// node instead of one per step. positions storage is reused the same
	// way.
	var scratch, staging []byte
	var positions []int
	for _, ph := range p.phases {
		nd.Barrier()
		if ph.XOR {
			for j := 1; j <= ph.steps(); j++ {
				q := ph.partner(me, j)
				positions = p.appendFieldPositions(positions, ph, q)
				out := buf.GatherInto(scratch, positions)
				in := nd.Exchange(q, out)
				if err := buf.Scatter(positions, in); err != nil {
					return fmt.Errorf("exchange: node %d phase lo=%d step %d: %w",
						me, ph.Lo, j, err)
				}
				scratch = in
			}
		} else {
			for j := 1; j <= ph.steps(); j++ {
				nd.PostRecv(ph.recvPeer(me, j))
			}
			// Unlike the XOR schedule, a cyclic step's send and receive
			// touch different position groups: group f+j leaves in step j
			// but is overwritten by the receive of step Span−j, which can
			// come first. Stage every outgoing superblock before any
			// incoming data lands in the buffer.
			need := ph.steps() * ph.EffBytes
			if cap(staging) < need {
				staging = make([]byte, 0, need)
			}
			staging = staging[:0]
			for j := 1; j <= ph.steps(); j++ {
				positions = p.appendFieldPositions(positions, ph, ph.sendPeer(me, j))
				for _, t := range positions {
					staging = append(staging, buf.Block(t)...)
				}
			}
			for j := 1; j <= ph.steps(); j++ {
				to, from := ph.sendPeer(me, j), ph.recvPeer(me, j)
				nd.Send(to, staging[(j-1)*ph.EffBytes:j*ph.EffBytes]) // Send copies
				in := nd.Recv(from)
				positions = p.appendFieldPositions(positions, ph, from)
				if err := buf.Scatter(positions, in); err != nil {
					return fmt.Errorf("exchange: node %d phase lo=%d step %d: %w",
						me, ph.Lo, j, err)
				}
			}
		}
		if ph.EffBlocks != 1 {
			nd.Shuffle(shuffleBytes)
		}
	}
	return nil
}

// RunOn executes the plan on every node of the given fabric with
// canonical payloads and verifies the complete-exchange postcondition on
// every node: block s of node q ends up holding exactly what s sent to q.
func (p *Plan) RunOn(fab fabric.Fabric, timeout time.Duration) error {
	if fab.N() != p.Nodes() {
		return fmt.Errorf("exchange: plan for %d nodes on fabric of %d", p.Nodes(), fab.N())
	}
	return fab.Run(func(nd fabric.Node) error {
		buf, err := NewBufferN(p.Nodes(), p.m)
		if err != nil {
			return err
		}
		buf.FillOutgoing(nd.ID())
		if err := p.Execute(nd, buf); err != nil {
			return err
		}
		return buf.VerifyIncoming(nd.ID())
	}, timeout)
}

// RunData executes the plan on a fresh goroutine-runtime fabric — the
// end-to-end real-data correctness check used by tests and examples.
func (p *Plan) RunData(timeout time.Duration) error {
	fab, err := fabric.NewRuntime(p.Nodes())
	if err != nil {
		return err
	}
	return p.RunOn(fab, timeout)
}

// Simulate runs the plan on a simulated fabric over the given network and
// returns the discrete-event result. The run both moves real data (the
// postcondition is verified) and costs the schedule in virtual time; the
// network's topology must match the plan's.
func (p *Plan) Simulate(net *simnet.Network) (simnet.Result, error) {
	if net.Topo().Name() != p.topo.Name() {
		return simnet.Result{}, fmt.Errorf("exchange: plan for %s on %s network",
			p.topo.Name(), net.Topo().Name())
	}
	fab := fabric.NewSim(net)
	if err := p.RunOn(fab, fabric.DefaultSimTimeout); err != nil {
		return simnet.Result{}, err
	}
	return fab.Result()
}
