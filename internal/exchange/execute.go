package exchange

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/simnet"
)

// Execute runs the plan's phases on one node of any fabric. On entry buf
// must hold the node's outgoing blocks (block t = data for node t); on
// return block s holds the data received from node s.
//
// This is the paper's Multiphase procedure (§5.2), written once against
// the fabric interface: each step j of a phase exchanges one effective
// block (the gathered superblock) with partner p ⊕ (j·2^lo); incoming
// superblocks are scattered back into the same positions. Every phase is
// preceded by a global synchronization (the posting of FORCED receives,
// §7.3) and — except when the phase spans the whole cube — followed by
// the shuffle charge ρ·m·2^d for the data permutation the gather/scatter
// performs.
func (p *Plan) Execute(nd fabric.Node, buf *Buffer) error {
	if nd.N() != p.Nodes() {
		return fmt.Errorf("exchange: plan for %d nodes on fabric of %d", p.Nodes(), nd.N())
	}
	if buf.Dim() != p.d || buf.BlockSize() != p.m {
		return fmt.Errorf("exchange: buffer (d=%d,m=%d) does not match plan (d=%d,m=%d)",
			buf.Dim(), buf.BlockSize(), p.d, p.m)
	}
	me := nd.ID()
	shuffleBytes := p.m << uint(p.d)
	// The superblock scratch circulates through Exchange's ownership
	// hand-off: each step gathers into the buffer received on the
	// previous step, so the whole plan allocates O(1) superblocks per
	// node instead of one per step. positions storage is reused the same
	// way.
	var scratch []byte
	var positions []int
	for _, ph := range p.phases {
		nd.Barrier()
		for j := 1; j <= ph.steps(); j++ {
			q := ph.partner(me, j)
			positions = p.appendSendPositions(positions, ph, q)
			out := buf.GatherInto(scratch, positions)
			in := nd.Exchange(q, out)
			if err := buf.Scatter(positions, in); err != nil {
				return fmt.Errorf("exchange: node %d phase lo=%d step %d: %w",
					me, ph.Lo, j, err)
			}
			scratch = in
		}
		if ph.SubcubeDim != p.d {
			nd.Shuffle(shuffleBytes)
		}
	}
	return nil
}

// RunOn executes the plan on every node of the given fabric with
// canonical payloads and verifies the complete-exchange postcondition on
// every node: block s of node q ends up holding exactly what s sent to q.
func (p *Plan) RunOn(fab fabric.Fabric, timeout time.Duration) error {
	if fab.N() != p.Nodes() {
		return fmt.Errorf("exchange: plan for %d nodes on fabric of %d", p.Nodes(), fab.N())
	}
	return fab.Run(func(nd fabric.Node) error {
		buf, err := NewBuffer(p.d, p.m)
		if err != nil {
			return err
		}
		buf.FillOutgoing(nd.ID())
		if err := p.Execute(nd, buf); err != nil {
			return err
		}
		return buf.VerifyIncoming(nd.ID())
	}, timeout)
}

// RunData executes the plan on a fresh goroutine-runtime fabric — the
// end-to-end real-data correctness check used by tests and examples.
func (p *Plan) RunData(timeout time.Duration) error {
	fab, err := fabric.NewRuntime(p.Nodes())
	if err != nil {
		return err
	}
	return p.RunOn(fab, timeout)
}

// Simulate runs the plan on a simulated fabric over the given network and
// returns the discrete-event result. The run both moves real data (the
// postcondition is verified) and costs the schedule in virtual time; the
// network's cube dimension must match the plan.
func (p *Plan) Simulate(net *simnet.Network) (simnet.Result, error) {
	if net.Cube().Dim() != p.d {
		return simnet.Result{}, fmt.Errorf("exchange: plan d=%d on %d-cube network",
			p.d, net.Cube().Dim())
	}
	fab := fabric.NewSim(net)
	if err := p.RunOn(fab, fabric.DefaultSimTimeout); err != nil {
		return simnet.Result{}, err
	}
	return fab.Result()
}
