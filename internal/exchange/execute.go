package exchange

import (
	"fmt"
	"time"

	"repro/internal/runtime"
	"repro/internal/simnet"
)

// Execute runs the plan's phases on one node of the goroutine runtime,
// moving the real bytes in buf. On entry buf must hold the node's outgoing
// blocks (block t = data for node t); on return block s holds the data
// received from node s.
//
// This is the paper's Multiphase procedure (§5.2). Each step j of a phase
// exchanges one effective block (the gathered superblock) with partner
// p ⊕ (j·2^lo); incoming superblocks are scattered back into the same
// positions, which performs the data permutation the paper charges as the
// per-phase shuffle.
func (p *Plan) Execute(nd *runtime.Node, buf *Buffer) error {
	if nd.N() != p.Nodes() {
		return fmt.Errorf("exchange: plan for %d nodes on cluster of %d", p.Nodes(), nd.N())
	}
	if buf.Dim() != p.d || buf.BlockSize() != p.m {
		return fmt.Errorf("exchange: buffer (d=%d,m=%d) does not match plan (d=%d,m=%d)",
			buf.Dim(), buf.BlockSize(), p.d, p.m)
	}
	me := nd.ID()
	for _, ph := range p.phases {
		// The implementation posts all receives and globally
		// synchronizes before each phase's FORCED-mode traffic (§7.3).
		nd.Barrier()
		for j := 1; j <= ph.steps(); j++ {
			q := ph.partner(me, j)
			positions := p.sendPositions(ph, q)
			out := buf.Gather(positions)
			in := nd.Exchange(q, out)
			if err := buf.Scatter(positions, in); err != nil {
				return fmt.Errorf("exchange: node %d phase lo=%d step %d: %w",
					me, ph.Lo, j, err)
			}
		}
	}
	return nil
}

// RunData executes the plan on a fresh goroutine cluster with canonical
// payloads and verifies the complete-exchange postcondition on every node.
// It is the end-to-end correctness check used by tests and examples.
func (p *Plan) RunData(timeout time.Duration) error {
	c, err := runtime.NewCluster(p.Nodes())
	if err != nil {
		return err
	}
	return c.Run(func(nd *runtime.Node) error {
		buf, err := NewBuffer(p.d, p.m)
		if err != nil {
			return err
		}
		buf.FillOutgoing(nd.ID())
		if err := p.Execute(nd, buf); err != nil {
			return err
		}
		return buf.VerifyIncoming(nd.ID())
	}, timeout)
}

// Programs generates the per-node simnet programs of the plan: for each
// phase, a global synchronization (modeling the posting of FORCED receives,
// §7.3), the subcube-restricted XOR schedule of pairwise exchanges with
// effective blocks, and — except when the phase spans the whole cube — the
// shuffle of the full local buffer (ρ·m·2^d).
func (p *Plan) Programs() []simnet.Program {
	n := p.Nodes()
	progs := make([]simnet.Program, n)
	shuffleBytes := p.m << uint(p.d)
	for node := 0; node < n; node++ {
		var prog simnet.Program
		for _, ph := range p.phases {
			prog = append(prog, simnet.Barrier())
			for j := 1; j <= ph.steps(); j++ {
				prog = append(prog, simnet.Exchange(ph.partner(node, j), ph.EffBytes))
			}
			if ph.SubcubeDim != p.d {
				prog = append(prog, simnet.Shuffle(shuffleBytes))
			}
		}
		progs[node] = prog
	}
	return progs
}

// Simulate runs the plan's programs on a simulated network and returns the
// result. The network's cube dimension must match the plan.
func (p *Plan) Simulate(net *simnet.Network) (simnet.Result, error) {
	if net.Cube().Dim() != p.d {
		return simnet.Result{}, fmt.Errorf("exchange: plan d=%d on %d-cube network",
			p.d, net.Cube().Dim())
	}
	return net.Run(p.Programs())
}
