package exchange

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// The central correctness theorem: for every partition of every dimension
// up to 5 (and a couple of block sizes), the multiphase exchange delivers
// block s of node p's outgoing data to slot s... i.e. after the run node q
// holds, in block s, exactly what s sent to q.
func TestRunDataAllPartitions(t *testing.T) {
	for d := 0; d <= 5; d++ {
		parts := partition.All(d)
		if d == 0 {
			parts = []partition.Partition{nil}
		}
		for _, D := range parts {
			for _, m := range []int{1, 8} {
				p, err := NewPlan(d, m, D)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.RunData(30 * time.Second); err != nil {
					t.Errorf("d=%d m=%d %v: %v", d, m, D, err)
				}
			}
		}
	}
}

func TestRunDataLargerCube(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, D := range []partition.Partition{{3, 4}, {2, 2, 3}, {7}, {1, 1, 1, 1, 1, 1, 1}} {
		p, err := NewPlan(7, 16, D)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunData(60 * time.Second); err != nil {
			t.Errorf("%v: %v", D, err)
		}
	}
}

func TestRunDataZeroBytes(t *testing.T) {
	p, err := NewPlan(3, 0, partition.Partition{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunData(10 * time.Second); err != nil {
		t.Errorf("zero-byte exchange: %v", err)
	}
}

// Property test: random dimension, partition, and block size.
func TestRunDataQuick(t *testing.T) {
	f := func(dRaw, pRaw, mRaw uint8) bool {
		d := int(dRaw)%5 + 1
		parts := partition.All(d)
		D := parts[int(pRaw)%len(parts)]
		m := int(mRaw)%17 + 1
		p, err := NewPlan(d, m, D)
		if err != nil {
			return false
		}
		return p.RunData(30*time.Second) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExecuteMismatchedBuffer(t *testing.T) {
	p, _ := NewPlan(3, 4, partition.Partition{3})
	c, err := runtime.NewCluster(8)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(nd *runtime.Node) error {
		bad, err := NewBuffer(3, 8) // wrong block size
		if err != nil {
			return err
		}
		if execErr := p.Execute(nd, bad); execErr == nil {
			return errMismatchExpected
		}
		return nil
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

var errMismatchExpected = fmtError("Execute accepted a mismatched buffer")

type fmtError string

func (e fmtError) Error() string { return string(e) }

func TestExecuteWrongClusterSize(t *testing.T) {
	p, _ := NewPlan(3, 4, partition.Partition{3})
	c, err := runtime.NewCluster(4) // plan wants 8
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(nd *runtime.Node) error {
		buf, _ := NewBuffer(3, 4)
		if execErr := p.Execute(nd, buf); execErr == nil {
			return errMismatchExpected
		}
		return nil
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

// Simulated virtual time must match the analytic model exactly when the
// schedule is contention-free and all nodes run in lockstep. This ties the
// three layers (model, simnet, exchange) together.
func TestSimulateMatchesModelHypothetical(t *testing.T) {
	prm := model.Hypothetical()
	for d := 1; d <= 6; d++ {
		net := simnet.New(topology.MustNew(d), prm)
		for _, D := range partition.All(d) {
			for _, m := range []int{1, 24, 100} {
				p, err := NewPlan(d, m, D)
				if err != nil {
					t.Fatal(err)
				}
				res, err := p.Simulate(net)
				if err != nil {
					t.Fatalf("d=%d %v: %v", d, D, err)
				}
				want, _ := prm.Multiphase(m, d, D)
				if !almost(res.Makespan, want, 1e-6) {
					t.Errorf("d=%d m=%d %v: sim %v, model %v", d, m, D, res.Makespan, want)
				}
				if res.ContentionStall != 0 {
					t.Errorf("d=%d %v: unexpected contention stall %v", d, D, res.ContentionStall)
				}
			}
		}
	}
}

func TestSimulateMatchesModelIPSC(t *testing.T) {
	prm := model.IPSC860()
	for _, d := range []int{5, 6, 7} {
		net := simnet.New(topology.MustNew(d), prm)
		for _, D := range []partition.Partition{{d}, {2, d - 2}} {
			for _, m := range []int{4, 40, 160, 400} {
				p, err := NewPlan(d, m, D)
				if err != nil {
					t.Fatal(err)
				}
				res, err := p.Simulate(net)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := prm.Multiphase(m, d, D)
				if !almost(res.Makespan, want, 1e-6) {
					t.Errorf("d=%d m=%d %v: sim %v, model %v", d, m, D, res.Makespan, want)
				}
			}
		}
	}
}

// §5.1 worked example, end to end on the simulator: hypothetical machine,
// d=6, m=24, partition {2,4} → 9984 µs (the paper's own arithmetic gives
// 10944 µs using a phase-2 effective block of 160 B where the formula
// m·2^(d−di) gives 96 B; see EXPERIMENTS.md).
func TestSimulateWorkedExample(t *testing.T) {
	prm := model.Hypothetical()
	net := simnet.New(topology.MustNew(6), prm)
	p, err := NewPlan(6, 24, partition.Partition{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Simulate(net)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 9984, 0.5) {
		t.Errorf("worked example = %v µs, want 9984", res.Makespan)
	}
	// And it must beat the Standard Exchange's 15144 µs.
	se, _ := NewStandardPlan(6, 24)
	seRes, err := se.Simulate(net)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(seRes.Makespan, 15144, 0.5) {
		t.Errorf("SE = %v µs, want 15144", seRes.Makespan)
	}
}

func TestSimulateDimensionMismatch(t *testing.T) {
	net := simnet.New(topology.MustNew(4), model.IPSC860())
	p, _ := NewPlan(3, 4, partition.Partition{3})
	if _, err := p.Simulate(net); err == nil {
		t.Error("dimension mismatch must fail")
	}
}

// The message/traffic counters of the simulation must agree with the
// plan's static counts.
func TestSimulateTrafficAccounting(t *testing.T) {
	net := simnet.New(topology.MustNew(5), model.IPSC860())
	p, _ := NewPlan(5, 12, partition.Partition{2, 3})
	res, err := p.Simulate(net)
	if err != nil {
		t.Fatal(err)
	}
	n := p.Nodes()
	if res.Messages != n*p.TotalMessages() {
		t.Errorf("messages = %d, want %d", res.Messages, n*p.TotalMessages())
	}
	if res.BytesMoved != n*p.TotalTraffic() {
		t.Errorf("bytes = %d, want %d", res.BytesMoved, n*p.TotalTraffic())
	}
	if res.Barriers != len(p.Phases()) {
		t.Errorf("barriers = %d, want %d", res.Barriers, len(p.Phases()))
	}
}
