package exchange_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func overlay(t *testing.T, base topology.Network, fs topology.FaultSet) *topology.Degraded {
	t.Helper()
	d, err := topology.Overlay(base, fs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Acceptance: a Degraded wrapper with zero faults plans and costs
// bit-identically to the bare network — pinned on hypercube and torus,
// on both optimizer backends and both plan-costing paths. Fresh
// optimizer instances per side keep the comparison honest (the
// optimizer's cache would otherwise collapse the two calls).
func TestZeroFaultOverlayBitIdentical(t *testing.T) {
	p := model.IPSC860()
	for _, spec := range []string{"hypercube-5", "torus-4x4x4"} {
		bare := topology.MustParseSpec(spec)
		wrapped := overlay(t, bare, topology.FaultSet{})
		for _, m := range []int{0, 16, 100} {
			// Plan construction and compiled-trace cost.
			planBare, err := exchange.NewPlanOn(bare, m, defaultGroups(bare))
			if err != nil {
				t.Fatal(err)
			}
			planWrapped, err := exchange.NewPlanOn(wrapped, m, defaultGroups(wrapped))
			if err != nil {
				t.Fatal(err)
			}
			resBare, err := planBare.Cost(simnet.New(bare, p))
			if err != nil {
				t.Fatal(err)
			}
			resWrapped, err := planWrapped.Cost(simnet.New(wrapped, p))
			if err != nil {
				t.Fatal(err)
			}
			if resBare.Makespan != resWrapped.Makespan {
				t.Fatalf("%s m=%d: compiled cost %v (bare) != %v (zero-fault overlay)",
					spec, m, resBare.Makespan, resWrapped.Makespan)
			}

			// Analytic model.
			tBare, _, err := p.MultiphaseOn(bare, m, defaultGroups(bare))
			if err != nil {
				t.Fatal(err)
			}
			tWrapped, _, err := p.MultiphaseOn(wrapped, m, defaultGroups(wrapped))
			if err != nil {
				t.Fatal(err)
			}
			if tBare != tWrapped {
				t.Fatalf("%s m=%d: analytic cost %v != %v", spec, m, tBare, tWrapped)
			}
		}

		// Full optimizer, both backends.
		for _, backend := range []string{"analytic", "simulated"} {
			mk := func() *optimize.Optimizer {
				if backend == "simulated" {
					return optimize.NewSimulated(p)
				}
				return optimize.New(p)
			}
			m := 64
			cBare, err := mk().BestOn(bare, m)
			if err != nil {
				t.Fatal(err)
			}
			cWrapped, err := mk().BestOn(wrapped, m)
			if err != nil {
				t.Fatal(err)
			}
			if !cBare.Part.Equal(cWrapped.Part) || cBare.TimeMicro != cWrapped.TimeMicro {
				t.Fatalf("%s %s: Best = (%v, %v) bare vs (%v, %v) zero-fault overlay",
					spec, backend, cBare.Part, cBare.TimeMicro, cWrapped.Part, cWrapped.TimeMicro)
			}
		}
	}
}

// defaultGroups returns the all-ones grouping (one dimension per phase)
// for any topology — valid on every shape.
func defaultGroups(net topology.Network) []int {
	g := make([]int, net.NumDims())
	for i := range g {
		g[i] = 1
	}
	return g
}

// Acceptance: a torus with one dead link produces a verified
// data-correct complete exchange on both fabrics (the Sim fabric moves
// and checks real payloads; the runtime fabric runs real goroutines).
func TestOneDeadLinkTorusExchangeBothFabrics(t *testing.T) {
	p := model.IPSC860()
	d := overlay(t, topology.MustParseSpec("torus-4x4"), topology.FaultSet{
		DeadLinks: []topology.Link{{A: 0, B: 1}},
	})
	if err := d.Operational(); err != nil {
		t.Fatal(err)
	}
	for _, groups := range [][]int{{1, 1}, {2}} {
		plan, err := exchange.NewPlanOn(d, 8, groups)
		if err != nil {
			t.Fatalf("exchange.NewPlanOn(%v): %v", groups, err)
		}
		// Sim fabric: Simulate verifies every payload landed correctly.
		if _, err := plan.Simulate(simnet.New(d, p)); err != nil {
			t.Fatalf("Simulate(%v): %v", groups, err)
		}
		// Runtime fabric: real goroutines, real data movement.
		if err := plan.RunData(30 * time.Second); err != nil {
			t.Fatalf("RunData(%v): %v", groups, err)
		}
	}
}

// A degraded fabric that cannot host a complete exchange fails plan
// construction with the typed unroutable error.
func TestPlanOnNonOperationalDegraded(t *testing.T) {
	dead := overlay(t, topology.MustParseSpec("torus-4x4"), topology.FaultSet{DeadNodes: []int{3}})
	if _, err := exchange.NewPlanOn(dead, 8, []int{1, 1}); !errors.Is(err, topology.ErrUnroutable) {
		t.Fatalf("NewPlanOn with dead node: %v, want ErrUnroutable", err)
	}
	severed := overlay(t, topology.MustParseSpec("mesh-6"), topology.FaultSet{
		DeadLinks: []topology.Link{{A: 2, B: 3}},
	})
	if _, err := exchange.NewPlanOn(severed, 8, []int{1}); !errors.Is(err, topology.ErrUnroutable) {
		t.Fatalf("NewPlanOn on severed mesh: %v, want ErrUnroutable", err)
	}
}
