package exchange

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// expectedEvents derives, from the plan alone, the (phase, step, partner,
// bytes) schedule node p must execute: per phase a barrier, then the
// subcube-restricted XOR steps exchanging effective blocks, then the
// shuffle charge for partial phases.
func expectedEvents(p *Plan, node int) []fabric.Event {
	var out []fabric.Event
	for _, ph := range p.phases {
		out = append(out, fabric.Event{Node: node, Op: "barrier", Peer: -1})
		for j := 1; j <= ph.steps(); j++ {
			out = append(out, fabric.Event{
				Node: node, Op: "exchange", Peer: ph.partner(node, j), Bytes: ph.EffBytes,
			})
		}
		if ph.EffBlocks != 1 {
			out = append(out, fabric.Event{
				Node: node, Op: "shuffle", Peer: -1, Bytes: p.m * p.Nodes(),
			})
		}
	}
	return out
}

// TestCrossBackendEquivalence is the backend-equivalence contract of the
// fabric layer: for d = 1..5, every partition of d, and several block
// sizes, the same Plan run on the runtime fabric and on the simnet fabric
// must (a) perform the identical sequence of (phase, step, partner,
// bytes) transfers on every node, (b) match the schedule derived from the
// plan itself, (c) satisfy the complete-exchange postcondition (RunOn
// verifies every block on every node), and (d) report simulator traffic
// totals equal to the plan's static counts.
func TestCrossBackendEquivalence(t *testing.T) {
	prm := model.IPSC860()
	for d := 1; d <= 5; d++ {
		n := 1 << uint(d)
		for _, D := range partition.All(d) {
			for _, m := range []int{1, 8, 40} {
				plan, err := NewPlan(d, m, D)
				if err != nil {
					t.Fatal(err)
				}

				rt, err := fabric.NewRuntime(n)
				if err != nil {
					t.Fatal(err)
				}
				recRT := fabric.Record(rt)
				if err := plan.RunOn(recRT, 30*time.Second); err != nil {
					t.Fatalf("runtime d=%d m=%d %v: %v", d, m, D, err)
				}

				sim := fabric.NewSim(simnet.New(topology.MustNew(d), prm))
				recSim := fabric.Record(sim)
				if err := plan.RunOn(recSim, 30*time.Second); err != nil {
					t.Fatalf("simnet d=%d m=%d %v: %v", d, m, D, err)
				}

				for node := 0; node < n; node++ {
					want := expectedEvents(plan, node)
					for name, got := range map[string][]fabric.Event{
						"runtime": recRT.Events[node], "simnet": recSim.Events[node],
					} {
						if len(got) != len(want) {
							t.Fatalf("d=%d m=%d %v node %d on %s: %d events, want %d",
								d, m, D, node, name, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("d=%d m=%d %v node %d on %s: event %d = %+v, want %+v",
									d, m, D, node, name, i, got[i], want[i])
							}
						}
					}
				}

				res, err := sim.Result()
				if err != nil {
					t.Fatal(err)
				}
				if res.Messages != n*plan.TotalMessages() {
					t.Errorf("d=%d m=%d %v: %d messages, want %d",
						d, m, D, res.Messages, n*plan.TotalMessages())
				}
				if res.BytesMoved != n*plan.TotalTraffic() {
					t.Errorf("d=%d m=%d %v: %d bytes, want %d",
						d, m, D, res.BytesMoved, n*plan.TotalTraffic())
				}
				if res.Barriers != len(plan.Phases()) {
					t.Errorf("d=%d m=%d %v: %d barriers, want %d",
						d, m, D, res.Barriers, len(plan.Phases()))
				}
			}
		}
	}
}
