package exchange

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// groupingsOf enumerates every ordered composition of k — the candidate
// dimension groupings of a k-dimensional topology.
func groupingsOf(k int) []partition.Partition {
	if k == 0 {
		return []partition.Partition{nil}
	}
	var out []partition.Partition
	for first := 1; first <= k; first++ {
		for _, rest := range groupingsOf(k - first) {
			out = append(out, append(partition.Partition{first}, rest...))
		}
	}
	return out
}

// Every grouping of every tested topology must move real data correctly
// on the goroutine runtime fabric: block s of node q ends up holding
// exactly what s sent to q.
func TestGeneralPlanDataMovement(t *testing.T) {
	for _, spec := range []string{"torus-3", "torus-4x4", "torus-3x2x2", "mesh-3x3", "mesh-2x2x2"} {
		topo := topology.MustParseSpec(spec)
		for _, G := range groupingsOf(topo.NumDims()) {
			plan, err := NewPlanOn(topo, 8, G)
			if err != nil {
				t.Fatalf("%s %v: %v", spec, G, err)
			}
			if err := plan.RunData(time.Minute); err != nil {
				t.Errorf("%s %v: %v", spec, G, err)
			}
		}
	}
}

// Cross-backend equivalence on a non-hypercube machine: the same plan
// run on the goroutine runtime fabric and on the simulated fabric must
// both satisfy the complete-exchange postcondition, and the simulated
// run must report a plausible cost.
func TestTorusCrossBackendEquivalence(t *testing.T) {
	topo := topology.MustParseSpec("torus-4x4x4")
	prm := model.IPSC860()
	for _, G := range []partition.Partition{{3}, {1, 2}, {2, 1}, {1, 1, 1}} {
		plan, err := NewPlanOn(topo, 16, G)
		if err != nil {
			t.Fatal(err)
		}
		// Runtime backend: real goroutines, real channels.
		if err := plan.RunData(time.Minute); err != nil {
			t.Fatalf("runtime backend %v: %v", G, err)
		}
		// Simulated backend: real data plus discrete-event costing.
		res, err := plan.Simulate(simnet.New(topo, prm))
		if err != nil {
			t.Fatalf("sim backend %v: %v", G, err)
		}
		if res.Makespan <= 0 {
			t.Errorf("%v: non-positive makespan %v", G, res.Makespan)
		}
		if res.DroppedForced != 0 {
			t.Errorf("%v: %d FORCED messages arrived before their receive was posted",
				G, res.DroppedForced)
		}
	}
}

// Compiled-vs-recorded-trace equivalence on torus and mesh: the trace
// compiler must produce, op for op, exactly the per-node programs a live
// simulated-fabric run records, and replaying either must give the same
// simulated cost.
func TestCompiledMatchesRecordedTraceOnGrids(t *testing.T) {
	prm := model.IPSC860()
	for _, tc := range []struct {
		spec string
		G    partition.Partition
		m    int
	}{
		{"torus-4x4x4", partition.Partition{3}, 8},
		{"torus-4x4x4", partition.Partition{1, 2}, 8},
		{"torus-4x4x4", partition.Partition{1, 1, 1}, 8},
		{"torus-3x2x2", partition.Partition{2, 1}, 4},
		{"mesh-3x3", partition.Partition{1, 1}, 4},
		{"mesh-4x2", partition.Partition{2}, 0},
	} {
		topo := topology.MustParseSpec(tc.spec)
		plan, err := NewPlanOn(topo, tc.m, tc.G)
		if err != nil {
			t.Fatal(err)
		}
		net := simnet.New(topo, prm)
		fab := fabric.NewSim(net)
		if err := plan.RunOn(fab, fabric.DefaultSimTimeout); err != nil {
			t.Fatalf("%s %v: %v", tc.spec, tc.G, err)
		}
		recorded := fab.Traces()
		compiled := plan.Compile()
		if compiled.NumNodes() != len(recorded) {
			t.Fatalf("%s %v: %d compiled nodes, %d recorded", tc.spec, tc.G, compiled.NumNodes(), len(recorded))
		}
		for p := range recorded {
			if got, want := compiled.NumOps(p), len(recorded[p]); got != want {
				t.Fatalf("%s %v node %d: %d compiled ops, %d recorded", tc.spec, tc.G, p, got, want)
			}
			for i := range recorded[p] {
				if got, want := compiled.Op(p, i), recorded[p][i]; got != want {
					t.Fatalf("%s %v node %d op %d: compiled %+v, recorded %+v",
						tc.spec, tc.G, p, i, got, want)
				}
			}
		}
		live, err := fab.Result()
		if err != nil {
			t.Fatal(err)
		}
		costed, err := plan.Cost(simnet.New(topo, prm))
		if err != nil {
			t.Fatal(err)
		}
		if live.Makespan != costed.Makespan || live.Messages != costed.Messages {
			t.Errorf("%s %v: recorded replay (%v µs, %d msgs) != compiled replay (%v µs, %d msgs)",
				tc.spec, tc.G, live.Makespan, live.Messages, costed.Makespan, costed.Messages)
		}
	}
}

// A torus whose radices are all 2 must lay out exactly like the
// hypercube of the same size: XOR phases, identical compiled programs.
func TestAllRadix2TorusMatchesHypercube(t *testing.T) {
	cube := topology.MustNew(3)
	tor := topology.MustParseSpec("torus-2x2x2")
	for _, G := range []partition.Partition{{3}, {2, 1}, {1, 1, 1}} {
		pc, err := NewPlanOn(cube, 8, G)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := NewPlanOn(tor, 8, G)
		if err != nil {
			t.Fatal(err)
		}
		cc, ct := pc.Compile(), pt.Compile()
		if cc.NumNodes() != ct.NumNodes() || cc.NumOps(0) != ct.NumOps(0) {
			t.Fatalf("%v: layout mismatch", G)
		}
		for p := 0; p < cc.NumNodes(); p++ {
			for i := 0; i < cc.NumOps(p); i++ {
				if cc.Op(p, i) != ct.Op(p, i) {
					t.Fatalf("%v node %d op %d: cube %+v, torus %+v", G, p, i, cc.Op(p, i), ct.Op(p, i))
				}
			}
		}
	}
}

// The generalized step schedule must stay a permutation per step, and
// XOR steps must remain edge-contention-free under dimension-ordered
// routing (the paper's §4.2 property, preserved on the radix-2 fields of
// mixed tori).
func TestGeneralStepsArePermutations(t *testing.T) {
	for _, spec := range []string{"torus-4x4", "torus-3x2x2", "mesh-3x3"} {
		topo := topology.MustParseSpec(spec)
		for _, G := range groupingsOf(topo.NumDims()) {
			plan, err := NewPlanOn(topo, 1, G)
			if err != nil {
				t.Fatal(err)
			}
			for k, step := range plan.Steps() {
				seenSrc := make(map[int]bool)
				seenDst := make(map[int]bool)
				for _, tr := range step {
					if seenSrc[tr.Src] || seenDst[tr.Dst] {
						t.Fatalf("%s %v step %d: not a permutation", spec, G, k)
					}
					seenSrc[tr.Src], seenDst[tr.Dst] = true, true
				}
				if len(step) != topo.Nodes() {
					t.Fatalf("%s %v step %d: %d transfers for %d nodes", spec, G, k, len(step), topo.Nodes())
				}
			}
		}
	}
}
