package exchange

import (
	"fmt"

	"repro/internal/simnet"
)

// CompiledPlan is the trace-compiled form of a Plan: the exact per-node
// simnet programs a live fabric.Sim run of Plan.Execute would record,
// derived deterministically from the phase layout — no goroutines, no
// mailboxes, no payload bytes. Because every node runs the same op
// sequence up to XOR-relabeling of partners, the compiled form stores one
// shared op table and computes each node's partner on the fly, so even a
// million-node plan costs O(ops per node) memory instead of O(2^d · ops).
//
// CompiledPlan implements simnet.Source; fabric.Sim's recorded traces are
// the oracle the compiler is tested against (op-for-op equality).
type CompiledPlan struct {
	d, m int
	n    int
	rows []compiledOp
}

// compiledOp is one row of the shared op table. For exchange rows, node
// p's partner is p XOR mask (mask = j·2^lo never being zero, a compiled
// exchange is never a self-exchange).
type compiledOp struct {
	kind  simnet.OpKind
	mask  int
	bytes int
}

// Compile lowers the plan to its per-node simnet programs: for each phase
// a barrier (the posting of FORCED receives, §7.3), the 2^di − 1 subcube
// pairwise exchanges of one effective block each, and — except when the
// phase spans the whole cube — the ρ·m·2^d shuffle charge, mirroring
// Execute exactly.
func (p *Plan) Compile() *CompiledPlan {
	c := &CompiledPlan{d: p.d, m: p.m, n: p.Nodes()}
	for _, ph := range p.phases {
		c.rows = append(c.rows, compiledOp{kind: simnet.OpBarrier})
		for j := 1; j <= ph.steps(); j++ {
			c.rows = append(c.rows, compiledOp{
				kind:  simnet.OpExchange,
				mask:  j << uint(ph.Lo),
				bytes: ph.EffBytes,
			})
		}
		if ph.SubcubeDim != p.d {
			c.rows = append(c.rows, compiledOp{kind: simnet.OpShuffle, bytes: p.m << uint(p.d)})
		}
	}
	return c
}

// NumNodes returns 2^d.
func (c *CompiledPlan) NumNodes() int { return c.n }

// NumOps returns the program length, identical for every node.
func (c *CompiledPlan) NumOps(int) int { return len(c.rows) }

// Ops returns the total op count over all nodes.
func (c *CompiledPlan) Ops() int { return c.n * len(c.rows) }

// Op returns node p's i-th op.
func (c *CompiledPlan) Op(p, i int) simnet.Op {
	r := c.rows[i]
	switch r.kind {
	case simnet.OpExchange:
		return simnet.Op{Kind: simnet.OpExchange, Peer: p ^ r.mask, Bytes: r.bytes}
	case simnet.OpShuffle:
		return simnet.Op{Kind: simnet.OpShuffle, Bytes: r.bytes}
	default:
		return simnet.Op{Kind: r.kind}
	}
}

// Programs materializes the per-node programs — the form fabric.Sim
// records and the equivalence tests compare against. Intended for tests
// and small dimensions; costing at scale should pass the CompiledPlan
// itself to simnet.Network.RunSource.
func (c *CompiledPlan) Programs() []simnet.Program {
	out := make([]simnet.Program, c.n)
	for p := 0; p < c.n; p++ {
		prog := make(simnet.Program, len(c.rows))
		for i := range c.rows {
			prog[i] = c.Op(p, i)
		}
		out[p] = prog
	}
	return out
}

// Cost replays the compiled plan through the discrete-event simulator and
// returns the virtual-time result. This is the fast costing path: unlike
// Simulate it moves no payload bytes and spawns no goroutines, so it is
// the right tool for optimizer enumeration and figure sweeps; use
// Simulate when the data movement itself should be machine-checked.
func (p *Plan) Cost(net *simnet.Network) (simnet.Result, error) {
	if net.Cube().Dim() != p.d {
		return simnet.Result{}, fmt.Errorf("exchange: plan d=%d on %d-cube network",
			p.d, net.Cube().Dim())
	}
	return net.RunSource(p.Compile())
}
