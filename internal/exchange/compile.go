package exchange

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/simnet"
)

// CompiledPlan is the trace-compiled form of a Plan: the exact per-node
// simnet programs a live fabric.Sim run of Plan.Execute would record,
// derived deterministically from the phase layout — no goroutines, no
// mailboxes, no payload bytes. Because every node runs the same op
// sequence up to relabeling of partners (XOR on radix-2 fields, cyclic
// shift on mixed-radix ones), the compiled form stores one shared op
// table and computes each node's partner on the fly, so even a
// million-node plan costs O(ops per node) memory instead of O(n · ops).
//
// CompiledPlan implements simnet.Source; fabric.Sim's recorded traces are
// the oracle the compiler is tested against (op-for-op equality).
type CompiledPlan struct {
	m     int
	n     int
	topo  string
	rows  []compiledOp
	spans []simnet.PhaseSpan
}

// compiledOp is one row of the shared op table. For bit-aligned XOR
// exchange rows, node p's partner is p XOR mask (mask = j·2^lo never
// being zero, a compiled exchange is never a self-exchange). All other
// communication rows locate the partner through the phase's digit field:
// f = (p/stride) mod span, shifted by ±shift (XOR'd for non-bit-aligned
// radix-2 fields).
type compiledOp struct {
	kind   simnet.OpKind
	mask   int // fast path: peer = p ^ mask (OpExchange, mask > 0)
	shift  int // field shift j; receive rows use −j
	stride int
	span   int
	xor    bool // field combines by XOR instead of cyclic shift
	bytes  int
}

// Compile lowers the plan to its per-node simnet programs, mirroring
// Execute exactly: for each phase a barrier (the posting of FORCED
// receives, §7.3), then the phase's steps, and — except when the phase
// spans the whole machine — the ρ·m·n shuffle charge. XOR phases run
// Span−1 pairwise exchanges of one effective block each; cyclic phases
// post their Span−1 receives up front and run Span−1 send/wait pairs.
func (p *Plan) Compile() *CompiledPlan {
	c := &CompiledPlan{m: p.m, n: p.Nodes(), topo: p.topo.Name()}
	for _, ph := range p.phases {
		lo := len(c.rows)
		c.rows = appendPhaseRows(c.rows, ph, p.m*c.n)
		c.spans = append(c.spans, simnet.PhaseSpan{
			Rows:   len(c.rows) - lo,
			Stride: ph.Stride,
			Span:   ph.Span,
		})
	}
	return c
}

// CompilePhase lowers phase i alone — its barrier, its steps, and its
// shuffle — to a standalone CompiledPlan over the same topology. The rows
// are exactly the corresponding slice of Compile's row table, so a
// single-phase plan's fragment replay is bit-identical to its whole-plan
// Cost. The optimizer's memoized costing replays one fragment per
// distinct (field, m) instead of recompiling and replaying every
// candidate plan whole.
func (p *Plan) CompilePhase(i int) *CompiledPlan {
	c := &CompiledPlan{m: p.m, n: p.Nodes(), topo: p.topo.Name()}
	c.rows = appendPhaseRows(c.rows, p.phases[i], p.m*c.n)
	c.spans = []simnet.PhaseSpan{{
		Rows:   len(c.rows),
		Stride: p.phases[i].Stride,
		Span:   p.phases[i].Span,
	}}
	return c
}

// NumPhases returns the number of phases in the plan.
func (p *Plan) NumPhases() int { return len(p.phases) }

// appendPhaseRows emits one phase's rows: the barrier, the steps, and —
// except when the phase spans the whole machine — the shuffle charge.
func appendPhaseRows(rows []compiledOp, ph Phase, shuffleBytes int) []compiledOp {
	rows = append(rows, compiledOp{kind: simnet.OpBarrier})
	if ph.XOR {
		for j := 1; j <= ph.steps(); j++ {
			row := compiledOp{
				kind:   simnet.OpExchange,
				shift:  j,
				stride: ph.Stride,
				span:   ph.Span,
				xor:    true,
				bytes:  ph.EffBytes,
			}
			if bitutil.IsPow2(ph.Stride) {
				row.mask = j * ph.Stride
			}
			rows = append(rows, row)
		}
	} else {
		for j := 1; j <= ph.steps(); j++ {
			rows = append(rows, compiledOp{
				kind:   simnet.OpPostRecv,
				shift:  j,
				stride: ph.Stride,
				span:   ph.Span,
			})
		}
		for j := 1; j <= ph.steps(); j++ {
			rows = append(rows,
				compiledOp{
					kind:   simnet.OpSend,
					shift:  j,
					stride: ph.Stride,
					span:   ph.Span,
					bytes:  ph.EffBytes,
				},
				compiledOp{
					kind:   simnet.OpWaitRecv,
					shift:  j,
					stride: ph.Stride,
					span:   ph.Span,
				})
		}
	}
	if ph.EffBlocks != 1 {
		rows = append(rows, compiledOp{kind: simnet.OpShuffle, bytes: shuffleBytes})
	}
	return rows
}

// PhaseSpans returns the plan's per-phase span structure — one entry per
// phase, covering that phase's barrier, step and shuffle rows — making
// CompiledPlan a simnet.Sharded source: a replay may split each phase
// across link-disjoint sub-block shards (simnet.Network.SetReplayShards).
// Callers must not modify the returned slice.
func (c *CompiledPlan) PhaseSpans() []simnet.PhaseSpan { return c.spans }

// NumNodes returns the topology's node count.
func (c *CompiledPlan) NumNodes() int { return c.n }

// NumOps returns the program length, identical for every node.
func (c *CompiledPlan) NumOps(int) int { return len(c.rows) }

// Ops returns the total op count over all nodes.
func (c *CompiledPlan) Ops() int { return c.n * len(c.rows) }

// peer computes node p's communication partner for a generic row.
func (r compiledOp) peer(p int) int {
	f := (p / r.stride) % r.span
	var g int
	switch {
	case r.xor:
		g = f ^ r.shift
	case r.kind == simnet.OpSend:
		g = (f + r.shift) % r.span
	default: // receive rows pair with the sender shifted the other way
		g = (f - r.shift + r.span) % r.span
	}
	return p + (g-f)*r.stride
}

// Op returns node p's i-th op.
func (c *CompiledPlan) Op(p, i int) simnet.Op {
	r := c.rows[i]
	switch r.kind {
	case simnet.OpExchange:
		if r.mask != 0 {
			return simnet.Op{Kind: simnet.OpExchange, Peer: p ^ r.mask, Bytes: r.bytes}
		}
		return simnet.Op{Kind: simnet.OpExchange, Peer: r.peer(p), Bytes: r.bytes}
	case simnet.OpSend, simnet.OpPostRecv, simnet.OpWaitRecv:
		return simnet.Op{Kind: r.kind, Peer: r.peer(p), Bytes: r.bytes}
	case simnet.OpShuffle:
		return simnet.Op{Kind: simnet.OpShuffle, Bytes: r.bytes}
	default:
		return simnet.Op{Kind: r.kind}
	}
}

// Programs materializes the per-node programs — the form fabric.Sim
// records and the equivalence tests compare against. Intended for tests
// and small topologies; costing at scale should pass the CompiledPlan
// itself to simnet.Network.RunSource.
func (c *CompiledPlan) Programs() []simnet.Program {
	out := make([]simnet.Program, c.n)
	for p := 0; p < c.n; p++ {
		prog := make(simnet.Program, len(c.rows))
		for i := range c.rows {
			prog[i] = c.Op(p, i)
		}
		out[p] = prog
	}
	return out
}

// Cost replays the compiled plan through the discrete-event simulator and
// returns the virtual-time result. This is the fast costing path: unlike
// Simulate it moves no payload bytes and spawns no goroutines, so it is
// the right tool for optimizer enumeration and figure sweeps; use
// Simulate when the data movement itself should be machine-checked.
func (p *Plan) Cost(net *simnet.Network) (simnet.Result, error) {
	if net.Topo().Name() != p.topo.Name() {
		return simnet.Result{}, fmt.Errorf("exchange: plan for %s on %s network",
			p.topo.Name(), net.Topo().Name())
	}
	return net.RunSource(p.Compile())
}
