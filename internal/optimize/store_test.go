package optimize

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	prm := model.IPSC860()
	o := New(prm)
	tbl, err := o.BuildTable(6, 0, 400, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTable(&buf, tbl, prm); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(&buf, prm)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != tbl.D || len(got.Segments) != len(tbl.Segments) {
		t.Fatalf("round trip shape: %+v vs %+v", got, tbl)
	}
	for i := range tbl.Segments {
		if !got.Segments[i].Part.Equal(tbl.Segments[i].Part) ||
			got.Segments[i].MinBlock != tbl.Segments[i].MinBlock ||
			got.Segments[i].MaxBlock != tbl.Segments[i].MaxBlock {
			t.Errorf("segment %d differs: %+v vs %+v", i, got.Segments[i], tbl.Segments[i])
		}
	}
	// Lookups must agree.
	for m := 0; m <= 400; m += 40 {
		if !got.Lookup(m).Equal(tbl.Lookup(m)) {
			t.Errorf("m=%d: %v vs %v", m, got.Lookup(m), tbl.Lookup(m))
		}
	}
}

func TestLoadRejectsWrongMachine(t *testing.T) {
	prm := model.IPSC860()
	o := New(prm)
	tbl, err := o.BuildTable(5, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTable(&buf, tbl, prm); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTable(&buf, model.Hypothetical()); err == nil ||
		!strings.Contains(err.Error(), "different machine") {
		t.Errorf("mismatched machine must be rejected, got %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadTable(strings.NewReader("not json"), model.IPSC860()); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := LoadTable(strings.NewReader(`{"version":2}`), model.IPSC860()); err == nil {
		t.Error("wrong version must fail")
	}
}

func TestLoadRejectsInvalidSegments(t *testing.T) {
	prm := model.IPSC860()
	// A partition that does not sum to d.
	bad := `{"version":1,"d":5,"machine":{"lambda":95,"tau":0.394,"delta":10.3,"rho":0.54,` +
		`"lambda_zero":82.5,"global_sync_per_dim":150,"exchange_mode":1,"global_sync_per_phase":true},` +
		`"segments":[{"partition":[9],"min_block":0,"max_block":10}]}`
	if _, err := LoadTable(strings.NewReader(bad), prm); err == nil {
		t.Error("invalid partition must be rejected")
	}
	bad2 := strings.Replace(bad, `[9]`, `[2,3]`, 1)
	bad2 = strings.Replace(bad2, `"min_block":0,"max_block":10`, `"min_block":10,"max_block":0`, 1)
	if _, err := LoadTable(strings.NewReader(bad2), prm); err == nil {
		t.Error("inverted range must be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	prm := model.IPSC860()
	o := New(prm)
	tbl, err := o.BuildTable(5, 0, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hull-d5.json")
	if err := SaveTableFile(path, tbl, prm); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableFile(path, prm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != len(tbl.Segments) {
		t.Error("file round trip lost segments")
	}
	if _, err := LoadTableFile(filepath.Join(t.TempDir(), "missing.json"), prm); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v", err)
	}
}
