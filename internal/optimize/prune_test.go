package optimize

import (
	"context"
	"sync"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// equivalenceShapes are the three topology families the acceptance
// criteria name; all small enough for both backends.
var equivalenceShapes = []string{"hypercube-6", "torus-4x4", "mesh-3x3", "torus-8x2x2"}

func shapeNet(t *testing.T, spec string) topology.Network {
	t.Helper()
	if spec == "hypercube-6" {
		net, err := topology.New(6)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	return topology.MustParseSpec(spec)
}

// The tentpole invariant: the pruned, best-first, parallel enumeration
// must return the exact same Choice — partition and bit-identical
// TimeMicro — as exhaustive serial enumeration, on every topology shape
// and both backends.
func TestPrunedParallelEquivalentToExhaustiveSerial(t *testing.T) {
	prm := model.IPSC860()
	for _, spec := range equivalenceShapes {
		for _, backend := range []Backend{Analytic, Simulated} {
			net := shapeNet(t, spec)
			newOpt := New
			if backend == Simulated {
				newOpt = NewSimulated
			}
			serial := newOpt(prm)
			serial.SetExhaustive(true)
			serial.SetWorkers(1)
			pruned := newOpt(prm)
			pruned.SetWorkers(4)
			for _, m := range []int{0, 4, 40, 200} {
				want, err := serial.BestOn(net, m)
				if err != nil {
					t.Fatalf("%s %v m=%d serial: %v", spec, backend, m, err)
				}
				got, err := pruned.BestOn(net, m)
				if err != nil {
					t.Fatalf("%s %v m=%d pruned: %v", spec, backend, m, err)
				}
				if !got.Part.Equal(want.Part) || got.TimeMicro != want.TimeMicro {
					t.Errorf("%s %v m=%d: pruned+parallel %v/%v µs, exhaustive-serial %v/%v µs",
						spec, backend, m, got.Part, got.TimeMicro, want.Part, want.TimeMicro)
				}
			}
		}
	}
}

// BuildTableOn must produce the identical table under pruning and
// parallelism as under exhaustive serial enumeration.
func TestPrunedTableEquivalentToExhaustiveSerial(t *testing.T) {
	prm := model.IPSC860()
	for _, spec := range []string{"hypercube-6", "torus-4x4", "mesh-3x3"} {
		net := shapeNet(t, spec)
		serial := NewSimulated(prm)
		serial.SetExhaustive(true)
		serial.SetWorkers(1)
		pruned := NewSimulated(prm)
		pruned.SetWorkers(4)
		want, err := serial.BuildTableOn(net, 0, 96, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pruned.BuildTableOn(net, 0, 96, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got.Topo != want.Topo || got.D != want.D || len(got.Segments) != len(want.Segments) {
			t.Fatalf("%s: table shape differs: %+v vs %+v", spec, got, want)
		}
		for i := range got.Segments {
			g, w := got.Segments[i], want.Segments[i]
			if !g.Part.Equal(w.Part) || g.MinBlock != w.MinBlock || g.MaxBlock != w.MaxBlock {
				t.Errorf("%s segment %d: pruned %+v, exhaustive %+v", spec, i, g, w)
			}
		}
	}
}

// The memoized analytic phase-sum must be bit-identical to the
// unmemoized closed forms, cold and warm, on every grouping — the
// property that keeps the optimizer's reported times exactly equal to
// Multiphase/MultiphaseOn.
func TestMemoizedAnalyticCostMatchesUnmemoized(t *testing.T) {
	prm := model.IPSC860()
	for _, spec := range equivalenceShapes {
		net := shapeNet(t, spec)
		o := New(prm)
		es, err := o.enumFor(net)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{0, 3, 40, 331} {
			for pass := 0; pass < 2; pass++ { // cold memo, then warm
				for i, D := range es.parts {
					got, err := o.candidateCost(nil, net, m, D, es.fields[i])
					if err != nil {
						t.Fatal(err)
					}
					want, _, err := prm.MultiphaseOn(net, m, D)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("%s m=%d %v pass %d: memoized %v, MultiphaseOn %v",
							spec, m, D, pass, got, want)
					}
				}
			}
		}
	}
}

// The branch-and-bound cut is only sound if the bound never exceeds the
// simulated cost. Check candidate-level admissibility — the per-phase
// bound sum against both the fragment-sum screening cost and the
// whole-plan makespan — on every grouping of every shape.
func TestLowerBoundAdmissible(t *testing.T) {
	for _, prm := range []model.Params{model.IPSC860(), model.IPSC860Raw(), model.Hypothetical()} {
		for _, spec := range equivalenceShapes {
			net := shapeNet(t, spec)
			o := NewSimulated(prm)
			es, err := o.enumFor(net)
			if err != nil {
				t.Fatal(err)
			}
			sim := simnet.New(net, prm)
			for _, m := range []int{0, 8, 100} {
				for i, D := range es.parts {
					lb, err := o.candidateBound(net, m, es.fields[i])
					if err != nil {
						t.Fatal(err)
					}
					screen, err := o.candidateCost(sim, net, m, D, es.fields[i])
					if err != nil {
						t.Fatal(err)
					}
					plan, err := exchange.NewPlanOn(net, m, D)
					if err != nil {
						t.Fatal(err)
					}
					res, err := plan.Cost(sim)
					if err != nil {
						t.Fatal(err)
					}
					if lb > screen*(1+pruneSlack) {
						t.Errorf("%s m=%d %v: bound %v above fragment-sum %v", spec, m, D, lb, screen)
					}
					if lb > res.Makespan*(1+pruneSlack) {
						t.Errorf("%s m=%d %v: bound %v above whole-plan %v", spec, m, D, lb, res.Makespan)
					}
					// The screening phase-sum tracks the whole-plan
					// makespan closely. The decomposition is exact in
					// real arithmetic (barriers serialize phases), but
					// contended cyclic phases resolve exactly-tied link
					// acquisitions by float comparison of absolute
					// times, and a phase replayed from a different
					// start offset can flip a tie and cascade into a
					// slightly different schedule (observed ≤ 2% on
					// torus-8x2x2). Contention-free phases decompose to
					// float noise.
					tol := 1e-9*res.Makespan + 1e-9
					if res.ContentionStall > 0 {
						tol = 0.05*res.Makespan + 1e-9
					}
					if diff := screen - res.Makespan; diff > tol || -diff > tol {
						t.Errorf("%s m=%d %v: fragment-sum %v vs whole-plan %v (stall %v)",
							spec, m, D, screen, res.Makespan, res.ContentionStall)
					}
				}
			}
		}
	}
}

// A d=10 simulated enumeration on the contention-free hypercube must
// both prune and hit the memo; every dequeued candidate lands in exactly
// one of the two counters.
func TestStatsCounters(t *testing.T) {
	o := NewSimulated(model.IPSC860())
	if _, err := o.Best(10, 4); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Evaluations != 1 {
		t.Errorf("Evaluations = %d, want 1", st.Evaluations)
	}
	total := int64(len(partition.All(10)))
	if st.Evaluated+st.Pruned != total {
		t.Errorf("Evaluated %d + Pruned %d != %d candidates", st.Evaluated, st.Pruned, total)
	}
	if st.Pruned == 0 {
		t.Error("pruning never engaged on a d=10 enumeration")
	}
	if st.Evaluated == 0 {
		t.Error("no candidate was evaluated")
	}
	if st.MemoMisses == 0 {
		t.Error("memo never filled")
	}
	var sum Stats
	sum.Add(st)
	sum.Add(st)
	if sum.Pruned != 2*st.Pruned || sum.Evaluations != 2 {
		t.Errorf("Stats.Add: %+v", sum)
	}
}

// A table sweep runs exactly one enumeration per swept point, a rebuild
// runs none (per-point cache), and concurrent duplicate sweeps share the
// same builds instead of multiplying them.
func TestBuildTableBuildsPerSweep(t *testing.T) {
	o := New(model.IPSC860())
	const lo, hi, step = 0, 64, 2
	points := int64(0)
	for m := lo; m <= hi; m += step {
		points++
	}
	if _, err := o.BuildTable(6, lo, hi, step); err != nil {
		t.Fatal(err)
	}
	if got := o.Evaluations(); got != points {
		t.Errorf("first sweep ran %d enumerations, want %d", got, points)
	}
	if _, err := o.BuildTable(6, lo, hi, step); err != nil {
		t.Fatal(err)
	}
	if got := o.Evaluations(); got != points {
		t.Errorf("rebuild re-ran enumerations: %d, want %d", got, points)
	}

	// Fresh optimizer, 8 concurrent identical sweeps: still one
	// enumeration per point.
	o2 := New(model.IPSC860())
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = o2.BuildTable(6, lo, hi, step)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := o2.Evaluations(); got != points {
		t.Errorf("8 concurrent sweeps ran %d enumerations, want %d", got, points)
	}
}

// The warm-start hint reorders evaluation only; even a deliberately bad
// hint must not change the winner.
func TestHintDoesNotChangeResult(t *testing.T) {
	prm := model.IPSC860()
	net := topology.MustParseSpec("torus-4x4x4")
	want, err := NewSimulated(prm).BestOn(net, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, hint := range []partition.Partition{{3}, {1, 1, 1}, {2, 1}} {
		o := NewSimulated(prm)
		got, err := o.bestOn(context.Background(), net, 40, hint)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Part.Equal(want.Part) || got.TimeMicro != want.TimeMicro {
			t.Errorf("hint %v: %v/%v µs, want %v/%v µs", hint, got.Part, got.TimeMicro, want.Part, want.TimeMicro)
		}
	}
}

// SetWorkers must clamp and never alter results; worker counts from 1 to
// GOMAXPROCS return the same Choice (determinism of the parallel path).
func TestWorkerCountsAgree(t *testing.T) {
	prm := model.IPSC860()
	net := topology.MustParseSpec("torus-8x2x2")
	var ref Choice
	for i, w := range []int{1, 2, 3, 4, 1 << 20} {
		o := NewSimulated(prm)
		o.SetWorkers(w)
		c, err := o.BestOn(net, 24)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = c
			continue
		}
		if !c.Part.Equal(ref.Part) || c.TimeMicro != ref.TimeMicro {
			t.Errorf("workers=%d: %v/%v µs, want %v/%v µs", w, c.Part, c.TimeMicro, ref.Part, ref.TimeMicro)
		}
	}
}
