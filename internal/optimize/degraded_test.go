package optimize

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/topology"
)

func mustOverlayOpt(t *testing.T, spec string, fs topology.FaultSet) *topology.Degraded {
	t.Helper()
	d, err := topology.Overlay(topology.MustParseSpec(spec), fs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The optimizer re-plans under degradation: when a wire the single-phase
// schedule leans on turns slow, the winning grouping changes. Pinned at
// torus-4x4, m=256: healthy traffic prefers the single phase {2}; with
// wire 0-1 running 5× slow, splitting into per-dimension phases {1,1}
// confines the slow wire's factor to fewer, smaller steps and wins.
func TestBestOnReplansAroundSlowLink(t *testing.T) {
	p := model.IPSC860()
	const m = 256
	bare, err := New(p).BestOn(topology.MustParseSpec("torus-4x4"), m)
	if err != nil {
		t.Fatal(err)
	}
	slow := mustOverlayOpt(t, "torus-4x4", topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 5}},
	})
	deg, err := New(p).BestOn(slow, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bare.Part.Equal([]int{2}) {
		t.Fatalf("healthy winner = %v, expected {2} (test premise)", bare.Part)
	}
	if deg.Part.Equal(bare.Part) {
		t.Fatalf("optimizer kept %v under a 5× slow wire; expected a different grouping", deg.Part)
	}
	if deg.TimeMicro <= bare.TimeMicro {
		t.Fatalf("degraded cost %v not above healthy %v", deg.TimeMicro, bare.TimeMicro)
	}
}

// Same re-planning with a dead wire: at m=76 the healthy torus-4x4
// prefers {1,1}, but the dead wire's detours penalize the two-phase
// schedule more than the single phase, flipping the winner to {2}.
func TestBestOnReplansAroundDeadLink(t *testing.T) {
	p := model.IPSC860()
	const m = 76
	bare, err := New(p).BestOn(topology.MustParseSpec("torus-4x4"), m)
	if err != nil {
		t.Fatal(err)
	}
	dead := mustOverlayOpt(t, "torus-4x4", topology.FaultSet{
		DeadLinks: []topology.Link{{A: 0, B: 1}},
	})
	deg, err := New(p).BestOn(dead, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bare.Part.Equal([]int{1, 1}) {
		t.Fatalf("healthy winner = %v, expected {1,1} (test premise)", bare.Part)
	}
	if deg.Part.Equal(bare.Part) {
		t.Fatalf("optimizer kept %v around a dead wire; expected a different grouping", deg.Part)
	}
}

// A degraded fabric that cannot host a complete exchange fails the
// optimization with the typed unroutable error on both backends.
func TestBestOnNonOperational(t *testing.T) {
	p := model.IPSC860()
	dead := mustOverlayOpt(t, "torus-4x4", topology.FaultSet{DeadNodes: []int{3}})
	if _, err := New(p).BestOn(dead, 8); !errors.Is(err, topology.ErrUnroutable) {
		t.Fatalf("analytic BestOn with dead node: %v, want ErrUnroutable", err)
	}
	if _, err := NewSimulated(p).BestOn(dead, 8); !errors.Is(err, topology.ErrUnroutable) {
		t.Fatalf("simulated BestOn with dead node: %v, want ErrUnroutable", err)
	}
}

// The simulated backend also prices faulty overlays (compiled traces
// replay through fault-aware routing and slow wires), and its winner's
// TimeMicro reflects the degradation.
func TestSimulatedBackendOnDegraded(t *testing.T) {
	p := model.IPSC860()
	const m = 64
	bare, err := NewSimulated(p).BestOn(topology.MustParseSpec("torus-4x4"), m)
	if err != nil {
		t.Fatal(err)
	}
	slow := mustOverlayOpt(t, "torus-4x4", topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 4}},
	})
	deg, err := NewSimulated(p).BestOn(slow, m)
	if err != nil {
		t.Fatal(err)
	}
	if deg.TimeMicro <= bare.TimeMicro {
		t.Fatalf("simulated degraded cost %v not above healthy %v", deg.TimeMicro, bare.TimeMicro)
	}
}
