package optimize

import (
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
)

// tableFixture is a hand-built three-segment table:
//
//	[10,40] → {1,1,1,1,1,1,1}   [41,160] → {3,4}   [161,400] → {7}
func tableFixture() Table {
	return Table{D: 7, Segments: []model.HullSegment{
		{Part: partition.Partition{1, 1, 1, 1, 1, 1, 1}, MinBlock: 10, MaxBlock: 40},
		{Part: partition.Partition{3, 4}, MinBlock: 41, MaxBlock: 160},
		{Part: partition.Partition{7}, MinBlock: 161, MaxBlock: 400},
	}}
}

func TestTableLookupBelowLowBound(t *testing.T) {
	tbl := tableFixture()
	got := tbl.Lookup(0)
	if !got.Equal(tbl.Segments[0].Part) {
		t.Errorf("Lookup(0) = %v, want first segment %v", got, tbl.Segments[0].Part)
	}
	seg, ok := tbl.LookupSegment(3)
	if ok {
		t.Error("LookupSegment(3) reported in-range below the table's low bound 10")
	}
	if !seg.Part.Equal(tbl.Segments[0].Part) {
		t.Errorf("LookupSegment(3) clamped to %v, want first segment", seg.Part)
	}
}

func TestTableLookupAboveHighBound(t *testing.T) {
	tbl := tableFixture()
	got := tbl.Lookup(1_000_000)
	last := tbl.Segments[len(tbl.Segments)-1]
	if !got.Equal(last.Part) {
		t.Errorf("Lookup(1e6) = %v, want last segment %v", got, last.Part)
	}
	seg, ok := tbl.LookupSegment(401)
	if ok {
		t.Error("LookupSegment(401) reported in-range above the table's high bound 400")
	}
	if !seg.Part.Equal(last.Part) {
		t.Errorf("LookupSegment(401) clamped to %v, want last segment", seg.Part)
	}
}

func TestTableLookupOnSegmentBoundaries(t *testing.T) {
	tbl := tableFixture()
	for _, tc := range []struct {
		m    int
		want partition.Partition
	}{
		{10, tbl.Segments[0].Part},  // table low bound
		{40, tbl.Segments[0].Part},  // last block of segment 0
		{41, tbl.Segments[1].Part},  // first block of segment 1
		{160, tbl.Segments[1].Part}, // last block of segment 1
		{161, tbl.Segments[2].Part}, // first block of segment 2
		{400, tbl.Segments[2].Part}, // table high bound
	} {
		got := tbl.Lookup(tc.m)
		if !got.Equal(tc.want) {
			t.Errorf("Lookup(%d) = %v, want %v", tc.m, got, tc.want)
		}
		seg, ok := tbl.LookupSegment(tc.m)
		if !ok {
			t.Errorf("LookupSegment(%d) reported out-of-range on a boundary", tc.m)
		}
		if tc.m < seg.MinBlock || tc.m > seg.MaxBlock {
			t.Errorf("LookupSegment(%d) returned segment [%d,%d] not containing m",
				tc.m, seg.MinBlock, seg.MaxBlock)
		}
	}
}

func TestTableLookupEmpty(t *testing.T) {
	var tbl Table
	if got := tbl.Lookup(40); got != nil {
		t.Errorf("empty table Lookup = %v, want nil", got)
	}
	if seg, ok := tbl.LookupSegment(40); ok || seg.Part != nil {
		t.Errorf("empty table LookupSegment = (%+v, %v), want zero segment and false", seg, ok)
	}
	if _, _, ok := tbl.Bounds(); ok {
		t.Error("empty table Bounds reported ok")
	}
}

func TestTableBounds(t *testing.T) {
	tbl := tableFixture()
	lo, hi, ok := tbl.Bounds()
	if !ok || lo != 10 || hi != 400 {
		t.Errorf("Bounds = (%d, %d, %v), want (10, 400, true)", lo, hi, ok)
	}
}

// TestBuiltTableLookupMatchesBest pins the property the plan cache leans
// on: inside a step-1 table's range, Lookup answers exactly what Best
// would, for every block size (not just swept grid points).
func TestBuiltTableLookupMatchesBest(t *testing.T) {
	o := New(model.IPSC860())
	tbl, err := o.BuildTable(6, 0, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := tbl.Bounds(); !ok || lo != 0 || hi != 300 {
		t.Fatalf("Bounds = (%d,%d,%v), want (0,300,true)", lo, hi, ok)
	}
	for m := 0; m <= 300; m += 7 {
		c, err := o.Best(6, m)
		if err != nil {
			t.Fatal(err)
		}
		if got := tbl.Lookup(m); !got.Equal(c.Part) {
			t.Errorf("m=%d: table %v, Best %v", m, got, c.Part)
		}
	}
}
