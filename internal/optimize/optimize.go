// Package optimize selects the best multiphase partition for a given cube
// dimension and block size (paper §6): it enumerates all p(d) partitions
// of d — a "trivial number" even for large cubes (p(10)=42, p(20)=627) —
// evaluates each against the machine model, and caches the winning plan
// for repeated use.
//
// Two evaluation backends are available: the closed-form analytic model
// (fast, used by default, mirrors §4.3/§7.4) and full network simulation
// (slower, accounts for any contention the analytic model cannot see).
package optimize

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Backend selects how candidate partitions are costed.
type Backend int

const (
	// Analytic costs candidates with the closed-form model (eq. 3).
	Analytic Backend = iota
	// Simulated costs candidates by running the network simulator.
	Simulated
)

func (b Backend) String() string {
	switch b {
	case Analytic:
		return "analytic"
	case Simulated:
		return "simulated"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Choice is the optimizer's answer for one (d, m) query.
type Choice struct {
	D         int
	Block     int
	Part      partition.Partition
	TimeMicro float64
	Backend   Backend
}

// Optimizer enumerates partitions for one machine parameter set and caches
// results per (d, m). It is safe for concurrent use.
type Optimizer struct {
	params  model.Params
	backend Backend

	mu    sync.Mutex
	cache map[[2]int]Choice
}

// New returns an optimizer over the given machine parameters using the
// analytic backend.
func New(p model.Params) *Optimizer {
	return &Optimizer{params: p, backend: Analytic, cache: make(map[[2]int]Choice)}
}

// NewSimulated returns an optimizer that costs candidates by simulation.
// Each candidate is run on the simulated fabric, which moves (and
// verifies) real payloads while costing the schedule, so enumeration is
// substantially heavier than the analytic backend — O(2^d goroutines and
// m·2^d bytes per node) per candidate. Prefer the analytic backend for
// sweeps; use this one when contention effects the closed form cannot
// see might matter.
func NewSimulated(p model.Params) *Optimizer {
	return &Optimizer{params: p, backend: Simulated, cache: make(map[[2]int]Choice)}
}

// Params returns the machine parameters the optimizer evaluates against.
func (o *Optimizer) Params() model.Params { return o.params }

// Best returns the fastest partition for a complete exchange of block size
// m on a d-cube. Results are cached; the enumeration is over the p(d)
// partitions of d.
func (o *Optimizer) Best(d, m int) (Choice, error) {
	if d < 0 || d > 20 {
		return Choice{}, fmt.Errorf("optimize: dimension %d out of range [0,20]", d)
	}
	if m < 0 {
		return Choice{}, fmt.Errorf("optimize: negative block size %d", m)
	}
	key := [2]int{d, m}
	o.mu.Lock()
	if c, ok := o.cache[key]; ok {
		o.mu.Unlock()
		return c, nil
	}
	o.mu.Unlock()

	c, err := o.evaluateAll(d, m)
	if err != nil {
		return Choice{}, err
	}
	o.mu.Lock()
	o.cache[key] = c
	o.mu.Unlock()
	return c, nil
}

func (o *Optimizer) evaluateAll(d, m int) (Choice, error) {
	if d == 0 {
		return Choice{D: 0, Block: m, Part: nil, TimeMicro: 0, Backend: o.backend}, nil
	}
	best := Choice{D: d, Block: m, Backend: o.backend}
	first := true
	var net *simnet.Network
	if o.backend == Simulated {
		if d > 10 {
			return Choice{}, fmt.Errorf("optimize: simulated backend limited to d ≤ 10, got %d", d)
		}
		net = simnet.New(topology.MustNew(d), o.params)
	}
	it := partition.NewIterator(d)
	for D := it.Next(); D != nil; D = it.Next() {
		var t float64
		switch o.backend {
		case Analytic:
			t, _ = o.params.Multiphase(m, d, D)
		case Simulated:
			plan, err := exchange.NewPlan(d, m, D)
			if err != nil {
				return Choice{}, err
			}
			res, err := plan.Simulate(net)
			if err != nil {
				return Choice{}, err
			}
			t = res.Makespan
		}
		if first || t < best.TimeMicro || (t == best.TimeMicro && len(D) < len(best.Part)) {
			best.Part = D
			best.TimeMicro = t
			first = false
		}
	}
	return best, nil
}

// Plan returns an executable exchange plan for the optimizer's best
// partition at (d, m).
func (o *Optimizer) Plan(d, m int) (*exchange.Plan, error) {
	c, err := o.Best(d, m)
	if err != nil {
		return nil, err
	}
	if d == 0 {
		return exchange.NewPlan(0, m, nil)
	}
	return exchange.NewPlan(d, m, c.Part)
}

// Table is the precomputed optimal-partition table over a block-size
// range, the artifact the paper suggests computing once and storing "for
// repeated future use" (§6).
type Table struct {
	D        int
	Segments []model.HullSegment
}

// BuildTable sweeps block sizes [mLo, mHi] with the given step and returns
// the hull-of-optimality table for dimension d.
func (o *Optimizer) BuildTable(d, mLo, mHi, step int) (Table, error) {
	if mLo < 0 || mHi < mLo {
		return Table{}, fmt.Errorf("optimize: bad sweep [%d,%d]", mLo, mHi)
	}
	if step < 1 {
		step = 1
	}
	var segs []model.HullSegment
	for m := mLo; m <= mHi; m += step {
		c, err := o.Best(d, m)
		if err != nil {
			return Table{}, err
		}
		if n := len(segs); n > 0 && segs[n-1].Part.Equal(c.Part) {
			segs[n-1].MaxBlock = m
			continue
		}
		segs = append(segs, model.HullSegment{Part: c.Part, MinBlock: m, MaxBlock: m})
	}
	return Table{D: d, Segments: segs}, nil
}

// Lookup returns the optimal partition for block size m from the table
// (the segment containing m, or the nearest segment for out-of-range m).
func (t Table) Lookup(m int) partition.Partition {
	if len(t.Segments) == 0 {
		return nil
	}
	i := sort.Search(len(t.Segments), func(i int) bool { return t.Segments[i].MaxBlock >= m })
	if i == len(t.Segments) {
		i = len(t.Segments) - 1
	}
	return t.Segments[i].Part
}
