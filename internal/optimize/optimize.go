// Package optimize selects the best multiphase partition for a given cube
// dimension and block size (paper §6): it enumerates all p(d) partitions
// of d — a "trivial number" even for large cubes (p(10)=42, p(20)=627) —
// evaluates each against the machine model, and caches the winning plan
// for repeated use.
//
// Two evaluation backends are available: the closed-form analytic model
// (fast, used by default, mirrors §4.3/§7.4) and network simulation
// (accounts for any contention the analytic model cannot see). The
// simulated backend costs candidates on the trace-compiled path by
// default: each plan is lowered directly to per-node simnet programs and
// replayed through the discrete-event engine — no goroutines, no payload
// bytes — which raises the practical dimension limit from d ≤ 10 (the old
// 2^d-goroutine path) to d ≤ MaxSimulatedDim. The goroutine path remains
// available (SetCosting(CostingGoroutine)) as the data-verified oracle
// and benchmark baseline.
//
// Enumeration never costs the same sub-schedule twice and never costs a
// candidate it can prove is a loser:
//
//   - Memoization. Candidates share almost all of their structure — the
//     same (dimension field, m) phase appears in many groupings — so the
//     optimizer keeps per-Optimizer compute-once caches of per-(field, m)
//     phase costs (analytic) and per-(field, m) compiled trace-fragment
//     makespans (simulated). A candidate's screening cost is the sum of
//     its phases' memoized values; BestOn and BuildTableOn sweeps reuse
//     phase work across candidates and across the m-sweep. Barriers
//     serialize phases, so in real arithmetic the fragment-sum equals the
//     whole-plan makespan exactly; in contended cyclic phases float
//     tie-breaking of link acquisitions can shift it by a small fraction
//     (≈2% worst observed), so selection runs on the fragment-sum and the
//     winner's reported TimeMicro is re-derived by one whole-plan replay
//     — bit-identical to Plan.Cost on the chosen partition.
//   - Branch-and-bound pruning (simulated backend). The analytic model
//     generalization (model.PhaseLowerBoundOn) is an admissible lower
//     bound on each phase's simulated makespan; candidates are ordered
//     best-first by bound and any candidate whose bound exceeds the
//     incumbent's simulated time is skipped without a replay. The bound
//     never overestimates, so no potential winner (or tie) is discarded,
//     and pruned/evaluated counters are exposed through Stats.
//   - Parallel costing. Surviving candidates are costed concurrently on
//     a bounded worker pool (SetWorkers, default GOMAXPROCS on the
//     compiled simulated path). Ties break deterministically — lowest
//     cost, then fewest phases, then enumeration order — reduced after
//     all workers finish, so parallel and serial enumeration return
//     bit-identical Choices. SetExhaustive(true) disables pruning and
//     best-first ordering for equivalence testing.
//
// Concurrent Best calls on the same uncached key share one evaluation:
// in-flight de-duplication prevents a cache stampede from running the
// full enumeration once per caller, and concurrent identical table
// sweeps share one build.
package optimize

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Backend selects how candidate partitions are costed.
type Backend int

const (
	// Analytic costs candidates with the closed-form model (eq. 3).
	Analytic Backend = iota
	// Simulated costs candidates by running the network simulator.
	Simulated
)

func (b Backend) String() string {
	switch b {
	case Analytic:
		return "analytic"
	case Simulated:
		return "simulated"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Costing selects which simulation path the Simulated backend uses.
type Costing int

const (
	// CostingCompiled lowers each candidate plan to per-node simnet
	// programs with the trace compiler and replays them directly: no
	// goroutines, no payload bytes, allocation-free hot loops. The
	// default.
	CostingCompiled Costing = iota
	// CostingGoroutine runs each candidate on the simulated fabric with
	// 2^d goroutines moving (and verifying) real payloads before the
	// recorded traces are replayed. Slower by construction; kept as the
	// data-verified oracle the compiled path is benchmarked against. It
	// deliberately bypasses memoization and pruning: every candidate is
	// simulated whole, serially.
	CostingGoroutine
)

func (c Costing) String() string {
	switch c {
	case CostingCompiled:
		return "compiled"
	case CostingGoroutine:
		return "goroutine"
	default:
		return fmt.Sprintf("Costing(%d)", int(c))
	}
}

// MaxSimulatedDim is the dimension limit of the Simulated backend on the
// compiled costing path. The goroutine path stays capped at
// MaxGoroutineDim — 2^d goroutines with per-node payload buffers do not
// scale past it — which is exactly why the compiled path exists. The
// compiled cap rose from 16 to 18 when sharded replay landed
// (simnet.Network.SetReplayShards): link-disjoint sub-block shards split
// a 2^18-node phase across cores with bit-identical results, keeping
// the largest fragments tractable.
const (
	MaxSimulatedDim = 18
	MaxGoroutineDim = 10
)

// pruneSlack is the relative tolerance of the branch-and-bound cut: a
// candidate is discarded only when its lower bound exceeds the incumbent
// by more than this fraction. The bound is mathematically admissible; the
// slack only absorbs float64 summation noise, so a candidate that could
// still tie the winner is never pruned.
const pruneSlack = 1e-9

// Choice is the optimizer's answer for one (topology, m) query.
type Choice struct {
	// Topo is the topology's registry name ("hypercube-7", "torus-4x4x4").
	Topo string
	// D is the number of topology dimensions (the cube dimension on a
	// hypercube).
	D         int
	Block     int
	Part      partition.Partition
	TimeMicro float64
	Backend   Backend
}

// key identifies one cached choice.
type key struct {
	topo string
	m    int
}

// Stats is a snapshot of the optimizer's evaluation counters. Evaluations
// counts full enumerations (cache hits and singleflight followers do not
// move it); Evaluated and Pruned partition the candidates those
// enumerations dequeued into costed and bound-skipped; MemoHits and
// MemoMisses count phase-level memo lookups (a miss computes the phase —
// analytically or by fragment replay — a hit reuses it). The split of
// candidates between Evaluated and Pruned can vary run to run on the
// parallel path (it depends on how fast the incumbent drops); the
// returned Choice never does.
type Stats struct {
	Evaluations int64 `json:"evaluations"`
	Evaluated   int64 `json:"evaluated"`
	Pruned      int64 `json:"pruned"`
	MemoHits    int64 `json:"memo_hits"`
	MemoMisses  int64 `json:"memo_misses"`
	// ReplaysSharded and ReplaysSerial split the simulated backend's
	// event-engine replays (memoized fragments and whole-plan winner
	// re-derivations) by the mode that actually ran: sharded when the
	// link-disjoint partitioner engaged (Result.ReplayShards > 1),
	// serial otherwise — including every sharded attempt that fell back.
	ReplaysSharded int64 `json:"replays_sharded"`
	ReplaysSerial  int64 `json:"replays_serial"`
}

// Add accumulates another snapshot into s (serving tiers aggregate stats
// across per-machine optimizers).
func (s *Stats) Add(t Stats) {
	s.Evaluations += t.Evaluations
	s.Evaluated += t.Evaluated
	s.Pruned += t.Pruned
	s.MemoHits += t.MemoHits
	s.MemoMisses += t.MemoMisses
	s.ReplaysSharded += t.ReplaysSharded
	s.ReplaysSerial += t.ReplaysSerial
}

// Optimizer enumerates dimension groupings for one machine parameter set
// and caches results per (topology, m). It is safe for concurrent use;
// concurrent queries for the same uncached key share a single evaluation.
type Optimizer struct {
	params  model.Params
	backend Backend
	costing atomic.Int32 // Costing; atomic so SetCosting is race-free
	evals   atomic.Int64 // evaluateAll invocations, for stampede tests

	workers      atomic.Int32 // SetWorkers; ≤ 0 selects the default
	replayShards atomic.Int32 // SetReplayShards; ≤ 1 keeps replays serial
	exhaustive   atomic.Bool  // SetExhaustive; disables pruning/reordering

	evaluated      atomic.Int64
	pruned         atomic.Int64
	memoHits       atomic.Int64
	memoMisses     atomic.Int64
	replaysSharded atomic.Int64
	replaysSerial  atomic.Int64

	enums sync.Map // topology name -> *enumSet

	analyticPhases memoTable // (field, m) -> analytic phase cost
	simPhases      memoTable // (field, m) -> fragment replay makespan
	boundPhases    memoTable // (field, m) -> admissible lower bound

	mu     sync.Mutex
	cache  map[key]Choice
	flight map[key]*inflight

	tableMu     sync.Mutex
	tableFlight map[tableKey]*tableFlight
}

// inflight is one evaluation in progress; latecomers for the same key
// wait on done instead of re-running the enumeration.
type inflight struct {
	done chan struct{}
	c    Choice
	err  error
}

// tableKey identifies one table sweep; tableFlight deduplicates
// concurrent identical sweeps into a single build instead of one
// singleflight rendezvous per swept point per caller.
type tableKey struct {
	topo         string
	lo, hi, step int
}

type tableFlight struct {
	done chan struct{}
	t    Table
	err  error
}

// phaseKey identifies one memoized phase: the topology, the dimension
// field [lo, lo+w) and the block size. Every grouping containing this
// field at this m shares the entry.
type phaseKey struct {
	topo  string
	lo, w int
	m     int
}

// memoEntry is one compute-once memo cell.
type memoEntry struct {
	once sync.Once
	val  float64
	err  error
}

// memoTable is a concurrency-safe compute-once map: the first caller for
// a key runs compute, concurrent callers block on its sync.Once, later
// callers reuse the stored value. Entries live for the optimizer's
// lifetime, like the per-(topology, m) Choice cache above them.
type memoTable struct {
	mu sync.Mutex
	m  map[phaseKey]*memoEntry
}

func (t *memoTable) get(k phaseKey, hits, misses *atomic.Int64, compute func() (float64, error)) (float64, error) {
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[phaseKey]*memoEntry)
	}
	e, ok := t.m[k]
	if !ok {
		e = new(memoEntry)
		t.m[k] = e
	}
	t.mu.Unlock()
	first := false
	e.once.Do(func() {
		first = true
		e.val, e.err = compute()
	})
	if first {
		misses.Add(1)
	} else {
		hits.Add(1)
	}
	return e.val, e.err
}

// enumSet is the cached candidate enumeration of one topology: the
// groupings and, per grouping, its phase fields. Computed once per
// topology name and shared by every (m) query and sweep point.
type enumSet struct {
	once   sync.Once
	parts  []partition.Partition
	fields [][][2]int
	err    error
}

// New returns an optimizer over the given machine parameters using the
// analytic backend.
func New(p model.Params) *Optimizer {
	return &Optimizer{params: p, backend: Analytic, cache: make(map[key]Choice)}
}

// NewSimulated returns an optimizer that costs candidates by simulation
// on the trace-compiled path (see Costing). Dimensions up to
// MaxSimulatedDim are accepted; enumeration runs on a worker pool bounded
// by GOMAXPROCS.
func NewSimulated(p model.Params) *Optimizer {
	return &Optimizer{params: p, backend: Simulated, cache: make(map[key]Choice)}
}

// SetCosting selects the Simulated backend's costing path (no-op for the
// analytic backend). Safe to call concurrently with Best; an in-flight
// evaluation keeps the costing it started with. Switching clears nothing:
// cached choices are identical on both paths because the compiled
// programs are op-for-op the programs the goroutine run records.
func (o *Optimizer) SetCosting(c Costing) { o.costing.Store(int32(c)) }

// SetWorkers bounds the candidate-costing worker pool. n ≤ 0 restores
// the default: GOMAXPROCS on the compiled simulated path, 1 for the
// analytic backend (the closed form is too cheap to fan out unless asked
// to). Requests above GOMAXPROCS are clamped. Safe to call concurrently
// with Best; an in-flight evaluation keeps the pool it started with. The
// pool size never changes which Choice is returned.
func (o *Optimizer) SetWorkers(n int) {
	if max := runtime.GOMAXPROCS(0); n > max {
		n = max
	}
	o.workers.Store(int32(n))
}

// SetReplayShards sets the event-engine shard count the simulated
// backend's replays request (simnet.Network.SetReplayShards): phases
// whose sub-blocks are provably link-disjoint run on up to n private
// engines and merge at each barrier; everything else falls back to
// serial dynamics. Sharded replays are bit-identical to serial ones, so
// the setting never changes which Choice is returned or its TimeMicro —
// only how fast the largest fragments cost. n ≤ 1 keeps replays serial
// (the default). Safe to call concurrently with Best; an in-flight
// evaluation keeps the count it started with.
func (o *Optimizer) SetReplayShards(n int) {
	if n < 0 {
		n = 0
	}
	o.replayShards.Store(int32(n))
}

// countReplay feeds the replay-mode stats split from one replay result.
func (o *Optimizer) countReplay(res simnet.Result) {
	if res.ReplayShards > 1 {
		o.replaysSharded.Add(1)
	} else {
		o.replaysSerial.Add(1)
	}
}

// SetExhaustive toggles the branch-and-bound cut and the best-first
// candidate ordering off (true) or back on (false). With pruning off,
// every candidate is costed in enumeration order — the oracle mode the
// equivalence tests compare against; the admissible bound guarantees the
// returned Choice is identical either way.
func (o *Optimizer) SetExhaustive(on bool) { o.exhaustive.Store(on) }

// Evaluations returns the number of full partition enumerations the
// optimizer has run so far. Cache hits and singleflight followers do not
// increment it, which makes it the observable a caching layer (the plan
// cache, the serving daemon) uses to prove its hits bypass the optimizer.
func (o *Optimizer) Evaluations() int64 { return o.evals.Load() }

// Stats returns a snapshot of the evaluation counters.
func (o *Optimizer) Stats() Stats {
	return Stats{
		Evaluations: o.evals.Load(),
		Evaluated:   o.evaluated.Load(),
		Pruned:      o.pruned.Load(),
		MemoHits:    o.memoHits.Load(),
		MemoMisses:  o.memoMisses.Load(),

		ReplaysSharded: o.replaysSharded.Load(),
		ReplaysSerial:  o.replaysSerial.Load(),
	}
}

// Params returns the machine parameters the optimizer evaluates against.
func (o *Optimizer) Params() model.Params { return o.params }

// Best returns the fastest partition for a complete exchange of block size
// m on a d-cube. Results are cached; the enumeration is over the p(d)
// partitions of d.
func (o *Optimizer) Best(d, m int) (Choice, error) {
	if d < 0 || d > 20 {
		return Choice{}, fmt.Errorf("optimize: dimension %d out of range [0,20]", d)
	}
	cube, err := topology.New(d)
	if err != nil {
		return Choice{}, err
	}
	return o.BestOn(cube, m)
}

// MaxMixedRadixDims bounds the dimension count of topologies with
// unequal radices: those enumerate all 2^(k−1) ordered compositions, so
// the candidate count — unlike the uniform case's p(k), 627 at k=20 —
// grows exponentially in k. 17 dimensions cap the enumeration at 2^16
// candidates. Serving tiers enforce a tighter bound at request
// validation (plancache.ResolveTopology); this one is the library-level
// backstop.
const MaxMixedRadixDims = 17

// BestOn returns the fastest dimension grouping for a complete exchange
// of block size m on any topology. Results are cached per (topology, m);
// the enumeration is over the p(k) groupings of the k dimensions when
// all radices are equal (order cannot matter) and over all 2^(k−1)
// ordered compositions otherwise.
func (o *Optimizer) BestOn(net topology.Network, m int) (Choice, error) {
	return o.bestOn(context.Background(), net, m, nil)
}

// bestOn is BestOn with an optional warm-start hint: a grouping expected
// to be (near-)optimal — the previous sweep point's winner — evaluated
// first so the incumbent starts tight and the bound cuts early. The hint
// changes evaluation order only, never the returned Choice. ctx is used
// solely for observability (replay spans land on the calling request's
// trace); it does not cancel the enumeration.
func (o *Optimizer) bestOn(ctx context.Context, net topology.Network, m int, hint partition.Partition) (Choice, error) {
	if net.Nodes() > 1<<20 {
		return Choice{}, fmt.Errorf("optimize: %s exceeds the enumeration limit of 2^20 nodes", net.Name())
	}
	if !uniformRadices(net) && net.NumDims() > MaxMixedRadixDims {
		return Choice{}, fmt.Errorf("optimize: %s has %d unequal-radix dimensions; composition enumeration is limited to %d",
			net.Name(), net.NumDims(), MaxMixedRadixDims)
	}
	if m < 0 {
		return Choice{}, fmt.Errorf("optimize: negative block size %d", m)
	}
	// A non-operational degraded fabric (dead node, severed partition)
	// cannot host any complete exchange: fail the optimization up front
	// with the typed unroutable error instead of letting fault-aware
	// routing panic inside costing.
	if err := topology.CheckOperational(net); err != nil {
		return Choice{}, fmt.Errorf("optimize: %w", err)
	}
	k := key{topo: net.Name(), m: m}
	o.mu.Lock()
	if c, ok := o.cache[k]; ok {
		// Cached results stay reachable regardless of the current
		// costing's dimension limit (both costings produce identical
		// choices, so a hit is always valid).
		o.mu.Unlock()
		return c, nil
	}
	o.mu.Unlock()
	costing := Costing(o.costing.Load())
	if o.backend == Simulated {
		if net.Nodes() > 1<<MaxSimulatedDim {
			return Choice{}, fmt.Errorf("optimize: simulated backend limited to %d nodes, got %s",
				1<<MaxSimulatedDim, net.Name())
		}
		if costing == CostingGoroutine && net.Nodes() > 1<<MaxGoroutineDim {
			return Choice{}, fmt.Errorf("optimize: goroutine-costed simulated backend limited to %d nodes, got %s (use the compiled costing path)",
				1<<MaxGoroutineDim, net.Name())
		}
	}
	o.mu.Lock()
	if c, ok := o.cache[k]; ok {
		o.mu.Unlock()
		return c, nil
	}
	if f, ok := o.flight[k]; ok {
		// Another goroutine is already enumerating this key: share its
		// result instead of stampeding.
		o.mu.Unlock()
		<-f.done
		return f.c, f.err
	}
	f := &inflight{done: make(chan struct{})}
	if o.flight == nil {
		o.flight = make(map[key]*inflight)
	}
	o.flight[k] = f
	o.mu.Unlock()

	f.c, f.err = o.evaluateAll(ctx, net, m, costing, hint)
	o.mu.Lock()
	if f.err == nil {
		o.cache[k] = f.c
	}
	delete(o.flight, k)
	o.mu.Unlock()
	close(f.done)
	return f.c, f.err
}

// uniformRadices reports whether every dimension has the same radix, in
// which case a group's radix multiset depends only on its size and
// phase order cannot change the cost.
func uniformRadices(net topology.Network) bool {
	dims := net.Dims()
	for _, r := range dims {
		if r != dims[0] {
			return false
		}
	}
	return true
}

// groupings enumerates the candidate dimension groupings of a topology:
// the partitions of k when every radix is equal (the hypercube's p(d)
// partitions, §6) and all ordered compositions of k otherwise.
func groupings(net topology.Network) []partition.Partition {
	k := net.NumDims()
	if uniformRadices(net) {
		return partition.All(k)
	}
	var out []partition.Partition
	cur := make([]int, 0, k)
	var rec func(remaining int)
	rec = func(remaining int) {
		if remaining == 0 {
			out = append(out, append(partition.Partition(nil), cur...))
			return
		}
		for part := remaining; part >= 1; part-- {
			cur = append(cur, part)
			rec(remaining - part)
			cur = cur[:len(cur)-1]
		}
	}
	rec(k)
	return out
}

// enumFor returns the topology's cached enumeration (groupings plus
// per-grouping phase fields), computing it on first use.
func (o *Optimizer) enumFor(topo topology.Network) (*enumSet, error) {
	v, _ := o.enums.LoadOrStore(topo.Name(), new(enumSet))
	es := v.(*enumSet)
	es.once.Do(func() {
		es.parts = groupings(topo)
		es.fields = make([][][2]int, len(es.parts))
		for i, D := range es.parts {
			es.fields[i], es.err = topology.PhaseFields(topo, D)
			if es.err != nil {
				return
			}
		}
	})
	return es, es.err
}

// evaluateAll costs the topology's groupings and returns the winner (ties
// go to the candidate with fewer phases, then to enumeration order, as
// always). The analytic backend and the compiled simulated path run the
// memoized engine; the goroutine oracle stays a serial whole-plan loop.
func (o *Optimizer) evaluateAll(ctx context.Context, topo topology.Network, m int, costing Costing, hint partition.Partition) (Choice, error) {
	o.evals.Add(1)
	if topo.NumDims() == 0 {
		return Choice{Topo: topo.Name(), D: 0, Block: m, Part: nil, TimeMicro: 0, Backend: o.backend}, nil
	}
	es, err := o.enumFor(topo)
	if err != nil {
		return Choice{}, err
	}
	if o.backend == Simulated && costing == CostingGoroutine {
		return o.evaluateGoroutine(topo, m, es.parts)
	}
	return o.evaluateMemoized(ctx, topo, m, es, hint)
}

// evaluateGoroutine is the sequential whole-plan oracle: every candidate
// runs on the simulated fabric with live goroutines and payload
// verification, no memoization, no pruning — exactly the path the
// compiled engine is validated against.
func (o *Optimizer) evaluateGoroutine(topo topology.Network, m int, parts []partition.Partition) (Choice, error) {
	net := simnet.New(topo, o.params)
	best := Choice{Topo: topo.Name(), D: topo.NumDims(), Block: m, Backend: o.backend}
	first := true
	for _, D := range parts {
		plan, err := exchange.NewPlanOn(topo, m, D)
		if err != nil {
			return Choice{}, err
		}
		res, err := plan.Simulate(net)
		if err != nil {
			return Choice{}, err
		}
		o.evaluated.Add(1)
		t := res.Makespan
		if first || t < best.TimeMicro || (t == best.TimeMicro && len(D) < len(best.Part)) {
			best.Part = D
			best.TimeMicro = t
			first = false
		}
	}
	best.Part = best.Part.Clone()
	return best, nil
}

// evaluateMemoized is the memoized, branch-and-bound-pruned, parallel
// enumeration engine shared by the analytic backend and the compiled
// simulated path.
//
// Selection uses each candidate's phase-sum: the left-to-right sum of its
// memoized per-phase values. On the analytic backend those values are
// exactly PhaseCost/PhaseCostOn, so the sum is bit-identical to
// Multiphase/MultiphaseOn. On the simulated path each value is one
// compiled fragment replay (barrier + steps + shuffle); the phase-sum
// equals the whole-plan makespan up to float64 summation order, and the
// reported TimeMicro is re-derived from one whole-plan replay of the
// winner so it matches Plan.Cost bit-for-bit.
//
// Pruning discards a dequeued candidate only when its admissible lower
// bound exceeds the incumbent phase-sum by more than pruneSlack; since
// the incumbent only decreases toward the true minimum, a pruned
// candidate's cost is strictly above the winner's — it can neither win
// nor tie — so the reduction over the surviving candidates returns the
// same Choice as exhaustive enumeration, regardless of worker count or
// scheduling.
func (o *Optimizer) evaluateMemoized(ctx context.Context, topo topology.Network, m int, es *enumSet, hint partition.Partition) (Choice, error) {
	parts, fields := es.parts, es.fields
	simulated := o.backend == Simulated
	prune := simulated && !o.exhaustive.Load()

	order := make([]int, len(parts))
	for i := range order {
		order[i] = i
	}
	var lbs []float64
	if prune {
		lbs = make([]float64, len(parts))
		for i := range parts {
			lb, err := o.candidateBound(topo, m, fields[i])
			if err != nil {
				return Choice{}, err
			}
			lbs[i] = lb
		}
		// Best-first: ascending bound, then fewer phases, then
		// enumeration order — the cheapest-looking candidate seeds the
		// incumbent so the cut engages as early as possible.
		sort.SliceStable(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if lbs[ia] != lbs[ib] {
				return lbs[ia] < lbs[ib]
			}
			if len(parts[ia]) != len(parts[ib]) {
				return len(parts[ia]) < len(parts[ib])
			}
			return ia < ib
		})
		if hint != nil {
			for pos, i := range order {
				if parts[i].Equal(hint) {
					copy(order[1:pos+1], order[:pos])
					order[0] = i
					break
				}
			}
		}
	}

	costs := make([]float64, len(parts))
	done := make([]bool, len(parts))
	errs := make([]error, len(parts))

	workers := int(o.workers.Load())
	if workers <= 0 {
		if simulated {
			workers = runtime.GOMAXPROCS(0)
		} else {
			workers = 1
		}
	}
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}

	var net *simnet.Network
	if simulated {
		net = simnet.New(topo, o.params)
		net.SetReplayShards(int(o.replayShards.Load()))
	}

	var incMu sync.Mutex
	incumbent := math.Inf(1)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				pos := int(cursor.Add(1)) - 1
				if pos >= len(order) {
					return
				}
				i := order[pos]
				if prune {
					incMu.Lock()
					th := incumbent
					incMu.Unlock()
					if lbs[i] > th*(1+pruneSlack) {
						o.pruned.Add(1)
						continue
					}
				}
				c, err := o.candidateCost(net, topo, m, parts[i], fields[i])
				if err != nil {
					errs[i] = err
					continue
				}
				costs[i] = c
				done[i] = true
				o.evaluated.Add(1)
				if prune {
					incMu.Lock()
					if c < incumbent {
						incumbent = c
					}
					incMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			return Choice{}, errs[i]
		}
	}
	best := Choice{Topo: topo.Name(), D: topo.NumDims(), Block: m, Backend: o.backend}
	first := true
	for i := range parts {
		if !done[i] {
			continue
		}
		t := costs[i]
		if first || t < best.TimeMicro || (t == best.TimeMicro && len(parts[i]) < len(best.Part)) {
			best.Part = parts[i]
			best.TimeMicro = t
			first = false
		}
	}
	if first {
		return Choice{}, fmt.Errorf("optimize: internal: every candidate was pruned")
	}
	best.Part = best.Part.Clone()
	if simulated {
		t, err := o.finalizeSimulated(ctx, net, topo, m, best.Part)
		if err != nil {
			return Choice{}, err
		}
		best.TimeMicro = t
	}
	return best, nil
}

// candidateBound sums the candidate's memoized per-phase admissible lower
// bounds.
func (o *Optimizer) candidateBound(topo topology.Network, m int, fields [][2]int) (float64, error) {
	total := 0.0
	for _, f := range fields {
		lo, w := f[0], f[1]
		v, err := o.boundPhases.get(phaseKey{topo: topo.Name(), lo: lo, w: w, m: m}, &o.memoHits, &o.memoMisses,
			func() (float64, error) { return o.params.PhaseLowerBoundOn(topo, m, lo, w) })
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// candidateCost screens one candidate: the left-to-right sum of its
// memoized per-phase costs — closed-form on the analytic backend, one
// compiled fragment replay per distinct (field, m) on the simulated path.
func (o *Optimizer) candidateCost(net *simnet.Network, topo topology.Network, m int, D partition.Partition, fields [][2]int) (float64, error) {
	if o.backend == Analytic {
		h, _ := topology.AsHypercube(topo)
		total := 0.0
		for _, f := range fields {
			lo, w := f[0], f[1]
			v, err := o.analyticPhases.get(phaseKey{topo: topo.Name(), lo: lo, w: w, m: m}, &o.memoHits, &o.memoMisses,
				func() (float64, error) {
					if h != nil {
						// Radix-2 fast path: eq. (3) directly, so the
						// phase-sum is bit-identical to Multiphase.
						return o.params.PhaseCost(m, h.Dim(), w), nil
					}
					return o.params.PhaseCostOn(topo, m, lo, w)
				})
			if err != nil {
				return 0, err
			}
			total += v
		}
		return total, nil
	}
	plan, err := exchange.NewPlanOn(topo, m, D)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for pi, f := range fields {
		pi := pi
		lo, w := f[0], f[1]
		v, err := o.simPhases.get(phaseKey{topo: topo.Name(), lo: lo, w: w, m: m}, &o.memoHits, &o.memoMisses,
			func() (float64, error) {
				res, err := net.RunSource(plan.CompilePhase(pi))
				if err != nil {
					return 0, err
				}
				o.countReplay(res)
				return res.Makespan, nil
			})
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// finalizeSimulated re-derives the winner's reported time from one
// whole-plan replay so Choice.TimeMicro matches Plan.Cost bit-for-bit
// (the screening phase-sum can differ in the last ulps from the
// single-pass makespan). A single-phase winner's fragment is row-for-row
// the whole plan, so its memoized value is reused without a replay —
// that is the expensive {d} candidate, and it is exactly the one the
// sweep's large-m points keep winning with.
func (o *Optimizer) finalizeSimulated(ctx context.Context, net *simnet.Network, topo topology.Network, m int, D partition.Partition) (float64, error) {
	plan, err := exchange.NewPlanOn(topo, m, D)
	if err != nil {
		return 0, err
	}
	if plan.NumPhases() == 1 {
		fields, err := topology.PhaseFields(topo, D)
		if err != nil {
			return 0, err
		}
		lo, w := fields[0][0], fields[0][1]
		return o.simPhases.get(phaseKey{topo: topo.Name(), lo: lo, w: w, m: m}, &o.memoHits, &o.memoMisses,
			func() (float64, error) {
				sp := obs.StartSpan(ctx, "replay")
				sp.SetAttr("kind", "fragment")
				sp.SetInt("m", int64(m))
				defer sp.End()
				res, err := net.RunSource(plan.CompilePhase(0))
				if err != nil {
					return 0, err
				}
				o.countReplay(res)
				sp.SetInt("replay_shards", int64(res.ReplayShards))
				return res.Makespan, nil
			})
	}
	sp := obs.StartSpan(ctx, "replay")
	sp.SetAttr("kind", "plan")
	sp.SetAttr("partition", D.String())
	sp.SetInt("m", int64(m))
	sp.SetInt("phases", int64(plan.NumPhases()))
	defer sp.End()
	res, err := plan.Cost(net)
	if err != nil {
		return 0, err
	}
	o.countReplay(res)
	sp.SetInt("replay_shards", int64(res.ReplayShards))
	return res.Makespan, nil
}

// Plan returns an executable exchange plan for the optimizer's best
// partition at (d, m).
func (o *Optimizer) Plan(d, m int) (*exchange.Plan, error) {
	c, err := o.Best(d, m)
	if err != nil {
		return nil, err
	}
	if d == 0 {
		return exchange.NewPlan(0, m, nil)
	}
	return exchange.NewPlan(d, m, c.Part)
}

// Table is the precomputed optimal-partition table over a block-size
// range, the artifact the paper suggests computing once and storing "for
// repeated future use" (§6).
type Table struct {
	// Topo is the topology's registry name; D its dimension count.
	Topo     string
	D        int
	Segments []model.HullSegment
}

// BuildTable sweeps block sizes [mLo, mHi] with the given step and returns
// the hull-of-optimality table for a d-cube.
func (o *Optimizer) BuildTable(d, mLo, mHi, step int) (Table, error) {
	cube, err := topology.New(d)
	if err != nil {
		return Table{}, err
	}
	return o.BuildTableOn(cube, mLo, mHi, step)
}

// BuildTableOn sweeps block sizes [mLo, mHi] with the given step and
// returns the hull-of-optimality table for any topology. Concurrent
// identical sweeps share one build (a single tableKey singleflight
// instead of one rendezvous per swept point), and consecutive sweep
// points warm-start each other: each point's winner is evaluated first
// at the next point, so the incumbent starts tight and the phase memo —
// already hot from the previous point's fields — prices most candidates
// without any new replay.
func (o *Optimizer) BuildTableOn(net topology.Network, mLo, mHi, step int) (Table, error) {
	return o.BuildTableOnCtx(context.Background(), net, mLo, mHi, step)
}

// BuildTableOnCtx is BuildTableOn bounded by a context, checked between
// sweep points: a caller that no longer needs the table (the plan
// cache's fully-abandoned line fill) aborts the sweep after at most one
// more Best enumeration instead of paying for the whole hull. Joiners
// of an identical in-flight sweep share the initiator's fate — the plan
// cache's own per-line singleflight makes that pairing one-to-one.
func (o *Optimizer) BuildTableOnCtx(ctx context.Context, net topology.Network, mLo, mHi, step int) (Table, error) {
	if mLo < 0 || mHi < mLo {
		return Table{}, fmt.Errorf("optimize: bad sweep [%d,%d]", mLo, mHi)
	}
	if step < 1 {
		step = 1
	}
	tk := tableKey{topo: net.Name(), lo: mLo, hi: mHi, step: step}
	o.tableMu.Lock()
	if f, ok := o.tableFlight[tk]; ok {
		o.tableMu.Unlock()
		select {
		case <-f.done:
			return f.t, f.err
		case <-ctx.Done():
			return Table{}, ctx.Err()
		}
	}
	f := &tableFlight{done: make(chan struct{})}
	if o.tableFlight == nil {
		o.tableFlight = make(map[tableKey]*tableFlight)
	}
	o.tableFlight[tk] = f
	o.tableMu.Unlock()

	sp := obs.StartSpan(ctx, "optimizer")
	before := o.Stats()
	f.t, f.err = o.buildTableOn(ctx, net, mLo, mHi, step)
	if sp != nil {
		// Deltas are process-wide, so a concurrent build on another
		// topology inflates them; good enough for trace triage.
		after := o.Stats()
		sp.SetAttr("topology", net.Name())
		sp.SetInt("segments", int64(len(f.t.Segments)))
		sp.SetInt("evaluated", after.Evaluated-before.Evaluated)
		sp.SetInt("pruned", after.Pruned-before.Pruned)
		sp.SetInt("memo_hits", after.MemoHits-before.MemoHits)
		sp.SetInt("memo_misses", after.MemoMisses-before.MemoMisses)
	}
	sp.End()
	o.tableMu.Lock()
	delete(o.tableFlight, tk)
	o.tableMu.Unlock()
	close(f.done)
	return f.t, f.err
}

func (o *Optimizer) buildTableOn(ctx context.Context, net topology.Network, mLo, mHi, step int) (Table, error) {
	var segs []model.HullSegment
	var hint partition.Partition
	for m := mLo; m <= mHi; m += step {
		if err := ctx.Err(); err != nil {
			return Table{}, err
		}
		c, err := o.bestOn(ctx, net, m, hint)
		if err != nil {
			return Table{}, err
		}
		hint = c.Part
		if n := len(segs); n > 0 && segs[n-1].Part.Equal(c.Part) {
			segs[n-1].MaxBlock = m
			continue
		}
		segs = append(segs, model.HullSegment{Part: c.Part, MinBlock: m, MaxBlock: m})
	}
	return Table{Topo: net.Name(), D: net.NumDims(), Segments: segs}, nil
}

// Lookup returns the optimal partition for block size m from the table
// (the segment containing m, or the nearest segment for out-of-range m).
func (t Table) Lookup(m int) partition.Partition {
	seg, _ := t.LookupSegment(m)
	return seg.Part
}

// LookupSegment returns the hull segment answering block size m, and
// whether m actually lies inside it. ok=false means the nearest segment
// answered: below the table's low bound the first segment, above the
// high bound the last one (for large blocks the hull has converged to
// its asymptotic partition, so the clamp is the right extrapolation),
// and — for tables built with a sweep step > 1 — the next segment up
// when m falls in a gap between swept grid points. On an empty table the
// zero segment and false are returned.
func (t Table) LookupSegment(m int) (model.HullSegment, bool) {
	if len(t.Segments) == 0 {
		return model.HullSegment{}, false
	}
	i := sort.Search(len(t.Segments), func(i int) bool { return t.Segments[i].MaxBlock >= m })
	if i == len(t.Segments) {
		i = len(t.Segments) - 1
	}
	seg := t.Segments[i]
	return seg, m >= seg.MinBlock && m <= seg.MaxBlock
}

// Bounds returns the block-size range [lo, hi] the table covers; ok is
// false for an empty table.
func (t Table) Bounds() (lo, hi int, ok bool) {
	if len(t.Segments) == 0 {
		return 0, 0, false
	}
	return t.Segments[0].MinBlock, t.Segments[len(t.Segments)-1].MaxBlock, true
}
