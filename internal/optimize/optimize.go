// Package optimize selects the best multiphase partition for a given cube
// dimension and block size (paper §6): it enumerates all p(d) partitions
// of d — a "trivial number" even for large cubes (p(10)=42, p(20)=627) —
// evaluates each against the machine model, and caches the winning plan
// for repeated use.
//
// Two evaluation backends are available: the closed-form analytic model
// (fast, used by default, mirrors §4.3/§7.4) and network simulation
// (accounts for any contention the analytic model cannot see). The
// simulated backend costs candidates on the trace-compiled path by
// default: each plan is lowered directly to per-node simnet programs and
// replayed through the discrete-event engine — no goroutines, no payload
// bytes — which raises the practical dimension limit from d ≤ 10 (the old
// 2^d-goroutine path) to d ≤ MaxSimulatedDim, and candidates are
// enumerated on a bounded worker pool. The goroutine path remains
// available (SetCosting(CostingGoroutine)) as the data-verified oracle
// and benchmark baseline.
//
// Concurrent Best calls on the same uncached key share one evaluation:
// in-flight de-duplication prevents a cache stampede from running the
// full enumeration once per caller.
package optimize

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Backend selects how candidate partitions are costed.
type Backend int

const (
	// Analytic costs candidates with the closed-form model (eq. 3).
	Analytic Backend = iota
	// Simulated costs candidates by running the network simulator.
	Simulated
)

func (b Backend) String() string {
	switch b {
	case Analytic:
		return "analytic"
	case Simulated:
		return "simulated"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Costing selects which simulation path the Simulated backend uses.
type Costing int

const (
	// CostingCompiled lowers each candidate plan to per-node simnet
	// programs with the trace compiler and replays them directly: no
	// goroutines, no payload bytes, allocation-free hot loops. The
	// default.
	CostingCompiled Costing = iota
	// CostingGoroutine runs each candidate on the simulated fabric with
	// 2^d goroutines moving (and verifying) real payloads before the
	// recorded traces are replayed. Slower by construction; kept as the
	// data-verified oracle the compiled path is benchmarked against.
	CostingGoroutine
)

func (c Costing) String() string {
	switch c {
	case CostingCompiled:
		return "compiled"
	case CostingGoroutine:
		return "goroutine"
	default:
		return fmt.Sprintf("Costing(%d)", int(c))
	}
}

// MaxSimulatedDim is the dimension limit of the Simulated backend on the
// compiled costing path. The goroutine path stays capped at
// MaxGoroutineDim — 2^d goroutines with per-node payload buffers do not
// scale past it — which is exactly why the compiled path exists.
const (
	MaxSimulatedDim = 16
	MaxGoroutineDim = 10
)

// Choice is the optimizer's answer for one (topology, m) query.
type Choice struct {
	// Topo is the topology's registry name ("hypercube-7", "torus-4x4x4").
	Topo string
	// D is the number of topology dimensions (the cube dimension on a
	// hypercube).
	D         int
	Block     int
	Part      partition.Partition
	TimeMicro float64
	Backend   Backend
}

// key identifies one cached choice.
type key struct {
	topo string
	m    int
}

// Optimizer enumerates dimension groupings for one machine parameter set
// and caches results per (topology, m). It is safe for concurrent use;
// concurrent queries for the same uncached key share a single evaluation.
type Optimizer struct {
	params  model.Params
	backend Backend
	costing atomic.Int32 // Costing; atomic so SetCosting is race-free
	evals   atomic.Int64 // evaluateAll invocations, for stampede tests

	mu     sync.Mutex
	cache  map[key]Choice
	flight map[key]*inflight
}

// inflight is one evaluation in progress; latecomers for the same key
// wait on done instead of re-running the enumeration.
type inflight struct {
	done chan struct{}
	c    Choice
	err  error
}

// New returns an optimizer over the given machine parameters using the
// analytic backend.
func New(p model.Params) *Optimizer {
	return &Optimizer{params: p, backend: Analytic, cache: make(map[key]Choice)}
}

// NewSimulated returns an optimizer that costs candidates by simulation
// on the trace-compiled path (see Costing). Dimensions up to
// MaxSimulatedDim are accepted; enumeration runs on a worker pool bounded
// by GOMAXPROCS.
func NewSimulated(p model.Params) *Optimizer {
	return &Optimizer{params: p, backend: Simulated, cache: make(map[key]Choice)}
}

// SetCosting selects the Simulated backend's costing path (no-op for the
// analytic backend). Safe to call concurrently with Best; an in-flight
// evaluation keeps the costing it started with. Switching clears nothing:
// cached choices are identical on both paths because the compiled
// programs are op-for-op the programs the goroutine run records.
func (o *Optimizer) SetCosting(c Costing) { o.costing.Store(int32(c)) }

// Evaluations returns the number of full partition enumerations the
// optimizer has run so far. Cache hits and singleflight followers do not
// increment it, which makes it the observable a caching layer (the plan
// cache, the serving daemon) uses to prove its hits bypass the optimizer.
func (o *Optimizer) Evaluations() int64 { return o.evals.Load() }

// Params returns the machine parameters the optimizer evaluates against.
func (o *Optimizer) Params() model.Params { return o.params }

// Best returns the fastest partition for a complete exchange of block size
// m on a d-cube. Results are cached; the enumeration is over the p(d)
// partitions of d.
func (o *Optimizer) Best(d, m int) (Choice, error) {
	if d < 0 || d > 20 {
		return Choice{}, fmt.Errorf("optimize: dimension %d out of range [0,20]", d)
	}
	cube, err := topology.New(d)
	if err != nil {
		return Choice{}, err
	}
	return o.BestOn(cube, m)
}

// MaxMixedRadixDims bounds the dimension count of topologies with
// unequal radices: those enumerate all 2^(k−1) ordered compositions, so
// the candidate count — unlike the uniform case's p(k), 627 at k=20 —
// grows exponentially in k. 17 dimensions cap the enumeration at 2^16
// candidates. Serving tiers enforce a tighter bound at request
// validation (plancache.ResolveTopology); this one is the library-level
// backstop.
const MaxMixedRadixDims = 17

// BestOn returns the fastest dimension grouping for a complete exchange
// of block size m on any topology. Results are cached per (topology, m);
// the enumeration is over the p(k) groupings of the k dimensions when
// all radices are equal (order cannot matter) and over all 2^(k−1)
// ordered compositions otherwise.
func (o *Optimizer) BestOn(net topology.Network, m int) (Choice, error) {
	if net.Nodes() > 1<<20 {
		return Choice{}, fmt.Errorf("optimize: %s exceeds the enumeration limit of 2^20 nodes", net.Name())
	}
	if !uniformRadices(net) && net.NumDims() > MaxMixedRadixDims {
		return Choice{}, fmt.Errorf("optimize: %s has %d unequal-radix dimensions; composition enumeration is limited to %d",
			net.Name(), net.NumDims(), MaxMixedRadixDims)
	}
	if m < 0 {
		return Choice{}, fmt.Errorf("optimize: negative block size %d", m)
	}
	k := key{topo: net.Name(), m: m}
	o.mu.Lock()
	if c, ok := o.cache[k]; ok {
		// Cached results stay reachable regardless of the current
		// costing's dimension limit (both costings produce identical
		// choices, so a hit is always valid).
		o.mu.Unlock()
		return c, nil
	}
	o.mu.Unlock()
	costing := Costing(o.costing.Load())
	if o.backend == Simulated {
		if net.Nodes() > 1<<MaxSimulatedDim {
			return Choice{}, fmt.Errorf("optimize: simulated backend limited to %d nodes, got %s",
				1<<MaxSimulatedDim, net.Name())
		}
		if costing == CostingGoroutine && net.Nodes() > 1<<MaxGoroutineDim {
			return Choice{}, fmt.Errorf("optimize: goroutine-costed simulated backend limited to %d nodes, got %s (use the compiled costing path)",
				1<<MaxGoroutineDim, net.Name())
		}
	}
	o.mu.Lock()
	if c, ok := o.cache[k]; ok {
		o.mu.Unlock()
		return c, nil
	}
	if f, ok := o.flight[k]; ok {
		// Another goroutine is already enumerating this key: share its
		// result instead of stampeding.
		o.mu.Unlock()
		<-f.done
		return f.c, f.err
	}
	f := &inflight{done: make(chan struct{})}
	if o.flight == nil {
		o.flight = make(map[key]*inflight)
	}
	o.flight[k] = f
	o.mu.Unlock()

	f.c, f.err = o.evaluateAll(net, m, costing)
	o.mu.Lock()
	if f.err == nil {
		o.cache[k] = f.c
	}
	delete(o.flight, k)
	o.mu.Unlock()
	close(f.done)
	return f.c, f.err
}

// uniformRadices reports whether every dimension has the same radix, in
// which case a group's radix multiset depends only on its size and
// phase order cannot change the cost.
func uniformRadices(net topology.Network) bool {
	dims := net.Dims()
	for _, r := range dims {
		if r != dims[0] {
			return false
		}
	}
	return true
}

// groupings enumerates the candidate dimension groupings of a topology:
// the partitions of k when every radix is equal (the hypercube's p(d)
// partitions, §6) and all ordered compositions of k otherwise.
func groupings(net topology.Network) []partition.Partition {
	k := net.NumDims()
	if uniformRadices(net) {
		return partition.All(k)
	}
	var out []partition.Partition
	cur := make([]int, 0, k)
	var rec func(remaining int)
	rec = func(remaining int) {
		if remaining == 0 {
			out = append(out, append(partition.Partition(nil), cur...))
			return
		}
		for part := remaining; part >= 1; part-- {
			cur = append(cur, part)
			rec(remaining - part)
			cur = cur[:len(cur)-1]
		}
	}
	rec(k)
	return out
}

// evaluateAll costs every grouping and returns the winner (ties go to
// the candidate with fewer phases, then to enumeration order, as
// before). Candidates are evaluated on a worker pool bounded by
// GOMAXPROCS and the reduction runs in enumeration order, so the result
// is deterministic.
func (o *Optimizer) evaluateAll(topo topology.Network, m int, costing Costing) (Choice, error) {
	o.evals.Add(1)
	k := topo.NumDims()
	if k == 0 {
		return Choice{Topo: topo.Name(), D: 0, Block: m, Part: nil, TimeMicro: 0, Backend: o.backend}, nil
	}
	parts := groupings(topo)
	times := make([]float64, len(parts))
	errs := make([]error, len(parts))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(parts) {
		workers = len(parts)
	}
	if o.backend == Analytic || workers < 1 {
		workers = 1 // the closed form is too cheap to fan out
	}
	if costing == CostingGoroutine && o.backend == Simulated {
		// The oracle path spawns 2^d goroutines and m·4^d payload bytes
		// per candidate; fanning it out would multiply that footprint by
		// the core count. Keep it sequential, as it always was.
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var net *simnet.Network
			if o.backend == Simulated {
				net = simnet.New(topo, o.params)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				times[i], errs[i] = o.evaluate(net, topo, m, parts[i], costing)
			}
		}()
	}
	wg.Wait()

	best := Choice{Topo: topo.Name(), D: k, Block: m, Backend: o.backend}
	first := true
	for i, D := range parts {
		if errs[i] != nil {
			return Choice{}, errs[i]
		}
		t := times[i]
		if first || t < best.TimeMicro || (t == best.TimeMicro && len(D) < len(best.Part)) {
			best.Part = D
			best.TimeMicro = t
			first = false
		}
	}
	return best, nil
}

// evaluate costs one candidate grouping.
func (o *Optimizer) evaluate(net *simnet.Network, topo topology.Network, m int, D partition.Partition, costing Costing) (float64, error) {
	if o.backend == Analytic {
		t, _, err := o.params.MultiphaseOn(topo, m, D)
		return t, err
	}
	plan, err := exchange.NewPlanOn(topo, m, D)
	if err != nil {
		return 0, err
	}
	var res simnet.Result
	if costing == CostingGoroutine {
		res, err = plan.Simulate(net)
	} else {
		res, err = plan.Cost(net)
	}
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// Plan returns an executable exchange plan for the optimizer's best
// partition at (d, m).
func (o *Optimizer) Plan(d, m int) (*exchange.Plan, error) {
	c, err := o.Best(d, m)
	if err != nil {
		return nil, err
	}
	if d == 0 {
		return exchange.NewPlan(0, m, nil)
	}
	return exchange.NewPlan(d, m, c.Part)
}

// Table is the precomputed optimal-partition table over a block-size
// range, the artifact the paper suggests computing once and storing "for
// repeated future use" (§6).
type Table struct {
	// Topo is the topology's registry name; D its dimension count.
	Topo     string
	D        int
	Segments []model.HullSegment
}

// BuildTable sweeps block sizes [mLo, mHi] with the given step and returns
// the hull-of-optimality table for a d-cube.
func (o *Optimizer) BuildTable(d, mLo, mHi, step int) (Table, error) {
	cube, err := topology.New(d)
	if err != nil {
		return Table{}, err
	}
	return o.BuildTableOn(cube, mLo, mHi, step)
}

// BuildTableOn sweeps block sizes [mLo, mHi] with the given step and
// returns the hull-of-optimality table for any topology.
func (o *Optimizer) BuildTableOn(net topology.Network, mLo, mHi, step int) (Table, error) {
	if mLo < 0 || mHi < mLo {
		return Table{}, fmt.Errorf("optimize: bad sweep [%d,%d]", mLo, mHi)
	}
	if step < 1 {
		step = 1
	}
	var segs []model.HullSegment
	for m := mLo; m <= mHi; m += step {
		c, err := o.BestOn(net, m)
		if err != nil {
			return Table{}, err
		}
		if n := len(segs); n > 0 && segs[n-1].Part.Equal(c.Part) {
			segs[n-1].MaxBlock = m
			continue
		}
		segs = append(segs, model.HullSegment{Part: c.Part, MinBlock: m, MaxBlock: m})
	}
	return Table{Topo: net.Name(), D: net.NumDims(), Segments: segs}, nil
}

// Lookup returns the optimal partition for block size m from the table
// (the segment containing m, or the nearest segment for out-of-range m).
func (t Table) Lookup(m int) partition.Partition {
	seg, _ := t.LookupSegment(m)
	return seg.Part
}

// LookupSegment returns the hull segment answering block size m, and
// whether m actually lies inside it. ok=false means the nearest segment
// answered: below the table's low bound the first segment, above the
// high bound the last one (for large blocks the hull has converged to
// its asymptotic partition, so the clamp is the right extrapolation),
// and — for tables built with a sweep step > 1 — the next segment up
// when m falls in a gap between swept grid points. On an empty table the
// zero segment and false are returned.
func (t Table) LookupSegment(m int) (model.HullSegment, bool) {
	if len(t.Segments) == 0 {
		return model.HullSegment{}, false
	}
	i := sort.Search(len(t.Segments), func(i int) bool { return t.Segments[i].MaxBlock >= m })
	if i == len(t.Segments) {
		i = len(t.Segments) - 1
	}
	seg := t.Segments[i]
	return seg, m >= seg.MinBlock && m <= seg.MaxBlock
}

// Bounds returns the block-size range [lo, hi] the table covers; ok is
// false for an empty table.
func (t Table) Bounds() (lo, hi int, ok bool) {
	if len(t.Segments) == 0 {
		return 0, 0, false
	}
	return t.Segments[0].MinBlock, t.Segments[len(t.Segments)-1].MaxBlock, true
}
