package optimize

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
	"repro/internal/partition"
)

// The paper's §6 observes that the partition enumeration "needs to be
// done only once and the optimal combination stored for repeated future
// use". StoredTable is that artifact: a serializable hull-of-optimality
// table for one (machine, dimension) pair.

// storedSegment is the JSON form of one hull segment.
type storedSegment struct {
	Partition []int `json:"partition"`
	MinBlock  int   `json:"min_block"`
	MaxBlock  int   `json:"max_block"`
}

// storedTable is the JSON envelope.
type storedTable struct {
	Version  int             `json:"version"`
	D        int             `json:"d"`
	Machine  machineParams   `json:"machine"`
	Segments []storedSegment `json:"segments"`
}

// machineParams records the parameter set the table was computed for, so
// a load against different parameters can be rejected.
type machineParams struct {
	Lambda           float64 `json:"lambda"`
	Tau              float64 `json:"tau"`
	Delta            float64 `json:"delta"`
	Rho              float64 `json:"rho"`
	LambdaZero       float64 `json:"lambda_zero"`
	GlobalSyncPerDim float64 `json:"global_sync_per_dim"`
	Exchange         int     `json:"exchange_mode"`
	GlobalSyncPhase  bool    `json:"global_sync_per_phase"`
}

func paramsKey(p model.Params) machineParams {
	return machineParams{
		Lambda:           p.Lambda,
		Tau:              p.Tau,
		Delta:            p.Delta,
		Rho:              p.Rho,
		LambdaZero:       p.LambdaZero,
		GlobalSyncPerDim: p.GlobalSyncPerDim,
		Exchange:         int(p.Exchange),
		GlobalSyncPhase:  p.GlobalSyncPerPhase,
	}
}

// SaveTable writes the table as JSON, tagged with the machine parameters
// it was computed against.
func SaveTable(w io.Writer, t Table, prm model.Params) error {
	st := storedTable{Version: 1, D: t.D, Machine: paramsKey(prm)}
	for _, seg := range t.Segments {
		st.Segments = append(st.Segments, storedSegment{
			Partition: append([]int(nil), seg.Part...),
			MinBlock:  seg.MinBlock,
			MaxBlock:  seg.MaxBlock,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// LoadTable reads a table saved by SaveTable and validates it against the
// given machine parameters and dimension. A mismatch is an error: a plan
// table computed for one machine is meaningless on another.
func LoadTable(r io.Reader, prm model.Params) (Table, error) {
	var st storedTable
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return Table{}, fmt.Errorf("optimize: decoding table: %w", err)
	}
	if st.Version != 1 {
		return Table{}, fmt.Errorf("optimize: unsupported table version %d", st.Version)
	}
	if st.Machine != paramsKey(prm) {
		return Table{}, fmt.Errorf("optimize: table computed for different machine parameters")
	}
	t := Table{D: st.D}
	for _, seg := range st.Segments {
		D := partition.Partition(append([]int(nil), seg.Partition...))
		if !D.Canonical().IsValid(st.D) {
			return Table{}, fmt.Errorf("optimize: stored partition %v invalid for d=%d", D, st.D)
		}
		if seg.MinBlock > seg.MaxBlock || seg.MinBlock < 0 {
			return Table{}, fmt.Errorf("optimize: stored segment range [%d,%d] invalid",
				seg.MinBlock, seg.MaxBlock)
		}
		t.Segments = append(t.Segments, model.HullSegment{
			Part:     D,
			MinBlock: seg.MinBlock,
			MaxBlock: seg.MaxBlock,
		})
	}
	return t, nil
}

// SaveTableFile writes the table to a file path.
func SaveTableFile(path string, t Table, prm model.Params) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveTable(f, t, prm); err != nil {
		return err
	}
	return f.Close()
}

// LoadTableFile reads a table from a file path.
func LoadTableFile(path string, prm model.Params) (Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return Table{}, err
	}
	defer f.Close()
	return LoadTable(f, prm)
}
