package optimize

import (
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func TestBestValidation(t *testing.T) {
	o := New(model.IPSC860())
	if _, err := o.Best(-1, 10); err == nil {
		t.Error("negative dim must fail")
	}
	if _, err := o.Best(21, 10); err == nil {
		t.Error("dim > 20 must fail")
	}
	if _, err := o.Best(5, -1); err == nil {
		t.Error("negative block must fail")
	}
}

func TestBestZeroDim(t *testing.T) {
	o := New(model.IPSC860())
	c, err := o.Best(0, 10)
	if err != nil || c.TimeMicro != 0 || c.Part != nil {
		t.Errorf("0-cube choice: %+v %v", c, err)
	}
}

func TestBestMatchesModelBestPartition(t *testing.T) {
	prm := model.IPSC860()
	o := New(prm)
	for _, d := range []int{3, 5, 6, 7} {
		for _, m := range []int{1, 12, 40, 160, 400} {
			c, err := o.Best(d, m)
			if err != nil {
				t.Fatal(err)
			}
			want := prm.BestPartition(m, d, false)
			if c.TimeMicro != want.Time {
				t.Errorf("d=%d m=%d: optimizer %v, model %v", d, m, c.TimeMicro, want.Time)
			}
			gotT, _ := prm.Multiphase(m, d, c.Part)
			if gotT != c.TimeMicro {
				t.Errorf("d=%d m=%d: reported time inconsistent with partition", d, m)
			}
		}
	}
}

func TestCacheReturnsSameChoice(t *testing.T) {
	o := New(model.IPSC860())
	a, err := o.Best(6, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Best(6, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Part.Equal(b.Part) || a.TimeMicro != b.TimeMicro {
		t.Error("cached choice differs")
	}
}

func TestBestConcurrent(t *testing.T) {
	o := New(model.IPSC860())
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(m int) {
			_, err := o.Best(7, m%5+1)
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// The simulated backend must agree with the analytic backend on the
// iPSC-860 (contention-free schedules make the two coincide).
func TestSimulatedBackendAgrees(t *testing.T) {
	prm := model.IPSC860()
	oa := New(prm)
	os := NewSimulated(prm)
	for _, m := range []int{8, 40, 200} {
		a, err := oa.Best(5, m)
		if err != nil {
			t.Fatal(err)
		}
		s, err := os.Best(5, m)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Part.Canonical().Equal(s.Part.Canonical()) {
			t.Errorf("m=%d: analytic %v vs simulated %v", m, a.Part, s.Part)
		}
	}
}

func TestSimulatedBackendDimLimit(t *testing.T) {
	if MaxSimulatedDim < 14 {
		t.Fatalf("MaxSimulatedDim = %d; the compiled costing path must accept d = 14", MaxSimulatedDim)
	}
	o := NewSimulated(model.IPSC860())
	if _, err := o.Best(MaxSimulatedDim+1, 4); err == nil {
		t.Errorf("compiled simulated backend must refuse d > %d", MaxSimulatedDim)
	}
	o.SetCosting(CostingGoroutine)
	if _, err := o.Best(MaxGoroutineDim+1, 4); err == nil {
		t.Errorf("goroutine-costed simulated backend must refuse d > %d", MaxGoroutineDim)
	}
}

// The compiled costing path must handle dimensions the goroutine path
// never could: d = 11 exceeds the old hard cap of 10 and still matches
// the analytic winner (the schedules are contention-free, so the two
// backends coincide on the iPSC-860 model).
func TestSimulatedCompiledBeyondGoroutineLimit(t *testing.T) {
	prm := model.IPSC860()
	o := NewSimulated(prm)
	s, err := o.Best(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A cached d > MaxGoroutineDim result stays reachable after switching
	// to goroutine costing (the limit only gates new evaluations).
	o.SetCosting(CostingGoroutine)
	cached, err := o.Best(11, 4)
	if err != nil {
		t.Fatalf("cached d=11 result unreachable after SetCosting: %v", err)
	}
	if !cached.Part.Equal(s.Part) {
		t.Errorf("cached %v != original %v", cached.Part, s.Part)
	}
	a, err := New(prm).Best(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Part.Canonical().Equal(s.Part.Canonical()) {
		t.Errorf("analytic %v vs compiled-simulated %v", a.Part, s.Part)
	}
	if math.Abs(s.TimeMicro-a.TimeMicro) > 1e-6*a.TimeMicro {
		t.Errorf("compiled-simulated %v µs vs analytic %v µs", s.TimeMicro, a.TimeMicro)
	}
}

// The acceptance case for the raised limit: the simulated optimizer
// accepts d = 14 (16384 nodes). The full enumeration replays ~10^9
// events, so it only runs when REPRO_HEAVY is set; the limit itself is
// pinned unconditionally in TestSimulatedBackendDimLimit.
func TestSimulatedBest14(t *testing.T) {
	if os.Getenv("REPRO_HEAVY") == "" {
		t.Skip("set REPRO_HEAVY=1 to run the full d=14 simulated enumeration")
	}
	prm := model.IPSC860()
	s, err := NewSimulated(prm).Best(14, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(prm).Best(14, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Part.Canonical().Equal(s.Part.Canonical()) {
		t.Errorf("analytic %v vs compiled-simulated %v", a.Part, s.Part)
	}
}

// Concurrent Best calls on one uncached key must share a single
// enumeration (no cache stampede).
func TestBestStampedeDeduplicated(t *testing.T) {
	o := NewSimulated(model.IPSC860())
	const callers = 8
	var wg sync.WaitGroup
	choices := make([]Choice, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			choices[i], errs[i] = o.Best(7, 40)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !choices[i].Part.Equal(choices[0].Part) {
			t.Errorf("caller %d got %v, caller 0 got %v", i, choices[i].Part, choices[0].Part)
		}
	}
	if n := o.evals.Load(); n != 1 {
		t.Errorf("%d concurrent Best calls ran %d evaluations, want 1", callers, n)
	}
}

func TestCostingString(t *testing.T) {
	if CostingCompiled.String() != "compiled" || CostingGoroutine.String() != "goroutine" {
		t.Error("costing strings")
	}
	if Costing(9).String() == "" {
		t.Error("unknown costing string")
	}
}

func TestPlanFromChoice(t *testing.T) {
	o := New(model.IPSC860())
	p, err := o.Plan(6, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 6 || p.BlockSize() != 40 {
		t.Errorf("plan = %v", p)
	}
	c, _ := o.Best(6, 40)
	if !p.Partition().Equal(c.Part) {
		t.Error("plan partition differs from choice")
	}
	p0, err := o.Plan(0, 40)
	if err != nil || p0.Nodes() != 1 {
		t.Errorf("0-cube plan: %v %v", p0, err)
	}
}

func TestBuildTableAndLookup(t *testing.T) {
	o := New(model.IPSC860())
	tbl, err := o.BuildTable(6, 2, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Segments) < 2 {
		t.Fatalf("table has %d segments", len(tbl.Segments))
	}
	// Paper Figure 5: {6} optimal for large m, {2,2,2} for tiny m.
	if !tbl.Lookup(400).Equal(partition.Partition{6}) {
		t.Errorf("Lookup(400) = %v, want {6}", tbl.Lookup(400))
	}
	small := tbl.Lookup(2).Canonical()
	if !small.Equal(partition.Partition{2, 2, 2}) {
		t.Errorf("Lookup(2) = %v, want {2,2,2}", small)
	}
	// Out-of-range lookups clamp to nearest segment.
	if tbl.Lookup(100000) == nil || tbl.Lookup(0) == nil {
		t.Error("out-of-range lookups must clamp")
	}
	// Lookup must agree with Best at every swept size.
	for m := 2; m <= 400; m += 26 {
		c, _ := o.Best(6, m)
		if !tbl.Lookup(m).Equal(c.Part) {
			t.Errorf("m=%d: table %v, best %v", m, tbl.Lookup(m), c.Part)
		}
	}
}

func TestBuildTableValidation(t *testing.T) {
	o := New(model.IPSC860())
	if _, err := o.BuildTable(5, -1, 10, 1); err == nil {
		t.Error("negative range must fail")
	}
	if _, err := o.BuildTable(5, 10, 5, 1); err == nil {
		t.Error("inverted range must fail")
	}
	tbl, err := o.BuildTable(5, 1, 5, 0) // step clamps to 1
	if err != nil || len(tbl.Segments) == 0 {
		t.Errorf("clamped step: %v %v", tbl, err)
	}
}

func TestEmptyTableLookup(t *testing.T) {
	if (Table{}).Lookup(5) != nil {
		t.Error("empty table must return nil")
	}
}

func TestBackendString(t *testing.T) {
	if Analytic.String() != "analytic" || Simulated.String() != "simulated" {
		t.Error("backend strings")
	}
	if Backend(9).String() == "" {
		t.Error("unknown backend string")
	}
}

func TestParamsAccessor(t *testing.T) {
	prm := model.Hypothetical()
	if New(prm).Params().Lambda != prm.Lambda {
		t.Error("Params accessor")
	}
}

// BestOn with a torus must return the true minimum over all ordered
// compositions of the dimensions, costed by the generalized model.
func TestBestOnTorusIsTrueMinimum(t *testing.T) {
	prm := model.IPSC860()
	o := New(prm)
	net := topology.MustParseSpec("torus-4x4x4")
	for _, m := range []int{0, 8, 40, 200} {
		got, err := o.BestOn(net, m)
		if err != nil {
			t.Fatal(err)
		}
		if got.Topo != "torus-4x4x4" || got.D != 3 {
			t.Fatalf("choice metadata: %+v", got)
		}
		bestTime := math.Inf(1)
		for _, G := range partition.All(3) { // uniform radices: partitions suffice
			tt, _, err := prm.MultiphaseOn(net, m, G)
			if err != nil {
				t.Fatal(err)
			}
			if tt < bestTime {
				bestTime = tt
			}
		}
		if got.TimeMicro != bestTime {
			t.Errorf("m=%d: BestOn %v µs, enumeration minimum %v µs", m, got.TimeMicro, bestTime)
		}
	}
}

// Mixed radices force the full composition enumeration: the winner must
// beat (or tie) every ordered composition, including order-reversed
// pairs that differ in cost.
func TestBestOnMixedRadixComposition(t *testing.T) {
	prm := model.IPSC860()
	o := New(prm)
	net := topology.MustParseSpec("torus-8x2x2")
	got, err := o.BestOn(net, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, G := range []partition.Partition{{3}, {1, 2}, {2, 1}, {1, 1, 1}} {
		tt, _, err := prm.MultiphaseOn(net, 40, G)
		if err != nil {
			t.Fatal(err)
		}
		if tt < got.TimeMicro {
			t.Errorf("composition %v (%v µs) beats BestOn's %v (%v µs)",
				G, tt, got.Part, got.TimeMicro)
		}
	}
}

// Hypercube and torus lines must cache independently even at equal node
// counts.
func TestBestCachesPerTopology(t *testing.T) {
	o := New(model.Hypothetical())
	cube, err := o.Best(4, 40)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := o.BestOn(topology.MustParseSpec("torus-4x4"), 40)
	if err != nil {
		t.Fatal(err)
	}
	if cube.Topo == tor.Topo {
		t.Errorf("distinct topologies share key %q", cube.Topo)
	}
	if o.Evaluations() != 2 {
		t.Errorf("expected 2 enumerations, got %d", o.Evaluations())
	}
	// Hits on both keys.
	if _, err := o.Best(4, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := o.BestOn(topology.MustParseSpec("torus-4x4"), 40); err != nil {
		t.Fatal(err)
	}
	if o.Evaluations() != 2 {
		t.Errorf("cache hits re-ran the enumeration: %d", o.Evaluations())
	}
}

// BuildTableOn must produce a hull whose every segment is the optimizer's
// winner on a torus.
func TestBuildTableOnTorus(t *testing.T) {
	o := New(model.IPSC860())
	net := topology.MustParseSpec("torus-3x3")
	tbl, err := o.BuildTableOn(net, 0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Topo != "torus-3x3" || tbl.D != 2 || len(tbl.Segments) == 0 {
		t.Fatalf("table: %+v", tbl)
	}
	for m := 0; m <= 64; m += 7 {
		want, err := o.BestOn(net, m)
		if err != nil {
			t.Fatal(err)
		}
		if !tbl.Lookup(m).Equal(want.Part) {
			t.Errorf("m=%d: table %v, BestOn %v", m, tbl.Lookup(m), want.Part)
		}
	}
}

// The simulated backend must cost torus candidates through the compiled
// trace replay.
func TestSimulatedBackendOnTorus(t *testing.T) {
	o := NewSimulated(model.IPSC860())
	net := topology.MustParseSpec("torus-4x4")
	got, err := o.BestOn(net, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got.TimeMicro <= 0 || got.Backend != Simulated {
		t.Fatalf("simulated torus choice: %+v", got)
	}
	// The winner's simulated cost must match costing the plan directly.
	plan, err := exchange.NewPlanOn(net, 40, got.Part)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Cost(simnet.New(net, model.IPSC860()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != got.TimeMicro {
		t.Errorf("BestOn %v µs, direct Cost %v µs", got.TimeMicro, res.Makespan)
	}
}
