package optimize

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/model"
)

// Sharded replay must be invisible to the optimizer's answers: the same
// Choice — partition AND bit-identical TimeMicro — with shards on and
// off, because the sharded replay results equal the serial ones exactly.
// The stats split proves the sharded path actually engaged rather than
// silently falling back everywhere.
func TestReplayShardsChoiceEquivalence(t *testing.T) {
	prm := model.IPSC860()
	for _, tc := range []struct{ d, m int }{{5, 8}, {6, 40}, {7, 200}} {
		serial := NewSimulated(prm)
		sharded := NewSimulated(prm)
		sharded.SetReplayShards(4)
		// Exhaustive mode costs every candidate's fragments — without it,
		// the bound can prune everything but a single-phase winner whose
		// whole-machine span is one group and legitimately runs serial.
		serial.SetExhaustive(true)
		sharded.SetExhaustive(true)

		sc, err := serial.Best(tc.d, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		hc, err := sharded.Best(tc.d, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Part.Equal(hc.Part) {
			t.Errorf("d=%d m=%d: partitions differ: serial %v, sharded %v", tc.d, tc.m, sc.Part, hc.Part)
		}
		if sc.TimeMicro != hc.TimeMicro {
			t.Errorf("d=%d m=%d: times differ: serial %v, sharded %v", tc.d, tc.m, sc.TimeMicro, hc.TimeMicro)
		}

		st := sharded.Stats()
		if st.ReplaysSharded == 0 {
			t.Errorf("d=%d m=%d: no replay ran sharded (serial=%d)", tc.d, tc.m, st.ReplaysSerial)
		}
		if got := serial.Stats(); got.ReplaysSharded != 0 {
			t.Errorf("d=%d m=%d: serial optimizer reports %d sharded replays", tc.d, tc.m, got.ReplaysSharded)
		}
		if got := serial.Stats(); got.ReplaysSerial == 0 {
			t.Errorf("d=%d m=%d: serial optimizer counted no replays", tc.d, tc.m)
		}
	}
}

// The replay counters aggregate like the other Stats fields.
func TestStatsAddReplayCounters(t *testing.T) {
	a := Stats{ReplaysSharded: 2, ReplaysSerial: 3}
	a.Add(Stats{ReplaysSharded: 5, ReplaysSerial: 7})
	if a.ReplaysSharded != 7 || a.ReplaysSerial != 10 {
		t.Fatalf("Add: got sharded=%d serial=%d", a.ReplaysSharded, a.ReplaysSerial)
	}
}

// The acceptance case for the raised limit: the simulated optimizer
// accepts d = 18 (262144 nodes) with sharded replay carrying the
// largest fragments. The enumeration replays billions of events, so it
// only runs when REPRO_HEAVY is set; the limit itself is pinned
// unconditionally in TestSimulatedBackendDimLimit.
func TestSimulatedBest18(t *testing.T) {
	if os.Getenv("REPRO_HEAVY") == "" {
		t.Skip("set REPRO_HEAVY=1 to run the full d=18 simulated enumeration")
	}
	prm := model.IPSC860()
	o := NewSimulated(prm)
	o.SetReplayShards(runtime.GOMAXPROCS(0))
	s, err := o.Best(18, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(prm).Best(18, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Part.Canonical().Equal(s.Part.Canonical()) {
		t.Errorf("analytic %v vs compiled-simulated %v", a.Part, s.Part)
	}
}
