// Package event provides a deterministic discrete-event simulation engine:
// a virtual clock in microseconds and a priority queue of timestamped
// callbacks. The circuit-switched network simulator (package simnet) and
// its clients are built on it.
//
// Determinism: events at equal times fire in scheduling order (FIFO among
// ties), so repeated runs of the same program produce identical traces.
package event

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in microseconds.
type Time float64

// Handler is a callback fired when an event matures.
type Handler func(now Time)

// ArgHandler is a callback fired with the integer argument it was
// scheduled with. Passing one long-lived ArgHandler to many PostArg calls
// avoids the per-event closure allocation a plain Handler would need to
// capture its argument.
type ArgHandler func(now Time, arg int)

// Event is a scheduled callback. It is returned by Engine.At so callers
// can cancel it.
type Event struct {
	time    Time
	seq     uint64
	index   int // heap index, -1 when not queued
	handler Handler
	argh    ArgHandler
	arg     int
	pooled  bool // recycled into the engine's free list after firing
}

// Time returns the maturity time of the event.
func (e *Event) Time() Time { return e.time }

// Engine is a discrete-event scheduler.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	nsteps uint64
	free   []*Event // recycled events for Post/PostArg
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (g *Engine) Now() Time { return g.now }

// Steps returns the number of events executed so far.
func (g *Engine) Steps() uint64 { return g.nsteps }

// Pending returns the number of queued events.
func (g *Engine) Pending() int { return len(g.queue) }

// At schedules h to fire at absolute time t. Scheduling in the past
// (t < Now) panics: it indicates a logic error in the caller.
func (g *Engine) At(t Time, h Handler) *Event {
	if t < g.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, g.now))
	}
	if h == nil {
		panic("event: nil handler")
	}
	e := &Event{time: t, seq: g.seq, handler: h}
	g.seq++
	heap.Push(&g.queue, e)
	return e
}

// Post schedules h to fire at absolute time t, like At, but the Event is
// recycled by the engine after it fires: no handle is returned and the
// event cannot be cancelled. Simulation hot loops use Post/PostArg so a
// run performs no per-event allocation once the free list is warm.
func (g *Engine) Post(t Time, h Handler) {
	if h == nil {
		panic("event: nil handler")
	}
	e := g.pooledEvent(t)
	e.handler = h
	heap.Push(&g.queue, e)
}

// PostArg schedules h(now, arg) to fire at absolute time t with pooled-
// event semantics (see Post). The handler is stored as passed, so reusing
// one bound ArgHandler across calls makes scheduling allocation-free.
func (g *Engine) PostArg(t Time, h ArgHandler, arg int) {
	if h == nil {
		panic("event: nil handler")
	}
	e := g.pooledEvent(t)
	e.argh = h
	e.arg = arg
	heap.Push(&g.queue, e)
}

// pooledEvent returns a recycled (or new) event stamped for time t.
func (g *Engine) pooledEvent(t Time) *Event {
	if t < g.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, g.now))
	}
	var e *Event
	if n := len(g.free); n > 0 {
		e = g.free[n-1]
		g.free[n-1] = nil
		g.free = g.free[:n-1]
	} else {
		e = &Event{}
	}
	*e = Event{time: t, seq: g.seq, pooled: true}
	g.seq++
	return e
}

// After schedules h to fire dt microseconds from now (dt ≥ 0).
func (g *Engine) After(dt Time, h Handler) *Event {
	if dt < 0 {
		panic(fmt.Sprintf("event: negative delay %v", dt))
	}
	return g.At(g.now+dt, h)
}

// Cancel removes a scheduled event; cancelling an already-fired or
// already-cancelled event is a no-op. Reports whether the event was
// actually removed.
func (g *Engine) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&g.queue, e.index)
	e.index = -1
	return true
}

// Step executes the single earliest event. It reports false when the
// queue is empty.
func (g *Engine) Step() bool {
	if len(g.queue) == 0 {
		return false
	}
	e := heap.Pop(&g.queue).(*Event)
	if e.time < g.now {
		panic("event: time ran backwards")
	}
	g.now = e.time
	g.nsteps++
	h, argh, arg := e.handler, e.argh, e.arg
	if e.pooled {
		*e = Event{index: -1}
		g.free = append(g.free, e)
	}
	if argh != nil {
		argh(g.now, arg)
	} else {
		h(g.now)
	}
	return true
}

// Run executes events until the queue is empty and returns the final time.
func (g *Engine) Run() Time {
	for g.Step() {
	}
	return g.now
}

// RunUntil executes events with time ≤ deadline; events beyond the
// deadline remain queued. The clock is advanced to min(deadline, time of
// last executed event ... deadline) — after RunUntil, Now() == deadline if
// any events remained, else the time of the last event.
func (g *Engine) RunUntil(deadline Time) Time {
	for len(g.queue) > 0 && g.queue[0].time <= deadline {
		g.Step()
	}
	if len(g.queue) > 0 && g.now < deadline {
		g.now = deadline
	}
	return g.now
}

// RunLimit executes at most n events; useful as a watchdog against
// runaway simulations. It reports whether the queue drained.
func (g *Engine) RunLimit(n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if !g.Step() {
			return true
		}
	}
	return len(g.queue) == 0
}

// Inf is an effectively infinite simulation time.
const Inf = Time(math.MaxFloat64)

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
