package event

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestFIFOAmongTies(t *testing.T) {
	g := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		g.At(5, func(Time) { order = append(order, i) })
	}
	g.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestTimeOrdering(t *testing.T) {
	g := New()
	var fired []Time
	times := []Time{9, 3, 7, 1, 3, 8, 0}
	for _, tm := range times {
		tm := tm
		g.At(tm, func(now Time) {
			if now != tm {
				t.Errorf("fired at %v, scheduled %v", now, tm)
			}
			fired = append(fired, now)
		})
	}
	end := g.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Errorf("events out of order: %v", fired)
	}
	if end != 9 {
		t.Errorf("final time %v, want 9", end)
	}
	if g.Steps() != uint64(len(times)) {
		t.Errorf("steps = %d", g.Steps())
	}
}

func TestAfter(t *testing.T) {
	g := New()
	var hit Time
	g.At(10, func(Time) {
		g.After(5, func(now Time) { hit = now })
	})
	g.Run()
	if hit != 15 {
		t.Errorf("After fired at %v, want 15", hit)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	g := New()
	g.At(10, func(Time) {})
	g.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past must panic")
		}
	}()
	g.At(5, func(Time) {})
}

func TestNegativeAfterPanics(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay must panic")
		}
	}()
	g.After(-1, func(Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Error("nil handler must panic")
		}
	}()
	g.At(1, nil)
}

func TestCancel(t *testing.T) {
	g := New()
	fired := false
	e := g.At(5, func(Time) { fired = true })
	if !g.Cancel(e) {
		t.Error("first cancel must succeed")
	}
	if g.Cancel(e) {
		t.Error("second cancel must be a no-op")
	}
	if g.Cancel(nil) {
		t.Error("cancel(nil) must be a no-op")
	}
	g.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	g := New()
	var fired []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, g.At(Time(i), func(Time) { fired = append(fired, i) }))
	}
	// Cancel all odd events.
	for i := 1; i < 20; i += 2 {
		g.Cancel(evs[i])
	}
	g.Run()
	if len(fired) != 10 {
		t.Fatalf("fired %v", fired)
	}
	for _, v := range fired {
		if v%2 != 0 {
			t.Fatalf("odd event %d fired", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	g := New()
	var fired []Time
	for _, tm := range []Time{1, 5, 10, 15} {
		tm := tm
		g.At(tm, func(now Time) { fired = append(fired, now) })
	}
	g.RunUntil(10)
	if len(fired) != 3 {
		t.Errorf("fired %v, want 3 events", fired)
	}
	if g.Now() != 10 {
		t.Errorf("now = %v, want 10", g.Now())
	}
	if g.Pending() != 1 {
		t.Errorf("pending = %d", g.Pending())
	}
	g.Run()
	if len(fired) != 4 {
		t.Error("remaining event must fire on Run")
	}
}

func TestRunLimit(t *testing.T) {
	g := New()
	count := 0
	for i := 0; i < 10; i++ {
		g.At(Time(i), func(Time) { count++ })
	}
	if g.RunLimit(4) {
		t.Error("queue must not drain in 4 steps")
	}
	if count != 4 {
		t.Errorf("count = %d", count)
	}
	if !g.RunLimit(100) {
		t.Error("queue must drain")
	}
}

func TestEventTimeAccessor(t *testing.T) {
	g := New()
	e := g.At(7, func(Time) {})
	if e.Time() != 7 {
		t.Errorf("Time() = %v", e.Time())
	}
}

func TestDeterministicUnderRandomLoad(t *testing.T) {
	run := func(seed int64) []Time {
		g := New()
		rng := rand.New(rand.NewSource(seed))
		var trace []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 3 {
				return
			}
			g.After(Time(rng.Intn(100)), func(now Time) {
				trace = append(trace, now)
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		g.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("nondeterministic trace length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic trace")
		}
	}
}

func TestEmptyRun(t *testing.T) {
	g := New()
	if g.Run() != 0 {
		t.Error("empty run must end at time 0")
	}
	if g.Step() {
		t.Error("Step on empty queue must be false")
	}
}

func TestPostAndPostArgPooling(t *testing.T) {
	g := New()
	var order []string
	g.Post(2, func(Time) { order = append(order, "post@2") })
	g.PostArg(1, func(_ Time, arg int) { order = append(order, fmt.Sprintf("arg%d@1", arg)) }, 7)
	g.At(1, func(Time) { order = append(order, "at@1") })
	g.Run()
	want := []string{"arg7@1", "at@1", "post@2"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}

	// Pooled events are recycled: a chain of sequential Posts reuses one
	// Event from the free list instead of allocating per step.
	g2 := New()
	count := 0
	var tick Handler
	tick = func(now Time) {
		count++
		if count < 100 {
			g2.Post(now+1, tick)
		}
	}
	g2.Post(0, tick)
	allocs := testing.AllocsPerRun(1, func() {
		count = 0
		g2.Post(g2.Now(), tick)
		g2.Run()
	})
	if count != 100 {
		t.Fatalf("chain ran %d steps", count)
	}
	// One warm-up run has filled the free list; steady-state scheduling
	// must not allocate per event (allow slack for the heap slice).
	if allocs > 5 {
		t.Errorf("pooled Post allocated %.0f times per run", allocs)
	}

	// Cancellable At events coexist with pooled ones.
	g3 := New()
	fired := false
	e := g3.At(5, func(Time) { fired = true })
	g3.PostArg(5, func(Time, int) {}, 0)
	if !g3.Cancel(e) {
		t.Error("cancel must succeed")
	}
	g3.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}
