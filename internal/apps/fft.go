package apps

import (
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"repro/internal/exchange"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/optimize"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x (length a
// power of two). inverse selects the inverse transform (scaled by 1/len).
func FFT(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("apps: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < size/2; k++ {
				a := x[start+k]
				b := x[start+k+size/2] * w
				x[start+k] = a + b
				x[start+k+size/2] = a - b
				w *= wstep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// DFTReference computes the direct O(n²) DFT, used to validate FFT.
func DFTReference(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

// Grid2D is an N×N complex grid distributed by row slabs over n = 2^d
// processors: processor p owns rows p·N/n .. (p+1)·N/n − 1.
type Grid2D struct {
	N     int            // grid side
	Procs int            // processor count (power of two, ≤ N)
	Slabs [][]complex128 // Slabs[p]: (N/Procs)·N values, row-major
}

// NewGrid2D builds a distributed grid filled by fill(row, col).
func NewGrid2D(n, procs int, fill func(r, c int) complex128) (*Grid2D, error) {
	if n < 1 || procs < 1 || n%procs != 0 {
		return nil, fmt.Errorf("apps: bad grid n=%d procs=%d", n, procs)
	}
	if procs&(procs-1) != 0 {
		return nil, fmt.Errorf("apps: processor count %d not a power of two", procs)
	}
	g := &Grid2D{N: n, Procs: procs, Slabs: make([][]complex128, procs)}
	rows := n / procs
	for p := 0; p < procs; p++ {
		slab := make([]complex128, rows*n)
		for r := 0; r < rows; r++ {
			for c := 0; c < n; c++ {
				slab[r*n+c] = fill(p*rows+r, c)
			}
		}
		g.Slabs[p] = slab
	}
	return g, nil
}

// At returns element (r, c) in global coordinates.
func (g *Grid2D) At(r, c int) complex128 {
	rows := g.N / g.Procs
	return g.Slabs[r/rows][(r%rows)*g.N+c]
}

// rowsPerProc returns N/Procs.
func (g *Grid2D) rowsPerProc() int { return g.N / g.Procs }

// transposeGrid performs the distributed transpose of the grid via one
// complete exchange: processor p cuts its slab into Procs column panels
// and sends panel q to processor q; received panels are locally
// rearranged. The panel is the exchange block (N/Procs)²·16 bytes.
func transposeGrid(g *Grid2D, plan *exchange.Plan, fab fabric.Fabric, timeout time.Duration) error {
	rows := g.rowsPerProc()
	panelBytes := rows * rows * 16
	if plan.BlockSize() != panelBytes {
		return fmt.Errorf("apps: plan block %d, want %d", plan.BlockSize(), panelBytes)
	}
	return fab.Run(func(nd fabric.Node) error {
		p := nd.ID()
		buf, err := exchange.NewBuffer(plan.Dim(), panelBytes)
		if err != nil {
			return err
		}
		slab := g.Slabs[p]
		// Pack panel q: the rows×rows submatrix at columns q·rows.
		for q := 0; q < g.Procs; q++ {
			blk := buf.Block(q)
			for r := 0; r < rows; r++ {
				for cc := 0; cc < rows; cc++ {
					putComplex(blk, (r*rows+cc)*16, slab[r*g.N+q*rows+cc])
				}
			}
		}
		if err := plan.Execute(nd, buf); err != nil {
			return err
		}
		// Unpack: panel from s is the transposed submatrix for columns
		// s·rows of my new slab.
		for s := 0; s < g.Procs; s++ {
			blk := buf.Block(s)
			for r := 0; r < rows; r++ {
				for cc := 0; cc < rows; cc++ {
					// Transpose while unpacking: element (r,cc) of
					// the received panel is (cc,r) of my slab panel.
					slab[cc*g.N+s*rows+r] = getComplex(blk, (r*rows+cc)*16)
				}
			}
		}
		return nil
	}, timeout)
}

func putComplex(b []byte, off int, v complex128) {
	bits := math.Float64bits(real(v))
	for i := 0; i < 8; i++ {
		b[off+i] = byte(bits >> (8 * i))
	}
	bits = math.Float64bits(imag(v))
	for i := 0; i < 8; i++ {
		b[off+8+i] = byte(bits >> (8 * i))
	}
}

func getComplex(b []byte, off int) complex128 {
	var re, im uint64
	for i := 0; i < 8; i++ {
		re |= uint64(b[off+i]) << (8 * i)
		im |= uint64(b[off+8+i]) << (8 * i)
	}
	return complex(math.Float64frombits(re), math.Float64frombits(im))
}

// FFT2D computes the 2-D FFT of the distributed grid with the transpose
// method ([11] in the paper): FFT all local rows, distributed transpose,
// FFT all local rows again, transpose back. The multiphase partition for
// the transposes is chosen by the optimizer.
func FFT2D(g *Grid2D, prm model.Params, inverse bool, timeout time.Duration) error {
	d := log2(g.Procs)
	if d < 0 {
		return fmt.Errorf("apps: processor count %d not a power of two", g.Procs)
	}
	rows := g.rowsPerProc()
	panelBytes := rows * rows * 16
	opt := optimize.New(prm)
	plan, err := opt.Plan(d, panelBytes)
	if err != nil {
		return err
	}
	fab, err := fabric.NewRuntime(g.Procs)
	if err != nil {
		return err
	}
	fftRows := func() error {
		return fab.Run(func(nd fabric.Node) error {
			slab := g.Slabs[nd.ID()]
			for r := 0; r < rows; r++ {
				if err := FFT(slab[r*g.N:(r+1)*g.N], inverse); err != nil {
					return err
				}
			}
			return nil
		}, timeout)
	}
	if err := fftRows(); err != nil {
		return err
	}
	if err := transposeGrid(g, plan, fab, timeout); err != nil {
		return err
	}
	if err := fftRows(); err != nil {
		return err
	}
	return transposeGrid(g, plan, fab, timeout)
}
