package apps

import (
	"fmt"
	"math"
	"time"

	"repro/internal/model"
)

// This file implements the full Alternating-Directions-Implicit (ADI)
// workload that motivates the paper's transpose (§3, references [5]
// Douglas & Gunn and [10] Peaceman & Rachford): solving the 2-D heat
// equation u_t = ν(u_xx + u_yy) on the unit square with Dirichlet
// boundaries. Each half-step solves a tridiagonal system along one
// direction; the distributed matrix is transposed between the row sweep
// and the column sweep, which is where the complete exchange does its
// work.

// SolveTridiag solves the constant-coefficient tridiagonal system with
// sub/superdiagonal a and diagonal b in place using the Thomas algorithm:
// a·x[i−1] + b·x[i] + a·x[i+1] = rhs[i], with x[−1] = x[n] = 0.
// rhs is overwritten with the solution.
func SolveTridiag(a, b float64, rhs []float64) error {
	n := len(rhs)
	if n == 0 {
		return nil
	}
	if b == 0 {
		return fmt.Errorf("apps: zero diagonal")
	}
	cp := make([]float64, n) // modified superdiagonal coefficients
	denom := b
	if denom == 0 {
		return fmt.Errorf("apps: singular tridiagonal system")
	}
	cp[0] = a / denom
	rhs[0] /= denom
	for i := 1; i < n; i++ {
		denom = b - a*cp[i-1]
		if denom == 0 {
			return fmt.Errorf("apps: singular tridiagonal system at row %d", i)
		}
		cp[i] = a / denom
		rhs[i] = (rhs[i] - a*rhs[i-1]) / denom
	}
	for i := n - 2; i >= 0; i-- {
		rhs[i] -= cp[i] * rhs[i+1]
	}
	return nil
}

// ADIHeat solves u_t = ν∇²u with the Peaceman–Rachford ADI scheme on the
// block matrix m (interpreted as grid values on an N×N interior grid with
// zero Dirichlet boundaries), advancing `steps` time steps of size dt
// with grid spacing h. Each step is two half-steps: implicit in x /
// explicit in y, then a distributed transpose, implicit in y / explicit
// in x, and a transpose back. Communication is the paper's complete
// exchange via the multiphase plan chosen for the machine parameters.
func ADIHeat(m *BlockMatrix, prm model.Params, nu, dt, h float64, steps int, timeout time.Duration) error {
	if nu <= 0 || dt <= 0 || h <= 0 {
		return fmt.Errorf("apps: nonpositive ADI parameters")
	}
	side := m.N * m.BS
	r := nu * dt / (2 * h * h) // half-step diffusion number

	// One half-step on the current layout: for each local row u, solve
	// (I − rA)u' = (I + rA)u where A is the 1-D Laplacian stencil in the
	// *row* direction and the explicit part acts along columns. With the
	// transpose trick both halves look identical: explicit along the
	// current columns, implicit along the current rows.
	halfStep := func() error {
		// Snapshot for the explicit (cross-direction) part.
		old := make([][]float64, side)
		for i := 0; i < side; i++ {
			old[i] = make([]float64, side)
			for j := 0; j < side; j++ {
				old[i][j] = m.At(i, j)
			}
		}
		row := make([]float64, side)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				// Explicit second difference along columns (the
				// direction we are NOT solving implicitly).
				up, down := 0.0, 0.0
				if i > 0 {
					up = old[i-1][j]
				}
				if i < side-1 {
					down = old[i+1][j]
				}
				row[j] = old[i][j] + r*(up-2*old[i][j]+down)
			}
			// Implicit solve along the row: (1+2r) on the diagonal,
			// −r off-diagonal.
			if err := SolveTridiag(-r, 1+2*r, row); err != nil {
				return err
			}
			setRow(m, i, row)
		}
		return nil
	}

	for s := 0; s < steps; s++ {
		if err := halfStep(); err != nil { // implicit in x
			return err
		}
		if err := Transpose(m, prm, timeout); err != nil {
			return err
		}
		if err := halfStep(); err != nil { // implicit in y (now rows)
			return err
		}
		if err := Transpose(m, prm, timeout); err != nil {
			return err
		}
	}
	return nil
}

// setRow writes a full logical row back into the block layout.
func setRow(m *BlockMatrix, i int, row []float64) {
	p, r := i/m.BS, i%m.BS
	for j := 0; j < m.N; j++ {
		copy(m.Rows[p][j][r*m.BS:(r+1)*m.BS], row[j*m.BS:(j+1)*m.BS])
	}
}

// HeatAnalytic returns the exact solution at time t of the unit-square
// heat equation with u(x,y,0) = sin(πx)sin(πy) and zero boundaries:
// u = exp(−2π²νt)·sin(πx)sin(πy). Used to validate ADIHeat.
func HeatAnalytic(x, y, t, nu float64) float64 {
	return math.Exp(-2*math.Pi*math.Pi*nu*t) * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
}
