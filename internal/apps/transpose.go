// Package apps implements the applications the paper cites as the reason
// the complete exchange matters (§3): matrix transpose under the ADI
// block-row mapping, the transpose-method 2-D FFT, and distributed table
// lookup. Each is built on the multiphase exchange plans of package
// exchange running against the fabric interface (here instantiated with
// the real goroutine backend), with the partition chosen by the optimizer
// for the machine parameters.
package apps

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/bitutil"
	"repro/internal/exchange"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/optimize"
)

// BlockMatrix is an n·bs × n·bs matrix of float64 partitioned into n×n
// blocks of bs×bs, mapped onto n processors by block rows: processor p
// owns blocks (p, 0..n-1). This is the ADI mapping of Figure 2.
type BlockMatrix struct {
	N  int // block grid dimension = processor count
	BS int // block side length
	// Rows[p][j] is block (p,j) in row-major order, owned by processor p.
	Rows [][][]float64
}

// NewBlockMatrix allocates an n×n block matrix with bs×bs blocks, filled
// by fill(globalRow, globalCol).
func NewBlockMatrix(n, bs int, fill func(r, c int) float64) (*BlockMatrix, error) {
	if n < 1 || bs < 1 {
		return nil, fmt.Errorf("apps: bad matrix shape n=%d bs=%d", n, bs)
	}
	m := &BlockMatrix{N: n, BS: bs, Rows: make([][][]float64, n)}
	for p := 0; p < n; p++ {
		m.Rows[p] = make([][]float64, n)
		for j := 0; j < n; j++ {
			blk := make([]float64, bs*bs)
			for r := 0; r < bs; r++ {
				for c := 0; c < bs; c++ {
					blk[r*bs+c] = fill(p*bs+r, j*bs+c)
				}
			}
			m.Rows[p][j] = blk
		}
	}
	return m, nil
}

// At returns element (r, c) in global coordinates.
func (m *BlockMatrix) At(r, c int) float64 {
	return m.Rows[r/m.BS][c/m.BS][(r%m.BS)*m.BS+(c%m.BS)]
}

// BlockBytes returns the wire size of one block: bs²·8.
func (m *BlockMatrix) BlockBytes() int { return m.BS * m.BS * 8 }

// encodeBlock serializes a block to bytes (little-endian float64).
func encodeBlock(blk []float64, out []byte) {
	for i, v := range blk {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
}

// decodeBlock deserializes bytes into a block.
func decodeBlock(in []byte, blk []float64) {
	for i := range blk {
		blk[i] = math.Float64frombits(binary.LittleEndian.Uint64(in[i*8:]))
	}
}

// transposeLocal transposes a bs×bs block in place.
func transposeLocal(blk []float64, bs int) {
	for r := 0; r < bs; r++ {
		for c := r + 1; c < bs; c++ {
			blk[r*bs+c], blk[c*bs+r] = blk[c*bs+r], blk[r*bs+c]
		}
	}
}

// Transpose performs the distributed transpose of §3 on a d-cube (the
// matrix's N must be 2^d): one complete exchange — processor p sends block
// (p,j) to processor j — followed by a local transpose of every block. The
// multiphase partition is chosen by the optimizer for the given machine
// parameters. The matrix is replaced by its transpose.
func Transpose(m *BlockMatrix, prm model.Params, timeout time.Duration) error {
	d := log2(m.N)
	if d < 0 {
		return fmt.Errorf("apps: matrix grid %d is not a power of two", m.N)
	}
	opt := optimize.New(prm)
	plan, err := opt.Plan(d, m.BlockBytes())
	if err != nil {
		return err
	}
	fab, err := fabric.NewRuntime(m.N)
	if err != nil {
		return err
	}
	err = fab.Run(func(nd fabric.Node) error {
		p := nd.ID()
		buf, err := exchange.NewBuffer(d, m.BlockBytes())
		if err != nil {
			return err
		}
		for j := 0; j < m.N; j++ {
			encodeBlock(m.Rows[p][j], buf.Block(j))
		}
		if err := plan.Execute(nd, buf); err != nil {
			return err
		}
		// Block s now holds the block (s, p) of the original matrix;
		// its local transpose is block (p, s) of the transpose.
		for s := 0; s < m.N; s++ {
			decodeBlock(buf.Block(s), m.Rows[p][s])
			transposeLocal(m.Rows[p][s], m.BS)
		}
		return nil
	}, timeout)
	return err
}

// ADISweeps runs the communication skeleton of one ADI iteration ([5, 10]
// in the paper): a row sweep (local), a transpose, a column sweep (local
// on the transposed layout), and a transpose back. It returns the matrix
// to its original orientation; the sweeps apply opFn to each row of the
// current layout.
func ADISweeps(m *BlockMatrix, prm model.Params, opFn func(row []float64), timeout time.Duration) error {
	applyRows := func() {
		row := make([]float64, m.N*m.BS)
		for p := 0; p < m.N; p++ {
			for r := 0; r < m.BS; r++ {
				for j := 0; j < m.N; j++ {
					copy(row[j*m.BS:(j+1)*m.BS], m.Rows[p][j][r*m.BS:(r+1)*m.BS])
				}
				opFn(row)
				for j := 0; j < m.N; j++ {
					copy(m.Rows[p][j][r*m.BS:(r+1)*m.BS], row[j*m.BS:(j+1)*m.BS])
				}
			}
		}
	}
	applyRows() // row-direction sweep
	if err := Transpose(m, prm, timeout); err != nil {
		return err
	}
	applyRows() // column-direction sweep (rows of the transpose)
	return Transpose(m, prm, timeout)
}

func log2(n int) int { return bitutil.Log2Exact(n) }
