package apps

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

func TestNewLookupTableValidation(t *testing.T) {
	if _, err := NewLookupTable(3, nil); err == nil {
		t.Error("non-pow2 procs must fail")
	}
	if _, err := NewLookupTable(0, nil); err == nil {
		t.Error("zero procs must fail")
	}
}

func TestShardingByKeyMod(t *testing.T) {
	entries := map[uint64]uint64{0: 10, 1: 11, 5: 15, 8: 18, 13: 23}
	tbl, err := NewLookupTable(4, entries)
	if err != nil {
		t.Fatal(err)
	}
	for k := range entries {
		owner := tbl.Owner(k)
		if _, ok := tbl.Shards[owner][k]; !ok {
			t.Errorf("key %d not on owner %d", k, owner)
		}
		for p := 0; p < 4; p++ {
			if p == owner {
				continue
			}
			if _, ok := tbl.Shards[p][k]; ok {
				t.Errorf("key %d duplicated on %d", k, p)
			}
		}
	}
}

func TestBatchLookupCorrect(t *testing.T) {
	const procs = 8
	rng := rand.New(rand.NewSource(21))
	entries := make(map[uint64]uint64)
	for i := 0; i < 500; i++ {
		entries[uint64(rng.Intn(1000))] = uint64(rng.Intn(1 << 30))
	}
	tbl, err := NewLookupTable(procs, entries)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]uint64, procs)
	for p := range queries {
		for q := 0; q < 20+p; q++ { // uneven query loads
			queries[p] = append(queries[p], uint64(rng.Intn(1200)))
		}
	}
	answers, ok, err := tbl.BatchLookup(queries, model.IPSC860(), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for p := range queries {
		if len(answers[p]) != len(queries[p]) || len(ok[p]) != len(queries[p]) {
			t.Fatalf("proc %d: answer shape mismatch", p)
		}
		for i, k := range queries[p] {
			want, exists := entries[k]
			if ok[p][i] != exists {
				t.Errorf("proc %d query %d (key %d): ok=%v want %v", p, i, k, ok[p][i], exists)
			}
			if exists && answers[p][i] != want {
				t.Errorf("proc %d key %d: got %d want %d", p, k, answers[p][i], want)
			}
		}
	}
}

func TestBatchLookupEmptyQueries(t *testing.T) {
	tbl, _ := NewLookupTable(4, map[uint64]uint64{1: 2})
	answers, ok, err := tbl.BatchLookup(make([][]uint64, 4), model.IPSC860(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for p := range answers {
		if len(answers[p]) != 0 || len(ok[p]) != 0 {
			t.Error("empty queries must yield empty answers")
		}
	}
}

func TestBatchLookupWrongShape(t *testing.T) {
	tbl, _ := NewLookupTable(4, nil)
	if _, _, err := tbl.BatchLookup(make([][]uint64, 3), model.IPSC860(), time.Second); err == nil {
		t.Error("wrong query-set count must fail")
	}
}

func TestBatchLookupSkewedLoad(t *testing.T) {
	// All queries target one owner — the worst padding case.
	tbl, _ := NewLookupTable(4, map[uint64]uint64{4: 44, 8: 88})
	queries := [][]uint64{{4, 8, 4, 8, 4}, {4}, {}, {8}}
	answers, ok, err := tbl.BatchLookup(queries, model.Hypothetical(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0][0] != 44 || answers[0][1] != 88 || !ok[0][4] {
		t.Errorf("skewed lookup wrong: %v %v", answers[0], ok[0])
	}
	if answers[3][0] != 88 {
		t.Errorf("proc 3: %v", answers[3])
	}
}
