package apps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

func complexAlmost(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := DFTReference(x, false)
		got := append([]complex128(nil), x...)
		if err := FFT(got, false); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !complexAlmost(got[i], want[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := FFT(y, false); err != nil {
		t.Fatal(err)
	}
	if err := FFT(y, true); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !complexAlmost(x[i], y[i], 1e-9) {
			t.Fatalf("round trip differs at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestFFTNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 6), false); err == nil {
		t.Error("non-power-of-two length must fail")
	}
	if err := FFT(nil, false); err != nil {
		t.Error("empty FFT must succeed")
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 64)
	var inEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		inEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x, false); err != nil {
		t.Fatal(err)
	}
	var outEnergy float64
	for _, v := range x {
		outEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(outEnergy-64*inEnergy) > 1e-6*outEnergy {
		t.Errorf("Parseval violated: %v vs %v", outEnergy, 64*inEnergy)
	}
}

func TestNewGrid2DValidation(t *testing.T) {
	fill := func(r, c int) complex128 { return complex(float64(r), float64(c)) }
	if _, err := NewGrid2D(8, 3, fill); err == nil {
		t.Error("non-pow2 procs must fail")
	}
	if _, err := NewGrid2D(6, 4, fill); err == nil {
		t.Error("n not divisible by procs must fail")
	}
	if _, err := NewGrid2D(0, 1, fill); err == nil {
		t.Error("empty grid must fail")
	}
}

func TestGrid2DAt(t *testing.T) {
	fill := func(r, c int) complex128 { return complex(float64(r*100+c), 0) }
	g, err := NewGrid2D(8, 4, fill)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if g.At(r, c) != fill(r, c) {
				t.Fatalf("At(%d,%d) = %v", r, c, g.At(r, c))
			}
		}
	}
}

// The distributed 2-D FFT must match the serial row-column 2-D DFT.
func TestFFT2DMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 16
	const procs = 4
	vals := make([][]complex128, n)
	for r := range vals {
		vals[r] = make([]complex128, n)
		for c := range vals[r] {
			vals[r][c] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	fill := func(r, c int) complex128 { return vals[r][c] }
	g, err := NewGrid2D(n, procs, fill)
	if err != nil {
		t.Fatal(err)
	}
	if err := FFT2D(g, model.IPSC860(), false, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	// Serial reference: FFT rows then FFT columns.
	ref := make([][]complex128, n)
	for r := range ref {
		ref[r] = append([]complex128(nil), vals[r]...)
		if err := FFT(ref[r], false); err != nil {
			t.Fatal(err)
		}
	}
	col := make([]complex128, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = ref[r][c]
		}
		if err := FFT(col, false); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			ref[r][c] = col[r]
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if !complexAlmost(g.At(r, c), ref[r][c], 1e-6) {
				t.Fatalf("FFT2D(%d,%d) = %v, want %v", r, c, g.At(r, c), ref[r][c])
			}
		}
	}
}

func TestFFT2DInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 8
	const procs = 8
	orig := make([][]complex128, n)
	for r := range orig {
		orig[r] = make([]complex128, n)
		for c := range orig[r] {
			orig[r][c] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	g, err := NewGrid2D(n, procs, func(r, c int) complex128 { return orig[r][c] })
	if err != nil {
		t.Fatal(err)
	}
	if err := FFT2D(g, model.Hypothetical(), false, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := FFT2D(g, model.Hypothetical(), true, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if !complexAlmost(g.At(r, c), orig[r][c], 1e-9) {
				t.Fatalf("round trip (%d,%d): %v vs %v", r, c, g.At(r, c), orig[r][c])
			}
		}
	}
}
