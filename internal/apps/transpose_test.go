package apps

import (
	"testing"
	"time"

	"repro/internal/model"
)

func fillLinear(r, c int) float64 { return float64(r*1000 + c) }

func TestNewBlockMatrixValidation(t *testing.T) {
	if _, err := NewBlockMatrix(0, 2, fillLinear); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := NewBlockMatrix(4, 0, fillLinear); err == nil {
		t.Error("bs=0 must fail")
	}
}

func TestBlockMatrixAt(t *testing.T) {
	m, err := NewBlockMatrix(4, 3, fillLinear)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		for c := 0; c < 12; c++ {
			if m.At(r, c) != fillLinear(r, c) {
				t.Fatalf("At(%d,%d) = %v", r, c, m.At(r, c))
			}
		}
	}
	if m.BlockBytes() != 72 {
		t.Errorf("BlockBytes = %d", m.BlockBytes())
	}
}

func TestTransposeCorrect(t *testing.T) {
	for _, cfg := range []struct{ n, bs int }{{2, 1}, {4, 2}, {8, 3}, {16, 2}} {
		m, err := NewBlockMatrix(cfg.n, cfg.bs, fillLinear)
		if err != nil {
			t.Fatal(err)
		}
		if err := Transpose(m, model.IPSC860(), 30*time.Second); err != nil {
			t.Fatalf("n=%d bs=%d: %v", cfg.n, cfg.bs, err)
		}
		side := cfg.n * cfg.bs
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				if m.At(r, c) != fillLinear(c, r) {
					t.Fatalf("n=%d bs=%d: At(%d,%d) = %v, want %v",
						cfg.n, cfg.bs, r, c, m.At(r, c), fillLinear(c, r))
				}
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m, _ := NewBlockMatrix(8, 2, fillLinear)
	if err := Transpose(m, model.Hypothetical(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := Transpose(m, model.Hypothetical(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if m.At(r, c) != fillLinear(r, c) {
				t.Fatalf("double transpose not identity at (%d,%d)", r, c)
			}
		}
	}
}

func TestTransposeNonPow2Fails(t *testing.T) {
	m, _ := NewBlockMatrix(3, 2, fillLinear)
	if err := Transpose(m, model.IPSC860(), 5*time.Second); err == nil {
		t.Error("non-power-of-two grid must fail")
	}
}

func TestADISweeps(t *testing.T) {
	m, _ := NewBlockMatrix(4, 2, fillLinear)
	// opFn doubles each row; after row sweep + column sweep every
	// element is multiplied by 4, and orientation is restored.
	double := func(row []float64) {
		for i := range row {
			row[i] *= 2
		}
	}
	if err := ADISweeps(m, model.IPSC860(), double, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if m.At(r, c) != 4*fillLinear(r, c) {
				t.Fatalf("ADI at (%d,%d) = %v, want %v", r, c, m.At(r, c), 4*fillLinear(r, c))
			}
		}
	}
}
