package apps

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

func TestMatVecMatchesSerial(t *testing.T) {
	const nProc, bs = 8, 3
	rng := rand.New(rand.NewSource(31))
	m, err := NewBlockMatrix(nProc, bs, func(r, c int) float64 {
		return rng.NormFloat64()
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([][]float64, nProc)
	for p := range x {
		x[p] = make([]float64, bs)
		for i := range x[p] {
			x[p][i] = rng.NormFloat64()
		}
	}
	ys, err := MatVec(m, x, model.IPSC860(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference.
	side := nProc * bs
	flatX := make([]float64, side)
	for p := range x {
		copy(flatX[p*bs:], x[p])
	}
	for r := 0; r < side; r++ {
		want := 0.0
		for c := 0; c < side; c++ {
			want += m.At(r, c) * flatX[c]
		}
		got := ys[r/bs][r%bs]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("y[%d] = %v, want %v", r, got, want)
		}
	}
}

func TestMatVecIdentity(t *testing.T) {
	const nProc, bs = 4, 2
	m, err := NewBlockMatrix(nProc, bs, func(r, c int) float64 {
		if r == c {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([][]float64, nProc)
	for p := range x {
		x[p] = []float64{float64(p * 2), float64(p*2 + 1)}
	}
	ys, err := MatVec(m, x, model.Hypothetical(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for p := range ys {
		for i := range ys[p] {
			if ys[p][i] != x[p][i] {
				t.Fatalf("identity matvec changed x at (%d,%d)", p, i)
			}
		}
	}
}

func TestMatVecValidation(t *testing.T) {
	m, _ := NewBlockMatrix(4, 2, fillLinear)
	if _, err := MatVec(m, make([][]float64, 3), model.IPSC860(), time.Second); err == nil {
		t.Error("wrong slice count must fail")
	}
	bad := make([][]float64, 4)
	for i := range bad {
		bad[i] = make([]float64, 1) // wrong slice width
	}
	if _, err := MatVec(m, bad, model.IPSC860(), time.Second); err == nil {
		t.Error("wrong slice width must fail")
	}
	m3, _ := NewBlockMatrix(3, 2, fillLinear)
	x3 := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if _, err := MatVec(m3, x3, model.IPSC860(), time.Second); err == nil {
		t.Error("non-power-of-two grid must fail")
	}
}

func TestMatVecCostPositive(t *testing.T) {
	prm := model.IPSC860()
	c := MatVecCost(prm, 16, 5)
	if c <= 0 {
		t.Errorf("cost = %v", c)
	}
	if MatVecCost(prm, 16, 6) <= c {
		t.Error("cost must grow with dimension")
	}
}
