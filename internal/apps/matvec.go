package apps

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/collectives"
	"repro/internal/fabric"
	"repro/internal/model"
)

// MatVec computes y = A·x for a block-row-mapped matrix (the §3 mapping:
// node p owns block row p of A and the slice x_p of the input vector).
// The input vector is assembled everywhere with the recursive-doubling
// allgather of package collectives — the all-to-all broadcast pattern of
// §9 — then each node computes its slice of y locally. Returns the
// distributed result, ys[p] being node p's slice.
func MatVec(m *BlockMatrix, x [][]float64, prm model.Params, timeout time.Duration) ([][]float64, error) {
	d := log2(m.N)
	if d < 0 {
		return nil, fmt.Errorf("apps: matrix grid %d is not a power of two", m.N)
	}
	if len(x) != m.N {
		return nil, fmt.Errorf("apps: %d vector slices for %d nodes", len(x), m.N)
	}
	for p := range x {
		if len(x[p]) != m.BS {
			return nil, fmt.Errorf("apps: slice %d has %d elements, want %d", p, len(x[p]), m.BS)
		}
	}
	_ = prm // the machine model prices the exchange; data movement below is real

	fab, err := fabric.NewRuntime(m.N)
	if err != nil {
		return nil, err
	}
	ys := make([][]float64, m.N)
	err = fab.Run(func(nd fabric.Node) error {
		p := nd.ID()
		n := m.N
		all, err := collectives.AllGatherOn(nd, appendFloats(nil, x[p]))
		if err != nil {
			return err
		}
		// Local block-row × vector.
		y := make([]float64, m.BS)
		for j := 0; j < n; j++ {
			blk := m.Rows[p][j]
			xs := floatsAt(all[j], 0, m.BS)
			for r := 0; r < m.BS; r++ {
				sum := 0.0
				for cc := 0; cc < m.BS; cc++ {
					sum += blk[r*m.BS+cc] * xs[cc]
				}
				y[r] += sum
			}
		}
		ys[p] = y
		return nil
	}, timeout)
	if err != nil {
		return nil, err
	}
	return ys, nil
}

// MatVecCost returns the modeled communication time of the MatVec: one
// allgather of bs·8-byte slices on the d-cube.
func MatVecCost(prm model.Params, bs, d int) float64 {
	df := float64(d)
	full := float64(int(1)<<uint(d) - 1)
	return df*prm.EffLambda() + prm.EffTau()*float64(bs*8)*full + df*prm.EffDelta()
}

func appendFloats(b []byte, xs []float64) []byte {
	for _, v := range xs {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		b = append(b, buf[:]...)
	}
	return b
}

func floatsAt(b []byte, idx, count int) []float64 {
	out := make([]float64, count)
	off := idx * count * 8
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off+i*8:]))
	}
	return out
}
