package apps

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

func TestSolveTridiagAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(20) + 1
		a := rng.Float64()*0.4 - 0.2 // keep diagonally dominant
		b := 1.0 + rng.Float64()
		x := make([]float64, n) // true solution
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = b * x[i]
			if i > 0 {
				rhs[i] += a * x[i-1]
			}
			if i < n-1 {
				rhs[i] += a * x[i+1]
			}
		}
		if err := SolveTridiag(a, b, rhs); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(rhs[i]-x[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, rhs[i], x[i])
			}
		}
	}
}

func TestSolveTridiagEdgeCases(t *testing.T) {
	if err := SolveTridiag(0, 0, []float64{1}); err == nil {
		t.Error("zero diagonal must fail")
	}
	if err := SolveTridiag(1, 2, nil); err != nil {
		t.Error("empty system must succeed")
	}
	rhs := []float64{6}
	if err := SolveTridiag(0, 2, rhs); err != nil || rhs[0] != 3 {
		t.Errorf("1x1 solve: %v %v", rhs, err)
	}
	// Singular after elimination: a=1, b=1 gives denom 0 at row 1.
	if err := SolveTridiag(1, 1, []float64{1, 1}); err == nil {
		t.Error("singular system must fail")
	}
}

func TestADIHeatValidation(t *testing.T) {
	if err := ADIHeat(&BlockMatrix{N: 1, BS: 1, Rows: [][][]float64{{{1}}}},
		model.IPSC860(), -1, 0.1, 0.1, 1, time.Second); err == nil {
		t.Error("negative viscosity must fail")
	}
}

// The ADI scheme must track the analytic decay of the fundamental mode.
func TestADIHeatMatchesAnalytic(t *testing.T) {
	const (
		nProc = 4
		bs    = 4 // 16×16 interior grid
		nu    = 0.05
		steps = 10
	)
	side := nProc * bs
	h := 1.0 / float64(side+1)
	dt := 0.002
	m, err := NewBlockMatrix(nProc, bs, func(r, c int) float64 {
		x := float64(c+1) * h
		y := float64(r+1) * h
		return HeatAnalytic(x, y, 0, nu)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ADIHeat(m, model.IPSC860(), nu, dt, h, steps, time.Minute); err != nil {
		t.Fatal(err)
	}
	tEnd := dt * steps
	maxErr := 0.0
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			x := float64(c+1) * h
			y := float64(r+1) * h
			want := HeatAnalytic(x, y, tEnd, nu)
			if e := math.Abs(m.At(r, c) - want); e > maxErr {
				maxErr = e
			}
		}
	}
	// Peaceman–Rachford is O(dt² + h²); on this grid a few 1e-3 is fine,
	// but the scheme must clearly track the analytic decay.
	if maxErr > 5e-3 {
		t.Errorf("ADI max error %v vs analytic solution", maxErr)
	}
	// And it must actually have decayed (not stayed at the initial
	// condition): centre value should be below its initial value.
	centre := m.At(side/2, side/2)
	init := HeatAnalytic(float64(side/2+1)*h, float64(side/2+1)*h, 0, nu)
	if centre >= init {
		t.Errorf("no decay: centre %v vs initial %v", centre, init)
	}
}

// Energy (sup norm) must decay monotonically for pure diffusion.
func TestADIHeatStability(t *testing.T) {
	const nProc, bs = 4, 2
	side := nProc * bs
	h := 1.0 / float64(side+1)
	rng := rand.New(rand.NewSource(8))
	m, err := NewBlockMatrix(nProc, bs, func(r, c int) float64 {
		return rng.Float64()
	})
	if err != nil {
		t.Fatal(err)
	}
	norm := func() float64 {
		max := 0.0
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				if v := math.Abs(m.At(r, c)); v > max {
					max = v
				}
			}
		}
		return max
	}
	prev := norm()
	// Large dt: ADI is unconditionally stable, so this must not blow up.
	for s := 0; s < 5; s++ {
		if err := ADIHeat(m, model.Hypothetical(), 0.1, 0.05, h, 1, time.Minute); err != nil {
			t.Fatal(err)
		}
		cur := norm()
		if cur > prev+1e-12 {
			t.Fatalf("step %d: norm grew %v → %v", s, prev, cur)
		}
		prev = cur
	}
}
