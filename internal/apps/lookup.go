package apps

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/exchange"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/optimize"
)

// LookupTable is a table of uint64→uint64 entries partitioned over n
// processors by key modulo n — the distributed table lookup workload the
// paper cites ([12]). Each processor holds the shard of entries whose key
// ≡ its id (mod n).
type LookupTable struct {
	Procs  int
	Shards []map[uint64]uint64
}

// NewLookupTable builds a table over procs processors from the given
// entries.
func NewLookupTable(procs int, entries map[uint64]uint64) (*LookupTable, error) {
	if procs < 1 || procs&(procs-1) != 0 {
		return nil, fmt.Errorf("apps: processor count %d not a power of two", procs)
	}
	t := &LookupTable{Procs: procs, Shards: make([]map[uint64]uint64, procs)}
	for p := range t.Shards {
		t.Shards[p] = make(map[uint64]uint64)
	}
	for k, v := range entries {
		t.Shards[k%uint64(procs)][k] = v
	}
	return t, nil
}

// Owner returns the processor holding key k.
func (t *LookupTable) Owner(k uint64) int { return int(k % uint64(t.Procs)) }

const (
	keyBytes   = 8
	valueBytes = 8
	// missMarker is returned for keys absent from the table.
	missMarker = ^uint64(0)
)

// BatchLookup answers, for every processor p, the queries queries[p]
// against the distributed table using two complete exchanges: one routing
// queries to their owners, one routing answers back. Queries per
// (requester, owner) pair are padded to the maximum bucket size so the
// exchanges have the uniform block size the algorithms require; the block
// size is maxBucket·8 bytes. Missing keys yield missMarker (reported as
// ok=false).
//
// The returned answers[p][i] corresponds to queries[p][i].
func (t *LookupTable) BatchLookup(queries [][]uint64, prm model.Params, timeout time.Duration) ([][]uint64, [][]bool, error) {
	if len(queries) != t.Procs {
		return nil, nil, fmt.Errorf("apps: %d query sets for %d processors", len(queries), t.Procs)
	}
	d := log2(t.Procs)
	if d < 0 {
		return nil, nil, fmt.Errorf("apps: processor count %d not a power of two", t.Procs)
	}

	// Bucket queries by owner and find the global maximum bucket size;
	// every processor must agree on the block size, as on the real
	// machine (it would be exchanged in a preliminary reduction).
	buckets := make([][][]uint64, t.Procs) // [requester][owner][]keys
	maxBucket := 1
	for p := range queries {
		buckets[p] = make([][]uint64, t.Procs)
		for _, k := range queries[p] {
			o := t.Owner(k)
			buckets[p][o] = append(buckets[p][o], k)
			if len(buckets[p][o]) > maxBucket {
				maxBucket = len(buckets[p][o])
			}
		}
	}
	blockBytes := keyBytes * maxBucket

	opt := optimize.New(prm)
	plan, err := opt.Plan(d, blockBytes)
	if err != nil {
		return nil, nil, err
	}
	fab, err := fabric.NewRuntime(t.Procs)
	if err != nil {
		return nil, nil, err
	}

	answers := make([][]uint64, t.Procs)
	ok := make([][]bool, t.Procs)
	err = fab.Run(func(nd fabric.Node) error {
		p := nd.ID()
		// Phase 1: route queries to owners. Slot j carries my queries
		// for owner j, length-prefixed... count is encoded by padding
		// with missMarker (an impossible key under mod-sharding only if
		// it doesn't map here — so use explicit count in first slot?).
		// We encode each bucket as [count:8][keys...], hence block size
		// (maxBucket+1)·8? Keep it simple: pad with missMarker and use
		// a count word.
		qbuf, err := exchange.NewBuffer(d, blockBytes+8)
		if err != nil {
			return err
		}
		for o := 0; o < t.Procs; o++ {
			blk := qbuf.Block(o)
			binary.LittleEndian.PutUint64(blk, uint64(len(buckets[p][o])))
			for i, k := range buckets[p][o] {
				binary.LittleEndian.PutUint64(blk[8+i*8:], k)
			}
		}
		qplan, err := exchange.NewPlan(d, blockBytes+8, plan.Partition())
		if err != nil {
			return err
		}
		if err := qplan.Execute(nd, qbuf); err != nil {
			return err
		}

		// Answer the queries that arrived: block s holds requester s's
		// queries for me.
		abuf, err := exchange.NewBuffer(d, blockBytes+8)
		if err != nil {
			return err
		}
		shard := t.Shards[p]
		for s := 0; s < t.Procs; s++ {
			in := qbuf.Block(s)
			out := abuf.Block(s)
			cnt := binary.LittleEndian.Uint64(in)
			binary.LittleEndian.PutUint64(out, cnt)
			for i := uint64(0); i < cnt; i++ {
				k := binary.LittleEndian.Uint64(in[8+i*8:])
				v, found := shard[k]
				if !found {
					v = missMarker
				}
				binary.LittleEndian.PutUint64(out[8+i*8:], v)
			}
		}
		// Phase 2: route answers back.
		if err := qplan.Execute(nd, abuf); err != nil {
			return err
		}

		// Reassemble in the original query order.
		ans := make([]uint64, len(queries[p]))
		okp := make([]bool, len(queries[p]))
		next := make([]int, t.Procs) // cursor per owner bucket
		for i, k := range queries[p] {
			o := t.Owner(k)
			blk := abuf.Block(o)
			v := binary.LittleEndian.Uint64(blk[8+next[o]*8:])
			next[o]++
			ans[i] = v
			okp[i] = v != missMarker
		}
		answers[p] = ans
		ok[p] = okp
		return nil
	}, timeout)
	if err != nil {
		return nil, nil, err
	}
	return answers, ok, nil
}
