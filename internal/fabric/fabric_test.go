package fabric

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func newSim(t testing.TB, d int, prm model.Params) *Sim {
	t.Helper()
	return NewSim(simnet.New(topology.MustNew(d), prm))
}

// Both backends must run the same ring program and deliver the same data.
func TestBackendsAgreeOnData(t *testing.T) {
	ring := func(nd Node) error {
		n := nd.N()
		next := (nd.ID() + 1) % n
		prev := (nd.ID() + n - 1) % n
		nd.PostRecv(prev)
		nd.Send(next, []byte{byte(nd.ID()), 0x5A})
		got := nd.Recv(prev)
		if !bytes.Equal(got, []byte{byte(prev), 0x5A}) {
			return fmt.Errorf("node %d got %v from %d", nd.ID(), got, prev)
		}
		nd.Barrier()
		return nil
	}
	rt, err := NewRuntime(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(ring, 10*time.Second); err != nil {
		t.Errorf("runtime fabric: %v", err)
	}
	sim := newSim(t, 3, model.IPSC860())
	if err := sim.Run(ring, 10*time.Second); err != nil {
		t.Errorf("sim fabric: %v", err)
	}
	res, err := sim.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 8 || res.Barriers != 1 {
		t.Errorf("sim counted %d messages, %d barriers", res.Messages, res.Barriers)
	}
	if res.DroppedForced != 0 {
		t.Errorf("receives were posted, yet %d FORCED drops", res.DroppedForced)
	}
}

// The sim fabric's exchange with self must be a free copy, as on the
// runtime.
func TestSelfExchange(t *testing.T) {
	for _, fab := range []Fabric{mustRuntime(t, 4), newSim(t, 2, model.IPSC860())} {
		err := fab.Run(func(nd Node) error {
			out := nd.Exchange(nd.ID(), []byte{7, 8, 9})
			if !bytes.Equal(out, []byte{7, 8, 9}) {
				return fmt.Errorf("self-exchange returned %v", out)
			}
			return nil
		}, 10*time.Second)
		if err != nil {
			t.Error(err)
		}
	}
}

func mustRuntime(t testing.TB, n int) *Runtime {
	t.Helper()
	f, err := NewRuntime(n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// On a contention-free lockstep schedule the sim fabric's online node
// clocks must agree exactly with the replayed discrete-event simulation:
// the same rendezvous and barrier arithmetic, just computed live.
func TestSimClockMatchesReplay(t *testing.T) {
	for _, prm := range []model.Params{model.IPSC860(), model.Hypothetical(), model.IPSC860Raw()} {
		d := 3
		sim := newSim(t, d, prm)
		clocks := make([]float64, sim.N())
		err := sim.Run(func(nd Node) error {
			p := nd.ID()
			// One barrier, then a full XOR schedule of exchanges (the
			// OCS pattern), a shuffle, and a compute.
			nd.Barrier()
			for j := 1; j < nd.N(); j++ {
				nd.Exchange(p^j, make([]byte, 24))
			}
			nd.Shuffle(100)
			nd.Compute(5)
			clocks[p] = nd.Clock()
			return nil
		}, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Result()
		if err != nil {
			t.Fatal(err)
		}
		for p, c := range clocks {
			if diff := c - res.NodeFinish[p]; diff < -1e-9 || diff > 1e-9 {
				t.Errorf("node %d: online clock %v, replay finish %v", p, c, res.NodeFinish[p])
			}
		}
	}
}

// The runtime fabric's clock must be positive and monotone.
func TestRuntimeClock(t *testing.T) {
	fab := mustRuntime(t, 2)
	err := fab.Run(func(nd Node) error {
		t0 := nd.Clock()
		nd.Barrier()
		t1 := nd.Clock()
		if t1 < t0 {
			return fmt.Errorf("clock went backwards: %v -> %v", t0, t1)
		}
		return nil
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

// A deadlocked program must trip the sim fabric's watchdog, not hang.
func TestSimTimeout(t *testing.T) {
	sim := newSim(t, 1, model.IPSC860())
	err := sim.Run(func(nd Node) error {
		if nd.ID() == 0 {
			nd.Recv(1) // node 1 never sends
		}
		return nil
	}, 100*time.Millisecond)
	if err == nil {
		t.Fatal("deadlock must time out")
	}
	if _, rerr := sim.Result(); rerr == nil {
		t.Error("Result after a failed run must error")
	}
	// The timed-out run stranded a goroutine that still references the
	// Sim's state; reuse must be refused, not raced.
	if err := sim.Run(func(nd Node) error { return nil }, time.Second); err == nil {
		t.Error("Run after a timed-out run must be refused")
	}
}

// A node program error must surface and suppress the simulation result.
func TestSimNodeError(t *testing.T) {
	sim := newSim(t, 1, model.IPSC860())
	boom := fmt.Errorf("boom")
	err := sim.Run(func(nd Node) error {
		if nd.ID() == 0 {
			return boom
		}
		return nil
	}, 10*time.Second)
	if err == nil {
		t.Fatal("node error must surface")
	}
	if _, rerr := sim.Result(); rerr == nil {
		t.Error("Result after a failed run must error")
	}
}

// Result before any Run must error rather than return zeros.
func TestResultBeforeRun(t *testing.T) {
	sim := newSim(t, 2, model.IPSC860())
	if _, err := sim.Result(); err == nil {
		t.Error("Result before Run must error")
	}
}

// A Sim is reusable: a second Run must produce a fresh, identical result.
func TestSimRunReusable(t *testing.T) {
	sim := newSim(t, 2, model.IPSC860())
	prog := func(nd Node) error {
		nd.Exchange(nd.ID()^1, make([]byte, 16))
		return nil
	}
	if err := sim.Run(prog, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	first, err := sim.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(prog, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	second, err := sim.Result()
	if err != nil {
		t.Fatal(err)
	}
	if first.Makespan != second.Makespan || first.Messages != second.Messages {
		t.Errorf("runs differ: %+v vs %+v", first, second)
	}
}

// Recording must capture every node's call sequence in program order on
// both backends.
func TestRecording(t *testing.T) {
	prog := func(nd Node) error {
		peer := nd.ID() ^ 1
		nd.Barrier()
		nd.Exchange(peer, make([]byte, 4))
		nd.Shuffle(8)
		return nil
	}
	want := func(id int) []Event {
		return []Event{
			{Node: id, Op: "barrier", Peer: -1},
			{Node: id, Op: "exchange", Peer: id ^ 1, Bytes: 4},
			{Node: id, Op: "shuffle", Peer: -1, Bytes: 8},
		}
	}
	for name, fab := range map[string]Fabric{
		"runtime": mustRuntime(t, 2),
		"simnet":  newSim(t, 1, model.IPSC860()),
	} {
		rec := Record(fab)
		if rec.N() != 2 {
			t.Fatalf("%s: N = %d", name, rec.N())
		}
		if err := rec.Run(prog, 10*time.Second); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for id := 0; id < 2; id++ {
			w := want(id)
			if len(rec.Events[id]) != len(w) {
				t.Fatalf("%s node %d: %d events, want %d", name, id, len(rec.Events[id]), len(w))
			}
			for i := range w {
				if rec.Events[id][i] != w[i] {
					t.Errorf("%s node %d event %d = %+v, want %+v",
						name, id, i, rec.Events[id][i], w[i])
				}
			}
		}
	}
}

// The recorded trace of a sim run must replay to the same result as the
// run itself reported (the trace is the program).
func TestSimTraceIsReplayable(t *testing.T) {
	net := simnet.New(topology.MustNew(2), model.IPSC860())
	sim := NewSim(net)
	err := sim.Run(func(nd Node) error {
		nd.Barrier()
		for j := 1; j < nd.N(); j++ {
			nd.Exchange(nd.ID()^j, make([]byte, 32))
		}
		return nil
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Result()
	if err != nil {
		t.Fatal(err)
	}
	again, err := net.Run(sim.Traces())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != again.Makespan || res.BytesMoved != again.BytesMoved {
		t.Errorf("replay differs: %+v vs %+v", res, again)
	}
}
