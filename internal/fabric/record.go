package fabric

import "time"

// Event is one fabric call observed at a node, in program order.
type Event struct {
	Node   int
	Op     string  // "send", "postrecv", "recv", "exchange", "barrier", "shuffle", "compute"
	Peer   int     // partner node for communication ops, -1 otherwise
	Bytes  int     // payload size for communication/shuffle ops
	Micros float64 // duration for compute ops
}

// Recording decorates a Fabric so that every node's sequence of fabric
// calls is captured. It is how tests assert that the same algorithm run
// on two different backends performs the identical sequence of transfers.
type Recording struct {
	inner Fabric
	// Events[id] is node id's call sequence from the last Run, valid
	// after Run returns without timing out.
	Events [][]Event
}

// Record wraps a fabric with call recording.
func Record(f Fabric) *Recording { return &Recording{inner: f} }

// N returns the node count of the wrapped fabric.
func (r *Recording) N() int { return r.inner.N() }

// Run executes fn with every node handle decorated to capture calls.
func (r *Recording) Run(fn func(Node) error, timeout time.Duration) error {
	r.Events = make([][]Event, r.inner.N())
	return r.inner.Run(func(nd Node) error {
		return fn(&recNode{Node: nd, rec: r})
	}, timeout)
}

// recNode forwards every call and appends an Event. Each node goroutine
// writes only its own slot of rec.Events, so no locking is needed.
type recNode struct {
	Node
	rec *Recording
}

func (n *recNode) add(op string, peer, bytes int) {
	id := n.Node.ID()
	n.rec.Events[id] = append(n.rec.Events[id], Event{Node: id, Op: op, Peer: peer, Bytes: bytes})
}

func (n *recNode) Send(dst int, data []byte) {
	n.add("send", dst, len(data))
	n.Node.Send(dst, data)
}

func (n *recNode) PostRecv(src int) {
	n.add("postrecv", src, 0)
	n.Node.PostRecv(src)
}

func (n *recNode) Recv(src int) []byte {
	data := n.Node.Recv(src)
	n.add("recv", src, len(data))
	return data
}

func (n *recNode) Exchange(peer int, data []byte) []byte {
	n.add("exchange", peer, len(data))
	return n.Node.Exchange(peer, data)
}

func (n *recNode) Barrier() {
	n.add("barrier", -1, 0)
	n.Node.Barrier()
}

func (n *recNode) Shuffle(bytes int) {
	n.add("shuffle", -1, bytes)
	n.Node.Shuffle(bytes)
}

func (n *recNode) Compute(micros float64) {
	id := n.Node.ID()
	n.rec.Events[id] = append(n.rec.Events[id],
		Event{Node: id, Op: "compute", Peer: -1, Micros: micros})
	n.Node.Compute(micros)
}
