// Package fabric defines the node-level communication interface the
// paper's algorithms are written against, decoupling *what* a hypercube
// algorithm does (pairwise exchanges, tree sends, barriers, shuffles) from
// *where* it runs. Two backends implement the interface:
//
//   - Runtime wraps package runtime: one goroutine per node moving real
//     bytes over channels, so data movement is machine-checked;
//   - Sim wraps package simnet: node programs still run as goroutines and
//     still move real bytes (through lightweight mailboxes), but every
//     operation also advances a per-node virtual clock and is recorded as
//     a simnet op; after the run the recorded per-node programs are
//     replayed through the discrete-event simulator for the exact,
//     contention-aware virtual-time cost.
//
// The multiphase complete exchange (package exchange), the tree
// collectives (package collectives), and the user-facing communicator
// (package comm) are each implemented exactly once against Node and run
// unchanged on either backend. This is the enabling layer for any future
// backend — mesh/torus topologies, TCP transport, sharded clusters —
// which only has to implement Node and Fabric.
package fabric

import (
	"time"

	"repro/internal/runtime"
)

// Node is the per-node handle passed to node programs. The communication
// ops mirror the iPSC-860 NX primitives the paper's implementation uses
// (§7): one-sided sends with receives posted up front (FORCED messages),
// pairwise exchanges (§7.2), and global synchronization (§7.3), plus the
// local-cost hooks (shuffle, compute) the timing model prices.
type Node interface {
	// ID returns this node's label in [0, N).
	ID() int
	// N returns the number of nodes on the fabric.
	N() int
	// Send delivers a copy of data to dst (FORCED-style: the receiver is
	// expected to have posted, or to post, a matching Recv).
	Send(dst int, data []byte)
	// PostRecv declares, ahead of the traffic, that a receive from src
	// will follow. Posting receives before a known communication pattern
	// is the paper's §7.1 protocol; backends that model message cost use
	// the declaration, data-only backends ignore it.
	PostRecv(src int)
	// Recv blocks until the next message from src arrives and returns it.
	Recv(src int) []byte
	// Exchange performs a pairwise exchange with peer: sends data and
	// returns the peer's message. Ownership transfers both ways — the
	// caller relinquishes data (it must not read or write it after the
	// call) and owns the returned slice outright. This lets backends
	// hand the payload over clone-free; callers that reuse buffers (the
	// exchange executor's circulating superblock scratch) rely on it.
	Exchange(peer int, data []byte) []byte
	// Barrier blocks until every node on the fabric has reached it.
	Barrier()
	// Shuffle accounts for a local data permutation of the given size
	// (priced at ρ·bytes by the cost model).
	Shuffle(bytes int)
	// Compute accounts for local computation of the given duration (µs).
	Compute(micros float64)
	// Clock returns this node's current time in µs: wall-clock time on
	// the real backend, modeled virtual time on the simulated one.
	Clock() float64
}

// Fabric runs one node program per node.
type Fabric interface {
	// N returns the number of nodes.
	N() int
	// Run executes fn on every node concurrently and waits for
	// completion; the first error (lowest node id) is returned. A
	// non-positive timeout means wait forever.
	Run(fn func(Node) error, timeout time.Duration) error
}

// The goroutine runtime's node handle satisfies Node directly.
var _ Node = (*runtime.Node)(nil)
