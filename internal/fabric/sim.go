package fabric

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/simnet"
)

// Sim is the simulated backend: node programs run as real goroutines and
// move real bytes (through per-node mailboxes), so the same program that
// runs on the Runtime fabric runs here unchanged and its data movement
// can be verified. In addition, every operation
//
//   - advances the node's virtual clock by the machine model's cost
//     (contention-free: rendezvous and global-sync waits are modeled by
//     exchanging clocks, link contention is not), and
//   - is recorded as a simnet op, so that after the run the per-node
//     programs are replayed through the discrete-event simulator, whose
//     Result carries the exact virtual-time makespan including e-cube
//     circuit contention, message accounting, and (if configured) jitter.
//
// Node.Clock is therefore a live lower-bound estimate; Result is the
// authoritative cost. A Sim must not be Run concurrently with itself.
type Sim struct {
	net *simnet.Network
	n   int
	d   int // topology diameter, the global-sync weight (§7.3)

	boxes  []*mailbox
	bar    *runtime.Barrier
	clocks []float64 // barrier rendezvous slots, one per node

	traces []simnet.Program
	res    simnet.Result
	resErr error
	ran    bool
	// dead is set when a Run times out: the stranded node goroutines may
	// still hold references to the trace and mailbox state, so reusing
	// this Sim would race with them. Callers must build a fresh Sim.
	dead bool
}

// NewSim returns a simulated fabric over the given network's topology.
func NewSim(net *simnet.Network) *Sim {
	n := net.Topo().Nodes()
	s := &Sim{
		net:    net,
		n:      n,
		d:      net.Topo().Diameter(),
		boxes:  make([]*mailbox, n),
		bar:    runtime.NewBarrier(n),
		clocks: make([]float64, n),
	}
	for i := range s.boxes {
		s.boxes[i] = newMailbox()
	}
	return s
}

// N returns the node count 2^d.
func (s *Sim) N() int { return s.n }

// Network returns the underlying simulated network.
func (s *Sim) Network() *simnet.Network { return s.net }

// Run executes fn on every node, moving real data, then replays the
// recorded per-node programs through the discrete-event simulator. It
// returns the first node error, or the replay error; on success the
// simulation result is available from Result.
func (s *Sim) Run(fn func(Node) error, timeout time.Duration) error {
	if s.dead {
		return fmt.Errorf("fabric: Sim unusable after a timed-out run (stranded node goroutines); build a fresh Sim")
	}
	s.traces = make([]simnet.Program, s.n)
	s.res, s.resErr, s.ran = simnet.Result{}, nil, false
	for i := range s.boxes {
		s.boxes[i] = newMailbox() // drop any leftovers from a failed run
	}
	err := runAll(s.n, func(id int) error {
		nd := &simNode{f: s, id: id}
		defer func() { s.traces[id] = nd.prog }()
		return fn(nd)
	}, timeout)
	if err != nil {
		if err == errTimeout {
			s.dead = true
		}
		s.resErr = fmt.Errorf("fabric: no simulation result: run failed: %w", err)
		return err
	}
	s.res, s.resErr = s.net.Run(s.traces)
	s.ran = s.resErr == nil
	return s.resErr
}

// Result returns the simulator's verdict on the last Run.
func (s *Sim) Result() (simnet.Result, error) {
	if s.resErr != nil {
		return simnet.Result{}, s.resErr
	}
	if !s.ran {
		return simnet.Result{}, fmt.Errorf("fabric: Result before Run")
	}
	return s.res, nil
}

// DefaultSimTimeout is the watchdog used by callers that cost schedules
// on the simulated fabric without an explicit timeout: it bounds the
// data-movement half of the run (the replay is bounded by the
// simulator's event budget).
const DefaultSimTimeout = 10 * time.Minute

// Traces returns the per-node op programs recorded by the last Run, or
// nil after a timed-out Run (stranded goroutines may still be writing
// them).
func (s *Sim) Traces() []simnet.Program {
	if s.dead {
		return nil
	}
	return s.traces
}

// simNode is the per-goroutine handle on the simulated fabric.
type simNode struct {
	f     *Sim
	id    int
	clock float64
	prog  simnet.Program
	// posted/consumed track per-peer receive postings so a Recv after a
	// PostRecv is recorded as the cheap wait (§7.1 FORCED protocol) and a
	// bare Recv as post-and-wait.
	posted   map[int]int
	consumed map[int]int
}

func (nd *simNode) ID() int { return nd.id }
func (nd *simNode) N() int  { return nd.f.n }

func (nd *simNode) record(op simnet.Op) { nd.prog = append(nd.prog, op) }

// Send transmits a copy of data to dst as a FORCED message: the sender's
// circuit is held for the transmission, so the sender's clock advances by
// the full message time and the payload arrives at that instant.
func (nd *simNode) Send(dst int, data []byte) {
	nd.record(simnet.Send(dst, len(data), simnet.Forced))
	arrive := nd.clock
	if dst != nd.id {
		h := nd.f.net.Topo().Distance(nd.id, dst)
		nd.clock += nd.f.net.Params().RawMessageTime(len(data), h)
		arrive = nd.clock
	}
	nd.f.boxes[dst].put(nd.id, envelope{data: clone(data), t: arrive})
}

// PostRecv declares the next receive from src ahead of the traffic.
func (nd *simNode) PostRecv(src int) {
	nd.record(simnet.PostRecv(src))
	if nd.posted == nil {
		nd.posted = make(map[int]int)
	}
	nd.posted[src]++
}

// Recv blocks until the next message from src arrives and advances the
// clock to the later of the local time and the message's arrival time.
func (nd *simNode) Recv(src int) []byte {
	if nd.posted[src] > nd.consumed[src] {
		nd.record(simnet.WaitRecv(src))
	} else {
		nd.record(simnet.Recv(src))
	}
	if nd.consumed == nil {
		nd.consumed = make(map[int]int)
	}
	nd.consumed[src]++
	e := nd.f.boxes[nd.id].take(src)
	if e.t > nd.clock {
		nd.clock = e.t
	}
	return e.data
}

// Exchange performs a pairwise exchange with peer. Both sides compute the
// same start time max(readyA, readyB) from the clocks carried with the
// payloads, then advance by the exchange duration of the configured mode
// (§7.2): synced, serialized, or ideal.
//
// The hand-off is clone-free: ownership of data passes to the peer
// through the mailbox (the rendezvous — each side blocks on the other's
// put — makes the transfer race-free), and the returned slice is the
// peer's relinquished buffer.
func (nd *simNode) Exchange(peer int, data []byte) []byte {
	nd.record(simnet.Exchange(peer, len(data)))
	if peer == nd.id {
		return data
	}
	nd.f.boxes[peer].put(nd.id, envelope{data: data, t: nd.clock})
	e := nd.f.boxes[nd.id].take(peer)
	start := nd.clock
	if e.t > start {
		start = e.t
	}
	h := nd.f.net.Topo().Distance(nd.id, peer)
	nd.clock = start + nd.f.net.Params().ExchangeTime(len(data), h)
	return e.data
}

// Barrier synchronizes all nodes and advances every clock to the maximum
// plus the global synchronization cost 150·d µs (§7.3).
func (nd *simNode) Barrier() {
	nd.record(simnet.Barrier())
	s := nd.f
	s.clocks[nd.id] = nd.clock
	s.bar.Await()
	max := s.clocks[0]
	for _, c := range s.clocks[1:] {
		if c > max {
			max = c
		}
	}
	// Second round keeps a fast node's next Barrier from overwriting its
	// slot before every node has read this round's maximum.
	s.bar.Await()
	nd.clock = max + s.net.Params().GlobalSync(s.d)
}

// Shuffle charges the local data-permutation cost ρ·bytes.
func (nd *simNode) Shuffle(bytes int) {
	nd.record(simnet.Shuffle(bytes))
	nd.clock += nd.f.net.Params().Rho * float64(bytes)
}

// Compute charges micros of local computation.
func (nd *simNode) Compute(micros float64) {
	nd.record(simnet.Compute(micros))
	nd.clock += micros
}

// Clock returns the node's virtual time in µs: the contention-free model
// estimate maintained online (the replayed Result is authoritative).
func (nd *simNode) Clock() float64 { return nd.clock }

// envelope is one in-flight message: payload plus the time information
// piggybacked on it (arrival time for sends, sender-ready time for
// exchanges).
type envelope struct {
	data []byte
	t    float64
}

// mailbox is a node's inbox: per-sender FIFO queues. Unlike the runtime
// cluster's n² pre-allocated channels, mailboxes grow with the number of
// senders actually used, so a 1024-node simulated fabric stays cheap.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    map[int][]envelope
}

func newMailbox() *mailbox {
	mb := &mailbox{q: make(map[int][]envelope)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(src int, e envelope) {
	mb.mu.Lock()
	mb.q[src] = append(mb.q[src], e)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) take(src int) envelope {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.q[src]) == 0 {
		mb.cond.Wait()
	}
	e := mb.q[src][0]
	mb.q[src] = mb.q[src][1:]
	return e
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// errTimeout reports that the watchdog fired with node goroutines still
// running (almost always a communication deadlock in the program).
var errTimeout = fmt.Errorf("fabric: timeout waiting for node programs (deadlock?)")

// runAll executes fn(id) for ids 0..n-1 concurrently and waits, mirroring
// the runtime cluster's watchdog semantics.
func runAll(n int, fn func(id int) error, timeout time.Duration) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[id] = fmt.Errorf("fabric: node %d panicked: %v", id, r)
				}
			}()
			errs[id] = fn(id)
		}(i)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
			return errTimeout
		}
	} else {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
