package fabric

import (
	"time"

	"repro/internal/runtime"
)

// Runtime is the real-execution backend: it adapts a runtime.Cluster (one
// goroutine per node, point-to-point byte messages over channels) to the
// Fabric interface. Data movement is real; Shuffle/Compute are free and
// Clock reads the wall clock.
type Runtime struct {
	c *runtime.Cluster
}

// NewRuntime returns a real-execution fabric of n nodes.
func NewRuntime(n int) (*Runtime, error) {
	c, err := runtime.NewCluster(n)
	if err != nil {
		return nil, err
	}
	return &Runtime{c: c}, nil
}

// WrapCluster adapts an existing cluster to the Fabric interface.
func WrapCluster(c *runtime.Cluster) *Runtime { return &Runtime{c: c} }

// N returns the node count.
func (f *Runtime) N() int { return f.c.N() }

// Cluster returns the underlying goroutine cluster.
func (f *Runtime) Cluster() *runtime.Cluster { return f.c }

// Run executes fn on every node concurrently.
func (f *Runtime) Run(fn func(Node) error, timeout time.Duration) error {
	return f.c.Run(func(nd *runtime.Node) error { return fn(nd) }, timeout)
}
