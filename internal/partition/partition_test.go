package partition

import (
	"math"
	"testing"
	"testing/quick"
)

// Paper §6 table: p(5)=7, p(10)=42, p(15)=176, p(20)=627. The abstract also
// quotes p(7)=15. ("176" appears garbled as "1/6" in the OCR; 176 is the
// true value of p(15).)
func TestCountPaperTable(t *testing.T) {
	cases := []struct{ d, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 5},
		{5, 7}, {6, 11}, {7, 15}, {10, 42}, {15, 176}, {20, 627},
	}
	for _, c := range cases {
		if got := Count(c.d); got != c.want {
			t.Errorf("Count(%d) = %d, want %d", c.d, got, c.want)
		}
		if got := CountEuler(c.d); got != c.want {
			t.Errorf("CountEuler(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestCountMillionNodeClaim(t *testing.T) {
	// Paper §6: "for a million node hypercube, the enumeration of 627
	// partitions is quite viable" — a million nodes is d=20.
	if got := Count(20); got != 627 {
		t.Errorf("p(20) = %d, want 627", got)
	}
}

func TestCountNegative(t *testing.T) {
	if Count(-1) != 0 || CountEuler(-5) != 0 {
		t.Error("negative d must count 0")
	}
}

func TestCountAgreesWithEuler(t *testing.T) {
	for d := 0; d <= 60; d++ {
		if Count(d) != CountEuler(d) {
			t.Fatalf("d=%d: Count=%d CountEuler=%d", d, Count(d), CountEuler(d))
		}
	}
}

func TestAllMatchesCount(t *testing.T) {
	for d := 1; d <= 12; d++ {
		ps := All(d)
		if len(ps) != Count(d) {
			t.Errorf("len(All(%d)) = %d, want %d", d, len(ps), Count(d))
		}
		seen := map[string]bool{}
		for _, p := range ps {
			if !p.IsValid(d) {
				t.Errorf("All(%d) produced invalid partition %v", d, p)
			}
			if seen[p.String()] {
				t.Errorf("All(%d) produced duplicate %v", d, p)
			}
			seen[p.String()] = true
		}
	}
}

func TestAllOrderEndpoints(t *testing.T) {
	ps := All(5)
	if !ps[0].Equal(Partition{5}) {
		t.Errorf("first partition = %v, want {5}", ps[0])
	}
	last := ps[len(ps)-1]
	if !last.Equal(Partition{1, 1, 1, 1, 1}) {
		t.Errorf("last partition = %v, want {1,1,1,1,1}", last)
	}
}

func TestAllZeroAndNegative(t *testing.T) {
	if All(0) != nil || All(-3) != nil {
		t.Error("All of nonpositive must be nil")
	}
}

func TestIteratorMatchesAll(t *testing.T) {
	for d := 1; d <= 10; d++ {
		it := NewIterator(d)
		for i, want := range All(d) {
			got := it.Next()
			if got == nil || !got.Equal(want) {
				t.Fatalf("d=%d item %d: iterator %v, want %v", d, i, got, want)
			}
		}
		if extra := it.Next(); extra != nil {
			t.Fatalf("d=%d: iterator overran with %v", d, extra)
		}
		if extra := it.Next(); extra != nil {
			t.Fatalf("d=%d: exhausted iterator returned %v", d, extra)
		}
	}
}

func TestIteratorEmpty(t *testing.T) {
	if NewIterator(0).Next() != nil {
		t.Error("iterator over 0 must be empty")
	}
}

func TestSumKClone(t *testing.T) {
	p := Partition{3, 2, 2}
	if p.Sum() != 7 || p.K() != 3 {
		t.Errorf("Sum/K wrong: %d %d", p.Sum(), p.K())
	}
	q := p.Clone()
	q[0] = 99
	if p[0] != 3 {
		t.Error("Clone must not alias")
	}
}

func TestCanonical(t *testing.T) {
	p := Partition{2, 4, 1}
	c := p.Canonical()
	if !c.Equal(Partition{4, 2, 1}) {
		t.Errorf("Canonical = %v", c)
	}
	if !p.Equal(Partition{2, 4, 1}) {
		t.Error("Canonical must not mutate receiver")
	}
}

func TestIsValid(t *testing.T) {
	cases := []struct {
		p    Partition
		d    int
		want bool
	}{
		{Partition{3, 2}, 5, true},
		{Partition{2, 3}, 5, false}, // increasing
		{Partition{5}, 5, true},
		{Partition{1, 1, 1, 1, 1}, 5, true},
		{Partition{3, 2}, 6, false},    // wrong sum
		{Partition{3, 0, 2}, 5, false}, // zero part
		{Partition{-1, 6}, 5, false},   // negative part
		{Partition{}, 0, false},        // empty
	}
	for _, c := range cases {
		if got := c.p.IsValid(c.d); got != c.want {
			t.Errorf("IsValid(%v, %d) = %v, want %v", c.p, c.d, got, c.want)
		}
	}
}

func TestStringAndParse(t *testing.T) {
	for _, s := range []string{"{2,3}", "{5}", "{1,1,1,1,1}", "{2,2,3}", "{3,4}"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("round trip %q -> %q", s, p.String())
		}
	}
	if _, err := Parse("3, 4"); err != nil {
		t.Errorf("Parse without braces should work: %v", err)
	}
	for _, bad := range []string{"", "{}", "{a}", "{0}", "{-2,3}", "{1,}"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestConjugate(t *testing.T) {
	// Conjugate of {4,2,1} is {3,2,1,1}.
	c := Conjugate(Partition{4, 2, 1})
	if !c.Equal(Partition{3, 2, 1, 1}) {
		t.Errorf("Conjugate = %v", c)
	}
	if Conjugate(nil) != nil {
		t.Error("Conjugate(nil) must be nil")
	}
}

func TestConjugateInvolution(t *testing.T) {
	f := func(seed uint8) bool {
		d := int(seed)%12 + 1
		for _, p := range All(d) {
			if !Conjugate(Conjugate(p)).Equal(p.Canonical()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestConjugatePreservesSum(t *testing.T) {
	for _, p := range All(9) {
		if Conjugate(p).Sum() != 9 {
			t.Fatalf("conjugate of %v has wrong sum", p)
		}
	}
}

// §6 quotes the Hardy–Ramanujan asymptotic; the estimate must close in on
// the exact count as d grows (and stay within ~12% by d=200).
func TestCountAsymptoticConverges(t *testing.T) {
	if CountAsymptotic(0) != 0 || CountAsymptotic(-3) != 0 {
		t.Error("nonpositive d must estimate 0")
	}
	prev := 10.0
	for _, d := range []int{10, 50, 100, 200} {
		ratio := CountAsymptotic(d) / float64(Count(d))
		if err := math.Abs(ratio - 1); err > math.Abs(prev-1)+1e-9 {
			t.Errorf("d=%d: ratio %v did not improve on %v", d, ratio, prev)
		} else {
			prev = ratio
		}
	}
	if math.Abs(prev-1) > 0.12 {
		t.Errorf("asymptotic ratio at d=200 = %v, want within 12%%", prev)
	}
}
