package partition

import "testing"

// FuzzParse checks that Parse never panics and that everything it accepts
// round-trips through String (modulo whitespace).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"{2,3}", "{5}", "{1,1,1}", "", "{}", "{-1}", "3, 4", "{99999999}"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", p.String(), s, err)
		}
		if !q.Equal(p) {
			t.Fatalf("round trip %q -> %v -> %v", s, p, q)
		}
	})
}

// FuzzCount checks the two counting implementations agree on arbitrary
// small inputs.
func FuzzCount(f *testing.F) {
	f.Add(7)
	f.Fuzz(func(t *testing.T, d int) {
		if d < -2 || d > 64 {
			return
		}
		if Count(d) != CountEuler(d) {
			t.Fatalf("d=%d: %d != %d", d, Count(d), CountEuler(d))
		}
	})
}
