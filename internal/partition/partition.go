// Package partition implements integer partitions, the combinatorial object
// that indexes multiphase complete-exchange algorithms.
//
// A partition of d is a non-increasing sequence of positive integers that
// sums to d. Each partition D = {d1,...,dk} of the hypercube dimension d
// names one multiphase algorithm: phase i is a partial exchange on subcubes
// of dimension di (paper §5.2). The paper's §6 table of p(d) — p(5)=7,
// p(10)=42, p(15)=176, p(20)=627 — is reproduced by Count.
package partition

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Partition is a non-increasing list of positive integers.
type Partition []int

// Sum returns the sum of the parts.
func (p Partition) Sum() int {
	s := 0
	for _, x := range p {
		s += x
	}
	return s
}

// K returns the number of parts (the number of phases, k in the paper).
func (p Partition) K() int { return len(p) }

// Clone returns an independent copy.
func (p Partition) Clone() Partition {
	q := make(Partition, len(p))
	copy(q, p)
	return q
}

// Canonical returns the partition sorted in non-increasing order.
func (p Partition) Canonical() Partition {
	q := p.Clone()
	sort.Sort(sort.Reverse(sort.IntSlice(q)))
	return q
}

// IsValid reports whether p is a well-formed partition of d: all parts
// positive, non-increasing, summing to d.
func (p Partition) IsValid(d int) bool {
	if p.Sum() != d || len(p) == 0 {
		return false
	}
	for i, x := range p {
		if x <= 0 {
			return false
		}
		if i > 0 && p[i-1] < x {
			return false
		}
	}
	return true
}

// String formats the partition in the paper's set notation, e.g. "{2,3}".
// Parts are printed in the stored order.
func (p Partition) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports element-wise equality.
func (p Partition) Equal(q Partition) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Parse parses the set notation produced by String, e.g. "{3,4}" or "3,4".
func Parse(s string) (Partition, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	if s == "" {
		return nil, fmt.Errorf("partition: empty")
	}
	fields := strings.Split(s, ",")
	p := make(Partition, 0, len(fields))
	for _, f := range fields {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err != nil {
			return nil, fmt.Errorf("partition: bad part %q: %v", f, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("partition: nonpositive part %d", v)
		}
		p = append(p, v)
	}
	return p, nil
}

// Count returns p(d), the number of partitions of d, using the dynamic
// programming recurrence over largest part. Count(0) = 1 by convention.
func Count(d int) int {
	if d < 0 {
		return 0
	}
	// ways[j] = number of partitions of j using parts considered so far.
	ways := make([]int, d+1)
	ways[0] = 1
	for part := 1; part <= d; part++ {
		for j := part; j <= d; j++ {
			ways[j] += ways[j-part]
		}
	}
	return ways[d]
}

// CountEuler returns p(d) via Euler's pentagonal-number recurrence, the
// formula quoted in paper §6:
//
//	p(d) = Σ_{j≥1} (-1)^{j+1} [ p(d − j(3j−1)/2) + p(d − j(3j+1)/2) ].
//
// It exists alongside Count as an independent cross-check.
func CountEuler(d int) int {
	if d < 0 {
		return 0
	}
	p := make([]int, d+1)
	p[0] = 1
	for n := 1; n <= d; n++ {
		for j := 1; ; j++ {
			g1 := j * (3*j - 1) / 2
			g2 := j * (3*j + 1) / 2
			if g1 > n && g2 > n {
				break
			}
			sign := 1
			if j%2 == 0 {
				sign = -1
			}
			if g1 <= n {
				p[n] += sign * p[n-g1]
			}
			if g2 <= n {
				p[n] += sign * p[n-g2]
			}
		}
	}
	return p[d]
}

// All returns every partition of d in lexicographically decreasing order of
// the canonical (non-increasing) representation, beginning with {d} and
// ending with {1,1,...,1}. All(0) returns nil.
func All(d int) []Partition {
	if d <= 0 {
		return nil
	}
	var out []Partition
	cur := make([]int, 0, d)
	var rec func(remaining, maxPart int)
	rec = func(remaining, maxPart int) {
		if remaining == 0 {
			out = append(out, append(Partition(nil), cur...))
			return
		}
		hi := maxPart
		if remaining < hi {
			hi = remaining
		}
		for part := hi; part >= 1; part-- {
			cur = append(cur, part)
			rec(remaining-part, part)
			cur = cur[:len(cur)-1]
		}
	}
	rec(d, d)
	return out
}

// Iterator yields partitions of d one at a time without materializing the
// whole list, in the same order as All. Next returns nil when exhausted.
type Iterator struct {
	d     int
	stack []frame
	cur   []int
	done  bool
}

type frame struct {
	remaining int
	nextPart  int // next part value to try (counts down to 1)
}

// NewIterator returns an iterator over the partitions of d.
func NewIterator(d int) *Iterator {
	it := &Iterator{d: d}
	if d <= 0 {
		it.done = true
		return it
	}
	it.stack = []frame{{remaining: d, nextPart: d}}
	return it
}

// Next returns the next partition, or nil when the iteration is complete.
// The returned slice is freshly allocated and safe to retain.
func (it *Iterator) Next() Partition {
	for !it.done {
		top := &it.stack[len(it.stack)-1]
		if top.remaining == 0 {
			// Emit current partition, then backtrack.
			out := append(Partition(nil), it.cur...)
			it.pop()
			return out
		}
		if top.nextPart < 1 {
			it.pop()
			continue
		}
		part := top.nextPart
		top.nextPart--
		if part > top.remaining {
			continue
		}
		it.cur = append(it.cur, part)
		it.stack = append(it.stack, frame{remaining: top.remaining - part, nextPart: part})
	}
	return nil
}

func (it *Iterator) pop() {
	it.stack = it.stack[:len(it.stack)-1]
	if len(it.cur) > 0 {
		it.cur = it.cur[:len(it.cur)-1]
	}
	if len(it.stack) == 0 {
		it.done = true
	}
}

// Conjugate returns the conjugate (transpose of the Ferrers diagram) of a
// canonical partition.
func Conjugate(p Partition) Partition {
	c := p.Canonical()
	if len(c) == 0 {
		return nil
	}
	out := make(Partition, c[0])
	for j := range out {
		cnt := 0
		for _, x := range c {
			if x > j {
				cnt++
			}
		}
		out[j] = cnt
	}
	return out
}

// CountAsymptotic returns the Hardy–Ramanujan asymptotic estimate the
// paper quotes in §6:
//
//	p(d) ~ exp(π·√(2d/3)) / (4·d·√3).
//
// It exists as a cross-check on the exact counts: the ratio to Count(d)
// tends to 1 as d grows.
func CountAsymptotic(d int) float64 {
	if d <= 0 {
		return 0
	}
	df := float64(d)
	return math.Exp(math.Pi*math.Sqrt(2*df/3)) / (4 * df * math.Sqrt(3))
}
