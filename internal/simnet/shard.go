package simnet

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/event"
	"repro/internal/topology"
)

// PhaseSpan describes one phase of a sharded replay source: a leading
// barrier row followed by Rows−1 rows whose communication stays inside
// the phase's field. Nodes whose labels agree outside the field — i.e.
// that share (p / (Stride·Span), p mod Stride) — form one group; the
// multiphase schedules only ever pair nodes within a group, and on the
// base topologies a route between two group members never leaves the
// group's sub-block. That independence is what the sharded replay mode
// exploits; it is verified against the actual routed link coverage at
// replay time, never assumed (degraded-overlay detours can break it).
type PhaseSpan struct {
	// Rows is the number of op-table rows in this phase, including the
	// leading barrier row.
	Rows int
	// Stride is the node-label stride of the field's lowest dimension.
	Stride int
	// Span is the field size: the number of nodes per group.
	Span int
}

// Sharded is a Source that exposes its per-phase span structure, making
// it eligible for sharded replay (Network.SetReplayShards). The contract:
// the program length is uniform across nodes and equals the sum of Rows;
// each phase's first row is an OpBarrier for every node and no other row
// of the phase is a barrier for any node. exchange.CompiledPlan is the
// canonical implementation.
type Sharded interface {
	Source
	// PhaseSpans returns the plan's phase structure in row order. Callers
	// must not modify the returned slice.
	PhaseSpans() []PhaseSpan
}

// maxReplayShards bounds SetReplayShards: shards beyond the group count
// of a phase idle anyway, and the verifier's pairwise link-coverage
// intersection is quadratic in the shard count.
const maxReplayShards = 64

// SetReplayShards sets the number of event-engine shards RunSource may
// split a replay across (clamped to [1, 64]; ≤ 1 restores serial replay).
// Sharding engages only for sources implementing Sharded, only while
// tracing is off, and only for phases whose routed circuits provably
// occupy disjoint directed links — each phase is stamped against
// topology.LinkSlot coverage and falls back to a single shard when any
// two shards would share a link (degraded-overlay detours that cross span
// boundaries), when a communication partner lands on another shard, or
// when a FaultPlan's faulted wires are touched by more than one shard.
// Successful sharded replays are bit-identical to serial replays in every
// Result field except ReplayShards.
func (n *Network) SetReplayShards(w int) {
	if w < 1 {
		w = 1
	}
	if w > maxReplayShards {
		w = maxReplayShards
	}
	n.shards = w
}

// phaseGeom is the node→shard assignment of one phase: groups (sub-blocks
// of the phase field) are dealt round-robin onto weff shards.
type phaseGeom struct {
	stride, block, weff int
}

// owner returns the shard interpreting node p this phase.
func (g phaseGeom) owner(p int) int {
	grp := (p/g.block)*g.stride + p%g.stride
	return grp % g.weff
}

// runSharded replays a Sharded source across up to w event-engine shards.
// It reports ran = false when the source's span structure is unusable as
// a whole (the caller then runs the ordinary serial path); a phase that
// merely fails link-disjointness verification runs on a single shard
// inside the orchestrator, which is the serial dynamics for that phase.
func (n *Network) runSharded(src Sharded, w int) (Result, bool, error) {
	nodes := n.topo.Nodes()
	spans := src.PhaseSpans()
	if len(spans) == 0 {
		return Result{}, false, nil
	}
	rows := src.NumOps(0)
	total := 0
	for _, sp := range spans {
		if sp.Rows < 1 || sp.Span < 1 || sp.Stride < 1 {
			return Result{}, false, nil
		}
		block := sp.Stride * sp.Span
		if block > nodes || nodes%block != 0 {
			return Result{}, false, nil
		}
		total += sp.Rows
	}
	if total != rows {
		return Result{}, false, nil
	}
	for p := 0; p < nodes; p++ {
		if src.NumOps(p) != rows {
			return Result{}, false, nil
		}
	}
	// Window framing prescan on node 0 (rows are uniform in kind for
	// compiled plans): each phase opens with exactly one barrier row.
	row := 0
	for _, sp := range spans {
		if src.Op(0, row).Kind != OpBarrier {
			return Result{}, false, nil
		}
		for r := row + 1; r < row+sp.Rows; r++ {
			if src.Op(0, r).Kind == OpBarrier {
				return Result{}, false, nil
			}
		}
		row += sp.Rows
	}

	d := 0
	if n.hyper != nil {
		d = n.hyper.Dim()
	}
	deg := n.topo.Degree()
	// faultSlots marks directed links carrying a timed fault; a phase
	// whose coverage touches them from more than one shard falls back to
	// a single shard so fault resolution stays serial-identical.
	var faultSlots []uint64
	if n.faults != nil {
		faultSlots = make([]uint64, (nodes*deg+63)/64)
		for slot := range n.faults.downAt {
			if !math.IsInf(n.faults.downAt[slot], 1) || !math.IsInf(n.faults.slowFrom[slot], 1) {
				faultSlots[slot/64] |= 1 << uint(slot%64)
			}
		}
	}

	// Build the shard interpreters once: private engines, channels and
	// node-state arrays, one shared directed-link array (each phase's
	// verified link-disjointness makes the shards' writes to it disjoint;
	// the per-phase goroutine joins order them across phases).
	edges := make([]edgeState, nodes*deg)
	ws := make([]*runState, w)
	for s := range ws {
		st := &runState{
			net:      n,
			eng:      event.New(),
			src:      src,
			topo:     n.topo,
			n:        nodes,
			d:        d,
			hyper:    n.hyper != nil,
			deg:      deg,
			syncD:    n.topo.Diameter(),
			pc:       make([]int32, nodes),
			lens:     make([]int32, nodes),
			opStart:  make([]float64, nodes),
			ready:    make([]float64, nodes),
			done:     make([]bool, nodes),
			exPeer:   make([]int32, nodes),
			exBytes:  make([]int, nodes),
			exReady:  make([]float64, nodes),
			edges:    edges,
			outIdx:   make([][]chanRef, nodes),
			stall:    make([]float64, nodes),
			res:      Result{NodeFinish: make([]float64, nodes)},
			windowed: true,
		}
		if dg, ok := n.topo.(*topology.Degraded); ok && dg.HasSlowLinks() {
			st.degr = dg
		}
		st.faulty = st.degr != nil || n.faults != nil
		for p := range st.exPeer {
			st.exPeer[p] = -1
		}
		if n.jitterFrac != 0 {
			st.rngs = make([]uint64, nodes)
		}
		st.stepH = func(_ event.Time, p int) { st.step(p) }
		st.deliverH = func(now event.Time, ch int) { st.deliverAt(ch, float64(now)) }
		ws[s] = st
	}

	// Cross-phase per-node carriers, identical to the serial state: a
	// node may move between shards from one phase to the next, so its
	// ready time, jitter stream and stall account travel through these.
	ready := make([]float64, nodes)
	stall := make([]float64, nodes)
	var rngs []uint64
	if n.jitterFrac != 0 {
		rngs = seedJitterStreams(n.jitterSeed, nodes)
	}

	res := Result{NodeFinish: make([]float64, nodes), ReplayShards: 1}
	rowLo := 0
	for pi, sp := range spans {
		winLo, winHi := rowLo+1, rowLo+sp.Rows
		rowLo = winHi

		// The global barrier this phase opens with: everyone waits for
		// the slowest arrival, then pays the global sync cost together —
		// exactly enterBarrier's release rule, applied across shards.
		maxT := 0.0
		for _, t := range ready {
			if t > maxT {
				maxT = t
			}
		}
		release := maxT + n.params.GlobalSync(n.topo.Diameter())
		res.Barriers++

		geom := phaseGeom{stride: sp.Stride, block: sp.Stride * sp.Span, weff: min(w, nodes/sp.Span)}
		if geom.weff > 1 && !n.verifyPhase(src, geom, winLo, winHi, nodes, d, deg, faultSlots) {
			geom.weff = 1
		}
		if geom.weff > res.ReplayShards {
			res.ReplayShards = geom.weff
		}

		// Copy the carriers in and seed every node's first step event at
		// the release time, in node order: within each shard the engine
		// then breaks release-time ties by node id, exactly as the serial
		// barrier's sorted release does.
		windowOps := uint64(winHi-winLo) * uint64(nodes)
		for p := 0; p < nodes; p++ {
			st := ws[geom.owner(p)]
			st.pc[p] = int32(winLo)
			st.lens[p] = int32(winHi)
			st.ready[p] = release
			st.done[p] = false
			st.stall[p] = stall[p]
			if rngs != nil {
				st.rngs[p] = rngs[p]
			}
			st.eng.PostArg(event.Time(release), st.stepH, p)
		}

		budget := n.budget
		if budget == 0 {
			budget = DefaultEventBudget
			if structural := 2*windowOps + 4*uint64(nodes); structural > budget {
				budget = structural
			}
		}
		drained := make([]bool, geom.weff)
		if geom.weff == 1 {
			drained[0] = ws[0].eng.RunLimit(budget)
		} else {
			var wg sync.WaitGroup
			for s := 0; s < geom.weff; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					drained[s] = ws[s].eng.RunLimit(budget)
				}(s)
			}
			wg.Wait()
		}
		for s := 0; s < geom.weff; s++ {
			if err := ws[s].failed; err != nil {
				return res, true, err
			}
			if !drained[s] {
				return res, true, fmt.Errorf(
					"simnet: event budget (%d) exhausted in replay shard %d of phase %d (livelock?)",
					budget, s, pi)
			}
		}
		for p := 0; p < nodes; p++ {
			st := ws[geom.owner(p)]
			if !st.done[p] {
				return res, true, fmt.Errorf("simnet: node %d blocked at op %d (%s): deadlock",
					p, st.pc[p], st.opName(p))
			}
			ready[p] = st.ready[p]
			stall[p] = st.stall[p]
			if rngs != nil {
				rngs[p] = st.rngs[p]
			}
		}
	}

	for p := 0; p < nodes; p++ {
		res.NodeFinish[p] = ready[p]
		if ready[p] > res.Makespan {
			res.Makespan = ready[p]
		}
		res.ContentionStall += stall[p]
	}
	for s := range ws {
		res.Messages += ws[s].res.Messages
		res.BytesMoved += ws[s].res.BytesMoved
		res.DroppedForced += ws[s].res.DroppedForced
	}
	for i := range edges {
		if q := int(edges[i].maxQueue); q > res.MaxEdgeQueue {
			res.MaxEdgeQueue = q
		}
	}
	return res, true, nil
}

// verifyPhase proves that this phase's routed circuits are confined to
// their shards: every communication op's partner lives on the same shard,
// and the directed links the circuits occupy — stamped from the actual
// routes, detours included — are disjoint across shards. It also demands
// that at most one shard touches a faulted wire, so a FaultPlan resolves
// exactly as it would serially. Any violation reports false and the phase
// runs on a single shard.
func (n *Network) verifyPhase(src Source, geom phaseGeom, winLo, winHi, nodes, d, deg int, faultSlots []uint64) bool {
	words := (nodes*deg + 63) / 64
	cover := make([][]uint64, geom.weff)
	touchesFault := make([]bool, geom.weff)
	ok := make([]bool, geom.weff)
	var wg sync.WaitGroup
	for s := 0; s < geom.weff; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cov := make([]uint64, words)
			cover[s] = cov
			var routeBuf []int
			fault := false
			stamp := func(slot int) {
				cov[slot/64] |= 1 << uint(slot%64)
				if faultSlots != nil && faultSlots[slot/64]&(1<<uint(slot%64)) != 0 {
					fault = true
				}
			}
			for p := 0; p < nodes; p++ {
				if geom.owner(p) != s {
					continue
				}
				for r := winLo; r < winHi; r++ {
					op := src.Op(p, r)
					switch op.Kind {
					case OpCompute, OpShuffle:
						continue
					case OpExchange, OpSend, OpPostRecv, OpWaitRecv, OpRecv:
						q := op.Peer
						if q == p {
							continue
						}
						if q < 0 || q >= nodes || geom.owner(q) != s {
							return // cross-shard partner (or malformed op: let serial dynamics report it)
						}
						if op.Kind == OpExchange || op.Kind == OpSend {
							if n.hyper != nil {
								cur, diff := p, p^q
								for diff != 0 {
									i := bits.TrailingZeros(uint(diff))
									stamp(cur*d + i)
									cur ^= 1 << uint(i)
									diff &= diff - 1
								}
							} else {
								routeBuf = n.topo.AppendRoute(routeBuf, p, q)
								for i := 0; i+1 < len(routeBuf); i++ {
									stamp(n.topo.LinkSlot(routeBuf[i], routeBuf[i+1]))
								}
							}
						}
					default:
						return // a barrier (or unknown op) inside the window
					}
				}
			}
			touchesFault[s] = fault
			ok[s] = true
		}(s)
	}
	wg.Wait()
	faulted := 0
	for s := 0; s < geom.weff; s++ {
		if !ok[s] {
			return false
		}
		if touchesFault[s] {
			faulted++
		}
	}
	if faulted > 1 {
		return false
	}
	for a := 0; a < geom.weff; a++ {
		for b := a + 1; b < geom.weff; b++ {
			ca, cb := cover[a], cover[b]
			for i := range ca {
				if ca[i]&cb[i] != 0 {
					return false
				}
			}
		}
	}
	return true
}
