package simnet

import (
	"testing"

	"repro/internal/model"
	"repro/internal/topology"
)

// jitterPrograms is a small exchange workload whose makespan depends on
// every transmission duration, so any nondeterminism in the jitter source
// shows up in the result.
func jitterPrograms(d int) []Program {
	n := 1 << uint(d)
	progs := make([]Program, n)
	for p := 0; p < n; p++ {
		var prog Program
		prog = append(prog, Barrier())
		for j := 1; j < n; j++ {
			prog = append(prog, Exchange(p^j, 64))
		}
		progs[p] = prog
	}
	return progs
}

func mustRun(t *testing.T, net *Network, progs []Program) Result {
	t.Helper()
	res, err := net.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Jitter must come from an explicitly seeded per-Network source, never
// the global math/rand state: repeated Runs of the same Network are
// bit-identical (the property go test -count=2 relies on), equal seeds
// agree across Networks, and different seeds actually differ.
func TestJitterReproducible(t *testing.T) {
	const d = 3
	progs := jitterPrograms(d)
	prm := model.IPSC860()

	net := New(topology.MustNew(d), prm)
	net.SetJitter(0.05, 42)
	first := mustRun(t, net, progs)
	second := mustRun(t, net, progs)
	if first.Makespan != second.Makespan {
		t.Errorf("same network, successive runs: %v != %v", first.Makespan, second.Makespan)
	}

	other := New(topology.MustNew(d), prm)
	other.SetJitter(0.05, 42)
	if got := mustRun(t, other, progs); got.Makespan != first.Makespan {
		t.Errorf("same seed, different network: %v != %v", got.Makespan, first.Makespan)
	}

	reseeded := New(topology.MustNew(d), prm)
	reseeded.SetJitter(0.05, 43)
	if got := mustRun(t, reseeded, progs); got.Makespan == first.Makespan {
		t.Errorf("different seed produced identical makespan %v", got.Makespan)
	}

	exact := New(topology.MustNew(d), prm)
	if got := mustRun(t, exact, progs); got.Makespan == first.Makespan {
		t.Error("jitter had no effect vs the exact model")
	}
}

// Concurrent Runs on separate Networks must not perturb each other's
// jitter streams — each Run owns its rand.Rand.
func TestJitterParallelRunsIndependent(t *testing.T) {
	const d = 3
	prm := model.IPSC860()
	base := New(topology.MustNew(d), prm)
	base.SetJitter(0.05, 7)
	want := mustRun(t, base, jitterPrograms(d)).Makespan

	for i := 0; i < 4; i++ {
		t.Run("parallel", func(t *testing.T) {
			t.Parallel()
			net := New(topology.MustNew(d), prm)
			net.SetJitter(0.05, 7)
			if got := mustRun(t, net, jitterPrograms(d)).Makespan; got != want {
				t.Errorf("parallel run makespan %v, want %v", got, want)
			}
		})
	}
}

// Negative jitter fractions are clamped to zero (exact model behaviour).
func TestJitterNegativeFracClamped(t *testing.T) {
	const d = 2
	prm := model.IPSC860()
	exact := New(topology.MustNew(d), prm)
	want := mustRun(t, exact, jitterPrograms(d)).Makespan

	clamped := New(topology.MustNew(d), prm)
	clamped.SetJitter(-0.5, 99)
	if got := mustRun(t, clamped, jitterPrograms(d)).Makespan; got != want {
		t.Errorf("clamped jitter makespan %v, want exact %v", got, want)
	}
}
